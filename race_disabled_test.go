//go:build !race

package ramiel_test

const raceEnabled = false
