package ramiel_test

import (
	"context"
	"sync"
	"testing"

	ramiel "repro"
	"repro/internal/exec"
	"repro/internal/serve"
)

// arenaServer builds a warmed single-worker server for allocation tests.
func arenaServer(t testing.TB, noArena bool) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{Workers: 1, MaxBatch: 1, NoArena: noArena})
	t.Cleanup(func() { s.Close(context.Background()) })
	if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestArenaSteadyStateAllocations is the allocation-regression guard:
// once the per-worker arena is warm, a batch-1 inference performs no
// per-request tensor allocations beyond the escaping outputs — observable
// both as flat arena misses and as materially fewer allocations per run
// than the arena-disabled path.
func TestArenaSteadyStateAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting in -short mode")
	}
	on := arenaServer(t, false)
	off := arenaServer(t, true)
	feeds, err := on.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	infer := func(s *serve.Server) {
		if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
			t.Fatal(err)
		}
	}
	// Reach steady state: the worker arena's free lists hold the model's
	// full intermediate working set after the first run; a few more runs
	// settle size-class churn.
	for i := 0; i < 10; i++ {
		infer(on)
		infer(off)
	}

	// 1. Arena misses stay flat up to the escaping outputs: each request
	// may permanently take at most one buffer per graph output out of the
	// free lists (squeezenet has one output), plus minimal churn. Under
	// the race detector sync.Pool intentionally drops a fraction of Put
	// items, discarding whole worker arenas, so the bound only holds in
	// normal builds.
	pre, _ := on.ArenaStats()
	const runs = 50
	for i := 0; i < runs; i++ {
		infer(on)
	}
	post, _ := on.ArenaStats()
	missDelta := post.Misses - pre.Misses
	if !raceEnabled && missDelta > 2*runs {
		t.Errorf("arena misses grew by %d over %d steady-state requests, want <= %d (outputs only)",
			missDelta, runs, 2*runs)
	}
	if post.Gets == pre.Gets {
		t.Fatal("no arena traffic recorded — arena path not exercised")
	}

	// 2. The arena path allocates materially less than the heap path. The
	// difference is the per-request intermediate tensors (squeezenet has
	// ~64 intermediate values); everything else (env maps, channels,
	// goroutines) is identical between the two servers.
	allocsOn := testing.AllocsPerRun(30, func() { infer(on) })
	allocsOff := testing.AllocsPerRun(30, func() { infer(off) })
	if allocsOn >= allocsOff {
		t.Errorf("arena run allocates more than heap run: %v >= %v", allocsOn, allocsOff)
	}
	if saved := allocsOff - allocsOn; saved < 40 {
		t.Errorf("arena saves only %.0f allocs/request, want >= 40 (intermediate tensors)", saved)
	}
	t.Logf("allocs/request: arena %.0f, heap %.0f (saved %.0f); misses over %d runs: %d",
		allocsOn, allocsOff, allocsOff-allocsOn, runs, missDelta)
}

// TestConcurrentArenaRunsShareProgram is the acceptance-criteria race
// test at the public API level: one compiled Program, many goroutines,
// each with an independent arena kept across its runs (run with -race).
func TestConcurrentArenaRunsShareProgram(t *testing.T) {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g, ramiel.WithEagerMemPlan())
	if err != nil {
		t.Fatal(err)
	}
	feeds := ramiel.RandomInputs(g, 7)
	want, err := prog.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 10
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := ramiel.NewArena()
			for j := 0; j < iters; j++ {
				got, err := prog.RunArena(feeds, ar)
				if err != nil {
					t.Errorf("concurrent arena run: %v", err)
					return
				}
				for k, w := range want {
					if !got[k].AllClose(w, 1e-5, 1e-6) {
						t.Errorf("output %q diverged under concurrent arena runs", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMemoryPlanPublicAPI: the compiled program exposes its memory plan
// and a usable peak estimate.
func TestMemoryPlanPublicAPI(t *testing.T) {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	mp := prog.MemoryPlan()
	if mp == nil {
		t.Fatal("MemoryPlan returned nil")
	}
	s := mp.Summary()
	if s.Managed == 0 || s.Slots == 0 {
		t.Fatalf("empty plan summary: %+v", s)
	}
	if s.Slots >= s.Managed {
		t.Errorf("no reuse: %d slots for %d managed values", s.Slots, s.Managed)
	}
	// The peak forecast from a reference-run size measurement must bracket
	// sensibly: peak live <= slot arena <= unreused total, all positive.
	sizes, err := exec.ValueSizes(prog.Graph, ramiel.RandomInputs(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	est := mp.Estimate(sizes)
	if est.PeakLiveBytes <= 0 || est.SlotBytes <= 0 || est.TotalBytes <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	if est.PeakLiveBytes > est.SlotBytes || est.SlotBytes > est.TotalBytes {
		t.Fatalf("estimate ordering violated (peak <= slots <= total): %+v", est)
	}
}
