package ramiel_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	ramiel "repro"
)

// TestGeneratedCodeCompilesAndRuns is the end-to-end check of the paper's
// headline deliverable: the generated parallel program must be real,
// compilable, runnable code — not pseudo-output. It generates the parallel
// Go for two models, builds them with the actual Go toolchain, executes
// them, and requires each program's own parallel-vs-sequential
// verification to pass. yolo_v5 is the fusion coverage: its compile folds
// BatchNorms into fresh weight initializers and emits FusedElementwise
// nodes, so the generated main must reproduce the *optimized* environment
// (ramiel.CompiledEnv) — the base model's initializers would not resolve.
func TestGeneratedCodeCompilesAndRuns(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	for i, model := range []string{"squeezenet", "yolo_v5"} {
		g, err := ramiel.BuildModel(model, ramiel.ModelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ramiel.Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		src, err := prog.GenerateGo(ramiel.CodegenOptions{EmitMain: true})
		if err != nil {
			t.Fatal(err)
		}

		// The generated file imports "repro", so it must live inside this
		// module; an underscore-prefixed directory keeps it out of ./...
		dir := filepath.Join(".", fmt.Sprintf("_gentest%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}

		cmd := exec.Command("go", "run", "./"+dir)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: generated program failed: %v\n%s", model, err, out)
		}
		if !strings.Contains(string(out), "outputs verified") {
			t.Fatalf("%s: generated program did not verify outputs:\n%s", model, out)
		}
		t.Logf("%s generated program output: %s", model, strings.TrimSpace(string(out)))
	}
}
