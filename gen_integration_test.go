package ramiel_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	ramiel "repro"
)

// TestGeneratedCodeCompilesAndRuns is the end-to-end check of the paper's
// headline deliverable: the generated parallel program must be real,
// compilable, runnable code — not pseudo-output. It generates the parallel
// Go for Squeezenet, builds it with the actual Go toolchain, executes it,
// and requires the program's own parallel-vs-sequential verification to
// pass.
func TestGeneratedCodeCompilesAndRuns(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	src, err := prog.GenerateGo(ramiel.CodegenOptions{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}

	// The generated file imports "repro", so it must live inside this
	// module; an underscore-prefixed directory keeps it out of ./...
	dir := filepath.Join(".", "_gentest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", "./"+dir)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "outputs verified") {
		t.Fatalf("generated program did not verify outputs:\n%s", out)
	}
	t.Logf("generated program output: %s", strings.TrimSpace(string(out)))
}
