package ramiel_test

import (
	"context"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// benchOpts keeps the per-iteration cost of the table regenerators modest:
// small images, single measurement rep, and a capped IOS DP.
var benchOpts = bench.Opts{ImageSize: 32, Reps: 1, Cores: 12, IOSBlockCap: 12}

// runTable is the common driver: regenerate the table/figure b.N times and
// report its size so the benchmark has a visible unit of work.
func runTable(b *testing.B, fn func(bench.Opts) (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := fn(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per table and figure of the paper's evaluation section.

func BenchmarkTable1PotentialParallelism(b *testing.B) { runTable(b, bench.Table1) }
func BenchmarkTable2ClusterMerging(b *testing.B)       { runTable(b, bench.Table2) }
func BenchmarkTable3ConstPropDCE(b *testing.B)         { runTable(b, bench.Table3) }
func BenchmarkTable4LinearClustering(b *testing.B)     { runTable(b, bench.Table4) }
func BenchmarkTable5IntraOp(b *testing.B)              { runTable(b, bench.Table5) }
func BenchmarkTable6LCPlusDCE(b *testing.B)            { runTable(b, bench.Table6) }
func BenchmarkTable7Overall(b *testing.B)              { runTable(b, bench.Table7) }
func BenchmarkTable8VsIOS(b *testing.B)                { runTable(b, bench.Table8) }
func BenchmarkFig12Cloning(b *testing.B)               { runTable(b, bench.Fig12) }
func BenchmarkFig13Hyperclustering(b *testing.B)       { runTable(b, bench.Fig13) }
func BenchmarkFig14SwitchedHyper(b *testing.B)         { runTable(b, bench.Fig14) }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationMerge(b *testing.B)          { runTable(b, bench.AblationMerge) }
func BenchmarkAblationEdgeCost(b *testing.B)       { runTable(b, bench.AblationEdgeCost) }
func BenchmarkAblationCloneThreshold(b *testing.B) { runTable(b, bench.AblationCloneThreshold) }
func BenchmarkAblationChanDepth(b *testing.B)      { runTable(b, bench.AblationChanDepth) }

// Micro-benchmarks of the pipeline stages themselves (compile-time story:
// LC must stay in the milliseconds while IOS explodes).

func BenchmarkLinearClusterSqueezenet(b *testing.B) { benchCompile(b, "squeezenet") }
func BenchmarkLinearClusterBERT(b *testing.B)       { benchCompile(b, "bert") }
func BenchmarkLinearClusterNASNet(b *testing.B)     { benchCompile(b, "nasnet") }

func benchCompile(b *testing.B, model string) {
	b.Helper()
	g, err := ramiel.BuildModel(model, ramiel.ModelConfig{ImageSize: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ramiel.Compile(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIOSCompileSqueezenet(b *testing.B) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 32})
	m := cost.DefaultModel()
	opts := sched.DefaultIOSOptions()
	opts.MaxBlockChains = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.IOS(g, m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPruneBERT(b *testing.B) {
	g := models.MustBuild("bert", models.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ramiel.Compile(g, ramiel.WithPrune()); err != nil {
			b.Fatal(err)
		}
	}
}

// Executor benches: real parallel run vs sequential run on this host.

func BenchmarkRunSequentialSqueezenet(b *testing.B) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 32})
	feeds := models.RandomInputs(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSequential(g, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunParallelSqueezenet(b *testing.B) {
	g, _ := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 32})
	prog, err := ramiel.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	feeds := ramiel.RandomInputs(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// Kernel benches, with and without intra-op parallelism (the ablation for
// the parallel-for grain).

func BenchmarkConv3x3(b *testing.B)         { benchConv(b, 1) }
func BenchmarkConv3x3IntraOp4(b *testing.B) { benchConv(b, 4) }

func benchConv(b *testing.B, threads int) {
	b.Helper()
	r := tensor.NewRNG(1)
	x := r.RandTensor(1, 16, 32, 32)
	w := r.RandTensor(32, 16, 3, 3)
	tensor.SetIntraOpThreads(threads)
	defer tensor.SetIntraOpThreads(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ramiel.Call("Conv", []*ramiel.Tensor{x, w},
			ramiel.Attrs{"pads": []int{1, 1, 1, 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// Serving benches: requests/sec through the serving runtime (compile-once
// program cache, concurrent clients) against the naive compile-per-request
// baseline the cache exists to beat.

func BenchmarkServeThroughput(b *testing.B) {
	s := serve.New(serve.Config{MaxBatch: 4, FlushTimeout: 500 * time.Microsecond})
	defer s.Close(context.Background())
	if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
		b.Fatal(err)
	}
	if err := s.Warm(); err != nil {
		b.Fatal(err)
	}
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		b.Fatal(err)
	}
	// 8 clients per core: micro-batching only coalesces under concurrent
	// load, so the client count must not collapse on small hosts.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, false); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := s.Registry().Stats()
	b.ReportMetric(float64(st.Compiles), "compiles")
}

func BenchmarkServeThroughputNoBatch(b *testing.B) {
	s := serve.New(serve.Config{MaxBatch: 1})
	defer s.Close(context.Background())
	if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
		b.Fatal(err)
	}
	if err := s.Warm(); err != nil {
		b.Fatal(err)
	}
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeArena measures steady-state batch-1 serving with the
// per-worker tensor arena on vs off. Run with -benchmem: the arena run
// must show materially fewer allocs/op and B/op — the per-request
// intermediate tensors move from GC garbage to free-list reuse.
func BenchmarkServeArena(b *testing.B) {
	for _, bc := range []struct {
		name    string
		noArena bool
	}{{"on", false}, {"off", true}} {
		b.Run(bc.name, func(b *testing.B) {
			s := serve.New(serve.Config{Workers: 2, MaxBatch: 1, NoArena: bc.noArena})
			defer s.Close(context.Background())
			if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
				b.Fatal(err)
			}
			if err := s.Warm(); err != nil {
				b.Fatal(err)
			}
			feeds, err := s.RandomFeeds("squeezenet", 1)
			if err != nil {
				b.Fatal(err)
			}
			// Reach steady state before measuring.
			for i := 0; i < 5; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st, ok := s.ArenaStats(); ok && st.Gets > 0 {
				b.ReportMetric(100*float64(st.Hits)/float64(st.Gets), "arena-hit-%")
			}
		})
	}
}

// BenchmarkServeObs measures the serving hot path with telemetry on
// (default: stage histograms + request tracing) vs off. Run with -benchmem:
// the deltas are the observability layer's whole per-request cost — the
// design target is zero extra allocations and low tens of nanoseconds.
func BenchmarkServeObs(b *testing.B) {
	for _, bc := range []struct {
		name  string
		noObs bool
	}{{"on", false}, {"off", true}} {
		b.Run(bc.name, func(b *testing.B) {
			s := serve.New(serve.Config{Workers: 2, MaxBatch: 1, NoObs: bc.noObs})
			defer s.Close(context.Background())
			if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
				b.Fatal(err)
			}
			if err := s.Warm(); err != nil {
				b.Fatal(err)
			}
			feeds, err := s.RandomFeeds("squeezenet", 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeTimeline measures the serving hot path with the execution
// timeline flight recorder off (the default) vs sampling 1 run in 32. Run
// with -benchmem: the "off" variant must match the plain serving numbers
// exactly (the recorder costs one atomic load per run when absent), while
// "on" shows the amortized cost of the sampled runs' span capture.
func BenchmarkServeTimeline(b *testing.B) {
	for _, bc := range []struct {
		name  string
		every int
	}{{"off", 0}, {"on", 32}} {
		b.Run(bc.name, func(b *testing.B) {
			s := serve.New(serve.Config{Workers: 2, MaxBatch: 1, TimelineEvery: bc.every})
			defer s.Close(context.Background())
			if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, "squeezenet"); err != nil {
				b.Fatal(err)
			}
			if err := s.Warm(); err != nil {
				b.Fatal(err)
			}
			feeds, err := s.RandomFeeds("squeezenet", 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServeCompilePerRequest(b *testing.B) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	feeds := ramiel.RandomInputs(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := ramiel.Compile(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Run(feeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := tensor.NewRNG(2)
	a := r.RandTensor(128, 128)
	c := r.RandTensor(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ramiel.Call("MatMul", []*ramiel.Tensor{a, c}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
