// Codegen: the paper's headline deliverable — readable, executable parallel
// code generated from the clustered dataflow graph (Section IV, Algorithm
// 4, Fig. 11). This example clusters GoogleNet and writes a runnable Go
// program where each cluster is one function and cross-cluster tensor
// dependences are explicit queue Send/Recv calls.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	ramiel "repro"
)

func main() {
	g, err := ramiel.BuildModel("googlenet", ramiel.ModelConfig{ImageSize: 32})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	src, err := prog.GenerateGo(ramiel.CodegenOptions{EmitMain: true})
	if err != nil {
		log.Fatal(err)
	}

	out := "googlenet_parallel.go"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(src, "\n")
	fmt.Printf("generated %d lines of parallel Go for %d clusters → %s\n",
		len(lines), prog.NumClusters(), out)
	fmt.Printf("messaging: %d Sends, %d Recvs\n",
		strings.Count(src, "q.Send("), strings.Count(src, "q.Recv("))

	// Show the flavor of the generated code: the first messaging cluster.
	fmt.Println("\n--- snippet (first cluster exchanging messages) ---")
	printed := 0
	inFunc := false
	for _, line := range lines {
		if strings.HasPrefix(line, "func cluster1(") {
			inFunc = true
		}
		if inFunc {
			fmt.Println(line)
			printed++
			if printed > 18 || strings.HasPrefix(line, "}") && printed > 1 {
				break
			}
		}
	}
	fmt.Println("...")
	fmt.Println("\nbuild it from the module root with: go build", out)
}
