// BERT: the paper's graph-pruning case study (Fig. 3, Tables III and VI).
// BERT's ONNX export carries constant shape-computation chains in every
// multi-headed-attention block; constant propagation + dead-code
// elimination folds them away, which both shrinks the graph and collapses
// the clustering.
package main

import (
	"context"
	"fmt"
	"log"

	ramiel "repro"
	"repro/internal/exec"
)

func main() {
	g, err := ramiel.BuildModel("bert", ramiel.ModelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bert: %d nodes (12 transformer layers with exporter constant chains)\n", len(g.Nodes))

	plain, err := ramiel.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := ramiel.Compile(g, ramiel.WithPrune())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constant propagation folded %d nodes; DCE removed %d nodes and %d initializers\n",
		pruned.PruneReport.Fold.Folded,
		pruned.PruneReport.DCE.RemovedNodes,
		pruned.PruneReport.DCE.RemovedInitializers)
	fmt.Printf("graph: %d → %d nodes; clusters: %d → %d (paper Table III: 5 → 3)\n",
		len(g.Nodes), len(pruned.Graph.Nodes),
		plain.NumClusters(), pruned.NumClusters())

	// Speedups on the measured-cost 12-core simulation, both against the
	// UNPRUNED sequential baseline (as in Table VI).
	feeds := ramiel.RandomInputs(g, 1)
	base, err := exec.MeasureCosts(g, feeds, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	baseSeq := base.TotalMicros()

	sim := func(p *ramiel.Program) float64 {
		f := ramiel.RandomInputs(p.Graph, 1)
		mm, err := exec.MeasureCosts(p.Graph, f, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		mm.PaperEquivalentQueues()
		res, err := exec.Simulate(p.Plan, mm)
		if err != nil {
			log.Fatal(err)
		}
		return baseSeq / res.Makespan
	}
	fmt.Printf("simulated speedup: LC %.2fx → LC+CP+DCE %.2fx (paper: 1.07x → 1.15x)\n",
		sim(plain), sim(pruned))

	// Pruning must not change the classifier logits.
	want, err := plain.RunSequential(feeds)
	if err != nil {
		log.Fatal(err)
	}
	got, err := pruned.NewSession().Run(context.Background(), feeds)
	if err != nil {
		log.Fatal(err)
	}
	for name, w := range want {
		if !got[name].AllClose(w, 1e-4, 1e-5) {
			log.Fatalf("pruning changed output %q", name)
		}
	}
	fmt.Println("pruned parallel logits match the unpruned sequential run")
}
