// Hypercluster: the paper's Section III-E. With batch size > 1, operations
// from several inference samples are interleaved into each cluster so a
// lane blocked on a remote tensor of one sample computes another sample
// instead; switched hyperclustering additionally rotates cluster
// assignments per sample to balance lane loads (Figs. 8, 9, 13, 14).
package main

import (
	"context"
	"fmt"
	"log"

	ramiel "repro"
	"repro/internal/exec"
)

func main() {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("squeezenet: %d clusters at batch 1\n\n", prog.NumClusters())
	fmt.Printf("%6s | %10s %10s %10s\n", "batch", "plain", "switched", "uplift")

	for _, batch := range []int{2, 4, 8} {
		var sp [2]float64
		for i, switched := range []bool{false, true} {
			hp, err := prog.Hypercluster(batch, switched)
			if err != nil {
				log.Fatal(err)
			}
			feeds := ramiel.RandomInputs(hp.Graph, 1)
			mm, err := exec.MeasureCosts(hp.Graph, feeds, 1, 0)
			if err != nil {
				log.Fatal(err)
			}
			mm.PaperEquivalentQueues()
			res, err := exec.Simulate(hp.Plan, mm)
			if err != nil {
				log.Fatal(err)
			}
			sp[i] = res.Speedup()

			// Verify real parallel execution for the smallest batch.
			if batch == 2 {
				want, err := ramiel.RunSequentialGraph(hp.Graph, feeds)
				if err != nil {
					log.Fatal(err)
				}
				got, err := hp.NewSession().Run(context.Background(), feeds)
				if err != nil {
					log.Fatal(err)
				}
				for name, w := range want {
					if !got[name].AllClose(w, 1e-4, 1e-5) {
						log.Fatalf("batch %d switched=%v: output %q differs", batch, switched, name)
					}
				}
			}
		}
		fmt.Printf("%6d | %9.2fx %9.2fx %+8.1f%%\n", batch, sp[0], sp[1], (sp[1]/sp[0]-1)*100)
	}
	fmt.Println("\n(batch-2 runs verified against the sequential batched execution)")
	fmt.Println("paper: hypercluster speedup rises with batch size; switching adds up to ~30%")
}
