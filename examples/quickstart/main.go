// Quickstart: build Squeezenet, task-parallelize it with critical-path
// linear clustering, run the parallel program and verify it against the
// sequential baseline — the end-to-end flow of the paper in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	ramiel "repro"
)

func main() {
	// 1. Ingest a model (Squeezenet: the paper's Fig. 1 running example).
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d operator nodes\n", g.Name, len(g.Nodes))

	// 2. Compile: distance pass → recursive critical-path linear
	//    clustering → iterative cluster merging.
	prog, err := ramiel.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d clusters in %v\n", prog.NumClusters(), prog.CompileTime.Round(time.Microsecond))
	met, err := prog.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("potential parallelism: %.2fx (paper reports 0.86x for Squeezenet)\n", met.Parallelism)

	// 3. Execute through a Session: one goroutine per cluster, channels
	//    carry cross-cluster tensors; the session owns a tensor arena that
	//    recycles intermediates across its runs and records a per-lane
	//    profile. Verify against the sequential reference.
	sess := prog.NewSession(ramiel.WithProfiling())
	feeds := ramiel.RandomInputs(g, 42)
	t0 := time.Now()
	want, err := prog.RunSequential(feeds)
	if err != nil {
		log.Fatal(err)
	}
	seq := time.Since(t0)
	t0 = time.Now()
	got, err := sess.Run(context.Background(), feeds)
	if err != nil {
		log.Fatal(err)
	}
	par := time.Since(t0)
	prof := sess.Profile()
	for name, w := range want {
		if !got[name].AllClose(w, 1e-4, 1e-5) {
			log.Fatalf("output %q differs between parallel and sequential run", name)
		}
	}
	fmt.Printf("sequential %v, parallel %v — outputs identical\n",
		seq.Round(time.Microsecond), par.Round(time.Microsecond))
	fmt.Printf("communication slack across lanes: %v (hyperclustering exists to fill this)\n",
		prof.TotalSlack().Round(time.Microsecond))
}
