// Inception: the paper's cloning case study (Fig. 7). Inception V3 has
// parallel paths of very low computational intensity; limited task cloning
// replicates the cheap fan-out nodes so linear clustering can extend paths
// and drop cross-cluster messages. This example compares plain LC with
// LC + cloning on the measured-cost 12-core simulation.
package main

import (
	"context"
	"fmt"
	"log"

	ramiel "repro"
	"repro/internal/exec"
)

func main() {
	g, err := ramiel.BuildModel("inception_v3", ramiel.ModelConfig{ImageSize: 64})
	if err != nil {
		log.Fatal(err)
	}

	plain, err := ramiel.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	cloned, err := ramiel.Compile(g, ramiel.WithClone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inception_v3: %d nodes; cloning replicated %d nodes (+%d replicas)\n",
		len(g.Nodes), cloned.CloneReport.ClonedNodes, cloned.CloneReport.AddedNodes)
	fmt.Printf("cross-cluster messages: plain %d → cloned %d\n",
		plain.Clustering.CrossEdges(), cloned.Clustering.CrossEdges())

	speedup := func(p *ramiel.Program, baseline float64) float64 {
		feeds := ramiel.RandomInputs(p.Graph, 1)
		mm, err := exec.MeasureCosts(p.Graph, feeds, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		mm.PaperEquivalentQueues()
		res, err := exec.Simulate(p.Plan, mm)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = res.TotalWork
		}
		return baseline / res.Makespan
	}
	// Common baseline: the un-cloned sequential time (cloning adds
	// redundant work, so its own TotalWork would flatter it).
	feeds := ramiel.RandomInputs(g, 1)
	base, err := exec.MeasureCosts(g, feeds, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	sPlain := speedup(plain, base.TotalMicros())
	sClone := speedup(cloned, base.TotalMicros())
	fmt.Printf("simulated 12-core speedup: plain LC %.2fx, LC+cloning %.2fx (%+.1f%%)\n",
		sPlain, sClone, (sClone/sPlain-1)*100)
	fmt.Println("paper: Inception V3 1.32x → 1.42x with cloning (Table VII)")

	// Per-cluster report for the cloned program.
	fmt.Println("\ncloned clustering:")
	for _, c := range cloned.Clustering.Clusters {
		fmt.Printf("  C%-3d %4d ops, static cost %6.0f\n",
			c.ID, len(c.Nodes), c.Cost(cloned.Clustering.Model))
	}

	// Sanity: cloned program computes the same function.
	want, err := plain.RunSequential(feeds)
	if err != nil {
		log.Fatal(err)
	}
	got, err := cloned.NewSession().Run(context.Background(), feeds)
	if err != nil {
		log.Fatal(err)
	}
	for name, w := range want {
		if !got[name].AllClose(w, 1e-4, 1e-5) {
			log.Fatalf("cloning changed output %q", name)
		}
	}
	fmt.Println("\ncloned parallel outputs verified against plain sequential run")
}
