package ramiel_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	ramiel "repro"
)

// TestTimelineOffZeroAllocs pins the flight recorder's off-path cost on the
// steady-state run loop: a program with no recorder and a program whose
// recorder is attached but not sampling this run must allocate identically.
// The recorder's unsampled path is one atomic pointer load plus an atomic
// counter increment — no allocations, so enabling sampling at a large
// interval leaves the hot loop untouched between samples.
func TestTimelineOffZeroAllocs(t *testing.T) {
	build := func() *ramiel.Program {
		g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ramiel.Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	base := build()
	timed := build()
	// Sampled runs allocate, so push the next sample far away; run 1 is
	// always sampled, and the warm-up below consumes it.
	timed.EnableTimeline(1<<30, 1)

	ctx := context.Background()
	feeds := ramiel.RandomInputs(base.Graph, 1)
	sessBase := base.NewSession()
	sessTimed := timed.NewSession()
	for i := 0; i < 3; i++ {
		if _, err := sessBase.Run(ctx, feeds); err != nil {
			t.Fatal(err)
		}
		if _, err := sessTimed.Run(ctx, feeds); err != nil {
			t.Fatal(err)
		}
	}
	if timed.LastTimeline() == nil {
		t.Fatal("warm-up did not consume the first sample")
	}

	run := func(s *ramiel.Session) func() {
		return func() {
			if _, err := s.Run(ctx, feeds); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocsBase := testing.AllocsPerRun(20, run(sessBase))
	allocsTimed := testing.AllocsPerRun(20, run(sessTimed))
	if allocsTimed > allocsBase {
		t.Errorf("timeline-off run allocates more: %v > %v allocs/run",
			allocsTimed, allocsBase)
	}
	t.Logf("allocs/run: baseline %.0f, recorder attached but idle %.0f",
		allocsBase, allocsTimed)
}

// TestTimelineChromeTraceAcceptance is the PR's acceptance check: the
// exported trace of a bundled model is valid Chrome trace-event JSON and
// its per-op durations sum to within 10% of the run's measured execution
// busy time (the per-lane Busy totals the profiler records for the same
// run).
func TestTimelineChromeTraceAcceptance(t *testing.T) {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	prog.EnableTimeline(1, 2)
	sess := prog.NewSession(ramiel.WithProfiling())
	ctx := context.Background()
	feeds := ramiel.RandomInputs(g, 1)
	// Warm once so the measured run reuses the arena steady state.
	if _, err := sess.Run(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	prof := sess.Profile()
	tl := prog.LastTimeline()
	if prof == nil || tl == nil {
		t.Fatal("missing profile or timeline")
	}

	data, err := tl.ChromeTrace(g.Name)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var opEvents int
	var opUs float64
	for _, e := range file.TraceEvents {
		if e.Ph == "X" && e.Cat == "op" {
			opEvents++
			if e.Dur == nil {
				t.Fatalf("op event %q without dur", e.Name)
			}
			opUs += *e.Dur
		}
	}
	if opEvents != len(prog.Graph.Nodes) {
		t.Errorf("%d op events, want %d (one per compiled node)",
			opEvents, len(prog.Graph.Nodes))
	}

	// The profiler's per-lane Busy sums the same kernel timings the
	// timeline records span-by-span; the two views of the run must agree.
	var busy time.Duration
	for _, l := range prof.Lanes {
		busy += l.Busy
	}
	opTime := time.Duration(opUs * float64(time.Microsecond))
	diff := opTime - busy
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(busy) {
		t.Errorf("trace op time %v vs measured busy %v: off by %v (> 10%%)",
			opTime, busy, diff)
	}
	t.Logf("trace op time %v, measured busy %v (%.1f%% apart)",
		opTime, busy, 100*float64(diff)/float64(busy))
}
