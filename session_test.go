package ramiel_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	ramiel "repro"
)

// compiledSqueezenet compiles the shared small squeezenet used by the
// session tests.
func compiledSqueezenet(t testing.TB, img int) (*ramiel.Program, ramiel.Env) {
	t.Helper()
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: img})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return prog, ramiel.RandomInputs(g, 42)
}

// TestDeprecatedRunWrappersMatchSession asserts output-equivalence of the
// old 2×2 run-method matrix against Session.Run — the deprecation contract:
// the wrappers are thin session shims, not a parallel implementation.
func TestDeprecatedRunWrappersMatchSession(t *testing.T) {
	prog, feeds := compiledSqueezenet(t, 16)
	ctx := context.Background()

	want, err := prog.NewSession().Run(ctx, feeds)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got ramiel.Env, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s returned %d outputs, session returned %d", name, len(got), len(want))
		}
		for k, w := range want {
			if got[k] == nil || !got[k].Equal(w) {
				t.Errorf("%s: output %q differs from Session.Run", name, k)
			}
		}
	}

	got, err := prog.Run(feeds)
	check("Run", got, err)

	ar := ramiel.NewArena()
	got, err = prog.RunArena(feeds, ar)
	check("RunArena", got, err)

	got, prof, err := prog.RunProfiled(feeds)
	check("RunProfiled", got, err)
	if prof == nil || len(prof.Lanes) != prog.NumClusters() {
		t.Errorf("RunProfiled profile = %+v, want %d lanes", prof, prog.NumClusters())
	}

	got, prof, err = prog.RunProfiledArena(feeds, ar)
	check("RunProfiledArena", got, err)
	if prof == nil || len(prof.Lanes) != prog.NumClusters() {
		t.Errorf("RunProfiledArena profile = %+v, want %d lanes", prof, prog.NumClusters())
	}

	// Sessions default to owning an arena; the arena-less session matches
	// too (same function, different allocator).
	got, err = prog.NewSession(ramiel.WithoutArena()).Run(ctx, feeds)
	check("Session(WithoutArena)", got, err)

	// The old Plan.RunArena contract accepted a nil arena as "heap run";
	// the wrapper (and WithArena(nil)) must preserve that, not silently
	// fabricate a throwaway arena per call.
	got, err = prog.RunArena(feeds, nil)
	check("RunArena(nil)", got, err)
	if s := prog.NewSession(ramiel.WithArena(nil)); s.Arena() != nil {
		t.Error("WithArena(nil) created an arena; want heap execution")
	}
}

// TestSessionProfileToggle: Profile returns nil without WithProfiling and
// the last run's lanes with it.
func TestSessionProfileToggle(t *testing.T) {
	prog, feeds := compiledSqueezenet(t, 16)
	ctx := context.Background()

	plain := prog.NewSession()
	if _, err := plain.Run(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	if plain.Profile() != nil {
		t.Error("Profile non-nil without WithProfiling")
	}

	profiled := prog.NewSession(ramiel.WithProfiling())
	if profiled.Profile() != nil {
		t.Error("Profile non-nil before first run")
	}
	if _, err := profiled.Run(ctx, feeds); err != nil {
		t.Fatal(err)
	}
	prof := profiled.Profile()
	if prof == nil || len(prof.Lanes) != prog.NumClusters() || prof.Wall <= 0 {
		t.Errorf("profile after run = %+v, want %d lanes and positive wall", prof, prog.NumClusters())
	}
}

// TestValidateFeeds: every class of bad feed is named in one clear error
// before any lane starts.
func TestValidateFeeds(t *testing.T) {
	prog, feeds := compiledSqueezenet(t, 16)

	if err := prog.ValidateFeeds(feeds); err != nil {
		t.Fatalf("valid feeds rejected: %v", err)
	}

	if err := prog.ValidateFeeds(ramiel.Env{}); err == nil || !strings.Contains(err.Error(), "missing inputs: input") {
		t.Errorf("missing input not named: %v", err)
	}

	bad := ramiel.Env{"input": ramiel.ZerosTensor(1, 3, 8, 8)}
	err := prog.ValidateFeeds(bad)
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") || !strings.Contains(err.Error(), "input") {
		t.Errorf("shape mismatch not named: %v", err)
	}

	extra := ramiel.Env{}
	for k, v := range feeds {
		extra[k] = v
	}
	extra["bogus"] = ramiel.ZerosTensor(1)
	if err := prog.ValidateFeeds(extra); err == nil || !strings.Contains(err.Error(), "unknown inputs: bogus") {
		t.Errorf("unknown input not named: %v", err)
	}

	// Session.Run applies the same validation up front, so the error is
	// the readable one, not a lane failure.
	if _, err := prog.NewSession().Run(context.Background(), ramiel.Env{}); err == nil ||
		!strings.Contains(err.Error(), "missing inputs") {
		t.Errorf("Session.Run missing-feed error: %v", err)
	}
}

// TestSessionCancelMidRunConcurrent is the mid-run cancellation
// acceptance test (run with -race): cancel while lanes are busy, assert
// the run returns context.Canceled before completing, that no goroutines
// leak, and that the session — including its arena — is reusable
// afterward.
func TestSessionCancelMidRunConcurrent(t *testing.T) {
	prog, feeds := compiledSqueezenet(t, 64) // big enough to cancel mid-flight
	want, err := prog.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}
	sess := prog.NewSession() // default: session-owned arena
	before := runtime.NumGoroutine()

	cancelled := false
	for attempt := 0; attempt < 25 && !cancelled; attempt++ {
		// Ramp the cancel delay from 50µs: a fixed delay razes the test
		// when kernel speedups shrink the whole run below it, while the
		// ramp guarantees some attempt lands mid-flight on any host.
		delay := time.Duration(attempt+1) * 50 * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			cancel()
		}()
		_, runErr := sess.Run(ctx, feeds)
		wg.Wait()
		cancel()
		switch {
		case runErr == nil:
			// Run finished before the cancel landed; try again.
		case errors.Is(runErr, context.Canceled):
			cancelled = true
		default:
			t.Fatalf("cancelled session run failed with non-context error: %v", runErr)
		}
	}
	if !cancelled {
		t.Fatal("never observed a mid-run cancellation in 25 attempts")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after cancelled session runs", before, n)
	}

	// The session (and its arena) survives cancellation: the next run
	// succeeds and still matches the sequential reference.
	got, err := sess.Run(context.Background(), feeds)
	if err != nil {
		t.Fatalf("session run after cancellation: %v", err)
	}
	for k, w := range want {
		if got[k] == nil || !got[k].AllClose(w, 1e-4, 1e-5) {
			t.Errorf("post-cancellation output %q diverged from sequential reference", k)
		}
	}
}

// TestSessionBusyConcurrentRun: overlapping Run calls on one session are
// rejected with ErrSessionBusy instead of corrupting shared state.
func TestSessionBusyConcurrentRun(t *testing.T) {
	prog, feeds := compiledSqueezenet(t, 64)
	sess := prog.NewSession()
	// Probe with a pre-cancelled context: a busy session reports
	// ErrSessionBusy before looking at ctx, while an idle one returns
	// context.Canceled without doing any work — a cheap busy detector.
	probeCtx, probeCancel := context.WithCancel(context.Background())
	probeCancel()
	for attempt := 0; attempt < 10; attempt++ {
		first := make(chan error, 1)
		go func() { _, err := sess.Run(context.Background(), feeds); first <- err }()
		// Probe until the main run completes, so the probes are guaranteed
		// to overlap it once it gets scheduled.
		var busy bool
		var err error
		var finished bool
		for !finished {
			select {
			case err = <-first:
				finished = true
			default:
				if _, perr := sess.Run(probeCtx, feeds); errors.Is(perr, ramiel.ErrSessionBusy) {
					busy = true
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
		// The probes themselves can win the flag for an instant, bouncing
		// the main run; that counts as an observed exclusion too.
		if err != nil && !errors.Is(err, ramiel.ErrSessionBusy) {
			t.Fatal(err)
		}
		if busy || errors.Is(err, ramiel.ErrSessionBusy) {
			return
		}
	}
	t.Fatal("never observed ErrSessionBusy while a run was in flight")
}
