//go:build race

package ramiel_test

// raceEnabled reports whether this test binary runs under the race
// detector, where sync.Pool deliberately drops a fraction of Put items —
// which makes per-worker arenas non-deterministic.
const raceEnabled = true
