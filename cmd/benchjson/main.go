// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout), one object per benchmark result with its metrics
// keyed by unit. CI uses it to emit per-PR benchmark artifacts (e.g.
// BENCH_kernels.json) so the perf trajectory of the kernel core is tracked
// machine-readably instead of scraped from logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x ./internal/kernels/ | benchjson > BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, e.g.
// "BenchmarkGEMM  610  4017203 ns/op  66.82 GFLOPS".
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		out []result
		pkg string
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no tests to run]"
		}
		r := result{Name: fields[0], Package: pkg, Iterations: iters,
			Metrics: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
