// Command ramielfe is the Ramiel fleet front-end: it turns N ramield
// replicas — remote daemons named with -replicas, or in-process runtimes
// started with -inproc — into one serving endpoint with consistent-hash
// routing by model (keeping each replica's program cache, prepacked
// weights, and session arenas warm), queue-watermark spillover, and
// deadline-feasibility admission control that rejects infeasible requests
// in microseconds instead of queueing them to time out. Replica failures
// stay the fleet's problem: retryable errors re-route to the next healthy
// ring member under a fleet-wide retry budget (-max-attempts,
// -retry-budget), -hedge duplicates requests stuck on a silent replica,
// and per-replica circuit breakers (-breaker-threshold, -breaker-cooldown)
// eject repeat offenders from routing until a half-open probe succeeds.
// Dead remotes are probed on exponential backoff with jitter, not hammered
// on the -probe tick. 429 sheds carry a Retry-After estimate derived from
// the predicted queue wait. Routing also reads each replica's memory
// headroom (from the stats probe, or live for in-process replicas) and
// steers away from replicas whose memory governor reports no headroom;
// -mem-budget governs the in-process replicas the same way ramield's flag
// does, and -max-body caps the front's own request bodies (413).
//
// Endpoints:
//
//	POST /v1/infer — routed + admission-controlled inference (ramield wire
//	                 format; X-Fleet-Replica reports placement, 429 with a
//	                 cause label on shed)
//	GET  /v1/fleet — replica topology, health, and per-model admission
//	                 stats (alias: /v1/stats)
//	GET  /metrics  — Prometheus text exposition (fleet families)
//	GET  /healthz  — liveness
//	GET  /readyz   — readiness: not draining and >= 1 replica ready
//
// Examples:
//
//	ramielfe -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//	ramielfe -inproc 4 -models squeezenet -adaptive
//	ramielfe -replicas http://a:8080 -admission=false   # route-only
//	ramielfe -inproc 3 -hedge 20ms -breaker-threshold 3 # tail + failure hardening
//
// On SIGTERM/SIGINT the front drains: /readyz flips to 503, new work is
// rejected, in-flight requests finish, then in-process replicas shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	ramiel "repro"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ramielfe: ")

	addr := flag.String("addr", ":8070", "listen address")
	remotes := flag.String("replicas", "", "comma-separated ramield base URLs (remote replicas)")
	inproc := flag.Int("inproc", 0, "in-process replicas to start (single-host fleet; combines with -replicas)")
	probe := flag.Duration("probe", time.Second, "remote replica health/load probe interval")

	admission := flag.Bool("admission", true, "reject deadline-infeasible requests at enqueue")
	maxPending := flag.Int("max-pending", 0, "per-model admitted-but-unfinished cap (0 = 4x total workers)")
	watermark := flag.Int64("watermark", 0, "replica queue depth that triggers spillover to the next ring member (0 = 2x replica workers)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline (feasibility budget)")

	maxAttempts := flag.Int("max-attempts", 0, "total tries per request across replicas, first included (0 = min(3, replicas); 1 disables retries)")
	hedge := flag.Duration("hedge", 0, "speculative second attempt on another replica after this wait (0 disables hedging)")
	retryBudget := flag.Float64("retry-budget", 0, "fleet-wide retry tokens earned per admitted request (0 = 0.2; negative = no refill)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive replica failures that open its circuit breaker (0 = 5; negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe request (0 = 2s)")

	modelsFlag := flag.String("models", "squeezenet,googlenet",
		"in-process replicas: comma-separated zoo models ("+strings.Join(ramiel.ModelNames(), ", ")+"); empty for all")
	img := flag.Int("img", 32, "in-process replicas: image size for zoo vision models")
	workers := flag.Int("workers", 0, "in-process replicas: concurrent plan executions each (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4, "in-process replicas: micro-batch cap")
	flush := flag.Duration("flush", 2*time.Millisecond, "in-process replicas: micro-batch flush window (cap when -adaptive)")
	adaptive := flag.Bool("adaptive", true, "in-process replicas: latency-aware adaptive flush windows")
	memBudget := flag.Int64("mem-budget", 0, "in-process replicas: memory budget in bytes, split across them (0 = 80% of cgroup/system memory; negative disables)")
	maxBody := flag.Int64("max-body", 0, "POST /v1/infer request-body cap in bytes (0 = 8 MiB; negative disables)")
	flag.Parse()

	var replicas []fleet.Replica
	var locals []*serve.Server
	var probed []*fleet.Remote

	for i, base := range strings.Split(*remotes, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		r := fleet.NewRemote("remote"+strconv.Itoa(i)+"@"+base, base)
		replicas = append(replicas, r)
		probed = append(probed, r)
	}
	if *inproc > 0 {
		var zoo []string
		if *modelsFlag != "" {
			zoo = strings.Split(*modelsFlag, ",")
		}
		budget := *memBudget
		if budget == 0 {
			budget = serve.DetectMemoryBudget(0)
		}
		if budget < 0 {
			budget = 0
		}
		if budget > 0 {
			budget /= int64(*inproc)
		}
		cfg := serve.Config{
			Workers:        *workers,
			MaxBatch:       *maxBatch,
			FlushTimeout:   *flush,
			AdaptiveBatch:  *adaptive,
			Deadline:       *deadline,
			MemBudgetBytes: budget,
		}
		warmStart := time.Now()
		for i := 0; i < *inproc; i++ {
			srv := serve.New(cfg)
			if err := srv.RegisterZoo(ramiel.ModelConfig{ImageSize: *img}, zoo...); err != nil {
				log.Fatal(err)
			}
			if err := srv.Warm(); err != nil {
				log.Fatalf("warmup: %v", err)
			}
			locals = append(locals, srv)
			replicas = append(replicas, fleet.NewLocal("local"+strconv.Itoa(i), srv))
		}
		log.Printf("warmed %d in-process replicas in %v", *inproc,
			time.Since(warmStart).Round(time.Millisecond))
	}
	if len(replicas) == 0 {
		log.Fatal("no replicas: set -replicas URLs and/or -inproc N")
	}

	front := fleet.New(fleet.Config{
		NoAdmission:      !*admission,
		MaxPending:       *maxPending,
		SpillWatermark:   *watermark,
		Deadline:         *deadline,
		MaxAttempts:      *maxAttempts,
		HedgeDelay:       *hedge,
		RetryBudget:      *retryBudget,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxBodyBytes:     *maxBody,
	}, replicas...)
	for _, r := range probed {
		r.StartProbing(*probe)
	}
	log.Printf("fronting %d replicas (%d remote, %d in-process) on %s (admission %v)",
		len(replicas), len(probed), len(locals), *addr, *admission)

	httpSrv := &http.Server{Addr: *addr, Handler: front.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: readiness flips first (load balancers stop routing), the
	// listener closes gracefully so in-flight requests finish, then the
	// in-process runtimes shut down. Remote replicas drain themselves on
	// their own SIGTERM.
	log.Print("shutting down: draining")
	front.BeginDrain()
	for _, srv := range locals {
		srv.BeginDrain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	for _, r := range probed {
		r.StopProbing()
	}
	for _, srv := range locals {
		if err := srv.Close(shutdownCtx); err != nil {
			log.Printf("runtime shutdown: %v", err)
		}
	}
	fmt.Println("bye")
}
