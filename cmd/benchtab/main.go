// Command benchtab regenerates the paper's evaluation tables and figures
// (Tables I–VIII, Figs. 12–14) plus the design ablations, printing each next
// to the published numbers.
//
// Usage:
//
//	benchtab                     # everything
//	benchtab -table 4            # one table
//	benchtab -fig 13             # one figure
//	benchtab -ablations          # ablation studies only
//	benchtab -img 96 -cores 12   # harness parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	table := flag.Int("table", 0, "regenerate one table (1-8); 0 = all")
	fig := flag.Int("fig", 0, "regenerate one figure (12-14); 0 = all")
	ablations := flag.Bool("ablations", false, "run only the ablation studies")
	img := flag.Int("img", 64, "image size for vision models")
	reps := flag.Int("reps", 2, "measurement repetitions")
	cores := flag.Int("cores", 12, "simulated core count")
	iosCap := flag.Int("ioscap", 16, "IOS exact-DP block-size cap")
	flag.Parse()

	opts := bench.Opts{ImageSize: *img, Reps: *reps, Cores: *cores, IOSBlockCap: *iosCap}

	type job struct {
		name string
		fn   func(bench.Opts) (string, error)
	}
	tables := []job{
		{"table 1", bench.Table1}, {"table 2", bench.Table2},
		{"table 3", bench.Table3}, {"table 4", bench.Table4},
		{"table 5", bench.Table5}, {"table 6", bench.Table6},
		{"table 7", bench.Table7}, {"table 8", bench.Table8},
	}
	figs := []job{
		{"fig 12", bench.Fig12}, {"fig 13", bench.Fig13}, {"fig 14", bench.Fig14},
	}
	abls := []job{
		{"ablation merge", bench.AblationMerge},
		{"ablation edge cost", bench.AblationEdgeCost},
		{"ablation clone threshold", bench.AblationCloneThreshold},
		{"ablation chan depth", bench.AblationChanDepth},
	}

	var jobs []job
	switch {
	case *table > 0:
		if *table > len(tables) {
			log.Fatalf("no table %d", *table)
		}
		jobs = []job{tables[*table-1]}
	case *fig > 0:
		if *fig < 12 || *fig > 14 {
			log.Fatalf("no figure %d (have 12-14)", *fig)
		}
		jobs = []job{figs[*fig-12]}
	case *ablations:
		jobs = abls
	default:
		jobs = append(append(append([]job{}, tables...), figs...), abls...)
	}

	for _, j := range jobs {
		out, err := j.fn(opts)
		if err != nil {
			log.Printf("%s failed: %v", j.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
