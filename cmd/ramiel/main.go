// Command ramiel is the end-to-end tool of Section IV: it ingests a model
// (from the built-in zoo or an ONNX-subset file), runs the optimization and
// clustering pipeline, and then executes, simulates, generates parallel Go
// code, or dumps reports, depending on flags.
//
// Examples:
//
//	ramiel -model squeezenet -report
//	ramiel -model inception_v3 -prune -clone -run
//	ramiel -model googlenet -codegen gen.go
//	ramiel -model bert -prune -save bert.onnx.json.gz
//	ramiel -load bert.onnx.json.gz -report
//	ramiel -model squeezenet -batch 4 -switched -run
//	ramiel -model nasnet -dot nasnet.dot
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	ramiel "repro"
	"repro/internal/exec"
	"repro/internal/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ramiel: ")

	model := flag.String("model", "", "zoo model name ("+strings.Join(ramiel.ModelNames(), ", ")+")")
	load := flag.String("load", "", "load an ONNX-subset model file instead of -model")
	img := flag.Int("img", 64, "image size for vision models")
	seed := flag.Uint64("seed", 1, "input seed")

	prune := flag.Bool("prune", false, "run constant propagation + DCE")
	clone := flag.Bool("clone", false, "run limited task cloning")
	noMerge := flag.Bool("no-merge", false, "skip the cluster-merging pass")
	noFuse := flag.Bool("no-fuse", false, "skip operator fusion (BN folding, kernel epilogues, fused elementwise chains)")
	batch := flag.Int("batch", 1, "hypercluster to this batch size (>1 enables)")
	switched := flag.Bool("switched", false, "use switched hyperclustering")
	intra := flag.Int("intra", 1, "intra-op threads for real execution")

	run := flag.Bool("run", false, "execute parallel + sequential and verify")
	arena := flag.Bool("arena", true, "use arena-backed tensor memory for -run")
	report := flag.Bool("report", false, "print metrics, clusters and simulation")
	timelineOut := flag.String("timeline", "", "with -run: write the timed run's execution timeline as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	profileOut := flag.String("profile-out", "", "with -run: write the timed run's lane trace (and per-op spans) as profile JSON")
	calibrate := flag.Bool("calibrate", false, "run calibration reps and report measured op cost vs the static model")
	calibrateReps := flag.Int("calibrate-reps", 5, "parallel executions to accumulate for -calibrate")
	calibrateOut := flag.String("calibrate-out", "", "with -calibrate: write the full calibration report as JSON")
	codegen := flag.String("codegen", "", "write generated parallel Go code to this file")
	save := flag.String("save", "", "save the optimized model to this file")
	dot := flag.String("dot", "", "write a Graphviz rendering colored by cluster")
	flag.Parse()

	g, err := loadGraph(*model, *load, *img)
	if err != nil {
		log.Fatal(err)
	}

	var copts []ramiel.CompileOption
	if *prune {
		copts = append(copts, ramiel.WithPrune())
	}
	if *clone {
		copts = append(copts, ramiel.WithClone())
	}
	if *noMerge {
		copts = append(copts, ramiel.WithoutMerge())
	}
	if *noFuse {
		copts = append(copts, ramiel.WithoutFusion())
	}
	prog, err := ramiel.Compile(g, copts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d nodes, %d clusters, compile time %v\n",
		g.Name, len(prog.Graph.Nodes), prog.NumClusters(), prog.CompileTime.Round(time.Microsecond))
	if *prune {
		fmt.Printf("  pruning: folded %d nodes, removed %d dead nodes, %d dead initializers\n",
			prog.PruneReport.Fold.Folded, prog.PruneReport.DCE.RemovedNodes,
			prog.PruneReport.DCE.RemovedInitializers)
	}
	if *clone {
		fmt.Printf("  cloning: %d nodes replicated, %d replicas added\n",
			prog.CloneReport.ClonedNodes, prog.CloneReport.AddedNodes)
	}
	if fr := prog.FusionReport; fr.Any() {
		fmt.Printf("  fusion: %d BatchNorms folded, %d kernel epilogues attached, %d elementwise nodes collapsed into %d chains\n",
			fr.BNFolded, fr.Epilogues, fr.ChainNodes, fr.Chains)
	}

	if *batch > 1 {
		prog, err = prog.Hypercluster(*batch, *switched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  hyperclustered to batch %d (switched=%v): %d lanes over %d nodes\n",
			*batch, *switched, prog.NumClusters(), len(prog.Graph.Nodes))
	}

	ramiel.SetIntraOpThreads(*intra)
	if (*timelineOut != "" || *profileOut != "") && !*run {
		log.Fatal("-timeline and -profile-out need -run")
	}
	if *timelineOut != "" || *profileOut != "" {
		// Sample every run so the timed run in runAndVerify is captured.
		prog.EnableTimeline(1, 4)
	}
	did := false
	if *report {
		did = true
		printReport(prog)
	}
	if *run {
		did = true
		prof, err := runAndVerify(prog, *seed, *arena, *report)
		if err != nil {
			log.Fatal(err)
		}
		if *timelineOut != "" {
			if err := exportTimeline(prog, g.Name, *timelineOut); err != nil {
				log.Fatal(err)
			}
		}
		if *profileOut != "" {
			t := profile.FromProfile(g.Name, prof)
			t.AttachTimeline(prog.LastTimeline())
			if err := t.Save(*profileOut); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote lane profile (%d lanes, %d op spans) to %s\n",
				len(t.Lanes), len(t.Ops), *profileOut)
		}
	}
	if *calibrate {
		did = true
		if err := runCalibration(prog, *seed, *calibrateReps, *calibrateOut); err != nil {
			log.Fatal(err)
		}
	}
	if *codegen != "" {
		did = true
		genOpts := ramiel.CodegenOptions{EmitMain: true}
		if *model != "" {
			// The generated main rebuilds its environment from the zoo; it
			// must use the image size this graph was built at.
			genOpts.ModelConfigExpr = fmt.Sprintf("ramiel.ModelConfig{ImageSize: %d}", *img)
		}
		src, err := prog.GenerateGo(genOpts)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*codegen, []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %d lines of parallel Go to %s\n", strings.Count(src, "\n"), *codegen)
	}
	if *save != "" {
		did = true
		if err := ramiel.SaveModel(prog.Graph, *save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  saved model to %s\n", *save)
	}
	if *dot != "" {
		did = true
		owner := map[string]int{}
		if prog.Clustering != nil {
			owner = prog.Clustering.ClusterOf()
		}
		if err := os.WriteFile(*dot, []byte(prog.Graph.DOT(owner)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote DOT to %s\n", *dot)
	}
	if !did {
		fmt.Println("  (no action requested: use -run, -report, -calibrate, -codegen, -save or -dot)")
	}
}

func loadGraph(model, load string, img int) (*ramiel.Graph, error) {
	switch {
	case model != "" && load != "":
		return nil, fmt.Errorf("use either -model or -load, not both")
	case model != "":
		return ramiel.BuildModel(model, ramiel.ModelConfig{ImageSize: img})
	case load != "":
		return ramiel.LoadModel(load)
	default:
		return nil, fmt.Errorf("need -model <name> or -load <file>")
	}
}

func printReport(prog *ramiel.Program) {
	if prog.Clustering != nil {
		met, err := prog.Metrics()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  potential parallelism: %.2fx (node cost %.0f, critical path %.0f)\n",
			met.Parallelism, met.NodeCost, met.CriticalPath)
		fmt.Printf("  cross-cluster tensor dependences: %d\n", prog.Clustering.CrossEdges())
		sizes := make([]int, 0, prog.NumClusters())
		for _, lane := range prog.Plan.Lanes {
			sizes = append(sizes, len(lane))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		fmt.Printf("  cluster sizes (desc): %v\n", sizes)
	}
	sim, err := prog.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  static-model simulation: %.2fx speedup over sequential\n", sim.Speedup())

	// Measured-cost simulation of the paper's 12-core setup.
	feeds := ramiel.RandomInputs(prog.Graph, 1)
	mm, err := exec.MeasureCosts(prog.Graph, feeds, 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Static memory plan: liveness-driven buffer reuse and peak forecast
	// (sizes were recorded during the measurement run above, since shapes
	// are not statically inferable in this IR).
	if mp := prog.MemoryPlan(); mp != nil {
		ms := mp.Summary()
		fmt.Printf("  memory plan: %d managed values -> %d reuse slots (%d pinned outputs, %d dead)\n",
			ms.Managed, ms.Slots, ms.Pinned, ms.ZeroUse)
		est := mp.EstimateWithScratch(mm.ValueNumel, mm.ScratchNumel)
		fmt.Printf("  memory estimate: peak live %s, slot arena %s, unreused total %s\n",
			fmtBytes(est.PeakLiveBytes), fmtBytes(est.SlotBytes), fmtBytes(est.TotalBytes))
		if est.ScratchBytes > 0 {
			fmt.Printf("  kernel scratch: up to %s per lane (im2col + GEMM packing)\n",
				fmtBytes(est.ScratchBytes))
		}
	}
	if nodes, bytes := prog.PrepackedWeights(); nodes > 0 {
		fmt.Printf("  prepacked weights: %d nodes, %s packed at compile time\n",
			nodes, fmtBytes(bytes))
	}

	mm.PaperEquivalentQueues()
	res, err := exec.Simulate(prog.Plan, mm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  measured-cost simulation (12-core, paper-equivalent queues): seq %.2fms, par %.2fms, %.2fx\n",
		res.TotalWork/1000, res.Makespan/1000, res.Speedup())
}

func runAndVerify(prog *ramiel.Program, seed uint64, useArena, report bool) (*exec.Profile, error) {
	ctx := context.Background()
	feeds := ramiel.RandomInputs(prog.Graph, seed)
	// One reusable session carries the run configuration (arena, profiling)
	// across the warm-up and the timed run.
	sopts := []ramiel.SessionOption{ramiel.WithProfiling()}
	if !useArena {
		sopts = append(sopts, ramiel.WithoutArena())
	}
	sess := prog.NewSession(sopts...)
	// Warm both paths untimed so the printed speedup compares steady
	// states: sequential vs parallel, not cold-start vs warm-arena.
	if _, err := prog.RunSequential(feeds); err != nil {
		return nil, err
	}
	if _, err := sess.Run(ctx, feeds); err != nil {
		return nil, err
	}
	t0 := time.Now()
	want, err := prog.RunSequential(feeds)
	if err != nil {
		return nil, err
	}
	seq := time.Since(t0)
	t0 = time.Now()
	got, err := sess.Run(ctx, feeds)
	if err != nil {
		return nil, err
	}
	par := time.Since(t0)
	prof := sess.Profile()
	for k, w := range want {
		if !got[k].AllClose(w, 1e-4, 1e-5) {
			return nil, fmt.Errorf("output %q differs between parallel and sequential run", k)
		}
	}
	fmt.Printf("  run: sequential %v, parallel %v (%.2fx on this host), outputs verified\n",
		seq.Round(time.Microsecond), par.Round(time.Microsecond), float64(seq)/float64(par))
	fmt.Printf("  profile: total slack %v across %d lanes\n",
		prof.TotalSlack().Round(time.Microsecond), len(prof.Lanes))
	if ar := sess.Arena(); ar != nil {
		st := ar.Stats().Snapshot()
		hitRate := 0.0
		if st.Gets > 0 {
			hitRate = 100 * float64(st.Hits) / float64(st.Gets)
		}
		fmt.Printf("  arena: %d gets (%.0f%% hits), %d puts, peak %s, fresh heap %s\n",
			st.Gets, hitRate, st.Puts, fmtBytes(st.PeakBytes), fmtBytes(st.AllocBytes))
	}
	if report {
		printOpTable(prog, 8)
	}
	return prof, nil
}

// printOpTable prints the top-n operator types of the program by measured
// cumulative execution time — the same live counters the serving stack
// exposes at /v1/stats and /metrics, accumulated here by the verify runs.
func printOpTable(prog *ramiel.Program, n int) {
	totals := prog.OpTotals()
	if len(totals) == 0 {
		return
	}
	var sum int64
	for _, t := range totals {
		sum += t.TotalNs
	}
	fmt.Printf("  op time (top %d of %d op types, %v total):\n",
		min(n, len(totals)), len(totals), time.Duration(sum).Round(time.Microsecond))
	for i, t := range totals {
		if i >= n {
			break
		}
		fmt.Printf("    %-16s %6d calls  %10v  (%4.1f%%)\n",
			t.Op, t.Count, time.Duration(t.TotalNs).Round(time.Microsecond),
			100*float64(t.TotalNs)/float64(sum))
	}
}

// exportTimeline writes the last sampled run's timeline as Chrome
// trace-event JSON and prints the measured critical path it implies.
func exportTimeline(prog *ramiel.Program, model, path string) error {
	tl := prog.LastTimeline()
	if tl == nil {
		return fmt.Errorf("no timeline recorded")
	}
	data, err := tl.ChromeTrace(model)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote Chrome trace (%d spans, %d lanes, wall %v) to %s\n",
		len(tl.Spans), tl.Lanes, time.Duration(tl.WallNs).Round(time.Microsecond), path)
	rep, err := prog.CriticalPathFromTimeline(tl)
	if err != nil {
		return err
	}
	fmt.Printf("  measured critical path: %d steps, op %v + wait %v of wall %v (%.0f%% on the statically predicted path)\n",
		len(rep.Steps), time.Duration(rep.OpNs).Round(time.Microsecond),
		time.Duration(rep.WaitNs).Round(time.Microsecond),
		time.Duration(rep.WallNs).Round(time.Microsecond), 100*rep.Overlap)
	n := len(rep.Steps)
	for i, st := range rep.Steps {
		if n > 10 && i >= 5 && i < n-5 {
			if i == 5 {
				fmt.Printf("    ... %d more steps ...\n", n-10)
			}
			continue
		}
		fmt.Printf("    lane %2d %-24s %-12s %10v (+%v wait)\n",
			st.Lane, st.Node, st.Op,
			time.Duration(st.DurNs).Round(time.Microsecond),
			time.Duration(st.WaitNs).Round(time.Microsecond))
	}
	return nil
}

// runCalibration accumulates reps parallel executions and compares the
// measured per-op costs against the static model driving clustering — the
// feedback loop of ROADMAP item 5 (profile-guided re-clustering).
func runCalibration(prog *ramiel.Program, seed uint64, reps int, out string) error {
	ctx := context.Background()
	feeds := ramiel.RandomInputs(prog.Graph, seed)
	sess := prog.NewSession()
	for i := 0; i < max(reps, 1); i++ {
		if _, err := sess.Run(ctx, feeds); err != nil {
			return err
		}
	}
	c := prog.Calibrate()
	if c == nil {
		return fmt.Errorf("calibration recorded no op executions")
	}
	fmt.Printf("  calibration: %d nodes over %d reps, baseline %.4g us/weight, rank correlation %.3f\n",
		c.Nodes, max(reps, 1), c.BaselineUsPerWt, c.RankCorrelation)
	fmt.Printf("    %-16s %6s %12s %10s %8s %8s\n", "op", "calls", "total", "mean", "static", "ratio")
	for _, oc := range c.Ops {
		fmt.Printf("    %-16s %6d %12v %8.1fus %8.0f %7.2fx\n",
			oc.Op, oc.Count, time.Duration(oc.TotalNs).Round(time.Microsecond),
			oc.MeanUs, oc.StaticWt, oc.Ratio)
	}
	if len(c.Worst) > 0 {
		fmt.Println("  worst static-model offenders (|log2 measured/static| desc):")
		for _, oc := range c.Worst {
			dir := "slower"
			if oc.Log2Ratio < 0 {
				dir = "faster"
			}
			fmt.Printf("    %-16s %.1fx %s than the static weight predicts\n",
				oc.Op, math.Pow(2, math.Abs(oc.Log2Ratio)), dir)
		}
	}
	if out != "" {
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote calibration report to %s\n", out)
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
