// Command ramield is the Ramiel inference-serving daemon: it preloads zoo
// and/or ONNX-subset models, compiles each requested (model, batch) variant
// exactly once, and serves concurrent HTTP/JSON inference with dynamic
// micro-batching through hyperclustered plans (Section III-E). Requests
// execute on pooled ramiel.Sessions with warm per-session arenas, and the
// HTTP request context propagates into the run: a client that disconnects
// or exceeds its deadline aborts its in-flight execution instead of
// holding a worker slot to completion. A panicking kernel fails only its
// own request — the recovered panic comes back as a cause-labeled 500
// (stack logged, panics_total counted) while the worker pool keeps serving.
//
// Examples:
//
//	ramield -models squeezenet,googlenet
//	ramield -models bert -prune -max-batch 8 -flush 3ms -switched
//	ramield -models squeezenet -max-batch 4,squeezenet=8 -flush 2ms,squeezenet=500us
//	ramield -load mymodel=path/to/model.onnx.json.gz -addr :9090
//	ramield -models squeezenet -replicas 4        # in-process fleet
//
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/infer -d '{"model":"squeezenet","seed":1}'
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/trace?n=20        # recent request spans
//	curl localhost:8080/v1/trace?slow=1      # tail-latency offenders
//	curl localhost:8080/v1/stats?calibration=1   # measured vs static op cost
//	curl 'localhost:8080/v1/timeline?model=squeezenet' > trace.json  # Perfetto
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/readyz               # readiness (preload compiled)
//
// Batching: -max-batch and -flush take a global value plus optional
// per-model overrides ("4,bert=8"). With -adaptive (the default) the flush
// value is only the window cap — the batcher picks the actual window per
// model from live inter-arrival and execution histograms, flushing early
// at low load and growing batches under pressure; -adaptive=false restores
// the static flush timeout as a manual fallback.
//
// Fleet: -replicas N (N > 1) runs N identical serving replicas in one
// process behind the fleet front (consistent-hash routing by model,
// queue-watermark spillover, deadline-feasibility admission control); the
// front's API (see internal/fleet) is served on -addr in place of the
// single-server API. Failed attempts retry on the next ring member up to
// -max-attempts (bounded by a fleet-wide retry budget), -hedge launches a
// speculative duplicate when a replica sits on a request, and
// -breaker-threshold consecutive failures eject a replica from routing
// until a half-open probe readmits it. Multi-host fleets run one ramield
// per host behind cmd/ramielfe instead.
//
// On SIGTERM/SIGINT the daemon drains: /readyz flips to 503 first (so load
// balancers stop routing), then the listener closes gracefully and
// in-flight requests run to completion before the runtime shuts down.
//
// Resource governance is on by default: the daemon detects the tightest
// cgroup/system memory limit and budgets 80% of it (-mem-budget overrides
// in bytes; negative disables), split across replicas. The budget drives
// memory-feasibility admission (429 cause "memory" with a Retry-After
// drain estimate), caps the session arenas (a run outgrowing the budget
// mid-flight fails alone with cause "memory" and its session is released
// to the GC), and feeds the /v1/stats headroom gauge fleet fronts route
// on. A stuck-run watchdog force-cancels any run exceeding -watchdog times
// the model's live p99 execution time (floored at -watchdog-floor), so a
// pathological input degrades one request instead of wedging a worker.
// Input hardening: request bodies are capped at -max-body (413 cause
// "body_too_large") and feeds containing NaN/Inf are rejected
// (-finite-check=false restores raw feeds).
//
// Telemetry (stage-latency histograms, request tracing) is always on and
// costs no allocations per request; -obs=false switches it off for A/B
// overhead measurements. -timeline N additionally samples every Nth plan
// execution into the per-op timeline flight recorder (sampled runs allocate,
// so it defaults to off); the latest sampled run is exported as Chrome
// trace-event JSON at GET /v1/timeline. -pprof additionally mounts
// net/http/pprof under /debug/pprof/ for live CPU and heap profiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	ramiel "repro"
	"repro/internal/fleet"
	"repro/internal/serve"
)

// parseTuning splits a "global,model=value,..." flag into the global part
// and per-model overrides. Items without '=' (re)set the global value.
func parseTuning(spec string) (global string, overrides map[string]string, err error) {
	overrides = map[string]string{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if model, val, ok := strings.Cut(item, "="); ok {
			if model == "" || val == "" {
				return "", nil, fmt.Errorf("%q: want model=value", item)
			}
			overrides[model] = val
		} else {
			global = item
		}
	}
	return global, overrides, nil
}

// batchTuning resolves the -max-batch and -flush flag grammars into the
// global config values plus a per-model serve.BatchTuning map.
func batchTuning(maxBatchSpec, flushSpec string) (maxBatch int, flush time.Duration, perModel map[string]serve.BatchTuning, err error) {
	mbGlobal, mbOver, err := parseTuning(maxBatchSpec)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("-max-batch %v", err)
	}
	flGlobal, flOver, err := parseTuning(flushSpec)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("-flush %v", err)
	}
	if mbGlobal != "" {
		if maxBatch, err = strconv.Atoi(mbGlobal); err != nil {
			return 0, 0, nil, fmt.Errorf("-max-batch %q: %v", mbGlobal, err)
		}
	}
	if flGlobal != "" {
		if flush, err = time.ParseDuration(flGlobal); err != nil {
			return 0, 0, nil, fmt.Errorf("-flush %q: %v", flGlobal, err)
		}
	}
	perModel = map[string]serve.BatchTuning{}
	for model, val := range mbOver {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("-max-batch %s=%q: %v", model, val, err)
		}
		t := perModel[model]
		t.MaxBatch = n
		perModel[model] = t
	}
	for model, val := range flOver {
		d, err := time.ParseDuration(val)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("-flush %s=%q: %v", model, val, err)
		}
		t := perModel[model]
		t.FlushTimeout = d
		perModel[model] = t
	}
	if len(perModel) == 0 {
		perModel = nil
	}
	return maxBatch, flush, perModel, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ramield: ")

	addr := flag.String("addr", ":8080", "listen address")
	modelsFlag := flag.String("models", "squeezenet,googlenet",
		"comma-separated zoo models to serve ("+strings.Join(ramiel.ModelNames(), ", ")+"); empty for all")
	loads := flag.String("load", "", "comma-separated name=path pairs of ONNX-subset model files to serve")
	img := flag.Int("img", 32, "image size for zoo vision models")

	workers := flag.Int("workers", 0, "concurrent plan executions per replica (0 = GOMAXPROCS)")
	maxBatchSpec := flag.String("max-batch", "4", `micro-batch cap, with optional per-model overrides "4,bert=8" (1 disables coalescing)`)
	flushSpec := flag.String("flush", "2ms", `micro-batch flush window, with optional per-model overrides "2ms,bert=500us" (the cap when -adaptive)`)
	adaptive := flag.Bool("adaptive", true, "latency-aware flush windows from live queue/exec histograms (-flush becomes the cap)")
	replicasN := flag.Int("replicas", 1, "in-process serving replicas; >1 serves the fleet front (routing + admission) on -addr")
	admission := flag.Bool("admission", true, "fleet mode: reject deadline-infeasible requests at enqueue")
	maxAttempts := flag.Int("max-attempts", 0, "fleet mode: total tries per request across replicas (0 = min(3, replicas); 1 disables retries)")
	hedge := flag.Duration("hedge", 0, "fleet mode: speculative second attempt on another replica after this wait (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "fleet mode: consecutive replica failures that open its circuit breaker (0 = 5; negative disables)")
	memBudget := flag.Int64("mem-budget", 0, "memory budget in bytes for admission + arena caps, split across replicas (0 = 80% of cgroup/system memory; negative disables)")
	watchdogF := flag.Float64("watchdog", 0, "kill runs exceeding this multiple of the model's live p99 exec time (0 = 20; negative disables)")
	watchdogFloor := flag.Duration("watchdog-floor", 0, "minimum run age before the watchdog may kill (0 = 2s)")
	maxBody := flag.Int64("max-body", 0, "POST /v1/infer request-body cap in bytes (0 = 8 MiB; negative disables)")
	finiteCheck := flag.Bool("finite-check", true, "reject feeds containing NaN or Inf values")
	switched := flag.Bool("switched", false, "use switched hyperclustering for batch plans")
	arena := flag.Bool("arena", true, "arena-backed execution: recycle intermediate tensors across requests")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	prune := flag.Bool("prune", false, "compile with constant propagation + DCE")
	clone := flag.Bool("clone", false, "compile with limited task cloning")
	fusion := flag.Bool("fusion", true, "compile with operator fusion (BN folding, kernel epilogues, fused elementwise chains)")
	warm := flag.Bool("warm", true, "precompile batch-1 programs at startup")
	obsOn := flag.Bool("obs", true, "serve-layer telemetry: stage-latency histograms and request tracing")
	timelineEvery := flag.Int("timeline", 0, "sample every Nth execution into the timeline flight recorder (0 disables; exported at GET /v1/timeline)")
	traceDepth := flag.Int("trace-depth", 256, "request-trace ring capacity (recent and slow rings)")
	slowTrace := flag.Duration("slow-trace", 100*time.Millisecond, "e2e latency at which a request also enters the slow-trace ring")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	maxBatch, flush, perModel, err := batchTuning(*maxBatchSpec, *flushSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *replicasN < 1 {
		log.Fatalf("-replicas %d: want >= 1", *replicasN)
	}

	budget := *memBudget
	if budget == 0 {
		budget = serve.DetectMemoryBudget(0)
	}
	if budget < 0 {
		budget = 0
	}
	if budget > 0 && *replicasN > 1 {
		// Each replica governs its own arenas; split the process budget.
		budget /= int64(*replicasN)
	}

	cfg := serve.Config{
		Workers:       *workers,
		MaxBatch:      maxBatch,
		FlushTimeout:  flush,
		AdaptiveBatch: *adaptive,
		ModelTuning:   perModel,
		Switched:      *switched,
		Deadline:      *deadline,
		NoArena:       !*arena,
		NoObs:         !*obsOn,
		TraceDepth:    *traceDepth,
		SlowThreshold: *slowTrace,
		TimelineEvery: *timelineEvery,
		Compile:       ramiel.Options{Prune: *prune, Clone: *clone, DisableFusion: !*fusion},

		MemBudgetBytes: budget,
		WatchdogFactor: *watchdogF,
		WatchdogFloor:  *watchdogFloor,
		MaxBodyBytes:   *maxBody,
		NoFiniteCheck:  !*finiteCheck,
	}
	if budget > 0 {
		log.Printf("memory budget: %d MiB per replica", budget>>20)
	}

	var zoo []string
	if *modelsFlag != "" {
		zoo = strings.Split(*modelsFlag, ",")
	}

	servers := make([]*serve.Server, *replicasN)
	for i := range servers {
		srv := serve.New(cfg)
		if err := srv.RegisterZoo(ramiel.ModelConfig{ImageSize: *img}, zoo...); err != nil {
			log.Fatal(err)
		}
		for _, pair := range strings.Split(*loads, ",") {
			if pair == "" {
				continue
			}
			name, path, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("-load %q: want name=path", pair)
			}
			g, err := ramiel.LoadModel(path)
			if err != nil {
				log.Fatalf("loading %s: %v", path, err)
			}
			srv.RegisterGraph(name, g)
		}
		servers[i] = srv
	}

	if *warm {
		// /readyz stays 503 until every replica compiled its preload: a
		// deployment rolling the daemon knows not to route traffic at a
		// still-compiling instance.
		warmStart := time.Now()
		for _, srv := range servers {
			if err := srv.Warm(); err != nil {
				log.Fatalf("warmup: %v", err)
			}
		}
		log.Printf("warmed %d models x %d replicas in %v", len(servers[0].Registry().Models()),
			len(servers), time.Since(warmStart).Round(time.Millisecond))
	} else {
		// No preload set to wait for; ready as soon as we can listen.
		for _, srv := range servers {
			srv.MarkReady()
		}
	}

	var front *fleet.Front
	var handler http.Handler
	if len(servers) > 1 {
		locals := make([]fleet.Replica, len(servers))
		for i, srv := range servers {
			locals[i] = fleet.NewLocal("r"+strconv.Itoa(i), srv)
		}
		front = fleet.New(fleet.Config{
			NoAdmission:      !*admission,
			Deadline:         *deadline,
			MaxAttempts:      *maxAttempts,
			HedgeDelay:       *hedge,
			BreakerThreshold: *breakerThreshold,
		}, locals...)
		handler = front.Handler()
		log.Printf("fleet front: %d in-process replicas (admission %v)", len(servers), *admission)
	} else {
		handler = servers[0].Handler()
	}
	log.Printf("serving %v on %s (replicas %d, max-batch %s, flush %s, adaptive %v, arena %v, fusion %v, obs %v, timeline %d)",
		servers[0].Registry().Models(), *addr, len(servers), *maxBatchSpec, *flushSpec,
		*adaptive, *arena, *fusion, *obsOn, *timelineEvery)

	if *pprofOn {
		// The API mux must not import pprof unconditionally (its blank
		// import mounts handlers on DefaultServeMux); register explicitly,
		// behind the flag, on our own mux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain order matters: flip readiness first so health checks pull this
	// instance out of rotation, then close the listener gracefully (lets
	// in-flight requests finish), then shut the runtimes down.
	log.Print("shutting down: draining")
	if front != nil {
		front.BeginDrain()
	}
	for _, srv := range servers {
		srv.BeginDrain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	for _, srv := range servers {
		if err := srv.Close(shutdownCtx); err != nil {
			log.Printf("runtime shutdown: %v", err)
		}
	}
	fmt.Println("bye")
}
