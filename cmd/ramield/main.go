// Command ramield is the Ramiel inference-serving daemon: it preloads zoo
// and/or ONNX-subset models, compiles each requested (model, batch) variant
// exactly once, and serves concurrent HTTP/JSON inference with dynamic
// micro-batching through hyperclustered plans (Section III-E). Requests
// execute on pooled ramiel.Sessions with warm per-session arenas, and the
// HTTP request context propagates into the run: a client that disconnects
// or exceeds its deadline aborts its in-flight execution instead of
// holding a worker slot to completion.
//
// Examples:
//
//	ramield -models squeezenet,googlenet
//	ramield -models bert -prune -max-batch 8 -flush 3ms -switched
//	ramield -load mymodel=path/to/model.onnx.json.gz -addr :9090
//
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/infer -d '{"model":"squeezenet","seed":1}'
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/trace?n=20        # recent request spans
//	curl localhost:8080/v1/trace?slow=1      # tail-latency offenders
//	curl localhost:8080/v1/stats?calibration=1   # measured vs static op cost
//	curl 'localhost:8080/v1/timeline?model=squeezenet' > trace.json  # Perfetto
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/readyz               # readiness (preload compiled)
//
// Telemetry (stage-latency histograms, request tracing) is always on and
// costs no allocations per request; -obs=false switches it off for A/B
// overhead measurements. -timeline N additionally samples every Nth plan
// execution into the per-op timeline flight recorder (sampled runs allocate,
// so it defaults to off); the latest sampled run is exported as Chrome
// trace-event JSON at GET /v1/timeline. -pprof additionally mounts
// net/http/pprof under /debug/pprof/ for live CPU and heap profiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ramiel "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ramield: ")

	addr := flag.String("addr", ":8080", "listen address")
	modelsFlag := flag.String("models", "squeezenet,googlenet",
		"comma-separated zoo models to serve ("+strings.Join(ramiel.ModelNames(), ", ")+"); empty for all")
	loads := flag.String("load", "", "comma-separated name=path pairs of ONNX-subset model files to serve")
	img := flag.Int("img", 32, "image size for zoo vision models")

	workers := flag.Int("workers", 0, "concurrent plan executions (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4, "micro-batch cap (1 disables coalescing)")
	flush := flag.Duration("flush", 2*time.Millisecond, "micro-batch flush timeout")
	switched := flag.Bool("switched", false, "use switched hyperclustering for batch plans")
	arena := flag.Bool("arena", true, "arena-backed execution: recycle intermediate tensors across requests")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	prune := flag.Bool("prune", false, "compile with constant propagation + DCE")
	clone := flag.Bool("clone", false, "compile with limited task cloning")
	fusion := flag.Bool("fusion", true, "compile with operator fusion (BN folding, kernel epilogues, fused elementwise chains)")
	warm := flag.Bool("warm", true, "precompile batch-1 programs at startup")
	obsOn := flag.Bool("obs", true, "serve-layer telemetry: stage-latency histograms and request tracing")
	timelineEvery := flag.Int("timeline", 0, "sample every Nth execution into the timeline flight recorder (0 disables; exported at GET /v1/timeline)")
	traceDepth := flag.Int("trace-depth", 256, "request-trace ring capacity (recent and slow rings)")
	slowTrace := flag.Duration("slow-trace", 100*time.Millisecond, "e2e latency at which a request also enters the slow-trace ring")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		FlushTimeout:  *flush,
		Switched:      *switched,
		Deadline:      *deadline,
		NoArena:       !*arena,
		NoObs:         !*obsOn,
		TraceDepth:    *traceDepth,
		SlowThreshold: *slowTrace,
		TimelineEvery: *timelineEvery,
		Compile:       ramiel.Options{Prune: *prune, Clone: *clone, DisableFusion: !*fusion},
	})

	var zoo []string
	if *modelsFlag != "" {
		zoo = strings.Split(*modelsFlag, ",")
	}
	if err := srv.RegisterZoo(ramiel.ModelConfig{ImageSize: *img}, zoo...); err != nil {
		log.Fatal(err)
	}
	for _, pair := range strings.Split(*loads, ",") {
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("-load %q: want name=path", pair)
		}
		g, err := ramiel.LoadModel(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		srv.RegisterGraph(name, g)
	}

	if *warm {
		// /readyz stays 503 until this succeeds: a deployment rolling the
		// daemon knows not to route traffic at a still-compiling instance.
		warmStart := time.Now()
		if err := srv.Warm(); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		log.Printf("warmed %d models in %v", len(srv.Registry().Models()),
			time.Since(warmStart).Round(time.Millisecond))
	} else {
		// No preload set to wait for; ready as soon as we can listen.
		srv.MarkReady()
	}
	log.Printf("serving %v on %s (max-batch %d, flush %v, arena %v, fusion %v, obs %v, timeline %d)",
		srv.Registry().Models(), *addr, *maxBatch, *flush, *arena, *fusion, *obsOn, *timelineEvery)

	handler := srv.Handler()
	if *pprofOn {
		// The API mux must not import pprof unconditionally (its blank
		// import mounts handlers on DefaultServeMux); register explicitly,
		// behind the flag, on our own mux.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		log.Printf("runtime shutdown: %v", err)
	}
	fmt.Println("bye")
}
