// Command ramield is the Ramiel inference-serving daemon: it preloads zoo
// and/or ONNX-subset models, compiles each requested (model, batch) variant
// exactly once, and serves concurrent HTTP/JSON inference with dynamic
// micro-batching through hyperclustered plans (Section III-E). Requests
// execute on pooled ramiel.Sessions with warm per-session arenas, and the
// HTTP request context propagates into the run: a client that disconnects
// or exceeds its deadline aborts its in-flight execution instead of
// holding a worker slot to completion.
//
// Examples:
//
//	ramield -models squeezenet,googlenet
//	ramield -models bert -prune -max-batch 8 -flush 3ms -switched
//	ramield -load mymodel=path/to/model.onnx.json.gz -addr :9090
//
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/infer -d '{"model":"squeezenet","seed":1}'
//	curl localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ramiel "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ramield: ")

	addr := flag.String("addr", ":8080", "listen address")
	modelsFlag := flag.String("models", "squeezenet,googlenet",
		"comma-separated zoo models to serve ("+strings.Join(ramiel.ModelNames(), ", ")+"); empty for all")
	loads := flag.String("load", "", "comma-separated name=path pairs of ONNX-subset model files to serve")
	img := flag.Int("img", 32, "image size for zoo vision models")

	workers := flag.Int("workers", 0, "concurrent plan executions (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4, "micro-batch cap (1 disables coalescing)")
	flush := flag.Duration("flush", 2*time.Millisecond, "micro-batch flush timeout")
	switched := flag.Bool("switched", false, "use switched hyperclustering for batch plans")
	arena := flag.Bool("arena", true, "arena-backed execution: recycle intermediate tensors across requests")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	prune := flag.Bool("prune", false, "compile with constant propagation + DCE")
	clone := flag.Bool("clone", false, "compile with limited task cloning")
	fusion := flag.Bool("fusion", true, "compile with operator fusion (BN folding, kernel epilogues, fused elementwise chains)")
	warm := flag.Bool("warm", true, "precompile batch-1 programs at startup")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		FlushTimeout: *flush,
		Switched:     *switched,
		Deadline:     *deadline,
		NoArena:      !*arena,
		Compile:      ramiel.Options{Prune: *prune, Clone: *clone, DisableFusion: !*fusion},
	})

	var zoo []string
	if *modelsFlag != "" {
		zoo = strings.Split(*modelsFlag, ",")
	}
	if err := srv.RegisterZoo(ramiel.ModelConfig{ImageSize: *img}, zoo...); err != nil {
		log.Fatal(err)
	}
	for _, pair := range strings.Split(*loads, ",") {
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("-load %q: want name=path", pair)
		}
		g, err := ramiel.LoadModel(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		srv.RegisterGraph(name, g)
	}

	if *warm {
		warmStart := time.Now()
		if err := srv.Warm(); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		log.Printf("warmed %d models in %v", len(srv.Registry().Models()),
			time.Since(warmStart).Round(time.Millisecond))
	}
	log.Printf("serving %v on %s (max-batch %d, flush %v, arena %v, fusion %v)",
		srv.Registry().Models(), *addr, *maxBatch, *flush, *arena, *fusion)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		log.Printf("runtime shutdown: %v", err)
	}
	fmt.Println("bye")
}
