// Package ramiel (module "repro") is a Go reproduction of "Automatic Task
// Parallelization of Dataflow Graphs in ML/DL models" (Das & Rauchwerger,
// arXiv:2308.11192): a fast, search-free compiler that extracts task
// parallelism from ML dataflow graphs for batch-size-1 CPU inference.
//
// The pipeline mirrors the paper's tool Ramiel:
//
//	model (ONNX-subset) ──► graph IR ──► prune (const-prop + DCE)
//	     ──► clone ──► Linear Clustering + merging ──► hyperclusters (batch>1)
//	     ──► parallel execution (goroutine per cluster, channel messages)
//	        ├─► readable generated Go code, one function per cluster
//	        └─► serving runtime (internal/serve + cmd/ramield): compile-once
//	            program cache, worker pool, dynamic micro-batching over HTTP
//
// Quick start:
//
//	g, _ := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{})
//	prog, _ := ramiel.Compile(g, ramiel.Options{Prune: true})
//	outs, _ := prog.Run(ramiel.RandomInputs(g, 42))
//
// A compiled Program is safe for concurrent Run calls — the serving
// invariant; see the Plan concurrency contract in internal/exec.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory, serving-layer architecture, ramield
// quickstart and experiment index.
package ramiel
