// Package ramiel (module "repro") is a Go reproduction of "Automatic Task
// Parallelization of Dataflow Graphs in ML/DL models" (Das & Rauchwerger,
// arXiv:2308.11192): a fast, search-free compiler that extracts task
// parallelism from ML dataflow graphs for batch-size-1 CPU inference.
//
// The pipeline mirrors the paper's tool Ramiel:
//
//	model (ONNX-subset) ──► graph IR ──► prune (const-prop + DCE)
//	     ──► clone ──► Linear Clustering + merging ──► hyperclusters (batch>1)
//	     ──► parallel execution (goroutine per cluster, channel messages)
//	        ├─► readable generated Go code, one function per cluster
//	        └─► serving runtime (internal/serve + cmd/ramield): compile-once
//	            program cache, session pool, dynamic micro-batching over HTTP
//
// Quick start — compile once, then run through a Session:
//
//	g, _ := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{})
//	prog, _ := ramiel.Compile(g, ramiel.WithPrune())
//	sess := prog.NewSession()
//	outs, _ := sess.Run(ctx, ramiel.RandomInputs(g, 42))
//
// Compile takes functional options (WithPrune, WithClone, WithCostModel,
// WithEagerMemPlan, WithoutMerge, WithoutFusion — operator fusion is on by
// default); CompileWithOptions accepts the same configuration as an
// Options struct for callers that carry it as data.
//
// A Session bundles the run configuration — by default it owns a tensor
// arena that recycles intermediate tensors across its runs (steady-state
// inference allocates nothing per run), and WithProfiling records each
// run's per-lane busy/slack profile (Session.Profile). Session.Run
// validates feeds up front (Program.ValidateFeeds) and honors its context:
// cancellation and deadlines abort an in-flight run cooperatively between
// operator kernels, with no goroutine leaks and the arena left reusable.
//
// A Session serves one goroutine; the compiled Program underneath is safe
// to share — any number of Sessions may run it concurrently (the serving
// invariant; see the Plan concurrency contract in internal/exec). The old
// run-method matrix (Program.Run, RunArena, RunProfiled, RunProfiledArena)
// remains as deprecated one-shot-session wrappers.
//
// Execution is instrumented: every Plan run accumulates per-op-type
// invocation counts and cumulative wall time (Program.OpTotals — where
// model time goes, measured live), and the serving layer adds per-model
// stage-latency histograms, request tracing, and cause-labeled error
// counters on top (see internal/obs). The ramield daemon serves it all at
// GET /v1/stats, /v1/trace and /metrics (Prometheus text format), next to
// POST /v1/infer, GET /v1/models, /healthz and /readyz.
//
// For when the aggregates are not enough, Program.EnableTimeline attaches
// an execution-timeline flight recorder that samples one run in N into
// complete per-lane span timelines (operator kernels, blocked cross-lane
// receives, channel sends); the unsampled path costs one atomic load and
// allocates nothing. A sampled run (Program.LastTimeline) exports as
// Chrome trace-event JSON (RunTimeline.ChromeTrace — load it in Perfetto
// or chrome://tracing; also GET /v1/timeline on ramield, and ramiel -run
// -timeline), drives the measured critical-path analysis
// (Program.CriticalPathFromTimeline) against the static prediction, and
// Program.Calibrate compares the static cost model with the live per-op
// measurements (ramiel -calibrate, /v1/stats?calibration=1) — the
// profile-guided feedback loop behind cost.StaticModel.Rescale.
//
// The serving tier is resource-governed: sessions' shared arena carries a
// hard byte budget (tensor.Arena.SetBudget — an over-budget run fails
// alone with tensor.ErrArenaBudget instead of growing the heap), the
// daemon sheds requests whose projected working set would overflow the
// memory budget (429 with cause "memory" and a Retry-After hint;
// ramield/ramielfe -mem-budget, default 80% of cgroup/system memory), a
// stuck-run watchdog force-cancels runs exceeding a multiple of the
// model's p99 (-watchdog, -watchdog-floor; cause "watchdog"), request
// bodies are capped (-max-body, 413), and non-finite feeds (NaN/Inf) are
// rejected at validation (ramiel.CheckFiniteFeeds; -finite-check=false
// opts out). DESIGN.md's "Resource governance" section has the policy
// details.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory, serving-layer architecture,
// observability design, ramield quickstart and experiment index.
package ramiel
