// Package memplan computes static memory-reuse plans for compiled parallel
// programs: given a plan's dataflow graph and cluster lanes, it derives the
// liveness of every intermediate tensor value (definition point, last
// consumer across all lanes), seeds the reference counts the executor uses
// to return dead intermediates to a run's arena, assigns values to reusable
// buffer slots, and estimates the program's peak tensor memory.
//
// The plan is the serving-runtime analogue of a TFLite-style arena planner,
// adapted to Ramiel's compile-once/serve-many contract (see internal/exec's
// Plan): it is computed once per compiled program and only read afterwards,
// so any number of concurrent runs can share it, each with its own arena
// and its own mutable copy of the reference counts.
//
// Soundness rests on two properties of the kernel layer (internal/ops):
// kernels never mutate their inputs, and every kernel output is freshly
// allocated storage — even shape-only ops like Reshape copy. Each managed
// value therefore owns its buffer exclusively, and the buffer is dead the
// moment the value's statically-known last use completes.
package memplan

import (
	"fmt"

	"repro/internal/graph"
)

// Unmanaged marks values the executor must never release: graph inputs,
// initializers, and graph outputs (which escape to the caller).
const Unmanaged = -1

// Interval is a value's live range in schedule positions (indexes into the
// global topological order used to build the plan): Def is the producing
// node's position, LastUse the position of the final consuming node. A
// value with no consumers has LastUse == Def (dead on arrival).
//
// In a parallel execution lanes overlap, so positions order events only
// per dependency chain; the executor's reference counts — not these
// positions — decide the actual release moment. The intervals drive the
// static slot assignment and the peak estimate.
type Interval struct {
	Def     int
	LastUse int
}

// Plan is the immutable static memory plan of one compiled program.
type Plan struct {
	// index maps each managed value name to its dense slot in Uses/Refs
	// order. Values absent here are unmanaged.
	index map[string]int
	// names is the inverse of index.
	names []string
	// uses[i] is the static use count of managed value i: the number of
	// node-input occurrences consuming it across all lanes. It seeds the
	// per-run reference counts.
	uses []int32
	// live[i] is the value's liveness interval.
	live []Interval
	// lastConsumer[i] names the last consuming node (empty for zero-use
	// values).
	lastConsumer []string
	// slot[i] is the reuse slot the value maps to: values with disjoint
	// intervals share a slot.
	slot []int
	// slots is the number of distinct reuse slots.
	slots int
	// pinned counts produced values excluded from management because they
	// are graph outputs.
	pinned int
	// consumesIn0 names the nodes whose first input is provably dead the
	// moment the node completes (managed, exactly one consuming occurrence
	// globally — this node's), and that produce exactly one output. Such a
	// node may write its output into the input's buffer; the executor
	// combines this liveness proof with the kernel layer's capability check
	// (ops.CanRunInPlace) to run elementwise glue in place.
	consumesIn0 map[string]bool
}

// Build computes the memory plan for a graph partitioned into lanes. The
// lanes must cover the graph (as exec.NewPlan guarantees); they are used
// only to validate coverage — liveness is a property of the dataflow graph
// itself and holds for any dependency-respecting interleaving.
func Build(g *graph.Graph, lanes [][]*graph.Node) (*Plan, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("memplan: %w", err)
	}
	if lanes != nil {
		covered := 0
		for _, lane := range lanes {
			covered += len(lane)
		}
		if covered != len(g.Nodes) {
			return nil, fmt.Errorf("memplan: lanes cover %d nodes, graph has %d", covered, len(g.Nodes))
		}
	}

	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}

	p := &Plan{index: map[string]int{}}
	// Pass 1: enumerate managed values in definition order. A value is
	// managed when a node produces it and it is not a graph output.
	for _, n := range order {
		for _, out := range n.Outputs {
			if g.IsGraphOutput(out) {
				p.pinned++
				continue
			}
			if _, dup := p.index[out]; dup {
				return nil, fmt.Errorf("memplan: value %q produced twice", out)
			}
			p.index[out] = len(p.names)
			p.names = append(p.names, out)
			p.live = append(p.live, Interval{Def: pos[n], LastUse: pos[n]})
		}
	}
	p.uses = make([]int32, len(p.names))
	p.lastConsumer = make([]string, len(p.names))

	// Pass 2: count uses and find last consumers. Duplicate input names on
	// one node (e.g. Add(x, x)) count once per occurrence, matching the
	// executor's one-decrement-per-occurrence discipline.
	for _, n := range order {
		for _, in := range n.Inputs {
			i, ok := p.index[in]
			if !ok {
				continue
			}
			p.uses[i]++
			if pos[n] >= p.live[i].LastUse {
				p.live[i].LastUse = pos[n]
				p.lastConsumer[i] = n.Name
			}
		}
	}

	// Pass 3: in-place eligibility. A node may overwrite its first input
	// when that value is managed and this node's single consumption is the
	// value's only use anywhere (uses == 1 also rules out the value
	// appearing twice on this node, as in Add(x, x) — the kernel would
	// read elements it already overwrote).
	p.consumesIn0 = map[string]bool{}
	for _, n := range order {
		if len(n.Inputs) == 0 || len(n.Outputs) != 1 {
			continue
		}
		if i, ok := p.index[n.Inputs[0]]; ok && p.uses[i] == 1 {
			p.consumesIn0[n.Name] = true
		}
	}

	p.assignSlots(order, g)
	return p, nil
}

// CanWriteInPlace reports whether the named node may write its output into
// its first input's buffer: the input is a managed value whose only use
// anywhere is this node's single consumption of it, so the buffer is dead
// the instant the node completes and ownership can transfer to the output.
func (p *Plan) CanWriteInPlace(node string) bool { return p.consumesIn0[node] }

// assignSlots maps values to reuse slots by linear scan over the schedule:
// at each node, outputs claim slots while the node's dying inputs release
// theirs afterwards — outputs and inputs of one node are live
// simultaneously (the kernel reads the inputs while writing the outputs),
// so a node's outputs never reuse the slot of its own dying inputs.
func (p *Plan) assignSlots(order []*graph.Node, g *graph.Graph) {
	p.slot = make([]int, len(p.names))
	for i := range p.slot {
		p.slot[i] = Unmanaged
	}
	remaining := append([]int32(nil), p.uses...)
	var freeSlots []int
	for _, n := range order {
		for _, out := range n.Outputs {
			i, ok := p.index[out]
			if !ok {
				continue
			}
			if l := len(freeSlots); l > 0 {
				p.slot[i] = freeSlots[l-1]
				freeSlots = freeSlots[:l-1]
			} else {
				p.slot[i] = p.slots
				p.slots++
			}
		}
		// Zero-use outputs die immediately after their defining node.
		for _, out := range n.Outputs {
			if i, ok := p.index[out]; ok && p.uses[i] == 0 {
				freeSlots = append(freeSlots, p.slot[i])
			}
		}
		for _, in := range n.Inputs {
			i, ok := p.index[in]
			if !ok {
				continue
			}
			remaining[i]--
			if remaining[i] == 0 {
				freeSlots = append(freeSlots, p.slot[i])
			}
		}
	}
}

// SlotOf returns the reuse slot of a value, or Unmanaged for values the
// executor must not release (graph inputs, initializers, graph outputs).
func (p *Plan) SlotOf(value string) int {
	i, ok := p.index[value]
	if !ok {
		return Unmanaged
	}
	return p.slot[i]
}

// IndexOf returns the dense managed-value index of a value, or Unmanaged.
func (p *Plan) IndexOf(value string) int {
	i, ok := p.index[value]
	if !ok {
		return Unmanaged
	}
	return i
}

// Managed returns the number of managed values.
func (p *Plan) Managed() int { return len(p.names) }

// Pinned returns the number of produced values excluded from management
// because they are graph outputs.
func (p *Plan) Pinned() int { return p.pinned }

// Slots returns the number of distinct reuse slots — the static estimate
// of how many simultaneously-live intermediate buffers a run needs.
func (p *Plan) Slots() int { return p.slots }

// InitialRefs returns a fresh copy of the per-value use counts, ready to
// be decremented by one run of the executor.
func (p *Plan) InitialRefs() []int32 {
	return append([]int32(nil), p.uses...)
}

// UseCount returns the static use count of a value (0 for unmanaged).
func (p *Plan) UseCount(value string) int {
	i, ok := p.index[value]
	if !ok {
		return 0
	}
	return int(p.uses[i])
}

// LivenessOf returns the liveness interval and last consumer of a managed
// value; ok is false for unmanaged values.
func (p *Plan) LivenessOf(value string) (iv Interval, lastConsumer string, ok bool) {
	i, found := p.index[value]
	if !found {
		return Interval{}, "", false
	}
	return p.live[i], p.lastConsumer[i], true
}

// Estimate is a static memory forecast for one run, in bytes, computed
// from per-value element counts (4 bytes per element).
type Estimate struct {
	// PeakLiveBytes is the maximum total size of simultaneously-live
	// managed values over the schedule — the lower bound any allocator
	// needs.
	PeakLiveBytes int64
	// SlotBytes sums each reuse slot's largest resident value — the
	// footprint of a slot-based arena, and a close upper bound on what the
	// executor's free-list arena holds at steady state.
	SlotBytes int64
	// TotalBytes sums every managed value — what a run would allocate with
	// no reuse at all.
	TotalBytes int64
	// ScratchBytes is the largest transient kernel scratch any single node
	// draws from the run's allocator (im2col patch matrices, call-time
	// GEMM packing) — zero unless computed via EstimateWithScratch.
	// Scratch is taken and returned within one kernel invocation, so one
	// run needs at most this much extra per concurrently-executing lane on
	// top of PeakLiveBytes.
	ScratchBytes int64
}

// Estimate computes the forecast from per-value element counts (as
// produced by exec.ValueSizes). Values missing from sizes count as zero.
func (p *Plan) Estimate(sizes map[string]int) Estimate {
	var e Estimate
	slotMax := make([]int64, p.slots)
	// Sweep positions: events ordered by Def; a value is live on [Def,
	// LastUse]. Peak via prefix sums over position deltas.
	type delta struct{ pos, bytes int64 }
	var deltas []delta
	for i, name := range p.names {
		b := 4 * int64(sizes[name])
		e.TotalBytes += b
		if s := p.slot[i]; s >= 0 && b > slotMax[s] {
			slotMax[s] = b
		}
		deltas = append(deltas, delta{int64(p.live[i].Def), b})
		deltas = append(deltas, delta{int64(p.live[i].LastUse) + 1, -b})
	}
	for _, m := range slotMax {
		e.SlotBytes += m
	}
	// Positions are small dense ints; accumulate per position.
	byPos := map[int64]int64{}
	maxPos := int64(0)
	for _, d := range deltas {
		byPos[d.pos] += d.bytes
		if d.pos > maxPos {
			maxPos = d.pos
		}
	}
	var cur int64
	for pos := int64(0); pos <= maxPos; pos++ {
		cur += byPos[pos]
		if cur > e.PeakLiveBytes {
			e.PeakLiveBytes = cur
		}
	}
	return e
}

// EstimateWithScratch is Estimate extended with kernel scratch sizing:
// scratch maps node names to the transient elements their kernels draw
// from the run's allocator (as recorded by exec.MeasureCosts in
// MeasuredModel.ScratchNumel, or exec's ops.ScratchElems directly). The
// im2col lowering of convolution made this term real: a serving arena must
// hold the patch matrix and packing panels alongside the live values.
func (p *Plan) EstimateWithScratch(sizes map[string]int, scratch map[string]int) Estimate {
	e := p.Estimate(sizes)
	for _, s := range scratch {
		if b := 4 * int64(s); b > e.ScratchBytes {
			e.ScratchBytes = b
		}
	}
	return e
}

// Summary is the compact report of a plan, for logs and CLIs.
type Summary struct {
	Managed int `json:"managed_values"`
	Pinned  int `json:"pinned_values"`
	Slots   int `json:"slots"`
	ZeroUse int `json:"zero_use_values"`
}

// Summary reports the plan's headline numbers.
func (p *Plan) Summary() Summary {
	s := Summary{Managed: len(p.names), Pinned: p.pinned, Slots: p.slots}
	for _, u := range p.uses {
		if u == 0 {
			s.ZeroUse++
		}
	}
	return s
}
