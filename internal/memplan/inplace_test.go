package memplan

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestCanWriteInPlace pins the liveness proof behind in-place elementwise
// execution: single-use managed first inputs qualify; feeds, multi-use
// values, and double consumption (Add(x, x)) do not.
func TestCanWriteInPlace(t *testing.T) {
	g := graph.New("ip")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddInitializer("w", tensor.Zeros(4, 4))
	g.AddNode("mm", "MatMul", []string{"x", "w"}, []string{"v1"}, nil)
	g.AddNode("r1", "Relu", []string{"v1"}, []string{"v2"}, nil)      // v1: single use → in place
	g.AddNode("sq", "Add", []string{"v2", "v2"}, []string{"v3"}, nil) // v2 consumed twice → not
	g.AddNode("t1", "Tanh", []string{"v3"}, []string{"v4"}, nil)
	g.AddNode("t2", "Sigmoid", []string{"v3"}, []string{"v5"}, nil) // v3 multi-consumer → not
	g.AddNode("fin", "Add", []string{"v4", "v5"}, []string{"out"}, nil)
	g.AddNode("feedrelu", "Relu", []string{"x"}, []string{"v6"}, nil) // feed input → not managed
	g.AddNode("sink", "Add", []string{"out", "v6"}, []string{"final"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "final"}}
	g.Reindex()

	p, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"mm":       false, // x is a feed (unmanaged)
		"r1":       true,
		"sq":       false, // v2 appears twice on the node
		"t1":       false, // v3 has two consumers
		"t2":       false,
		"fin":      true, // v4's only use
		"feedrelu": false,
		"sink":     true, // out is managed ("final" is the graph output)
	}
	for node, w := range want {
		if got := p.CanWriteInPlace(node); got != w {
			t.Errorf("CanWriteInPlace(%s) = %v, want %v", node, got, w)
		}
	}
}
