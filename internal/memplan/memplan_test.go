package memplan

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// chainGraph builds in -> A -> a -> B -> b -> C -> out.
func chainGraph() *graph.Graph {
	g := graph.New("chain")
	g.Inputs = []graph.ValueInfo{{Name: "in"}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.AddNode("A", "Relu", []string{"in"}, []string{"a"}, nil)
	g.AddNode("B", "Relu", []string{"a"}, []string{"b"}, nil)
	g.AddNode("C", "Relu", []string{"b"}, []string{"out"}, nil)
	return g
}

// diamondGraph builds in -> A -> a consumed by B and C, joined by D -> out.
func diamondGraph() *graph.Graph {
	g := graph.New("diamond")
	g.Inputs = []graph.ValueInfo{{Name: "in"}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.AddNode("A", "Relu", []string{"in"}, []string{"a"}, nil)
	g.AddNode("B", "Relu", []string{"a"}, []string{"b"}, nil)
	g.AddNode("C", "Sigmoid", []string{"a"}, []string{"c"}, nil)
	g.AddNode("D", "Add", []string{"b", "c"}, []string{"out"}, nil)
	return g
}

func TestChainLivenessAndReuse(t *testing.T) {
	g := chainGraph()
	p, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "a" and "b" are managed; "out" is pinned; "in" is a graph input.
	if p.Managed() != 2 {
		t.Fatalf("managed = %d, want 2", p.Managed())
	}
	if p.Pinned() != 1 {
		t.Fatalf("pinned = %d, want 1 (the graph output)", p.Pinned())
	}
	if p.SlotOf("out") != Unmanaged || p.SlotOf("in") != Unmanaged {
		t.Fatal("graph input/output must be unmanaged")
	}
	iv, last, ok := p.LivenessOf("a")
	if !ok || last != "B" {
		t.Fatalf("a: last consumer %q, want B", last)
	}
	if iv.Def != 0 || iv.LastUse != 1 {
		t.Fatalf("a: interval %+v, want [0,1]", iv)
	}
	if p.UseCount("a") != 1 || p.UseCount("b") != 1 {
		t.Fatal("chain values must have one use each")
	}
	// "a" dies when B runs, so "b" (defined at B) cannot share its slot —
	// B's output is claimed while "a" is still live. A 3-node chain still
	// needs only 2 slots because "a"'s slot frees before C defines "out"
	// (pinned) ... here there are only two managed values and they overlap
	// at B, so 2 slots.
	if p.Slots() != 2 {
		t.Fatalf("slots = %d, want 2", p.Slots())
	}
}

func TestLongChainSlotReuse(t *testing.T) {
	g := graph.New("chain5")
	g.Inputs = []graph.ValueInfo{{Name: "in"}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	prev := "in"
	vals := []string{"v0", "v1", "v2", "v3", "out"}
	for i, v := range vals {
		g.AddNode(string(rune('A'+i)), "Relu", []string{prev}, []string{v}, nil)
		prev = v
	}
	p, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four managed values but only two ever live at once (each op's input
	// and output): the plan must converge to 2 slots, not 4.
	if p.Managed() != 4 {
		t.Fatalf("managed = %d, want 4", p.Managed())
	}
	if p.Slots() != 2 {
		t.Fatalf("slots = %d, want 2 (ping-pong reuse)", p.Slots())
	}
	// Disjoint-lifetime values share: v0 dies at position 1, v2 is defined
	// at position 2.
	if p.SlotOf("v0") != p.SlotOf("v2") {
		t.Fatalf("v0 slot %d, v2 slot %d: disjoint lifetimes must share",
			p.SlotOf("v0"), p.SlotOf("v2"))
	}
}

func TestDiamondUseCounts(t *testing.T) {
	p, err := Build(diamondGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.UseCount("a") != 2 {
		t.Fatalf("a uses = %d, want 2 (B and C)", p.UseCount("a"))
	}
	_, last, _ := p.LivenessOf("a")
	if last != "C" {
		t.Fatalf("a last consumer = %q, want C (later in topo order)", last)
	}
	refs := p.InitialRefs()
	if len(refs) != 3 {
		t.Fatalf("refs = %v, want 3 managed values", refs)
	}
	refs[p.IndexOf("a")] = 0 // mutating the copy must not touch the plan
	if p.UseCount("a") != 2 {
		t.Fatal("InitialRefs must return a copy")
	}
}

func TestDuplicateInputCountsPerOccurrence(t *testing.T) {
	g := graph.New("dup")
	g.Inputs = []graph.ValueInfo{{Name: "in"}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.AddNode("A", "Relu", []string{"in"}, []string{"a"}, nil)
	g.AddNode("B", "Add", []string{"a", "a"}, []string{"out"}, nil)
	p, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The executor decrements once per input occurrence, so the static
	// count must match: 2, not 1.
	if p.UseCount("a") != 2 {
		t.Fatalf("a uses = %d, want 2 (one per occurrence)", p.UseCount("a"))
	}
}

func TestZeroUseValue(t *testing.T) {
	g := graph.New("deadout")
	g.Inputs = []graph.ValueInfo{{Name: "in"}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	// Split-style node with a second output nobody consumes.
	g.AddNode("A", "Split", []string{"in"}, []string{"used", "dead"}, nil)
	g.AddNode("B", "Relu", []string{"used"}, []string{"out"}, nil)
	p, err := Build(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.UseCount("dead") != 0 {
		t.Fatalf("dead uses = %d, want 0", p.UseCount("dead"))
	}
	iv, last, ok := p.LivenessOf("dead")
	if !ok || last != "" || iv.Def != iv.LastUse {
		t.Fatalf("dead liveness = %+v %q, want dead-on-arrival", iv, last)
	}
	if s := p.Summary(); s.ZeroUse != 1 {
		t.Fatalf("summary zero-use = %d, want 1", s.ZeroUse)
	}
}

func TestLaneCoverageValidated(t *testing.T) {
	g := chainGraph()
	_, err := Build(g, [][]*graph.Node{{g.Nodes[0]}}) // misses 2 nodes
	if err == nil {
		t.Fatal("want coverage error for partial lanes")
	}
	if _, err := Build(g, [][]*graph.Node{g.Nodes[:2], g.Nodes[2:]}); err != nil {
		t.Fatalf("full lanes rejected: %v", err)
	}
}

func TestEstimate(t *testing.T) {
	p, err := Build(chainGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"a": 100, "b": 100, "out": 100}
	e := p.Estimate(sizes)
	if e.TotalBytes != 800 { // a + b, 4 bytes each elem
		t.Fatalf("total = %d, want 800", e.TotalBytes)
	}
	// a and b overlap at node B, both live: peak 800.
	if e.PeakLiveBytes != 800 {
		t.Fatalf("peak = %d, want 800", e.PeakLiveBytes)
	}
	if e.SlotBytes != 800 {
		t.Fatalf("slot bytes = %d, want 800 (2 slots x 400)", e.SlotBytes)
	}
	if e.ScratchBytes != 0 {
		t.Fatalf("plain Estimate must not include scratch, got %d", e.ScratchBytes)
	}
}

func TestEstimateWithScratch(t *testing.T) {
	p, err := Build(chainGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{"a": 100, "b": 100, "out": 100}
	// Per-node kernel scratch (im2col + packing); the estimate reports the
	// largest single draw, not the sum — scratch is returned within a node.
	scratch := map[string]int{"A": 50, "B": 300, "C": 10}
	e := p.EstimateWithScratch(sizes, scratch)
	if e.ScratchBytes != 4*300 {
		t.Fatalf("scratch = %d, want %d (largest node)", e.ScratchBytes, 4*300)
	}
	if e.PeakLiveBytes != 800 || e.TotalBytes != 800 {
		t.Fatal("scratch accounting must not disturb value estimates")
	}
	if e2 := p.EstimateWithScratch(sizes, nil); e2.ScratchBytes != 0 {
		t.Fatalf("nil scratch map: got %d", e2.ScratchBytes)
	}
}

func TestRandomGraphsConsistency(t *testing.T) {
	rng := tensor.NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomDAG(rng, 40)
		p, err := Build(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Invariants: every managed value has a slot; slots < managed+1;
		// refs length matches; pinned + managed == total produced values.
		produced := 0
		for _, n := range g.Nodes {
			produced += len(n.Outputs)
		}
		if p.Managed()+p.Pinned() != produced {
			t.Fatalf("managed %d + pinned %d != produced %d", p.Managed(), p.Pinned(), produced)
		}
		if p.Slots() > p.Managed() {
			t.Fatalf("slots %d > managed %d", p.Slots(), p.Managed())
		}
		if len(p.InitialRefs()) != p.Managed() {
			t.Fatal("refs length mismatch")
		}
		// Slot-sharing values must have disjoint lifetimes.
		bySlot := map[int][]string{}
		for _, n := range g.Nodes {
			for _, out := range n.Outputs {
				if s := p.SlotOf(out); s != Unmanaged {
					bySlot[s] = append(bySlot[s], out)
				}
			}
		}
		for s, names := range bySlot {
			for i := 0; i < len(names); i++ {
				for j := i + 1; j < len(names); j++ {
					a, _, _ := p.LivenessOf(names[i])
					b, _, _ := p.LivenessOf(names[j])
					if a.Def <= b.LastUse && b.Def <= a.LastUse {
						t.Fatalf("slot %d holds overlapping %q %+v and %q %+v",
							s, names[i], a, names[j], b)
					}
				}
			}
		}
	}
}
