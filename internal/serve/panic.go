package serve

import (
	"errors"
	"fmt"

	"repro/internal/exec"
)

// ErrPanic marks a request that failed because a panic was recovered
// somewhere on its path — in a kernel (recovered by the executor's lane
// goroutines as exec.PanicError), in session handling, or in the batcher.
// The process survives in every case; the request gets a cause-labeled
// 500. Matched with errors.Is.
var ErrPanic = errors.New("serve: recovered panic")

// panicError is a panic recovered at the serving layer (worker pool or
// batcher), carrying the stack for the panic log. exec-level kernel panics
// arrive as exec.PanicError instead; isPanic and panicStack treat the two
// uniformly.
type panicError struct {
	val   any
	stack []byte
}

func newPanicError(val any, stack []byte) *panicError {
	return &panicError{val: val, stack: stack}
}

func (e *panicError) Error() string { return fmt.Sprintf("serve: recovered panic: %v", e.val) }
func (e *panicError) Unwrap() error { return ErrPanic }

// isPanic reports whether err came from a recovered panic, at either the
// serving layer or inside the executor.
func isPanic(err error) bool {
	if errors.Is(err, ErrPanic) {
		return true
	}
	var pe *exec.PanicError
	return errors.As(err, &pe)
}

// panicStack extracts the recovered goroutine's stack from a panic-caused
// error, or nil if none was captured.
func panicStack(err error) []byte {
	var se *panicError
	if errors.As(err, &se) {
		return se.stack
	}
	var pe *exec.PanicError
	if errors.As(err, &pe) {
		return pe.Stack
	}
	return nil
}
