package serve

import (
	"bufio"
	"context"
	"errors"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrMemoryPressure is returned (unwrapped — the shed path allocates
// nothing) when memory-feasibility admission rejects a request: projected
// working set past the budget. HTTP maps it to 429 with cause "memory" and
// a Retry-After derived from the expected drain.
var ErrMemoryPressure = errors.New("serve: memory budget exceeded, shedding")

// ErrWatchdogKilled wraps the run error of a request force-cancelled by the
// stuck-run watchdog. HTTP maps it to 504 with cause "watchdog".
var ErrWatchdogKilled = errors.New("serve: run killed by stuck-run watchdog")

// ErrBodyTooLarge marks an HTTP request body rejected by the MaxBodyBytes
// cap (413, cause "body_too_large").
var ErrBodyTooLarge = errors.New("serve: request body too large")

// DetectMemoryBudget returns a default memory budget for this process: the
// given fraction (≤ 0 means 0.8) of the tightest limit among the cgroup v2
// memory.max, the cgroup v1 limit, and /proc/meminfo MemTotal. Zero when
// nothing is readable (non-Linux) — callers should then treat governance as
// disabled unless an explicit budget is set.
func DetectMemoryBudget(fraction float64) int64 {
	if fraction <= 0 {
		fraction = 0.8
	}
	limit := int64(0)
	note := func(v int64) {
		if v > 0 && (limit == 0 || v < limit) {
			limit = v
		}
	}
	for _, path := range []string{
		"/sys/fs/cgroup/memory.max",
		"/sys/fs/cgroup/memory/memory.limit_in_bytes",
	} {
		if b, err := os.ReadFile(path); err == nil {
			s := strings.TrimSpace(string(b))
			if s != "max" {
				if v, err := strconv.ParseInt(s, 10, 64); err == nil && v < 1<<60 {
					note(v)
				}
			}
		}
	}
	if f, err := os.Open("/proc/meminfo"); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if fields := strings.Fields(sc.Text()); len(fields) >= 2 && fields[0] == "MemTotal:" {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					note(kb << 10)
				}
				break
			}
		}
		f.Close()
	}
	return int64(fraction * float64(limit))
}

// modelEstimate is one model's asynchronously-computed per-request memory
// forecast: PeakLiveBytes + ScratchBytes of the batch-1 variant. bytes
// stays 0 (admit everything — a cold model must not shed on a guess it
// does not have) until the background sizing run completes.
type modelEstimate struct {
	bytes atomic.Int64
}

// memGovernor is the serve tier's memory-feasibility admission controller:
// admit a request iff
//
//	arena InUseBytes + reserved(admitted, unfinished) + estimate(model) ≤ budget
//
// where estimate is the model's static memory-plan forecast, computed once
// per model off the request path (the sizing run is a full sequential
// execution). The admit/release hot path is a few atomic operations and a
// sync.Map hit — zero allocations.
type memGovernor struct {
	budget int64
	// arena is the server's shared arena stats block (nil when arena-less):
	// its InUseBytes gauge is the live component of the projection.
	arena *tensor.ArenaStats
	// reserved sums the estimates of admitted-but-unfinished requests —
	// memory the projection says is about to be resident.
	reserved atomic.Int64
	sheds    atomic.Int64
	// estimates maps model name -> *modelEstimate.
	estimates sync.Map
}

func newMemGovernor(budget int64, arena *tensor.ArenaStats) *memGovernor {
	if budget <= 0 {
		return nil
	}
	return &memGovernor{budget: budget, arena: arena}
}

// estimate returns the model's per-request byte forecast, 0 while unknown.
// The first call per model seeds the background sizing run.
func (g *memGovernor) estimate(s *Server, model string) int64 {
	if v, ok := g.estimates.Load(model); ok {
		return v.(*modelEstimate).bytes.Load()
	}
	me := &modelEstimate{}
	if actual, loaded := g.estimates.LoadOrStore(model, me); loaded {
		return actual.(*modelEstimate).bytes.Load()
	}
	go func() {
		prog, err := s.reg.Program(model, 1)
		if err != nil {
			return // compile failures surface on the request path, not here
		}
		est, err := prog.MemoryEstimate()
		if err != nil {
			return // unsizable graph: keep admitting
		}
		me.bytes.Store(est.PeakLiveBytes + est.ScratchBytes)
	}()
	return 0
}

// setEstimate installs a forecast directly (tests' fake estimate tables).
func (g *memGovernor) setEstimate(model string, bytes int64) {
	me := &modelEstimate{}
	me.bytes.Store(bytes)
	if actual, loaded := g.estimates.LoadOrStore(model, me); loaded {
		actual.(*modelEstimate).bytes.Store(bytes)
	}
}

// admit decides one request. ok=false means shed; otherwise the returned
// reservation must be handed back via release when the request finishes.
func (g *memGovernor) admit(s *Server, model string) (reserved int64, ok bool) {
	if g == nil {
		return 0, true
	}
	est := g.estimate(s, model)
	var inUse int64
	if g.arena != nil {
		inUse = g.arena.InUseBytes.Load()
	}
	for {
		res := g.reserved.Load()
		if inUse+res+est > g.budget {
			g.sheds.Add(1)
			return 0, false
		}
		if est == 0 || g.reserved.CompareAndSwap(res, res+est) {
			return est, true
		}
	}
}

// release returns an admitted request's reservation.
func (g *memGovernor) release(reserved int64) {
	if g == nil || reserved == 0 {
		return
	}
	g.reserved.Add(-reserved)
}

// retryAfter estimates when shed traffic should come back: the admitted
// backlog (in requests, from the reservation ledger) divided by the worker
// service rate at the model's median execution time.
func (g *memGovernor) retryAfter(est int64, p50 time.Duration, workers int) time.Duration {
	if g == nil {
		return time.Second
	}
	if est <= 0 || p50 <= 0 || workers < 1 {
		return time.Second
	}
	backlog := g.reserved.Load()/est + 1
	d := time.Duration(backlog/int64(workers)+1) * p50
	if d < time.Second {
		d = time.Second
	}
	return d
}

// memRetryAfter computes the Retry-After hint attached to memory-shed 429s:
// the governor's drain estimate at the model's live median execution time.
func (s *Server) memRetryAfter(model string) time.Duration {
	g := s.gov
	if g == nil {
		return time.Second
	}
	var est int64
	if v, ok := g.estimates.Load(model); ok {
		est = v.(*modelEstimate).bytes.Load()
	}
	p50 := time.Duration(s.modelStats(model).stages.Stage(obs.StageExec).Quantile(0.50))
	return g.retryAfter(est, p50, s.cfg.Workers)
}

// MemoryStatsSnapshot is the JSON/probe view of the resource governor.
type MemoryStatsSnapshot struct {
	// Enabled reports whether memory governance is active.
	Enabled bool `json:"enabled"`
	// BudgetBytes is the configured hard budget.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// ReservedBytes is the admission ledger: estimates of admitted,
	// unfinished requests.
	ReservedBytes int64 `json:"reserved_bytes,omitempty"`
	// InUseBytes mirrors the arena gauge the projection reads.
	InUseBytes int64 `json:"in_use_bytes,omitempty"`
	// HeadroomBytes = budget − in-use − reserved (floored at 0). The fleet
	// tier routes away from replicas whose headroom hits zero.
	HeadroomBytes int64 `json:"headroom_bytes"`
	// Sheds counts requests rejected by memory admission.
	Sheds int64 `json:"sheds_total"`
	// ArenaDenials counts arena Gets denied by the budget mid-run.
	ArenaDenials int64 `json:"arena_denials_total,omitempty"`
	// SessionDrops counts pooled sessions discarded after a budget denial
	// (their held free lists return to the GC under pressure).
	SessionDrops int64 `json:"session_drops_total,omitempty"`
	// WatchdogKills counts runs force-cancelled by the stuck-run watchdog.
	WatchdogKills int64 `json:"watchdog_kills_total"`
}

// MemoryStats reports the resource-governance state; Enabled is false (all
// zeros except watchdog kills) when no budget is configured.
func (s *Server) MemoryStats() MemoryStatsSnapshot {
	var snap MemoryStatsSnapshot
	if s.dog != nil {
		snap.WatchdogKills = s.dog.kills.Load()
	}
	g := s.gov
	if g == nil {
		return snap
	}
	snap.Enabled = true
	snap.BudgetBytes = g.budget
	snap.ReservedBytes = g.reserved.Load()
	if g.arena != nil {
		snap.InUseBytes = g.arena.InUseBytes.Load()
		snap.ArenaDenials = g.arena.BudgetDenials.Load()
	}
	if h := g.budget - snap.InUseBytes - snap.ReservedBytes; h > 0 {
		snap.HeadroomBytes = h
	}
	snap.Sheds = g.sheds.Load()
	snap.SessionDrops = s.sessions.budgetDrops.Load()
	return snap
}

// MemHeadroom reports the governor's current headroom; known is false when
// governance is disabled. This is the signal fleet routing reads.
func (s *Server) MemHeadroom() (bytes int64, known bool) {
	g := s.gov
	if g == nil {
		return 0, false
	}
	var inUse int64
	if g.arena != nil {
		inUse = g.arena.InUseBytes.Load()
	}
	if h := g.budget - inUse - g.reserved.Load(); h > 0 {
		return h, true
	}
	return 0, true
}

// watchSlot tracks one in-flight run for the watchdog. start is armed only
// while the run is on a worker (so the table needs Workers entries); the
// mutex guards the identity fields against the ticker.
type watchSlot struct {
	used   atomic.Bool
	start  atomic.Int64 // UnixNano at begin; 0 = disarmed
	killed atomic.Bool

	mu     sync.Mutex
	model  string
	st     *ModelStats
	cancel context.CancelFunc
	id     uint64
}

// watchdog force-cancels runs that exceed factor × the model's live p99
// execution time (floored at floor — also the whole limit while a model has
// no samples yet). A pathological input then degrades one request instead
// of wedging a worker slot until the client deadline. begin/end on the
// serving path are a table scan plus a few atomics — no allocation.
type watchdog struct {
	slots  []watchSlot
	factor float64
	floor  time.Duration
	kills  atomic.Int64
	// killedIDs is a small ring of recently killed request ids. Pool.Do
	// returns the bare context error when a cancellation lands mid-run, so
	// the ErrWatchdogKilled wrap applied inside the pool fn can be lost;
	// dispatch re-attributes the kill by looking the request id up here.
	killedIDs []atomic.Uint64
	killedPos atomic.Uint64
	// batchSeq hands synthetic ids to batch runs (high bit set, so they
	// never collide with server request ids) for the same attribution.
	batchSeq atomic.Uint64
	// killAge records how old runs were when killed (nil with NoObs).
	killAge *obs.Histogram
	stop    chan struct{}
	done    chan struct{}
}

func newWatchdog(workers int, factor float64, floor time.Duration, withObs bool) *watchdog {
	w := &watchdog{
		slots:     make([]watchSlot, workers),
		factor:    factor,
		floor:     floor,
		killedIDs: make([]atomic.Uint64, max(2*workers, 8)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if withObs {
		w.killAge = &obs.Histogram{}
	}
	tick := floor / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	go w.loop(tick)
	return w
}

// begin registers a run that just started on a pool worker. Returns nil
// (unmonitored) if every slot is taken — impossible when the table is sized
// to the worker count, but fail-open is the right degradation anyway.
func (w *watchdog) begin(model string, st *ModelStats, id uint64, cancel context.CancelFunc) *watchSlot {
	if w == nil || cancel == nil {
		return nil
	}
	for i := range w.slots {
		sl := &w.slots[i]
		if sl.used.CompareAndSwap(false, true) {
			sl.mu.Lock()
			sl.model, sl.st, sl.cancel, sl.id = model, st, cancel, id
			sl.mu.Unlock()
			sl.killed.Store(false)
			sl.start.Store(time.Now().UnixNano()) // arm last
			return sl
		}
	}
	return nil
}

// end releases the slot and reports whether the watchdog killed the run.
func (w *watchdog) end(sl *watchSlot) bool {
	if sl == nil {
		return false
	}
	sl.start.Store(0) // disarm before the identity fields are cleared
	killed := sl.killed.Load()
	sl.mu.Lock()
	sl.model, sl.st, sl.cancel = "", nil, nil
	sl.mu.Unlock()
	sl.used.Store(false)
	return killed
}

func (w *watchdog) loop(tick time.Duration) {
	defer close(w.done)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.sweep(now)
		}
	}
}

// sweep inspects every armed slot and kills runs past their limit.
func (w *watchdog) sweep(now time.Time) {
	for i := range w.slots {
		sl := &w.slots[i]
		started := sl.start.Load()
		if started == 0 || sl.killed.Load() {
			continue
		}
		age := now.UnixNano() - started
		if age < int64(w.floor) {
			continue // cheapest rejection first; floor ≤ every limit
		}
		sl.mu.Lock()
		st, cancel, model, id := sl.st, sl.cancel, sl.model, sl.id
		sl.mu.Unlock()
		limit := int64(w.floor)
		if st != nil {
			if p99 := st.stages.Stage(obs.StageExec).Quantile(0.99); p99 > 0 {
				if l := int64(w.factor * float64(p99)); l > limit {
					limit = l
				}
			}
		}
		if age <= limit || cancel == nil {
			continue
		}
		// Re-check under the lock that the slot still belongs to the run we
		// measured (same start stamp) before committing the kill, so a slot
		// recycled between loads never kills its new occupant.
		sl.mu.Lock()
		if sl.start.Load() == started && !sl.killed.Swap(true) {
			cancel = sl.cancel
			sl.mu.Unlock()
			cancel()
			w.kills.Add(1)
			if id != 0 {
				w.killedIDs[w.killedPos.Add(1)%uint64(len(w.killedIDs))].Store(id)
			}
			w.killAge.Record(time.Duration(age))
			// The run's stall diagnostic (lane/op position) arrives with the
			// request error; this log marks who pulled the trigger.
			log.Printf("serve: watchdog killed request %d model %q after %v (limit %v)",
				id, model, time.Duration(age).Round(time.Millisecond), time.Duration(limit).Round(time.Millisecond))
		} else {
			sl.mu.Unlock()
		}
	}
}

// wasKilled reports whether the watchdog recently killed the request with
// this id. Checked on error paths only; the ring scan is a handful of
// atomic loads.
func (w *watchdog) wasKilled(id uint64) bool {
	if w == nil || id == 0 {
		return false
	}
	for i := range w.killedIDs {
		if w.killedIDs[i].Load() == id {
			return true
		}
	}
	return false
}

// batchID mints a synthetic request id for a batch run (0 when the
// watchdog is off).
func (w *watchdog) batchID() uint64 {
	if w == nil {
		return 0
	}
	return w.batchSeq.Add(1) | 1<<63
}

// stopLoop terminates the ticker goroutine (idempotent via Server.Close's
// single-shot guard).
func (w *watchdog) stopLoop() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// WatchdogKills reports runs force-cancelled by the watchdog.
func (s *Server) WatchdogKills() int64 {
	if s.dog == nil {
		return 0
	}
	return s.dog.kills.Load()
}
