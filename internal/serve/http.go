package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/metrics"
	"strconv"
	"time"

	ramiel "repro"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// TensorJSON is the wire form of a dense float32 tensor.
type TensorJSON struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

// toTensor validates and converts the wire form.
func (tj TensorJSON) toTensor() (*ramiel.Tensor, error) {
	shape := ramiel.NewShape(tj.Shape...)
	if !shape.Valid() {
		return nil, fmt.Errorf("invalid shape %v", tj.Shape)
	}
	if shape.Numel() != len(tj.Data) {
		return nil, fmt.Errorf("shape %v wants %d values, got %d", tj.Shape, shape.Numel(), len(tj.Data))
	}
	return ramiel.NewTensor(shape, tj.Data), nil
}

func fromTensor(t *ramiel.Tensor) TensorJSON {
	return TensorJSON{Shape: t.Shape(), Data: t.Data()}
}

// InferRequest is the body of POST /v1/infer. Either Inputs carries the
// full feed, or Seed asks the server to generate deterministic random
// inputs (handy for curl smoke tests).
type InferRequest struct {
	Model     string                `json:"model"`
	Inputs    map[string]TensorJSON `json:"inputs,omitempty"`
	Seed      *uint64               `json:"seed,omitempty"`
	NoBatch   bool                  `json:"no_batch,omitempty"`
	TimeoutMs int                   `json:"timeout_ms,omitempty"`
}

// InferResponse is the body of a successful /v1/infer.
type InferResponse struct {
	Model     string                `json:"model"`
	RequestID uint64                `json:"request_id"`
	Outputs   map[string]TensorJSON `json:"outputs"`
	BatchSize int                   `json:"batch_size"`
	LatencyUs int64                 `json:"latency_us"`
	// Stage breakdown of LatencyUs (see the stage histograms in /v1/stats):
	// micro-batch assembly wait, pool queue wait, and session execution.
	BatchWaitUs int64 `json:"batch_wait_us"`
	QueueWaitUs int64 `json:"queue_wait_us"`
	ExecUs      int64 `json:"exec_us"`
}

// modelInfo is one entry of GET /v1/models.
type modelInfo struct {
	Name           string             `json:"name"`
	Inputs         []valueInfoJSON    `json:"inputs"`
	Outputs        []valueInfoJSON    `json:"outputs"`
	Nodes          int                `json:"nodes"`
	CachedBatches  []int              `json:"cached_batches,omitempty"`
	Stats          ModelStatsSnapshot `json:"stats"`
	ClustersBatch1 int                `json:"clusters_batch1,omitempty"`
}

type valueInfoJSON struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape,omitempty"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	UptimeSeconds float64                       `json:"uptime_seconds"`
	Ready         bool                          `json:"ready"`
	Panics        int64                         `json:"panics_total"`
	Registry      RegistryStatsSnapshot         `json:"registry"`
	Pool          poolStatsJSON                 `json:"pool"`
	Arena         arenaStatsJSON                `json:"arena"`
	Runtime       runtimeStatsJSON              `json:"runtime"`
	Models        map[string]ModelStatsSnapshot `json:"models"`
	// Ops is the per-model, per-op-type execution time table, merged across
	// the model's compiled batch variants — where model time actually goes.
	// Only models with a ready compiled program appear.
	// Memory is the resource-governance view: budget, reservation ledger,
	// headroom, shed/kill counters. Enabled=false when no budget is set;
	// the fleet tier's stats probe reads HeadroomBytes for routing.
	Memory MemoryStatsSnapshot      `json:"memory"`
	Ops    map[string][]obs.OpTotal `json:"ops,omitempty"`
	// OpsByVariant breaks Ops out per hypercluster batch variant
	// (model → "batch_N" → table); populated only for ?variants=1.
	OpsByVariant map[string]map[string][]obs.OpTotal `json:"ops_by_variant,omitempty"`
	// Calibration is the per-model cost-model calibration report (static
	// weights vs live measured per-op durations, batch-1 variant);
	// populated only for ?calibration=1.
	Calibration map[string]*ramiel.Calibration `json:"calibration,omitempty"`
}

type poolStatsJSON struct {
	Workers      int   `json:"workers"`
	QueueDepth   int64 `json:"queue_depth"`
	InFlight     int64 `json:"in_flight"`
	PeakInFlight int64 `json:"peak_in_flight"`
}

// arenaStatsJSON aggregates every worker arena's counters. When disabled,
// only Enabled is meaningful.
type arenaStatsJSON struct {
	Enabled bool `json:"enabled"`
	tensor.ArenaStatsSnapshot
}

// runtimeStatsJSON surfaces the Go runtime's memory counters next to the
// serving stats, so arena wins (flat heap, fewer GCs) are observable from
// the API alone. Values come from runtime/metrics, which reads without
// stopping the world — a monitoring system may poll /v1/stats tightly
// without pausing in-flight inference (runtime.ReadMemStats would STW).
type runtimeStatsJSON struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	SysBytes        uint64 `json:"sys_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	Frees           uint64 `json:"frees"`
	NumGC           uint64 `json:"num_gc"`
	MaxGCPauseNs    uint64 `json:"max_gc_pause_ns"`
	Goroutines      int    `json:"goroutines"`
}

// runtimeMetricNames is the fixed sample set read per stats request.
var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/allocs:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/allocs:objects",
	"/gc/heap/frees:objects",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

func readRuntimeStats() runtimeStatsJSON {
	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	// Largest observed stop-the-world GC pause: the upper bound of the
	// highest non-empty histogram bucket.
	var maxPause uint64
	if samples[6].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[6].Value.Float64Histogram()
		for i := len(h.Counts) - 1; i >= 0; i-- {
			if h.Counts[i] == 0 {
				continue
			}
			bound := h.Buckets[i+1]
			if math.IsInf(bound, 1) {
				bound = h.Buckets[i]
			}
			maxPause = uint64(bound * 1e9)
			break
		}
	}
	return runtimeStatsJSON{
		HeapAllocBytes:  u64(0),
		TotalAllocBytes: u64(1),
		SysBytes:        u64(2),
		Mallocs:         u64(3),
		Frees:           u64(4),
		NumGC:           u64(5),
		MaxGCPauseNs:    maxPause,
		Goroutines:      runtime.NumGoroutine(),
	}
}

type ErrorResponse struct {
	Error string `json:"error"`
	// Cause is the classification label also used by the errors_by_cause
	// counters and trace spans (validation, compile, execution, deadline,
	// canceled, shutdown). Empty for errors outside the serving taxonomy.
	Cause string `json:"cause,omitempty"`
}

// Handler returns the HTTP API:
//
//	GET  /v1/models   — registered models, signatures, cache + stats
//	POST /v1/infer    — run one inference request
//	GET  /v1/stats    — registry/pool/per-model counters, histograms, op time
//	                    (?variants=1 splits op time per batch variant,
//	                    ?calibration=1 adds the cost-model calibration report)
//	GET  /v1/trace    — recent request spans (?n= limits, ?slow=1 for the slow ring)
//	GET  /v1/timeline — latest sampled run timeline of ?model= (&batch=, default 1)
//	                    as Chrome trace-event JSON; needs Config.TimelineEvery > 0
//	GET  /metrics     — Prometheus text exposition
//	GET  /healthz     — liveness
//	GET  /readyz      — readiness (preload set compiled)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/timeline", s.handleTimeline)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// checkFeedSignature verifies client-supplied feeds against the model's
// declared inputs. Failures wrap ramiel.ErrInvalidFeeds so they classify
// as CauseValidation and map to 400, same as Session.Run's own check.
func checkFeedSignature(g *ramiel.Graph, feeds ramiel.Env) error {
	declared := map[string]bool{}
	for _, in := range g.Inputs {
		declared[in.Name] = true
		t, ok := feeds[in.Name]
		if !ok {
			return fmt.Errorf("%w: missing input %q", ramiel.ErrInvalidFeeds, in.Name)
		}
		if len(in.Shape) > 0 && !t.Shape().Equal(in.Shape) {
			return fmt.Errorf("%w: input %q has shape %v, model declares %v",
				ramiel.ErrInvalidFeeds, in.Name, t.Shape(), in.Shape)
		}
	}
	for name := range feeds {
		if !declared[name] {
			return fmt.Errorf("%w: unknown input %q", ramiel.ErrInvalidFeeds, name)
		}
	}
	return nil
}

// writeInferError is writeError for failures of a dispatched inference
// request, which carry a cause label from the serving taxonomy.
func writeInferError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error(), Cause: causeOf(err).String()})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	var infos []modelInfo
	for _, name := range s.reg.Models() {
		info := modelInfo{Name: name, Stats: s.modelStats(name).Snapshot()}
		// Peek, don't build: signatures appear once the model is warmed or
		// first served; a monitoring GET must not trigger graph builds.
		if g := s.reg.PeekGraph(name); g != nil {
			info.Nodes = len(g.Nodes)
			for _, in := range g.Inputs {
				info.Inputs = append(info.Inputs, valueInfoJSON{in.Name, in.Shape})
			}
			for _, out := range g.Outputs {
				info.Outputs = append(info.Outputs, valueInfoJSON{out.Name, out.Shape})
			}
		}
		info.CachedBatches = s.reg.CachedBatches(name)
		// Peek, don't Program: a monitoring GET must not compile anything
		// or skew the cache-hit counters.
		if prog := s.reg.Peek(name, 1); prog != nil {
			info.ClustersBatch1 = prog.NumClusters()
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.cfg.MaxBodyBytes > 0 {
		// Bound the body before the decoder touches it: an unbounded JSON
		// array must not be able to allocate past the configured cap.
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeInferError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w (limit %d bytes)", ErrBodyTooLarge, mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"model\""))
		return
	}
	feeds := ramiel.Env{}
	switch {
	case len(req.Inputs) > 0:
		for name, tj := range req.Inputs {
			t, err := tj.toTensor()
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("input %q: %w", name, err))
				return
			}
			feeds[name] = t
		}
		// Validate against the model signature up front so a bad request
		// is a 400, not a poisoned micro-batch deep in the executor. These
		// rejections count as validation errors for the model just like
		// feed failures caught later by Session.Run.
		g, err := s.reg.Graph(req.Model)
		if err != nil {
			writeError(w, StatusFor(err), err)
			return
		}
		if err := checkFeedSignature(g, feeds); err != nil {
			s.modelStats(req.Model).noteError(CauseValidation)
			writeInferError(w, http.StatusBadRequest, err)
			return
		}
	case req.Seed != nil:
		var err error
		feeds, err = s.RandomFeeds(req.Model, *req.Seed)
		if err != nil {
			writeError(w, StatusFor(err), err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("provide \"inputs\" or \"seed\""))
		return
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	outs, meta, err := s.Infer(ctx, req.Model, feeds, req.NoBatch)
	if meta.RequestID != 0 {
		w.Header().Set("X-Request-ID", strconv.FormatUint(meta.RequestID, 10))
	}
	if err != nil {
		if errors.Is(err, ErrMemoryPressure) {
			// Tell shed clients when the admitted backlog should have
			// drained enough to retry.
			w.Header().Set("Retry-After",
				strconv.Itoa(int(s.memRetryAfter(req.Model)/time.Second)+1))
		}
		writeInferError(w, StatusFor(err), err)
		return
	}
	resp := InferResponse{
		Model:       req.Model,
		RequestID:   meta.RequestID,
		Outputs:     make(map[string]TensorJSON, len(outs)),
		BatchSize:   meta.BatchSize,
		LatencyUs:   meta.Latency.Microseconds(),
		BatchWaitUs: meta.BatchWait.Microseconds(),
		QueueWaitUs: meta.QueueWait.Microseconds(),
		ExecUs:      meta.Exec.Microseconds(),
	}
	for name, t := range outs {
		resp.Outputs[name] = fromTensor(t)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves GET /v1/trace: the most recent request spans, newest
// first. ?n= caps the count; ?slow=1 reads the slow-request ring (spans at
// or above Config.SlowThreshold) instead of the recent ring.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	if !s.obs {
		writeError(w, http.StatusNotImplemented, errors.New("tracing disabled (server started with telemetry off)"))
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", v))
			return
		}
		n = parsed
	}
	slow := r.URL.Query().Get("slow") == "1"
	var spans []obs.Span
	if slow {
		spans = s.SlowTraces(n)
	} else {
		spans = s.Traces(n)
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slow":  slow,
		"spans": spans,
	})
}

// handleTimeline serves GET /v1/timeline: the latest sampled execution
// timeline of ?model= (and optional &batch=, default 1) rendered as Chrome
// trace-event JSON — load the response body in Perfetto (ui.perfetto.dev)
// or chrome://tracing to see lanes as threads, kernels as slices, and
// cross-lane transfers as flow arrows. 501 when the server runs without the
// flight recorder (Config.TimelineEvery == 0), 404 while the variant is
// uncompiled or no run has been sampled yet.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	if s.cfg.TimelineEvery < 1 {
		writeError(w, http.StatusNotImplemented,
			errors.New("timeline recording disabled (start the server with TimelineEvery > 0)"))
		return
	}
	model := r.URL.Query().Get("model")
	if model == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"model\""))
		return
	}
	batch := 1
	if v := r.URL.Query().Get("batch"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid batch %q", v))
			return
		}
		batch = parsed
	}
	// Peek, don't Program: a monitoring GET must not compile anything or
	// skew the cache counters (same policy as /v1/models and /v1/stats).
	prog := s.reg.Peek(model, batch)
	if prog == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no compiled batch-%d program for %q (not registered, not yet compiled, or failed)", batch, model))
		return
	}
	tl := prog.LastTimeline()
	if tl == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no sampled run yet for %q batch %d (sampling 1 in %d)", model, batch, s.cfg.TimelineEvery))
		return
	}
	process := model
	if batch > 1 {
		process = fmt.Sprintf("%s (batch %d)", model, batch)
	}
	body, err := tl.ChromeTrace(process)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleReady serves GET /readyz: 200 once the preload set has compiled
// (Warm succeeded or MarkReady was called), 503 before. Distinct from
// /healthz, which only says the process is serving HTTP.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.mu.Lock()
	models := make(map[string]ModelStatsSnapshot, len(s.stats))
	for name, st := range s.stats {
		models[name] = st.Snapshot()
	}
	s.mu.Unlock()
	arena := arenaStatsJSON{}
	arena.ArenaStatsSnapshot, arena.Enabled = s.ArenaStats()
	resp := statsResponse{
		UptimeSeconds: s.Uptime().Seconds(),
		Ready:         s.Ready(),
		Panics:        s.Panics(),
		Registry:      s.reg.Stats(),
		Pool: poolStatsJSON{
			Workers:      s.cfg.Workers,
			QueueDepth:   s.pool.QueueDepth(),
			InFlight:     s.pool.InFlight(),
			PeakInFlight: s.pool.PeakInFlight(),
		},
		Arena:   arena,
		Memory:  s.MemoryStats(),
		Runtime: readRuntimeStats(),
		Models:  models,
		Ops:     s.opTotals(),
	}
	if r.URL.Query().Get("variants") == "1" {
		resp.OpsByVariant = s.opTotalsByVariant()
	}
	if r.URL.Query().Get("calibration") == "1" {
		resp.Calibration = s.calibrations()
	}
	writeJSON(w, http.StatusOK, resp)
}

// opTotalsByVariant is opTotals without the merge: per model, each compiled
// hypercluster batch variant's own op-time table under a "batch_N" key.
// Same peek-only policy; variants that have never executed are omitted.
func (s *Server) opTotalsByVariant() map[string]map[string][]obs.OpTotal {
	var out map[string]map[string][]obs.OpTotal
	for _, name := range s.reg.Models() {
		for _, batch := range s.reg.CachedBatches(name) {
			prog := s.reg.Peek(name, batch)
			if prog == nil {
				continue
			}
			totals := prog.OpTotals()
			if totals == nil {
				continue
			}
			if out == nil {
				out = map[string]map[string][]obs.OpTotal{}
			}
			if out[name] == nil {
				out[name] = map[string][]obs.OpTotal{}
			}
			out[name][fmt.Sprintf("batch_%d", batch)] = totals
		}
	}
	return out
}

// calibrations builds the per-model cost-model calibration reports from the
// batch-1 variants' live counters (peek-only; models that have not executed
// are omitted).
func (s *Server) calibrations() map[string]*ramiel.Calibration {
	var out map[string]*ramiel.Calibration
	for _, name := range s.reg.Models() {
		prog := s.reg.Peek(name, 1)
		if prog == nil {
			continue
		}
		cal := prog.Calibrate()
		if cal == nil {
			continue
		}
		if out == nil {
			out = map[string]*ramiel.Calibration{}
		}
		out[name] = cal
	}
	return out
}

// opTotals builds the per-model op-time tables for stats and metrics by
// peeking every ready compiled variant (never compiling — a monitoring GET
// must not trigger builds or skew cache counters) and merging the variants'
// tables. Models with no executed ops yet are omitted.
func (s *Server) opTotals() map[string][]obs.OpTotal {
	var out map[string][]obs.OpTotal
	for _, name := range s.reg.Models() {
		var tables [][]obs.OpTotal
		for _, batch := range s.reg.CachedBatches(name) {
			if prog := s.reg.Peek(name, batch); prog != nil {
				tables = append(tables, prog.OpTotals())
			}
		}
		if merged := obs.MergeOpTotals(tables...); merged != nil {
			if out == nil {
				out = map[string][]obs.OpTotal{}
			}
			out[name] = merged
		}
	}
	return out
}

// StatusFor maps serving errors onto HTTP status codes.
func StatusFor(err error) int {
	switch {
	// The watchdog kill wraps a context error, so it must outrank the bare
	// ctx cases; it reads as a server-side timeout.
	case errors.Is(err, ErrWatchdogKilled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrMemoryPressure):
		// Admission shed: the client should back off and retry.
		return http.StatusTooManyRequests
	case errors.Is(err, tensor.ErrArenaBudget):
		// The run itself outgrew the budget mid-flight: overload, 503.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.Canceled):
		// Client went away; 499 is the de-facto status for that (nginx).
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrShutdown), errors.Is(err, ErrBatcherClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotRegistered):
		return http.StatusNotFound
	case errors.Is(err, ramiel.ErrInvalidFeeds):
		// Bad feeds are a client error even when they slip past the HTTP
		// layer's up-front validation (e.g. direct API use).
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
