package serve

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
)

// ErrShutdown is returned by Pool.Do once the pool is closing.
var ErrShutdown = errors.New("serve: pool shut down")

// Timing reports where a pooled execution spent its time. Ran is false when
// the task never reached a worker (rejected, swept at shutdown, or the
// submitter's context expired first), in which case Exec is zero and Queue
// covers the wait until rejection.
type Timing struct {
	Queue time.Duration
	Exec  time.Duration
	Ran   bool
}

// taskResult carries one execution's outcome back to the submitter.
type taskResult struct {
	outs   ramiel.Env
	timing Timing
	err    error
}

// task is one unit of work: run fn under the submitter's context and
// deliver the result. res is buffered so an abandoned (deadline-exceeded)
// submitter never blocks a worker. submit timestamps the Do call so the
// worker can attribute queue wait vs execution time without any extra
// allocation — the fields ride the already-allocated task.
type task struct {
	ctx    context.Context
	fn     func(context.Context) (ramiel.Env, error)
	res    chan taskResult
	submit time.Time
}

// Pool executes inference runs on a fixed set of worker goroutines with a
// bounded backlog, so the number of concurrent plan executions — and the
// number of goroutines each plan fans out — stays controlled under load.
type Pool struct {
	tasks chan *task
	quit  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	// closeMu guards the closed flag and sender registration; it is never
	// held across a blocking send, so Close's write lock is always quick.
	// senders counts Dos between registration and enqueue-settled: once
	// Close observes senders drained, no further task can enter the
	// channel, so its final sweep provably catches every stranded task.
	closeMu sync.RWMutex
	closed  bool
	senders sync.WaitGroup

	inflight atomic.Int64
	queued   atomic.Int64
	peak     atomic.Int64
}

// NewPool starts a pool with the given worker count and queue backlog
// (minimums 1 and 0 are enforced).
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{
		tasks: make(chan *task, backlog),
		quit:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.run(t)
		case <-p.quit:
			// Drain whatever was accepted before shutdown, then exit.
			for {
				select {
				case t := <-p.tasks:
					p.run(t)
				default:
					return
				}
			}
		}
	}
}

func (p *Pool) run(t *task) {
	p.queued.Add(-1)
	pickup := time.Now()
	queue := pickup.Sub(t.submit)
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Skip work whose submitter already gave up.
	select {
	case <-ctx.Done():
		t.res <- taskResult{err: ctx.Err(), timing: Timing{Queue: queue}}
		return
	default:
	}
	n := p.inflight.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	outs, err := p.invoke(t, ctx)
	p.inflight.Add(-1)
	t.res <- taskResult{outs: outs, err: err,
		timing: Timing{Queue: queue, Exec: time.Since(pickup), Ran: true}}
}

// invoke runs the task's fn with a recover backstop: a panic escaping fn
// becomes an error result instead of killing the worker goroutine (and
// with it the whole pool's capacity). Session runs recover one level
// deeper — this catches anything else submitted to the pool.
func (p *Pool) invoke(t *task, ctx context.Context) (outs ramiel.Env, err error) {
	defer func() {
		if r := recover(); r != nil {
			outs, err = nil, newPanicError(r, debug.Stack())
		}
	}()
	return t.fn(ctx)
}

// Do runs fn on a pool worker, passing it ctx, and returns its result plus
// a Timing attributing queue wait vs execution. It blocks while the backlog
// is full (backpressure), honors ctx for queueing and waiting, and fails
// fast with ErrShutdown once Close has begun. When ctx expires while fn is
// already running, Do returns the ctx error immediately and the
// cancellation propagates into fn — session runs observe it between
// kernels, so the worker slot frees within one kernel's duration instead of
// computing the abandoned request to completion.
func (p *Pool) Do(ctx context.Context, fn func(context.Context) (ramiel.Env, error)) (ramiel.Env, Timing, error) {
	t := &task{ctx: ctx, fn: fn, res: make(chan taskResult, 1), submit: time.Now()}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return nil, Timing{}, ErrShutdown
	}
	p.senders.Add(1)
	p.closeMu.RUnlock()
	p.queued.Add(1)
	select {
	case p.tasks <- t:
		p.senders.Done()
	case <-p.quit:
		p.senders.Done()
		p.queued.Add(-1)
		return nil, Timing{Queue: time.Since(t.submit)}, ErrShutdown
	case <-ctx.Done():
		p.senders.Done()
		p.queued.Add(-1)
		return nil, Timing{Queue: time.Since(t.submit)}, ctx.Err()
	}
	select {
	case r := <-t.res:
		return r.outs, r.timing, r.err
	case <-ctx.Done():
		return nil, Timing{Queue: time.Since(t.submit)}, ctx.Err()
	}
}

// QueueDepth reports tasks accepted but not yet started.
func (p *Pool) QueueDepth() int64 { return p.queued.Load() }

// InFlight reports tasks currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// PeakInFlight reports the highest concurrent execution count observed.
func (p *Pool) PeakInFlight() int64 { return p.peak.Load() }

// Close stops accepting work, lets workers drain the accepted backlog, and
// waits for them to exit or for ctx to expire. Senders that raced the
// shutdown and enqueued behind the workers' final drain are swept and
// failed with ErrShutdown rather than left hanging.
func (p *Pool) Close(ctx context.Context) error {
	p.once.Do(func() {
		p.closeMu.Lock()
		p.closed = true
		p.closeMu.Unlock()
		close(p.quit)
	})
	done := make(chan struct{})
	go func() {
		p.senders.Wait() // no further enqueues after this
		p.wg.Wait()      // workers finished their drains
		for {
			select {
			case t := <-p.tasks: // stranded behind an exited worker
				p.queued.Add(-1)
				t.res <- taskResult{err: ErrShutdown}
			default:
				close(done)
				return
			}
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
