package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: invalid JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPTimelineDisabled(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	if code := getJSON(t, ts.URL+"/v1/timeline?model=squeezenet", nil); code != http.StatusNotImplemented {
		t.Errorf("timeline with recording off: %d, want 501", code)
	}
}

func TestHTTPTimelineEndpoint(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1, TimelineEvery: 1}, "squeezenet")

	if code := getJSON(t, ts.URL+"/v1/timeline", nil); code != http.StatusBadRequest {
		t.Errorf("missing model: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/timeline?model=squeezenet&batch=zero", nil); code != http.StatusBadRequest {
		t.Errorf("bad batch: %d, want 400", code)
	}
	// Monitoring must not compile: before any inference the variant does
	// not exist, and asking for its timeline reports 404, not a build.
	if code := getJSON(t, ts.URL+"/v1/timeline?model=squeezenet", nil); code != http.StatusNotFound {
		t.Errorf("uncompiled model: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/timeline?model=nosuch", nil); code != http.StatusNotFound {
		t.Errorf("unknown model: %d, want 404", code)
	}

	seed := uint64(1)
	resp, _ := postInfer(t, ts.URL, InferRequest{Model: "squeezenet", Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d", resp.StatusCode)
	}

	var trace struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if code := getJSON(t, ts.URL+"/v1/timeline?model=squeezenet", &trace); code != http.StatusOK {
		t.Fatalf("timeline after infer: %d, want 200", code)
	}
	var ops int
	for _, e := range trace.TraceEvents {
		if e.Ph == "X" && e.Cat == "op" {
			ops++
		}
	}
	if ops == 0 {
		t.Errorf("no op events in exported trace (%d events)", len(trace.TraceEvents))
	}
}

func TestHTTPStatsVariantsAndCalibration(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1, TimelineEvery: 4}, "squeezenet")
	seed := uint64(1)
	for i := 0; i < 3; i++ {
		resp, _ := postInfer(t, ts.URL, InferRequest{Model: "squeezenet", Seed: &seed})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer: %d", resp.StatusCode)
		}
	}

	// Plain stats omit the opt-in blocks.
	var plain map[string]json.RawMessage
	if code := getJSON(t, ts.URL+"/v1/stats", &plain); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := plain["ops_by_variant"]; ok {
		t.Error("ops_by_variant present without ?variants=1")
	}
	if _, ok := plain["calibration"]; ok {
		t.Error("calibration present without ?calibration=1")
	}

	var stats struct {
		OpsByVariant map[string]map[string][]struct {
			Op      string `json:"op"`
			Count   int64  `json:"count"`
			TotalNs int64  `json:"total_ns"`
		} `json:"ops_by_variant"`
		Calibration map[string]struct {
			Nodes           int     `json:"nodes"`
			BaselineUsPerWt float64 `json:"baseline_us_per_weight"`
			Ops             []struct {
				Op    string  `json:"op"`
				Ratio float64 `json:"ratio"`
			} `json:"ops"`
		} `json:"calibration"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats?variants=1&calibration=1", &stats); code != http.StatusOK {
		t.Fatalf("stats with opts: %d", code)
	}
	variants := stats.OpsByVariant["squeezenet"]
	if len(variants) == 0 {
		t.Fatalf("no squeezenet variants in ops_by_variant: %v", stats.OpsByVariant)
	}
	totals := variants["batch_1"]
	if len(totals) == 0 {
		t.Fatalf("no batch_1 op totals: %v", variants)
	}
	for _, ot := range totals {
		if ot.Count <= 0 || ot.TotalNs <= 0 {
			t.Errorf("empty op total %+v", ot)
		}
	}
	cal, ok := stats.Calibration["squeezenet"]
	if !ok {
		t.Fatalf("no squeezenet calibration: %v", stats.Calibration)
	}
	if cal.Nodes <= 0 || cal.BaselineUsPerWt <= 0 || len(cal.Ops) == 0 {
		t.Errorf("degenerate calibration %+v", cal)
	}
}
