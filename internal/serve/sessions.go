package serve

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"

	ramiel "repro"
	"repro/internal/tensor"
)

// sessionSource keeps warm ramiel.Sessions alive across requests, one
// sync.Pool of sessions per compiled program variant. A request borrows a
// session for the duration of its run, so a session (and the arena it
// owns) is never shared by two concurrent runs — the single-goroutine
// Session contract — yet its arena free lists survive from request to
// request, which is what turns steady-state serving's per-request
// intermediate tensors into free-list reuse instead of GC garbage. Under
// memory pressure the GC empties the sync.Pools and the sessions (with
// their held buffers) are simply collected.
//
// The request context is handed straight into Session.Run, so a client
// that gives up (HTTP disconnect, deadline) aborts its in-flight run
// cooperatively instead of wasting the worker slot; the aborted session's
// arena stays consistent and the session goes back into the pool.
//
// When the server runs arena-less (Config.NoArena) the pooled sessions are
// created WithoutArena — same borrowing discipline, plain heap execution.
// All session arenas report into one shared stats block so /v1/stats shows
// aggregate hit/miss/peak numbers for the whole server.
type sessionSource struct {
	arena bool
	stats tensor.ArenaStats
	// budgetDrops counts sessions discarded after an arena-budget denial
	// (see run): dropping the session hands its parked free lists to the
	// GC, which is exactly the relief a budget breach asks for.
	budgetDrops atomic.Int64
	// pools maps *ramiel.Program to its *sync.Pool of *ramiel.Session.
	// Entries live as long as the registry's program cache keeps the
	// program reachable, so growth is bounded by (model, batch) variants.
	pools sync.Map
}

func newSessionSource(arena bool) *sessionSource {
	return &sessionSource{arena: arena}
}

// poolFor returns (creating on first use) the session pool for a program.
func (s *sessionSource) poolFor(prog *ramiel.Program) *sync.Pool {
	if p, ok := s.pools.Load(prog); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		if s.arena {
			return prog.NewSession(ramiel.WithArena(tensor.NewArenaWithStats(&s.stats)))
		}
		return prog.NewSession(ramiel.WithoutArena())
	}}
	actual, _ := s.pools.LoadOrStore(prog, p)
	return actual.(*sync.Pool)
}

// run executes the program with a borrowed session under ctx.
func (s *sessionSource) run(ctx context.Context, prog *ramiel.Program, feeds ramiel.Env) (outs ramiel.Env, err error) {
	pool := s.poolFor(prog)
	sess := pool.Get().(*ramiel.Session)
	defer func() {
		if r := recover(); r != nil {
			// Kernel panics are already recovered inside the executor's
			// lane goroutines and surface as ordinary errors with the
			// arena unwound, so a panic crossing Run means session-level
			// state of unknown consistency: convert it to an error and
			// drop the session instead of pooling it. The sync.Pool
			// replaces it on the next Get.
			outs, err = nil, newPanicError(r, debug.Stack())
			return
		}
		if err != nil && errors.Is(err, tensor.ErrArenaBudget) {
			// A budget denial means the server is at its memory cap: the
			// run's arena is reconciled (the executor abandoned its
			// outstanding bytes) but re-pooling the session would keep its
			// parked free lists resident. Drop it so held memory shrinks
			// under exactly the pressure that tripped the budget.
			s.budgetDrops.Add(1)
			return
		}
		pool.Put(sess)
	}()
	return sess.Run(ctx, feeds)
}

// snapshot reads the aggregate arena counters; ok is false when the server
// runs arena-less.
func (s *sessionSource) snapshot() (tensor.ArenaStatsSnapshot, bool) {
	if s == nil || !s.arena {
		return tensor.ArenaStatsSnapshot{}, false
	}
	return s.stats.Snapshot(), true
}
