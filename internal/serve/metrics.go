package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (text/plain; version=0.0.4), dependency-free: counters, gauges and
// the per-model stage-latency histograms (cumulative le buckets in
// seconds). Reading is snapshot-priced — the hot path never pays for it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	s.writeMetrics(bw)
}

// writeMetrics renders every family. Split from the handler so tests can
// render to a buffer.
func (s *Server) writeMetrics(w *bufio.Writer) {
	// Process-level gauges.
	obs.PromHeader(w, "ramield_uptime_seconds", "gauge", "Time since the serving runtime started.")
	fmt.Fprintf(w, "ramield_uptime_seconds %s\n", obs.PromFloat(s.Uptime().Seconds()))
	obs.PromHeader(w, "ramield_ready", "gauge", "1 once the preload set has compiled (see /readyz).")
	fmt.Fprintf(w, "ramield_ready %d\n", boolToInt(s.Ready()))
	obs.PromHeader(w, "ramield_panics_total", "counter", "Requests failed by a recovered panic; the per-model split is errors_total{cause=\"panic\"}.")
	fmt.Fprintf(w, "ramield_panics_total %d\n", s.Panics())

	// Registry (compile cache) counters.
	reg := s.reg.Stats()
	obs.PromHeader(w, "ramield_compiles_total", "counter", "Model/variant compilations performed.")
	fmt.Fprintf(w, "ramield_compiles_total %d\n", reg.Compiles)
	obs.PromHeader(w, "ramield_compile_cache_hits_total", "counter", "Program cache hits.")
	fmt.Fprintf(w, "ramield_compile_cache_hits_total %d\n", reg.CacheHits)
	obs.PromHeader(w, "ramield_compile_cache_misses_total", "counter", "Program cache misses.")
	fmt.Fprintf(w, "ramield_compile_cache_misses_total %d\n", reg.CacheMisses)
	obs.PromHeader(w, "ramield_compile_seconds_total", "counter", "Cumulative time spent compiling.")
	fmt.Fprintf(w, "ramield_compile_seconds_total %s\n", obs.PromFloat(float64(reg.CompileMicros)/1e6))

	// Worker pool gauges.
	obs.PromHeader(w, "ramield_pool_workers", "gauge", "Configured worker count.")
	fmt.Fprintf(w, "ramield_pool_workers %d\n", s.cfg.Workers)
	obs.PromHeader(w, "ramield_pool_queue_depth", "gauge", "Tasks accepted but not yet started.")
	fmt.Fprintf(w, "ramield_pool_queue_depth %d\n", s.pool.QueueDepth())
	obs.PromHeader(w, "ramield_pool_in_flight", "gauge", "Tasks currently executing.")
	fmt.Fprintf(w, "ramield_pool_in_flight %d\n", s.pool.InFlight())
	obs.PromHeader(w, "ramield_pool_peak_in_flight", "gauge", "Highest concurrent execution count observed.")
	fmt.Fprintf(w, "ramield_pool_peak_in_flight %d\n", s.pool.PeakInFlight())

	// Arena counters (absent when the arena is disabled).
	if arena, ok := s.ArenaStats(); ok {
		obs.PromHeader(w, "ramield_arena_gets_total", "counter", "Arena buffer requests.")
		fmt.Fprintf(w, "ramield_arena_gets_total %d\n", arena.Gets)
		obs.PromHeader(w, "ramield_arena_hits_total", "counter", "Arena requests served from free lists.")
		fmt.Fprintf(w, "ramield_arena_hits_total %d\n", arena.Hits)
		obs.PromHeader(w, "ramield_arena_misses_total", "counter", "Arena requests that allocated.")
		fmt.Fprintf(w, "ramield_arena_misses_total %d\n", arena.Misses)
		obs.PromHeader(w, "ramield_arena_puts_total", "counter", "Buffers recycled back to arenas.")
		fmt.Fprintf(w, "ramield_arena_puts_total %d\n", arena.Puts)
		obs.PromHeader(w, "ramield_arena_alloc_bytes_total", "counter", "Bytes allocated by arena misses.")
		fmt.Fprintf(w, "ramield_arena_alloc_bytes_total %d\n", arena.AllocBytes)
		obs.PromHeader(w, "ramield_arena_in_use_bytes", "gauge", "Arena bytes handed out and not yet recycled.")
		fmt.Fprintf(w, "ramield_arena_in_use_bytes %d\n", arena.InUseBytes)
		obs.PromHeader(w, "ramield_arena_peak_bytes", "gauge", "Peak arena bytes in use.")
		fmt.Fprintf(w, "ramield_arena_peak_bytes %d\n", arena.PeakBytes)
		obs.PromHeader(w, "ramield_arena_held_bytes", "gauge", "Arena bytes parked on free lists.")
		fmt.Fprintf(w, "ramield_arena_held_bytes %d\n", arena.HeldBytes)
	}

	// Resource governance: memory budget/headroom gauges and watchdog
	// counters. Memory sheds ride errors_total{cause="memory"} per model.
	mem := s.MemoryStats()
	if mem.Enabled {
		obs.PromHeader(w, "ramield_mem_budget_bytes", "gauge", "Configured memory budget for admission and the arena cap.")
		fmt.Fprintf(w, "ramield_mem_budget_bytes %d\n", mem.BudgetBytes)
		obs.PromHeader(w, "ramield_mem_reserved_bytes", "gauge", "Admission ledger: summed estimates of admitted, unfinished requests.")
		fmt.Fprintf(w, "ramield_mem_reserved_bytes %d\n", mem.ReservedBytes)
		obs.PromHeader(w, "ramield_mem_headroom_bytes", "gauge", "Budget minus in-use minus reserved (the fleet routing signal).")
		fmt.Fprintf(w, "ramield_mem_headroom_bytes %d\n", mem.HeadroomBytes)
		obs.PromHeader(w, "ramield_mem_sheds_total", "counter", "Requests rejected by memory-feasibility admission.")
		fmt.Fprintf(w, "ramield_mem_sheds_total %d\n", mem.Sheds)
		obs.PromHeader(w, "ramield_arena_budget_denials_total", "counter", "Arena buffer requests denied by the budget mid-run.")
		fmt.Fprintf(w, "ramield_arena_budget_denials_total %d\n", mem.ArenaDenials)
		obs.PromHeader(w, "ramield_mem_session_drops_total", "counter", "Pooled sessions discarded after a budget denial.")
		fmt.Fprintf(w, "ramield_mem_session_drops_total %d\n", mem.SessionDrops)
	}
	if s.dog != nil {
		obs.PromHeader(w, "ramield_watchdog_kills_total", "counter", "Runs force-cancelled by the stuck-run watchdog.")
		fmt.Fprintf(w, "ramield_watchdog_kills_total %d\n", mem.WatchdogKills)
		if snap := s.dog.killAge.Snapshot(); snap.Count > 0 {
			obs.PromHeader(w, "ramield_watchdog_kill_age_seconds", "histogram", "Age of runs at the moment the watchdog killed them.")
			obs.PromHistogram(w, "ramield_watchdog_kill_age_seconds", `kind="kill"`, snap)
		}
	}

	// Per-model counters, cause-labeled errors, and stage histograms,
	// snapshotted once per model. Sorted model order keeps the exposition
	// diffable.
	s.mu.Lock()
	names := make([]string, 0, len(s.stats))
	snaps := make(map[string]ModelStatsSnapshot, len(s.stats))
	for name, st := range s.stats {
		names = append(names, name)
		snaps[name] = st.Snapshot()
	}
	s.mu.Unlock()
	sort.Strings(names)

	writeModelCounter(w, "ramield_requests_total", "counter", "Inference requests routed to the model.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Requests })
	writeModelCounter(w, "ramield_batched_requests_total", "counter", "Requests served inside a coalesced batch of size > 1.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Batched })
	writeModelCounter(w, "ramield_batch_flushes_total", "counter", "Micro-batch flushes executed.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Flushes })
	writeModelCounter(w, "ramield_batch_flushed_samples_total", "counter", "Requests carried by all flushes.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.FlushedSamples })
	writeModelCounter(w, "ramield_batch_max_seen", "gauge", "Largest coalesced batch executed.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.MaxBatchSeen })
	writeModelCounter(w, "ramield_batcher_queue_depth", "gauge", "Requests waiting in the micro-batcher window.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.QueueDepth })
	writeModelCounter(w, "ramield_model_in_flight", "gauge", "Requests dispatched for the model and not yet answered (the fleet spillover signal).",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.InFlight })
	writeModelCounter(w, "ramield_batch_flush_window_ns", "gauge", "Micro-batch flush window last armed for the model (adaptive batching makes this move with load).",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.FlushWindowNs })

	obs.PromHeader(w, "ramield_errors_total", "counter", "Failed requests by cause. Canceled clients carry their own label but are excluded from error-rate SLOs by convention.")
	for _, name := range names {
		snap := snaps[name]
		causes := make([]string, 0, len(snap.ErrorsByCause))
		for cause := range snap.ErrorsByCause {
			causes = append(causes, cause)
		}
		sort.Strings(causes)
		for _, cause := range causes {
			fmt.Fprintf(w, "ramield_errors_total{model=%s,cause=%s} %d\n",
				obs.PromLabel(name), obs.PromLabel(cause), snap.ErrorsByCause[cause])
		}
	}

	obs.PromHeader(w, "ramield_stage_duration_seconds", "histogram", "Request latency by lifecycle stage (batch_assembly, queue_wait, execute, e2e).")
	for _, name := range names {
		stages := snaps[name].Stages
		for _, stage := range obs.Stages() {
			snap, ok := stages[stage.String()]
			if !ok || snap.Count == 0 {
				continue
			}
			obs.PromHistogram(w, "ramield_stage_duration_seconds",
				fmt.Sprintf("model=%s,stage=%s", obs.PromLabel(name), obs.PromLabel(stage.String())), snap)
		}
	}

	// Per-op execution totals, merged across each model's batch variants.
	ops := s.opTotals()
	opModels := make([]string, 0, len(ops))
	for name := range ops {
		opModels = append(opModels, name)
	}
	sort.Strings(opModels)
	obs.PromHeader(w, "ramield_op_invocations_total", "counter", "Kernel invocations by operator type.")
	for _, name := range opModels {
		for _, t := range ops[name] {
			fmt.Fprintf(w, "ramield_op_invocations_total{model=%s,op=%s} %d\n",
				obs.PromLabel(name), obs.PromLabel(t.Op), t.Count)
		}
	}
	obs.PromHeader(w, "ramield_op_seconds_total", "counter", "Cumulative kernel wall time by operator type.")
	for _, name := range opModels {
		for _, t := range ops[name] {
			fmt.Fprintf(w, "ramield_op_seconds_total{model=%s,op=%s} %s\n",
				obs.PromLabel(name), obs.PromLabel(t.Op), obs.PromFloat(float64(t.TotalNs)/1e9))
		}
	}
}

// writeModelCounter renders one per-model single-value family.
func writeModelCounter(w *bufio.Writer, family, kind, help string, names []string, snaps map[string]ModelStatsSnapshot, get func(ModelStatsSnapshot) int64) {
	obs.PromHeader(w, family, kind, help)
	for _, name := range names {
		fmt.Fprintf(w, "%s{model=%s} %d\n", family, obs.PromLabel(name), get(snaps[name]))
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
