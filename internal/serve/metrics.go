package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (text/plain; version=0.0.4), dependency-free: counters, gauges and
// the per-model stage-latency histograms (cumulative le buckets in
// seconds). Reading is snapshot-priced — the hot path never pays for it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	s.writeMetrics(bw)
}

// writeMetrics renders every family. Split from the handler so tests can
// render to a buffer.
func (s *Server) writeMetrics(w *bufio.Writer) {
	// Process-level gauges.
	writeHeader(w, "ramield_uptime_seconds", "gauge", "Time since the serving runtime started.")
	fmt.Fprintf(w, "ramield_uptime_seconds %s\n", fmtFloat(s.Uptime().Seconds()))
	writeHeader(w, "ramield_ready", "gauge", "1 once the preload set has compiled (see /readyz).")
	fmt.Fprintf(w, "ramield_ready %d\n", boolToInt(s.Ready()))

	// Registry (compile cache) counters.
	reg := s.reg.Stats()
	writeHeader(w, "ramield_compiles_total", "counter", "Model/variant compilations performed.")
	fmt.Fprintf(w, "ramield_compiles_total %d\n", reg.Compiles)
	writeHeader(w, "ramield_compile_cache_hits_total", "counter", "Program cache hits.")
	fmt.Fprintf(w, "ramield_compile_cache_hits_total %d\n", reg.CacheHits)
	writeHeader(w, "ramield_compile_cache_misses_total", "counter", "Program cache misses.")
	fmt.Fprintf(w, "ramield_compile_cache_misses_total %d\n", reg.CacheMisses)
	writeHeader(w, "ramield_compile_seconds_total", "counter", "Cumulative time spent compiling.")
	fmt.Fprintf(w, "ramield_compile_seconds_total %s\n", fmtFloat(float64(reg.CompileMicros)/1e6))

	// Worker pool gauges.
	writeHeader(w, "ramield_pool_workers", "gauge", "Configured worker count.")
	fmt.Fprintf(w, "ramield_pool_workers %d\n", s.cfg.Workers)
	writeHeader(w, "ramield_pool_queue_depth", "gauge", "Tasks accepted but not yet started.")
	fmt.Fprintf(w, "ramield_pool_queue_depth %d\n", s.pool.QueueDepth())
	writeHeader(w, "ramield_pool_in_flight", "gauge", "Tasks currently executing.")
	fmt.Fprintf(w, "ramield_pool_in_flight %d\n", s.pool.InFlight())
	writeHeader(w, "ramield_pool_peak_in_flight", "gauge", "Highest concurrent execution count observed.")
	fmt.Fprintf(w, "ramield_pool_peak_in_flight %d\n", s.pool.PeakInFlight())

	// Arena counters (absent when the arena is disabled).
	if arena, ok := s.ArenaStats(); ok {
		writeHeader(w, "ramield_arena_gets_total", "counter", "Arena buffer requests.")
		fmt.Fprintf(w, "ramield_arena_gets_total %d\n", arena.Gets)
		writeHeader(w, "ramield_arena_hits_total", "counter", "Arena requests served from free lists.")
		fmt.Fprintf(w, "ramield_arena_hits_total %d\n", arena.Hits)
		writeHeader(w, "ramield_arena_misses_total", "counter", "Arena requests that allocated.")
		fmt.Fprintf(w, "ramield_arena_misses_total %d\n", arena.Misses)
		writeHeader(w, "ramield_arena_puts_total", "counter", "Buffers recycled back to arenas.")
		fmt.Fprintf(w, "ramield_arena_puts_total %d\n", arena.Puts)
		writeHeader(w, "ramield_arena_alloc_bytes_total", "counter", "Bytes allocated by arena misses.")
		fmt.Fprintf(w, "ramield_arena_alloc_bytes_total %d\n", arena.AllocBytes)
		writeHeader(w, "ramield_arena_in_use_bytes", "gauge", "Arena bytes handed out and not yet recycled.")
		fmt.Fprintf(w, "ramield_arena_in_use_bytes %d\n", arena.InUseBytes)
		writeHeader(w, "ramield_arena_peak_bytes", "gauge", "Peak arena bytes in use.")
		fmt.Fprintf(w, "ramield_arena_peak_bytes %d\n", arena.PeakBytes)
		writeHeader(w, "ramield_arena_held_bytes", "gauge", "Arena bytes parked on free lists.")
		fmt.Fprintf(w, "ramield_arena_held_bytes %d\n", arena.HeldBytes)
	}

	// Per-model counters, cause-labeled errors, and stage histograms,
	// snapshotted once per model. Sorted model order keeps the exposition
	// diffable.
	s.mu.Lock()
	names := make([]string, 0, len(s.stats))
	snaps := make(map[string]ModelStatsSnapshot, len(s.stats))
	for name, st := range s.stats {
		names = append(names, name)
		snaps[name] = st.Snapshot()
	}
	s.mu.Unlock()
	sort.Strings(names)

	writeModelCounter(w, "ramield_requests_total", "counter", "Inference requests routed to the model.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Requests })
	writeModelCounter(w, "ramield_batched_requests_total", "counter", "Requests served inside a coalesced batch of size > 1.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Batched })
	writeModelCounter(w, "ramield_batch_flushes_total", "counter", "Micro-batch flushes executed.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.Flushes })
	writeModelCounter(w, "ramield_batch_flushed_samples_total", "counter", "Requests carried by all flushes.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.FlushedSamples })
	writeModelCounter(w, "ramield_batch_max_seen", "gauge", "Largest coalesced batch executed.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.MaxBatchSeen })
	writeModelCounter(w, "ramield_batcher_queue_depth", "gauge", "Requests waiting in the micro-batcher window.",
		names, snaps, func(m ModelStatsSnapshot) int64 { return m.QueueDepth })

	writeHeader(w, "ramield_errors_total", "counter", "Failed requests by cause. Canceled clients carry their own label but are excluded from error-rate SLOs by convention.")
	for _, name := range names {
		snap := snaps[name]
		causes := make([]string, 0, len(snap.ErrorsByCause))
		for cause := range snap.ErrorsByCause {
			causes = append(causes, cause)
		}
		sort.Strings(causes)
		for _, cause := range causes {
			fmt.Fprintf(w, "ramield_errors_total{model=%s,cause=%s} %d\n",
				quoteLabel(name), quoteLabel(cause), snap.ErrorsByCause[cause])
		}
	}

	writeHeader(w, "ramield_stage_duration_seconds", "histogram", "Request latency by lifecycle stage (batch_assembly, queue_wait, execute, e2e).")
	for _, name := range names {
		stages := snaps[name].Stages
		for _, stage := range obs.Stages() {
			snap, ok := stages[stage.String()]
			if !ok || snap.Count == 0 {
				continue
			}
			writeHistogram(w, "ramield_stage_duration_seconds",
				fmt.Sprintf("model=%s,stage=%s", quoteLabel(name), quoteLabel(stage.String())), snap)
		}
	}

	// Per-op execution totals, merged across each model's batch variants.
	ops := s.opTotals()
	opModels := make([]string, 0, len(ops))
	for name := range ops {
		opModels = append(opModels, name)
	}
	sort.Strings(opModels)
	writeHeader(w, "ramield_op_invocations_total", "counter", "Kernel invocations by operator type.")
	for _, name := range opModels {
		for _, t := range ops[name] {
			fmt.Fprintf(w, "ramield_op_invocations_total{model=%s,op=%s} %d\n",
				quoteLabel(name), quoteLabel(t.Op), t.Count)
		}
	}
	writeHeader(w, "ramield_op_seconds_total", "counter", "Cumulative kernel wall time by operator type.")
	for _, name := range opModels {
		for _, t := range ops[name] {
			fmt.Fprintf(w, "ramield_op_seconds_total{model=%s,op=%s} %s\n",
				quoteLabel(name), quoteLabel(t.Op), fmtFloat(float64(t.TotalNs)/1e9))
		}
	}
}

// writeHistogram renders one histogram series in the Prometheus histogram
// convention: cumulative bucket counts keyed by inclusive upper bound `le`
// in seconds, closed by +Inf, plus _sum and _count. The obs snapshot's
// buckets are non-cumulative, non-empty and sorted ascending, so one pass
// accumulates.
func writeHistogram(w *bufio.Writer, family, labels string, snap obs.HistogramSnapshot) {
	cum := int64(0)
	for _, b := range snap.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", family, labels, fmtFloat(float64(b.UpperNs)/1e9), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", family, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", family, labels, fmtFloat(float64(snap.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, snap.Count)
}

// writeModelCounter renders one per-model single-value family.
func writeModelCounter(w *bufio.Writer, family, kind, help string, names []string, snaps map[string]ModelStatsSnapshot, get func(ModelStatsSnapshot) int64) {
	writeHeader(w, family, kind, help)
	for _, name := range names {
		fmt.Fprintf(w, "%s{model=%s} %d\n", family, quoteLabel(name), get(snaps[name]))
	}
}

func writeHeader(w *bufio.Writer, family, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, kind)
}

// quoteLabel escapes a label value per the exposition format (backslash,
// double quote, newline) and wraps it in quotes.
func quoteLabel(v string) string {
	v = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
	return `"` + v + `"`
}

// fmtFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for typical magnitudes.
func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
