package serve

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
)

// classifyMem buckets a soak completion for the load report.
func classifyMem(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrMemoryPressure):
		return "shed_memory"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// soakServer builds a governed server whose admission forecast allows at
// most `slots` concurrent requests: budget = slots × estimate. Open-loop
// overload then has to shed with cause "memory" rather than queue without
// bound — the zero-OOM property the memory governor exists for.
func soakServer(tb testing.TB, slots int) *Server {
	tb.Helper()
	const est = 64 << 10
	s := New(Config{Workers: 2, MaxBatch: 4, MemBudgetBytes: int64(slots) * est, Deadline: 5 * time.Second})
	s.RegisterGraph("tiny", tinyModel())
	s.MarkReady()
	s.gov.setEstimate("tiny", est)
	return s
}

// runMemSoak drives the open-loop generator and samples heap growth while
// it runs. Returns the load report and the peak sampled HeapAlloc delta.
func runMemSoak(s *Server, rate float64, duration time.Duration) (*bench.LoadReport, uint64) {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Uint64
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > base {
					d := m.HeapAlloc - base
					for p := peak.Load(); d > p && !peak.CompareAndSwap(p, d); p = peak.Load() {
					}
				}
			}
		}
	}()
	gen := &bench.LoadGen{
		Rate:     rate,
		Duration: duration,
		Timeout:  time.Second,
		Do: func(ctx context.Context, i int) error {
			_, _, err := s.Infer(ctx, "tiny", tinyFeeds(float32(i)), false)
			return err
		},
		Classify: classifyMem,
	}
	report := gen.Run(context.Background())
	close(stop)
	return report, peak.Load()
}

// TestMemorySoakShedsInsteadOfQueueing: under sustained overload a
// governed server answers every arrival — ok or an explicit memory shed —
// and its books balance afterwards (no reservation leak, arena at zero).
func TestMemorySoakShedsInsteadOfQueueing(t *testing.T) {
	s := soakServer(t, 3)
	defer s.Close(context.Background())
	report, _ := runMemSoak(s, 1500, 200*time.Millisecond)

	if report.Completed() != report.Offered {
		t.Fatalf("completed %d of %d offered — lost arrivals", report.Completed(), report.Offered)
	}
	if n := report.Class("error").Count; n != 0 {
		t.Fatalf("%d requests failed outside the shed/timeout taxonomy", n)
	}
	if report.Class("ok").Count == 0 {
		t.Error("soak completed zero requests")
	}
	if report.Class("shed_memory").Count == 0 {
		t.Error("overload at 3 admission slots produced zero memory sheds")
	}
	snap := s.MemoryStats()
	if snap.ReservedBytes != 0 {
		t.Errorf("ReservedBytes = %d after drain, want 0 (admission reservation leak)", snap.ReservedBytes)
	}
	if snap.Sheds != report.Class("shed_memory").Count {
		t.Errorf("governor counted %d sheds, clients saw %d", snap.Sheds, report.Class("shed_memory").Count)
	}
	if arena, ok := s.ArenaStats(); ok && arena.InUseBytes != 0 {
		t.Errorf("arena InUseBytes = %d after soak, want 0", arena.InUseBytes)
	}
}

// BenchmarkMemorySoak is the CI memory-soak: open-loop overload against a
// deliberately small budget. The numbers that matter are shed_memory > 0
// (admission doing its job), errors == 0, and a bounded heap_peak_mb —
// the "never OOMs" story in metrics.
func BenchmarkMemorySoak(b *testing.B) {
	const (
		rate     = 2000
		duration = 300 * time.Millisecond
	)
	for iter := 0; iter < b.N; iter++ {
		s := soakServer(b, 3)
		report, peak := runMemSoak(s, rate, duration)
		if err := s.Close(context.Background()); err != nil {
			b.Fatal(err)
		}
		if n := report.Class("error").Count; n != 0 {
			b.Fatalf("%d unexpected errors during soak", n)
		}
		if iter == b.N-1 {
			ok := report.Class("ok")
			b.ReportMetric(float64(report.Offered), "offered")
			b.ReportMetric(float64(ok.Count), "ok")
			b.ReportMetric(float64(ok.Latency.Snapshot().P99Ns)/1e6, "p99_ok_ms")
			b.ReportMetric(float64(report.Class("shed_memory").Count), "shed_memory")
			b.ReportMetric(float64(report.Class("timeout").Count), "timeout")
			b.ReportMetric(float64(peak)/(1<<20), "heap_peak_mb")
		}
	}
}
