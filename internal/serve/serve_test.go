package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// tinyModel builds a four-node graph with two parallel branches, the
// smallest topology that exercises cross-lane messaging:
// x -> Relu -> {Sigmoid, Neg} -> Add -> out.
func tinyModel() *ramiel.Graph {
	g := graph.New("tiny")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("r", "Relu", []string{"x"}, []string{"vr"}, nil)
	g.AddNode("s", "Sigmoid", []string{"vr"}, []string{"vs"}, nil)
	g.AddNode("n", "Neg", []string{"vr"}, []string{"vn"}, nil)
	g.AddNode("a", "Add", []string{"vs", "vn"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

func tinyFeeds(base float32) ramiel.Env {
	return ramiel.Env{"x": ramiel.NewTensor(ramiel.NewShape(4),
		[]float32{base, base + 1, base + 2, base + 3})}
}

func TestRegistryCompileOnceUnderContention(t *testing.T) {
	reg := NewRegistry(ramiel.Options{}, false)
	var builds atomic.Int64
	g := tinyModel()
	reg.Register("tiny", func() (*ramiel.Graph, error) {
		builds.Add(1)
		return g, nil
	})

	const waiters = 32
	var wg sync.WaitGroup
	progs := make([]*ramiel.Program, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := reg.Program("tiny", 1)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("graph built %d times, want 1", n)
	}
	st := reg.Stats()
	if st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (singleflight dedup)", st.Compiles)
	}
	if st.CacheMisses != 1 || st.CacheHits != waiters-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", st.CacheHits, st.CacheMisses, waiters-1)
	}
	for i := 1; i < waiters; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("waiter %d got a different program instance", i)
		}
	}
}

func TestRegistryBatchVariants(t *testing.T) {
	reg := NewRegistry(ramiel.Options{}, false)
	reg.RegisterGraph("tiny", tinyModel())
	p1, err := reg.Program("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := reg.Program("tiny", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("batch-4 program is the batch-1 program")
	}
	if got := len(p4.Inputs()); got != 4 {
		t.Errorf("batch-4 program has %d inputs, want 4 sample replicas", got)
	}
	if got := reg.CachedBatches("tiny"); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("CachedBatches = %v, want [1 4]", got)
	}
	if _, err := reg.Program("nope", 1); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unknown model error = %v, want ErrNotRegistered", err)
	}
}

func TestServerInferMatchesSequential(t *testing.T) {
	s := New(Config{Workers: 4, MaxBatch: 1})
	defer s.Close(context.Background())
	g := tinyModel()
	s.RegisterGraph("tiny", g)

	feeds := tinyFeeds(-1)
	want, err := ramiel.RunSequentialGraph(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	outs, meta, err := s.Infer(context.Background(), "tiny", feeds, false)
	if err != nil {
		t.Fatal(err)
	}
	if meta.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1", meta.BatchSize)
	}
	if !outs["out"].Equal(want["out"]) {
		t.Error("served output differs from sequential reference")
	}
}

func TestMicroBatchCoalescesThroughHypercluster(t *testing.T) {
	const batch = 4
	// FlushTimeout far beyond the test runtime: only the size trigger can
	// flush, so a full window proves coalescing (not timer luck).
	s := New(Config{Workers: 4, MaxBatch: batch, FlushTimeout: 10 * time.Second})
	defer s.Close(context.Background())
	g := tinyModel()
	s.RegisterGraph("tiny", g)

	var wg sync.WaitGroup
	outs := make([]ramiel.Env, batch)
	metas := make([]InferMeta, batch)
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], metas[i], errs[i] = s.Infer(context.Background(), "tiny", tinyFeeds(float32(i)), false)
		}(i)
	}
	wg.Wait()

	for i := 0; i < batch; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if metas[i].BatchSize != batch {
			t.Errorf("request %d served at batch %d, want %d", i, metas[i].BatchSize, batch)
		}
		want, err := ramiel.RunSequentialGraph(g, tinyFeeds(float32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !outs[i]["out"].Equal(want["out"]) {
			t.Errorf("request %d: batched output differs from its sequential reference", i)
		}
	}
	// The batch must have gone through the hyperclustered batch-4 plan.
	found := false
	for _, b := range s.Registry().CachedBatches("tiny") {
		if b == batch {
			found = true
		}
	}
	if !found {
		t.Errorf("no batch-%d program cached; batch was not routed through a hypercluster", batch)
	}
	st := s.modelStats("tiny").Snapshot()
	if st.Batched != batch {
		t.Errorf("Batched = %d, want %d", st.Batched, batch)
	}
	if st.MaxBatchSeen != batch {
		t.Errorf("MaxBatchSeen = %d, want %d", st.MaxBatchSeen, batch)
	}
}

func TestMicroBatchFlushByTimeout(t *testing.T) {
	const flush = 30 * time.Millisecond
	// A window of 8 never fills: the lone request must be released by the
	// flush timer, falling back to the batch-1 plan.
	s := New(Config{Workers: 2, MaxBatch: 8, FlushTimeout: flush})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	start := time.Now()
	outs, meta, err := s.Infer(context.Background(), "tiny", tinyFeeds(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if outs["out"] == nil {
		t.Fatal("no output")
	}
	if meta.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1 (low-load fallback)", meta.BatchSize)
	}
	if waited := time.Since(start); waited < flush {
		t.Errorf("request returned in %v, before the %v flush timer", waited, flush)
	}
	st := s.modelStats("tiny").Snapshot()
	if st.Flushes != 1 || st.FlushedSamples != 1 {
		t.Errorf("flushes/samples = %d/%d, want 1/1", st.Flushes, st.FlushedSamples)
	}
}

func TestServerConcurrentMixedLoad(t *testing.T) {
	s := New(Config{Workers: 4, MaxBatch: 3, FlushTimeout: time.Millisecond})
	defer s.Close(context.Background())
	g := tinyModel()
	s.RegisterGraph("tiny", g)

	const goroutines, iters = 8, 10
	// Sequential references computed up front: RunSequentialGraph on a
	// shared *Graph is not safe to call concurrently (lazy index build);
	// the concurrent-serving contract covers compiled Plans only.
	want := make([]ramiel.Env, goroutines*iters)
	for k := range want {
		ref, err := ramiel.RunSequentialGraph(g, tinyFeeds(float32(k)))
		if err != nil {
			t.Fatal(err)
		}
		want[k] = ref
	}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				k := i*iters + j
				outs, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(float32(k)), i%2 == 0)
				if err != nil {
					t.Error(err)
					return
				}
				if !outs["out"].Equal(want[k]["out"]) {
					t.Error("output differs from sequential reference")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := s.modelStats("tiny").Snapshot()
	if st.Requests != goroutines*iters {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*iters)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d, want 0", st.Errors)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 2, FlushTimeout: time.Millisecond})
	s.RegisterGraph("tiny", tinyModel())
	if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(0), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(0), false); err == nil {
		t.Error("Infer after Close succeeded")
	}
}

func TestPoolBoundsInFlight(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := p.Do(context.Background(), func(context.Context) (ramiel.Env, error) {
				time.Sleep(2 * time.Millisecond)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak := p.PeakInFlight(); peak > workers {
		t.Errorf("peak in-flight %d exceeds %d workers", peak, workers)
	}
}

func TestPoolHonorsDeadline(t *testing.T) {
	p := NewPool(1, 0)
	defer p.Close(context.Background())
	block := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) (ramiel.Env, error) {
		<-block
		return nil, nil
	})
	time.Sleep(5 * time.Millisecond) // let the blocker occupy the worker
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := p.Do(ctx, func(context.Context) (ramiel.Env, error) { return nil, nil })
	close(block)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// --- HTTP API ---

func newHTTPServer(t *testing.T, cfg Config, zoo ...string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 16}, zoo...); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close(context.Background())
	})
	return s, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*http.Response, InferResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestHTTPInferTwoModelsConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles two zoo models")
	}
	models := []string{"squeezenet", "googlenet"}
	_, ts := newHTTPServer(t, Config{Workers: 4, MaxBatch: 2, FlushTimeout: time.Millisecond}, models...)

	var wg sync.WaitGroup
	for _, model := range models {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(model string, seed uint64) {
				defer wg.Done()
				resp, out := postInfer(t, ts.URL, InferRequest{Model: model, Seed: &seed})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", model, resp.StatusCode)
					return
				}
				if len(out.Outputs) == 0 {
					t.Errorf("%s: no outputs", model)
				}
				if out.BatchSize < 1 {
					t.Errorf("%s: batch size %d", model, out.BatchSize)
				}
			}(model, uint64(i+1))
		}
	}
	wg.Wait()

	// /v1/models reflects both registered models and their cached plans.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != len(models) {
		t.Fatalf("/v1/models lists %d models, want %d", len(list.Models), len(models))
	}
	for _, mi := range list.Models {
		if mi.Stats.Requests == 0 {
			t.Errorf("%s: no requests counted", mi.Name)
		}
		if len(mi.CachedBatches) == 0 {
			t.Errorf("%s: no cached programs after serving", mi.Name)
		}
	}

	// /v1/stats aggregates registry and pool counters.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Registry.Compiles == 0 {
		t.Error("stats report zero compiles")
	}
	if len(stats.Models) != len(models) {
		t.Errorf("stats cover %d models, want %d", len(stats.Models), len(models))
	}
}

func TestHTTPInferExplicitInputs(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1})
	g := tinyModel()
	s.RegisterGraph("tiny", g)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close(context.Background())
	}()

	resp, out := postInfer(t, ts.URL, InferRequest{
		Model:  "tiny",
		Inputs: map[string]TensorJSON{"x": {Shape: []int{4}, Data: []float32{-1, 0, 1, 2}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want, err := ramiel.RunSequentialGraph(g, tinyFeeds(-1))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Outputs["out"]
	for i, v := range want["out"].Data() {
		if got.Data[i] != v {
			t.Fatalf("output[%d] = %v, want %v", i, got.Data[i], v)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	s.RegisterGraph("tiny", tinyModel())
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close(context.Background())
	}()

	seed := uint64(1)
	cases := []struct {
		name string
		req  InferRequest
		code int
	}{
		{"unknown model", InferRequest{Model: "nope", Seed: &seed}, http.StatusNotFound},
		{"missing model", InferRequest{Seed: &seed}, http.StatusBadRequest},
		{"no inputs", InferRequest{Model: "tiny"}, http.StatusBadRequest},
		{"bad shape", InferRequest{Model: "tiny",
			Inputs: map[string]TensorJSON{"x": {Shape: []int{3}, Data: []float32{1, 2}}}},
			http.StatusBadRequest},
		{"wrong input name", InferRequest{Model: "tiny",
			Inputs: map[string]TensorJSON{"y": {Shape: []int{4}, Data: []float32{1, 2, 3, 4}}}},
			http.StatusBadRequest},
		{"declared shape mismatch", InferRequest{Model: "tiny",
			Inputs: map[string]TensorJSON{"x": {Shape: []int{2}, Data: []float32{1, 2}}}},
			http.StatusBadRequest},
		{"extra input", InferRequest{Model: "tiny",
			Inputs: map[string]TensorJSON{
				"x":     {Shape: []int{4}, Data: []float32{1, 2, 3, 4}},
				"bogus": {Shape: []int{1}, Data: []float32{1}},
			}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postInfer(t, ts.URL, tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/infer: status %d, want 405", resp.StatusCode)
	}
}

func TestOptsFingerprintDistinguishesOptions(t *testing.T) {
	a := optsFingerprint(ramiel.Options{})
	b := optsFingerprint(ramiel.Options{Prune: true})
	c := optsFingerprint(ramiel.Options{Prune: true, Clone: true})
	if a == b || b == c || a == c {
		t.Errorf("fingerprints collide: %q %q %q", a, b, c)
	}
}
