package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/obs"
)

func TestInferRecordsStageHistograms(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(float32(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.modelStats("tiny").Snapshot()
	for _, stage := range []obs.Stage{obs.StageQueue, obs.StageExec, obs.StageE2E} {
		h, ok := snap.Stages[stage.String()]
		if !ok {
			t.Fatalf("stage %q missing from snapshot %v", stage, snap.Stages)
		}
		if h.Count != reqs {
			t.Errorf("stage %q count = %d, want %d", stage, h.Count, reqs)
		}
		if h.P50Ns <= 0 && stage == obs.StageE2E {
			t.Errorf("stage %q p50 = %d, want > 0", stage, h.P50Ns)
		}
	}
	// Unbatched path never waits for companions.
	if _, ok := snap.Stages[obs.StageAssembly.String()]; ok {
		t.Error("batch_assembly recorded on the unbatched path")
	}
	// e2e covers queue + exec for every request.
	e2e, exec := snap.Stages["e2e"], snap.Stages["execute"]
	if e2e.SumNs < exec.SumNs {
		t.Errorf("e2e sum %d < exec sum %d", e2e.SumNs, exec.SumNs)
	}
}

func TestInferMetaCarriesStagesAndID(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	_, m1, err := s.Infer(context.Background(), "tiny", tinyFeeds(0), false)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := s.Infer(context.Background(), "tiny", tinyFeeds(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if m1.RequestID == 0 || m2.RequestID != m1.RequestID+1 {
		t.Errorf("request IDs = %d, %d; want consecutive non-zero", m1.RequestID, m2.RequestID)
	}
	if m1.Exec <= 0 {
		t.Errorf("Exec = %v, want > 0", m1.Exec)
	}
	if m1.Latency < m1.Exec {
		t.Errorf("Latency %v < Exec %v", m1.Latency, m1.Exec)
	}
}

func TestBatchedInferRecordsAssembly(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 4, FlushTimeout: 5 * time.Millisecond})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	// A solo request on the batched path waits out the flush window, so the
	// assembly stage must be recorded and roughly the window length.
	if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(0), false); err != nil {
		t.Fatal(err)
	}
	snap := s.modelStats("tiny").Snapshot()
	h, ok := snap.Stages[obs.StageAssembly.String()]
	if !ok {
		t.Fatalf("batch_assembly missing from %v", snap.Stages)
	}
	if h.Count != 1 {
		t.Errorf("assembly count = %d, want 1", h.Count)
	}
	if h.MaxNs < int64(2*time.Millisecond) {
		t.Errorf("assembly max = %v, want >= ~flush window", time.Duration(h.MaxNs))
	}
}

func TestErrorCauseCounters(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	// Validation failure: feed the wrong input name.
	bad := ramiel.Env{"nope": tinyFeeds(0)["x"]}
	if _, _, err := s.Infer(context.Background(), "tiny", bad, false); !errors.Is(err, ramiel.ErrInvalidFeeds) {
		t.Fatalf("bad feeds error = %v, want ErrInvalidFeeds", err)
	}
	// Canceled client: counted under its label, excluded from Errors.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Infer(ctx, "tiny", tinyFeeds(0), false); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled error = %v, want context.Canceled", err)
	}
	snap := s.modelStats("tiny").Snapshot()
	if snap.ErrorsByCause["validation"] != 1 {
		t.Errorf("validation errors = %d, want 1 (%v)", snap.ErrorsByCause["validation"], snap.ErrorsByCause)
	}
	if snap.ErrorsByCause["canceled"] != 1 {
		t.Errorf("canceled errors = %d, want 1 (%v)", snap.ErrorsByCause["canceled"], snap.ErrorsByCause)
	}
	if snap.Errors != 1 {
		t.Errorf("Errors = %d, want 1 (canceled excluded)", snap.Errors)
	}
}

func TestCauseOfClassification(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorCause
	}{
		{nil, CauseNone},
		{context.Canceled, CauseCanceled},
		{context.DeadlineExceeded, CauseDeadline},
		{ramiel.ErrInvalidFeeds, CauseValidation},
		{ErrCompile, CauseCompile},
		{ErrShutdown, CauseShutdown},
		{ErrBatcherClosed, CauseShutdown},
		{errors.New("kernel exploded"), CauseExecution},
	}
	for _, tc := range cases {
		if got := causeOf(tc.err); got != tc.want {
			t.Errorf("causeOf(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	if CauseValidation.String() != "validation" || CauseNone.String() != "" {
		t.Error("cause labels changed")
	}
}

func TestTraceRingCapturesRequests(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1, SlowThreshold: time.Nanosecond})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	for i := 0; i < 3; i++ {
		if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(float32(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	spans := s.Traces(0)
	if len(spans) != 3 {
		t.Fatalf("Traces = %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Model != "tiny" || sp.TotalNs <= 0 || sp.Cause != "" {
			t.Errorf("span %d = %+v", i, sp)
		}
		if i > 0 && spans[i-1].ID <= sp.ID {
			t.Errorf("spans not newest-first: %d then %d", spans[i-1].ID, sp.ID)
		}
	}
	// Every request beats the 1ns slow threshold, so the slow ring mirrors.
	if slow := s.SlowTraces(0); len(slow) != 3 {
		t.Errorf("SlowTraces = %d spans, want 3", len(slow))
	}
	// Failed requests carry cause + error text.
	bad := ramiel.Env{"nope": tinyFeeds(0)["x"]}
	_, _, _ = s.Infer(context.Background(), "tiny", bad, false)
	spans = s.Traces(1)
	if len(spans) != 1 || spans[0].Cause != "validation" || spans[0].Error == "" {
		t.Errorf("failed span = %+v, want cause=validation with error text", spans)
	}
}

func TestNoObsDisablesTelemetry(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1, NoObs: true})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(0), false); err != nil {
		t.Fatal(err)
	}
	if s.Traces(0) != nil || s.SlowTraces(0) != nil {
		t.Error("traces recorded with telemetry off")
	}
	snap := s.modelStats("tiny").Snapshot()
	if snap.Stages != nil {
		t.Errorf("stage histograms recorded with telemetry off: %v", snap.Stages)
	}
	// Counters stay on regardless.
	if snap.Requests != 1 {
		t.Errorf("Requests = %d, want 1", snap.Requests)
	}
}

func TestReadyz(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1, MaxBatch: 1}, "squeezenet")

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before Warm = %d, want 503", resp.StatusCode)
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after Warm = %d, want 200", resp.StatusCode)
	}
	// /healthz is liveness and was 200 all along.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/trace?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace = %d", resp.StatusCode)
	}
	var body struct {
		Slow  bool       `json:"slow"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Slow || len(body.Spans) != 1 {
		t.Fatalf("trace body = %+v, want 1 recent span", body)
	}
	if sp := body.Spans[0]; sp.Model != "squeezenet" || sp.TotalNs <= 0 || sp.ExecNs <= 0 {
		t.Errorf("span = %+v", sp)
	}

	// Bad n is a 400; the slow ring is empty (threshold defaults to 100ms).
	resp, err = http.Get(ts.URL + "/v1/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n = %d, want 400", resp.StatusCode)
	}
}

func TestInferResponseCarriesRequestID(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1, MaxBatch: 1}, "squeezenet")
	body := bytes.NewBufferString(`{"model":"squeezenet","seed":1,"no_batch":true}`)
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("missing X-Request-ID header")
	}
	var ir InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.RequestID == 0 {
		t.Error("response request_id is zero")
	}
	if ir.ExecUs <= 0 || ir.LatencyUs < ir.ExecUs {
		t.Errorf("stage fields: latency %dus, exec %dus", ir.LatencyUs, ir.ExecUs)
	}
}

func TestErrorResponseCarriesCause(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1, MaxBatch: 1}, "squeezenet")
	// Unknown model via the API: 404, no cause needed. Infer-layer cause
	// shows on a dispatched failure; force validation via raw Infer on a
	// mis-shaped feed is covered elsewhere, here check a 404 decodes.
	body := bytes.NewBufferString(`{"model":"nope","seed":1}`)
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", resp.StatusCode)
	}

	// A mis-shaped feed rejected by the HTTP signature check is a 400
	// whose body carries cause=validation, and it counts on the model's
	// errors_by_cause exactly like a feed failure inside Session.Run.
	body = bytes.NewBufferString(`{"model":"squeezenet","inputs":{"input":{"shape":[1,2],"data":[1,2]}}}`)
	resp2, err := http.Post(ts.URL+"/v1/infer", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mis-shaped feed = %d, want 400", resp2.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp2.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "validation" {
		t.Errorf("error cause = %q, want %q (error: %s)", er.Cause, "validation", er.Error)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		"ramield_ready 1",
		`ramield_requests_total{model="squeezenet"} 3`,
		`ramield_stage_duration_seconds_bucket{model="squeezenet",stage="e2e",le="+Inf"} 3`,
		`ramield_stage_duration_seconds_count{model="squeezenet",stage="e2e"} 3`,
		`ramield_stage_duration_seconds_count{model="squeezenet",stage="execute"} 3`,
		`ramield_op_invocations_total{model="squeezenet",op="Conv"}`,
		`ramield_op_seconds_total{model="squeezenet",op="Conv"}`,
		"ramield_compiles_total",
		"ramield_pool_workers 2",
		"# TYPE ramield_stage_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The histogram's cumulative bucket counts must be non-decreasing and
	// end at _count.
	var last int64 = -1
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `ramield_stage_duration_seconds_bucket{model="squeezenet",stage="e2e"`) {
			continue
		}
		var v int64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts decreased: %d after %d in %q", v, last, line)
		}
		last = v
	}
	if last != 3 {
		t.Errorf("final cumulative bucket = %d, want 3", last)
	}
}

// fmtSscanLast parses the final whitespace-separated field of a metrics
// line as an int64.
func fmtSscanLast(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseInt64(line[i+1:])
	*v = n
	return 1, err
}

func parseInt64(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errors.New("not a number: " + s)
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

func TestStatsIncludesOpsAndStages(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	ops, ok := body.Ops["squeezenet"]
	if !ok || len(ops) == 0 {
		t.Fatalf("stats ops = %+v, want squeezenet table", body.Ops)
	}
	if ops[0].Op == "" || ops[0].Count <= 0 || ops[0].TotalNs <= 0 {
		t.Errorf("top op = %+v", ops[0])
	}
	// Sorted by cumulative time descending.
	for i := 1; i < len(ops); i++ {
		if ops[i].TotalNs > ops[i-1].TotalNs {
			t.Errorf("ops not sorted: %d after %d", ops[i].TotalNs, ops[i-1].TotalNs)
		}
	}
	m := body.Models["squeezenet"]
	if m.Stages["e2e"].Count != 1 {
		t.Errorf("stats stages = %+v, want e2e count 1", m.Stages)
	}
}

// TestInferZeroExtraAllocs pins the telemetry overhead of the serving hot
// path: the instrumented path may cost at most 2 allocations per request
// more than with telemetry off (the acceptance budget; measured delta is 0).
func TestInferZeroExtraAllocs(t *testing.T) {
	run := func(noObs bool) float64 {
		s := New(Config{Workers: 1, MaxBatch: 1, NoObs: noObs})
		defer s.Close(context.Background())
		s.RegisterGraph("tiny", tinyModel())
		feeds := tinyFeeds(1)
		ctx := context.Background()
		// Warm: compile, session pool, arena steady state.
		for i := 0; i < 8; i++ {
			if _, _, err := s.Infer(ctx, "tiny", feeds, true); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, _, err := s.Infer(ctx, "tiny", feeds, true); err != nil {
				t.Fatal(err)
			}
		})
	}
	withObs := run(false)
	without := run(true)
	if delta := withObs - without; delta > 2 {
		t.Errorf("telemetry costs %.1f allocs/request (on %.1f, off %.1f), budget 2",
			delta, withObs, without)
	}
}

// TestServeObsConcurrentHammer drives many concurrent inferences while
// readers poll stats, traces, and metrics — the serve-layer race proof.
func TestServeObsConcurrentHammer(t *testing.T) {
	s := New(Config{Workers: 4, MaxBatch: 4, FlushTimeout: 500 * time.Microsecond, SlowThreshold: time.Nanosecond})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.modelStats("tiny").Snapshot()
				_ = s.Traces(8)
				_ = s.SlowTraces(8)
				var buf bytes.Buffer
				w := bufio.NewWriter(&buf)
				s.writeMetrics(w)
				w.Flush()
			}
		}
	}()
	var wg errgroup
	const goroutines = 8
	const perG = 25
	for g := 0; g < goroutines; g++ {
		wg.Go(func() error {
			ctx := context.Background()
			for i := 0; i < perG; i++ {
				if _, _, err := s.Infer(ctx, "tiny", tinyFeeds(float32(i)), false); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := wg.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	snap := s.modelStats("tiny").Snapshot()
	if want := int64(goroutines * perG); snap.Requests != want {
		t.Errorf("Requests = %d, want %d", snap.Requests, want)
	}
	if snap.Stages["e2e"].Count != int64(goroutines*perG) {
		t.Errorf("e2e count = %d, want %d", snap.Stages["e2e"].Count, goroutines*perG)
	}
}

// errgroup is a minimal golang.org/x/sync/errgroup stand-in (no external
// deps): first error wins.
type errgroup struct {
	wg   chan struct{}
	errc chan error
	n    int
}

func (g *errgroup) Go(fn func() error) {
	if g.errc == nil {
		g.errc = make(chan error, 64)
	}
	g.n++
	go func() { g.errc <- fn() }()
}

func (g *errgroup) Wait() error {
	var first error
	for i := 0; i < g.n; i++ {
		if err := <-g.errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
