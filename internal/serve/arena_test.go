package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	ramiel "repro"
)

var errMismatch = errors.New("served output differs from reference")

// TestArenaServingMatchesSequential: arena-backed serving (the default)
// returns the same outputs as the sequential reference, and the shared
// stats record real traffic.
func TestArenaServingMatchesSequential(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1})
	defer s.Close(context.Background())
	g := tinyModel()
	s.RegisterGraph("tiny", g)

	feeds := tinyFeeds(-1)
	want, err := ramiel.RunSequentialGraph(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		outs, _, err := s.Infer(context.Background(), "tiny", feeds, false)
		if err != nil {
			t.Fatal(err)
		}
		if !outs["out"].Equal(want["out"]) {
			t.Fatalf("request %d: arena-served output differs from reference", i)
		}
	}
	st, ok := s.ArenaStats()
	if !ok {
		t.Fatal("arena should be enabled by default")
	}
	if st.Gets == 0 || st.Puts == 0 {
		t.Fatalf("arena saw no traffic: %+v", st)
	}
}

// TestArenaOutputsSurviveSubsequentRequests: a client must be able to hold
// its response tensors while later requests reuse the same worker arena.
func TestArenaOutputsSurviveSubsequentRequests(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())

	feeds := tinyFeeds(-1)
	first, _, err := s.Infer(context.Background(), "tiny", feeds, false)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), first["out"].Data()...)
	for i := 0; i < 20; i++ {
		if _, _, err := s.Infer(context.Background(), "tiny", feeds, false); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range first["out"].Data() {
		if v != snapshot[i] {
			t.Fatalf("held response mutated at %d: %v -> %v (output recycled into arena?)",
				i, snapshot[i], v)
		}
	}
}

// TestNoArenaConfig: the opt-out path serves correctly and reports the
// arena as disabled.
func TestNoArenaConfig(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1, NoArena: true})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	if _, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(-1), false); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ArenaStats(); ok {
		t.Fatal("NoArena server still reports arena stats")
	}
}

// TestStatsEndpointArenaAndRuntime: /v1/stats carries the arena and Go
// runtime memory blocks the monitoring story depends on.
func TestStatsEndpointArenaAndRuntime(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	seed := uint64(1)
	if resp, _ := postInfer(t, ts.URL, InferRequest{Model: "squeezenet", Seed: &seed}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Arena struct {
			Enabled bool  `json:"enabled"`
			Gets    int64 `json:"gets"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Puts    int64 `json:"puts"`
			Peak    int64 `json:"peak_bytes"`
		} `json:"arena"`
		Runtime struct {
			HeapAlloc  uint64 `json:"heap_alloc_bytes"`
			TotalAlloc uint64 `json:"total_alloc_bytes"`
			NumGC      uint32 `json:"num_gc"`
			Goroutines int    `json:"goroutines"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Arena.Enabled {
		t.Fatal("stats report arena disabled on a default server")
	}
	if body.Arena.Gets == 0 || body.Arena.Peak == 0 {
		t.Fatalf("arena counters empty after an inference: %+v", body.Arena)
	}
	if body.Runtime.HeapAlloc == 0 || body.Runtime.TotalAlloc == 0 || body.Runtime.Goroutines == 0 {
		t.Fatalf("runtime memory block empty: %+v", body.Runtime)
	}
}

// TestArenaBatchedServing: micro-batched (hyperclustered) runs ride worker
// arenas too and stay correct under concurrent load.
func TestArenaBatchedServing(t *testing.T) {
	s := New(Config{Workers: 4, MaxBatch: 4})
	defer s.Close(context.Background())
	g := tinyModel()
	s.RegisterGraph("tiny", g)
	feeds := tinyFeeds(-1)
	want, err := ramiel.RunSequentialGraph(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			for i := 0; i < 10; i++ {
				outs, _, err := s.Infer(context.Background(), "tiny", feeds, false)
				if err != nil {
					errc <- err
					return
				}
				if !outs["out"].Equal(want["out"]) {
					errc <- errMismatch
					return
				}
			}
			errc <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
