package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// ChaosPanic is a custom op registered through the ops extension point:
// identity on non-negative input, panic when the first element is
// negative. It is the trigger behind the panic-isolation tests — a kernel
// bug on demand, selected per request by the feed data.
var chaosPanicOnce sync.Once

func registerChaosPanic(t testing.TB) {
	t.Helper()
	chaosPanicOnce.Do(func() {
		err := ops.Register("ChaosPanic", func(in []*tensor.Tensor, attrs ops.Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
			if in[0].Data()[0] < 0 {
				panic("chaos: negative trigger")
			}
			out := tensor.New(in[0].Shape(), tensor.AllocUninit(a, in[0].Numel()))
			copy(out.Data(), in[0].Data())
			return []*tensor.Tensor{out}, nil
		})
		if err != nil {
			panic(err)
		}
	})
}

// panickyModel is x -> ChaosPanic -> out.
func panickyModel() *ramiel.Graph {
	g := graph.New("panicky")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("p", "ChaosPanic", []string{"x"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

func TestPanicIsolatedToRequest(t *testing.T) {
	registerChaosPanic(t)
	s := New(Config{Workers: 2, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("panicky", panickyModel())
	s.MarkReady()

	// The triggering request fails with the panic cause...
	_, _, err := s.Infer(context.Background(), "panicky", tinyFeeds(-9), false)
	if err == nil {
		t.Fatal("panicking kernel reported success")
	}
	if got := causeOf(err); got != CausePanic {
		t.Fatalf("causeOf = %v (%v), want panic", got, err)
	}
	if !isPanic(err) {
		t.Fatalf("isPanic(%v) = false", err)
	}
	if got := s.Panics(); got != 1 {
		t.Errorf("Panics() = %d, want 1", got)
	}

	// ...while the pool keeps its workers and keeps serving. 2x the worker
	// count of concurrent requests proves no worker goroutine died with the
	// panic.
	if got := s.Workers(); got != 2 {
		t.Fatalf("worker count = %d after panic, want 2", got)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Infer(context.Background(), "panicky", tinyFeeds(float32(i)), false)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d after the panic failed: %v", i, err)
		}
	}
	if got := s.modelStats("panicky").Snapshot().ErrorsByCause[CausePanic.String()]; got != 1 {
		t.Errorf("errors_by_cause[panic] = %d, want 1", got)
	}
}

// TestPanicInBatchDoesNotWedge drives the batched path: a panic while a
// batch executes must answer every member of the batch (with the panic
// error) instead of leaving peers blocked forever, and the batcher must
// survive for the next flush.
func TestPanicInBatchDoesNotWedge(t *testing.T) {
	registerChaosPanic(t)
	s := New(Config{Workers: 2, MaxBatch: 4, FlushTimeout: time.Millisecond})
	defer s.Close(context.Background())
	s.RegisterGraph("panicky", panickyModel())
	s.MarkReady()

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := float32(i)
			if i == 0 {
				base = -5 // one poisoned member per wave
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _, errs[i] = s.Infer(ctx, "panicky", tinyFeeds(base), false)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch with a panicking member wedged")
	}
	if errs[0] == nil || causeOf(errs[0]) != CausePanic {
		t.Errorf("poisoned member got err %v, want cause panic", errs[0])
	}
	for i := 1; i < n; i++ {
		if errs[i] != nil && causeOf(errs[i]) != CausePanic {
			t.Errorf("batch peer %d got non-panic error %v", i, errs[i])
		}
	}

	// The batcher is still alive: a clean wave succeeds end to end.
	if _, _, err := s.Infer(context.Background(), "panicky", tinyFeeds(1), false); err != nil {
		t.Fatalf("request after poisoned batch failed: %v", err)
	}
}

func TestPanicHTTPSurface(t *testing.T) {
	registerChaosPanic(t)
	s := New(Config{Workers: 2, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("panicky", panickyModel())
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"panicky","inputs":{"x":{"shape":[4],"data":[-1,0,1,2]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "panic" {
		t.Errorf("error cause = %q, want panic", er.Cause)
	}

	// The daemon shrugs it off: next request is a 200, and the stats
	// surface counts the panic.
	resp2, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"panicky","inputs":{"x":{"shape":[4],"data":[1,2,3,4]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after panic = %d, want 200", resp2.StatusCode)
	}

	resp3, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st struct {
		Panics int64 `json:"panics_total"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Panics < 1 {
		t.Errorf("stats panics_total = %d, want >= 1", st.Panics)
	}

	var buf bytes.Buffer
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	buf.ReadFrom(rec.Result().Body)
	if !strings.Contains(buf.String(), "ramield_panics_total") {
		t.Error("/metrics does not expose ramield_panics_total")
	}
}
