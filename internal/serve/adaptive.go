package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// batchAdapter picks the micro-batcher's flush window per model from live
// measurements, continuous-batching style, replacing the static
// FlushTimeout policy when Config.AdaptiveBatch is set:
//
//   - The *budget* — the longest a lone request should ever wait for
//     companions — tracks the model's live execution time (half the p50
//     from the stage histograms): batching only pays while the wait it
//     adds stays small against the work it amortizes. With no samples yet
//     (cold model, or telemetry off) the budget falls back to the
//     configured static window.
//   - The *fill estimate* — how long until a full window of maxBatch
//     requests accumulates — comes from an EWMA of request inter-arrival
//     gaps. When arrivals are sparse (fill > budget: the companions are
//     not coming) the window collapses to the floor and a lone request
//     flushes almost immediately, instead of idling out the full static
//     timeout. When arrivals are dense the window is exactly the time the
//     window needs to fill, growing batches toward the best-throughput
//     hypercluster variant under load.
//
// All state is atomic; note and window are called on the submit path and
// allocate nothing.
type batchAdapter struct {
	exec      *obs.Histogram // live exec-stage histogram (nil-safe: Quantile = 0)
	minWindow time.Duration  // floor (Config.MinFlush)
	maxWindow time.Duration  // cap = the configured static window
	maxBatch  int

	lastNs atomic.Int64 // UnixNano of the previous arrival
	gapNs  atomic.Int64 // EWMA of inter-arrival gaps (1/8 gain)
}

func newBatchAdapter(exec *obs.Histogram, minWindow, maxWindow time.Duration, maxBatch int) *batchAdapter {
	return &batchAdapter{exec: exec, minWindow: minWindow, maxWindow: maxWindow, maxBatch: maxBatch}
}

// note feeds one arrival into the inter-arrival EWMA. Nil-safe.
func (a *batchAdapter) note(now time.Time) {
	if a == nil {
		return
	}
	n := now.UnixNano()
	last := a.lastNs.Swap(n)
	if last == 0 {
		return
	}
	gap := n - last
	if gap < 0 {
		gap = 0
	}
	// Clamp idle periods so the first arrival after a lull doesn't poison
	// the rate estimate for many requests.
	if gap > int64(time.Second) {
		gap = int64(time.Second)
	}
	old := a.gapNs.Load()
	if old == 0 {
		a.gapNs.Store(gap)
		return
	}
	// Racy read-modify-write is fine: this is a smoothed control signal,
	// and a lost update under contention only means one gap sample weighs
	// slightly differently.
	a.gapNs.Store(old - old/8 + gap/8)
}

// window returns the flush window to arm for a window currently holding
// `pending` requests. Nil receiver returns the static fallback of 0 (the
// caller uses its configured timeout).
func (a *batchAdapter) window(pending int) time.Duration {
	budget := a.maxWindow
	if p50 := time.Duration(a.exec.Quantile(0.50)); p50 > 0 {
		budget = clampDur(p50/2, a.minWindow, a.maxWindow)
	}
	gap := time.Duration(a.gapNs.Load())
	if gap <= 0 {
		// No arrival-rate estimate yet: wait the full budget, like the
		// static batcher would.
		return budget
	}
	remaining := a.maxBatch - pending
	if remaining < 1 {
		return a.minWindow
	}
	fill := gap * time.Duration(remaining)
	if fill > budget {
		// Arrivals are too sparse to fill the window within budget —
		// flush (nearly) immediately rather than waiting for companions
		// that are not coming.
		return a.minWindow
	}
	return clampDur(fill, a.minWindow, budget)
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
