package serve

import "sync/atomic"

// ModelStats counts per-model serving activity. All fields are atomics so
// the hot path never takes a lock; Snapshot gives a consistent-enough view
// for reporting.
type ModelStats struct {
	// Requests is every Infer call routed to the model.
	Requests atomic.Int64
	// Errors counts failed requests (compile, execution or deadline).
	Errors atomic.Int64
	// Batched counts requests that were served inside a coalesced
	// micro-batch of size > 1 (i.e. through a hyperclustered plan).
	Batched atomic.Int64
	// Flushes counts micro-batch flushes; FlushedSamples their total size,
	// so FlushedSamples/Flushes is the mean realized batch size.
	Flushes        atomic.Int64
	FlushedSamples atomic.Int64
	// MaxBatchSeen is the largest coalesced batch executed.
	MaxBatchSeen atomic.Int64
	// QueueDepth is the current number of requests waiting in the
	// micro-batcher; PeakQueueDepth its high-water mark.
	QueueDepth     atomic.Int64
	PeakQueueDepth atomic.Int64
	// LatencyMicros accumulates end-to-end request latency, so
	// LatencyMicros/Requests is the mean service latency.
	LatencyMicros atomic.Int64
}

// noteQueued bumps the batcher queue gauge and its high-water mark.
func (m *ModelStats) noteQueued() {
	d := m.QueueDepth.Add(1)
	for {
		old := m.PeakQueueDepth.Load()
		if d <= old || m.PeakQueueDepth.CompareAndSwap(old, d) {
			return
		}
	}
}

// noteBatch records one executed micro-batch of size n.
func (m *ModelStats) noteBatch(n int) {
	m.Flushes.Add(1)
	m.FlushedSamples.Add(int64(n))
	if n > 1 {
		m.Batched.Add(int64(n))
	}
	for {
		old := m.MaxBatchSeen.Load()
		if int64(n) <= old || m.MaxBatchSeen.CompareAndSwap(old, int64(n)) {
			return
		}
	}
}

// ModelStatsSnapshot is the JSON view of ModelStats.
type ModelStatsSnapshot struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	Batched        int64 `json:"batched"`
	Flushes        int64 `json:"flushes"`
	FlushedSamples int64 `json:"flushed_samples"`
	MaxBatchSeen   int64 `json:"max_batch_seen"`
	QueueDepth     int64 `json:"queue_depth"`
	PeakQueueDepth int64 `json:"peak_queue_depth"`
	LatencyMicros  int64 `json:"latency_micros"`
}

// Snapshot reads the counters.
func (m *ModelStats) Snapshot() ModelStatsSnapshot {
	return ModelStatsSnapshot{
		Requests:       m.Requests.Load(),
		Errors:         m.Errors.Load(),
		Batched:        m.Batched.Load(),
		Flushes:        m.Flushes.Load(),
		FlushedSamples: m.FlushedSamples.Load(),
		MaxBatchSeen:   m.MaxBatchSeen.Load(),
		QueueDepth:     m.QueueDepth.Load(),
		PeakQueueDepth: m.PeakQueueDepth.Load(),
		LatencyMicros:  m.LatencyMicros.Load(),
	}
}
