package serve

import (
	"context"
	"errors"
	"sync/atomic"

	ramiel "repro"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ErrorCause labels what went wrong with a failed request, for the
// cause-split error counters, the trace spans, and error responses.
type ErrorCause int

const (
	// CauseNone means the request succeeded.
	CauseNone ErrorCause = iota
	// CauseValidation: the feeds failed validation (missing, unknown or
	// mis-shaped inputs) — a client error, not a model failure.
	CauseValidation
	// CauseCompile: building or compiling the model (or its batch variant)
	// failed.
	CauseCompile
	// CauseExecution: a kernel or lane failed during the run.
	CauseExecution
	// CauseDeadline: the request or batch deadline expired.
	CauseDeadline
	// CauseCanceled: the client went away (context canceled). Counted under
	// its own label but excluded from the Errors total, as before — a
	// canceled client is not a model failure.
	CauseCanceled
	// CauseShutdown: the request arrived while the server was draining.
	CauseShutdown
	// CausePanic: a panic was recovered on the request's path — in a
	// kernel (exec lane), the worker pool, or the batcher. The process
	// survives; the request fails with a cause-labeled 500.
	CausePanic
	// CauseMemory: the request was shed by memory-feasibility admission
	// (429) or its run hit the shared arena byte budget mid-flight (503).
	// Either way the server protected itself from allocating past its
	// memory budget.
	CauseMemory
	// CauseWatchdog: the stuck-run watchdog force-cancelled the run after
	// it exceeded the p99-derived execution limit — a pathological input
	// degraded one request instead of wedging a worker slot.
	CauseWatchdog
	// CauseBodyTooLarge: the HTTP request body exceeded the configured cap
	// (413) — rejected before JSON decoding allocated anything.
	CauseBodyTooLarge
	numCauses
)

// String returns the stable label used in JSON and metric labels.
func (c ErrorCause) String() string {
	switch c {
	case CauseNone:
		return ""
	case CauseValidation:
		return "validation"
	case CauseCompile:
		return "compile"
	case CauseExecution:
		return "execution"
	case CauseDeadline:
		return "deadline"
	case CauseCanceled:
		return "canceled"
	case CauseShutdown:
		return "shutdown"
	case CausePanic:
		return "panic"
	case CauseMemory:
		return "memory"
	case CauseWatchdog:
		return "watchdog"
	case CauseBodyTooLarge:
		return "body_too_large"
	}
	return "unknown"
}

// CauseOf classifies a serving error into its ErrorCause label — exported
// for front ends (the fleet tier) that render serve errors with the same
// taxonomy the daemon uses.
func CauseOf(err error) ErrorCause { return causeOf(err) }

// causeOf classifies a serving error. Deadline/cancel are checked first:
// an expired batch surfaces as the bare context error even when the root
// run failed with it mid-kernel.
func causeOf(err error) ErrorCause {
	switch {
	case err == nil:
		return CauseNone
	// Panic outranks cancellation: a run that panicked and was then
	// aborted is a panic, not a cancel.
	case isPanic(err):
		return CausePanic
	// Watchdog kills surface as context cancellation underneath, so the
	// wrapper must be checked before the bare ctx errors.
	case errors.Is(err, ErrWatchdogKilled):
		return CauseWatchdog
	case errors.Is(err, context.Canceled):
		return CauseCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CauseDeadline
	// Both memory verdicts — shed at admission, or denied by the arena
	// budget mid-run — carry the same "memory" label.
	case errors.Is(err, ErrMemoryPressure), errors.Is(err, tensor.ErrArenaBudget):
		return CauseMemory
	case errors.Is(err, ErrBodyTooLarge):
		return CauseBodyTooLarge
	case errors.Is(err, ramiel.ErrInvalidFeeds):
		return CauseValidation
	case errors.Is(err, ErrCompile):
		return CauseCompile
	case errors.Is(err, ErrShutdown), errors.Is(err, ErrBatcherClosed):
		return CauseShutdown
	default:
		return CauseExecution
	}
}

// ModelStats counts per-model serving activity. All counters are atomics
// and the stage histograms are lock-free, so the hot path never takes a
// lock; Snapshot gives a consistent-enough view for reporting.
type ModelStats struct {
	// Requests is every Infer call routed to the model.
	Requests atomic.Int64
	// Errors counts failed requests. Canceled clients are excluded (they
	// are not model failures) but appear under their own cause label.
	Errors atomic.Int64
	// errsByCause splits failures by ErrorCause.
	errsByCause [numCauses]atomic.Int64
	// Batched counts requests that were served inside a coalesced
	// micro-batch of size > 1 (i.e. through a hyperclustered plan).
	Batched atomic.Int64
	// Flushes counts micro-batch flushes; FlushedSamples their total size,
	// so FlushedSamples/Flushes is the mean realized batch size.
	Flushes        atomic.Int64
	FlushedSamples atomic.Int64
	// MaxBatchSeen is the largest coalesced batch executed.
	MaxBatchSeen atomic.Int64
	// QueueDepth is the current number of requests waiting in the
	// micro-batcher; PeakQueueDepth its high-water mark.
	QueueDepth     atomic.Int64
	PeakQueueDepth atomic.Int64
	// InFlight is the number of requests dispatched for the model and not
	// yet answered (queued, batching, or executing). Together with
	// QueueDepth this is the pressure signal the fleet tier's spillover
	// watermark reads, so it is exported rather than kept internal.
	InFlight atomic.Int64
	// FlushWindowNs is the micro-batch flush window most recently armed for
	// the model. Static batching pins it at Config.FlushTimeout; adaptive
	// batching moves it with load, and this gauge is how that movement is
	// observed.
	FlushWindowNs atomic.Int64
	// stages holds the per-stage latency histograms (batch assembly, queue
	// wait, execute, end-to-end) that replaced the old mean-only latency
	// accumulator: p50/p90/p99/max per stage instead of one average. Nil
	// when the server runs with telemetry disabled (Config.NoObs) — the
	// Record path is nil-safe.
	stages *obs.StageSet
}

// noteQueued bumps the batcher queue gauge and its high-water mark.
func (m *ModelStats) noteQueued() {
	d := m.QueueDepth.Add(1)
	for {
		old := m.PeakQueueDepth.Load()
		if d <= old || m.PeakQueueDepth.CompareAndSwap(old, d) {
			return
		}
	}
}

// noteBatch records one executed micro-batch of size n.
func (m *ModelStats) noteBatch(n int) {
	m.Flushes.Add(1)
	m.FlushedSamples.Add(int64(n))
	if n > 1 {
		m.Batched.Add(int64(n))
	}
	for {
		old := m.MaxBatchSeen.Load()
		if int64(n) <= old || m.MaxBatchSeen.CompareAndSwap(old, int64(n)) {
			return
		}
	}
}

// noteError records one failed request under its cause.
func (m *ModelStats) noteError(c ErrorCause) {
	if c == CauseNone {
		return
	}
	m.errsByCause[c].Add(1)
	if c != CauseCanceled {
		m.Errors.Add(1)
	}
}

// Stages returns the model's stage-histogram set (nil when telemetry is
// disabled); Record on it is nil-safe.
func (m *ModelStats) Stages() *obs.StageSet { return m.stages }

// ModelStatsSnapshot is the JSON view of ModelStats.
type ModelStatsSnapshot struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ErrorsByCause splits failures by cause label (validation, compile,
	// execution, deadline, canceled, shutdown); only non-zero causes appear.
	ErrorsByCause  map[string]int64 `json:"errors_by_cause,omitempty"`
	Batched        int64            `json:"batched"`
	Flushes        int64            `json:"flushes"`
	FlushedSamples int64            `json:"flushed_samples"`
	MaxBatchSeen   int64            `json:"max_batch_seen"`
	QueueDepth     int64            `json:"queue_depth"`
	PeakQueueDepth int64            `json:"peak_queue_depth"`
	InFlight       int64            `json:"in_flight"`
	FlushWindowNs  int64            `json:"flush_window_ns,omitempty"`
	// Stages carries the per-stage latency histograms (count, sum, max,
	// p50/p90/p99 in ns), keyed by stage label. Absent with telemetry off
	// or before the first request.
	Stages map[string]obs.HistogramSnapshot `json:"stages,omitempty"`
}

// Snapshot reads the counters.
func (m *ModelStats) Snapshot() ModelStatsSnapshot {
	snap := ModelStatsSnapshot{
		Requests:       m.Requests.Load(),
		Errors:         m.Errors.Load(),
		Batched:        m.Batched.Load(),
		Flushes:        m.Flushes.Load(),
		FlushedSamples: m.FlushedSamples.Load(),
		MaxBatchSeen:   m.MaxBatchSeen.Load(),
		QueueDepth:     m.QueueDepth.Load(),
		PeakQueueDepth: m.PeakQueueDepth.Load(),
		InFlight:       m.InFlight.Load(),
		FlushWindowNs:  m.FlushWindowNs.Load(),
		Stages:         m.stages.Snapshot(),
	}
	for c := CauseNone + 1; c < numCauses; c++ {
		if n := m.errsByCause[c].Load(); n > 0 {
			if snap.ErrorsByCause == nil {
				snap.ErrorsByCause = make(map[string]int64, int(numCauses))
			}
			snap.ErrorsByCause[c.String()] = n
		}
	}
	return snap
}
