package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	ramiel "repro"
)

// heavyServer builds a single-worker server around a model big enough that
// a request can be cancelled while its lanes are busy.
func heavyServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Workers: 1, MaxBatch: 1})
	t.Cleanup(func() { s.Close(context.Background()) })
	if err := s.RegisterZoo(ramiel.ModelConfig{ImageSize: 64}, "squeezenet"); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInferCancelAbortsInFlightRun is the serving acceptance test: a
// request cancelled via its context (the HTTP layer passes r.Context()
// straight here) aborts the run it is executing — the run returns
// context.Canceled before completing and the worker slot frees within one
// kernel's duration rather than computing the abandoned request to
// completion — and the pooled session it used remains serviceable.
func TestInferCancelAbortsInFlightRun(t *testing.T) {
	s := heavyServer(t)
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	// One uncancelled request, timed, as the completion reference.
	start := time.Now()
	if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	cancelled := false
	for attempt := 0; attempt < 25 && !cancelled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(full / 4)
			cancel()
		}()
		_, _, err := s.Infer(ctx, "squeezenet", feeds, true)
		cancel()
		switch {
		case err == nil:
			// Run beat the cancel; try again.
		case errors.Is(err, context.Canceled):
			cancelled = true
		default:
			t.Fatalf("cancelled request failed with non-context error: %v", err)
		}
	}
	if !cancelled {
		t.Fatal("never observed a cancelled in-flight request in 25 attempts")
	}

	// The cancelled run must actually unwind, not keep computing in the
	// background: with one worker, in-flight drains well before a full
	// model run would have finished.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if n := s.pool.InFlight(); n > 0 {
		t.Fatalf("worker still executing %d runs after cancellation", n)
	}

	// The session the aborted run borrowed is back in the pool and fully
	// usable: the next request on the same single worker succeeds.
	if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
		t.Fatalf("request after cancelled run: %v", err)
	}
	// Aborted runs must not ratchet the arena's in-use gauge: with no
	// request in flight, everything handed out was either recycled,
	// escaped to a client, or abandoned-and-reconciled.
	if st, ok := s.ArenaStats(); ok && st.InUseBytes != 0 {
		t.Errorf("arena in_use_bytes = %d with no requests in flight, want 0", st.InUseBytes)
	}
	// Cancellations are client behavior, not model failures.
	if errs := s.modelStats("squeezenet").Errors.Load(); errs != 0 {
		t.Errorf("cancelled requests counted as %d model errors", errs)
	}
}

// TestInferDeadlineAbortsRun: a per-request timeout (the HTTP layer's
// timeout_ms) aborts the run the same way, surfacing DeadlineExceeded.
func TestInferDeadlineAbortsRun(t *testing.T) {
	s := heavyServer(t)
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 25; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, _, err := s.Infer(ctx, "squeezenet", feeds, true)
		cancel()
		if err == nil {
			continue // run beat the deadline
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("timed-out request returned %v, want DeadlineExceeded", err)
		}
		return
	}
	t.Fatal("never observed a deadline-aborted request in 25 attempts")
}
