package serve

import (
	"bufio"
	"context"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed exposition line: name{labels} value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parseProm parses a Prometheus text exposition strictly enough to catch
// the bugs hand-rolled renderers actually have: samples before their TYPE,
// malformed label quoting, bad metric names, unparsable values.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	helps := map[string]bool{}
	seenSample := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type %q in %q", parts[1], line)
			}
			if seenSample[parts[0]] {
				t.Errorf("TYPE for %s appears after its samples", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := parsePromSample(t, line)
		samples = append(samples, s)
		seenSample[familyOf(s.name)] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for fam := range types {
		if !helps[fam] {
			t.Errorf("family %s has TYPE but no HELP", fam)
		}
	}
	return types, samples
}

func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: line}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			t.Fatalf("unclosed label braces: %q", line)
		}
		for _, pair := range splitLabels(t, rest[i+1:end], line) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !labelNameRe.MatchString(k) {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("label value not quoted in %q", line)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		s.name, rest = fields[0], fields[1]
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("bad metric name in %q", line)
	}
	val := strings.TrimSpace(rest)
	switch val {
	case "+Inf":
		s.value = math.Inf(1)
	default:
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparsable value %q in %q: %v", val, line, err)
		}
		s.value = f
	}
	return s
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(t *testing.T, s, line string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, c := range s {
		switch {
		case escaped:
			cur.WriteRune(c)
			escaped = false
		case c == '\\' && inQuote:
			cur.WriteRune(c)
			escaped = true
		case c == '"':
			cur.WriteRune(c)
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		t.Fatalf("unterminated quote in labels of %q", line)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// familyOf strips the histogram sample suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelKey canonicalizes a label set minus `le` for grouping histogram
// series.
func labelKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Order-stable enough for tests: sort via insertion.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// TestMetricsWellFormed fetches /metrics and validates the whole
// exposition: name and label grammar, HELP/TYPE placement, and for every
// histogram series a monotone cumulative le-bucket ladder that ends at
// +Inf and agrees with _count.
func TestMetricsWellFormed(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 2, FlushTimeout: 200 * time.Microsecond, AdaptiveBatch: true}, "squeezenet")
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, false); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, string(raw))

	// Every sample's family must be declared, with histogram suffixes only
	// under histogram-typed families.
	for _, smp := range samples {
		fam := familyOf(smp.name)
		typ, ok := types[fam]
		if !ok {
			t.Errorf("sample %q has no TYPE declaration", smp.line)
			continue
		}
		if smp.name != fam && typ != "histogram" {
			t.Errorf("sample %q uses a histogram suffix but %s is a %s", smp.line, fam, typ)
		}
		if typ == "histogram" {
			if smp.name == fam {
				t.Errorf("histogram %s has a bare sample %q", fam, smp.line)
			}
			if strings.HasSuffix(smp.name, "_bucket") {
				if _, ok := smp.labels["le"]; !ok {
					t.Errorf("bucket sample without le label: %q", smp.line)
				}
			}
		}
	}

	// The new fleet-facing gauges must be present per model.
	wantFamilies := []string{"ramield_batcher_queue_depth", "ramield_model_in_flight", "ramield_batch_flush_window_ns"}
	for _, fam := range wantFamilies {
		found := false
		for _, smp := range samples {
			if smp.name == fam && smp.labels["model"] == "squeezenet" {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s{model=\"squeezenet\"}", fam)
		}
	}

	// Histogram ladder checks per (family, labelset-minus-le).
	type ladder struct {
		les    []float64
		counts []float64
		sum    float64
		count  float64
		hasInf bool
	}
	ladders := map[string]*ladder{}
	get := func(fam, key string) *ladder {
		k := fam + "|" + key
		if ladders[k] == nil {
			ladders[k] = &ladder{}
		}
		return ladders[k]
	}
	for _, smp := range samples {
		fam := familyOf(smp.name)
		if types[fam] != "histogram" {
			continue
		}
		l := get(fam, labelKey(smp.labels))
		switch {
		case strings.HasSuffix(smp.name, "_bucket"):
			le := smp.labels["le"]
			if le == "+Inf" {
				l.hasInf = true
				l.les = append(l.les, math.Inf(1))
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("unparsable le %q in %q", le, smp.line)
				}
				l.les = append(l.les, f)
			}
			l.counts = append(l.counts, smp.value)
		case strings.HasSuffix(smp.name, "_sum"):
			l.sum = smp.value
		case strings.HasSuffix(smp.name, "_count"):
			l.count = smp.value
		}
	}
	checked := 0
	for key, l := range ladders {
		if len(l.les) == 0 {
			t.Errorf("histogram series %s has _sum/_count but no buckets", key)
			continue
		}
		if !l.hasInf {
			t.Errorf("histogram series %s has no +Inf bucket", key)
		}
		for i := 1; i < len(l.les); i++ {
			if l.les[i] <= l.les[i-1] {
				t.Errorf("series %s: le values not increasing (%v)", key, l.les)
				break
			}
			if l.counts[i] < l.counts[i-1] {
				t.Errorf("series %s: cumulative counts decreased (%v)", key, l.counts)
				break
			}
		}
		if last := l.counts[len(l.counts)-1]; last != l.count {
			t.Errorf("series %s: +Inf bucket %v != _count %v", key, last, l.count)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no histogram series found in /metrics — the parser or renderer is broken")
	}
}

// TestGracefulDrain verifies the SIGTERM sequence the daemon runs:
// BeginDrain flips /readyz to 503 (so balancers rotate away) while
// in-flight and late-arriving requests still complete.
func TestGracefulDrain(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 2, MaxBatch: 1}, "squeezenet")
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz before drain = %d, want 200", resp.StatusCode)
		}
	}

	s.BeginDrain()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz during drain = %d, want 503", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz during drain = %d, want 200 (draining is not dead)", resp.StatusCode)
		}
	}

	// Draining rejects nothing: in-flight work runs to completion.
	feeds, err := s.RandomFeeds("squeezenet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Infer(context.Background(), "squeezenet", feeds, true); err != nil {
		t.Errorf("inference during drain failed: %v", err)
	}
}

func TestAdaptiveWindow(t *testing.T) {
	var exec obs.Histogram
	const (
		minW = 50 * time.Microsecond
		maxW = 2 * time.Millisecond
	)

	t.Run("cold model waits the static window", func(t *testing.T) {
		a := newBatchAdapter(&exec, minW, maxW, 4)
		if got := a.window(1); got != maxW {
			t.Errorf("window = %v with no data, want static cap %v", got, maxW)
		}
	})

	t.Run("sparse arrivals flush at the floor", func(t *testing.T) {
		a := newBatchAdapter(&exec, minW, maxW, 4)
		base := time.Unix(1000, 0)
		a.note(base)
		a.note(base.Add(100 * time.Millisecond)) // gap >> any budget
		if got := a.window(1); got != minW {
			t.Errorf("window = %v for sparse arrivals, want floor %v", got, minW)
		}
	})

	t.Run("dense arrivals wait for the window to fill", func(t *testing.T) {
		for i := 0; i < 100; i++ {
			exec.Record(time.Millisecond) // p50 ≈ 1ms → budget ≈ 500µs
		}
		a := newBatchAdapter(&exec, minW, maxW, 4)
		base := time.Unix(1000, 0)
		for i := 0; i < 20; i++ {
			a.note(base.Add(time.Duration(i) * 100 * time.Microsecond))
		}
		got := a.window(1)
		// gap ≈ 100µs, 3 slots remain → fill ≈ 300µs, within budget.
		if got < minW || got > 600*time.Microsecond {
			t.Errorf("window = %v for 100µs arrivals, want ≈300µs (within [%v, 600µs])", got, minW)
		}
		if got == maxW {
			t.Errorf("window = static cap %v under dense load — adapter inert", maxW)
		}
	})

	t.Run("full window flushes at the floor", func(t *testing.T) {
		a := newBatchAdapter(&exec, minW, maxW, 4)
		base := time.Unix(1000, 0)
		a.note(base)
		a.note(base.Add(100 * time.Microsecond))
		if got := a.window(4); got != minW {
			t.Errorf("window = %v with the batch full, want floor %v", got, minW)
		}
	})

	t.Run("nil adapter is the static path", func(t *testing.T) {
		var a *batchAdapter
		a.note(time.Now()) // must not panic
	})
}

// TestPerModelTuning checks the Config.ModelTuning override used by the
// -flush/-max-batch per-model flag grammar.
func TestPerModelTuning(t *testing.T) {
	cfg := Config{
		MaxBatch:     4,
		FlushTimeout: 2 * time.Millisecond,
		ModelTuning: map[string]BatchTuning{
			"bert": {MaxBatch: 8, FlushTimeout: 500 * time.Microsecond},
			"tiny": {MaxBatch: 1},
		},
	}
	if mb, fl := cfg.tuning("bert"); mb != 8 || fl != 500*time.Microsecond {
		t.Errorf("tuning(bert) = %d, %v; want 8, 500µs", mb, fl)
	}
	if mb, fl := cfg.tuning("tiny"); mb != 1 || fl != 2*time.Millisecond {
		t.Errorf("tuning(tiny) = %d, %v; want 1 and the global flush", mb, fl)
	}
	if mb, fl := cfg.tuning("other"); mb != 4 || fl != 2*time.Millisecond {
		t.Errorf("tuning(other) = %d, %v; want the globals", mb, fl)
	}
}
