package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	ramiel "repro"
)

// ErrBatcherClosed is returned for requests submitted after shutdown began.
var ErrBatcherClosed = errors.New("serve: batcher closed")

// batchResult is one request's share of a flushed batch. assembly is how
// long this request waited for batch companions before the flush; timing is
// the batch run's pool attribution (shared by every member).
type batchResult struct {
	outs      ramiel.Env
	batchSize int
	assembly  time.Duration
	timing    Timing
	err       error
}

// inferJob is a queued single-sample request: feeds keyed by the model's
// batch-1 input names, result delivered on res (buffered, never blocks the
// flusher). submit timestamps the enqueue so the flusher can attribute the
// batch-assembly wait per member.
type inferJob struct {
	feeds  ramiel.Env
	res    chan batchResult
	submit time.Time
}

// batcher coalesces single-sample requests for one model into dynamic
// micro-batches (Section III-E serving): a request waits at most flushAfter
// for companions; a full window of maxBatch flushes immediately. A flush of
// n > 1 requests runs the model's hyperclustered batch-n program — queued
// concurrency becomes intra-request parallelism — while a flush of 1 (low
// load) falls back to the plain batch-1 plan with no batching overhead
// beyond the wait.
type batcher struct {
	model      string
	reg        *Registry
	pool       *Pool
	sessions   *sessionSource
	maxBatch   int
	flushAfter time.Duration
	deadline   time.Duration
	stats      *ModelStats
	// dog is the server's stuck-run watchdog (nil = off): batch runs
	// register with it like unbatched ones, so a wedged batch is killed
	// instead of holding a worker until the batch deadline.
	dog *watchdog
	// adapt, when non-nil, chooses the flush window per window from live
	// latency/arrival measurements (Config.AdaptiveBatch); nil keeps the
	// static flushAfter policy.
	adapt *batchAdapter

	mu      sync.Mutex
	pending []*inferJob
	timer   *time.Timer
	// gen numbers the current window; a timer callback armed for an older
	// generation is stale (its window already flushed by size) and must
	// not flush the new window early.
	gen    uint64
	closed bool
	// inflight tracks spawned runBatch goroutines so close can wait for
	// them while the worker pool is still accepting work.
	inflight sync.WaitGroup
}

func newBatcher(model string, reg *Registry, pool *Pool, sessions *sessionSource, maxBatch int, flushAfter, deadline time.Duration, stats *ModelStats, adapt *batchAdapter, dog *watchdog) *batcher {
	return &batcher{
		model:      model,
		reg:        reg,
		pool:       pool,
		sessions:   sessions,
		maxBatch:   maxBatch,
		flushAfter: flushAfter,
		deadline:   deadline,
		stats:      stats,
		adapt:      adapt,
		dog:        dog,
	}
}

// armWindow picks the flush window for a freshly opened batching window
// (static flushAfter, or the adaptive controller's choice) and records it
// in the per-model gauge.
func (b *batcher) armWindow(pending int) time.Duration {
	w := b.flushAfter
	if b.adapt != nil {
		w = b.adapt.window(pending)
	}
	b.stats.FlushWindowNs.Store(int64(w))
	return w
}

// submit queues one single-sample request and waits for its slice of the
// batch result. ctx only abandons the wait; the underlying batch still
// completes for its other members.
func (b *batcher) submit(ctx context.Context, feeds ramiel.Env) (ramiel.Env, int, stageTimes, error) {
	job := &inferJob{feeds: feeds, res: make(chan batchResult, 1), submit: time.Now()}
	b.adapt.note(job.submit)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, stageTimes{}, ErrBatcherClosed
	}
	b.pending = append(b.pending, job)
	b.stats.noteQueued()
	if len(b.pending) >= b.maxBatch {
		b.flushLocked()
	} else if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.armWindow(1), func() { b.flushTimeout(gen) })
	}
	b.mu.Unlock()

	select {
	case r := <-job.res:
		ts := stageTimes{assembly: r.assembly, queue: r.timing.Queue, exec: r.timing.Exec, ran: r.timing.Ran}
		return r.outs, r.batchSize, ts, r.err
	case <-ctx.Done():
		return nil, 0, stageTimes{assembly: time.Since(job.submit)}, ctx.Err()
	}
}

// flushTimeout is the timer callback: flush the window it was armed for,
// unless that window already flushed by size (generation moved on).
func (b *batcher) flushTimeout(gen uint64) {
	b.mu.Lock()
	if b.gen == gen {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// flushLocked hands the pending window to a runner goroutine. Caller holds
// b.mu.
func (b *batcher) flushLocked() {
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return
	}
	jobs := b.pending
	b.pending = nil
	b.stats.QueueDepth.Add(int64(-len(jobs)))
	b.inflight.Add(1)
	go func() {
		defer b.inflight.Done()
		// Backstop for panics in the batcher's own merge/split code, which
		// runs on this goroutine outside the pool's recover. The sends are
		// non-blocking: members already answered before the panic (their
		// one-slot buffers full) must not wedge this goroutine.
		defer func() {
			if r := recover(); r != nil {
				res := batchResult{err: newPanicError(r, debug.Stack())}
				for _, job := range jobs {
					select {
					case job.res <- res:
					default:
					}
				}
			}
		}()
		b.runBatch(jobs)
	}()
}

// runBatch executes one coalesced window through the worker pool and
// scatters the outputs back to the member requests. The batch runs under
// its own deadline context (a batch outlives any single member's context —
// one member giving up must not abort its companions), and the deadline
// now aborts the run itself: lanes observe the expiry mid-flight instead
// of computing a doomed batch to completion.
func (b *batcher) runBatch(jobs []*inferJob) {
	n := len(jobs)
	b.stats.noteBatch(n)
	// The flush instant closes every member's batch-assembly window.
	flushT := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), b.deadline)
	defer cancel()

	prog, err := b.reg.Program(b.model, n)
	if err != nil {
		b.failAll(jobs, flushT, Timing{}, err)
		return
	}
	feeds := jobs[0].feeds
	if n > 1 {
		merged := make(ramiel.Env, len(feeds)*n)
		for s, job := range jobs {
			for name, t := range job.feeds {
				merged[ramiel.SampleValueName(name, s)] = t
			}
		}
		feeds = merged
	}
	dogID := b.dog.batchID()
	outs, timing, err := b.pool.Do(ctx, func(runCtx context.Context) (ramiel.Env, error) {
		// The batch already owns a cancel (its deadline context); the
		// watchdog reuses it, so a wedged batch degrades one window, not a
		// worker slot. The kill fails every member with cause "watchdog".
		slot := b.dog.begin(b.model, b.stats, dogID, cancel)
		outs, err := b.sessions.run(runCtx, prog, feeds)
		if b.dog.end(slot) && err != nil {
			err = fmt.Errorf("%w: %w", ErrWatchdogKilled, err)
		}
		return outs, err
	})
	if err != nil {
		if !errors.Is(err, ErrWatchdogKilled) && b.dog.wasKilled(dogID) {
			// Pool.Do returned the bare context error; re-attach the kill.
			err = fmt.Errorf("%w: %w", ErrWatchdogKilled, err)
		}
		b.failAll(jobs, flushT, timing, err)
		return
	}
	if n == 1 {
		jobs[0].res <- batchResult{outs: outs, batchSize: 1,
			assembly: flushT.Sub(jobs[0].submit), timing: timing}
		return
	}
	// Split the replicated outputs back per sample.
	split := make([]ramiel.Env, n)
	for i := range split {
		split[i] = ramiel.Env{}
	}
	for name, t := range outs {
		s := ramiel.SampleIndexOf(name)
		if s < 0 || s >= n {
			b.failAll(jobs, flushT, timing, fmt.Errorf("serve: batch output %q has no valid sample index", name))
			return
		}
		split[s][ramiel.BaseValueName(name)] = t
	}
	for s, job := range jobs {
		job.res <- batchResult{outs: split[s], batchSize: n,
			assembly: flushT.Sub(job.submit), timing: timing}
	}
}

func (b *batcher) failAll(jobs []*inferJob, flushT time.Time, timing Timing, err error) {
	for _, job := range jobs {
		job.res <- batchResult{err: err, assembly: flushT.Sub(job.submit), timing: timing}
	}
}

// close flushes any pending window, rejects future submissions, and waits
// for in-flight batches to finish (so they complete before the worker pool
// shuts down; each is bounded by the request deadline).
func (b *batcher) close() {
	b.mu.Lock()
	b.flushLocked()
	b.closed = true
	b.mu.Unlock()
	b.inflight.Wait()
}
