package serve

import (
	"sync"

	ramiel "repro"
	"repro/internal/tensor"
)

// arenaSource keeps per-worker tensor arenas alive across requests. Arenas
// ride a sync.Pool: a request borrows one for the duration of its plan
// execution, so an arena is never shared by two concurrent runs (the
// RunArena contract) yet survives from request to request — which is what
// turns steady-state serving's per-request intermediate tensors into
// free-list reuse instead of GC garbage. Under memory pressure the GC
// empties the sync.Pool and the arenas (with their held buffers) are
// simply collected.
//
// All arenas report into one shared stats block so /v1/stats shows
// aggregate hit/miss/peak numbers for the whole server.
type arenaSource struct {
	stats tensor.ArenaStats
	pool  sync.Pool
}

func newArenaSource() *arenaSource {
	s := &arenaSource{}
	s.pool.New = func() any { return tensor.NewArenaWithStats(&s.stats) }
	return s
}

// run executes the program with a borrowed arena; a nil source (arena
// disabled) falls back to the plain heap path.
func (s *arenaSource) run(prog *ramiel.Program, feeds ramiel.Env) (ramiel.Env, error) {
	if s == nil {
		return prog.Run(feeds)
	}
	a := s.pool.Get().(*tensor.Arena)
	defer s.pool.Put(a)
	return prog.RunArena(feeds, a)
}

// snapshot reads the aggregate counters; ok is false when disabled.
func (s *arenaSource) snapshot() (tensor.ArenaStatsSnapshot, bool) {
	if s == nil {
		return tensor.ArenaStatsSnapshot{}, false
	}
	return s.stats.Snapshot(), true
}
