package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// ChaosSleep is a custom op that sleeps for data[0] milliseconds before
// acting as identity — a wedged kernel on demand, selected per request by
// the feed data. It cannot observe the run context (kernels don't), which
// is exactly the scenario the stuck-run watchdog exists for.
var chaosSleepOnce sync.Once

func registerChaosSleep(t testing.TB) {
	t.Helper()
	chaosSleepOnce.Do(func() {
		err := ops.Register("ChaosSleep", func(in []*tensor.Tensor, attrs ops.Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
			if ms := in[0].Data()[0]; ms > 0 {
				time.Sleep(time.Duration(ms) * time.Millisecond)
			}
			out := tensor.New(in[0].Shape(), tensor.AllocUninit(a, in[0].Numel()))
			copy(out.Data(), in[0].Data())
			return []*tensor.Tensor{out}, nil
		})
		if err != nil {
			panic(err)
		}
	})
}

// sleepyModel is x -> ChaosSleep -> out.
func sleepyModel() *ramiel.Graph {
	g := graph.New("sleepy")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("s", "ChaosSleep", []string{"x"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

// TestMemGovernorBoundary drives the admission arithmetic on a fake
// estimate table: admit while projected ≤ budget, shed one request past
// it, admit again after a release.
func TestMemGovernorBoundary(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1, MemBudgetBytes: 1000, NoArena: true})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	g := s.gov
	if g == nil {
		t.Fatal("MemBudgetBytes set but governor is nil")
	}
	g.setEstimate("tiny", 400)

	r1, ok := g.admit(s, "tiny")
	if !ok || r1 != 400 {
		t.Fatalf("admit #1 = (%d, %v), want (400, true)", r1, ok)
	}
	r2, ok := g.admit(s, "tiny")
	if !ok || r2 != 400 {
		t.Fatalf("admit #2 = (%d, %v), want (400, true)", r2, ok)
	}
	// 400 + 400 + 400 > 1000: the third concurrent request sheds.
	if _, ok := g.admit(s, "tiny"); ok {
		t.Fatal("admit #3 passed with projected 1200 over budget 1000")
	}
	snap := s.MemoryStats()
	if !snap.Enabled || snap.BudgetBytes != 1000 || snap.ReservedBytes != 800 {
		t.Fatalf("MemoryStats = %+v, want enabled, budget 1000, reserved 800", snap)
	}
	if snap.HeadroomBytes != 200 || snap.Sheds != 1 {
		t.Fatalf("headroom/sheds = %d/%d, want 200/1", snap.HeadroomBytes, snap.Sheds)
	}
	if h, known := s.MemHeadroom(); !known || h != 200 {
		t.Fatalf("MemHeadroom = (%d, %v), want (200, true)", h, known)
	}
	g.release(r1)
	if _, ok := g.admit(s, "tiny"); !ok {
		t.Fatal("admit after release shed; reservation not returned")
	}

	// A model with no forecast (cold, or unsizable) admits and reserves
	// nothing — shedding on a guess the governor does not have is wrong.
	g.setEstimate("unknown", 0)
	if r, ok := g.admit(s, "unknown"); !ok || r != 0 {
		t.Fatalf("admit unknown-estimate = (%d, %v), want (0, true)", r, ok)
	}
}

// TestMemoryShedSurface: a request whose projected working set exceeds the
// budget is shed with cause "memory" — 429 plus a Retry-After hint over
// HTTP — and the governance counters/gauges show up on /v1/stats and
// /metrics.
func TestMemoryShedSurface(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1, MemBudgetBytes: 4096})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	s.MarkReady()
	// Forecast far past the budget: every request sheds at admission.
	s.gov.setEstimate("tiny", 1<<20)

	_, _, err := s.Infer(context.Background(), "tiny", tinyFeeds(1), false)
	if !errors.Is(err, ErrMemoryPressure) {
		t.Fatalf("Infer err = %v, want ErrMemoryPressure", err)
	}
	if got := causeOf(err); got != CauseMemory {
		t.Fatalf("causeOf = %v, want memory", got)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"tiny","inputs":{"x":{"shape":[4],"data":[1,2,3,4]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("memory shed carries no Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "memory" {
		t.Errorf("error cause = %q, want memory", er.Cause)
	}

	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st struct {
		Memory MemoryStatsSnapshot `json:"memory"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Memory.Enabled || st.Memory.BudgetBytes != 4096 || st.Memory.Sheds < 2 {
		t.Errorf("stats memory block = %+v, want enabled, budget 4096, sheds >= 2", st.Memory)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, family := range []string{"ramield_mem_budget_bytes", "ramield_mem_headroom_bytes", "ramield_mem_sheds_total", "ramield_watchdog_kills_total"} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestArenaBudgetExhaustionMidRun: a run that outgrows the arena budget
// mid-flight fails alone with cause "memory", the shared arena reconciles
// to zero in-use bytes, and the session that hit the budget is dropped
// instead of re-pooled. Run with -race: the denial panic crosses the lane
// recover while companions unwind.
func TestArenaBudgetExhaustionMidRun(t *testing.T) {
	s := New(Config{Workers: 2, MaxBatch: 1, MemBudgetBytes: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	s.MarkReady()
	// Pin the admission forecast at "unknown" so every request is admitted
	// and the denial happens inside the run, not at the door.
	s.gov.setEstimate("tiny", 0)

	const clients, perClient = 8, 3
	var wg sync.WaitGroup
	errs := make([]error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, _, errs[c*perClient+i] = s.Infer(context.Background(), "tiny", tinyFeeds(float32(i)), false)
			}
		}(c)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d succeeded under a 1-byte arena budget", i)
		}
		if !errors.Is(err, tensor.ErrArenaBudget) {
			t.Fatalf("request %d err = %v, want ErrArenaBudget", i, err)
		}
		if got := causeOf(err); got != CauseMemory {
			t.Fatalf("request %d causeOf = %v, want memory", i, got)
		}
	}
	arena, ok := s.ArenaStats()
	if !ok {
		t.Fatal("arena disabled")
	}
	if arena.InUseBytes != 0 {
		t.Errorf("InUseBytes = %d after budget-failed runs, want 0 (arena not reconciled)", arena.InUseBytes)
	}
	if arena.BudgetDenials < int64(clients*perClient) {
		t.Errorf("BudgetDenials = %d, want >= %d", arena.BudgetDenials, clients*perClient)
	}
	snap := s.MemoryStats()
	if snap.SessionDrops < 1 {
		t.Errorf("SessionDrops = %d, want >= 1 (budget-failed session re-pooled?)", snap.SessionDrops)
	}
	if snap.ArenaDenials != arena.BudgetDenials {
		t.Errorf("stats denials %d != arena denials %d", snap.ArenaDenials, arena.BudgetDenials)
	}
}

// TestWatchdogKillsStuckRun: a kernel wedged in a sleep (no context
// cooperation at all) is force-cancelled once the run exceeds the
// watchdog's limit; the request fails with cause "watchdog" well before
// the kernel would have finished, the kill is counted, and the server
// keeps serving.
func TestWatchdogKillsStuckRun(t *testing.T) {
	registerChaosSleep(t)
	s := New(Config{Workers: 2, MaxBatch: 1, WatchdogFloor: 100 * time.Millisecond})
	defer s.Close(context.Background())
	s.RegisterGraph("sleepy", sleepyModel())
	s.MarkReady()

	// data[0] = 1500 → the kernel sleeps 1.5s; with no latency samples yet
	// the kill limit is the 100ms floor.
	start := time.Now()
	_, _, err := s.Infer(context.Background(), "sleepy", tinyFeeds(1500), false)
	took := time.Since(start)
	if err == nil {
		t.Fatal("wedged run reported success")
	}
	if !errors.Is(err, ErrWatchdogKilled) {
		t.Fatalf("err = %v, want ErrWatchdogKilled", err)
	}
	if got := causeOf(err); got != CauseWatchdog {
		t.Fatalf("causeOf = %v, want watchdog", got)
	}
	if took > time.Second {
		t.Errorf("killed request took %v, want well under the kernel's 1.5s sleep", took)
	}
	if got := s.WatchdogKills(); got != 1 {
		t.Errorf("WatchdogKills = %d, want 1", got)
	}
	if got := s.MemoryStats().WatchdogKills; got != 1 {
		t.Errorf("MemoryStats().WatchdogKills = %d, want 1 (even with governance off)", got)
	}

	// The worker the sleeper holds frees itself when the sleep ends; the
	// other worker serves immediately meanwhile.
	if _, _, err := s.Infer(context.Background(), "sleepy", tinyFeeds(0), false); err != nil {
		t.Fatalf("request after watchdog kill failed: %v", err)
	}
	if got := s.modelStats("sleepy").Snapshot().ErrorsByCause[CauseWatchdog.String()]; got != 1 {
		t.Errorf("errors_by_cause[watchdog] = %d, want 1", got)
	}
}

// TestWatchdogDisabled: negative WatchdogFactor turns the watchdog off —
// a slow run is left to its deadline.
func TestWatchdogDisabled(t *testing.T) {
	registerChaosSleep(t)
	s := New(Config{Workers: 1, MaxBatch: 1, WatchdogFactor: -1, WatchdogFloor: 50 * time.Millisecond})
	defer s.Close(context.Background())
	s.RegisterGraph("sleepy", sleepyModel())
	s.MarkReady()
	if s.dog != nil {
		t.Fatal("negative WatchdogFactor still built a watchdog")
	}
	// A 300ms sleep far past the floor completes untouched.
	if _, _, err := s.Infer(context.Background(), "sleepy", tinyFeeds(300), false); err != nil {
		t.Fatalf("slow run with watchdog disabled failed: %v", err)
	}
}

// TestBodyTooLarge: POST bodies past MaxBodyBytes are rejected with 413
// and cause "body_too_large" before the decoder buffers them; normal
// bodies still serve.
func TestBodyTooLarge(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1, MaxBodyBytes: 512})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"model":"tiny","inputs":{"x":{"shape":[4],"data":[` +
		strings.Repeat("1,", 4000) + `1]}}}`
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "body_too_large" {
		t.Errorf("cause = %q, want body_too_large", er.Cause)
	}

	resp2, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"tiny","inputs":{"x":{"shape":[4],"data":[1,2,3,4]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("normal-sized request status = %d, want 200", resp2.StatusCode)
	}
}

// TestNonFiniteFeedsRejected: NaN/Inf feeds fail as validation errors by
// default; NoFiniteCheck restores raw feeds.
func TestNonFiniteFeedsRejected(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	defer s.Close(context.Background())
	s.RegisterGraph("tiny", tinyModel())
	s.MarkReady()

	for name, poison := range map[string]float32{
		"nan":  float32(math.NaN()),
		"+inf": float32(math.Inf(1)),
		"-inf": float32(math.Inf(-1)),
	} {
		feeds := ramiel.Env{"x": ramiel.NewTensor(ramiel.NewShape(4), []float32{1, poison, 3, 4})}
		_, _, err := s.Infer(context.Background(), "tiny", feeds, false)
		if !errors.Is(err, ramiel.ErrInvalidFeeds) {
			t.Fatalf("%s feed: err = %v, want ErrInvalidFeeds", name, err)
		}
		if got := causeOf(err); got != CauseValidation {
			t.Errorf("%s feed: causeOf = %v, want validation", name, got)
		}
		if got := StatusFor(err); got != http.StatusBadRequest {
			t.Errorf("%s feed: status = %d, want 400", name, got)
		}
	}

	raw := New(Config{Workers: 1, MaxBatch: 1, NoFiniteCheck: true})
	defer raw.Close(context.Background())
	raw.RegisterGraph("tiny", tinyModel())
	raw.MarkReady()
	feeds := ramiel.Env{"x": ramiel.NewTensor(ramiel.NewShape(4), []float32{1, float32(math.NaN()), 3, 4})}
	if _, _, err := raw.Infer(context.Background(), "tiny", feeds, false); err != nil {
		t.Fatalf("NoFiniteCheck server rejected NaN feed: %v", err)
	}
}

// TestGovernanceOffHotPath pins the resource-governance cost on the
// serving fast path at zero: a server with the governor and watchdog fully
// armed allocates exactly as much per request as one with both off.
func TestGovernanceOffHotPath(t *testing.T) {
	mk := func(cfg Config) *Server {
		s := New(cfg)
		s.RegisterGraph("tiny", tinyModel())
		s.MarkReady()
		return s
	}
	base := mk(Config{Workers: 1, MaxBatch: 1, WatchdogFactor: -1})
	defer base.Close(context.Background())
	gov := mk(Config{Workers: 1, MaxBatch: 1, MemBudgetBytes: 1 << 40})
	defer gov.Close(context.Background())
	// Pre-seed the forecast so no background sizing run pollutes the
	// measurement (testing.AllocsPerRun counts process-global allocations).
	gov.gov.setEstimate("tiny", 1<<10)

	feeds := tinyFeeds(1)
	measure := func(s *Server) float64 {
		for i := 0; i < 10; i++ {
			if _, _, err := s.Infer(context.Background(), "tiny", feeds, false); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(100, func() {
			if _, _, err := s.Infer(context.Background(), "tiny", feeds, false); err != nil {
				t.Fatal(err)
			}
		})
	}
	off, on := measure(base), measure(gov)
	if on > off+0.5 {
		t.Errorf("governance adds allocations to the hot path: %.1f with vs %.1f without", on, off)
	}
}
