// Package serve is the concurrent inference-serving runtime on top of the
// Ramiel compiler: a model registry with a compile-once program cache
// (including hyperclustered variants per batch size), a bounded worker pool
// executing cached plans through pooled ramiel.Sessions (warm arenas,
// request-context cancellation of in-flight runs), and a dynamic
// micro-batcher that coalesces single-sample requests into hyperclustered
// batch runs (Section III-E). The ramield daemon (cmd/ramield) exposes it
// over HTTP/JSON.
//
// The design point is the paper's: compilation is fast but not free, so a
// serving system compiles each (model, batch, options) combination exactly
// once and amortizes it across every subsequent request, while
// hyperclustering turns queued-up concurrent requests into intra-request
// parallelism instead of mere throughput.
//
// The runtime carries an always-on, lock-free observability layer (see
// internal/obs): per-model × per-stage latency histograms (batch assembly,
// queue wait, execute, end-to-end), cause-labeled error counters, per-op
// execution totals from the executor, and a lock-striped ring of recent and
// slow request spans. Handler exposes it over HTTP:
//
//	POST /v1/infer    — run inference (X-Request-ID echoes the span ID)
//	GET  /v1/models   — registered models
//	GET  /v1/stats    — counters, stage histograms, per-op time, arenas
//	                    (?variants=1 per-batch-variant op time,
//	                    ?calibration=1 cost-model calibration report)
//	GET  /v1/trace    — recent + slow request spans (?n= limits, ?slow=1)
//	GET  /v1/timeline — latest sampled execution timeline of a model as
//	                    Chrome trace-event JSON (Config.TimelineEvery > 0)
//	GET  /metrics     — Prometheus text exposition of all of the above
//	GET  /healthz     — liveness (the process serves HTTP)
//	GET  /readyz      — readiness (the preload set has compiled)
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
)

// ErrNotRegistered marks requests for unknown models.
var ErrNotRegistered = errors.New("model not registered")

// ErrCompile marks failures to build or compile a model (or one of its
// batch variants), so the serving layer's cause-labeled error counters can
// separate compile failures from execution failures.
var ErrCompile = errors.New("compile failed")

// ModelSource lazily builds a model graph; registered per model name so
// the registry can (re)build graphs without holding every model in memory
// at registration time.
type ModelSource func() (*ramiel.Graph, error)

// programKey identifies one compiled program variant: the model, the
// micro-batch size it was hyperclustered for (1 = the base plan), whether
// switched hyperclustering was used, and a fingerprint of the compile
// options.
type programKey struct {
	model    string
	batch    int
	switched bool
	opts     string
}

// optsFingerprint folds the compile options that change the produced plan
// into a comparable cache-key component. CostModel is an interface and
// cannot be fingerprinted; the registry assumes it is fixed per registry
// (it is — options are set once at construction).
func optsFingerprint(o ramiel.Options) string {
	co := "-"
	if o.CloneOptions != nil {
		co = fmt.Sprintf("%+v", *o.CloneOptions)
	}
	return fmt.Sprintf("p%t-c%t-m%t-f%t-co%s", o.Prune, o.Clone, o.DisableMerge, o.DisableFusion, co)
}

// programEntry is one singleflight cache slot: the first goroutine to want
// the key compiles; everyone else blocks on ready.
type programEntry struct {
	ready chan struct{}
	prog  *ramiel.Program
	err   error
}

// graphEntry is the singleflight slot for building a model's graph.
type graphEntry struct {
	ready chan struct{}
	graph *ramiel.Graph
	err   error
}

// RegistryStats counts cache behavior; all fields are atomics, read via
// Snapshot.
type RegistryStats struct {
	Compiles      atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	CompileMicros atomic.Int64
}

// RegistryStatsSnapshot is the JSON-friendly view of RegistryStats.
type RegistryStatsSnapshot struct {
	Compiles      int64 `json:"compiles"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CompileMicros int64 `json:"compile_micros"`
}

// Registry is the model registry + program cache. Program is safe for
// concurrent use; duplicate compilations of the same key are deduplicated
// singleflight-style, so a burst of first requests for a model costs one
// compile.
type Registry struct {
	opts     ramiel.Options
	switched bool
	// optsFP is the options fingerprint, precomputed so per-request key
	// construction stays allocation-free.
	optsFP string
	// tlEvery/tlRing, when tlEvery > 0, attach an execution-timeline flight
	// recorder to every program this registry compiles (set before the
	// first compile via EnableTimeline).
	tlEvery int
	tlRing  int

	mu       sync.Mutex
	sources  map[string]ModelSource
	graphs   map[string]*graphEntry
	programs map[programKey]*programEntry

	stats RegistryStats
}

// NewRegistry creates a registry compiling with the given default options;
// switched selects switched hyperclustering for batch>1 variants.
func NewRegistry(opts ramiel.Options, switched bool) *Registry {
	return &Registry{
		opts:     opts,
		switched: switched,
		optsFP:   optsFingerprint(opts),
		sources:  map[string]ModelSource{},
		graphs:   map[string]*graphEntry{},
		programs: map[programKey]*programEntry{},
	}
}

// EnableTimeline makes every program the registry compiles from now on
// carry an execution-timeline flight recorder sampling one run in `every`
// into a ring of `ring` retained runs. Call before serving traffic —
// already-compiled programs are not retrofitted.
func (r *Registry) EnableTimeline(every, ring int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tlEvery, r.tlRing = every, ring
}

// Registered reports whether a model name is known to the registry.
func (r *Registry) Registered(model string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[model]
	return ok
}

// Register adds a model under the given name. Re-registering a name
// replaces its source and drops any cached graph and programs for it.
func (r *Registry) Register(name string, src ModelSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = src
	delete(r.graphs, name)
	for k := range r.programs {
		if k.model == name {
			delete(r.programs, k)
		}
	}
}

// RegisterGraph registers an already-built graph.
func (r *Registry) RegisterGraph(name string, g *ramiel.Graph) {
	r.Register(name, func() (*ramiel.Graph, error) { return g, nil })
}

// RegisterZoo registers built-in zoo models by name with the given model
// config; with no names it registers the whole zoo.
func (r *Registry) RegisterZoo(cfg ramiel.ModelConfig, names ...string) error {
	if len(names) == 0 {
		names = ramiel.ModelNames()
	}
	for _, name := range names {
		g, err := ramiel.BuildModel(name, cfg)
		if err != nil {
			return fmt.Errorf("serve: register zoo: %w", err)
		}
		r.RegisterGraph(name, g)
	}
	return nil
}

// Models lists registered model names, sorted.
func (r *Registry) Models() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.sources))
	for name := range r.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Graph returns the model's built graph, building it at most once.
func (r *Registry) Graph(model string) (*ramiel.Graph, error) {
	r.mu.Lock()
	e, ok := r.graphs[model]
	if !ok {
		src, registered := r.sources[model]
		if !registered {
			r.mu.Unlock()
			return nil, fmt.Errorf("serve: model %q: %w", model, ErrNotRegistered)
		}
		e = &graphEntry{ready: make(chan struct{})}
		r.graphs[model] = e
		r.mu.Unlock()
		e.graph, e.err = src()
		close(e.ready)
		if e.err != nil {
			// Drop failed builds so a transient source failure is
			// retryable, matching the program cache's policy.
			r.mu.Lock()
			if r.graphs[model] == e {
				delete(r.graphs, model)
			}
			r.mu.Unlock()
		}
	} else {
		r.mu.Unlock()
		<-e.ready
	}
	if e.err != nil {
		return nil, fmt.Errorf("serve: building %q: %w: %w", model, ErrCompile, e.err)
	}
	return e.graph, nil
}

// Program returns the compiled program for (model, batch) under the
// registry's options, compiling it at most once per key. batch == 1 yields
// the base Ramiel plan; batch > 1 yields the hyperclustered variant derived
// from the base plan's clustering, so the base is compiled (once) too.
// key builds the cache key for a (model, batch) variant under the
// registry's options.
func (r *Registry) key(model string, batch int) programKey {
	return programKey{model, batch, r.switched && batch > 1, r.optsFP}
}

func (r *Registry) Program(model string, batch int) (*ramiel.Program, error) {
	if batch < 1 {
		return nil, fmt.Errorf("serve: batch must be >= 1, got %d", batch)
	}
	return r.get(model, batch, true)
}

// get is the singleflight cache core. count separates client traffic
// (counted in hit/miss stats) from internal derivations — compiling a
// batch-n variant fetches the base program without pretending a request
// hit the cache.
func (r *Registry) get(model string, batch int, count bool) (*ramiel.Program, error) {
	key := r.key(model, batch)
	r.mu.Lock()
	e, ok := r.programs[key]
	if ok {
		r.mu.Unlock()
		if count {
			r.stats.CacheHits.Add(1)
		}
		<-e.ready
		return e.prog, e.err
	}
	e = &programEntry{ready: make(chan struct{})}
	r.programs[key] = e
	r.mu.Unlock()
	if count {
		r.stats.CacheMisses.Add(1)
	}

	e.prog, e.err = r.compile(model, batch)
	close(e.ready)
	if e.err != nil {
		// Drop failed entries so a transient failure is retryable.
		r.mu.Lock()
		if r.programs[key] == e {
			delete(r.programs, key)
		}
		r.mu.Unlock()
	}
	return e.prog, e.err
}

// compile builds the requested variant (called outside the registry lock).
func (r *Registry) compile(model string, batch int) (*ramiel.Program, error) {
	start := time.Now()
	defer func() {
		r.stats.Compiles.Add(1)
		r.stats.CompileMicros.Add(time.Since(start).Microseconds())
	}()
	prog, err := r.compileVariant(model, batch)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	every, ring := r.tlEvery, r.tlRing
	r.mu.Unlock()
	if every > 0 {
		// Every variant records independently: a batch-4 hypercluster run
		// and a batch-1 run have different lane structures and timelines.
		prog.EnableTimeline(every, ring)
	}
	return prog, nil
}

// compileVariant builds the base program (batch 1) or derives the
// hyperclustered variant from it.
func (r *Registry) compileVariant(model string, batch int) (*ramiel.Program, error) {
	if batch == 1 {
		g, err := r.Graph(model)
		if err != nil {
			return nil, err
		}
		prog, err := ramiel.CompileWithOptions(g, r.opts)
		if err != nil {
			return nil, fmt.Errorf("serve: compiling %q: %w: %w", model, ErrCompile, err)
		}
		return prog, nil
	}
	base, err := r.get(model, 1, false)
	if err != nil {
		return nil, err
	}
	prog, err := base.Hypercluster(batch, r.switched)
	if err != nil {
		return nil, fmt.Errorf("serve: hyperclustering %q batch %d: %w: %w", model, batch, ErrCompile, err)
	}
	return prog, nil
}

// PeekGraph returns the model's graph only if it is already built —
// inspection endpoints must not force lazy ModelSource builds (or pin
// every registered model in memory). Nil when unbuilt or failed.
func (r *Registry) PeekGraph(model string) *ramiel.Graph {
	r.mu.Lock()
	e := r.graphs[model]
	r.mu.Unlock()
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
		if e.err == nil {
			return e.graph
		}
	default:
	}
	return nil
}

// Peek returns the ready compiled program for (model, batch) without
// compiling, waiting, or touching the cache counters — for inspection
// endpoints that must not skew serving stats. Nil when absent, still
// compiling, or failed.
func (r *Registry) Peek(model string, batch int) *ramiel.Program {
	r.mu.Lock()
	e := r.programs[r.key(model, batch)]
	r.mu.Unlock()
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
		if e.err == nil {
			return e.prog
		}
	default:
	}
	return nil
}

// CachedBatches lists the batch sizes with a ready compiled program for the
// model, sorted ascending.
func (r *Registry) CachedBatches(model string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for k, e := range r.programs {
		if k.model != model {
			continue
		}
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, k.batch)
			}
		default:
		}
	}
	sort.Ints(out)
	return out
}

// Stats snapshots the cache counters.
func (r *Registry) Stats() RegistryStatsSnapshot {
	return RegistryStatsSnapshot{
		Compiles:      r.stats.Compiles.Load(),
		CacheHits:     r.stats.CacheHits.Load(),
		CacheMisses:   r.stats.CacheMisses.Load(),
		CompileMicros: r.stats.CompileMicros.Load(),
	}
}
