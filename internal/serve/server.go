package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	ramiel "repro"
	"repro/internal/tensor"
)

// Config tunes the serving runtime. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent plan executions (default
	// GOMAXPROCS). Each running plan itself fans out one goroutine per
	// cluster, so this bounds total execution parallelism.
	Workers int
	// Backlog is the worker-pool queue depth (default 4×Workers).
	Backlog int
	// MaxBatch caps dynamic micro-batching; 1 disables coalescing.
	MaxBatch int
	// FlushTimeout is how long a lone request waits for batch companions
	// (default 2ms — small against model latency, large against arrival
	// gaps under load).
	FlushTimeout time.Duration
	// Switched selects switched hyperclustering for batch plans (Fig. 9).
	Switched bool
	// Deadline is the default per-request deadline (default 30s).
	Deadline time.Duration
	// NoArena disables arena-backed execution; the default (false) pools
	// warm ramiel.Sessions per program, each owning a tensor arena recycled
	// across requests, so steady-state inference performs no per-request
	// intermediate-tensor allocation.
	NoArena bool
	// Compile sets the Ramiel pipeline options used for every model.
	Compile ramiel.Options
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backlog < 1 {
		c.Backlog = 4 * c.Workers
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = 2 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	return c
}

// InferMeta reports how a request was served.
type InferMeta struct {
	// BatchSize is the coalesced batch the request rode in (1 = solo).
	BatchSize int
	// Latency is the end-to-end service time.
	Latency time.Duration
}

// Server is the serving runtime: registry + pool + per-model batchers.
// All methods are safe for concurrent use.
type Server struct {
	cfg      Config
	reg      *Registry
	pool     *Pool
	sessions *sessionSource // pooled per-program execution sessions

	mu       sync.Mutex
	batchers map[string]*batcher
	stats    map[string]*ModelStats
	closed   bool

	start time.Time
}

// New creates a serving runtime and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if !cfg.NoArena {
		// Arena runs consult the memory plan; build it at warm/compile
		// time rather than on the first request.
		cfg.Compile.EagerMemPlan = true
	}
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.Compile, cfg.Switched),
		pool:     NewPool(cfg.Workers, cfg.Backlog),
		sessions: newSessionSource(!cfg.NoArena),
		batchers: map[string]*batcher{},
		stats:    map[string]*ModelStats{},
		start:    time.Now(),
	}
	return s
}

// ArenaStats reads the aggregate arena counters across all pooled session
// arenas; ok is false when the arena is disabled.
func (s *Server) ArenaStats() (snap tensor.ArenaStatsSnapshot, ok bool) {
	return s.sessions.snapshot()
}

// Registry exposes the server's model registry for registration and
// inspection.
func (s *Server) Registry() *Registry { return s.reg }

// RegisterZoo registers built-in zoo models (all of them when names is
// empty).
func (s *Server) RegisterZoo(cfg ramiel.ModelConfig, names ...string) error {
	return s.reg.RegisterZoo(cfg, names...)
}

// RegisterGraph registers an already-built model graph.
func (s *Server) RegisterGraph(name string, g *ramiel.Graph) {
	s.reg.RegisterGraph(name, g)
}

// Warm precompiles the batch-1 program for each named model (all
// registered models when names is empty), so first requests don't pay the
// compile.
func (s *Server) Warm(names ...string) error {
	if len(names) == 0 {
		names = s.reg.Models()
	}
	for _, name := range names {
		if _, err := s.reg.Program(name, 1); err != nil {
			return err
		}
	}
	return nil
}

// statsLocked returns (creating on demand) the stats block for a model.
// Caller holds s.mu.
func (s *Server) statsLocked(model string) *ModelStats {
	st, ok := s.stats[model]
	if !ok {
		st = &ModelStats{}
		s.stats[model] = st
	}
	return st
}

// modelStats is statsLocked with its own locking.
func (s *Server) modelStats(model string) *ModelStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked(model)
}

// batcher returns (creating on demand) the micro-batcher for a model, or
// nil when the server is closed.
func (s *Server) batcher(model string) *batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	b, ok := s.batchers[model]
	if !ok {
		b = newBatcher(model, s.reg, s.pool, s.sessions, s.cfg.MaxBatch, s.cfg.FlushTimeout, s.cfg.Deadline,
			s.statsLocked(model))
		s.batchers[model] = b
	}
	return b
}

// Infer serves one single-sample request: feeds keyed by the model's
// declared input names. When batching is enabled (MaxBatch > 1) and
// noBatch is false, the request may be coalesced with concurrent ones into
// a hyperclustered batch run. ctx bounds the wait and, on the unbatched
// path, propagates into the run itself: a cancelled or timed-out request
// aborts its in-flight session run instead of computing to completion.
// With no deadline set, the server default applies.
func (s *Server) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, InferMeta, error) {
	start := time.Now()
	// Reject unknown models before touching per-model state: junk traffic
	// must not grow the stats map.
	if !s.reg.Registered(model) {
		return nil, InferMeta{}, fmt.Errorf("serve: model %q: %w", model, ErrNotRegistered)
	}
	st := s.modelStats(model)
	st.Requests.Add(1)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}

	outs, batchSize, err := s.dispatch(ctx, model, feeds, noBatch)
	meta := InferMeta{BatchSize: batchSize, Latency: time.Since(start)}
	st.LatencyMicros.Add(meta.Latency.Microseconds())
	if err != nil {
		// A canceled client is not a model failure; keep Errors meaningful
		// for monitoring.
		if !errors.Is(err, context.Canceled) {
			st.Errors.Add(1)
		}
		return nil, meta, err
	}
	return outs, meta, nil
}

func (s *Server) dispatch(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, int, error) {
	if s.cfg.MaxBatch > 1 && !noBatch {
		b := s.batcher(model)
		if b == nil {
			return nil, 0, ErrShutdown
		}
		return b.submit(ctx, feeds)
	}
	prog, err := s.reg.Program(model, 1)
	if err != nil {
		return nil, 0, err
	}
	outs, err := s.pool.Do(ctx, func(runCtx context.Context) (ramiel.Env, error) {
		return s.sessions.run(runCtx, prog, feeds)
	})
	if err != nil {
		return nil, 0, err
	}
	return outs, 1, nil
}

// RandomFeeds builds a deterministic valid request for the model — the
// server-side analogue of ramiel.RandomInputs, used by the HTTP layer's
// seed mode and by benchmarks.
func (s *Server) RandomFeeds(model string, seed uint64) (ramiel.Env, error) {
	g, err := s.reg.Graph(model)
	if err != nil {
		return nil, err
	}
	return ramiel.RandomInputs(g, seed), nil
}

// Uptime reports how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// Close shuts the runtime down gracefully: new requests are rejected,
// pending micro-batches flush, and the pool drains within ctx.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	batchers := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	s.mu.Unlock()
	// Batcher close waits for in-flight batches (bounded per batch by the
	// request deadline, but possibly long); honor ctx rather than blocking
	// Server.Close past its budget.
	flushed := make(chan struct{})
	go func() {
		for _, b := range batchers {
			b.close()
		}
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
	}
	if err := s.pool.Close(ctx); err != nil {
		return fmt.Errorf("serve: draining pool: %w", err)
	}
	return nil
}
