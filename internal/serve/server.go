package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Config tunes the serving runtime. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent plan executions (default
	// GOMAXPROCS). Each running plan itself fans out one goroutine per
	// cluster, so this bounds total execution parallelism.
	Workers int
	// Backlog is the worker-pool queue depth (default 4×Workers).
	Backlog int
	// MaxBatch caps dynamic micro-batching; 1 disables coalescing.
	MaxBatch int
	// FlushTimeout is how long a lone request waits for batch companions
	// (default 2ms — small against model latency, large against arrival
	// gaps under load). With AdaptiveBatch set it becomes the window cap.
	FlushTimeout time.Duration
	// AdaptiveBatch replaces the static flush-timeout policy with a
	// per-model controller that picks each window from live measurements:
	// the wait budget tracks the model's p50 execution time (from the
	// stage histograms) and the expected window-fill time comes from an
	// EWMA of arrival gaps — flush almost immediately when arrivals are
	// sparse, grow batches toward MaxBatch under load. FlushTimeout and
	// MinFlush bound the chosen window; the static policy remains the
	// manual fallback when this is off.
	AdaptiveBatch bool
	// MinFlush is the adaptive controller's window floor (default 50µs).
	MinFlush time.Duration
	// ModelTuning overrides MaxBatch/FlushTimeout for individual models;
	// zero fields inherit the global values. Models absent from the map
	// use the globals.
	ModelTuning map[string]BatchTuning
	// Switched selects switched hyperclustering for batch plans (Fig. 9).
	Switched bool
	// Deadline is the default per-request deadline (default 30s).
	Deadline time.Duration
	// NoArena disables arena-backed execution; the default (false) pools
	// warm ramiel.Sessions per program, each owning a tensor arena recycled
	// across requests, so steady-state inference performs no per-request
	// intermediate-tensor allocation.
	NoArena bool
	// NoObs disables serve-layer telemetry: per-model stage-latency
	// histograms and request tracing are simply never allocated (the record
	// paths are nil-safe no-ops). Counters stay on — they are single atomic
	// adds. Default false: telemetry is always on, and designed to be cheap
	// enough to leave on (zero allocations per request).
	NoObs bool
	// TraceDepth is the capacity of each request-trace ring (recent and
	// slow), rounded up to a power of two. Default 256.
	TraceDepth int
	// SlowThreshold routes requests at or above this end-to-end latency
	// into the dedicated slow-trace ring, so rare tail-latency offenders
	// survive the churn of the recent ring. Default 100ms.
	SlowThreshold time.Duration
	// TimelineEvery enables the execution-timeline flight recorder on every
	// compiled program: one run in TimelineEvery is sampled into per-op
	// spans, exportable as Chrome trace-event JSON at GET /v1/timeline.
	// Default 0 = off — unlike the request-level telemetry above, sampled
	// runs allocate their span storage, so the recorder is opt-in and the
	// serving hot path keeps its zero-allocation contract by default.
	TimelineEvery int
	// TimelineRing is how many sampled run timelines each program retains
	// (default 4). Ignored when TimelineEvery is 0.
	TimelineRing int
	// MemBudgetBytes, when > 0, turns on memory governance: (1) requests
	// are admitted only while the projected working set — arena in-use
	// bytes plus the memory-plan estimates of admitted-but-unfinished
	// requests — fits the budget, others shed in microseconds with cause
	// "memory" (HTTP 429 + Retry-After); (2) the same budget caps the
	// shared session arenas, so a run that outgrows its estimate fails
	// with tensor.ErrArenaBudget instead of growing the heap unbounded.
	// 0 (the default) disables governance; daemons default it to
	// DetectMemoryBudget. The admit/release path allocates nothing.
	MemBudgetBytes int64
	// WatchdogFactor scales the stuck-run watchdog's kill limit:
	// factor × the model's live p99 execution time, floored at
	// WatchdogFloor. 0 picks the default (20); negative disables the
	// watchdog entirely.
	WatchdogFactor float64
	// WatchdogFloor is the minimum age before any run can be killed
	// (default 2s) — also the whole limit while a model has no latency
	// samples yet.
	WatchdogFloor time.Duration
	// MaxBodyBytes caps HTTP /v1/infer request bodies (413 past it).
	// 0 picks the default (8 MiB); negative disables the cap.
	MaxBodyBytes int64
	// NoFiniteCheck skips the NaN/±Inf feed scan (on by default: poisoned
	// inputs fail as validation errors instead of propagating through the
	// fused kernels).
	NoFiniteCheck bool
	// Compile sets the Ramiel pipeline options used for every model.
	Compile ramiel.Options
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backlog < 1 {
		c.Backlog = 4 * c.Workers
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = 2 * time.Millisecond
	}
	if c.MinFlush <= 0 {
		c.MinFlush = 50 * time.Microsecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.TraceDepth < 1 {
		c.TraceDepth = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.TimelineRing < 1 {
		c.TimelineRing = 4
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 20
	}
	if c.WatchdogFloor <= 0 {
		c.WatchdogFloor = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// BatchTuning is a per-model override of the micro-batching knobs (see
// Config.ModelTuning). Zero fields inherit the global Config values.
type BatchTuning struct {
	MaxBatch     int
	FlushTimeout time.Duration
}

// tuning resolves the effective micro-batching knobs for a model.
func (c Config) tuning(model string) (maxBatch int, flush time.Duration) {
	maxBatch, flush = c.MaxBatch, c.FlushTimeout
	if t, ok := c.ModelTuning[model]; ok {
		if t.MaxBatch > 0 {
			maxBatch = t.MaxBatch
		}
		if t.FlushTimeout > 0 {
			flush = t.FlushTimeout
		}
	}
	return maxBatch, flush
}

// stageTimes carries a request's per-stage wall time out of dispatch. It is
// passed by value — no allocation on the serving hot path. ran is false
// when the request never reached a pool worker (its exec time would be
// meaningless, so exec-stage histograms skip it).
type stageTimes struct {
	assembly time.Duration // micro-batch window wait (batched path only)
	queue    time.Duration // pool wait: enqueue → worker pickup
	exec     time.Duration // session run on the worker
	ran      bool
}

// InferMeta reports how a request was served.
type InferMeta struct {
	// RequestID is the server-assigned sequence number of the request,
	// echoed as X-Request-ID by the HTTP layer and keying its trace span.
	RequestID uint64
	// BatchSize is the coalesced batch the request rode in (1 = solo).
	BatchSize int
	// Latency is the end-to-end service time.
	Latency time.Duration
	// BatchWait is the time spent waiting for micro-batch companions
	// (zero on the unbatched path).
	BatchWait time.Duration
	// QueueWait is the time spent queued for a pool worker.
	QueueWait time.Duration
	// Exec is the session-run time on the worker (shared by all members of
	// a coalesced batch).
	Exec time.Duration
}

// Server is the serving runtime: registry + pool + per-model batchers.
// All methods are safe for concurrent use.
type Server struct {
	cfg      Config
	reg      *Registry
	pool     *Pool
	sessions *sessionSource // pooled per-program execution sessions
	gov      *memGovernor   // memory-feasibility admission (nil = off)
	dog      *watchdog      // stuck-run watchdog (nil = off)

	mu       sync.Mutex
	batchers map[string]*batcher
	stats    map[string]*ModelStats
	closed   bool

	// obs gates serve-layer telemetry (stage histograms + trace rings);
	// when false, traces/slow are nil and ModelStats.stages stays nil —
	// all record paths are nil-safe no-ops.
	obs    bool
	traces *obs.TraceRing // most recent requests
	slow   *obs.TraceRing // requests at or above cfg.SlowThreshold
	reqID  atomic.Uint64  // request ID sequence
	ready  atomic.Bool    // flipped by Warm/MarkReady; read by /readyz

	// panics counts requests failed by a recovered panic (a panicking
	// batch run counts every member it failed, mirroring errors_total).
	// The per-model split lives in errors_by_cause under "panic".
	panics atomic.Int64

	start time.Time
}

// New creates a serving runtime and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if !cfg.NoArena {
		// Arena runs consult the memory plan; build it at warm/compile
		// time rather than on the first request.
		cfg.Compile.EagerMemPlan = true
	}
	reg := NewRegistry(cfg.Compile, cfg.Switched)
	if cfg.TimelineEvery > 0 {
		reg.EnableTimeline(cfg.TimelineEvery, cfg.TimelineRing)
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		pool:     NewPool(cfg.Workers, cfg.Backlog),
		sessions: newSessionSource(!cfg.NoArena),
		batchers: map[string]*batcher{},
		stats:    map[string]*ModelStats{},
		obs:      !cfg.NoObs,
		start:    time.Now(),
	}
	if s.obs {
		s.traces = obs.NewTraceRing(cfg.TraceDepth)
		s.slow = obs.NewTraceRing(cfg.TraceDepth)
	}
	if cfg.MemBudgetBytes > 0 {
		var arena *tensor.ArenaStats
		if !cfg.NoArena {
			// One budget governs both layers: admission projects against
			// it up front, and the shared arena enforces it mid-run as the
			// backstop for runs that outgrow their estimate.
			arena = &s.sessions.stats
			arena.SetBudget(cfg.MemBudgetBytes)
		}
		s.gov = newMemGovernor(cfg.MemBudgetBytes, arena)
	}
	if cfg.WatchdogFactor > 0 {
		s.dog = newWatchdog(cfg.Workers, cfg.WatchdogFactor, cfg.WatchdogFloor, s.obs)
	}
	return s
}

// ArenaStats reads the aggregate arena counters across all pooled session
// arenas; ok is false when the arena is disabled.
func (s *Server) ArenaStats() (snap tensor.ArenaStatsSnapshot, ok bool) {
	return s.sessions.snapshot()
}

// Registry exposes the server's model registry for registration and
// inspection.
func (s *Server) Registry() *Registry { return s.reg }

// RegisterZoo registers built-in zoo models (all of them when names is
// empty).
func (s *Server) RegisterZoo(cfg ramiel.ModelConfig, names ...string) error {
	return s.reg.RegisterZoo(cfg, names...)
}

// RegisterGraph registers an already-built model graph.
func (s *Server) RegisterGraph(name string, g *ramiel.Graph) {
	s.reg.RegisterGraph(name, g)
}

// Warm precompiles the batch-1 program for each named model (all
// registered models when names is empty), so first requests don't pay the
// compile. On success the server reports ready (see Ready); deployments
// that skip warming should call MarkReady explicitly.
func (s *Server) Warm(names ...string) error {
	if len(names) == 0 {
		names = s.reg.Models()
	}
	for _, name := range names {
		if _, err := s.reg.Program(name, 1); err != nil {
			return err
		}
	}
	s.MarkReady()
	return nil
}

// MarkReady flips the readiness gate (see Ready). Warm calls it on success;
// deployments that serve without preloading call it directly.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports whether the server has finished preloading (Warm succeeded
// or MarkReady was called). Distinct from liveness: a live server that is
// still compiling its preload set is not yet ready for traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

// BeginDrain flips readiness off without rejecting anything: /readyz turns
// 503 so fleet routing and load balancers rotate traffic away, while
// in-flight and still-arriving requests keep being served. Call it before
// closing the listener; Close then finishes the shutdown. Idempotent.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Load reports the server's current queueing pressure: requests accepted
// but not yet picked up (worker-pool backlog plus every model's
// micro-batcher window) and requests currently executing. This is the
// signal the fleet tier's spillover watermark and admission controller
// read.
func (s *Server) Load() (queued, inflight int64) {
	queued = s.pool.QueueDepth()
	inflight = s.pool.InFlight()
	s.mu.Lock()
	for _, st := range s.stats {
		queued += st.QueueDepth.Load()
	}
	s.mu.Unlock()
	return queued, inflight
}

// Workers reports the configured worker-pool size — the fleet admission
// controller's service-rate denominator.
func (s *Server) Workers() int { return s.cfg.Workers }

// Traces returns up to n most-recent request spans, newest first (n <= 0
// means all retained). Nil when telemetry is disabled.
func (s *Server) Traces(n int) []obs.Span { return s.traces.Snapshot(n) }

// SlowTraces returns up to n retained slow-request spans (end-to-end
// latency >= Config.SlowThreshold), newest first. Nil when telemetry is
// disabled.
func (s *Server) SlowTraces(n int) []obs.Span { return s.slow.Snapshot(n) }

// statsLocked returns (creating on demand) the stats block for a model.
// Caller holds s.mu.
func (s *Server) statsLocked(model string) *ModelStats {
	st, ok := s.stats[model]
	if !ok {
		st = &ModelStats{}
		if s.obs {
			st.stages = &obs.StageSet{}
		}
		s.stats[model] = st
	}
	return st
}

// modelStats is statsLocked with its own locking.
func (s *Server) modelStats(model string) *ModelStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked(model)
}

// batcher returns (creating on demand) the micro-batcher for a model, or
// nil when the server is closed.
func (s *Server) batcher(model string) *batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	b, ok := s.batchers[model]
	if !ok {
		maxBatch, flush := s.cfg.tuning(model)
		st := s.statsLocked(model)
		var adapt *batchAdapter
		if s.cfg.AdaptiveBatch {
			// The controller reads the model's live exec-time histogram;
			// with telemetry off the histogram is nil and the controller
			// falls back to arrival-rate-only decisions.
			adapt = newBatchAdapter(st.stages.Stage(obs.StageExec), s.cfg.MinFlush, flush, maxBatch)
		}
		b = newBatcher(model, s.reg, s.pool, s.sessions, maxBatch, flush, s.cfg.Deadline, st, adapt, s.dog)
		s.batchers[model] = b
	}
	return b
}

// Infer serves one single-sample request: feeds keyed by the model's
// declared input names. When batching is enabled (MaxBatch > 1) and
// noBatch is false, the request may be coalesced with concurrent ones into
// a hyperclustered batch run. ctx bounds the wait and, on the unbatched
// path, propagates into the run itself: a cancelled or timed-out request
// aborts its in-flight session run instead of computing to completion.
// With no deadline set, the server default applies.
func (s *Server) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, InferMeta, error) {
	start := time.Now()
	// Reject unknown models before touching per-model state: junk traffic
	// must not grow the stats map.
	if !s.reg.Registered(model) {
		return nil, InferMeta{}, fmt.Errorf("serve: model %q: %w", model, ErrNotRegistered)
	}
	id := s.reqID.Add(1)
	st := s.modelStats(model)
	st.Requests.Add(1)
	st.InFlight.Add(1)
	defer st.InFlight.Add(-1)
	var cancel context.CancelFunc
	if _, ok := ctx.Deadline(); !ok {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	} else if s.dog != nil {
		// The watchdog kills by cancelling. A client-supplied deadline
		// means no server-side cancel exists yet, so add one — off the
		// default (no-deadline) path, which keeps its allocation profile.
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	var (
		outs      ramiel.Env
		batchSize int
		ts        stageTimes
		err       error
	)
	// Memory-feasibility admission: shed in microseconds (one sentinel
	// error, no allocation) when the projected working set exceeds the
	// budget, instead of queueing work the arena will refuse anyway.
	reserved, admitted := s.gov.admit(s, model)
	if !admitted {
		err = ErrMemoryPressure
	} else {
		if !s.cfg.NoFiniteCheck {
			err = ramiel.CheckFiniteFeeds(feeds)
		}
		if err == nil {
			outs, batchSize, ts, err = s.dispatch(ctx, cancel, model, st, id, feeds, noBatch)
		}
		s.gov.release(reserved)
	}
	total := time.Since(start)
	meta := InferMeta{
		RequestID: id,
		BatchSize: batchSize,
		Latency:   total,
		BatchWait: ts.assembly,
		QueueWait: ts.queue,
		Exec:      ts.exec,
	}
	cause := causeOf(err)
	st.noteError(cause)
	if cause == CausePanic {
		s.notePanic(model, err)
	}
	s.record(st, model, meta, ts, start, cause, err)
	if err != nil {
		return nil, meta, err
	}
	return outs, meta, nil
}

// notePanic accounts one panic-failed request and logs the recovered
// stack — the only serving-path log, because a panic is a code bug that
// must leave evidence even though the process survives it.
func (s *Server) notePanic(model string, err error) {
	s.panics.Add(1)
	stack := panicStack(err)
	if stack == nil {
		stack = []byte("(no stack captured)")
	}
	log.Printf("serve: recovered panic serving %q: %v\n%s", model, err, stack)
}

// Panics reports the number of requests failed by a recovered panic since
// the server started.
func (s *Server) Panics() int64 { return s.panics.Load() }

// record feeds one finished request into the stage histograms and trace
// rings. Everything here is lock-free or per-slot-locked and allocates
// nothing; with telemetry off every call is a nil-receiver no-op.
func (s *Server) record(st *ModelStats, model string, meta InferMeta, ts stageTimes, start time.Time, cause ErrorCause, err error) {
	if !s.obs {
		return
	}
	h := st.stages
	h.Record(obs.StageE2E, meta.Latency)
	if meta.BatchWait > 0 {
		h.Record(obs.StageAssembly, meta.BatchWait)
	}
	if ts.ran {
		h.Record(obs.StageQueue, meta.QueueWait)
		h.Record(obs.StageExec, meta.Exec)
	}
	sp := obs.Span{
		ID:         meta.RequestID,
		Model:      model,
		Batch:      meta.BatchSize,
		Start:      start,
		AssemblyNs: int64(meta.BatchWait),
		QueueNs:    int64(meta.QueueWait),
		ExecNs:     int64(meta.Exec),
		TotalNs:    int64(meta.Latency),
	}
	if err != nil {
		sp.Cause = cause.String()
		sp.Error = err.Error()
	}
	s.traces.Record(sp)
	if meta.Latency >= s.cfg.SlowThreshold {
		s.slow.Record(sp)
	}
}

func (s *Server) dispatch(ctx context.Context, cancel context.CancelFunc, model string, st *ModelStats, id uint64, feeds ramiel.Env, noBatch bool) (ramiel.Env, int, stageTimes, error) {
	maxBatch, _ := s.cfg.tuning(model)
	if maxBatch > 1 && !noBatch {
		b := s.batcher(model)
		if b == nil {
			return nil, 0, stageTimes{}, ErrShutdown
		}
		return b.submit(ctx, feeds)
	}
	prog, err := s.reg.Program(model, 1)
	if err != nil {
		return nil, 0, stageTimes{}, err
	}
	outs, timing, err := s.pool.Do(ctx, func(runCtx context.Context) (ramiel.Env, error) {
		// Watchdog registration happens on the worker (concurrency ≤ the
		// slot table size) and costs a table scan plus atomics — no
		// allocation on the hot path.
		slot := s.dog.begin(model, st, id, cancel)
		outs, err := s.sessions.run(runCtx, prog, feeds)
		if s.dog.end(slot) && err != nil {
			err = fmt.Errorf("%w: %w", ErrWatchdogKilled, err)
		}
		return outs, err
	})
	ts := stageTimes{queue: timing.Queue, exec: timing.Exec, ran: timing.Ran}
	if err != nil {
		if !errors.Is(err, ErrWatchdogKilled) && s.dog.wasKilled(id) {
			// Pool.Do returned the bare context error (the cancellation
			// landed mid-run); re-attach the watchdog attribution.
			err = fmt.Errorf("%w: %w", ErrWatchdogKilled, err)
		}
		return nil, 0, ts, err
	}
	return outs, 1, ts, nil
}

// RandomFeeds builds a deterministic valid request for the model — the
// server-side analogue of ramiel.RandomInputs, used by the HTTP layer's
// seed mode and by benchmarks.
func (s *Server) RandomFeeds(model string, seed uint64) (ramiel.Env, error) {
	g, err := s.reg.Graph(model)
	if err != nil {
		return nil, err
	}
	return ramiel.RandomInputs(g, seed), nil
}

// Uptime reports how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// Close shuts the runtime down gracefully: new requests are rejected,
// pending micro-batches flush, and the pool drains within ctx.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	batchers := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	s.mu.Unlock()
	// The watchdog outlives the drain (a wedged in-flight run should still
	// be killable) and stops once the pool is settled. The closed guard
	// above makes this single-shot.
	defer s.dog.stopLoop()
	// Batcher close waits for in-flight batches (bounded per batch by the
	// request deadline, but possibly long); honor ctx rather than blocking
	// Server.Close past its budget.
	flushed := make(chan struct{})
	go func() {
		for _, b := range batchers {
			b.close()
		}
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
	}
	if err := s.pool.Close(ctx); err != nil {
		return fmt.Errorf("serve: draining pool: %w", err)
	}
	return nil
}
