package kernels

import "unsafe"

// The microkernel contract (microKernel, defined per platform in
// micro_amd64.go / micro_noasm.go): compute one MR×NR tile,
// C[0:MR, 0:NR] += Aᵖ·Bᵖ, where a is an MR-row strip (kc*MR elements,
// K-major) and b an NR-column strip (kc*NR elements, K-major) of the
// packed operands, c points at the tile's top-left element and ldc is C's
// row stride in elements. kc must be >= 1 and the full MR×NR tile must be
// writable — the driver routes edge tiles through a stack scratch tile and
// masks the writeback. Dispatch is a direct call through a platform
// function, never a func value: an indirect call would force every
// address-taken scratch tile to the heap and break the allocation-flat
// serving contract.

// microGo is the portable microkernel: the accumulator tile lives in a
// fixed-size array the compiler keeps in registers where it can, and every
// inner loop runs over re-sliced views so bounds checks hoist out. Its
// pointer parameters must not leak (and do not — see TestHotPathAllocFree)
// so callers' scratch tiles stay on the stack.
func microGo(kc int, a, b, c *float32, ldc int) {
	as := unsafe.Slice(a, kc*MR)
	bs := unsafe.Slice(b, kc*NR)
	var acc [MR * NR]float32
	for p := 0; p < kc; p++ {
		ap := as[p*MR : p*MR+MR]
		bp := bs[p*NR : p*NR+NR]
		for i, av := range ap {
			row := acc[i*NR : i*NR+NR]
			for j, bv := range bp {
				row[j] += av * bv
			}
		}
	}
	cs := unsafe.Slice(c, (MR-1)*ldc+NR)
	for i := 0; i < MR; i++ {
		row := cs[i*ldc : i*ldc+NR]
		t := acc[i*NR : i*NR+NR]
		for j, v := range t {
			row[j] += v
		}
	}
}
