package kernels

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// maxDiff returns the largest absolute element-wise difference.
func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestGemmMatchesNaive sweeps shapes around the tile and panel boundaries
// — tails in every dimension, degenerate extents, sizes spanning several
// KC panels — and cross-checks the blocked kernel against the naive
// reference for every transpose combination.
func TestGemmMatchesNaive(t *testing.T) {
	r := tensor.NewRNG(41)
	dims := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {3, 17, 5}, {4, 16, 8},
		{5, 15, 300}, {7, 31, 33}, {8, 64, 257}, {13, 1, 9},
		{16, 16, 16}, {33, 47, 19}, {65, 129, 70}, {100, 5, 513},
	}
	for _, d := range dims {
		m, n, k := d[0], d[1], d[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				for _, alpha := range []float32{1, 0.5} {
					var a, b *tensor.Tensor
					lda, ldb := k, n
					if transA {
						a = r.RandTensor(k, m)
						lda = m
					} else {
						a = r.RandTensor(m, k)
					}
					if transB {
						b = r.RandTensor(n, k)
						ldb = k
					} else {
						b = r.RandTensor(k, n)
					}
					got := make([]float32, m*n)
					want := make([]float32, m*n)
					Gemm(alpha, m, n, k, a.Data(), lda, transA, b.Data(), ldb, transB, got, nil)
					NaiveGemm(alpha, m, n, k, a.Data(), lda, transA, b.Data(), ldb, transB, want)
					if d := maxDiff(got, want); d > 1e-4 {
						t.Errorf("m=%d n=%d k=%d transA=%v transB=%v alpha=%v: max diff %g",
							m, n, k, transA, transB, alpha, d)
					}
				}
			}
		}
	}
}

// TestGemmAccumulates verifies the += contract: a non-zero C is added to,
// not overwritten, so KC panels and repeated calls compose.
func TestGemmAccumulates(t *testing.T) {
	r := tensor.NewRNG(5)
	m, n, k := 9, 21, 30
	a := r.RandTensor(m, k)
	b := r.RandTensor(k, n)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	for i := range got {
		got[i] = float32(i % 7)
		want[i] = float32(i % 7)
	}
	Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, got, nil)
	NaiveGemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, want)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("accumulate mismatch: %g", d)
	}
}

// TestPrepackedMatchesCallTime: compile-time packed operands must be
// bit-identical to call-time packing (same layout code, same compute).
func TestPrepackedMatchesCallTime(t *testing.T) {
	r := tensor.NewRNG(17)
	m, n, k := 19, 45, 77
	a := r.RandTensor(m, k)
	b := r.RandTensor(k, n)

	callTime := make([]float32, m*n)
	Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, callTime, nil)

	pb := PrepackB(b.Data(), k, n, n, false)
	viaB := make([]float32, m*n)
	GemmPackedB(1, m, a.Data(), k, false, pb, viaB, nil)

	pa := PrepackA(a.Data(), m, k, k, false)
	viaA := make([]float32, m*n)
	GemmPackedA(pa, n, b.Data(), n, false, viaA, nil)

	for i := range callTime {
		if callTime[i] != viaB[i] {
			t.Fatalf("PackedB path diverges at %d: %v vs %v", i, viaB[i], callTime[i])
		}
		if callTime[i] != viaA[i] {
			t.Fatalf("PackedA path diverges at %d: %v vs %v", i, viaA[i], callTime[i])
		}
	}
	if pb.Bytes() != 4*int64(PackedBSize(k, n)) || pa.Bytes() != 4*int64(PackedASize(m, k)) {
		t.Error("packed Bytes() disagrees with Packed*Size")
	}
}

// TestGemmParallelMatchesSerial: the row-panel parallel split must not
// change results bit-for-bit (each C element's summation order is fixed).
func TestGemmParallelMatchesSerial(t *testing.T) {
	r := tensor.NewRNG(23)
	m, n, k := 300, 37, 150
	a := r.RandTensor(m, k)
	b := r.RandTensor(k, n)
	serial := make([]float32, m*n)
	parallel := make([]float32, m*n)
	tensor.WithIntraOpThreads(1, func() {
		Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, serial, nil)
	})
	tensor.WithIntraOpThreads(8, func() {
		Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, parallel, nil)
	})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel GEMM diverges at %d", i)
		}
	}
}

// TestMicroGoMatchesActive cross-checks the pure-Go microkernel against
// whatever kernel dispatch selected (the AVX2 assembly on capable amd64
// hosts; trivially passes where the Go kernel is already active).
func TestMicroGoMatchesActive(t *testing.T) {
	t.Logf("active microkernel: %s", MicroKernelName())
	r := tensor.NewRNG(3)
	for _, kc := range []int{1, 2, 7, 64, 256} {
		a := r.RandTensor(kc * MR)
		b := r.RandTensor(kc * NR)
		got := make([]float32, MR*NR)
		want := make([]float32, MR*NR)
		microKernel(kc, &a.Data()[0], &b.Data()[0], &got[0], NR)
		microGo(kc, &a.Data()[0], &b.Data()[0], &want[0], NR)
		if d := maxDiff(got, want); d > 1e-5 {
			t.Errorf("kc=%d: active microkernel vs Go reference: max diff %g", kc, d)
		}
	}
}

// TestGemmArenaScratch: call-time packing must draw from the allocator and
// return everything, leaving the arena balanced for the next run.
func TestGemmArenaScratch(t *testing.T) {
	ar := tensor.NewArena()
	r := tensor.NewRNG(9)
	m, n, k := 33, 65, 129
	a := r.RandTensor(m, k)
	b := r.RandTensor(k, n)
	c := make([]float32, m*n)
	Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, c, ar)
	st := ar.Stats().Snapshot()
	if st.Gets == 0 {
		t.Fatal("GEMM scratch bypassed the allocator")
	}
	if st.Gets != st.Puts {
		t.Fatalf("scratch leak: %d gets vs %d puts", st.Gets, st.Puts)
	}
	// Steady state: a second identical call must not grow the heap.
	before := ar.Stats().Snapshot().AllocBytes
	clear(c)
	Gemm(1, m, n, k, a.Data(), k, false, b.Data(), n, false, c, ar)
	if after := ar.Stats().Snapshot().AllocBytes; after != before {
		t.Fatalf("second run allocated fresh heap: %d -> %d bytes", before, after)
	}
}

// TestHotPathAllocFree pins the serving contract: with a warm arena, a
// prepacked GEMM performs zero heap allocations per call — including edge
// tiles, whose stack scratch must not escape through the microkernel
// dispatch (a func-value dispatch would heap-allocate it every call).
func TestHotPathAllocFree(t *testing.T) {
	r := tensor.NewRNG(61)
	m, n, k := 37, 13, 300 // tails in every dimension
	a := r.RandTensor(m, k)
	b := r.RandTensor(k, n)
	pb := PrepackB(b.Data(), k, n, n, false)
	c := make([]float32, m*n)
	ar := tensor.NewArena()
	GemmPackedB(1, m, a.Data(), k, false, pb, c, ar) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		GemmPackedB(1, m, a.Data(), k, false, pb, c, ar)
	})
	if allocs != 0 {
		t.Errorf("warm prepacked GEMM allocates %v times per call, want 0", allocs)
	}
}

// refIm2col is the obviously-correct patch-matrix builder.
func refIm2col(x []float32, c, h, w, kh, kw, sh, sw, pt, pl, oh, ow int) []float32 {
	col := make([]float32, c*kh*kw*oh*ow)
	n := oh * ow
	for ci := 0; ci < c; ci++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				r := (ci*kh+ky)*kw + kx
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy := oy*sh - pt + ky
						ix := ox*sw - pl + kx
						var v float32
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = x[(ci*h+iy)*w+ix]
						}
						col[r*n+oy*ow+ox] = v
					}
				}
			}
		}
	}
	return col
}

func TestIm2colMatchesReference(t *testing.T) {
	r := tensor.NewRNG(31)
	cases := []struct{ c, h, w, kh, kw, sh, sw, pt, pl int }{
		{1, 5, 5, 3, 3, 1, 1, 1, 1},
		{3, 8, 6, 3, 3, 2, 2, 1, 1},
		{2, 7, 7, 5, 5, 1, 1, 2, 2},
		{4, 9, 11, 1, 1, 1, 1, 0, 0},
		{2, 6, 6, 3, 3, 3, 3, 0, 0},
		{1, 4, 4, 3, 3, 1, 1, 0, 2}, // asymmetric: left pad only
		{2, 10, 3, 7, 3, 2, 1, 3, 1},
		{2, 1, 1, 5, 5, 1, 1, 2, 2}, // kernel larger than input: all-pad fringes
	}
	for _, tc := range cases {
		x := r.RandTensor(tc.c, tc.h, tc.w)
		oh := (tc.h+2*tc.pt-tc.kh)/tc.sh + 1
		ow := (tc.w+2*tc.pl-tc.kw)/tc.sw + 1
		if oh <= 0 || ow <= 0 {
			t.Fatalf("bad case %+v", tc)
		}
		want := refIm2col(x.Data(), tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.sh, tc.sw, tc.pt, tc.pl, oh, ow)
		got := make([]float32, len(want))
		for i := range got {
			got[i] = -99 // poison: every element must be written
		}
		Im2col(got, x.Data(), tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.sh, tc.sw, tc.pt, tc.pl, oh, ow)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%+v: col[%d] = %v, want %v", tc, i, got[i], want[i])
				break
			}
		}
	}
}
