// Package kernels is the CPU kernel core behind the GEMM-shaped operators
// (MatMul, Gemm, Conv-as-im2col): a cache-blocked, register-tiled f32 GEMM
// in the BLIS/GotoBLAS style. Operands are repacked into panel layouts so
// the microkernel streams contiguous memory, the K dimension is blocked
// into KC panels that fit L2, and row panels are distributed across
// intra-op workers with tensor.ParallelRange.
//
// Constant operands (model weights) can be packed once at compile time —
// PrepackA/PrepackB — so steady-state inference pays only the microkernel;
// call-time packing draws its scratch from the run's allocator (the arena
// during serving), keeping the hot path allocation-flat.
//
// The microkernel computes an MR×NR tile of C with all accumulators in
// registers. On amd64 with AVX2+FMA it is hand-written assembly (4×16 tile,
// eight YMM accumulators); everywhere else a pure-Go fallback with
// bounds-check-eliminating slice patterns is used. Both consume the same
// packed layouts and sum in the same order; they differ only in FMA
// rounding, which the equivalence tests bound well under 1e-4.
package kernels

// Blocking parameters of the GEMM core. The microkernel updates an MR×NR
// tile of C; KC is the depth of one packed panel (an MR×KC A-strip is 4 KB
// and an NR×KC B-strip 16 KB, both L1-resident); MC bounds the rows of A
// one worker streams per panel (MC×KC×4 B ≈ 128 KB, L2-resident) and is
// also the parallel grain; NC is the outermost column blocking — the
// per-block packed-B working set (NC×KC×4 B ≈ 1 MB) stays L3-resident
// across the whole K sweep of that block.
const (
	MR = 4
	NR = 16
	KC = 256
	MC = 128
	NC = 1024
)

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ceilMul rounds x up to a multiple of m.
func ceilMul(x, m int) int { return (x + m - 1) / m * m }
