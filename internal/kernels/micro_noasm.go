//go:build !amd64

package kernels

// microKernel dispatches the MR×NR tile update (contract in micro.go):
// only the portable Go kernel exists off amd64.
func microKernel(kc int, a, b, c *float32, ldc int) {
	microGo(kc, a, b, c, ldc)
}

// MicroKernelName reports which microkernel implementation is active.
func MicroKernelName() string { return "go" }
