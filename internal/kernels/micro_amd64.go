//go:build amd64

package kernels

// Runtime CPU dispatch: the assembly microkernel needs AVX2 and FMA3, and
// the OS must have enabled YMM state (OSXSAVE + XCR0). Everything is
// probed directly via CPUID/XGETBV so the package stays dependency-free.

// useAVX2 is probed once at startup.
var useAVX2 = hasAVX2FMA()

// microKernel dispatches the MR×NR tile update (contract in micro.go).
// Both callees are direct calls — microAVX2 is //go:noescape and microGo
// provably leaks nothing — so a caller's scratch tile stays on its stack.
func microKernel(kc int, a, b, c *float32, ldc int) {
	if useAVX2 {
		microAVX2(kc, a, b, c, ldc)
		return
	}
	microGo(kc, a, b, c, ldc)
}

// MicroKernelName reports which microkernel implementation is active
// ("avx2" or "go"), for logs and benchmark labels.
func MicroKernelName() string {
	if useAVX2 {
		return "avx2"
	}
	return "go"
}

// microAVX2 is the hand-written 4×16 FMA microkernel (micro_amd64.s). It
// implements the microKernel contract exactly.
//
//go:noescape
func microAVX2(kc int, a, b, c *float32, ldc int)

// cpuidRaw executes CPUID with the given leaf/subleaf.
func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, c1, _ := cpuidRaw(1, 0)
	if c1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// XCR0 bits 1 and 2: XMM and YMM state saved/restored by the OS.
	xlo, _ := xgetbv0()
	if xlo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidRaw(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}
