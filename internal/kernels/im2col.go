package kernels

import "repro/internal/tensor"

// Im2colRows returns the row count (GEMM K) of the patch matrix for a
// group of c input channels under a kh×kw kernel.
func Im2colRows(c, kh, kw int) int { return c * kh * kw }

// Im2col expands one image group — c channels of an h×w plane, stored
// contiguously — into the K×N patch matrix that turns convolution into
// GEMM: K = c*kh*kw, N = oh*ow, and
//
//	col[(ci*kh+ky)*kw+kx][oy*ow+ox] = x[ci][oy*sh-pt+ky][ox*sw-pl+kx]
//
// with zeros outside the input (padding). Rows are built in parallel via
// tensor.ParallelRange; the stride-1 fast path turns each output row into
// one copy plus zeroed pad fringes. col must have K*N elements and may be
// uninitialized scratch — every element is written.
func Im2col(col, x []float32, c, h, w, kh, kw, sh, sw, pt, pl, oh, ow int) {
	rows := c * kh * kw
	// Single-worker runs build the rows inline — no closure allocation on
	// the steady-state serving path (see gemmCore).
	if tensor.IntraOpThreads() == 1 || rows <= kh*kw {
		im2colRows(col, x, h, w, kh, kw, sh, sw, pt, pl, oh, ow, 0, rows)
		return
	}
	tensor.ParallelRange(rows, kh*kw, func(rLo, rHi int) {
		im2colRows(col, x, h, w, kh, kw, sh, sw, pt, pl, oh, ow, rLo, rHi)
	})
}

// im2colRows materializes patch-matrix rows [rLo, rHi).
func im2colRows(col, x []float32, h, w, kh, kw, sh, sw, pt, pl, oh, ow, rLo, rHi int) {
	n := oh * ow
	plane := h * w
	for r := rLo; r < rHi; r++ {
		ci := r / (kh * kw)
		ky := r / kw % kh
		kx := r % kw
		dst := col[r*n : r*n+n]
		src := x[ci*plane : ci*plane+plane]
		for oy := 0; oy < oh; oy++ {
			iy := oy*sh - pt + ky
			drow := dst[oy*ow : oy*ow+ow]
			if iy < 0 || iy >= h {
				clear(drow)
				continue
			}
			srow := src[iy*w : iy*w+w]
			if sw == 1 {
				// Valid ox range: 0 <= ox - pl + kx < w, clamped to
				// [0, ow) and possibly empty (all-pad rows).
				lo := pl - kx
				if lo < 0 {
					lo = 0
				} else if lo > ow {
					lo = ow
				}
				hi := w + pl - kx
				if hi > ow {
					hi = ow
				}
				if hi < lo {
					hi = lo
				}
				clear(drow[:lo])
				if hi > lo {
					copy(drow[lo:hi], srow[lo-pl+kx:])
				}
				clear(drow[hi:])
			} else {
				for ox := 0; ox < ow; ox++ {
					ix := ox*sw - pl + kx
					if ix < 0 || ix >= w {
						drow[ox] = 0
					} else {
						drow[ox] = srow[ix]
					}
				}
			}
		}
	}
}
