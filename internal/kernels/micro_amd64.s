#include "textflag.h"

// func microAVX2(kc int, a, b, c *float32, ldc int)
//
// 4x16 f32 microkernel: C[0:4, 0:16] += A-strip · B-strip.
// The A strip is K-major groups of 4 row values (a[p*4+i]); the B strip is
// K-major groups of 16 column values (b[p*16+j]). The 4x16 accumulator
// tile lives in Y0-Y7 (two YMM per row); per k step we load the 16 B
// values once (Y8, Y9), broadcast each of the 4 A values and issue 8 FMAs.
TEXT ·microAVX2(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop:
	VMOVUPS      (DI), Y8
	VMOVUPS      32(DI), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y12
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VBROADCASTSS 12(SI), Y13
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ         $16, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          loop

	// Writeback: C row r += (Y2r, Y2r+1); rows are ldc*4 bytes apart.
	SHLQ    $2, R8
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS Y0, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y1, Y1
	VMOVUPS Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y2, Y2
	VMOVUPS Y2, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y3, Y3
	VMOVUPS Y3, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y4, Y4
	VMOVUPS Y4, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y5, Y5
	VMOVUPS Y5, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y6, Y6
	VMOVUPS Y6, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y7, Y7
	VMOVUPS Y7, 32(DX)

	VZEROUPPER
	RET

// func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
