package kernels

// Epilogue is an activation applied to C during the packed writeback of the
// GEMM core — the last moment the output tile is guaranteed cache-hot. The
// fusion pass (internal/passes) attaches one to a Conv/Gemm/MatMul node when
// the node's only consumer is a matching activation, turning Conv→BN→Relu
// into exactly one kernel invocation: BN is folded into the weights at
// compile time and the Relu rides the writeback here.
//
// Only activations whose value depends on nothing but the finished
// accumulator qualify (Relu, LeakyRelu, Clip); they are applied once per C
// element, after the final K panel has accumulated into it.
type Epilogue struct {
	Kind  EpiKind
	Alpha float32 // LeakyRelu slope
	Lo    float32 // Clip lower bound
	Hi    float32 // Clip upper bound
}

// EpiKind enumerates the fusable writeback activations.
type EpiKind uint8

const (
	// EpiNone is the zero Epilogue: a plain writeback.
	EpiNone EpiKind = iota
	// EpiRelu clamps negatives to zero.
	EpiRelu
	// EpiLeakyRelu scales negatives by Alpha.
	EpiLeakyRelu
	// EpiClip bounds values to [Lo, Hi].
	EpiClip
)

// None reports whether the epilogue is a no-op, letting hot paths skip the
// writeback sweep entirely.
func (e Epilogue) None() bool { return e.Kind == EpiNone }

// Val applies the epilogue to a single finished accumulator. The direct
// convolution loop and the Gemm beta/bias sweep use this form.
func (e Epilogue) Val(v float32) float32 {
	switch e.Kind {
	case EpiRelu:
		return max(v, 0)
	case EpiLeakyRelu:
		if v < 0 {
			return e.Alpha * v
		}
	case EpiClip:
		return min(max(v, e.Lo), e.Hi)
	}
	return v
}

// Apply applies the epilogue to a finished row slice of C in place. The
// kind switch is hoisted out of the element loop so each variant is a plain
// branch-per-element slice sweep.
func (e Epilogue) Apply(s []float32) {
	switch e.Kind {
	case EpiRelu:
		// Branchless: random-sign accumulators would mispredict a
		// comparison on roughly half the elements.
		for i, v := range s {
			s[i] = max(v, 0)
		}
	case EpiLeakyRelu:
		a := e.Alpha
		for i, v := range s {
			if v < 0 {
				s[i] = a * v
			}
		}
	case EpiClip:
		lo, hi := e.Lo, e.Hi
		for i, v := range s {
			s[i] = min(max(v, lo), hi)
		}
	}
}
