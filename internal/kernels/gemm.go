package kernels

import "repro/internal/tensor"

// Gemm computes C += alpha·op(A)·op(B) for row-major f32 matrices, packing
// both operands at call time into scratch drawn from alc (nil = heap; the
// executor passes the run's arena so steady-state serving recycles the
// scratch). op(A) is m×k stored with leading dimension lda, transposed
// when transA; op(B) is k×n with ldb/transB; C is m×n with leading
// dimension n and must be initialized (outputs are zero-filled by the
// tensor constructors, so += realizes a plain product).
func Gemm(alpha float32, m, n, k int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, c []float32, alc tensor.Allocator) {
	GemmEpi(alpha, m, n, k, a, lda, transA, b, ldb, transB, c, alc, Epilogue{})
}

// GemmEpi is Gemm with a fused writeback epilogue: epi is applied to every
// C element exactly once, after its final K panel has accumulated, while
// the tile is still cache-hot. An Epilogue zero value is a plain Gemm.
func GemmEpi(alpha float32, m, n, k int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, c []float32, alc tensor.Allocator, epi Epilogue) {
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		// Degenerate product contributes nothing, but the fused activation
		// still applies to C exactly as the unfused graph would.
		epi.Apply(c[:m*n])
		return
	}
	bbuf := tensor.AllocUninit(alc, PackedBSize(k, n))
	PackBInto(bbuf, b, k, n, ldb, transB)
	GemmBPackedEpi(alpha, m, n, k, a, lda, transA, bbuf, c, alc, epi)
	tensor.Free(alc, bbuf)
}

// GemmBPacked is Gemm with the right operand already in packed layout
// (PackBInto order) — either compile-time prepacked weights or a
// caller-owned scratch packing reused across several products (batched
// MatMul broadcasting one B).
func GemmBPacked(alpha float32, m, n, k int, a []float32, lda int, transA bool, bpacked []float32, c []float32, alc tensor.Allocator) {
	GemmBPackedEpi(alpha, m, n, k, a, lda, transA, bpacked, c, alc, Epilogue{})
}

// GemmBPackedEpi is GemmBPacked with a fused writeback epilogue.
func GemmBPackedEpi(alpha float32, m, n, k int, a []float32, lda int, transA bool, bpacked []float32, c []float32, alc tensor.Allocator, epi Epilogue) {
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		epi.Apply(c[:m*n]) // see GemmEpi
		return
	}
	abuf := tensor.AllocUninit(alc, PackedASize(m, k))
	// Fold alpha into the A packing: the microkernel then needs no scale.
	packAInto(abuf, a, m, k, lda, transA, alpha)
	gemmCore(m, n, k, abuf, bpacked, c, epi)
	tensor.Free(alc, abuf)
}

// GemmPackedB is GemmBPacked against a compile-time PackedB.
func GemmPackedB(alpha float32, m int, a []float32, lda int, transA bool, pb *PackedB, c []float32, alc tensor.Allocator) {
	GemmBPackedEpi(alpha, m, pb.N, pb.K, a, lda, transA, pb.buf, c, alc, Epilogue{})
}

// GemmPackedBEpi is GemmPackedB with a fused writeback epilogue.
func GemmPackedBEpi(alpha float32, m int, a []float32, lda int, transA bool, pb *PackedB, c []float32, alc tensor.Allocator, epi Epilogue) {
	GemmBPackedEpi(alpha, m, pb.N, pb.K, a, lda, transA, pb.buf, c, alc, epi)
}

// GemmPackedA computes C += pa·op(B) against a compile-time PackedA (Conv
// filters), packing only the call-varying right operand (the im2col patch
// matrix) into scratch from alc.
func GemmPackedA(pa *PackedA, n int, b []float32, ldb int, transB bool, c []float32, alc tensor.Allocator) {
	GemmPackedAEpi(pa, n, b, ldb, transB, c, alc, Epilogue{})
}

// GemmPackedAEpi is GemmPackedA with a fused writeback epilogue.
func GemmPackedAEpi(pa *PackedA, n int, b []float32, ldb int, transB bool, c []float32, alc tensor.Allocator, epi Epilogue) {
	if pa.M <= 0 || n <= 0 {
		return
	}
	if pa.K <= 0 {
		epi.Apply(c[:pa.M*n]) // see GemmEpi
		return
	}
	bbuf := tensor.AllocUninit(alc, PackedBSize(pa.K, n))
	PackBInto(bbuf, b, pa.K, n, ldb, transB)
	gemmCore(pa.M, n, pa.K, pa.buf, bbuf, c, epi)
	tensor.Free(alc, bbuf)
}

// gemmCore is the blocked macrokernel: both operands packed, C += Aᵖ·Bᵖ.
//
// Loop structure (GotoBLAS/BLIS, outermost first): C's columns are walked
// in NC blocks (the per-block packed-B working set, NC×KC×4 B, stays
// L3-resident); within a block the K dimension is walked in KC panels,
// accumulating into C so panels compose — each C element still sums in
// plain k order, so results are independent of the blocking; within a
// panel, row strips are distributed across intra-op workers in MC-row
// chunks (each worker's A sub-panel stays L2-resident), and each worker
// keeps one NR-wide B strip L1-resident while it sweeps the chunk's row
// strips. Edge tiles run the same microkernel into a scratch tile and
// mask the writeback, so the hot path has no bounds branches.
//
// The epilogue is applied inside the final K panel's writeback — each C
// element is finished exactly once, right after its last accumulation, so
// the activation costs no extra memory pass.
func gemmCore(m, n, k int, apacked, bpacked []float32, c []float32, epi Epilogue) {
	mStrips := (m + MR - 1) / MR
	nStrips := (n + NR - 1) / NR
	mPad := mStrips * MR
	nPad := nStrips * NR
	// Single-worker runs (the serving default: one lane per core, intra-op
	// parallelism off) call the panel kernel directly — no closure is
	// created, keeping steady-state inference allocation-flat.
	serial := tensor.IntraOpThreads() == 1 || mStrips <= MC/MR
	for jc := 0; jc < nStrips; jc += NC / NR {
		// Read-only rebind: capturing the written loop variable itself
		// would box it on the heap every iteration (see the alloc-free
		// hot-path contract pinned by TestHotPathAllocFree).
		jcLo, jcHi := jc, minInt(jc+NC/NR, nStrips)
		for p0 := 0; p0 < k; p0 += KC {
			kc := minInt(KC, k-p0)
			ap := apacked[mPad*p0:]
			bp := bpacked[nPad*p0:]
			panelEpi := Epilogue{}
			if p0+kc == k {
				panelEpi = epi
			}
			if serial {
				gemmPanel(m, n, kc, ap, bp, c, 0, mStrips, jcLo, jcHi, panelEpi)
			} else {
				tensor.ParallelRange(mStrips, MC/MR, func(lo, hi int) {
					gemmPanel(m, n, kc, ap, bp, c, lo, hi, jcLo, jcHi, panelEpi)
				})
			}
		}
	}
}

// gemmPanel runs one KC panel's macrokernel over the row strips
// [loStrip, hiStrip) and the column strips [loJ, hiJ) (one NC block),
// holding each NR-wide B strip L1-resident while it sweeps the rows. A
// non-empty epi (passed only for the final K panel) is applied to each C
// tile right after its writeback.
func gemmPanel(m, n, kc int, apacked, bpacked, c []float32, loStrip, hiStrip, loJ, hiJ int, epi Epilogue) {
	// Edge tiles compute into this stack tile and mask the writeback. It
	// must not escape — microKernel is a direct-dispatch call chain whose
	// pointer parameters provably don't leak (see micro.go), so taking
	// &tmp[0] is free of heap traffic.
	var tmp [MR * NR]float32
	for jr := loJ; jr < hiJ; jr++ {
		bs := bpacked[jr*NR*kc:]
		j0 := jr * NR
		cols := minInt(NR, n-j0)
		for ir := loStrip; ir < hiStrip; ir++ {
			as := apacked[ir*MR*kc:]
			i0 := ir * MR
			rows := minInt(MR, m-i0)
			if rows == MR && cols == NR {
				microKernel(kc, &as[0], &bs[0], &c[i0*n+j0], n)
				if !epi.None() {
					for i := 0; i < MR; i++ {
						epi.Apply(c[(i0+i)*n+j0 : (i0+i)*n+j0+NR])
					}
				}
				continue
			}
			clear(tmp[:])
			microKernel(kc, &as[0], &bs[0], &tmp[0], NR)
			for i := 0; i < rows; i++ {
				cr := c[(i0+i)*n+j0 : (i0+i)*n+j0+cols]
				tr := tmp[i*NR : i*NR+cols]
				for j, v := range tr {
					cr[j] += v
				}
			}
			if !epi.None() {
				for i := 0; i < rows; i++ {
					epi.Apply(c[(i0+i)*n+j0 : (i0+i)*n+j0+cols])
				}
			}
		}
	}
}

// NaiveGemm is the retained reference implementation: an unblocked ikj
// product with no data-dependent branches. It anchors the equivalence
// tests and the kernel benchmarks' baseline; nothing on a hot path calls
// it.
func NaiveGemm(alpha float32, m, n, k int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, c []float32) {
	for i := 0; i < m; i++ {
		row := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			var av float32
			if transA {
				av = a[p*lda+i]
			} else {
				av = a[i*lda+p]
			}
			av *= alpha
			if transB {
				for j := 0; j < n; j++ {
					row[j] += av * b[j*ldb+p]
				}
			} else {
				bp := b[p*ldb : p*ldb+n]
				for j, bv := range bp {
					row[j] += av * bv
				}
			}
		}
	}
}
