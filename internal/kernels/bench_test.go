package kernels

import (
	"testing"

	"repro/internal/tensor"
)

// BenchmarkGEMM is the PR's headline kernel benchmark: 512×512×512 f32
// with a compile-time-packed B (the serving shape: constant weights),
// reported in GFLOPS. Compare against BenchmarkGEMMNaive, the pre-kernel-
// core implementation.
func BenchmarkGEMM(b *testing.B) {
	const m, n, k = 512, 512, 512
	r := tensor.NewRNG(2)
	a := r.RandTensor(m, k)
	bm := r.RandTensor(k, n)
	pb := PrepackB(bm.Data(), k, n, n, false)
	c := make([]float32, m*n)
	ar := tensor.NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(c)
		GemmPackedB(1, m, a.Data(), k, false, pb, c, ar)
	}
	reportGFLOPS(b, m, n, k)
}

// BenchmarkGEMMCallTimePack includes both packings in the timed loop —
// the cost a non-constant operand pays.
func BenchmarkGEMMCallTimePack(b *testing.B) {
	const m, n, k = 512, 512, 512
	r := tensor.NewRNG(2)
	a := r.RandTensor(m, k)
	bm := r.RandTensor(k, n)
	c := make([]float32, m*n)
	ar := tensor.NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(c)
		Gemm(1, m, n, k, a.Data(), k, false, bm.Data(), n, false, c, ar)
	}
	reportGFLOPS(b, m, n, k)
}

// BenchmarkGEMMNaive is the pre-PR kernel shape: the unblocked ikj loop.
func BenchmarkGEMMNaive(b *testing.B) {
	const m, n, k = 512, 512, 512
	r := tensor.NewRNG(2)
	a := r.RandTensor(m, k)
	bm := r.RandTensor(k, n)
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(c)
		NaiveGemm(1, m, n, k, a.Data(), k, false, bm.Data(), n, false, c)
	}
	reportGFLOPS(b, m, n, k)
}

func reportGFLOPS(b *testing.B, m, n, k int) {
	b.Helper()
	flops := 2 * float64(m) * float64(n) * float64(k)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
