package kernels

// Packed operand layouts.
//
// Both packings split the K dimension into KC-deep panels. Within a panel,
// A is stored as strips of MR rows and B as strips of NR columns, each
// strip laid out K-major: element (i, p) of an A strip lives at p*MR+i and
// element (p, j) of a B strip at p*NR+j, exactly the streaming order the
// microkernel consumes. Strip tails past the matrix edge are zero-filled so
// the microkernel never branches on bounds; the driver masks the writeback
// instead.

// PackedASize returns the element count of the packed layout of an m×k
// left operand (rows padded to a multiple of MR).
func PackedASize(m, k int) int { return ceilMul(m, MR) * k }

// PackedBSize returns the element count of the packed layout of a k×n
// right operand (columns padded to a multiple of NR).
func PackedBSize(k, n int) int { return k * ceilMul(n, NR) }

// packAInto packs the logical m×k matrix A into dst, scaling by alpha.
// The source is row-major with leading dimension lda and holds Aᵀ when
// trans is set (so logical A[i,p] is a[p*lda+i]). dst needs
// PackedASize(m, k) elements; every element, including pad lanes, is
// written, so dst may be uninitialized scratch.
func packAInto(dst, a []float32, m, k, lda int, trans bool, alpha float32) {
	mPad := ceilMul(m, MR)
	for p0 := 0; p0 < k; p0 += KC {
		kc := minInt(KC, k-p0)
		base := mPad * p0
		for i0 := 0; i0 < m; i0 += MR {
			strip := dst[base+i0*kc : base+i0*kc+MR*kc]
			rows := minInt(MR, m-i0)
			if trans {
				for p := 0; p < kc; p++ {
					src := a[(p0+p)*lda+i0 : (p0+p)*lda+i0+rows]
					d := strip[p*MR : p*MR+MR]
					for i, v := range src {
						d[i] = alpha * v
					}
					for i := rows; i < MR; i++ {
						d[i] = 0
					}
				}
			} else {
				for i := 0; i < rows; i++ {
					src := a[(i0+i)*lda+p0 : (i0+i)*lda+p0+kc]
					for p, v := range src {
						strip[p*MR+i] = alpha * v
					}
				}
				for i := rows; i < MR; i++ {
					for p := 0; p < kc; p++ {
						strip[p*MR+i] = 0
					}
				}
			}
		}
	}
}

// PackBInto packs the logical k×n matrix B into dst. The source is
// row-major with leading dimension ldb and holds Bᵀ when trans is set
// (logical B[p,j] is b[j*ldb+p]). dst needs PackedBSize(k, n) elements and
// may be uninitialized scratch. Exposed so callers that run several GEMMs
// against one B (batched MatMul broadcasting its right operand) can pack
// once into their own scratch.
func PackBInto(dst, b []float32, k, n, ldb int, trans bool) {
	nPad := ceilMul(n, NR)
	for p0 := 0; p0 < k; p0 += KC {
		kc := minInt(KC, k-p0)
		base := nPad * p0
		for j0 := 0; j0 < n; j0 += NR {
			strip := dst[base+j0*kc : base+j0*kc+NR*kc]
			cols := minInt(NR, n-j0)
			if trans {
				for j := 0; j < cols; j++ {
					src := b[(j0+j)*ldb+p0 : (j0+j)*ldb+p0+kc]
					for p, v := range src {
						strip[p*NR+j] = v
					}
				}
				for j := cols; j < NR; j++ {
					for p := 0; p < kc; p++ {
						strip[p*NR+j] = 0
					}
				}
			} else {
				for p := 0; p < kc; p++ {
					src := b[(p0+p)*ldb+j0 : (p0+p)*ldb+j0+cols]
					d := strip[p*NR : p*NR+NR]
					copy(d, src)
					for j := cols; j < NR; j++ {
						d[j] = 0
					}
				}
			}
		}
	}
}

// PackedA is a left operand packed once — at compile time, for constant
// weights (Conv filters) — and reused by every subsequent GEMM call. It is
// immutable after creation and safe to share across concurrent runs.
type PackedA struct {
	M, K int
	buf  []float32
}

// PrepackA packs the logical m×k matrix a (see packAInto for lda/trans)
// into a heap-owned PackedA.
func PrepackA(a []float32, m, k, lda int, trans bool) *PackedA {
	buf := make([]float32, PackedASize(m, k))
	packAInto(buf, a, m, k, lda, trans, 1)
	return &PackedA{M: m, K: k, buf: buf}
}

// Bytes reports the packed footprint.
func (p *PackedA) Bytes() int64 { return 4 * int64(len(p.buf)) }

// PackedB is a right operand packed once at compile time (MatMul/Gemm
// weight matrices) and shared, immutable, by every run.
type PackedB struct {
	K, N int
	buf  []float32
}

// PrepackB packs the logical k×n matrix b (see PackBInto for ldb/trans)
// into a heap-owned PackedB.
func PrepackB(b []float32, k, n, ldb int, trans bool) *PackedB {
	buf := make([]float32, PackedBSize(k, n))
	PackBInto(buf, b, k, n, ldb, trans)
	return &PackedB{K: k, N: n, buf: buf}
}

// Bytes reports the packed footprint.
func (p *PackedB) Bytes() int64 { return 4 * int64(len(p.buf)) }
