package kernels

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// refEpilogue mirrors Epilogue.Val in plain float64-free code for the
// reference results.
func refEpilogue(epi Epilogue, v float32) float32 { return epi.Val(v) }

// TestGemmEpilogueEquivalence checks that the fused writeback epilogue
// computes exactly activation(naive GEMM) across tile-edge shapes, both
// packed-operand entry points, and every epilogue kind. K spans multiple
// KC panels in the large case so the "apply only on the final panel" rule
// is exercised.
func TestGemmEpilogueEquivalence(t *testing.T) {
	r := tensor.NewRNG(11)
	epis := []Epilogue{
		{Kind: EpiRelu},
		{Kind: EpiLeakyRelu, Alpha: 0.1},
		{Kind: EpiClip, Lo: -0.5, Hi: 0.5},
	}
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 5, 7},
		{MR, NR, KC},
		{MR + 1, NR + 3, KC + 9}, // edge tiles + second K panel
		{37, 61, KC*2 + 5},       // three K panels
	}
	for _, sh := range shapes {
		a := r.RandTensor(sh.m, sh.k).Data()
		b := r.RandTensor(sh.k, sh.n).Data()
		for _, epi := range epis {
			want := make([]float32, sh.m*sh.n)
			NaiveGemm(1, sh.m, sh.n, sh.k, a, sh.k, false, b, sh.n, false, want)
			for i, v := range want {
				want[i] = refEpilogue(epi, v)
			}

			got := make([]float32, sh.m*sh.n)
			GemmEpi(1, sh.m, sh.n, sh.k, a, sh.k, false, b, sh.n, false, got, nil, epi)
			checkClose(t, "GemmEpi", sh.m, sh.n, sh.k, got, want)

			pb := PrepackB(b, sh.k, sh.n, sh.n, false)
			got2 := make([]float32, sh.m*sh.n)
			GemmPackedBEpi(1, sh.m, a, sh.k, false, pb, got2, nil, epi)
			checkClose(t, "GemmPackedBEpi", sh.m, sh.n, sh.k, got2, want)

			pa := PrepackA(a, sh.m, sh.k, sh.k, false)
			got3 := make([]float32, sh.m*sh.n)
			GemmPackedAEpi(pa, sh.n, b, sh.n, false, got3, nil, epi)
			checkClose(t, "GemmPackedAEpi", sh.m, sh.n, sh.k, got3, want)
		}
	}
}

// TestGemmEpilogueAppliedOnce seeds C with a bias (the Conv lowering's
// bias-before-GEMM convention) and checks the epilogue sees bias+product,
// exactly once — a double application of Relu is invisible, so Clip with a
// tight window is used to catch it.
func TestGemmEpilogueAppliedOnce(t *testing.T) {
	r := tensor.NewRNG(5)
	m, n, k := 9, 33, KC+3
	a := r.RandTensor(m, k).Data()
	b := r.RandTensor(k, n).Data()
	bias := float32(0.25)
	epi := Epilogue{Kind: EpiClip, Lo: -0.3, Hi: 0.3}

	want := make([]float32, m*n)
	for i := range want {
		want[i] = bias
	}
	NaiveGemm(1, m, n, k, a, k, false, b, n, false, want)
	for i, v := range want {
		want[i] = epi.Val(v)
	}

	got := make([]float32, m*n)
	for i := range got {
		got[i] = bias
	}
	GemmEpi(1, m, n, k, a, k, false, b, n, false, got, nil, epi)
	checkClose(t, "bias+epilogue", m, n, k, got, want)
}

func checkClose(t *testing.T, name string, m, n, k int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("%s m=%d n=%d k=%d: element %d = %v, want %v", name, m, n, k, i, got[i], want[i])
		}
	}
}
