// Package cost implements the static weighted cost model of Section III-A:
// each operator is assigned a fixed weight — heavy DL operations like Conv
// and MatMul cost more than simple elementwise ones, with larger convolution
// kernels costing more than smaller ones — and the potential-parallelism
// factor of a dataflow graph is the total weighted node cost divided by the
// weighted critical-path cost (with a unit overhead added per critical-path
// edge to model tensor-dependence overhead).
package cost

import (
	"repro/internal/graph"
)

// Model maps nodes to static costs. Implementations must be deterministic
// and safe for concurrent use.
type Model interface {
	// NodeCost returns the weighted execution cost of a node (>= 1).
	NodeCost(n *graph.Node) float64
	// EdgeCost returns the communication overhead charged per tensor
	// dependence on the critical path (the paper uses 1).
	EdgeCost() float64
}

// EdgeCoster is an optional refinement of Model: per-dependence message
// costs that depend on the communicating nodes (e.g. on the shipped tensor
// size). Schedulers and simulators prefer it over the flat EdgeCost when
// the model implements it.
type EdgeCoster interface {
	EdgeCostBetween(pred, succ *graph.Node) float64
}

// EdgeCostOf returns the model's cost for the dependence pred→succ, using
// EdgeCoster when available and the flat EdgeCost otherwise.
func EdgeCostOf(m Model, pred, succ *graph.Node) float64 {
	if ec, ok := m.(EdgeCoster); ok {
		return ec.EdgeCostBetween(pred, succ)
	}
	return m.EdgeCost()
}

// StaticModel is the paper's table of per-op weights. The zero value is NOT
// usable; construct with DefaultModel.
type StaticModel struct {
	// Weights maps op types to base costs; ops not present use DefaultWt.
	Weights map[string]float64
	// KernelScale scales Conv cost by kernel size class when > 0: a KxK
	// kernel contributes K*K/9 relative to the 3x3 baseline.
	KernelScale bool
	// DefaultWt is the cost of unlisted (assumed elementwise) ops.
	DefaultWt float64
	// Edge is the per-edge overhead on the critical path.
	Edge float64
}

// DefaultModel returns the weight table used throughout the reproduction,
// mirroring the paper's description: Conv/MatMul heavy (with 5x5 and 7x7
// kernels weighted above 3x3 and 1x1), pooling and normalization moderate,
// elementwise ops at unit cost.
func DefaultModel() *StaticModel {
	return &StaticModel{
		Weights: map[string]float64{
			"Conv":               6,
			"MatMul":             8,
			"Gemm":               8,
			"MaxPool":            2,
			"AveragePool":        2,
			"GlobalAveragePool":  2,
			"BatchNormalization": 2,
			"LayerNormalization": 3,
			"Softmax":            3,
			"ReduceMean":         2,
			"Concat":             2,
			"Resize":             2,
			"Transpose":          2,
			"Gather":             1,
			"Slice":              1,
			"Split":              2,
			"Reshape":            1,
			"Flatten":            1,
			"Squeeze":            1,
			"Unsqueeze":          1,
			"Shape":              1,
			"Constant":           1,
			"Identity":           1,
			"Erf":                1,
			"FusedElementwise":   1, // k collapsed elementwise passes cost ~1 sweep
			"Relu":               1,
			"LeakyRelu":          1,
			"Sigmoid":            1,
			"Tanh":               1,
			"Add":                1,
			"Sub":                1,
			"Mul":                1,
			"Div":                1,
			"Pow":                1,
			"Sqrt":               1,
			"Exp":                1,
			"Neg":                1,
			"Clip":               1,
		},
		KernelScale: true,
		DefaultWt:   1,
		Edge:        1,
	}
}

// NodeCost implements Model.
func (m *StaticModel) NodeCost(n *graph.Node) float64 {
	w, ok := m.Weights[n.OpType]
	if !ok {
		w = m.DefaultWt
	}
	if m.KernelScale && n.OpType == "Conv" {
		if ks := n.Attrs.Ints("kernel_shape", nil); len(ks) == 2 {
			k := float64(ks[0]*ks[1]) / 9.0 // 3x3 baseline
			if k < 0.25 {
				k = 0.25 // 1x1 convs still do real work per output pixel
			}
			w *= k
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EdgeCost implements Model.
func (m *StaticModel) EdgeCost() float64 { return m.Edge }

// Rescale returns a copy of the model with each listed op's weight
// multiplied by its factor (ops absent from the model start from DefaultWt).
// The factors are the per-op measured/static ratios a live calibration
// report produces (exec.Calibration.Factors), so Rescale is the
// profile-guided feedback step: a static model whose relative weights match
// what the kernels actually cost on this host, still cheap and
// deterministic to evaluate at compile time.
func (m *StaticModel) Rescale(factors map[string]float64) *StaticModel {
	out := &StaticModel{
		Weights:     make(map[string]float64, len(m.Weights)+len(factors)),
		KernelScale: m.KernelScale,
		DefaultWt:   m.DefaultWt,
		Edge:        m.Edge,
	}
	for op, w := range m.Weights {
		out.Weights[op] = w
	}
	for op, f := range factors {
		if f <= 0 {
			continue
		}
		w, ok := out.Weights[op]
		if !ok {
			w = m.DefaultWt
		}
		out.Weights[op] = w * f
	}
	return out
}

// GraphCost sums the weighted cost of every node in g.
func GraphCost(g *graph.Graph, m Model) float64 {
	var total float64
	for _, n := range g.Nodes {
		total += m.NodeCost(n)
	}
	return total
}

// DistanceToEnd computes, for every node, the maximum weighted distance
// from that node to any sink: the node's own cost plus the heaviest
// downstream path, charging EdgeCost per traversed edge. This is the
// "distance pass" of the LC algorithm and also yields the critical path
// cost as the maximum over sources.
func DistanceToEnd(g *graph.Graph, m Model) (map[*graph.Node]float64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dist := make(map[*graph.Node]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		best := 0.0
		for _, s := range g.Successors(n) {
			if d := dist[s] + m.EdgeCost(); d > best {
				best = d
			}
		}
		dist[n] = best + m.NodeCost(n)
	}
	return dist, nil
}

// CriticalPath returns the heaviest source-to-sink path (as a node slice in
// execution order) and its weighted cost including per-edge overhead.
func CriticalPath(g *graph.Graph, m Model) ([]*graph.Node, float64, error) {
	dist, err := DistanceToEnd(g, m)
	if err != nil {
		return nil, 0, err
	}
	var start *graph.Node
	for _, n := range g.Sources() {
		if start == nil || dist[n] > dist[start] {
			start = n
		}
	}
	if start == nil {
		return nil, 0, nil
	}
	path := []*graph.Node{start}
	cur := start
	for {
		var next *graph.Node
		for _, s := range g.Successors(cur) {
			if next == nil || dist[s] > dist[next] {
				next = s
			}
		}
		if next == nil {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path, dist[start], nil
}

// Metrics is the per-model row of Table I.
type Metrics struct {
	Nodes        int
	NodeCost     float64
	CriticalPath float64
	Parallelism  float64
}

// ComputeMetrics evaluates the potential-parallelism factor of Section
// III-A: total weighted node cost over weighted critical-path cost.
func ComputeMetrics(g *graph.Graph, m Model) (Metrics, error) {
	_, cp, err := CriticalPath(g, m)
	if err != nil {
		return Metrics{}, err
	}
	total := GraphCost(g, m)
	par := 0.0
	if cp > 0 {
		par = total / cp
	}
	return Metrics{
		Nodes:        len(g.Nodes),
		NodeCost:     total,
		CriticalPath: cp,
		Parallelism:  par,
	}, nil
}
