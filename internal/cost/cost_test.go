package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// chain builds a linear graph of n Relu nodes.
func chain(n int) *graph.Graph {
	g := graph.New("chain")
	g.Inputs = []graph.ValueInfo{{Name: "v0"}}
	for i := 0; i < n; i++ {
		g.AddNode(nodeName(i), "Relu", []string{valName(i)}, []string{valName(i + 1)}, nil)
	}
	g.Outputs = []graph.ValueInfo{{Name: valName(n)}}
	return g
}

func nodeName(i int) string { return "n" + string(rune('A'+i%26)) + itoa(i) }
func valName(i int) string  { return "v" + itoa(i) }
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDefaultModelWeights(t *testing.T) {
	m := DefaultModel()
	conv := &graph.Node{OpType: "Conv", Attrs: ops.Attrs{"kernel_shape": []int{3, 3}}}
	relu := &graph.Node{OpType: "Relu"}
	if m.NodeCost(conv) <= m.NodeCost(relu) {
		t.Error("Conv not heavier than Relu")
	}
	if m.NodeCost(relu) != 1 {
		t.Errorf("Relu cost = %v, want 1", m.NodeCost(relu))
	}
	unknown := &graph.Node{OpType: "FancyOp"}
	if m.NodeCost(unknown) != m.DefaultWt {
		t.Errorf("unknown op cost = %v", m.NodeCost(unknown))
	}
}

func TestKernelScaling(t *testing.T) {
	m := DefaultModel()
	mk := func(k int) *graph.Node {
		return &graph.Node{OpType: "Conv", Attrs: ops.Attrs{"kernel_shape": []int{k, k}}}
	}
	c1, c3, c5, c7 := m.NodeCost(mk(1)), m.NodeCost(mk(3)), m.NodeCost(mk(5)), m.NodeCost(mk(7))
	if !(c1 < c3 && c3 < c5 && c5 < c7) {
		t.Errorf("kernel scaling broken: 1x1=%v 3x3=%v 5x5=%v 7x7=%v", c1, c3, c5, c7)
	}
	// 7x7 should be markedly (not marginally) heavier than 3x3, per paper.
	if c7/c3 < 3 {
		t.Errorf("7x7/3x3 ratio only %v", c7/c3)
	}
}

func TestDistanceToEndChain(t *testing.T) {
	g := chain(5)
	m := DefaultModel()
	dist, err := DistanceToEnd(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// Last node: cost 1. Each earlier node adds 1 (node) + 1 (edge).
	order, _ := g.TopoSort()
	for i, n := range order {
		want := float64(5-i) + float64(4-i) // nodes remaining + edges remaining
		if math.Abs(dist[n]-want) > 1e-9 {
			t.Errorf("dist[%s] = %v, want %v", n.Name, dist[n], want)
		}
	}
}

func TestCriticalPathPicksHeavyBranch(t *testing.T) {
	g := graph.New("fork")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("src", "Relu", []string{"x"}, []string{"s"}, nil)
	g.AddNode("heavy", "Conv", []string{"s"}, []string{"h"}, ops.Attrs{"kernel_shape": []int{7, 7}})
	g.AddNode("light", "Relu", []string{"s"}, []string{"l"}, nil)
	g.AddNode("join", "Add", []string{"h", "l"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	path, cp, err := CriticalPath(g, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range path {
		names[n.Name] = true
	}
	if !names["heavy"] || names["light"] {
		t.Errorf("critical path %v should route through heavy branch", path)
	}
	if cp <= 0 {
		t.Errorf("cp = %v", cp)
	}
}

func TestComputeMetricsChainBelowOne(t *testing.T) {
	// A pure chain has parallelism < 1 because edges add CP overhead
	// (paper: Squeezenet at 0.86x).
	g := chain(10)
	m, err := ComputeMetrics(g, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism >= 1 {
		t.Errorf("chain parallelism = %v, want < 1", m.Parallelism)
	}
	if m.Nodes != 10 || m.NodeCost != 10 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestComputeMetricsWideGraphAboveOne(t *testing.T) {
	// A wide fork-join with many parallel conv paths must show high
	// potential parallelism (paper: NASNet at 3.7x).
	g := graph.New("wide")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("fork", "Relu", []string{"x"}, []string{"f"}, nil)
	joinIns := []string{}
	for i := 0; i < 8; i++ {
		out := "branch" + itoa(i)
		g.AddNode("conv"+itoa(i), "Conv", []string{"f"}, []string{out}, ops.Attrs{"kernel_shape": []int{3, 3}})
		joinIns = append(joinIns, out)
	}
	g.AddNode("join", "Concat", joinIns, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	m, err := ComputeMetrics(g, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism <= 2 {
		t.Errorf("wide graph parallelism = %v, want > 2", m.Parallelism)
	}
}

func TestGraphCost(t *testing.T) {
	g := chain(4)
	if got := GraphCost(g, DefaultModel()); got != 4 {
		t.Errorf("GraphCost = %v", got)
	}
}

func TestDistanceToEndCyclicError(t *testing.T) {
	g := graph.New("cyc")
	g.AddNode("a", "Relu", []string{"vb"}, []string{"va"}, nil)
	g.AddNode("b", "Relu", []string{"va"}, []string{"vb"}, nil)
	if _, err := DistanceToEnd(g, DefaultModel()); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, _, err := CriticalPath(g, DefaultModel()); err == nil {
		t.Error("CriticalPath accepted cyclic graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New("empty")
	path, cp, err := CriticalPath(g, DefaultModel())
	if err != nil || path != nil || cp != 0 {
		t.Errorf("empty CP = %v %v %v", path, cp, err)
	}
	m, err := ComputeMetrics(g, DefaultModel())
	if err != nil || m.Parallelism != 0 {
		t.Errorf("empty metrics = %+v %v", m, err)
	}
}

// Property: on random DAGs, critical-path cost is at least the heaviest
// single node and at most total cost plus total edge overhead.
func TestCriticalPathBounds(t *testing.T) {
	m := DefaultModel()
	f := func(seed uint32, n0 uint8) bool {
		n := int(n0%40) + 2
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)+7), n)
		_, cp, err := CriticalPath(g, m)
		if err != nil {
			return false
		}
		var heaviest, total float64
		for _, nd := range g.Nodes {
			c := m.NodeCost(nd)
			total += c
			if c > heaviest {
				heaviest = c
			}
		}
		edges := float64(g.Stats().Edges) * m.EdgeCost()
		return cp >= heaviest-1e-9 && cp <= total+edges+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: distance-to-end is monotone along edges: dist(pred) >= dist(succ)
// + edge + cost(pred) - slack 0 ... i.e. dist(p) >= cost(p) + edge + dist(s)
// is an equality only for the max successor; inequality holds for all.
func TestDistanceMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)*13+1), 30)
		dist, err := DistanceToEnd(g, m)
		if err != nil {
			return false
		}
		for _, n := range g.Nodes {
			for _, s := range g.Successors(n) {
				if dist[n] < m.NodeCost(n)+m.EdgeCost()+dist[s]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
