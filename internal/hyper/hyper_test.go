package hyper

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
)

func squeezeClustering(t *testing.T) *core.Clustering {
	t.Helper()
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	cl, err := core.LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return cl.MergeClusters()
}

func TestSampleSuffixRoundTrip(t *testing.T) {
	if got := sampleSuffix("conv_1", 3); got != "conv_1#3" {
		t.Fatalf("suffix = %q", got)
	}
	if SampleOf("conv_1#3") != 3 {
		t.Fatalf("SampleOf = %d", SampleOf("conv_1#3"))
	}
	if SampleOf("conv_1") != -1 || SampleOf("x#y") != -1 {
		t.Error("SampleOf accepted non-replicated names")
	}
	if SampleOf("a#12") != 12 {
		t.Error("multi-digit sample index")
	}
}

func TestReplicateBatchStructure(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	bg, err := ReplicateBatch(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bg.Nodes) != 3*len(g.Nodes) {
		t.Errorf("replicated nodes = %d, want %d", len(bg.Nodes), 3*len(g.Nodes))
	}
	if len(bg.Inputs) != 3*len(g.Inputs) || len(bg.Outputs) != 3*len(g.Outputs) {
		t.Error("inputs/outputs not replicated per sample")
	}
	// Weights shared, not replicated.
	if len(bg.Initializers) != len(g.Initializers) {
		t.Errorf("initializers = %d, want %d (shared)", len(bg.Initializers), len(g.Initializers))
	}
	if err := bg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateBatchRejectsBadBatch(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	if _, err := ReplicateBatch(g, 0); err == nil {
		t.Error("batch 0 accepted")
	}
}

func TestReplicateBatchSamplesIndependent(t *testing.T) {
	// Different feeds per sample must give the per-sample results of
	// running the base graph on each feed alone.
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	bg, err := ReplicateBatch(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0 := models.RandomInputs(g, 100)
	f1 := models.RandomInputs(g, 200)
	feeds := exec.Env{}
	for k, v := range f0 {
		feeds[k+"#0"] = v
	}
	for k, v := range f1 {
		feeds[k+"#1"] = v
	}
	got, err := exec.RunSequential(bg, feeds)
	if err != nil {
		t.Fatal(err)
	}
	want0, _ := exec.RunSequential(g, f0)
	want1, _ := exec.RunSequential(g, f1)
	for k, w := range want0 {
		if !got[k+"#0"].Equal(w) {
			t.Errorf("sample 0 output %s differs", k)
		}
	}
	for k, w := range want1 {
		if !got[k+"#1"].Equal(w) {
			t.Errorf("sample 1 output %s differs", k)
		}
	}
}

func TestBuildHyperclusters(t *testing.T) {
	cl := squeezeClustering(t)
	h, err := Build(cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Lanes) != len(cl.Clusters) {
		t.Errorf("lanes = %d, want %d", len(h.Lanes), len(cl.Clusters))
	}
	total := 0
	for _, lane := range h.Lanes {
		total += len(lane)
	}
	if total != len(h.Graph.Nodes) {
		t.Errorf("lanes cover %d of %d nodes", total, len(h.Graph.Nodes))
	}
	// Lane 0 interleaves samples: both sample tags must appear.
	seen := map[int]bool{}
	for _, n := range h.Lanes[0] {
		seen[SampleOf(n.Name)] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("lane 0 does not interleave both samples")
	}
	if h.Switched {
		t.Error("plain build marked switched")
	}
}

func TestHyperclusterPlanRunsCorrectly(t *testing.T) {
	cl := squeezeClustering(t)
	for _, switched := range []bool{false, true} {
		var h *Hyperclustering
		var err error
		if switched {
			h, err = BuildSwitched(cl, 2)
		} else {
			h, err = Build(cl, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		plan, err := exec.NewPlanOrdered(h.Graph, h.Lanes)
		if err != nil {
			plan, err = exec.NewPlan(h.Graph, h.Lanes)
			if err != nil {
				t.Fatal(err)
			}
		}
		feeds := models.RandomInputs(h.Graph, 7)
		want, err := exec.RunSequential(h.Graph, feeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Run(feeds)
		if err != nil {
			t.Fatalf("switched=%v: %v", switched, err)
		}
		for k, w := range want {
			if !got[k].Equal(w) {
				t.Errorf("switched=%v: output %s differs", switched, k)
			}
		}
	}
}

func TestSwitchedBalancesLoad(t *testing.T) {
	// The paper's Fig. 9 point: switched hyperclusters have better load
	// balance. Construct a two-cluster graph with skewed costs and check
	// the lane-cost spread shrinks.
	g := graph.New("skew")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	cur := "x"
	for i := 0; i < 6; i++ {
		out := "h" + string(rune('0'+i))
		name := "heavy" + string(rune('0'+i))
		g.AddNode(name, "Conv", []string{cur}, []string{out}, nil)
		cur = out
	}
	g.AddNode("side", "Relu", []string{"h0"}, []string{"s0"}, nil)
	g.AddNode("join", "Add", []string{cur, "s0"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}

	cl, err := core.LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) < 2 {
		t.Skip("need at least 2 clusters for the balance check")
	}
	spread := func(costs []float64) float64 {
		lo, hi := costs[0], costs[0]
		for _, c := range costs {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi - lo
	}
	plain, err := Build(cl, 4)
	if err != nil {
		t.Fatal(err)
	}
	switched, err := BuildSwitched(cl, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := spread(plain.LaneCosts(cl))
	ss := spread(switched.LaneCosts(cl))
	if ss > ps {
		t.Errorf("switched spread %v worse than plain %v", ss, ps)
	}
	if ss >= ps && ps > 0 {
		t.Logf("spread plain=%v switched=%v", ps, ss)
	}
}

func TestSwitchedRotatesAssignments(t *testing.T) {
	cl := squeezeClustering(t)
	h, err := BuildSwitched(cl, len(cl.Clusters)+1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Switched {
		t.Error("switched flag not set")
	}
	// Lane 0's sample-1 portion must come from cluster 1, not cluster 0:
	// find a sample-1 node in lane 0 and check it belongs to cluster 1 in
	// the base clustering.
	base := cl.ClusterOf()
	found := false
	for _, n := range h.Lanes[0] {
		if SampleOf(n.Name) == 1 {
			orig := n.Name[:len(n.Name)-2] // strip "#1"
			if base[orig] != 1 {
				t.Fatalf("lane0 sample1 node %s from cluster %d, want 1", n.Name, base[orig])
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no sample-1 node in lane 0")
	}
}

func TestHyperclusterSimulatedSpeedupGrowsWithBatch(t *testing.T) {
	// Fig. 13's shape: speedup rises with batch size (more independent
	// work fills slack).
	cl := squeezeClustering(t)
	m := cost.DefaultModel()
	var prev float64
	for _, batch := range []int{1, 2, 4} {
		h, err := Build(cl, batch)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := exec.NewPlanOrdered(h.Graph, h.Lanes)
		if err != nil {
			plan, err = exec.NewPlan(h.Graph, h.Lanes)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := exec.Simulate(plan, m)
		if err != nil {
			t.Fatal(err)
		}
		sp := res.Speedup()
		if sp < prev-0.05 {
			t.Errorf("batch %d speedup %v fell below previous %v", batch, sp, prev)
		}
		prev = sp
	}
}

func TestEmptyClusteringRejected(t *testing.T) {
	g := graph.New("empty")
	cl := &core.Clustering{Graph: g, Model: cost.DefaultModel()}
	if _, err := Build(cl, 2); err == nil {
		t.Error("empty clustering accepted")
	}
}
