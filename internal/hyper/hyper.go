// Package hyper implements hyperclustering and switched hyperclustering
// (Section III-E): when inference runs with a small batch size > 1, the
// per-sample clusters are replicated across the batch and their operations
// interleaved into "hyperclusters", so a lane that would sit in
// communication slack waiting for another cluster's tensor works on a
// different sample instead. Switched hyperclustering additionally rotates
// which cluster each lane executes per sample, balancing lane loads.
package hyper

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
)

// sampleSuffix tags a value or node name with its batch-sample index.
func sampleSuffix(name string, s int) string {
	return fmt.Sprintf("%s#%d", name, s)
}

// SampleName tags a value or node name with its batch-sample index — the
// naming convention of ReplicateBatch. Serving layers use it to assemble
// feeds for (and split outputs of) a batch-keyed hyperclustered program:
// sample s of graph input "in" is fed as SampleName("in", s).
func SampleName(name string, s int) string { return sampleSuffix(name, s) }

// BaseName strips the sample suffix added by SampleName/ReplicateBatch,
// returning the original batch-1 value name. Names without a valid suffix
// are returned unchanged.
func BaseName(name string) string {
	if SampleOf(name) < 0 {
		return name
	}
	return name[:strings.LastIndexByte(name, '#')]
}

// SampleOf recovers the sample index of a replicated node name, or -1
// (a trailing '#' with no digits is not a sample suffix).
func SampleOf(name string) int {
	i := strings.LastIndexByte(name, '#')
	if i < 0 || i == len(name)-1 {
		return -1
	}
	n := 0
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// ReplicateBatch builds a graph holding `batch` independent copies of g,
// one per sample. Node, activation and graph input/output names gain a
// "#s" suffix; initializers (weights) are shared unsuffixed, exactly as a
// multi-sample inference shares model parameters.
func ReplicateBatch(g *graph.Graph, batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("hyper: batch must be >= 1, got %d", batch)
	}
	out := graph.New(fmt.Sprintf("%s_batch%d", g.Name, batch))
	for name, t := range g.Initializers {
		out.AddInitializer(name, t)
	}
	rename := func(v string, s int) string {
		if g.IsInitializer(v) {
			return v
		}
		return sampleSuffix(v, s)
	}
	for s := 0; s < batch; s++ {
		for _, in := range g.Inputs {
			out.Inputs = append(out.Inputs, graph.ValueInfo{
				Name: sampleSuffix(in.Name, s), Shape: in.Shape,
			})
		}
		for _, n := range g.Nodes {
			ins := make([]string, len(n.Inputs))
			for i, v := range n.Inputs {
				ins[i] = rename(v, s)
			}
			outs := make([]string, len(n.Outputs))
			for i, v := range n.Outputs {
				outs[i] = sampleSuffix(v, s)
			}
			out.AddNode(sampleSuffix(n.Name, s), n.OpType, ins, outs, n.Attrs)
		}
		for _, o := range g.Outputs {
			out.Outputs = append(out.Outputs, graph.ValueInfo{
				Name: sampleSuffix(o.Name, s), Shape: o.Shape,
			})
		}
	}
	out.Reindex()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("hyper: replicated graph invalid: %w", err)
	}
	return out, nil
}

// Hyperclustering is the result of building hyperclusters: the replicated
// batch graph plus one node lane per original cluster, each lane holding
// the cluster's operations for every sample, interleaved round-robin.
type Hyperclustering struct {
	Graph *graph.Graph
	Lanes [][]*graph.Node
	Batch int
	// Switched records whether cluster-rotation (switched hyperclustering)
	// was applied.
	Switched bool
}

// Build creates plain hyperclusters from a batch-1 clustering (Fig. 8):
// lane j executes cluster j's operations for sample 0, 1, …, interleaved
// operation-by-operation, so a wait for a remote tensor of one sample can
// be overlapped with compute of another.
func Build(cl *core.Clustering, batch int) (*Hyperclustering, error) {
	return build(cl, batch, false)
}

// BuildSwitched creates switched hyperclusters (Fig. 9): lane j executes
// cluster (j+s) mod m for sample s, rotating assignments so lane loads
// equalize when cluster costs are skewed.
func BuildSwitched(cl *core.Clustering, batch int) (*Hyperclustering, error) {
	return build(cl, batch, true)
}

func build(cl *core.Clustering, batch int, switched bool) (*Hyperclustering, error) {
	bg, err := ReplicateBatch(cl.Graph, batch)
	if err != nil {
		return nil, err
	}
	m := len(cl.Clusters)
	if m == 0 {
		return nil, fmt.Errorf("hyper: empty clustering")
	}
	byName := make(map[string]*graph.Node, len(bg.Nodes))
	for _, n := range bg.Nodes {
		byName[n.Name] = n
	}
	lanes := make([][]*graph.Node, m)
	for j := 0; j < m; j++ {
		// Collect each sample's op list for the cluster this lane runs.
		perSample := make([][]*graph.Node, batch)
		maxLen := 0
		for s := 0; s < batch; s++ {
			cj := j
			if switched {
				cj = (j + s) % m
			}
			src := cl.Clusters[cj].Nodes
			lane := make([]*graph.Node, len(src))
			for i, n := range src {
				rn := byName[sampleSuffix(n.Name, s)]
				if rn == nil {
					return nil, fmt.Errorf("hyper: replicated node %s missing", sampleSuffix(n.Name, s))
				}
				lane[i] = rn
			}
			perSample[s] = lane
			if len(lane) > maxLen {
				maxLen = len(lane)
			}
		}
		// Round-robin interleave across samples.
		var lane []*graph.Node
		for i := 0; i < maxLen; i++ {
			for s := 0; s < batch; s++ {
				if i < len(perSample[s]) {
					lane = append(lane, perSample[s][i])
				}
			}
		}
		lanes[j] = lane
	}
	return &Hyperclustering{Graph: bg, Lanes: lanes, Batch: batch, Switched: switched}, nil
}

// LaneCosts returns the total node cost per lane under the clustering's
// model — the quantity switched hyperclustering balances (the paper's
// "5 and 3 operations versus 5 and 2" example).
func (h *Hyperclustering) LaneCosts(cl *core.Clustering) []float64 {
	costs := make([]float64, len(h.Lanes))
	for i, lane := range h.Lanes {
		for _, n := range lane {
			costs[i] += cl.Model.NodeCost(n)
		}
	}
	return costs
}
