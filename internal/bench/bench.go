// Package bench regenerates every table and figure of the paper's
// evaluation section (Tables I–VIII, Figs. 12–14) against this
// reproduction. Each regenerator prints the same rows/series the paper
// reports, side by side with the published numbers.
//
// Measurement methodology (documented in EXPERIMENTS.md): the reproduction
// host may have a single core, while the paper used a 12-core Xeon. Runtime
// tables therefore use real measured per-node kernel durations replayed
// through a deterministic discrete-event simulator of a 12-core machine
// with paper-equivalent (Python-process-queue) message costs; wall-clock
// parallel runs remain available through cmd/ramiel -run for hosts with
// real cores.
package bench

import (
	"fmt"
	"strings"
	"sync"

	ramiel "repro"
	"repro/internal/exec"
)

// Opts bundles the harness parameters.
type Opts struct {
	// ImageSize for vision models (the paper uses full-size inputs; the
	// reproduction scales down, default 64).
	ImageSize int
	// Reps is the number of measurement repetitions per node.
	Reps int
	// Cores is the simulated machine's core count (paper: 12).
	Cores int
	// IOSBlockCap bounds the IOS dynamic program's exact-DP block size.
	IOSBlockCap int
}

// Default returns the options used by cmd/benchtab.
func Default() Opts {
	return Opts{ImageSize: 64, Reps: 2, Cores: 12, IOSBlockCap: 16}
}

// modelCtx caches everything the tables need per model.
type modelCtx struct {
	name  string
	g     *ramiel.Graph
	feeds ramiel.Env

	lc       *ramiel.Program // plain linear clustering
	lcNoMrg  *ramiel.Program // merge ablation
	pruned   *ramiel.Program // LC + const-prop + DCE
	cloned   *ramiel.Program // LC + cloning
	best     *ramiel.Program // LC + prune + clone
	measured *exec.MeasuredModel
	prMeas   *exec.MeasuredModel // measured on the pruned graph
	clMeas   *exec.MeasuredModel // measured on the cloned graph
	bestMeas *exec.MeasuredModel
}

// harness lazily builds and caches model contexts.
type harness struct {
	opts Opts
	mu   sync.Mutex
	ctx  map[string]*modelCtx
}

func newHarness(opts Opts) *harness {
	return &harness{opts: opts, ctx: map[string]*modelCtx{}}
}

func (h *harness) model(name string) (*modelCtx, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.ctx[name]; ok {
		return c, nil
	}
	g, err := ramiel.BuildModel(name, ramiel.ModelConfig{ImageSize: h.opts.ImageSize})
	if err != nil {
		return nil, err
	}
	c := &modelCtx{name: name, g: g, feeds: ramiel.RandomInputs(g, 1)}

	// The paper's pipeline has no operator-fusion pass; compiling the
	// table variants WithoutFusion keeps node counts, op granularity and
	// the Table I parallelism factors comparable to the published numbers.
	// (Fusion stays on by default everywhere else — it is a serving-side
	// optimization layered on top of the reproduction.)
	if c.lc, err = ramiel.Compile(g, ramiel.WithoutFusion()); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if c.lcNoMrg, err = ramiel.Compile(g, ramiel.WithoutMerge(), ramiel.WithoutFusion()); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if c.pruned, err = ramiel.Compile(g, ramiel.WithPrune(), ramiel.WithoutFusion()); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if c.cloned, err = ramiel.Compile(g, ramiel.WithClone(), ramiel.WithoutFusion()); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if c.best, err = ramiel.Compile(g, ramiel.WithPrune(), ramiel.WithClone(), ramiel.WithoutFusion()); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	measure := func(p *ramiel.Program) (*exec.MeasuredModel, error) {
		feeds := ramiel.RandomInputs(p.Graph, 1)
		mm, err := exec.MeasureCosts(p.Graph, feeds, h.opts.Reps, 0)
		if err != nil {
			return nil, err
		}
		return mm.PaperEquivalentQueues(), nil
	}
	if c.measured, err = measure(c.lc); err != nil {
		return nil, fmt.Errorf("%s: measure: %w", name, err)
	}
	if c.prMeas, err = measure(c.pruned); err != nil {
		return nil, fmt.Errorf("%s: measure pruned: %w", name, err)
	}
	if c.clMeas, err = measure(c.cloned); err != nil {
		return nil, fmt.Errorf("%s: measure cloned: %w", name, err)
	}
	if c.bestMeas, err = measure(c.best); err != nil {
		return nil, fmt.Errorf("%s: measure best: %w", name, err)
	}
	h.ctx[name] = c
	return c, nil
}

// simSpeedup runs the DES for a program against a measured model.
func simSpeedup(p *ramiel.Program, mm *exec.MeasuredModel) (seqMs, parMs, speedup float64, err error) {
	res, err := exec.Simulate(p.Plan, mm)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.TotalWork / 1000, res.Makespan / 1000, res.Speedup(), nil
}

// tb is a minimal text-table builder.
type tb struct {
	b strings.Builder
}

func (t *tb) title(s string)                 { fmt.Fprintf(&t.b, "%s\n%s\n", s, strings.Repeat("-", len(s))) }
func (t *tb) row(format string, args ...any) { fmt.Fprintf(&t.b, format+"\n", args...) }
func (t *tb) blank()                         { t.b.WriteByte('\n') }
func (t *tb) String() string                 { return t.b.String() }
