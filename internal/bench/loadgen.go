package bench

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadGen is an open-loop load generator: requests fire at their scheduled
// arrival instants regardless of how many earlier requests are still in
// flight. That is the property that makes overload measurable — a
// closed-loop driver (issue, wait, issue) self-throttles exactly when the
// system saturates, hiding the queueing collapse that admission control
// exists to prevent.
type LoadGen struct {
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration is how long arrivals are generated for.
	Duration time.Duration
	// Timeout bounds each request's context (0 = no per-request deadline).
	Timeout time.Duration
	// Do runs one request. i is the arrival index. The returned error is
	// passed to Classify.
	Do func(ctx context.Context, i int) error
	// Classify buckets a completion for the report ("ok", "shed",
	// "timeout", ...). Nil classifies by err == nil into "ok"/"error".
	Classify func(err error) string
}

// ClassStats aggregates one completion class.
type ClassStats struct {
	Count   int64
	Latency *obs.Histogram
}

// LoadReport is the outcome of a Run: every offered arrival is accounted
// for in exactly one class (lost or duplicated responses would show up as
// a class-count sum that disagrees with Offered).
type LoadReport struct {
	Offered int64
	Classes map[string]*ClassStats
}

// Completed sums completions across classes.
func (r *LoadReport) Completed() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.Count
	}
	return n
}

// Class returns the stats for a class, or an empty zero-count ClassStats.
func (r *LoadReport) Class(name string) *ClassStats {
	if c, ok := r.Classes[name]; ok {
		return c
	}
	return &ClassStats{Latency: &obs.Histogram{}}
}

// Run generates arrivals on a fixed open-loop clock and waits for every
// issued request to complete before returning.
func (g *LoadGen) Run(ctx context.Context) *LoadReport {
	classify := g.Classify
	if classify == nil {
		classify = func(err error) string {
			if err != nil {
				return "error"
			}
			return "ok"
		}
	}
	interval := time.Duration(float64(time.Second) / g.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	n := int(g.Duration / interval)
	if n < 1 {
		n = 1
	}

	report := &LoadReport{Offered: int64(n), Classes: map[string]*ClassStats{}}
	var mu sync.Mutex
	record := func(class string, elapsed time.Duration) {
		mu.Lock()
		c, ok := report.Classes[class]
		if !ok {
			c = &ClassStats{Latency: &obs.Histogram{}}
			report.Classes[class] = c
		}
		c.Count++
		mu.Unlock()
		// Histogram is internally atomic; only the map needs the lock.
		c.Latency.Record(elapsed)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		// Sleep to the scheduled instant (not for the interval): a late
		// wakeup does not push later arrivals back, preserving the offered
		// rate under scheduler noise.
		if d := start.Add(time.Duration(i) * interval).Sub(time.Now()); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rctx := ctx
			if g.Timeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, g.Timeout)
				defer cancel()
			}
			issued := time.Now()
			err := g.Do(rctx, i)
			record(classify(err), time.Since(issued))
		}(i)
	}
	wg.Wait()
	return report
}
