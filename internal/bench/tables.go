package bench

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/sched"
)

// Table1 reproduces "Potential parallelism that exists in ML dataflow
// graphs": node counts, weighted node cost, weighted critical path and the
// parallelism factor, next to the paper's numbers.
func Table1(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table I — Potential parallelism of ML dataflow graphs")
	t.row("%-13s %7s %9s %9s %7s | %7s %7s (paper)", "Model", "#Nodes", "NodeCost", "CPCost", "||ism", "#Nodes", "||ism")
	m := cost.DefaultModel()
	for _, name := range models.TableOrder {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		met, err := cost.ComputeMetrics(c.g, m)
		if err != nil {
			return "", err
		}
		ref := models.PaperRefs[name]
		t.row("%-13s %7d %9.0f %9.0f %6.2fx | %7d %6.2fx", name,
			met.Nodes, met.NodeCost, met.CriticalPath, met.Parallelism,
			ref.Nodes, ref.Parallelism)
	}
	return t.String(), nil
}

// Table2 reproduces "Number of clusters formed, before and after cluster
// merging".
func Table2(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table II — Clusters before and after Cluster Merging")
	t.row("%-13s %8s %8s | %8s %8s (paper)", "Model", "Before", "After", "Before", "After")
	for _, name := range models.TableOrder {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		ref := models.PaperRefs[name]
		t.row("%-13s %8d %8d | %8d %8d", name,
			c.lcNoMrg.NumClusters(), c.lc.NumClusters(),
			ref.ClustersPreMrg, ref.ClustersPost)
	}
	return t.String(), nil
}

// Table3 reproduces "Cluster size post constant propagation and dead-code
// elimination" for the constant-bearing models.
func Table3(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table III — Clusters after Constant Propagation + DCE")
	t.row("%-13s %8s %8s | %8s %8s (paper)", "Model", "Before", "After", "Before", "After")
	for _, name := range []string{"yolo_v5", "nasnet", "bert"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		ref := models.PaperRefs[name]
		t.row("%-13s %8d %8d | %8d %8d", name,
			c.lc.NumClusters(), c.pruned.NumClusters(),
			ref.ClustersPost, ref.ClustersDCE)
	}
	return t.String(), nil
}

// Table4 reproduces "Performance of Linear Clustering": sequential vs
// parallel time and speedup, using measured kernel durations replayed on a
// simulated 12-core machine with paper-equivalent queue costs.
func Table4(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table IV — Performance of Linear Clustering (simulated 12-core, measured kernel costs)")
	t.row("%-13s %6s %9s %9s %8s | %8s (paper)", "Model", "#Clus", "Seq(ms)", "Par(ms)", "Speedup", "Speedup")
	for _, name := range models.TableOrder {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		seq, par, sp, err := simSpeedup(c.lc, c.measured)
		if err != nil {
			return "", err
		}
		ref := models.PaperRefs[name]
		t.row("%-13s %6d %9.2f %9.2f %7.2fx | %7.2fx", name,
			c.lc.NumClusters(), seq, par, sp, ref.SpeedupLC)
	}
	return t.String(), nil
}

// Table5 reproduces "LC + downstream intra-op parallelism": parallel and
// sequential times with 2 and 4 intra-op threads; the comparison baseline
// is pure intra-op (sequential plan with the same thread count), as in the
// paper.
func Table5(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table V — LC + downstream intra-op parallelism (both sides intra-op enabled)")
	t.row("%-13s | %8s %8s %8s | %8s %8s %8s | %8s", "Model",
		"Par2(ms)", "Seq2(ms)", "Speedup2", "Par4(ms)", "Seq4(ms)", "Speedup4", "BestOvrl")
	rows := []string{"squeezenet", "googlenet", "inception_v3", "inception_v4", "retinanet", "nasnet"}
	for _, name := range rows {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		lanes := c.lc.NumClusters()
		bestSeq, bestPar := -1.0, -1.0
		cells := make([]float64, 0, 6)
		for _, threads := range []int{2, 4} {
			conf := exec.IntraOpConfig{Threads: threads, Cores: opts.Cores}
			parModel := exec.WithIntraOp(c.measured, conf, lanes)
			parRes, err := exec.Simulate(c.lc.Plan, parModel)
			if err != nil {
				return "", err
			}
			seqModel := exec.WithIntraOp(c.measured, conf, 1)
			seqPlan, err := exec.SequentialPlan(c.lc.Graph)
			if err != nil {
				return "", err
			}
			seqRes, err := exec.Simulate(seqPlan, seqModel)
			if err != nil {
				return "", err
			}
			par := parRes.Makespan / 1000
			seq := seqRes.Makespan / 1000
			cells = append(cells, par, seq, seq/par)
			if bestSeq < 0 || seq < bestSeq {
				bestSeq = seq
			}
			if bestPar < 0 || par < bestPar {
				bestPar = par
			}
		}
		t.row("%-13s | %8.2f %8.2f %7.2fx | %8.2f %8.2f %7.2fx | %7.2fx", name,
			cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], bestSeq/bestPar)
	}
	return t.String(), nil
}

// Table6 reproduces "LC augmented with constant propagation and DCE".
func Table6(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table VI — LC + Constant Propagation + DCE")
	t.row("%-13s %8s %8s | %8s %8s (paper)", "Model", "S_LC", "S_LC+DCE", "S_LC", "S_LC+DCE")
	for _, name := range []string{"yolo_v5", "bert", "nasnet"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		_, _, lcSp, err := simSpeedup(c.lc, c.measured)
		if err != nil {
			return "", err
		}
		// Pruned speedup is measured against the UNPRUNED sequential time:
		// DCE removes work, so both the numerator and the clustering
		// improve.
		prRes, err := exec.Simulate(c.pruned.Plan, c.prMeas)
		if err != nil {
			return "", err
		}
		baseSeq := c.measured.TotalMicros()
		dceSp := baseSeq / prRes.Makespan
		ref := models.PaperRefs[name]
		t.row("%-13s %7.2fx %7.2fx | %7.2fx %7.2fx", name, lcSp, dceSp, ref.SpeedupLC, ref.SpeedupDCE)
	}
	return t.String(), nil
}

// Table7 reproduces "overall impact of LC, CP+DCE and cloning".
func Table7(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table VII — Overall: LC + CP/DCE + Cloning")
	t.row("%-13s %8s %8s %9s %9s | %8s %9s (paper)", "Model",
		"S_LC", "S_+DCE", "S_+Clone", "S_Overall", "S_LC", "S_Overall")
	for _, name := range models.TableOrder {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		_, _, lcSp, err := simSpeedup(c.lc, c.measured)
		if err != nil {
			return "", err
		}
		baseSeq := c.measured.TotalMicros()
		prRes, err := exec.Simulate(c.pruned.Plan, c.prMeas)
		if err != nil {
			return "", err
		}
		clRes, err := exec.Simulate(c.cloned.Plan, c.clMeas)
		if err != nil {
			return "", err
		}
		bestRes, err := exec.Simulate(c.best.Plan, c.bestMeas)
		if err != nil {
			return "", err
		}
		dceSp := baseSeq / prRes.Makespan
		cloneSp := baseSeq / clRes.Makespan
		overall := baseSeq / bestRes.Makespan
		if lcSp > overall {
			overall = lcSp // "overall" is the best of the variants
		}
		if dceSp > overall {
			overall = dceSp
		}
		if cloneSp > overall {
			overall = cloneSp
		}
		ref := models.PaperRefs[name]
		t.row("%-13s %7.2fx %7.2fx %8.2fx %8.2fx | %7.2fx %8.2fx", name,
			lcSp, dceSp, cloneSp, overall, ref.SpeedupLC, ref.SpeedupOverall)
	}
	return t.String(), nil
}

// Table8 reproduces the comparison with the IOS inter-operator scheduler:
// achieved speedup and compile time for both systems on the shared
// benchmarks.
func Table8(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Table VIII — Ours vs IOS (speedup and compile time)")
	t.row("%-13s %9s %10s %9s %10s %9s", "Model", "S_Ours", "CT_Ours", "S_IOS", "CT_IOS", "DPstates")
	for _, name := range []string{"squeezenet", "inception_v3", "nasnet"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		// Ours: best variant speedup, pipeline compile time.
		bestRes, err := exec.Simulate(c.best.Plan, c.bestMeas)
		if err != nil {
			return "", err
		}
		oursSp := c.measured.TotalMicros() / bestRes.Makespan
		oursCT := c.best.CompileTime

		iosOpts := sched.DefaultIOSOptions()
		iosOpts.MaxBlockChains = opts.IOSBlockCap
		iosStart := time.Now()
		iosSched, err := sched.IOS(c.lc.Graph, c.measured, iosOpts)
		if err != nil {
			return "", err
		}
		iosCT := time.Since(iosStart)
		iosSp := 0.0
		if iosSched.Makespan > 0 {
			iosSp = c.measured.TotalMicros() / iosSched.Makespan
		}
		t.row("%-13s %8.2fx %10s %8.2fx %10s %9d", name,
			oursSp, fmtDur(oursCT), iosSp, fmtDur(iosCT), iosSched.StatesExplored)
	}
	t.blank()
	t.row("Paper: squeezenet 0.95x/2.2s vs IOS 1.15x/60s; inception 1.55x/5.2s vs 1.59x/60s;")
	t.row("       nasnet 1.91x/9.7s vs 1.4x/5400s — LC compiles 10-500x faster at similar runtime.")
	return t.String(), nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
