package bench

import (
	"repro/internal/exec"
	"repro/internal/models"
)

// Fig12 reproduces "Performance uplift of cloned models versus non-cloned
// models": cloning's relative improvement over plain LC (paper: up to 8%,
// applied to the smaller conv graphs).
func Fig12(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Fig. 12 — Cloning uplift over plain LC (simulated, measured costs)")
	t.row("%-13s %8s %9s %8s %9s", "Model", "S_LC", "S_Clone", "Uplift", "#Clones")
	for _, name := range []string{"squeezenet", "googlenet", "inception_v3", "inception_v4", "retinanet"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		_, _, lcSp, err := simSpeedup(c.lc, c.measured)
		if err != nil {
			return "", err
		}
		clRes, err := exec.Simulate(c.cloned.Plan, c.clMeas)
		if err != nil {
			return "", err
		}
		cloneSp := c.measured.TotalMicros() / clRes.Makespan
		t.row("%-13s %7.2fx %8.2fx %+7.1f%% %9d", name, lcSp, cloneSp,
			(cloneSp/lcSp-1)*100, c.cloned.CloneReport.AddedNodes)
	}
	t.blank()
	t.row("Paper: cloning gives a moderate boost, up to 8%%, on the smaller conv graphs.")
	return t.String(), nil
}

// Fig13 reproduces "Performance of hyperclustering with batch sizes of
// 2, 4, 8, 12, with and without intra-op": speedup of the hyperclustered
// parallel program over the sequential batched run.
func Fig13(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Fig. 13 — Hyperclustering speedup vs batch size (simulated 12-core)")
	t.row("%-13s %6s | %10s %10s", "Model", "Batch", "NoIntraOp", "IntraOp2")
	for _, name := range []string{"squeezenet", "googlenet", "inception_v3"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		for _, batch := range []int{2, 4, 8, 12} {
			hp, err := c.lc.Hypercluster(batch, false)
			if err != nil {
				return "", err
			}
			feeds := models.RandomInputs(hp.Graph, 1)
			mm, err := exec.MeasureCosts(hp.Graph, feeds, 1, 0)
			if err != nil {
				return "", err
			}
			mm.PaperEquivalentQueues()
			res, err := exec.Simulate(hp.Plan, mm)
			if err != nil {
				return "", err
			}
			conf := exec.IntraOpConfig{Threads: 2, Cores: opts.Cores}
			intraModel := exec.WithIntraOp(mm, conf, len(hp.Plan.Lanes))
			resIntra, err := exec.Simulate(hp.Plan, intraModel)
			if err != nil {
				return "", err
			}
			seqPlan, err := exec.SequentialPlan(hp.Graph)
			if err != nil {
				return "", err
			}
			seqIntra, err := exec.Simulate(seqPlan, exec.WithIntraOp(mm, conf, 1))
			if err != nil {
				return "", err
			}
			t.row("%-13s %6d | %9.2fx %9.2fx", name, batch,
				res.Speedup(), seqIntra.Makespan/resIntra.Makespan)
		}
		t.blank()
	}
	t.row("Paper: speedup rises with batch size (up to the hardware thread limit).")
	return t.String(), nil
}

// Fig14 reproduces "Switched hyperclustering with batch sizes of 2, 3, 4
// for Squeezenet, with and without intra-op", comparing plain and switched
// hypercluster variants.
func Fig14(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Fig. 14 — Switched hyperclustering on Squeezenet (simulated 12-core)")
	t.row("%6s | %9s %9s %8s | %10s %10s", "Batch", "Plain", "Switched", "Uplift", "Plain+IOp", "Switch+IOp")
	c, err := h.model("squeezenet")
	if err != nil {
		return "", err
	}
	for _, batch := range []int{2, 3, 4} {
		var sp [4]float64
		for i, variant := range []struct {
			switched bool
			threads  int
		}{{false, 1}, {true, 1}, {false, 2}, {true, 2}} {
			hp, err := c.lc.Hypercluster(batch, variant.switched)
			if err != nil {
				return "", err
			}
			feeds := models.RandomInputs(hp.Graph, 1)
			mm, err := exec.MeasureCosts(hp.Graph, feeds, 1, 0)
			if err != nil {
				return "", err
			}
			mm.PaperEquivalentQueues()
			var res exec.SimResult
			if variant.threads > 1 {
				conf := exec.IntraOpConfig{Threads: variant.threads, Cores: opts.Cores}
				res, err = exec.Simulate(hp.Plan, exec.WithIntraOp(mm, conf, len(hp.Plan.Lanes)))
				if err != nil {
					return "", err
				}
				seqPlan, err2 := exec.SequentialPlan(hp.Graph)
				if err2 != nil {
					return "", err2
				}
				seqRes, err2 := exec.Simulate(seqPlan, exec.WithIntraOp(mm, conf, 1))
				if err2 != nil {
					return "", err2
				}
				sp[i] = seqRes.Makespan / res.Makespan
			} else {
				res, err = exec.Simulate(hp.Plan, mm)
				if err != nil {
					return "", err
				}
				sp[i] = res.Speedup()
			}
		}
		t.row("%6d | %8.2fx %8.2fx %+7.1f%% | %9.2fx %9.2fx", batch,
			sp[0], sp[1], (sp[1]/sp[0]-1)*100, sp[2], sp[3])
	}
	t.blank()
	t.row("Paper: switched hyperclusters improve load balance, up to ~30%% in the best cases.")
	return t.String(), nil
}
