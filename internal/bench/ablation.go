package bench

import (
	"fmt"
	"time"

	ramiel "repro"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/models"
)

// AblationMerge quantifies the cluster-merging pass (DESIGN.md ablation 1):
// simulated makespan and message counts with and without Algorithms 2-3.
func AblationMerge(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Ablation — Cluster merging on/off")
	t.row("%-13s %10s %10s | %10s %10s | %9s %9s", "Model",
		"ClusNoMrg", "ClusMerged", "SpdNoMrg", "SpdMerged", "XEdgeNoM", "XEdgeMrg")
	for _, name := range models.TableOrder {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		noRes, err := exec.Simulate(c.lcNoMrg.Plan, c.measured)
		if err != nil {
			return "", err
		}
		mrgRes, err := exec.Simulate(c.lc.Plan, c.measured)
		if err != nil {
			return "", err
		}
		t.row("%-13s %10d %10d | %9.2fx %9.2fx | %9d %9d", name,
			c.lcNoMrg.NumClusters(), c.lc.NumClusters(),
			noRes.Speedup(), mrgRes.Speedup(),
			c.lcNoMrg.Clustering.CrossEdges(), c.lc.Clustering.CrossEdges())
	}
	return t.String(), nil
}

// AblationEdgeCost sweeps the static model's per-edge overhead weight and
// reports the resulting potential-parallelism factor (the CP metric's
// sensitivity, DESIGN.md ablation 2).
func AblationEdgeCost(opts Opts) (string, error) {
	t := &tb{}
	t.title("Ablation — Edge-overhead weight in the potential-parallelism metric")
	t.row("%-13s | %8s %8s %8s %8s", "Model", "edge=0", "edge=1", "edge=2", "edge=4")
	for _, name := range models.TableOrder {
		g, err := ramiel.BuildModel(name, ramiel.ModelConfig{ImageSize: opts.ImageSize})
		if err != nil {
			return "", err
		}
		var cells []float64
		for _, e := range []float64{0, 1, 2, 4} {
			m := cost.DefaultModel()
			m.Edge = e
			met, err := cost.ComputeMetrics(g, m)
			if err != nil {
				return "", err
			}
			cells = append(cells, met.Parallelism)
		}
		t.row("%-13s | %7.2fx %7.2fx %7.2fx %7.2fx", name, cells[0], cells[1], cells[2], cells[3])
	}
	t.blank()
	t.row("Higher edge weight depresses the metric most for long thin graphs (squeezenet).")
	return t.String(), nil
}

// AblationCloneThreshold sweeps the cloning cost bound (DESIGN.md ablation
// 4): clones made and simulated speedup per threshold.
func AblationCloneThreshold(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Ablation — Cloning cost threshold")
	t.row("%-13s | %22s %22s %22s", "Model", "cone<=10", "cone<=40", "cone<=120")
	for _, name := range []string{"squeezenet", "googlenet", "inception_v3"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		var cells []string
		for _, maxCost := range []float64{10, 40, 120} {
			co := ramiel.CloneOptions{MaxConeCost: maxCost, MaxConeNodes: 24, MaxFanout: 4, TopFraction: 0.5, MaxClones: 192}
			prog, err := ramiel.Compile(c.g, ramiel.WithClone(co), ramiel.WithoutFusion())
			if err != nil {
				return "", err
			}
			feeds := models.RandomInputs(prog.Graph, 1)
			mm, err := exec.MeasureCosts(prog.Graph, feeds, 1, 0)
			if err != nil {
				return "", err
			}
			mm.PaperEquivalentQueues()
			res, err := exec.Simulate(prog.Plan, mm)
			if err != nil {
				return "", err
			}
			sp := c.measured.TotalMicros() / res.Makespan
			cells = append(cells, cellFmt(prog.CloneReport.AddedNodes, sp))
		}
		t.row("%-13s | %22s %22s %22s", name, cells[0], cells[1], cells[2])
	}
	return t.String(), nil
}

func cellFmt(clones int, sp float64) string {
	return fmt.Sprintf("%d clones, %.2fx", clones, sp)
}

// AblationChanDepth measures real executor wall time across channel buffer
// depths (DESIGN.md ablation 3). Pure wall-clock: depends on host cores.
func AblationChanDepth(opts Opts) (string, error) {
	h := newHarness(opts)
	t := &tb{}
	t.title("Ablation — Executor channel buffer depth (wall clock, this host)")
	t.row("%-13s | %10s %10s %10s", "Model", "depth=1", "depth=4", "depth=16")
	for _, name := range []string{"squeezenet", "googlenet"} {
		c, err := h.model(name)
		if err != nil {
			return "", err
		}
		var cells []string
		for _, depth := range []int{1, 4, 16} {
			c.lc.Plan.ChanDepth = depth
			_, prof, err := c.lc.RunProfiled(c.feeds)
			if err != nil {
				return "", err
			}
			cells = append(cells, prof.Wall.Round(10*time.Microsecond).String())
		}
		c.lc.Plan.ChanDepth = 1
		t.row("%-13s | %10s %10s %10s", name, cells[0], cells[1], cells[2])
	}
	return t.String(), nil
}
