package fleet

import (
	"sort"
	"strconv"
)

// vnodesPerReplica is how many virtual nodes each replica contributes to
// the hash ring. 64 keeps the per-replica share of the keyspace within a
// few percent of even for small fleets while the ring stays tiny (a few KB
// of sorted points).
const vnodesPerReplica = 64

// ring is a consistent-hash ring over replica indices. Keys are model
// names: hashing the model (rather than the request) pins every request
// for a model to the same replica, so that replica's program cache,
// prepacked weights, and session arenas stay warm for it — and adding or
// removing a replica only remaps the keys that replica's arc owned.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

type ringPoint struct {
	hash uint64
	idx  int
}

// newRing builds the ring from replica names. Names must be distinct —
// the ring positions are derived from them, which is what makes routing
// stable across fronts and restarts.
func newRing(names []string) *ring {
	pts := make([]ringPoint, 0, len(names)*vnodesPerReplica)
	for i, name := range names {
		for v := 0; v < vnodesPerReplica; v++ {
			pts = append(pts, ringPoint{fnv64(name + "#" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].idx < pts[b].idx
	})
	return &ring{points: pts, n: len(names)}
}

// order appends the replica indices for key to out in preference order:
// the first point at or clockwise of the key's hash owns it, and each
// further distinct replica along the walk is the next spillover target.
// out is caller scratch (reused across calls to avoid per-request
// allocation); every replica index appears exactly once.
func (r *ring) order(key string, out []int) []int {
	out = out[:0]
	if r.n == 0 {
		return out
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		idx := r.points[(start+i)%len(r.points)].idx
		seen := false
		for _, o := range out {
			if o == idx {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, idx)
		}
	}
	return out
}

// fnv64 is FNV-1a over the key bytes, finished with a 64-bit avalanche
// mix. Deterministic across processes (unlike maphash), which is what lets
// independent fronts agree on placement; the finalizer matters because raw
// FNV of short, similar strings ("r0#17", "model3") yields numerically
// adjacent hashes that would clump every vnode of a replica — and every
// key — onto one arc of the ring.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
