package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// memFake is a fakeReplica that also exports a memory-headroom signal, the
// way Local and probed Remote replicas do.
type memFake struct {
	*fakeReplica
	free  atomic.Int64
	known atomic.Bool
}

func newMemFake(name string, workers int) *memFake {
	m := &memFake{fakeReplica: newFake(name, workers, 0)}
	m.known.Store(true)
	m.free.Store(1 << 20)
	return m
}

func (m *memFake) MemFree() (int64, bool) { return m.free.Load(), m.known.Load() }

// TestRoutingSkipsMemoryPressuredReplica: a replica reporting zero memory
// headroom is treated like a saturated one — requests spill past it to a
// ring member with headroom, and it rejoins routing when headroom returns.
func TestRoutingSkipsMemoryPressuredReplica(t *testing.T) {
	a, b := newMemFake("r0", 2), newMemFake("r1", 2)
	front := New(Config{}, a, b)
	ctx := context.Background()

	_, _, info, err := front.Infer(ctx, "squeezenet", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	owner, other := a, b
	if info.Replica == b.name {
		owner, other = b, a
	}

	owner.free.Store(0)
	for i := 0; i < 10; i++ {
		_, _, info, err := front.Infer(ctx, "squeezenet", nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if info.Replica != other.name {
			t.Fatalf("request %d routed to memory-pressured owner %s", i, info.Replica)
		}
		if !info.Spilled {
			t.Errorf("request %d off the owner not marked Spilled", i)
		}
	}

	// Whole fleet pressured: routing falls back to least-queued instead of
	// refusing — the chosen replica's own admission sheds if it must.
	other.free.Store(0)
	if _, _, _, err := front.Infer(ctx, "squeezenet", nil, false); err != nil {
		t.Fatalf("fully-pressured fleet refused instead of falling back: %v", err)
	}

	// Headroom returns → the owner serves again.
	owner.free.Store(1 << 20)
	other.free.Store(1 << 20)
	_, _, info2, err := front.Infer(ctx, "squeezenet", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Replica != owner.name || info2.Spilled {
		t.Errorf("after recovery routed to %s (spilled %v), want owner %s", info2.Replica, info2.Spilled, owner.name)
	}

	snap := front.Snapshot()
	for _, rs := range snap.Replicas {
		if !rs.MemGoverned {
			t.Errorf("replica %s snapshot not marked mem-governed", rs.Name)
		}
		if rs.MemHeadroomBytes != 1<<20 {
			t.Errorf("replica %s headroom = %d, want %d", rs.Name, rs.MemHeadroomBytes, 1<<20)
		}
	}

	rec := httptest.NewRecorder()
	front.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "ramielfe_replica_mem_headroom_bytes") {
		t.Error("/metrics missing ramielfe_replica_mem_headroom_bytes for governed replicas")
	}
}

// TestUngovernedReplicaNeverMemPressured: replicas without a headroom
// signal (plain fakes, unprobed remotes) are routed normally — absence of
// the signal must not read as pressure.
func TestUngovernedReplicaNeverMemPressured(t *testing.T) {
	f := newFake("r0", 2, 0)
	if memPressured(f) {
		t.Fatal("replica with no memory signal treated as pressured")
	}
	m := newMemFake("r1", 2)
	m.known.Store(false) // governed type, signal not yet known (probe pending)
	m.free.Store(0)
	if memPressured(m) {
		t.Fatal("replica with unknown headroom treated as pressured")
	}
	m.known.Store(true)
	if !memPressured(m) {
		t.Fatal("zero known headroom not treated as pressured")
	}
}

// TestFrontBodyTooLarge: the front's own HTTP surface caps request bodies
// before routing — oversized POSTs get 413 with cause body_too_large.
func TestFrontBodyTooLarge(t *testing.T) {
	front := New(Config{MaxBodyBytes: 256}, newFake("r0", 2, 0))
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	big := `{"model":"m","inputs":{"x":{"shape":[4],"data":[` + strings.Repeat("1,", 4000) + `1]}}}`
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var er struct {
		Cause string `json:"cause"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "body_too_large" {
		t.Errorf("cause = %q, want body_too_large", er.Cause)
	}
}
