package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// orderedFakes builds n fakes named r0..rn-1 and returns them in the
// ring's preference order for model, so tests can address "the owner" and
// "the first backup" without depending on hash placement.
func orderedFakes(t *testing.T, n int, model string, workers int, exec time.Duration) ([]*fakeReplica, *Front, func(Config) *Front) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	reps := make([]Replica, n)
	names := make([]string, n)
	for i := range fakes {
		fakes[i] = newFake(fmt.Sprintf("r%d", i), workers, exec)
		reps[i] = fakes[i]
		names[i] = fakes[i].name
	}
	order := newRing(names).order(model, nil)
	ordered := make([]*fakeReplica, n)
	for i, idx := range order {
		ordered[i] = fakes[idx]
	}
	mk := func(cfg Config) *Front { return New(cfg, reps...) }
	return ordered, mk(Config{}), mk
}

func TestRetrySpillsToNextMemberOnReplicaFailure(t *testing.T) {
	fakes, _, mk := orderedFakes(t, 2, "m", 1, 0)
	owner, backup := fakes[0], fakes[1]
	front := mk(Config{MaxPending: 1})

	owner.fail(1, nil) // one transport failure: the replica "dies" mid-request
	outs, _, info, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil {
		t.Fatalf("request failed despite a healthy backup: %v", err)
	}
	_ = outs
	if info.Replica != backup.name {
		t.Errorf("winning replica = %q, want backup %q", info.Replica, backup.name)
	}
	if info.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", info.Attempts)
	}
	if !info.Spilled {
		t.Error("a request retried off its owner must report Spilled")
	}
	if owner.calls.Load() != 1 || backup.calls.Load() != 1 {
		t.Errorf("calls owner=%d backup=%d, want 1/1", owner.calls.Load(), backup.calls.Load())
	}
	snap := front.SnapshotModel("m")
	if snap.Retries != 1 || snap.RetryWins != 1 {
		t.Errorf("retries=%d retry_wins=%d, want 1/1", snap.Retries, snap.RetryWins)
	}
	// The retry rode inside the original request's pending slot: the
	// MaxPending=1 window was never violated and drains to zero.
	if snap.Admitted != 1 || snap.Pending != 0 {
		t.Errorf("admitted=%d pending=%d, want 1/0", snap.Admitted, snap.Pending)
	}
}

func TestNonRetryableErrorIsNotRetried(t *testing.T) {
	fakes, front, _ := orderedFakes(t, 2, "m", 1, 0)
	owner, backup := fakes[0], fakes[1]

	appErr := &ReplicaError{Replica: owner.name, Status: http.StatusBadRequest, Cause: "validation", Msg: "bad feeds"}
	owner.fail(1, appErr)
	_, _, _, err := front.Infer(context.Background(), "m", nil, false)
	var re *ReplicaError
	if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want the replica's 400 back unchanged", err)
	}
	if backup.calls.Load() != 0 {
		t.Errorf("backup saw %d calls — a 4xx must not burn a retry", backup.calls.Load())
	}
	if snap := front.SnapshotModel("m"); snap.Retries != 0 {
		t.Errorf("retries = %d, want 0", snap.Retries)
	}
}

func TestBreakerEjectsAndRecovers(t *testing.T) {
	fakes, _, mk := orderedFakes(t, 2, "m", 1, 0)
	owner, backup := fakes[0], fakes[1]
	front := mk(Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond, NoRetry: true})

	// Two consecutive transport failures trip the owner's breaker.
	owner.fail(1000, nil)
	for i := 0; i < 2; i++ {
		if _, _, _, err := front.Infer(context.Background(), "m", nil, false); !errors.Is(err, ErrInjected) {
			t.Fatalf("request %d: err = %v, want injected transport error (NoRetry)", i, err)
		}
	}
	ownerCalls := owner.calls.Load()

	// Open breaker: traffic routes around the owner without retries.
	for i := 0; i < 3; i++ {
		_, _, info, err := front.Infer(context.Background(), "m", nil, false)
		if err != nil {
			t.Fatalf("request with open breaker failed: %v", err)
		}
		if info.Replica != backup.name || !info.Spilled {
			t.Fatalf("request %d routed to %q (spilled %v), want backup %q via breaker ejection",
				i, info.Replica, info.Spilled, backup.name)
		}
	}
	if got := owner.calls.Load(); got != ownerCalls {
		t.Errorf("owner saw %d extra calls while its breaker was open", got-ownerCalls)
	}
	var ownerSnap ReplicaSnapshot
	for _, rs := range front.Snapshot().Replicas {
		if rs.Name == owner.name {
			ownerSnap = rs
		}
	}
	if ownerSnap.Breaker != "open" || ownerSnap.BreakerOpens != 1 {
		t.Errorf("owner breaker snapshot = %q/%d, want open/1", ownerSnap.Breaker, ownerSnap.BreakerOpens)
	}

	// After the cooldown the half-open probe re-admits a healthy owner.
	owner.fail(0, nil)
	time.Sleep(60 * time.Millisecond)
	_, _, info, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if info.Replica != owner.name {
		t.Fatalf("post-cooldown request routed to %q, want the owner %q as half-open probe", info.Replica, owner.name)
	}
	_, _, info, err = front.Infer(context.Background(), "m", nil, false)
	if err != nil || info.Replica != owner.name || info.Spilled {
		t.Errorf("after probe success traffic should be home: replica=%q spilled=%v err=%v",
			info.Replica, info.Spilled, err)
	}
}

func TestHedgeRescuesUnresponsiveReplica(t *testing.T) {
	fakes, _, mk := orderedFakes(t, 2, "m", 1, 0)
	owner, backup := fakes[0], fakes[1]
	front := mk(Config{HedgeDelay: 5 * time.Millisecond})

	owner.block = make(chan struct{}) // owner accepts the request and goes silent
	t0 := time.Now()
	_, _, info, err := front.Infer(context.Background(), "m", nil, false)
	took := time.Since(t0)
	if err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if info.Replica != backup.name || info.Attempts != 2 {
		t.Errorf("won by %q in %d attempts, want backup %q in 2", info.Replica, info.Attempts, backup.name)
	}
	if took > 2*time.Second {
		t.Errorf("hedge took %v — the silent owner's deadline leaked into the request", took)
	}
	snap := front.SnapshotModel("m")
	if snap.Hedges != 1 || snap.HedgeWins != 1 {
		t.Errorf("hedges=%d hedge_wins=%d, want 1/1", snap.Hedges, snap.HedgeWins)
	}
	close(owner.block)
}

func TestRetryBudgetBoundsAmplification(t *testing.T) {
	fakes, _, mk := orderedFakes(t, 2, "m", 1, 0)
	owner := fakes[0]
	// No refill (RetryBudget < 0) and breakers off: only the initial burst
	// (MaxPending/4 = 4 tokens) funds retries, then failures surface.
	front := mk(Config{MaxPending: 16, RetryBudget: -1, BreakerThreshold: -1})

	owner.fail(1<<30, nil)
	var okN, failN int
	for i := 0; i < 6; i++ {
		if _, _, _, err := front.Infer(context.Background(), "m", nil, false); err == nil {
			okN++
		} else if errors.Is(err, ErrInjected) {
			failN++
		} else {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if okN != 4 || failN != 2 {
		t.Errorf("ok=%d fail=%d, want 4 budget-funded retries then surfaced failures", okN, failN)
	}
	snap := front.SnapshotModel("m")
	if snap.Retries != 4 || snap.BudgetExhausted != 2 {
		t.Errorf("retries=%d budget_exhausted=%d, want 4/2", snap.Retries, snap.BudgetExhausted)
	}
}

// TestMembershipFlapDoesNotStrand covers the satellite case: a replica
// flapping out of membership must neither kill its in-flight requests nor
// wedge the pending window.
func TestMembershipFlapDoesNotStrand(t *testing.T) {
	fakes, front, _ := orderedFakes(t, 2, "m", 1, 0)
	owner, backup := fakes[0], fakes[1]

	owner.block = make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, _, err := front.Infer(context.Background(), "m", nil, false)
		done <- err
	}()
	for i := 0; front.SnapshotModel("m").Pending == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	// Owner flaps out: new traffic spills, the in-flight request lives on.
	owner.healthy.Store(false)
	_, _, info, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil || info.Replica != backup.name {
		t.Fatalf("during flap routed to %q (err %v), want backup %q", info.Replica, err, backup.name)
	}

	close(owner.block)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request stranded by membership flap: %v", err)
	}

	// Owner flaps back: traffic returns, nothing is stuck pending.
	owner.healthy.Store(true)
	_, _, info, err = front.Infer(context.Background(), "m", nil, false)
	if err != nil || info.Replica != owner.name {
		t.Errorf("after flap-back routed to %q (err %v), want owner %q", info.Replica, err, owner.name)
	}
	if got := front.SnapshotModel("m").Pending; got != 0 {
		t.Errorf("pending gauge = %d after flap sequence, want 0", got)
	}
}

// TestShedCarriesRetryAfter asserts the admission satellite: 429 sheds
// tell the client when to come back, derived from the predicted wait.
func TestShedCarriesRetryAfter(t *testing.T) {
	f := newFake("r0", 1, 0)
	f.block = make(chan struct{})
	front := New(Config{MaxPending: 1}, f)
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	body := `{"model":"m","inputs":{"x":{"shape":[1],"data":[1]}}}`
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	for i := 0; front.SnapshotModel("m").Pending == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 shed carried no Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	close(f.block)
	<-done
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport", &TransportError{Replica: "r0", Err: errors.New("connection refused")}, true},
		{"wrapped transport", fmt.Errorf("attempt 1: %w", &TransportError{Replica: "r0", Err: ErrInjected}), true},
		{"replica 500", &ReplicaError{Replica: "r0", Status: 500, Msg: "boom"}, true},
		{"replica 503", &ReplicaError{Replica: "r0", Status: 503, Msg: "draining"}, true},
		{"replica 400", &ReplicaError{Replica: "r0", Status: 400, Msg: "bad feeds"}, false},
		{"replica 404", &ReplicaError{Replica: "r0", Status: 404, Msg: "no model"}, false},
		{"shutdown", serve.ErrShutdown, true},
		{"batcher closed", serve.ErrBatcherClosed, true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"generic", errors.New("kernel exploded"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.onFailure()
		if !b.routable() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.onFailure() // third consecutive failure trips it
	if b.routable() {
		t.Fatal("breaker still routable after hitting the threshold")
	}
	if st, opens := b.snapshot(); st != "open" || opens != 1 {
		t.Fatalf("snapshot = %s/%d, want open/1", st, opens)
	}

	// Cooldown elapses: exactly one half-open probe slot.
	now = now.Add(time.Minute)
	if !b.routable() {
		t.Fatal("breaker not routable after cooldown")
	}
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatalf("first half-open claim = (%v, %v), want a consumed probe slot", ok, probe)
	}
	if b.routable() {
		t.Fatal("routable while the half-open probe slot is taken")
	}
	if ok, _ := b.claim(); ok {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Probe fails: re-open, cooldown restarts.
	b.onFailure()
	if b.routable() {
		t.Fatal("routable immediately after a failed half-open probe")
	}
	if st, opens := b.snapshot(); st != "open" || opens != 2 {
		t.Fatalf("snapshot = %s/%d, want open/2", st, opens)
	}

	// Second probe succeeds: closed, full threshold restored.
	now = now.Add(time.Minute)
	if !b.routable() {
		t.Fatal("breaker not routable after second cooldown")
	}
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatal("probe slot unavailable after second cooldown")
	}
	b.onSuccess()
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	b.onFailure()
	b.onFailure()
	if !b.routable() {
		t.Fatal("streak not reset by the successful probe")
	}

	// A refunded claim frees the slot for the next request.
	b.onFailure() // trips again (2 + 1)
	now = now.Add(time.Minute)
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatal("claim after third cooldown refused")
	}
	b.refund()
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatal("refunded probe slot not reusable")
	}
}

// TestCancelledAttemptRefundsProbeSlot is the regression for the probe
// leak: an attempt that claimed the half-open slot and then ended with
// cancellation or deadline expiry (hedge loser cancelled by the winner,
// client disconnect) carries no health signal, but must hand the slot
// back — half-open has no cooldown escape, so a leaked slot ejects the
// replica from routing until process restart.
func TestCancelledAttemptRefundsProbeSlot(t *testing.T) {
	front := New(Config{BreakerThreshold: 1, BreakerCooldown: time.Minute}, newFake("r0", 1, 0))
	b := front.breakers[0]
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	b.onFailure() // threshold 1: trips immediately
	now = now.Add(time.Minute)
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatal("half-open claim refused after cooldown")
	}
	front.noteAttempt(0, true, context.Canceled)
	if ok, probe := b.claim(); !ok || !probe {
		t.Fatal("cancelled probe leaked the half-open slot: replica ejected until restart")
	}
	front.noteAttempt(0, true, context.DeadlineExceeded)
	if ok, _ := b.claim(); !ok {
		t.Fatal("deadline-expired probe leaked the half-open slot")
	}
	// An attempt that never held the slot must not refund someone else's
	// claim (it was launched while the breaker was closed).
	front.noteAttempt(0, false, context.Canceled)
	if ok, _ := b.claim(); ok {
		t.Fatal("non-probe cancellation refunded a probe slot it did not hold")
	}
}

// TestTriedSetWideFleet pins the retry bitset past the 64-replica word
// boundary the old uint64 mask silently truncated at.
func TestTriedSetWideFleet(t *testing.T) {
	var nilSet triedSet
	if nilSet.has(5) {
		t.Error("nil triedSet reported a member")
	}
	s := newTriedSet(130)
	for _, i := range []int{0, 63, 64, 65, 127, 128, 129} {
		if s.has(i) {
			t.Errorf("fresh set already contains %d", i)
		}
		s.add(i)
		if !s.has(i) {
			t.Errorf("added %d but has() = false", i)
		}
	}
	if s.has(1) || s.has(66) {
		t.Error("neighbors of added indices leaked into the set")
	}
}

// TestRetryRoutingBeyond64Replicas drives the same fix through route():
// with every replica but index 65 already tried, a retry must land on 65
// (the old mask ignored indices >= 64, re-routing retries onto replicas
// that had already failed the request), and with all replicas tried no
// candidate remains.
func TestRetryRoutingBeyond64Replicas(t *testing.T) {
	const n = 70
	reps := make([]Replica, n)
	for i := range reps {
		reps[i] = newFake(fmt.Sprintf("r%02d", i), 1, 0)
	}
	front := New(Config{}, reps...)

	tried := newTriedSet(n)
	for i := 0; i < n; i++ {
		if i != 65 {
			tried.add(i)
		}
	}
	idx, _, _, ok := front.route("m", tried)
	if !ok || idx != 65 {
		t.Fatalf("route with all but replica 65 tried = (%d, %v), want the one untried replica", idx, ok)
	}
	tried.add(65)
	if _, _, _, ok := front.route("m", tried); ok {
		t.Fatal("route found a candidate with every replica already tried")
	}
}

// TestQueueFullRetryAfterDerivedFromBacklog asserts the ShedQueueFull
// Retry-After basis: the pending bound sheds before routing, so the wait
// estimate must come from the live p50 histogram and the backlog, not a
// flat 1s floor that invites retries into a saturated fleet.
func TestQueueFullRetryAfterDerivedFromBacklog(t *testing.T) {
	f := newFake("r0", 1, 0)
	f.block = make(chan struct{})
	front := New(Config{MaxPending: 1}, f)
	front.model("m").exec.Record(3 * time.Second) // live p50 ~3s

	done := make(chan struct{})
	go func() {
		defer close(done)
		front.Infer(context.Background(), "m", nil, false)
	}()
	for i := 0; front.SnapshotModel("m").Pending == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	_, _, info, err := front.Infer(context.Background(), "m", nil, false)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if info.PredictedWait < time.Second {
		t.Errorf("queue-full predicted wait = %v, want >= 1s from the 3s-p50 backlog", info.PredictedWait)
	}
	close(f.block)
	<-done
}

func TestRetryBudgetAccounting(t *testing.T) {
	b := newRetryBudget(0.5, 2) // 2-token burst, half a token per admit
	if !b.take() || !b.take() {
		t.Fatal("cold-start burst not available")
	}
	if b.take() {
		t.Fatal("take succeeded on an empty bucket")
	}
	b.deposit() // +0.5
	if b.take() {
		t.Fatal("take succeeded on half a token")
	}
	b.deposit() // 1.0
	if !b.take() {
		t.Fatal("take failed with a full token banked")
	}
	for i := 0; i < 100; i++ {
		b.deposit()
	}
	if got := b.tokens.Load(); got != 2000 {
		t.Errorf("bucket = %d millitokens after overdeposit, want capped at 2000", got)
	}
}

func TestProbeDelaySchedule(t *testing.T) {
	const iv = time.Second
	center := func(fails int) time.Duration { return probeDelay(iv, fails, 0.5) }
	if center(0) != iv {
		t.Errorf("healthy delay = %v, want %v", center(0), iv)
	}
	if center(1) != 2*iv || center(2) != 4*iv {
		t.Errorf("backoff = %v/%v, want 2s/4s", center(1), center(2))
	}
	if center(4) != 16*iv || center(50) != 16*iv {
		t.Errorf("cap broken: fails=4 %v fails=50 %v, want 16s both", center(4), center(50))
	}
	// Jitter stays within ±25%.
	for _, j := range []float64{0, 0.25, 0.75, 0.999} {
		d := probeDelay(iv, 3, j)
		if d < 6*time.Second || d > 10*time.Second {
			t.Errorf("probeDelay(1s, 3, %v) = %v, outside 8s ± 25%%", j, d)
		}
	}
}

// TestProbeBackoffAgainstDeadHost is the integration side of the probe
// satellite: against a dead endpoint, the backoff loop must make far fewer
// probes than the fixed ticker it replaced would have.
func TestProbeBackoffAgainstDeadHost(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	rem := NewRemote("r0", ts.URL)
	defer ts.Close()

	const interval = 5 * time.Millisecond
	rem.StartProbing(interval)
	time.Sleep(60 * time.Millisecond)
	rem.StopProbing()
	got := hits.Load()
	// A fixed ticker would land ~12 probes in 60ms of 5ms intervals; the
	// doubling schedule (5, 10, 20, 40, ...) fits at most ~5. Allow slack
	// for scheduler jitter.
	if got > 8 {
		t.Errorf("dead host probed %d times in 60ms at a 5ms base interval — backoff is not backing off", got)
	}
	if got < 1 {
		t.Error("prober never probed at all")
	}
	if rem.Healthy() {
		t.Error("dead host still marked healthy")
	}
}
