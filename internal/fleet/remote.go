package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
	"repro/internal/serve"
)

// Remote is a fleet replica reached over the ramield HTTP API. Health,
// readiness, load, and worker count come from periodic probes of /readyz
// and /v1/stats (StartProbing), so the routing hot path only reads
// atomics; Infer posts /v1/infer with the same wire types the daemon
// serves.
type Remote struct {
	name   string
	base   string // e.g. "http://host:8080", no trailing slash
	client *http.Client

	healthy  atomic.Bool
	ready    atomic.Bool
	queued   atomic.Int64
	inflight atomic.Int64
	workers  atomic.Int64
	// memFree/memKnown mirror the replica's memory headroom from its stats
	// probe; memKnown stays false for daemons without governance (or too old
	// to report it), and routing then ignores memory for this replica.
	memFree  atomic.Int64
	memKnown atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
}

// NewRemote creates a remote replica client for a ramield base URL. The
// replica reports unhealthy until the first successful Probe.
func NewRemote(name, baseURL string) *Remote {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Remote{
		name: name,
		base: baseURL,
		// No client-level timeout: per-request deadlines come from the
		// caller's context (probes bring their own).
		client: &http.Client{},
		stop:   make(chan struct{}),
	}
}

func (r *Remote) Name() string              { return r.name }
func (r *Remote) Healthy() bool             { return r.healthy.Load() }
func (r *Remote) Ready() bool               { return r.ready.Load() }
func (r *Remote) Load() (q, inflight int64) { return r.queued.Load(), r.inflight.Load() }
func (r *Remote) Workers() int              { return int(r.workers.Load()) }

// MemFree reports the replica's last-probed memory headroom; known is false
// when the replica does not run memory governance.
func (r *Remote) MemFree() (bytes int64, known bool) {
	return r.memFree.Load(), r.memKnown.Load()
}

// statsProbe is the subset of ramield's /v1/stats the prober consumes.
type statsProbe struct {
	Ready bool `json:"ready"`
	Pool  struct {
		Workers    int   `json:"workers"`
		QueueDepth int64 `json:"queue_depth"`
		InFlight   int64 `json:"in_flight"`
	} `json:"pool"`
	Models map[string]struct {
		QueueDepth int64 `json:"queue_depth"`
	} `json:"models"`
	Memory struct {
		Enabled       bool  `json:"enabled"`
		HeadroomBytes int64 `json:"headroom_bytes"`
	} `json:"memory"`
}

// Probe refreshes health/readiness/load from one GET /v1/stats. A failed
// probe marks the replica unhealthy (and not ready) until a later probe
// succeeds.
func (r *Remote) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.healthy.Store(false)
		r.ready.Store(false)
		return fmt.Errorf("fleet: probing %s: %w", r.name, err)
	}
	defer resp.Body.Close()
	var st statsProbe
	// A stats endpoint is trusted but still bounded: a confused or
	// compromised peer must not make the prober buffer an unbounded body.
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		r.healthy.Store(false)
		r.ready.Store(false)
		if err == nil {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		return fmt.Errorf("fleet: probing %s: %w", r.name, err)
	}
	queued := st.Pool.QueueDepth
	for _, m := range st.Models {
		queued += m.QueueDepth
	}
	r.queued.Store(queued)
	r.inflight.Store(st.Pool.InFlight)
	r.workers.Store(int64(st.Pool.Workers))
	r.memFree.Store(st.Memory.HeadroomBytes)
	r.memKnown.Store(st.Memory.Enabled)
	r.healthy.Store(true)
	r.ready.Store(st.Ready)
	return nil
}

// StartProbing probes immediately and then on a backoff schedule until
// StopProbing: every interval while probes succeed, doubling after each
// consecutive failure up to 16× interval with ±25% jitter — so a dead
// host is checked at a trickle instead of hammered on a fixed ticker, a
// recovering one is noticed within the cap, and a fleet of fronts does
// not probe it in lockstep. The first success resets the schedule. Probe
// errors only flip the health flags; they are not surfaced (the next
// routing decision sees the flag).
func (r *Remote) StartProbing(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	probe := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		defer cancel()
		return r.Probe(ctx)
	}
	fails := 0
	if probe() != nil {
		fails = 1
	}
	go func() {
		// Seeded per replica name: deterministic for a given fleet layout,
		// decorrelated across replicas.
		rng := rand.New(rand.NewSource(int64(fnv64(r.name))))
		for {
			t := time.NewTimer(probeDelay(interval, fails, rng.Float64()))
			select {
			case <-t.C:
				if probe() == nil {
					fails = 0
				} else {
					fails++
				}
			case <-r.stop:
				t.Stop()
				return
			}
		}
	}()
}

// probeDelay is the wait before the next probe after fails consecutive
// failures: interval × 2^fails capped at 16× interval, spread over ±25%
// by the jitter draw (uniform [0,1)). Pure, so the schedule is unit-tested
// without a clock.
func probeDelay(interval time.Duration, fails int, jitter float64) time.Duration {
	d := interval
	for i := 0; i < fails && d < 16*interval; i++ {
		d *= 2
	}
	d = min(d, 16*interval)
	return d + time.Duration((jitter-0.5)*0.5*float64(d))
}

// StopProbing ends the probe loop. Idempotent.
func (r *Remote) StopProbing() { r.stopOnce.Do(func() { close(r.stop) }) }

// ReplicaError is a failure reported by a remote replica, carrying the
// daemon's HTTP status and cause label through the front unchanged. A
// ReplicaError means the replica answered: only its 5xx responses count as
// retryable replica failures, and 4xx application errors never trip the
// circuit breaker (see Retryable).
type ReplicaError struct {
	Replica string
	Status  int
	Cause   string
	Msg     string
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf("fleet: replica %s: %s (status %d)", e.Replica, e.Msg, e.Status)
}

// TransportError is a failure to get an answer from a replica at all —
// connection refused/reset, DNS failure, or the connection dying
// mid-response — as opposed to an HTTP response carrying an application
// error. Transport failures are retryable on another replica and count
// against the circuit breaker; they are the signature of a dead or dying
// host. The request's own cancellation/deadline is never wrapped in one.
type TransportError struct {
	Replica string
	Err     error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("fleet: replica %s unreachable: %v", e.Replica, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Infer posts one request to the replica's /v1/infer. The caller context's
// deadline rides along as timeout_ms so the replica's own admission and
// deadline handling see the same budget.
func (r *Remote) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error) {
	req := serve.InferRequest{
		Model:   model,
		Inputs:  make(map[string]serve.TensorJSON, len(feeds)),
		NoBatch: noBatch,
	}
	for name, t := range feeds {
		req.Inputs[name] = serve.TensorJSON{Shape: t.Shape(), Data: t.Data()}
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMs = int(ms)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, serve.InferMeta{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return nil, serve.InferMeta{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's own deadline or cancellation aborted the call:
			// that is not evidence against the replica.
			return nil, serve.InferMeta{}, ctx.Err()
		}
		return nil, serve.InferMeta{}, &TransportError{Replica: r.name, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		msg := resp.Status
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); rerr == nil {
			if jerr := json.Unmarshal(b, &er); jerr == nil && er.Error != "" {
				msg = er.Error
			}
		}
		return nil, serve.InferMeta{}, &ReplicaError{Replica: r.name, Status: resp.StatusCode, Cause: er.Cause, Msg: msg}
	}
	var ir serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		if ctx.Err() != nil {
			return nil, serve.InferMeta{}, ctx.Err()
		}
		// A 200 whose body did not parse is a connection that died
		// mid-response: transport-class, retryable.
		return nil, serve.InferMeta{}, &TransportError{Replica: r.name, Err: fmt.Errorf("decoding response: %w", err)}
	}
	outs := make(ramiel.Env, len(ir.Outputs))
	for name, tj := range ir.Outputs {
		shape := ramiel.NewShape(tj.Shape...)
		if !shape.Valid() || shape.Numel() != len(tj.Data) {
			return nil, serve.InferMeta{}, fmt.Errorf("fleet: replica %s: output %q has inconsistent shape %v", r.name, name, tj.Shape)
		}
		outs[name] = ramiel.NewTensor(shape, tj.Data)
	}
	meta := serve.InferMeta{
		RequestID: ir.RequestID,
		BatchSize: ir.BatchSize,
		Latency:   time.Duration(ir.LatencyUs) * time.Microsecond,
		BatchWait: time.Duration(ir.BatchWaitUs) * time.Microsecond,
		QueueWait: time.Duration(ir.QueueWaitUs) * time.Microsecond,
		Exec:      time.Duration(ir.ExecUs) * time.Microsecond,
	}
	return outs, meta, nil
}
