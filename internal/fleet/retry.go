package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	ramiel "repro"
	"repro/internal/serve"
)

// Retryable reports whether a replica failure may be retried on another
// replica. Transport-level failures (connection refused/reset, a timeout
// on the wire), replica-side 5xx, and shutdown/drain errors are retryable:
// the same request can succeed elsewhere, and these are exactly the
// failures that count against the replica's circuit breaker. Client-side
// errors (4xx: bad feeds, unknown model), deadline expiry, and
// cancellation are not — they would fail identically anywhere (or the
// client is gone) and say nothing about replica health.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var re *ReplicaError
	if errors.As(err, &re) {
		return re.Status >= 500
	}
	// In-process replicas surface serve errors directly: a draining
	// replica cannot take the request, but a fleet sibling can.
	if errors.Is(err, serve.ErrShutdown) || errors.Is(err, serve.ErrBatcherClosed) {
		return true
	}
	// Everything else (validation, compile, execution, panic) is treated
	// as deterministic for this request: re-running it elsewhere would
	// burn budget to fail the same way.
	return false
}

// retryBudget bounds extra attempts (retries + hedges) fleet-wide to a
// fraction of admitted traffic, Envoy-style: each admitted request
// deposits rate millitokens (capped at max), each extra attempt spends
// 1000. The bucket starts full so a cold fleet can still retry its first
// failures. Lock-free and clock-free, so it is deterministic under test.
type retryBudget struct {
	tokens atomic.Int64 // millitokens
	rate   int64        // deposited per admitted request
	max    int64        // cap and cold-start balance
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	if burst < 1 {
		burst = 1
	}
	b := &retryBudget{rate: int64(ratio * 1000), max: int64(burst) * 1000}
	b.tokens.Store(b.max)
	return b
}

func (b *retryBudget) deposit() {
	if b.rate == 0 {
		return
	}
	for {
		cur := b.tokens.Load()
		next := min(cur+b.rate, b.max)
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (b *retryBudget) take() bool {
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// triedSet records which replica indices a request has already attempted,
// as a bitset sized to the fleet — a single word would silently let
// retries in fleets past 64 replicas land back on a replica that already
// failed the request. A nil set (the first attempt's route) has no
// members.
type triedSet []uint64

func newTriedSet(n int) triedSet { return make(triedSet, (n+63)/64) }

func (t triedSet) add(i int) { t[i>>6] |= 1 << uint(i&63) }

func (t triedSet) has(i int) bool { return t != nil && t[i>>6]&(1<<uint(i&63)) != 0 }

// Attempt kinds, for win accounting.
const (
	attemptFirst = iota
	attemptRetry
	attemptHedge
)

type attemptResult struct {
	outs ramiel.Env
	meta serve.InferMeta
	err  error
	idx  int
	kind int
}

// runAttempts executes one admitted request under the retry/hedge policy:
// the first attempt goes to the routed replica; a hedge launches on the
// next untried healthy member if HedgeDelay passes without an answer; a
// retryable failure relaunches the same way. Extra attempts are bounded by
// MaxAttempts, the fleet-wide retry budget, and the request's remaining
// deadline (every attempt runs under the request context). The first
// successful response wins and the losers are cancelled; their late
// results land in a buffered channel, so no goroutine outlives the request
// blocked on a send — the exactly-once contract the chaos soak asserts.
func (f *Front) runAttempts(ctx context.Context, ms *modelState, model string, feeds ramiel.Env, noBatch bool, first int, firstProbe bool) (ramiel.Env, serve.InferMeta, string, int, error) {
	maxAttempts := f.cfg.MaxAttempts
	results := make(chan attemptResult, maxAttempts)
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	tried := newTriedSet(len(f.replicas))
	attempts := 0
	launch := func(idx, kind int, probe bool) {
		tried.add(idx)
		attempts++
		rep := f.replicas[idx]
		go func() {
			outs, meta, err := rep.Infer(actx, model, feeds, noBatch)
			f.noteAttempt(idx, probe, err)
			results <- attemptResult{outs: outs, meta: meta, err: err, idx: idx, kind: kind}
		}()
	}
	launch(first, attemptFirst, firstProbe)

	var hedge <-chan time.Time
	if f.cfg.HedgeDelay > 0 && maxAttempts > 1 {
		t := time.NewTimer(f.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	// spawn launches one more attempt on an untried, routable replica if
	// the attempt cap, the retry budget, and the deadline all allow it.
	spawn := func(kind int) bool {
		if attempts >= maxAttempts || ctx.Err() != nil {
			return false
		}
		idx, probe, _, ok := f.route(model, tried)
		if !ok {
			return false
		}
		if !f.budget.take() {
			// The attempt never launches, so routing's half-open claim must
			// come back — the same leak noteAttempt plugs for cancellations.
			if probe {
				f.breakers[idx].refund()
			}
			ms.budgetExhausted.Add(1)
			return false
		}
		launch(idx, kind, probe)
		return true
	}

	outstanding := 1
	lastIdx := first
	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			lastIdx = r.idx
			if r.err == nil {
				switch r.kind {
				case attemptRetry:
					ms.retryWins.Add(1)
				case attemptHedge:
					ms.hedgeWins.Add(1)
				}
				return r.outs, r.meta, f.replicas[r.idx].Name(), attempts, nil
			}
			if ctx.Err() != nil {
				// The request's own deadline/cancel: report that, not the
				// attempt's failure mode.
				return nil, r.meta, f.replicas[r.idx].Name(), attempts, ctx.Err()
			}
			if !Retryable(r.err) {
				return nil, r.meta, f.replicas[r.idx].Name(), attempts, r.err
			}
			lastErr = r.err
			if spawn(attemptRetry) {
				ms.retries.Add(1)
				outstanding++
			}
			if outstanding == 0 {
				return nil, r.meta, f.replicas[r.idx].Name(), attempts, lastErr
			}
		case <-hedge:
			hedge = nil
			if spawn(attemptHedge) {
				ms.hedges.Add(1)
				outstanding++
			}
		case <-ctx.Done():
			return nil, serve.InferMeta{}, f.replicas[lastIdx].Name(), attempts, ctx.Err()
		}
	}
}
