package fleet

import (
	"context"

	ramiel "repro"
	"repro/internal/serve"
)

// Replica is one serving backend in the fleet: an in-process serve.Server
// (Local) or a remote ramield reached over HTTP (Remote). The interface is
// deliberately small — route, probe, and the three live signals the
// routing and admission layers consume.
type Replica interface {
	// Name identifies the replica; ring placement is derived from it, so
	// names must be distinct and stable across restarts.
	Name() string
	// Infer runs one request on the replica.
	Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error)
	// Healthy reports liveness; Ready readiness (preload compiled, not
	// draining). For remote replicas both reflect the last probe.
	Healthy() bool
	Ready() bool
	// Load reports the replica's current pressure: requests accepted but
	// not yet picked up, and requests executing. The spillover watermark
	// and the admission controller's queue-wait prediction read it.
	Load() (queued, inflight int64)
	// Workers is the replica's execution parallelism — the service-rate
	// denominator in the admission controller's wait prediction.
	Workers() int
}

// memReporter is implemented by replicas that export a memory-headroom
// signal (Local over a governed serve.Server, Remote probing a governed
// daemon's /v1/stats). Optional: replicas without it — including test
// fakes — are simply routed without regard to memory.
type memReporter interface {
	// MemFree reports budget − in-use − reserved; known is false when the
	// replica runs no memory governance.
	MemFree() (bytes int64, known bool)
}

// memPressured reports whether routing should steer around the replica:
// its memory governor is active and its headroom is exhausted, so new work
// sent there would be shed with cause "memory" anyway.
func memPressured(r Replica) bool {
	if mr, ok := r.(memReporter); ok {
		if free, known := mr.MemFree(); known && free <= 0 {
			return true
		}
	}
	return false
}

// feedSeeder is implemented by replicas that can build deterministic
// random feeds for a model (in-process ones, which hold the graph). The
// front's HTTP seed mode uses it.
type feedSeeder interface {
	RandomFeeds(model string, seed uint64) (ramiel.Env, error)
}

// Local is an in-process replica: a serve.Server running in the same
// process as the front. This is single-host fleet mode (ramield
// -replicas N) and what the -race soak tests exercise.
type Local struct {
	name string
	srv  *serve.Server
}

// NewLocal wraps a serving runtime as a fleet replica.
func NewLocal(name string, srv *serve.Server) *Local {
	return &Local{name: name, srv: srv}
}

// Server exposes the wrapped runtime (registration, warmup, shutdown stay
// the owner's job).
func (l *Local) Server() *serve.Server { return l.srv }

func (l *Local) Name() string { return l.name }

func (l *Local) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error) {
	return l.srv.Infer(ctx, model, feeds, noBatch)
}

// Healthy is always true in-process: the server either exists or the
// front does not hold it.
func (l *Local) Healthy() bool { return true }

func (l *Local) Ready() bool { return l.srv.Ready() }

func (l *Local) Load() (queued, inflight int64) { return l.srv.Load() }

func (l *Local) Workers() int { return l.srv.Workers() }

// MemFree reports the wrapped server's live memory headroom (memReporter);
// known is false when the server runs without a memory budget.
func (l *Local) MemFree() (bytes int64, known bool) { return l.srv.MemHeadroom() }

// RandomFeeds builds deterministic valid feeds for the model (feedSeeder).
func (l *Local) RandomFeeds(model string, seed uint64) (ramiel.Env, error) {
	return l.srv.RandomFeeds(model, seed)
}
