// Package fleet is the multi-replica tier above internal/serve: it turns N
// ramield-style replicas — in-process serve.Servers or remote daemons —
// into one service. Three mechanisms, all driven by live measurements
// rather than static configuration:
//
//   - Routing: consistent hashing on the model name pins each model to a
//     replica so that replica's program cache, prepacked weights, and
//     session arenas stay warm for it, with health/readiness tracking and
//     automatic spillover to the next ring member once the owner's queue
//     depth crosses a watermark.
//   - Admission control: a deadline-feasibility check at enqueue time —
//     predicted queue wait (replica backlog × live p50 execution time ÷
//     workers) plus p90 execution time against the request's remaining
//     deadline budget. Infeasible requests are rejected in microseconds
//     with a distinct 429 cause instead of timing out in milliseconds
//     while holding queue slots, and a bounded per-model pending window
//     sheds overload with cause-labeled counters.
//   - The latency-aware adaptive batching the replicas themselves run
//     (serve.Config.AdaptiveBatch) completes the picture: the fleet sheds
//     what cannot finish, and each replica sizes its micro-batch windows
//     from the live arrival rate and execution histograms.
//
// cmd/ramielfe exposes a Front over HTTP; ramield -replicas N runs an
// in-process fleet in one process.
package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Shed errors. Infeasible/queue-full map to 429 (the client can retry
// with a looser deadline or less load), no-replica to 503.
var (
	// ErrInfeasible rejects a request whose predicted completion time
	// (queue wait + p90 execution) exceeds its deadline budget.
	ErrInfeasible = errors.New("fleet: deadline infeasible: predicted completion exceeds the request deadline")
	// ErrQueueFull rejects a request arriving while the model's pending
	// window (admitted, not yet finished) is at its bound.
	ErrQueueFull = errors.New("fleet: model queue full")
	// ErrNoReplica means no healthy, ready replica exists for the request.
	ErrNoReplica = errors.New("fleet: no ready replica")
)

// ShedCause labels why admission rejected a request.
type ShedCause int

const (
	// ShedInfeasible: the deadline-feasibility check failed.
	ShedInfeasible ShedCause = iota
	// ShedQueueFull: the per-model pending bound was hit.
	ShedQueueFull
	// ShedNoReplica: no healthy ready replica.
	ShedNoReplica
	numShedCauses
)

// String returns the stable label used in JSON and metric labels.
func (c ShedCause) String() string {
	switch c {
	case ShedInfeasible:
		return "infeasible"
	case ShedQueueFull:
		return "queue_full"
	case ShedNoReplica:
		return "no_replica"
	}
	return "unknown"
}

// shedCauses lists every cause, for renderers.
func shedCauses() []ShedCause {
	return []ShedCause{ShedInfeasible, ShedQueueFull, ShedNoReplica}
}

// Config tunes the fleet front. Zero values pick sensible defaults.
type Config struct {
	// NoAdmission disables the deadline-feasibility check and the pending
	// bound: every request routes straight to a replica. The A/B baseline
	// for the admission benchmarks.
	NoAdmission bool
	// MaxPending bounds admitted-but-unfinished requests per model at the
	// front (default 4 × total fleet workers, minimum 16). The bound is
	// what turns overload into microsecond rejections instead of an
	// unbounded queue of doomed requests.
	MaxPending int
	// SpillWatermark is the queued-request depth at which routing spills a
	// model to the next ring member (default per replica: 2 × its
	// workers).
	SpillWatermark int64
	// Margin scales the predicted completion time in the feasibility test;
	// >1 rejects earlier (safety margin), <1 gambles. Default 1.0.
	Margin float64
	// Deadline is the default per-request deadline when the caller's
	// context has none (default 30s) — admission needs a budget to check
	// against.
	Deadline time.Duration

	// MaxAttempts caps total tries per admitted request — the first
	// attempt plus any retries/hedges, each on a replica the request has
	// not tried yet. Default min(3, replica count); 1 disables re-routing.
	MaxAttempts int
	// NoRetry forces MaxAttempts to 1 — the A/B baseline for the
	// failure-handling benchmarks.
	NoRetry bool
	// HedgeDelay launches a second attempt on the next healthy ring
	// member when the first has not answered within this delay — the
	// "Tail at Scale" hedge against slow or silently dead replicas. First
	// response wins; the loser is cancelled. 0 disables hedging (default):
	// retries then happen only on explicit failures.
	HedgeDelay time.Duration
	// RetryBudget bounds extra attempts (retries + hedges) fleet-wide to
	// this fraction of admitted traffic, Envoy-style, so retry
	// amplification cannot melt an already-overloaded fleet. Default 0.2;
	// negative means no refill (only a small initial burst).
	RetryBudget float64
	// BreakerThreshold is the consecutive retryable-failure count that
	// trips a replica's circuit breaker, ejecting it from routing until a
	// half-open probe succeeds. Default 5; negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe. Default 2s.
	BreakerCooldown time.Duration

	// MaxBodyBytes caps the front's POST /v1/infer request body (default
	// 8 MiB, negative disables) — the same input hardening the daemons
	// apply, enforced before any replica is consulted.
	MaxBodyBytes int64
}

func (c Config) withDefaults(totalWorkers, numReplicas int) Config {
	if c.MaxPending < 1 {
		c.MaxPending = 4 * totalWorkers
		if c.MaxPending < 16 {
			c.MaxPending = 16
		}
	}
	if c.Margin <= 0 {
		c.Margin = 1.0
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = min(3, max(numReplicas, 1))
	}
	if c.NoRetry {
		c.MaxAttempts = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// modelState is the front's per-model accounting: admission counters,
// pending gauge, and the live histograms the admission controller reads
// (observed execution and end-to-end times, plus the decision latency of
// rejections — the "reject in microseconds" claim, measured).
type modelState struct {
	requests atomic.Int64
	admitted atomic.Int64
	pending  atomic.Int64
	spills   atomic.Int64
	errors   atomic.Int64
	shed     [numShedCauses]atomic.Int64

	// Failure-handling counters: extra attempts launched (retries after a
	// retryable failure, hedges after HedgeDelay), requests won by each,
	// and retries forgone because the fleet-wide budget was empty.
	retries         atomic.Int64
	retryWins       atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	budgetExhausted atomic.Int64

	exec   obs.Histogram // replica-reported execution time of completed requests
	e2e    obs.Histogram // front-observed end-to-end time of admitted requests
	reject obs.Histogram // decision latency of shed requests
}

// RouteInfo reports how the front placed a request.
type RouteInfo struct {
	// Replica is the chosen replica's name (empty when shed before
	// placement).
	Replica string
	// Spilled is true when the request did not run on its ring owner
	// (watermark or health spillover).
	Spilled bool
	// PredictedWait is the admission controller's queue-wait estimate at
	// enqueue (zero with admission off or no data yet).
	PredictedWait time.Duration
	// Attempts is how many replica tries the request consumed (1 = no
	// retry or hedge; zero when shed before any attempt).
	Attempts int
}

// Front is the fleet tier: ring routing + admission control over a fixed
// replica set. All methods are safe for concurrent use.
type Front struct {
	cfg      Config
	replicas []Replica
	ring     *ring
	// totalWorkers is the fleet-wide worker count, fixed at construction —
	// the drain rate behind the queue-full Retry-After estimate.
	totalWorkers int

	// breakers is indexed like replicas; all nil when breakers are
	// disabled (BreakerThreshold < 0).
	breakers []*breaker
	// budget is the fleet-wide retry/hedge token bucket.
	budget *retryBudget

	mu     sync.Mutex
	models map[string]*modelState

	draining atomic.Bool
	start    time.Time

	// scratch pools the ring-walk order slice so routing stays
	// allocation-free on the admission fast path.
	scratch sync.Pool
}

// New creates a front over the given replicas. Replica names must be
// distinct (ring placement derives from them).
func New(cfg Config, replicas ...Replica) *Front {
	total := 0
	names := make([]string, len(replicas))
	for i, r := range replicas {
		names[i] = r.Name()
		total += r.Workers()
	}
	cfg = cfg.withDefaults(total, len(replicas))
	f := &Front{
		cfg:          cfg,
		replicas:     replicas,
		ring:         newRing(names),
		totalWorkers: total,
		breakers:     make([]*breaker, len(replicas)),
		budget:       newRetryBudget(cfg.RetryBudget, max(cfg.MaxPending/4, 4)),
		models:       map[string]*modelState{},
		start:        time.Now(),
		scratch: sync.Pool{New: func() any {
			s := make([]int, 0, 16)
			return &s
		}},
	}
	if cfg.BreakerThreshold > 0 {
		for i := range f.breakers {
			f.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	return f
}

// Replicas returns the replica set (fixed at construction).
func (f *Front) Replicas() []Replica { return f.replicas }

// Uptime reports how long the front has been running.
func (f *Front) Uptime() time.Duration { return time.Since(f.start) }

// BeginDrain flips the front's readiness off (readyz 503) so load
// balancers rotate away; in-flight and still-arriving requests keep being
// served. Idempotent.
func (f *Front) BeginDrain() { f.draining.Store(true) }

// Ready reports whether the front can serve: not draining and at least
// one replica ready.
func (f *Front) Ready() bool {
	if f.draining.Load() {
		return false
	}
	for _, r := range f.replicas {
		if r.Healthy() && r.Ready() {
			return true
		}
	}
	return false
}

// model returns (creating on demand) the per-model state.
func (f *Front) model(name string) *modelState {
	f.mu.Lock()
	defer f.mu.Unlock()
	ms, ok := f.models[name]
	if !ok {
		ms = &modelState{}
		f.models[name] = ms
	}
	return ms
}

// route picks a replica for the model: the first healthy, ready ring
// member whose circuit breaker admits traffic and whose queue is under its
// spill watermark; if every admissible member is over watermark, the
// least-queued one (load has saturated the fleet — admission, not routing,
// is the relief valve then). skip holds the replica indices the request
// has already tried (retries/hedges must land elsewhere); nil means none.
// The chosen replica's half-open probe slot, if any, is claimed — probe
// reports whether it was, and such a claim must be refunded if the
// attempt ends without a health signal. ok is false when no replica
// qualifies.
func (f *Front) route(model string, skip triedSet) (idx int, probe, spilled, ok bool) {
	sp := f.scratch.Get().(*[]int)
	order := f.ring.order(model, *sp)
	defer func() {
		*sp = order
		f.scratch.Put(sp)
	}()
	primary := -1
	best, bestQ := -1, int64(1<<62)
	for _, i := range order {
		r := f.replicas[i]
		if !r.Healthy() || !r.Ready() {
			continue
		}
		// primary is the first live ring member regardless of breaker
		// state: running anywhere else counts as a spill.
		if primary < 0 {
			primary = i
		}
		if skip.has(i) {
			continue
		}
		if b := f.breakers[i]; b != nil && !b.routable() {
			continue
		}
		queued, _ := r.Load()
		wm := f.cfg.SpillWatermark
		if wm <= 0 {
			wm = 2 * int64(r.Workers())
			if wm < 2 {
				wm = 2
			}
		}
		if queued >= wm || memPressured(r) {
			// Over watermark or out of memory headroom: only a least-queued
			// fallback once every admissible member is saturated (the
			// replica's own admission sheds then).
			if queued < bestQ {
				best, bestQ = i, queued
			}
			continue
		}
		if b := f.breakers[i]; b != nil {
			claimed, prb := b.claim()
			if !claimed {
				continue // lost the half-open probe slot; next member
			}
			return i, prb, i != primary, true
		}
		return i, false, i != primary, true
	}
	if best >= 0 {
		prb := false
		if b := f.breakers[best]; b != nil {
			// Best-effort: an extra half-open probe in the saturated case
			// is harmless, and a lost slot just means the probe rides
			// another request.
			_, prb = b.claim()
		}
		return best, prb, best != primary, true
	}
	return 0, false, false, false
}

// noteAttempt feeds one attempt's outcome into the replica's breaker.
// Retryable failures count against it; a success or an application-level
// error (the replica answered, so it is alive) resets it. The request's
// own cancellation or deadline says nothing about replica health — but if
// this attempt held the half-open probe slot (a hedge loser cancelled by
// the winner, a client disconnect, a deadline expiring mid-probe), the
// slot is refunded so the next request can probe; without the refund the
// replica would stay ejected until restart.
func (f *Front) noteAttempt(idx int, probe bool, err error) {
	b := f.breakers[idx]
	if b == nil {
		return
	}
	switch {
	case err == nil:
		b.onSuccess()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if probe {
			b.refund()
		}
	case Retryable(err):
		b.onFailure()
	default:
		b.onSuccess()
	}
}

// predict estimates a request's completion time on a replica from the
// model's live histograms: the backlog drains at one p50 execution per
// worker, then the request itself costs up to p90. Returns (0, 0) while
// the model has no samples — a cold model admits everything (rejecting on
// no data would strand a model nobody has measured yet).
func (f *Front) predict(ms *modelState, r Replica) (wait, exec time.Duration) {
	p90 := time.Duration(ms.exec.Quantile(0.90))
	if p90 <= 0 {
		return 0, 0
	}
	p50 := time.Duration(ms.exec.Quantile(0.50))
	queued, inflight := r.Load()
	w := r.Workers()
	if w < 1 {
		w = 1
	}
	wait = time.Duration(queued+inflight) * p50 / time.Duration(w)
	return wait, p90
}

// queueFullWait estimates when a queue-full shed should clear: the
// model's pending backlog drains at one p50 execution per fleet worker.
// The pending bound sheds before routing, so predict()'s per-replica
// estimate never runs on this path — this is the Retry-After basis for
// ShedQueueFull instead of a flat floor that would tell clients to retry
// straight into a saturated fleet. Zero while the model has no samples.
func (f *Front) queueFullWait(ms *modelState) time.Duration {
	p50 := time.Duration(ms.exec.Quantile(0.50))
	if p50 <= 0 {
		return 0
	}
	w := f.totalWorkers
	if w < 1 {
		w = 1
	}
	return time.Duration(ms.pending.Load()) * p50 / time.Duration(w)
}

// shed records one rejection (cause counter + decision latency) and
// returns its error.
func (ms *modelState) shedReq(cause ShedCause, since time.Time, err error) error {
	ms.shed[cause].Add(1)
	ms.reject.Record(time.Since(since))
	return err
}

// Infer routes one request through the fleet: admission check, replica
// choice, execution, accounting. The returned RouteInfo reports placement
// even on failure (empty replica name when shed before placement).
func (f *Front) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, RouteInfo, error) {
	t0 := time.Now()
	ms := f.model(model)
	ms.requests.Add(1)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.Deadline)
		defer cancel()
	}

	// The pending bound needs no placement, so it runs before routing — a
	// queue-full shed must never consume a breaker's half-open probe slot.
	// Its Retry-After estimate comes from the backlog instead.
	if !f.cfg.NoAdmission && ms.pending.Load() >= int64(f.cfg.MaxPending) {
		info := RouteInfo{PredictedWait: f.queueFullWait(ms)}
		return nil, serve.InferMeta{}, info, ms.shedReq(ShedQueueFull, t0, ErrQueueFull)
	}

	idx, probe, spilled, ok := f.route(model, nil)
	if !ok {
		return nil, serve.InferMeta{}, RouteInfo{}, ms.shedReq(ShedNoReplica, t0, ErrNoReplica)
	}
	rep := f.replicas[idx]
	info := RouteInfo{Replica: rep.Name(), Spilled: spilled}
	if spilled {
		ms.spills.Add(1)
	}

	if !f.cfg.NoAdmission {
		if wait, exec := f.predict(ms, rep); exec > 0 {
			info.PredictedWait = wait
			need := wait + time.Duration(float64(exec)*f.cfg.Margin)
			dl, _ := ctx.Deadline()
			if budget := time.Until(dl); need > budget {
				if probe {
					f.breakers[idx].refund()
				}
				return nil, serve.InferMeta{}, info, ms.shedReq(ShedInfeasible, t0, ErrInfeasible)
			}
		}
	}

	ms.admitted.Add(1)
	f.budget.deposit()
	ms.pending.Add(1)
	outs, meta, served, attempts, err := f.runAttempts(ctx, ms, model, feeds, noBatch, idx, probe)
	ms.pending.Add(-1)
	info.Attempts = attempts
	if served != "" && served != info.Replica {
		// A retry or hedge won on a different replica than the one routing
		// chose: the request effectively spilled mid-flight.
		info.Replica = served
		if !info.Spilled {
			info.Spilled = true
			ms.spills.Add(1)
		}
	}
	// Admitted requests record end-to-end time whatever their outcome —
	// an admitted request that times out is exactly the signal the
	// feasibility check must see to stop admitting its successors.
	ms.e2e.Record(time.Since(t0))
	if err != nil {
		ms.errors.Add(1)
		return nil, meta, info, err
	}
	if meta.Exec > 0 {
		ms.exec.Record(meta.Exec)
	}
	return outs, meta, info, nil
}

// ModelSnapshot is the JSON view of one model's fleet-level accounting.
type ModelSnapshot struct {
	Requests int64 `json:"requests"`
	Admitted int64 `json:"admitted"`
	Pending  int64 `json:"pending"`
	Spills   int64 `json:"spills"`
	Errors   int64 `json:"errors"`
	// Shed splits rejections by cause (infeasible, queue_full,
	// no_replica); only non-zero causes appear.
	Shed map[string]int64 `json:"shed,omitempty"`
	// Failure-handling counters (zero values omitted): extra attempts
	// launched and won, and retries forgone on an empty budget.
	Retries         int64 `json:"retries,omitempty"`
	RetryWins       int64 `json:"retry_wins,omitempty"`
	Hedges          int64 `json:"hedges,omitempty"`
	HedgeWins       int64 `json:"hedge_wins,omitempty"`
	BudgetExhausted int64 `json:"retry_budget_exhausted,omitempty"`
	// Exec/E2E/Reject are the live histograms admission reads: replica
	// execution time, front end-to-end time, and the decision latency of
	// rejections. Omitted while empty.
	Exec   *obs.HistogramSnapshot `json:"exec,omitempty"`
	E2E    *obs.HistogramSnapshot `json:"e2e,omitempty"`
	Reject *obs.HistogramSnapshot `json:"reject,omitempty"`
}

// ReplicaSnapshot is the JSON view of one replica's live state.
type ReplicaSnapshot struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Ready    bool   `json:"ready"`
	Queued   int64  `json:"queued"`
	InFlight int64  `json:"in_flight"`
	Workers  int    `json:"workers"`
	// Breaker is the circuit-breaker state label (closed/open/half_open);
	// empty when breakers are disabled. BreakerOpens counts trips.
	Breaker      string `json:"breaker,omitempty"`
	BreakerOpens int64  `json:"breaker_opens,omitempty"`
	// MemGoverned is true when the replica exports a memory-headroom
	// signal; MemHeadroomBytes is that signal (routing steers away at 0).
	MemGoverned      bool  `json:"mem_governed,omitempty"`
	MemHeadroomBytes int64 `json:"mem_headroom_bytes,omitempty"`
}

// Snapshot is the JSON view of the whole front (GET /v1/fleet).
type Snapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Ready         bool                     `json:"ready"`
	Draining      bool                     `json:"draining"`
	Admission     bool                     `json:"admission"`
	MaxPending    int                      `json:"max_pending"`
	MaxAttempts   int                      `json:"max_attempts"`
	HedgeDelayMs  float64                  `json:"hedge_delay_ms,omitempty"`
	RetryTokens   int64                    `json:"retry_budget_tokens"`
	Replicas      []ReplicaSnapshot        `json:"replicas"`
	Models        map[string]ModelSnapshot `json:"models"`
}

func histPtr(h *obs.Histogram) *obs.HistogramSnapshot {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return nil
	}
	return &snap
}

// SnapshotModel reads one model's accounting (zero value when the model
// has never been requested).
func (f *Front) SnapshotModel(model string) ModelSnapshot {
	f.mu.Lock()
	ms := f.models[model]
	f.mu.Unlock()
	if ms == nil {
		return ModelSnapshot{}
	}
	return ms.snapshot()
}

func (ms *modelState) snapshot() ModelSnapshot {
	snap := ModelSnapshot{
		Requests: ms.requests.Load(),
		Admitted: ms.admitted.Load(),
		Pending:  ms.pending.Load(),
		Spills:   ms.spills.Load(),
		Errors:   ms.errors.Load(),
		Exec:     histPtr(&ms.exec),
		E2E:      histPtr(&ms.e2e),
		Reject:   histPtr(&ms.reject),

		Retries:         ms.retries.Load(),
		RetryWins:       ms.retryWins.Load(),
		Hedges:          ms.hedges.Load(),
		HedgeWins:       ms.hedgeWins.Load(),
		BudgetExhausted: ms.budgetExhausted.Load(),
	}
	for _, c := range shedCauses() {
		if n := ms.shed[c].Load(); n > 0 {
			if snap.Shed == nil {
				snap.Shed = make(map[string]int64, int(numShedCauses))
			}
			snap.Shed[c.String()] = n
		}
	}
	return snap
}

// Snapshot reads the whole front's state.
func (f *Front) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeSeconds: f.Uptime().Seconds(),
		Ready:         f.Ready(),
		Draining:      f.draining.Load(),
		Admission:     !f.cfg.NoAdmission,
		MaxPending:    f.cfg.MaxPending,
		MaxAttempts:   f.cfg.MaxAttempts,
		HedgeDelayMs:  float64(f.cfg.HedgeDelay) / float64(time.Millisecond),
		RetryTokens:   f.budget.tokens.Load() / 1000,
		Replicas:      make([]ReplicaSnapshot, 0, len(f.replicas)),
		Models:        map[string]ModelSnapshot{},
	}
	for i, r := range f.replicas {
		queued, inflight := r.Load()
		rs := ReplicaSnapshot{
			Name:     r.Name(),
			Healthy:  r.Healthy(),
			Ready:    r.Ready(),
			Queued:   queued,
			InFlight: inflight,
			Workers:  r.Workers(),
		}
		if b := f.breakers[i]; b != nil {
			rs.Breaker, rs.BreakerOpens = b.snapshot()
		}
		if mr, ok := r.(memReporter); ok {
			if free, known := mr.MemFree(); known {
				rs.MemGoverned = true
				rs.MemHeadroomBytes = free
			}
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	f.mu.Lock()
	states := make(map[string]*modelState, len(f.models))
	for name, ms := range f.models {
		states[name] = ms
	}
	f.mu.Unlock()
	for name, ms := range states {
		snap.Models[name] = ms.snapshot()
	}
	return snap
}
