package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	ramiel "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the fleet front's HTTP API (what cmd/ramielfe serves):
//
//	POST /v1/infer — run one inference request through routing + admission
//	                 (X-Fleet-Replica reports placement; 429 on shed)
//	GET  /v1/fleet — topology + per-model admission stats (alias /v1/stats)
//	GET  /metrics  — Prometheus text exposition of the fleet families
//	GET  /healthz  — liveness (the front serves HTTP)
//	GET  /readyz   — readiness (not draining, ≥1 replica ready)
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", f.handleInfer)
	mux.HandleFunc("/v1/fleet", f.handleFleet)
	mux.HandleFunc("/v1/stats", f.handleFleet)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if f.Ready() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// causeOf labels a fleet error for the response body: shed causes use the
// fleet taxonomy, replica errors keep the daemon's.
func causeOf(err error) string {
	switch {
	case errors.Is(err, ErrInfeasible):
		return ShedInfeasible.String()
	case errors.Is(err, ErrQueueFull):
		return ShedQueueFull.String()
	case errors.Is(err, ErrNoReplica):
		return ShedNoReplica.String()
	}
	var re *ReplicaError
	if errors.As(err, &re) {
		return re.Cause
	}
	return serve.CauseOf(err).String()
}

// statusFor maps fleet errors onto HTTP statuses: sheds that the client
// can relieve (tighter load, looser deadline) are 429, a fleet with no
// ready replica is 503, and replica errors keep their original status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInfeasible), errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoReplica):
		return http.StatusServiceUnavailable
	}
	var re *ReplicaError
	if errors.As(err, &re) {
		return re.Status
	}
	return serve.StatusFor(err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, serve.ErrorResponse{Error: err.Error(), Cause: causeOf(err)})
}

func (f *Front) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "POST only"})
		return
	}
	if f.cfg.MaxBodyBytes > 0 {
		// Same body cap the daemons apply: the front must not buffer an
		// unbounded JSON payload on behalf of a replica that would refuse it.
		r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes)
	}
	var req serve.InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w (limit %d bytes)", serve.ErrBodyTooLarge, mbe.Limit))
			return
		}
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if req.Model == "" {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "missing \"model\""})
		return
	}
	feeds := ramiel.Env{}
	switch {
	case len(req.Inputs) > 0:
		for name, tj := range req.Inputs {
			shape := ramiel.NewShape(tj.Shape...)
			if !shape.Valid() || shape.Numel() != len(tj.Data) {
				writeJSON(w, http.StatusBadRequest,
					serve.ErrorResponse{Error: fmt.Sprintf("input %q: shape %v inconsistent with %d values", name, tj.Shape, len(tj.Data))})
				return
			}
			feeds[name] = ramiel.NewTensor(shape, tj.Data)
		}
	case req.Seed != nil:
		// Seed mode needs a graph to derive feeds from; any in-process
		// replica can supply it. A purely remote fleet forwards inputs
		// only.
		var err error
		feeds, err = f.seedFeeds(req.Model, *req.Seed)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "provide \"inputs\" or \"seed\""})
		return
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	outs, meta, info, err := f.Infer(ctx, req.Model, feeds, req.NoBatch)
	if info.Replica != "" {
		w.Header().Set("X-Fleet-Replica", info.Replica)
	}
	if meta.RequestID != 0 {
		w.Header().Set("X-Request-ID", strconv.FormatUint(meta.RequestID, 10))
	}
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests {
			// Tell the client when the shed condition should have cleared:
			// the predicted queue wait, rounded up to whole seconds (the
			// header's granularity), minimum 1.
			secs := int(info.PredictedWait/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, code, err)
		return
	}
	resp := serve.InferResponse{
		Model:       req.Model,
		RequestID:   meta.RequestID,
		Outputs:     make(map[string]serve.TensorJSON, len(outs)),
		BatchSize:   meta.BatchSize,
		LatencyUs:   meta.Latency.Microseconds(),
		BatchWaitUs: meta.BatchWait.Microseconds(),
		QueueWaitUs: meta.QueueWait.Microseconds(),
		ExecUs:      meta.Exec.Microseconds(),
	}
	for name, t := range outs {
		resp.Outputs[name] = serve.TensorJSON{Shape: t.Shape(), Data: t.Data()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// seedFeeds builds deterministic random feeds from the first in-process
// replica that knows the model.
func (f *Front) seedFeeds(model string, seed uint64) (ramiel.Env, error) {
	for _, r := range f.replicas {
		if s, ok := r.(feedSeeder); ok {
			feeds, err := s.RandomFeeds(model, seed)
			if err == nil {
				return feeds, nil
			}
		}
	}
	return nil, fmt.Errorf("seed mode needs an in-process replica holding %q (remote fleets take \"inputs\")", model)
}

func (f *Front) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, f.Snapshot())
}

// handleMetrics renders the fleet-level Prometheus families. Replica and
// model order is sorted so the exposition stays diffable.
func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	f.writeMetrics(bw)
}

func (f *Front) writeMetrics(w *bufio.Writer) {
	snap := f.Snapshot()
	obs.PromHeader(w, "ramielfe_uptime_seconds", "gauge", "Time since the fleet front started.")
	fmt.Fprintf(w, "ramielfe_uptime_seconds %s\n", obs.PromFloat(snap.UptimeSeconds))
	obs.PromHeader(w, "ramielfe_ready", "gauge", "1 while the front is not draining and at least one replica is ready.")
	ready := 0
	if snap.Ready {
		ready = 1
	}
	fmt.Fprintf(w, "ramielfe_ready %d\n", ready)

	obs.PromHeader(w, "ramielfe_replica_up", "gauge", "1 while the replica is healthy and ready.")
	for _, rs := range snap.Replicas {
		up := 0
		if rs.Healthy && rs.Ready {
			up = 1
		}
		fmt.Fprintf(w, "ramielfe_replica_up{replica=%s} %d\n", obs.PromLabel(rs.Name), up)
	}
	obs.PromHeader(w, "ramielfe_replica_queue_depth", "gauge", "Requests queued on the replica (the spillover watermark input).")
	for _, rs := range snap.Replicas {
		fmt.Fprintf(w, "ramielfe_replica_queue_depth{replica=%s} %d\n", obs.PromLabel(rs.Name), rs.Queued)
	}
	obs.PromHeader(w, "ramielfe_replica_in_flight", "gauge", "Requests executing on the replica.")
	for _, rs := range snap.Replicas {
		fmt.Fprintf(w, "ramielfe_replica_in_flight{replica=%s} %d\n", obs.PromLabel(rs.Name), rs.InFlight)
	}
	if len(snap.Replicas) > 0 && snap.Replicas[0].Breaker != "" {
		obs.PromHeader(w, "ramielfe_breaker_open", "gauge", "1 while the replica's circuit breaker is not closed (open or half-open).")
		for _, rs := range snap.Replicas {
			open := 0
			if rs.Breaker != "closed" {
				open = 1
			}
			fmt.Fprintf(w, "ramielfe_breaker_open{replica=%s} %d\n", obs.PromLabel(rs.Name), open)
		}
		obs.PromHeader(w, "ramielfe_breaker_opens_total", "counter", "Circuit-breaker trips (closed/half-open to open transitions).")
		for _, rs := range snap.Replicas {
			fmt.Fprintf(w, "ramielfe_breaker_opens_total{replica=%s} %d\n", obs.PromLabel(rs.Name), rs.BreakerOpens)
		}
	}
	if hasMem := func() bool {
		for _, rs := range snap.Replicas {
			if rs.MemGoverned {
				return true
			}
		}
		return false
	}(); hasMem {
		obs.PromHeader(w, "ramielfe_replica_mem_headroom_bytes", "gauge", "Replica memory headroom (budget − in-use − reserved); routing steers away at 0. Only governed replicas appear.")
		for _, rs := range snap.Replicas {
			if rs.MemGoverned {
				fmt.Fprintf(w, "ramielfe_replica_mem_headroom_bytes{replica=%s} %d\n", obs.PromLabel(rs.Name), rs.MemHeadroomBytes)
			}
		}
	}
	obs.PromHeader(w, "ramielfe_retry_budget_tokens", "gauge", "Whole retry-budget tokens currently available fleet-wide.")
	fmt.Fprintf(w, "ramielfe_retry_budget_tokens %d\n", snap.RetryTokens)

	models := make([]string, 0, len(snap.Models))
	for name := range snap.Models {
		models = append(models, name)
	}
	sort.Strings(models)

	writeModelGauge := func(family, kind, help string, get func(ModelSnapshot) int64) {
		obs.PromHeader(w, family, kind, help)
		for _, name := range models {
			fmt.Fprintf(w, "%s{model=%s} %d\n", family, obs.PromLabel(name), get(snap.Models[name]))
		}
	}
	writeModelGauge("ramielfe_requests_total", "counter", "Requests routed through the front.",
		func(m ModelSnapshot) int64 { return m.Requests })
	writeModelGauge("ramielfe_admitted_total", "counter", "Requests that passed admission and ran.",
		func(m ModelSnapshot) int64 { return m.Admitted })
	writeModelGauge("ramielfe_pending", "gauge", "Admitted requests not yet finished.",
		func(m ModelSnapshot) int64 { return m.Pending })
	writeModelGauge("ramielfe_spills_total", "counter", "Requests routed off their ring owner (watermark or health).",
		func(m ModelSnapshot) int64 { return m.Spills })
	writeModelGauge("ramielfe_replica_errors_total", "counter", "Admitted requests that failed on their replica.",
		func(m ModelSnapshot) int64 { return m.Errors })
	writeModelGauge("ramielfe_retries_total", "counter", "Extra attempts launched after a retryable replica failure.",
		func(m ModelSnapshot) int64 { return m.Retries })
	writeModelGauge("ramielfe_retry_wins_total", "counter", "Requests whose winning response came from a retry attempt.",
		func(m ModelSnapshot) int64 { return m.RetryWins })
	writeModelGauge("ramielfe_hedges_total", "counter", "Hedge attempts launched after HedgeDelay without an answer.",
		func(m ModelSnapshot) int64 { return m.Hedges })
	writeModelGauge("ramielfe_hedge_wins_total", "counter", "Requests whose winning response came from a hedge attempt.",
		func(m ModelSnapshot) int64 { return m.HedgeWins })
	writeModelGauge("ramielfe_retry_budget_exhausted_total", "counter", "Retries or hedges forgone because the fleet-wide budget was empty.",
		func(m ModelSnapshot) int64 { return m.BudgetExhausted })

	obs.PromHeader(w, "ramielfe_shed_total", "counter", "Requests rejected by admission, by cause.")
	for _, name := range models {
		m := snap.Models[name]
		causes := make([]string, 0, len(m.Shed))
		for c := range m.Shed {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			fmt.Fprintf(w, "ramielfe_shed_total{model=%s,cause=%s} %d\n",
				obs.PromLabel(name), obs.PromLabel(c), m.Shed[c])
		}
	}

	writeModelHist := func(family, help string, get func(ModelSnapshot) *obs.HistogramSnapshot) {
		obs.PromHeader(w, family, "histogram", help)
		for _, name := range models {
			if h := get(snap.Models[name]); h != nil {
				obs.PromHistogram(w, family, fmt.Sprintf("model=%s", obs.PromLabel(name)), *h)
			}
		}
	}
	writeModelHist("ramielfe_e2e_seconds", "End-to-end latency of admitted requests.",
		func(m ModelSnapshot) *obs.HistogramSnapshot { return m.E2E })
	writeModelHist("ramielfe_exec_seconds", "Replica-reported execution time of completed requests.",
		func(m ModelSnapshot) *obs.HistogramSnapshot { return m.Exec })
	writeModelHist("ramielfe_reject_seconds", "Decision latency of shed requests (the microsecond-rejection contract).",
		func(m ModelSnapshot) *obs.HistogramSnapshot { return m.Reject })
}
