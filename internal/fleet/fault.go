package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	ramiel "repro"
	"repro/internal/serve"
)

// ErrInjected is the root of every failure a FaultInjector manufactures,
// so tests can tell induced failures from real ones.
var ErrInjected = errors.New("fleet: injected fault")

// FaultConfig tunes a FaultInjector. All probabilities are per-Infer and
// drawn from one seeded source, so a run is reproducible given the seed
// and the request order.
type FaultConfig struct {
	// Seed feeds the injector's private RNG.
	Seed int64
	// ErrorRate is the probability an Infer fails immediately with a
	// retryable TransportError (a connection reset, as the fleet sees it).
	ErrorRate float64
	// DropRate is the probability an Infer hangs until the caller's
	// context expires — a silently dead replica, the case hedging exists
	// for.
	DropRate float64
	// Latency (plus uniform [0, Jitter)) is added to every Infer before it
	// reaches the wrapped replica.
	Latency time.Duration
	Jitter  time.Duration
	// FlapPeriod > 0 makes Healthy() flap on a fixed duty cycle: down for
	// the first FlapDown fraction of every period, up for the rest — a
	// replica that keeps dying and recovering under the router.
	FlapPeriod time.Duration
	FlapDown   float64
}

// FaultInjector wraps a Replica with configurable, deterministically
// seeded fault injection: extra latency, transport errors, dropped
// (hanging) requests, health flapping, and hard kill/revive. It is the
// harness behind the chaos soak — everything the failure-handling layer
// claims to survive, on demand and reproducible.
type FaultInjector struct {
	inner Replica
	cfg   FaultConfig
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	killed atomic.Bool
	errs   atomic.Int64
	drops  atomic.Int64
}

// NewFaultInjector wraps inner. The zero FaultConfig injects nothing.
func NewFaultInjector(inner Replica, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{
		inner: inner,
		cfg:   cfg,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (f *FaultInjector) Name() string          { return f.inner.Name() }
func (f *FaultInjector) Ready() bool           { return !f.killed.Load() && f.inner.Ready() }
func (f *FaultInjector) Load() (int64, int64)  { return f.inner.Load() }
func (f *FaultInjector) Workers() int          { return f.inner.Workers() }
func (f *FaultInjector) InjectedErrors() int64 { return f.errs.Load() }
func (f *FaultInjector) InjectedDrops() int64  { return f.drops.Load() }

// Kill marks the replica dead (unhealthy, not ready, every Infer fails)
// until Revive.
func (f *FaultInjector) Kill() { f.killed.Store(true) }

// Revive undoes Kill.
func (f *FaultInjector) Revive() { f.killed.Store(false) }

// Healthy reports the wrapped replica's health gated by Kill and the
// configured flap duty cycle.
func (f *FaultInjector) Healthy() bool {
	if f.killed.Load() {
		return false
	}
	if f.cfg.FlapPeriod > 0 && f.cfg.FlapDown > 0 {
		phase := time.Since(f.start) % f.cfg.FlapPeriod
		if float64(phase) < f.cfg.FlapDown*float64(f.cfg.FlapPeriod) {
			return false
		}
	}
	return f.inner.Healthy()
}

// draw rolls this request's faults under the injector's single RNG.
func (f *FaultInjector) draw() (errHit, dropHit bool, extra time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	errHit = f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate
	dropHit = f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate
	extra = f.cfg.Latency
	if f.cfg.Jitter > 0 {
		extra += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	return errHit, dropHit, extra
}

// Infer applies the configured faults, then delegates. Injected errors are
// TransportErrors — retryable, breaker-visible — because that is the
// failure class a real dying replica produces.
func (f *FaultInjector) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error) {
	if f.killed.Load() {
		f.errs.Add(1)
		return nil, serve.InferMeta{}, &TransportError{Replica: f.Name(), Err: fmt.Errorf("%w: replica killed", ErrInjected)}
	}
	errHit, dropHit, extra := f.draw()
	if extra > 0 {
		t := time.NewTimer(extra)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, serve.InferMeta{}, ctx.Err()
		}
	}
	if dropHit {
		f.drops.Add(1)
		<-ctx.Done()
		return nil, serve.InferMeta{}, ctx.Err()
	}
	if errHit {
		f.errs.Add(1)
		return nil, serve.InferMeta{}, &TransportError{Replica: f.Name(), Err: ErrInjected}
	}
	return f.inner.Infer(ctx, model, feeds, noBatch)
}

// RandomFeeds passes through to the wrapped replica when it supports
// seeded feed generation.
func (f *FaultInjector) RandomFeeds(model string, seed uint64) (ramiel.Env, error) {
	if s, ok := f.inner.(feedSeeder); ok {
		return s.RandomFeeds(model, seed)
	}
	return nil, fmt.Errorf("fleet: replica %s cannot seed feeds", f.Name())
}
