package fleet

import (
	"strconv"
	"testing"
)

func TestRingOrderCoversAllReplicasOnce(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	r := newRing(names)
	var scratch []int
	for _, key := range []string{"squeezenet", "googlenet", "bert", "x"} {
		order := r.order(key, scratch)
		if len(order) != len(names) {
			t.Fatalf("order(%q) has %d entries, want %d", key, len(order), len(names))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= len(names) {
				t.Fatalf("order(%q) contains out-of-range index %d", key, idx)
			}
			if seen[idx] {
				t.Fatalf("order(%q) repeats index %d", key, idx)
			}
			seen[idx] = true
		}
		scratch = order // reuse as scratch, as route() does
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	a, b := newRing(names), newRing(names)
	for i := 0; i < 50; i++ {
		key := "model" + strconv.Itoa(i)
		oa := a.order(key, nil)
		ob := b.order(key, nil)
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: ring orders diverge (%v vs %v) — placement must be deterministic", key, oa, ob)
			}
		}
	}
}

func TestRingSpreadsModels(t *testing.T) {
	names := []string{"r0", "r1", "r2", "r3"}
	r := newRing(names)
	owners := map[int]int{}
	const keys = 400
	for i := 0; i < keys; i++ {
		owners[r.order("model"+strconv.Itoa(i), nil)[0]]++
	}
	if len(owners) != len(names) {
		t.Fatalf("only %d of %d replicas own any of %d keys: %v", len(owners), len(names), keys, owners)
	}
	for idx, n := range owners {
		// With 64 vnodes the share should be within a few x of fair; a
		// replica owning <5%% or >60%% of keys means the ring is broken.
		if n < keys/20 || n > keys*3/5 {
			t.Errorf("replica %d owns %d/%d keys — ring badly unbalanced", idx, n, keys)
		}
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := newRing([]string{"r0", "r1", "r2", "r3"})
	// Removing r3: survivors keep their names and relative positions.
	reduced := newRing([]string{"r0", "r1", "r2"})
	moved := 0
	const keys = 300
	for i := 0; i < keys; i++ {
		key := "model" + strconv.Itoa(i)
		before := full.order(key, nil)[0]
		after := reduced.order(key, nil)[0]
		if before == 3 {
			continue // its owner left; it must move
		}
		if before != after {
			moved++
		}
	}
	// Consistent hashing's contract: only the departed replica's arc
	// remaps. Hash-mod-N would move ~2/3 of the surviving keys.
	if moved > keys/10 {
		t.Errorf("%d/%d keys with surviving owners moved on membership change, want ~0", moved, keys)
	}
}
