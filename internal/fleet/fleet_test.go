package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// fakeReplica is a controllable in-memory Replica for routing and
// admission tests: readiness, queue depth, reported execution time, and
// blocking are all set by the test.
type fakeReplica struct {
	name    string
	workers int
	exec    time.Duration // reported (and slept) execution time

	healthy  atomic.Bool
	ready    atomic.Bool
	queued   atomic.Int64
	inflight atomic.Int64
	calls    atomic.Int64

	// failNext > 0 makes the next that many Infer calls fail with failErr
	// (default: a retryable TransportError) — replica-death simulation.
	failNext atomic.Int64
	failErr  atomic.Value // error

	block chan struct{} // when non-nil, Infer waits for close (or ctx)
}

func newFake(name string, workers int, exec time.Duration) *fakeReplica {
	f := &fakeReplica{name: name, workers: workers, exec: exec}
	f.healthy.Store(true)
	f.ready.Store(true)
	return f
}

// fail arms the next n Infer calls to return err (nil = retryable
// transport error).
func (f *fakeReplica) fail(n int64, err error) {
	if err != nil {
		f.failErr.Store(err)
	}
	f.failNext.Store(n)
}

func (f *fakeReplica) Name() string              { return f.name }
func (f *fakeReplica) Healthy() bool             { return f.healthy.Load() }
func (f *fakeReplica) Ready() bool               { return f.ready.Load() }
func (f *fakeReplica) Load() (q, inflight int64) { return f.queued.Load(), f.inflight.Load() }
func (f *fakeReplica) Workers() int              { return f.workers }

func (f *fakeReplica) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error) {
	f.calls.Add(1)
	f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		n := f.failNext.Load()
		if n <= 0 {
			break
		}
		if f.failNext.CompareAndSwap(n, n-1) {
			if err, _ := f.failErr.Load().(error); err != nil {
				return nil, serve.InferMeta{}, err
			}
			return nil, serve.InferMeta{}, &TransportError{Replica: f.name, Err: ErrInjected}
		}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, serve.InferMeta{}, ctx.Err()
		}
	}
	if f.exec > 0 {
		t := time.NewTimer(f.exec)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, serve.InferMeta{}, ctx.Err()
		}
	}
	return feeds, serve.InferMeta{BatchSize: 1, Exec: f.exec}, nil
}

func TestRoutingAffinity(t *testing.T) {
	fakes := []*fakeReplica{newFake("r0", 2, 0), newFake("r1", 2, 0), newFake("r2", 2, 0)}
	front := New(Config{}, fakes[0], fakes[1], fakes[2])

	var first string
	for i := 0; i < 20; i++ {
		_, _, info, err := front.Infer(context.Background(), "squeezenet", nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = info.Replica
		}
		if info.Replica != first {
			t.Fatalf("request %d routed to %s, earlier ones to %s — affinity broken without load", i, info.Replica, first)
		}
		if info.Spilled {
			t.Fatalf("request %d marked spilled on an idle fleet", i)
		}
	}
	busy := 0
	for _, f := range fakes {
		if f.calls.Load() > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("%d replicas saw traffic for one model on an idle fleet, want 1", busy)
	}
}

func TestSpilloverOnWatermark(t *testing.T) {
	fakes := []*fakeReplica{newFake("r0", 2, 0), newFake("r1", 2, 0), newFake("r2", 2, 0)}
	front := New(Config{SpillWatermark: 4}, fakes[0], fakes[1], fakes[2])

	_, _, info, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	var primary *fakeReplica
	for _, f := range fakes {
		if f.name == info.Replica {
			primary = f
		}
	}
	primary.queued.Store(10) // over the watermark

	_, _, info2, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Replica == primary.name {
		t.Fatalf("request stayed on %s with queue depth 10 > watermark 4", primary.name)
	}
	if !info2.Spilled {
		t.Error("RouteInfo.Spilled = false for a spilled request")
	}
	if got := front.SnapshotModel("m").Spills; got != 1 {
		t.Errorf("spills counter = %d, want 1", got)
	}

	// Owner drains; traffic returns home.
	primary.queued.Store(0)
	_, _, info3, err := front.Infer(context.Background(), "m", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if info3.Replica != primary.name || info3.Spilled {
		t.Errorf("after drain routed to %s (spilled %v), want owner %s", info3.Replica, info3.Spilled, primary.name)
	}
}

func TestNoReadyReplica(t *testing.T) {
	f0 := newFake("r0", 2, 0)
	f0.ready.Store(false)
	front := New(Config{}, f0)

	_, _, _, err := front.Infer(context.Background(), "m", nil, false)
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	if got := front.SnapshotModel("m").Shed[ShedNoReplica.String()]; got != 1 {
		t.Errorf("shed[no_replica] = %d, want 1", got)
	}
	if got := statusFor(err); got != http.StatusServiceUnavailable {
		t.Errorf("statusFor(ErrNoReplica) = %d, want 503", got)
	}
}

func TestAdmissionInfeasibleDeadline(t *testing.T) {
	f := newFake("r0", 1, 20*time.Millisecond)
	front := New(Config{}, f)

	// Warm the execution histogram with real completions.
	for i := 0; i < 3; i++ {
		if _, _, _, err := front.Infer(context.Background(), "m", nil, false); err != nil {
			t.Fatal(err)
		}
	}

	// A 1ms budget cannot fit a p90 of ~20ms: reject, and reject fast.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, _, err := front.Infer(ctx, "m", nil, false)
	decision := time.Since(t0)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// The contract is microseconds; allow generous slack for CI schedulers.
	if decision > 50*time.Millisecond {
		t.Errorf("rejection took %v — admission must not queue or execute", decision)
	}
	snap := front.SnapshotModel("m")
	if got := snap.Shed[ShedInfeasible.String()]; got != 1 {
		t.Errorf("shed[infeasible] = %d, want 1", got)
	}
	if snap.Reject == nil || snap.Reject.Count != 1 {
		t.Errorf("reject histogram = %+v, want 1 sample", snap.Reject)
	}
	if got := statusFor(err); got != http.StatusTooManyRequests {
		t.Errorf("statusFor(ErrInfeasible) = %d, want 429", got)
	}
	if calls := f.calls.Load(); calls != 3 {
		t.Errorf("replica saw %d calls, want 3 — the shed request must not reach it", calls)
	}

	// A generous budget stays admissible.
	if _, _, _, err := front.Infer(context.Background(), "m", nil, false); err != nil {
		t.Fatalf("feasible request rejected: %v", err)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	f := newFake("r0", 1, 0)
	f.block = make(chan struct{})
	front := New(Config{MaxPending: 1}, f)

	done := make(chan error, 1)
	go func() {
		_, _, _, err := front.Infer(context.Background(), "m", nil, false)
		done <- err
	}()
	// Wait for the first request to occupy the pending window.
	for i := 0; front.SnapshotModel("m").Pending == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	_, _, _, err := front.Infer(context.Background(), "m", nil, false)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := front.SnapshotModel("m").Shed[ShedQueueFull.String()]; got != 1 {
		t.Errorf("shed[queue_full] = %d, want 1", got)
	}
	if got := statusFor(err); got != http.StatusTooManyRequests {
		t.Errorf("statusFor(ErrQueueFull) = %d, want 429", got)
	}

	close(f.block)
	if err := <-done; err != nil {
		t.Fatalf("blocked request failed after unblock: %v", err)
	}
	if got := front.SnapshotModel("m").Pending; got != 0 {
		t.Errorf("pending gauge = %d after completion, want 0", got)
	}
}

func TestNoAdmissionPassesEverything(t *testing.T) {
	f := newFake("r0", 1, 5*time.Millisecond)
	front := New(Config{NoAdmission: true, MaxPending: 1}, f)
	for i := 0; i < 3; i++ {
		if _, _, _, err := front.Infer(context.Background(), "m", nil, false); err != nil {
			t.Fatal(err)
		}
	}
	// Even an impossible deadline is admitted (and then times out inside
	// the replica) — that is the baseline admission control improves on.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, _, err := front.Infer(ctx, "m", nil, false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (request must reach the replica)", err)
	}
	if shed := front.SnapshotModel("m").Shed; len(shed) != 0 {
		t.Errorf("shed counters %v with admission off, want none", shed)
	}
}

func TestFrontDrainFlipsReadyz(t *testing.T) {
	f := newFake("r0", 1, 0)
	front := New(Config{}, f)
	h := front.Handler()

	get := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", got)
	}
	front.BeginDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (drain is not death)", got)
	}
}

// tinyModel mirrors the serve package's test graph: x -> Relu ->
// {Sigmoid, Neg} -> Add -> out.
func tinyModel() *ramiel.Graph {
	g := graph.New("tiny")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("r", "Relu", []string{"x"}, []string{"vr"}, nil)
	g.AddNode("s", "Sigmoid", []string{"vr"}, []string{"vs"}, nil)
	g.AddNode("n", "Neg", []string{"vr"}, []string{"vn"}, nil)
	g.AddNode("a", "Add", []string{"vs", "vn"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

func tinyFeeds(base float32) ramiel.Env {
	return ramiel.Env{"x": ramiel.NewTensor(ramiel.NewShape(4),
		[]float32{base, base + 1, base + 2, base + 3})}
}

func newLocalServer(t testing.TB, cfg serve.Config) *serve.Server {
	t.Helper()
	srv := serve.New(cfg)
	srv.RegisterGraph("tiny", tinyModel())
	srv.MarkReady()
	t.Cleanup(func() { _ = srv.Close(context.Background()) })
	return srv
}

func TestRemoteReplicaRoundTrip(t *testing.T) {
	srv := newLocalServer(t, serve.Config{Workers: 2, MaxBatch: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rem := NewRemote("r0", ts.URL+"/") // trailing slash must be tolerated
	if err := rem.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !rem.Healthy() || !rem.Ready() {
		t.Fatalf("after probe healthy=%v ready=%v, want true/true", rem.Healthy(), rem.Ready())
	}
	if rem.Workers() < 1 {
		t.Errorf("probed workers = %d, want >= 1", rem.Workers())
	}

	front := New(Config{}, rem)
	feeds := tinyFeeds(-1)
	want, err := ramiel.RunSequentialGraph(tinyModel(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	outs, meta, info, err := front.Infer(context.Background(), "tiny", feeds, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replica != "r0" {
		t.Errorf("routed to %q, want r0", info.Replica)
	}
	if meta.RequestID == 0 {
		t.Error("remote meta lost the request id")
	}
	got, ok := outs["out"]
	if !ok {
		t.Fatalf("outputs %v missing \"out\"", outs)
	}
	for i, w := range want["out"].Data() {
		if g := got.Data()[i]; g != w {
			t.Fatalf("out[%d] = %g over HTTP, want %g", i, g, w)
		}
	}

	// Unknown model: the daemon's 404 + cause must survive the hop.
	_, _, _, err = front.Infer(context.Background(), "nope", feeds, false)
	var re *ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *ReplicaError", err, err)
	}
	if re.Status != http.StatusNotFound {
		t.Errorf("replica error status = %d, want 404", re.Status)
	}
	if statusFor(err) != http.StatusNotFound {
		t.Errorf("statusFor passes %d, want the replica's 404", statusFor(err))
	}
}

func TestRemoteProbeFailureMarksUnhealthy(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	rem := NewRemote("r0", ts.URL)
	if err := rem.Probe(context.Background()); err == nil {
		t.Fatal("probe of a 500 endpoint reported success")
	}
	if rem.Healthy() || rem.Ready() {
		t.Errorf("after failed probe healthy=%v ready=%v, want false/false", rem.Healthy(), rem.Ready())
	}
	ts.Close()
	if err := rem.Probe(context.Background()); err == nil {
		t.Fatal("probe of a dead endpoint reported success")
	}
}

// TestFleetSoak is the accounting test the CI race step runs: an open-loop
// generator over N in-process replicas, asserting that every offered
// request is answered exactly once (no lost, no duplicated, no corrupted
// responses) and that the front's shed-vs-timeout accounting adds up.
func TestFleetSoak(t *testing.T) {
	const replicas = 3
	cfg := serve.Config{Workers: 2, MaxBatch: 4, FlushTimeout: 500 * time.Microsecond, AdaptiveBatch: true}
	reps := make([]Replica, replicas)
	for i := 0; i < replicas; i++ {
		reps[i] = NewLocal(fmt.Sprintf("r%d", i), newLocalServer(t, cfg))
	}
	front := New(Config{Deadline: 2 * time.Second}, reps...)

	// Precompute expected outputs for the 8 distinct feed bases.
	want := make([][]float32, 8)
	for b := range want {
		outs, err := ramiel.RunSequentialGraph(tinyModel(), tinyFeeds(float32(b)))
		if err != nil {
			t.Fatal(err)
		}
		want[b] = outs["out"].Data()
	}

	var corrupt atomic.Int64
	var mu sync.Mutex
	answered := map[int]int{} // arrival index -> responses seen
	gen := &bench.LoadGen{
		Rate:     1500,
		Duration: 400 * time.Millisecond,
		Timeout:  time.Second,
		Do: func(ctx context.Context, i int) error {
			base := i % 8
			outs, _, _, err := front.Infer(ctx, "tiny", tinyFeeds(float32(base)), false)
			if err != nil {
				return err
			}
			mu.Lock()
			answered[i]++
			mu.Unlock()
			for j, w := range want[base] {
				if outs["out"].Data()[j] != w {
					corrupt.Add(1)
					return errors.New("corrupt response")
				}
			}
			return nil
		},
		Classify: func(err error) string {
			switch {
			case err == nil:
				return "ok"
			case errors.Is(err, ErrInfeasible), errors.Is(err, ErrQueueFull), errors.Is(err, ErrNoReplica):
				return "shed"
			case errors.Is(err, context.DeadlineExceeded):
				return "timeout"
			default:
				return "error"
			}
		},
	}
	report := gen.Run(context.Background())

	if got := report.Completed(); got != report.Offered {
		t.Errorf("completions %d != offered %d — lost or duplicated responses", got, report.Offered)
	}
	for i, n := range answered {
		if n != 1 {
			t.Errorf("arrival %d answered %d times", i, n)
		}
	}
	if n := corrupt.Load(); n != 0 {
		t.Errorf("%d corrupted responses (batch lanes crossed?)", n)
	}
	if n := report.Class("error").Count; n != 0 {
		t.Errorf("%d unexpected errors during soak", n)
	}

	snap := front.SnapshotModel("tiny")
	if snap.Requests != report.Offered {
		t.Errorf("front saw %d requests, generator offered %d", snap.Requests, report.Offered)
	}
	var shedTotal int64
	for _, n := range snap.Shed {
		shedTotal += n
	}
	if snap.Admitted+shedTotal != snap.Requests {
		t.Errorf("admitted %d + shed %d != requests %d — a request escaped accounting",
			snap.Admitted, shedTotal, snap.Requests)
	}
	if shedTotal != report.Class("shed").Count {
		t.Errorf("front shed %d, generator observed %d", shedTotal, report.Class("shed").Count)
	}
	if snap.Pending != 0 {
		t.Errorf("pending gauge = %d after the soak drained, want 0", snap.Pending)
	}
	t.Logf("soak: offered %d ok %d shed %d timeout %d (spills %d)",
		report.Offered, report.Class("ok").Count, report.Class("shed").Count,
		report.Class("timeout").Count, snap.Spills)
}

func TestFrontHTTPInfer(t *testing.T) {
	srv := newLocalServer(t, serve.Config{Workers: 2, MaxBatch: 1})
	front := New(Config{}, NewLocal("r0", srv))
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	body := `{"model":"tiny","inputs":{"x":{"shape":[4],"data":[-1,0,1,2]}}}`
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Fleet-Replica"); got != "r0" {
		t.Errorf("X-Fleet-Replica = %q, want r0", got)
	}

	// Shed surface: an unknown model is a replica-side 404, not a fleet 5xx.
	resp2, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"nope","inputs":{"x":{"shape":[1],"data":[1]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model status = %d, want 404", resp2.StatusCode)
	}
}
