package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/bench"
	"repro/internal/serve"
)

// chaosOwner returns the index of model's ring owner among names, so the
// chaos tests can aim the fault injector at the replica that actually
// takes the traffic. The ring depends only on the name set, never on
// replica state, so this is stable for the lifetime of the test.
func chaosOwner(model string, names []string) int {
	return newRing(names).order(model, nil)[0]
}

// TestChaosSoak is the fault-injection acceptance test: three real
// replicas, the ring owner for the model flapping its health bit and
// injecting transport errors and drops, retries + hedging + breakers all
// armed. Every accepted request must be answered exactly once, and no
// retryable replica failure may reach a client while healthy replicas
// exist.
func TestChaosSoak(t *testing.T) {
	const replicas = 3
	cfg := serve.Config{Workers: 2, MaxBatch: 4, FlushTimeout: 500 * time.Microsecond, AdaptiveBatch: true}
	names := make([]string, replicas)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	owner := chaosOwner("tiny", names)

	var fi *FaultInjector
	reps := make([]Replica, replicas)
	for i := 0; i < replicas; i++ {
		rep := Replica(NewLocal(names[i], newLocalServer(t, cfg)))
		if i == owner {
			fi = NewFaultInjector(rep, FaultConfig{
				Seed:       1,
				ErrorRate:  0.05,
				DropRate:   0.01,
				FlapPeriod: 120 * time.Millisecond,
				FlapDown:   0.35,
			})
			rep = fi
		}
		reps[i] = rep
	}
	front := New(Config{
		Deadline:         2 * time.Second,
		MaxAttempts:      3,
		HedgeDelay:       25 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}, reps...)

	want := make([][]float32, 8)
	for b := range want {
		outs, err := ramiel.RunSequentialGraph(tinyModel(), tinyFeeds(float32(b)))
		if err != nil {
			t.Fatal(err)
		}
		want[b] = outs["out"].Data()
	}

	var corrupt atomic.Int64
	var mu sync.Mutex
	answered := map[int]int{}
	gen := &bench.LoadGen{
		Rate:     1200,
		Duration: 400 * time.Millisecond,
		Timeout:  time.Second,
		Do: func(ctx context.Context, i int) error {
			base := i % 8
			outs, _, _, err := front.Infer(ctx, "tiny", tinyFeeds(float32(base)), false)
			if err != nil {
				return err
			}
			mu.Lock()
			answered[i]++
			mu.Unlock()
			for j, w := range want[base] {
				if outs["out"].Data()[j] != w {
					corrupt.Add(1)
					return errors.New("corrupt response")
				}
			}
			return nil
		},
		Classify: classifyFleet,
	}
	report := gen.Run(context.Background())

	if got := report.Completed(); got != report.Offered {
		t.Errorf("completions %d != offered %d — lost or duplicated responses", got, report.Offered)
	}
	for i, n := range answered {
		if n != 1 {
			t.Errorf("arrival %d answered %d times", i, n)
		}
	}
	if n := corrupt.Load(); n != 0 {
		t.Errorf("%d corrupted responses under fault injection", n)
	}
	// The tentpole contract: injected transport failures are the fleet's
	// problem, not the client's. With two healthy replicas always
	// available, zero requests may surface an error.
	if n := report.Class("error").Count; n != 0 {
		t.Errorf("%d client-visible errors despite healthy replicas", n)
	}

	if fi.InjectedErrors() == 0 {
		t.Error("the injector never injected — the soak tested nothing")
	}
	snap := front.SnapshotModel("tiny")
	if snap.Retries == 0 {
		t.Error("no retries recorded against a 5%% injected error rate")
	}
	var shedTotal int64
	for _, n := range snap.Shed {
		shedTotal += n
	}
	if snap.Admitted+shedTotal != snap.Requests {
		t.Errorf("admitted %d + shed %d != requests %d — a request escaped accounting",
			snap.Admitted, shedTotal, snap.Requests)
	}
	if snap.Pending != 0 {
		t.Errorf("pending gauge = %d after the chaos drained, want 0", snap.Pending)
	}
	okP99 := time.Duration(report.Class("ok").Latency.Snapshot().P99Ns)
	if okP99 > gen.Timeout {
		t.Errorf("accepted p99 = %v breached the %v client timeout", okP99, gen.Timeout)
	}
	t.Logf("chaos: offered %d ok %d shed %d timeout %d | injected errs %d drops %d | retries %d (wins %d) hedges %d (wins %d) | ok p99 %v",
		report.Offered, report.Class("ok").Count, report.Class("shed").Count, report.Class("timeout").Count,
		fi.InjectedErrors(), fi.InjectedDrops(), snap.Retries, snap.RetryWins, snap.Hedges, snap.HedgeWins, okP99)
}

// BenchmarkFleetChaos is the CI chaos benchmark behind BENCH_chaos.json:
// queued replicas at capacity with the ring owner injecting errors and
// flapping, retries + hedging + breakers armed. The recorded metrics are
// the failure-handling story in numbers — ok/shed/timeout/error split,
// retry and hedge counts, and the p99 accepted requests experienced while
// a third of the fleet misbehaved.
func BenchmarkFleetChaos(b *testing.B) {
	const (
		service  = 2 * time.Millisecond
		replicas = 3
		rate     = 1200
		duration = 300 * time.Millisecond
		timeout  = 250 * time.Millisecond
	)
	names := make([]string, replicas)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	owner := chaosOwner("m", names)

	for iter := 0; iter < b.N; iter++ {
		qs := make([]*queuedReplica, replicas)
		reps := make([]Replica, replicas)
		var fi *FaultInjector
		for i := range reps {
			qs[i] = newQueuedReplica(names[i], service)
			reps[i] = qs[i]
			if i == owner {
				fi = NewFaultInjector(qs[i], FaultConfig{
					Seed:       7,
					ErrorRate:  0.05,
					FlapPeriod: 100 * time.Millisecond,
					FlapDown:   0.3,
				})
				reps[i] = fi
			}
		}
		front := New(Config{
			MaxAttempts:      3,
			HedgeDelay:       20 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		}, reps...)
		gen := &bench.LoadGen{
			Rate:     rate,
			Duration: duration,
			Timeout:  timeout,
			Do: func(ctx context.Context, i int) error {
				_, _, _, err := front.Infer(ctx, "m", nil, false)
				return err
			},
			Classify: classifyFleet,
		}
		report := gen.Run(context.Background())
		for _, q := range qs {
			q.Close()
		}
		if iter == b.N-1 {
			ok := report.Class("ok")
			snap := front.SnapshotModel("m")
			b.ReportMetric(float64(ok.Latency.Snapshot().P99Ns)/1e6, "p99_ok_ms")
			b.ReportMetric(float64(ok.Count), "ok")
			b.ReportMetric(float64(report.Class("shed").Count), "shed")
			b.ReportMetric(float64(report.Class("timeout").Count), "timeout")
			b.ReportMetric(float64(report.Class("error").Count), "errors")
			b.ReportMetric(float64(snap.Retries), "retries")
			b.ReportMetric(float64(snap.Hedges), "hedges")
			b.ReportMetric(float64(fi.InjectedErrors()), "injected_errs")
		}
	}
}
