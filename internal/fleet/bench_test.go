package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	ramiel "repro"
	"repro/internal/bench"
	"repro/internal/serve"
)

// queuedReplica models a single-worker replica with a real FIFO queue and
// deterministic service time — the queueing system admission control is
// about, without kernel-execution noise: under overload the queue grows
// without bound and late arrivals burn their whole deadline waiting.
// Expired requests are dropped at dequeue (matching serve's context-aware
// pool), so the no-admission baseline fails by timeout, not by crash.
type queuedReplica struct {
	name    string
	service time.Duration
	jobs    chan *qJob
	stop    chan struct{}

	queued   chan struct{} // len() = queue depth; buffered like jobs
	inflight chan struct{} // len() = in-flight (0 or 1)
}

type qJob struct {
	ctx  context.Context
	done chan error
}

func newQueuedReplica(name string, service time.Duration) *queuedReplica {
	q := &queuedReplica{
		name:     name,
		service:  service,
		jobs:     make(chan *qJob, 10000),
		stop:     make(chan struct{}),
		queued:   make(chan struct{}, 10000),
		inflight: make(chan struct{}, 1),
	}
	go q.worker()
	return q
}

func (q *queuedReplica) worker() {
	for {
		select {
		case job := <-q.jobs:
			<-q.queued
			if job.ctx.Err() != nil {
				job.done <- job.ctx.Err()
				continue
			}
			q.inflight <- struct{}{}
			t := time.NewTimer(q.service)
			select {
			case <-t.C:
				job.done <- nil
			case <-job.ctx.Done():
				t.Stop()
				job.done <- job.ctx.Err()
			}
			<-q.inflight
		case <-q.stop:
			return
		}
	}
}

func (q *queuedReplica) Name() string         { return q.name }
func (q *queuedReplica) Healthy() bool        { return true }
func (q *queuedReplica) Ready() bool          { return true }
func (q *queuedReplica) Workers() int         { return 1 }
func (q *queuedReplica) Load() (int64, int64) { return int64(len(q.queued)), int64(len(q.inflight)) }
func (q *queuedReplica) Close()               { close(q.stop) }

func (q *queuedReplica) Infer(ctx context.Context, model string, feeds ramiel.Env, noBatch bool) (ramiel.Env, serve.InferMeta, error) {
	job := &qJob{ctx: ctx, done: make(chan error, 1)}
	q.queued <- struct{}{}
	q.jobs <- job
	if err := <-job.done; err != nil {
		return nil, serve.InferMeta{}, err
	}
	return feeds, serve.InferMeta{BatchSize: 1, Exec: q.service}, nil
}

// BenchmarkFleetAdmission drives the fleet 3x over capacity with an
// open-loop generator, admission on vs off. The numbers that matter:
// p99_shed_us (the microsecond-rejection contract), p99_ok_ms (what
// accepted requests experience — bounded by the pending window with
// admission on, by the client timeout without), and the ok/shed/timeout
// split. CI records them in BENCH_fleet.json.
func BenchmarkFleetAdmission(b *testing.B) {
	const (
		service  = 2 * time.Millisecond // per-request service time, 1 worker each
		replicas = 2                    // capacity = 1000 req/s
		rate     = 3000                 // offered load, 3x capacity
		duration = 300 * time.Millisecond
		timeout  = 250 * time.Millisecond
	)
	for _, mode := range []struct {
		name        string
		noAdmission bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				reps := make([]Replica, replicas)
				qs := make([]*queuedReplica, replicas)
				for i := range reps {
					qs[i] = newQueuedReplica(fmt.Sprintf("r%d", i), service)
					reps[i] = qs[i]
				}
				front := New(Config{NoAdmission: mode.noAdmission}, reps...)
				gen := &bench.LoadGen{
					Rate:     rate,
					Duration: duration,
					Timeout:  timeout,
					Do: func(ctx context.Context, i int) error {
						_, _, _, err := front.Infer(ctx, "m", nil, false)
						return err
					},
					Classify: classifyFleet,
				}
				report := gen.Run(context.Background())
				for _, q := range qs {
					q.Close()
				}
				if iter == b.N-1 {
					ok := report.Class("ok")
					shed := report.Class("shed")
					b.ReportMetric(float64(ok.Latency.Snapshot().P99Ns)/1e6, "p99_ok_ms")
					if shed.Count > 0 {
						b.ReportMetric(float64(shed.Latency.Snapshot().P99Ns)/1e3, "p99_shed_us")
					}
					b.ReportMetric(float64(ok.Count), "ok")
					b.ReportMetric(float64(shed.Count), "shed")
					b.ReportMetric(float64(report.Class("timeout").Count), "timeout")
				}
			}
		})
	}
}

func classifyFleet(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrInfeasible), errors.Is(err, ErrQueueFull), errors.Is(err, ErrNoReplica):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// BenchmarkFleetAdaptiveBatch A/Bs the replica-level batching policy
// through a real serve.Server: static flush timeout vs the adaptive
// controller, at a sparse and a dense arrival rate. The adaptive win shows
// in p50_ok_us at low load (no idle flush-timeout wait on lone requests);
// at high load ok_per_s must not regress versus static.
func BenchmarkFleetAdaptiveBatch(b *testing.B) {
	const duration = 300 * time.Millisecond
	for _, policy := range []struct {
		name     string
		adaptive bool
	}{{"static", false}, {"adaptive", true}} {
		for _, load := range []struct {
			name string
			rate float64
		}{{"low", 300}, {"high", 5000}} {
			b.Run(policy.name+"/"+load.name, func(b *testing.B) {
				cfg := serve.Config{
					Workers:       2,
					MaxBatch:      4,
					FlushTimeout:  2 * time.Millisecond,
					AdaptiveBatch: policy.adaptive,
				}
				srv := serve.New(cfg)
				srv.RegisterGraph("tiny", tinyModel())
				srv.MarkReady()
				defer srv.Close(context.Background())
				front := New(Config{}, NewLocal("r0", srv))
				feeds := tinyFeeds(1)

				b.ResetTimer()
				for iter := 0; iter < b.N; iter++ {
					gen := &bench.LoadGen{
						Rate:     load.rate,
						Duration: duration,
						Timeout:  time.Second,
						Do: func(ctx context.Context, i int) error {
							_, _, _, err := front.Infer(ctx, "tiny", feeds, false)
							return err
						},
						Classify: classifyFleet,
					}
					report := gen.Run(context.Background())
					if iter == b.N-1 {
						ok := report.Class("ok")
						snap := ok.Latency.Snapshot()
						b.ReportMetric(float64(snap.P50Ns)/1e3, "p50_ok_us")
						b.ReportMetric(float64(snap.P99Ns)/1e3, "p99_ok_us")
						b.ReportMetric(float64(ok.Count)/duration.Seconds(), "ok_per_s")
						b.ReportMetric(float64(report.Offered-ok.Count), "not_ok")
					}
				}
			})
		}
	}
}
