package fleet

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker machine
// (Hystrix/Envoy lineage): closed passes traffic and counts consecutive
// retryable failures; open ejects the replica from routing; half-open
// admits exactly one probe request whose outcome decides between closing
// and re-opening.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "closed"
}

// breaker is a per-replica circuit breaker layered over the health bits:
// health says "the replica's probe answered", the breaker says "requests
// actually sent there keep failing at the transport/5xx level". Only
// retryable failures count (a 4xx proves the replica is alive and
// healthy); successes reset the streak.
//
// Routing consults the breaker in two steps because the ring walk
// considers several candidates per request: routable() is a non-consuming
// filter (it also moves open→half-open once the cooldown elapses), and
// claim() consumes the single half-open probe slot only for the replica
// actually chosen. A request shed after routing must refund() the slot.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool  // half-open probe slot taken
	opens    int64 // cumulative closed/half-open → open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// routable reports whether routing may consider the replica. Non-consuming;
// the chosen candidate must claim().
func (b *breaker) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = false
		return true
	case breakerHalfOpen:
		return !b.probing
	}
	return true
}

// claim takes the half-open probe slot (a no-op while closed). ok is
// false when another request won the slot between routable() and here —
// the caller should route elsewhere. probe is true only when this call
// consumed the half-open slot; the caller must refund() exactly such
// claims if the attempt ends without a health signal (shed after routing,
// cancellation, deadline), or the slot leaks and the replica stays
// ejected forever — half-open has no cooldown escape.
func (b *breaker) claim() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = false
	}
	if b.state == breakerHalfOpen {
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return true, false
}

// refund releases a claimed probe slot without an outcome — the request
// was shed by admission after routing had already chosen the replica, or
// the probing attempt was cancelled before the replica answered.
func (b *breaker) refund() {
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// onSuccess resets the failure streak and closes the breaker (a half-open
// probe that succeeds re-admits the replica).
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.state = breakerClosed
	b.probing = false
	b.mu.Unlock()
}

// onFailure records one retryable failure: the threshold'th consecutive
// failure trips a closed breaker; any failure re-opens a half-open one.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.threshold > 0 && b.fails >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		// A straggling attempt launched before the trip; the cooldown
		// clock is not restarted for it.
	}
}

// trip moves to open. Caller holds mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.fails = 0
	b.probing = false
}

// snapshot returns the state label and cumulative open count for /v1/fleet
// and /metrics.
func (b *breaker) snapshot() (state string, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}
