package passes

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// The passes in this file implement the paper's "future work: more powerful
// optimizations for graph reductions": common-subexpression elimination and
// algebraic identity removal (operator fusion lives in fuse.go). All are
// semantics-preserving graph rewrites that run before clustering.

// CSEReport summarizes a common-subexpression-elimination run.
type CSEReport struct {
	// Merged counts duplicate nodes removed.
	Merged int
}

// EliminateCommonSubexpressions merges structurally identical nodes: same
// op type, same input value names (order-sensitive) and equal attributes.
// The survivor is the earlier node; later duplicates' outputs are rewired
// to it. Useful after cloning or on exporter graphs that duplicate shape
// arithmetic.
func EliminateCommonSubexpressions(g *graph.Graph) (CSEReport, error) {
	order, err := g.TopoSort()
	if err != nil {
		return CSEReport{}, err
	}
	report := CSEReport{}
	for {
		seen := map[string]*graph.Node{}
		rename := map[string]string{}
		removed := map[*graph.Node]bool{}
		for _, n := range order {
			if removed[n] {
				continue
			}
			// Apply pending renames so chains of duplicates collapse in
			// one sweep.
			for i, in := range n.Inputs {
				if r, ok := rename[in]; ok {
					n.Inputs[i] = r
				}
			}
			if n.OpType == "Constant" && len(n.Attrs) > 64 {
				// Hashing giant constant payloads is not worth it.
				continue
			}
			key := cseKey(n)
			if prev, dup := seen[key]; dup && len(prev.Outputs) == len(n.Outputs) {
				outputsFree := true
				for _, o := range n.Outputs {
					if g.IsGraphOutput(o) {
						outputsFree = false
						break
					}
				}
				if outputsFree {
					for i, o := range n.Outputs {
						rename[o] = prev.Outputs[i]
					}
					removed[n] = true
					report.Merged++
					continue
				}
			}
			seen[key] = n
		}
		if len(removed) == 0 {
			break
		}
		// Final rename propagation over every node (consumers later in
		// `order` were handled; re-check all for safety).
		for _, n := range g.Nodes {
			for i, in := range n.Inputs {
				if r, ok := rename[in]; ok {
					n.Inputs[i] = r
				}
			}
		}
		g.RemoveNodes(func(n *graph.Node) bool { return removed[n] })
		order, err = g.TopoSort()
		if err != nil {
			return report, err
		}
	}
	if report.Merged > 0 {
		if err := g.Validate(); err != nil {
			return report, fmt.Errorf("passes: CSE corrupted graph: %w", err)
		}
	}
	return report, nil
}

// cseKey builds a structural hash key for a node.
func cseKey(n *graph.Node) string {
	var b strings.Builder
	b.WriteString(n.OpType)
	b.WriteByte('|')
	b.WriteString(strings.Join(n.Inputs, ","))
	b.WriteByte('|')
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, n.Attrs[k])
	}
	return b.String()
}

// IdentityReport summarizes identity-removal.
type IdentityReport struct {
	// Removed counts Identity (and no-op Reshape) nodes eliminated.
	Removed int
}

// RemoveIdentities deletes Identity nodes (and Reshape nodes whose shape
// input is a constant equal to the producer's inferred shape when known),
// rewiring consumers to the identity's input. Graph outputs produced by an
// identity keep the node (removing it would rename the output).
func RemoveIdentities(g *graph.Graph) (IdentityReport, error) {
	report := IdentityReport{}
	rename := map[string]string{}
	removed := map[*graph.Node]bool{}
	for _, n := range g.Nodes {
		if n.OpType != "Identity" || len(n.Inputs) != 1 || len(n.Outputs) != 1 {
			continue
		}
		if g.IsGraphOutput(n.Outputs[0]) {
			continue
		}
		src := n.Inputs[0]
		if r, ok := rename[src]; ok {
			src = r
		}
		rename[n.Outputs[0]] = src
		removed[n] = true
		report.Removed++
	}
	if report.Removed == 0 {
		return report, nil
	}
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if r, ok := rename[in]; ok {
				n.Inputs[i] = r
			}
		}
	}
	g.RemoveNodes(func(n *graph.Node) bool { return removed[n] })
	if err := g.Validate(); err != nil {
		return report, fmt.Errorf("passes: identity removal corrupted graph: %w", err)
	}
	return report, nil
}

// ReduceReport aggregates the full graph-reduction pipeline.
type ReduceReport struct {
	Prune    PruneReport
	CSE      CSEReport
	Identity IdentityReport
	Fuse     FusionReport
}

// Reduce runs the complete reduction pipeline to a fixed point: constant
// propagation + DCE, identity removal and CSE, with optional operator
// fusion last (fusion changes op granularity, so it runs once, after the
// structural rewrites converge).
func Reduce(g *graph.Graph, fuse bool) (ReduceReport, error) {
	total := ReduceReport{}
	for {
		pr, err := Prune(g)
		if err != nil {
			return total, err
		}
		ir, err := RemoveIdentities(g)
		if err != nil {
			return total, err
		}
		cr, err := EliminateCommonSubexpressions(g)
		if err != nil {
			return total, err
		}
		total.Prune.Fold.Folded += pr.Fold.Folded
		total.Prune.DCE.RemovedNodes += pr.DCE.RemovedNodes
		total.Prune.DCE.RemovedInitializers += pr.DCE.RemovedInitializers
		total.Identity.Removed += ir.Removed
		total.CSE.Merged += cr.Merged
		if pr.Fold.Folded == 0 && pr.DCE.RemovedNodes == 0 && ir.Removed == 0 && cr.Merged == 0 {
			break
		}
	}
	if fuse {
		fr, err := Fuse(g)
		if err != nil {
			return total, err
		}
		total.Fuse = fr
	}
	return total, nil
}
