// Graph-level operator fusion: the compile-time half of the fusion layer.
// Three rewrites run in sequence (Fuse), each semantics-preserving:
//
//  1. FoldBatchNorms — inference-mode BatchNormalization with constant
//     parameters following a Conv/Gemm is folded into the producer's
//     weights and bias, deleting the BN's whole memory pass. Folded
//     weights are fresh initializers, so they compose with the prepack
//     pass (packed once at Compile) and never mutate tensors shared with
//     the caller's graph.
//  2. AttachEpilogues — a Relu/LeakyRelu/Clip whose only producer is a
//     Conv/Gemm/MatMul is absorbed into the producer as a writeback
//     epilogue (ops.EpilogueAttrs): the kernel applies it while each
//     output tile is cache-hot, so Conv→BN→Relu becomes exactly one
//     kernel invocation.
//  3. FuseElementwise — remaining chains of elementwise ops collapse into
//     single FusedElementwise nodes executed as one specialized sweep
//     (ops.FusedElementwise): one memory pass and one node where there
//     were k of each.
//
// Pass ordering within Compile: simplify/constfold (Prune) → Fuse →
// clustering → prepack. Fusion must precede prepack so folded weights are
// what gets packed, and precede clustering so a fused chain schedules as
// one unit.
package passes

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// FusionReport summarizes one Fuse run.
type FusionReport struct {
	// BNFolded counts BatchNormalization nodes folded into their producer.
	BNFolded int
	// Epilogues counts activations absorbed into GEMM-shaped kernels.
	Epilogues int
	// Chains counts FusedElementwise nodes created.
	Chains int
	// ChainNodes counts the elementwise nodes those chains collapsed.
	ChainNodes int
}

// NodesRemoved is the net node-count reduction of the run.
func (r FusionReport) NodesRemoved() int {
	return r.BNFolded + r.Epilogues + r.ChainNodes - r.Chains
}

// Any reports whether the run changed the graph.
func (r FusionReport) Any() bool { return r.NodesRemoved() > 0 }

// Fuse runs the full operator-fusion pipeline on g in place.
func Fuse(g *graph.Graph) (FusionReport, error) {
	rep := FusionReport{}
	var err error
	if rep.BNFolded, err = FoldBatchNorms(g); err != nil {
		return rep, err
	}
	if rep.Epilogues, err = AttachEpilogues(g); err != nil {
		return rep, err
	}
	if rep.Chains, rep.ChainNodes, err = FuseElementwise(g); err != nil {
		return rep, err
	}
	if rep.Any() {
		// Folding leaves the original weight initializers unreferenced;
		// drop them (and anything else fusion orphaned).
		EliminateDeadCode(g)
		if err := g.Validate(); err != nil {
			return rep, fmt.Errorf("passes: fusion corrupted graph: %w", err)
		}
	}
	return rep, nil
}

// hasFusionAttrs reports whether a node already carries an absorbed
// epilogue; such nodes compute more than their OpType says, so structural
// rewrites must leave them alone.
func hasFusionAttrs(n *graph.Node) bool {
	return n.Attrs.Str(ops.AttrEpilogueOp, "") != ""
}

// constParam returns the initializer bound to name when it is a true
// compile-time constant: present and not overridable by a feed (a name
// that is also a declared graph input is feedable and must not be folded).
func constParam(g *graph.Graph, name string) *tensor.Tensor {
	t := g.Initializers[name]
	if t == nil || g.IsGraphInput(name) {
		return nil
	}
	return t
}

// soleConsumerEdge checks the producer→consumer fusion precondition: p's
// single output feeds exactly one consumer and is not a graph output.
// Returns that consumer, or nil.
func soleConsumerEdge(g *graph.Graph, p *graph.Node) *graph.Node {
	if len(p.Outputs) != 1 || g.IsGraphOutput(p.Outputs[0]) {
		return nil
	}
	cs := g.Consumers(p.Outputs[0])
	if len(cs) != 1 {
		return nil
	}
	return cs[0]
}

// FoldBatchNorms folds every eligible BatchNormalization into the Conv or
// Gemm producing its input and returns the number folded. Eligibility:
// the producer's output has the BN as sole consumer, the BN's four
// parameters and the producer's weights (and bias, if any) are constant
// initializers not overridable by feeds, and channel counts line up.
func FoldBatchNorms(g *graph.Graph) (int, error) {
	folded := 0
	removed := map[*graph.Node]bool{}
	for _, bn := range g.Nodes {
		if removed[bn] || bn.OpType != "BatchNormalization" || len(bn.Inputs) != 5 || len(bn.Outputs) != 1 {
			continue
		}
		p := g.Producer(bn.Inputs[0])
		if p == nil || removed[p] || (p.OpType != "Conv" && p.OpType != "Gemm") {
			continue
		}
		if hasFusionAttrs(p) || soleConsumerEdge(g, p) != bn {
			continue
		}
		var params [4]*tensor.Tensor // scale, bias, mean, variance
		ok := true
		for i, name := range bn.Inputs[1:] {
			if params[i] = constParam(g, name); params[i] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		eps := bn.Attrs.Float("epsilon", 1e-5)
		c := params[0].Numel()
		if params[1].Numel() != c || params[2].Numel() != c || params[3].Numel() != c {
			continue
		}
		// Per-channel affine: BN(y) = a⊙y + b.
		a := make([]float32, c)
		b := make([]float32, c)
		sd, bd, md, vd := params[0].Data(), params[1].Data(), params[2].Data(), params[3].Data()
		for ch := 0; ch < c; ch++ {
			inv := float32(1 / math.Sqrt(float64(vd[ch])+eps))
			a[ch] = sd[ch] * inv
			b[ch] = bd[ch] - md[ch]*sd[ch]*inv
		}
		var did bool
		switch p.OpType {
		case "Conv":
			did = foldBNIntoConv(g, p, a, b)
		case "Gemm":
			did = foldBNIntoGemm(g, p, a, b)
		}
		if !did {
			continue
		}
		p.Outputs[0] = bn.Outputs[0]
		removed[bn] = true
		folded++
		g.Invalidate()
	}
	if folded > 0 {
		g.RemoveNodes(func(n *graph.Node) bool { return removed[n] })
	}
	return folded, nil
}

// freshValueName derives an unused value name from base.
func freshValueName(g *graph.Graph, base string) string {
	name := base
	for i := 0; ; i++ {
		if i > 0 {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		if g.Producer(name) == nil && !g.IsInitializer(name) && !g.IsGraphInput(name) && !g.IsGraphOutput(name) {
			return name
		}
	}
}

// foldBNIntoConv rewrites Conv weights W'[oc,…] = a[oc]·W[oc,…] and bias
// B'[oc] = a[oc]·B[oc] + b[oc] (adding a bias input when absent). The new
// tensors are fresh initializers — initializer storage is shared across
// graph clones and must never be mutated.
func foldBNIntoConv(g *graph.Graph, p *graph.Node, a, b []float32) bool {
	if len(p.Inputs) != 2 && len(p.Inputs) != 3 {
		return false
	}
	w := constParam(g, p.Inputs[1])
	if w == nil || w.Shape().Rank() != 4 || w.Shape()[0] != len(a) {
		return false
	}
	var bias *tensor.Tensor
	if len(p.Inputs) == 3 {
		if bias = constParam(g, p.Inputs[2]); bias == nil || bias.Numel() != len(a) {
			return false
		}
	}
	m := len(a)
	per := w.Numel() / m
	nw := w.Clone()
	nwd := nw.Data()
	for oc := 0; oc < m; oc++ {
		s := a[oc]
		row := nwd[oc*per : (oc+1)*per]
		for i := range row {
			row[i] *= s
		}
	}
	nb := make([]float32, m)
	for oc := 0; oc < m; oc++ {
		if bias != nil {
			nb[oc] = a[oc]*bias.Data()[oc] + b[oc]
		} else {
			nb[oc] = b[oc]
		}
	}
	wName := freshValueName(g, p.Inputs[1]+"_bnfold")
	bName := freshValueName(g, p.Name+"_bnfold_b")
	g.AddInitializer(wName, nw)
	g.AddInitializer(bName, tensor.FromSlice(nb))
	p.Inputs[1] = wName
	if len(p.Inputs) == 3 {
		p.Inputs[2] = bName
	} else {
		p.Inputs = append(p.Inputs, bName)
	}
	return true
}

// foldBNIntoGemm rewrites Gemm (Y = alpha·op(A)·op(B) + beta·C) so that
// BN(Y) = a⊙Y + b becomes alpha·op(A)·op(B'), with B's column j scaled by
// a[j], plus a rewritten bias C' with beta·C'[…,j] = a[j]·beta·C[…,j] +
// b[j]. A missing or beta-silenced C becomes a fresh row-vector bias.
func foldBNIntoGemm(g *graph.Graph, p *graph.Node, a, b []float32) bool {
	if len(p.Inputs) != 2 && len(p.Inputs) != 3 {
		return false
	}
	w := constParam(g, p.Inputs[1])
	if w == nil || w.Shape().Rank() != 2 {
		return false
	}
	transB := p.Attrs.Int("transB", 0) != 0
	n := w.Shape()[1]
	if transB {
		n = w.Shape()[0]
	}
	if n != len(a) {
		return false
	}
	beta := p.Attrs.Float("beta", 1)
	var c *tensor.Tensor
	if len(p.Inputs) == 3 && beta != 0 {
		if c = constParam(g, p.Inputs[2]); c == nil {
			return false
		}
		// Only the broadcast forms the kernel accepts.
		if cn := c.Numel(); cn != n && cn != 1 && c.Shape().Rank() != 2 {
			return false
		}
	}

	nw := w.Clone()
	nwd := nw.Data()
	if transB { // B is [n, k]: scale row j
		k := w.Shape()[1]
		for j := 0; j < n; j++ {
			row := nwd[j*k : (j+1)*k]
			for i := range row {
				row[i] *= a[j]
			}
		}
	} else { // B is [k, n]: scale column j
		k := w.Shape()[0]
		for i := 0; i < k; i++ {
			row := nwd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] *= a[j]
			}
		}
	}

	var nc *tensor.Tensor
	switch {
	case c == nil:
		// No live bias term: install b as a row vector with beta = 1.
		nc = tensor.FromSlice(b)
		if p.Attrs == nil {
			p.Attrs = ops.Attrs{}
		}
		p.Attrs["beta"] = 1.0
	case c.Numel() == 1:
		// Scalar bias widens to a row vector: a[j]·c + b[j]/beta.
		v := c.Data()[0]
		row := make([]float32, n)
		for j := 0; j < n; j++ {
			row[j] = a[j]*v + b[j]/float32(beta)
		}
		nc = tensor.FromSlice(row)
	case c.Numel() == n:
		row := make([]float32, n)
		for j := 0; j < n; j++ {
			row[j] = a[j]*c.Data()[j] + b[j]/float32(beta)
		}
		nc = tensor.FromSlice(row)
	default: // full [m, n] matrix
		if c.Shape().Rank() != 2 || c.Shape()[1] != n {
			return false
		}
		nc = c.Clone()
		d := nc.Data()
		rows := c.Shape()[0]
		for i := 0; i < rows; i++ {
			row := d[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] = a[j]*row[j] + b[j]/float32(beta)
			}
		}
	}

	wName := freshValueName(g, p.Inputs[1]+"_bnfold")
	cName := freshValueName(g, p.Name+"_bnfold_c")
	g.AddInitializer(wName, nw)
	g.AddInitializer(cName, nc)
	p.Inputs[1] = wName
	if len(p.Inputs) == 3 {
		p.Inputs[2] = cName
	} else {
		p.Inputs = append(p.Inputs, cName)
	}
	return true
}

// epilogueHosts are the GEMM-shaped ops whose kernels apply a writeback
// epilogue (internal/kernels.Epilogue).
var epilogueHosts = map[string]bool{"Conv": true, "Gemm": true, "MatMul": true}

// AttachEpilogues absorbs each Relu/LeakyRelu/Clip whose sole producer is
// a Conv/Gemm/MatMul into that producer as writeback-epilogue attributes,
// removing the activation node. Returns the number absorbed.
func AttachEpilogues(g *graph.Graph) (int, error) {
	count := 0
	removed := map[*graph.Node]bool{}
	for _, n := range g.Nodes {
		if removed[n] || !epilogueHosts[n.OpType] || hasFusionAttrs(n) {
			continue
		}
		c := soleConsumerEdge(g, n)
		if c == nil || removed[c] || len(c.Inputs) != 1 || len(c.Outputs) != 1 {
			continue
		}
		epi := ops.EpilogueAttrs(c.OpType, c.Attrs)
		if epi == nil {
			continue
		}
		if n.Attrs == nil {
			n.Attrs = ops.Attrs{}
		}
		for k, v := range epi {
			n.Attrs[k] = v
		}
		n.Outputs[0] = c.Outputs[0]
		removed[c] = true
		count++
		g.Invalidate()
	}
	if count > 0 {
		g.RemoveNodes(func(n *graph.Node) bool { return removed[n] })
	}
	return count, nil
}

// stageable reports whether n can join an elementwise chain: a supported
// op with chain-compatible arity. Shape-changing ops (Reshape, Transpose,
// pooling, …) are not stageable, so a chain can never fuse across one.
func stageable(n *graph.Node) bool {
	if !ops.FusedStageOK(n.OpType) || len(n.Outputs) != 1 {
		return false
	}
	switch len(n.Inputs) {
	case 1:
		return n.OpType == "Relu" || n.OpType == "LeakyRelu" || n.OpType == "Sigmoid" ||
			n.OpType == "Tanh" || n.OpType == "Clip"
	case 2:
		return n.OpType == "Add" || n.OpType == "Mul" || n.OpType == "Sub" || n.OpType == "Div"
	}
	return false
}

// chainNext returns the next chain member after cur: the sole consumer of
// cur's output, itself stageable, consuming the flowing value exactly once
// (Add(v, v) squares the value and has no single-flow encoding). Also
// returns the flowing value's input position in the consumer.
func chainNext(g *graph.Graph, cur *graph.Node, taken map[*graph.Node]bool) (next *graph.Node, flowPos int, ok bool) {
	c := soleConsumerEdge(g, cur)
	if c == nil || taken[c] || !stageable(c) {
		return nil, 0, false
	}
	o := cur.Outputs[0]
	flowPos = -1
	for i, in := range c.Inputs {
		if in != o {
			continue
		}
		if flowPos >= 0 {
			return nil, 0, false // both operands are the flowing value
		}
		flowPos = i
	}
	if flowPos < 0 {
		return nil, 0, false
	}
	return c, flowPos, true
}

// FuseElementwise collapses maximal chains (length >= 2) of elementwise
// ops into single FusedElementwise nodes. Each chain is linear: every
// intermediate value has exactly one consumer (a multi-consumer
// intermediate ends the chain — the fused node still produces it) and is
// not a graph output. Binary stages keep their extra operand as an added
// node input; shape compatibility is resolved at run time by the kernel,
// which falls back to stage-wise broadcasting when an extra genuinely
// broadcasts. Returns the chain count and the total nodes collapsed.
func FuseElementwise(g *graph.Graph) (chains, nodes int, err error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, 0, err
	}
	taken := map[*graph.Node]bool{}
	removed := map[*graph.Node]bool{}
	for _, head := range order {
		if taken[head] || !stageable(head) {
			continue
		}
		chain := []*graph.Node{head}
		flow := []int{0} // flowing-value input position per node (head: input 0)
		cur := head
		for {
			next, pos, ok := chainNext(g, cur, taken)
			if !ok {
				break
			}
			chain = append(chain, next)
			flow = append(flow, pos)
			cur = next
		}
		if len(chain) < 2 {
			continue
		}
		for _, n := range chain {
			taken[n] = true
		}
		// Rebuild the head in place as the fused node.
		inputs := append([]string(nil), head.Inputs...)
		var attrs ops.Attrs
		headArg := -1
		if len(head.Inputs) == 2 {
			headArg = 1
		}
		attrs = ops.FusedStageAttrs(attrs, head.OpType, head.Attrs, headArg, false)
		for i := 1; i < len(chain); i++ {
			n := chain[i]
			arg, swap := -1, false
			if len(n.Inputs) == 2 {
				swap = flow[i] == 1
				extra := n.Inputs[1-flow[i]]
				inputs = append(inputs, extra)
				arg = len(inputs) - 1
			}
			attrs = ops.FusedStageAttrs(attrs, n.OpType, n.Attrs, arg, swap)
		}
		tail := chain[len(chain)-1]
		head.OpType = "FusedElementwise"
		head.Attrs = attrs
		head.Inputs = inputs
		head.Outputs = []string{tail.Outputs[0]}
		for _, n := range chain[1:] {
			removed[n] = true
		}
		chains++
		nodes += len(chain)
		g.Invalidate()
	}
	if chains > 0 {
		g.RemoveNodes(func(n *graph.Node) bool { return removed[n] })
	}
	return chains, nodes, nil
}
