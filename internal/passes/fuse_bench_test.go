package passes

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/tensor"
)

// benchConvBNReluGraph builds the canonical Conv→BN→Relu triple at a
// serving-realistic shape where the memory-bound glue (BN + Relu are two
// full tensor round trips plus two allocations) is visible next to the
// compute: a 1x1 conv on a wide activation map, the pointwise-conv
// pattern of modern backbones.
func benchConvBNReluGraph() *graph.Graph {
	g := graph.New("cbr_bench")
	r := tensor.NewRNG(12)
	const c, img = 8, 256
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{1, c, img, img}}}
	g.AddInitializer("w", r.RandTensor(c, c, 1, 1))
	g.AddInitializer("cb", r.RandTensor(c))
	g.AddInitializer("s", r.RandTensor(c))
	g.AddInitializer("b", r.RandTensor(c))
	g.AddInitializer("m", r.RandTensor(c))
	v := r.RandTensor(c)
	for i, e := range v.Data() {
		v.Data()[i] = 0.5 + e*e
	}
	g.AddInitializer("v", v)
	g.AddNode("conv", "Conv", []string{"x", "w", "cb"}, []string{"t1"}, nil)
	g.AddNode("bn", "BatchNormalization", []string{"t1", "s", "b", "m", "v"}, []string{"t2"}, nil)
	g.AddNode("relu", "Relu", []string{"t2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()
	return g
}

// benchRunGraph measures the graph on the sequential reference executor —
// the unfused three-op chain exactly as the baseline runs it: every node a
// separate kernel with a fresh heap output and a full memory round trip.
func benchRunGraph(b *testing.B, g *graph.Graph) {
	b.Helper()
	feeds := models.RandomInputs(g, 1)
	if _, err := exec.RunSequential(g, feeds); err != nil { // warm + validate
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunSequential(g, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedConvBNRelu runs the triple after Fuse collapsed it to one
// Conv with folded BN weights and a Relu writeback epilogue — the
// acceptance benchmark against BenchmarkUnfusedConvBNRelu (>= 1.5x).
func BenchmarkFusedConvBNRelu(b *testing.B) {
	g := benchConvBNReluGraph()
	rep, err := Fuse(g)
	if err != nil {
		b.Fatal(err)
	}
	if rep.BNFolded != 1 || rep.Epilogues != 1 || len(g.Nodes) != 1 {
		b.Fatalf("unexpected fusion result: %+v (%d nodes)", rep, len(g.Nodes))
	}
	benchRunGraph(b, g)
}

// BenchmarkUnfusedConvBNRelu is the three-op baseline the fusion pass
// eliminates: every op a separate kernel with its own output tensor and
// full memory round trip.
func BenchmarkUnfusedConvBNRelu(b *testing.B) {
	benchRunGraph(b, benchConvBNReluGraph())
}

// BenchmarkFuseCompilePass measures the pass itself on the largest-chain
// zoo model, pinning compile-time cost (it must stay in the milliseconds).
func BenchmarkFuseCompilePass(b *testing.B) {
	base := models.MustBuild("yolo_v5", models.Config{ImageSize: 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := base.Clone()
		b.StartTimer()
		if _, err := Fuse(g); err != nil {
			b.Fatal(err)
		}
	}
}
