package passes

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// constGraph has a live path (x -> Relu -> out) plus a constant chain
// (Constant -> Mul -> Add) feeding a Reshape on the live path, the pattern
// of the paper's Fig. 6.
func constGraph() *graph.Graph {
	g := graph.New("constg")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{2, 3}}}
	g.AddInitializer("one", tensor.FromSlice([]float32{1, 1}))
	g.AddInitializer("zero", tensor.FromSlice([]float32{0, 0}))
	g.AddNode("c", "Constant", nil, []string{"vc"}, ops.Attrs{"value": []float32{2, 3}, "shape": []int{2}})
	g.AddNode("m", "Mul", []string{"vc", "one"}, []string{"vm"}, nil)
	g.AddNode("a", "Add", []string{"vm", "zero"}, []string{"vshape"}, nil)
	g.AddNode("r", "Relu", []string{"x"}, []string{"vr"}, nil)
	g.AddNode("rs", "Reshape", []string{"vr", "vshape"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

func TestFoldConstantsFoldsChain(t *testing.T) {
	g := constGraph()
	rep, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	// Constant, Mul, Add fold; then Reshape's inputs are x (live) so the
	// Reshape itself stays.
	if rep.Folded != 3 {
		t.Errorf("folded %d nodes, want 3", rep.Folded)
	}
	if !g.IsInitializer("vshape") {
		t.Error("vshape not materialized as initializer")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldPreservesSemantics(t *testing.T) {
	g := constGraph()
	feeds := exec.Env{"x": tensor.New(tensor.Shape{2, 3}, []float32{-1, 2, -3, 4, -5, 6})}
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prune(g); err != nil {
		t.Fatal(err)
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("pruning changed observable output")
	}
}

func TestDCERemovesUnreachable(t *testing.T) {
	g := constGraph()
	// Dangling subgraph not reaching any output.
	g.AddNode("dead1", "Relu", []string{"x"}, []string{"vd1"}, nil)
	g.AddNode("dead2", "Sigmoid", []string{"vd1"}, []string{"vd2"}, nil)
	g.AddInitializer("unused", tensor.Zeros(3))
	rep := EliminateDeadCode(g)
	if rep.RemovedNodes != 2 {
		t.Errorf("removed %d nodes, want 2", rep.RemovedNodes)
	}
	if rep.RemovedInitializers != 1 {
		t.Errorf("removed %d initializers, want 1", rep.RemovedInitializers)
	}
	if g.NodeByName("dead1") != nil || g.NodeByName("dead2") != nil {
		t.Error("dead nodes survived")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsLiveNodes(t *testing.T) {
	g := constGraph()
	n := len(g.Nodes)
	rep := EliminateDeadCode(g)
	if rep.RemovedNodes != 0 || len(g.Nodes) != n {
		t.Errorf("DCE removed live nodes: %+v", rep)
	}
}

func TestPruneFixedPoint(t *testing.T) {
	g := constGraph()
	if _, err := Prune(g); err != nil {
		t.Fatal(err)
	}
	rep2, err := Prune(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fold.Folded != 0 || rep2.DCE.RemovedNodes != 0 {
		t.Errorf("second prune still changed graph: %+v", rep2)
	}
}

func TestPruneYoloReducesNodes(t *testing.T) {
	// The paper's Table III models: Yolo/BERT/NASNet carry constants.
	for _, name := range []string{"yolo_v5", "bert", "nasnet"} {
		g := models.MustBuild(name, models.Config{})
		before := len(g.Nodes)
		rep, err := Prune(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Fold.Folded == 0 {
			t.Errorf("%s: no constants folded", name)
		}
		if len(g.Nodes) >= before {
			t.Errorf("%s: prune did not shrink graph (%d → %d)", name, before, len(g.Nodes))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPruneInceptionNoConstants(t *testing.T) {
	// Squeezenet/GoogleNet/Inception "do not demonstrate the presence of
	// constants" (Section V-C).
	for _, name := range []string{"squeezenet", "googlenet", "inception_v3"} {
		g := models.MustBuild(name, models.Config{})
		rep, err := Prune(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Fold.Folded != 0 || rep.DCE.RemovedNodes != 0 {
			t.Errorf("%s: unexpected pruning %+v", name, rep)
		}
	}
}

func TestCloneTasksRewiresFanout(t *testing.T) {
	g := graph.New("fan")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("src", "Relu", []string{"x"}, []string{"vs"}, nil)
	g.AddNode("u1", "Sigmoid", []string{"vs"}, []string{"v1"}, nil)
	g.AddNode("u2", "Neg", []string{"vs"}, []string{"v2"}, nil)
	g.AddNode("u3", "Exp", []string{"vs"}, []string{"v3"}, nil)
	g.AddNode("join", "Add", []string{"v1", "v2"}, []string{"vj"}, nil)
	g.AddNode("join2", "Add", []string{"vj", "v3"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}

	m := cost.DefaultModel()
	rep, err := CloneTasks(g, m, CloneOptions{MaxConeCost: 5, MaxConeNodes: 4, MaxFanout: 4, TopFraction: 0, MaxClones: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClonedNodes == 0 || rep.AddedNodes != 2 {
		t.Fatalf("clone report %+v, want 2 added replicas of src", rep)
	}
	// After cloning, vs has exactly one consumer.
	if len(g.Consumers("vs")) != 1 {
		t.Errorf("vs still has %d consumers", len(g.Consumers("vs")))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClonePreservesSemantics(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{})
	feeds := models.RandomInputs(g, 5)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CloneTasks(g, cost.DefaultModel(), DefaultCloneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedNodes == 0 {
		t.Error("no clones made on squeezenet")
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].AllClose(w, 1e-5, 1e-6) {
			t.Errorf("output %s changed after cloning", k)
		}
	}
}

func TestCloneRespectsMaxClones(t *testing.T) {
	g := models.MustBuild("inception_v3", models.Config{})
	opts := DefaultCloneOptions()
	opts.MaxClones = 3
	rep, err := CloneTasks(g, cost.DefaultModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedNodes > 3 {
		t.Errorf("added %d clones, cap 3", rep.AddedNodes)
	}
}

func TestCloneSkipsExpensiveNodes(t *testing.T) {
	g := graph.New("heavy")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("conv", "Conv", []string{"x"}, []string{"vc"}, ops.Attrs{"kernel_shape": []int{7, 7}})
	g.AddNode("u1", "Relu", []string{"vc"}, []string{"v1"}, nil)
	g.AddNode("u2", "Relu", []string{"vc"}, []string{"v2"}, nil)
	g.AddNode("j", "Add", []string{"v1", "v2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	opts := DefaultCloneOptions()
	opts.MaxConeCost = 10 // below the 7x7 conv's weight
	rep, err := CloneTasks(g, cost.DefaultModel(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClonedNodes != 0 {
		t.Errorf("expensive conv was cloned: %+v", rep)
	}
}

// Property: prune never breaks validity or changes the live output set on
// random DAGs (all of whose sinks are outputs, so DCE should be a no-op on
// nodes; folding may still remove constant-only prefixes — RandomDAG has
// none, so Prune must be an identity).
func TestPruneIdentityOnRandomDAGs(t *testing.T) {
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)+29), 30)
		n := len(g.Nodes)
		rep, err := Prune(g)
		if err != nil {
			return false
		}
		return rep.Fold.Folded == 0 && len(g.Nodes) == n && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
