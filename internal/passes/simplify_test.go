package passes

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestFuseConvRelu(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	feeds := models.RandomInputs(g, 3)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	before := len(g.Nodes)
	rep, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epilogues == 0 {
		t.Fatal("no Conv+Relu pairs fused in squeezenet")
	}
	if len(g.Nodes) != before-rep.NodesRemoved() {
		t.Errorf("node count %d, want %d", len(g.Nodes), before-rep.NodesRemoved())
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].AllClose(w, 1e-5, 1e-6) {
			t.Errorf("fusion changed output %s", k)
		}
	}
}

func TestFuseSkipsFanout(t *testing.T) {
	// A conv whose output feeds two relus must not absorb an epilogue (the
	// value is needed twice).
	g := graph.New("fan")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("c", "Conv", []string{"x", "w"}, []string{"vc"}, nil)
	g.AddInitializer("w", tensor.Zeros(1, 1, 1, 1))
	g.AddNode("r1", "Relu", []string{"vc"}, []string{"v1"}, nil)
	g.AddNode("r2", "Relu", []string{"vc"}, []string{"v2"}, nil)
	g.AddNode("j", "Add", []string{"v1", "v2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	n, err := AttachEpilogues(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("fused across fan-out: %d epilogues", n)
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	g := graph.New("dup")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("a1", "Relu", []string{"x"}, []string{"v1"}, nil)
	g.AddNode("a2", "Relu", []string{"x"}, []string{"v2"}, nil) // duplicate of a1
	g.AddNode("b1", "Sigmoid", []string{"v1"}, []string{"w1"}, nil)
	g.AddNode("b2", "Sigmoid", []string{"v2"}, []string{"w2"}, nil) // dup after rename
	g.AddNode("j", "Add", []string{"w1", "w2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	feeds := exec.Env{"x": tensor.FromSlice([]float32{-1, 2})}
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EliminateCommonSubexpressions(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merged != 2 {
		t.Errorf("merged %d, want 2 (chain of duplicates)", rep.Merged)
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("CSE changed output")
	}
}

func TestCSEKeepsDifferentAttrs(t *testing.T) {
	g := graph.New("attrs")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("s1", "Softmax", []string{"x"}, []string{"v1"}, map[string]any{"axis": 0})
	g.AddNode("s2", "Softmax", []string{"x"}, []string{"v2"}, map[string]any{"axis": 1})
	g.AddNode("j", "Add", []string{"v1", "v2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	rep, err := EliminateCommonSubexpressions(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merged != 0 {
		t.Errorf("merged nodes with different attrs: %+v", rep)
	}
}

func TestRemoveIdentities(t *testing.T) {
	g := graph.New("ids")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("r", "Relu", []string{"x"}, []string{"v1"}, nil)
	g.AddNode("i1", "Identity", []string{"v1"}, []string{"v2"}, nil)
	g.AddNode("i2", "Identity", []string{"v2"}, []string{"v3"}, nil)
	g.AddNode("s", "Sigmoid", []string{"v3"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	feeds := exec.Env{"x": tensor.FromSlice([]float32{1, -1})}
	want, _ := exec.RunSequential(g, feeds)
	rep, err := RemoveIdentities(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 2 {
		t.Errorf("removed %d identities, want 2", rep.Removed)
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("identity removal changed output")
	}
	// Identity producing a graph output survives.
	g2 := graph.New("keep")
	g2.Inputs = []graph.ValueInfo{{Name: "x"}}
	g2.AddNode("i", "Identity", []string{"x"}, []string{"out"}, nil)
	g2.Outputs = []graph.ValueInfo{{Name: "out"}}
	rep2, err := RemoveIdentities(g2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Removed != 0 {
		t.Error("removed identity that produces a graph output")
	}
}

func TestReducePipelinePreservesSemantics(t *testing.T) {
	for _, name := range []string{"yolo_v5", "bert"} {
		g := models.MustBuild(name, models.Config{})
		feeds := models.RandomInputs(g, 7)
		want, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatal(err)
		}
		before := len(g.Nodes)
		rep, err := Reduce(g, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(g.Nodes) >= before {
			t.Errorf("%s: Reduce did not shrink graph (%d → %d)", name, before, len(g.Nodes))
		}
		if !rep.Fuse.Any() && rep.Prune.Fold.Folded == 0 {
			t.Errorf("%s: Reduce did nothing: %+v", name, rep)
		}
		got, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatalf("%s after reduce: %v", name, err)
		}
		for k, w := range want {
			if !got[k].AllClose(w, 1e-4, 1e-5) {
				t.Errorf("%s: Reduce changed output %s", name, k)
			}
		}
	}
}
