// Package passes implements the graph-pruning and restructuring
// optimizations of Sections III-C and III-D: constant propagation and
// folding plus dead-code elimination (delegated to onnxruntime in the
// paper, implemented natively here) and limited task cloning.
package passes

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// FoldReport summarizes one constant-folding run.
type FoldReport struct {
	// Folded is the number of nodes evaluated at compile time and replaced
	// by initializers.
	Folded int
	// NewInitializers lists the value names materialized.
	NewInitializers []string
}

// FoldConstants evaluates every node whose inputs are all compile-time
// constants (initializers or outputs of already-folded nodes, including
// zero-input Constant nodes) and replaces it with initializers holding its
// outputs. One topological sweep reaches the fixed point because constancy
// propagates forward. The graph is mutated in place.
func FoldConstants(g *graph.Graph) (FoldReport, error) {
	order, err := g.TopoSort()
	if err != nil {
		return FoldReport{}, err
	}
	report := FoldReport{}
	folded := map[*graph.Node]bool{}
	for _, n := range order {
		if !ops.Supported(n.OpType) {
			continue
		}
		constant := true
		inputs := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			t, ok := g.Initializers[in]
			if !ok {
				constant = false
				break
			}
			inputs[i] = t
		}
		if !constant {
			continue
		}
		kernel, err := ops.Lookup(n.OpType)
		if err != nil {
			continue
		}
		outs, err := kernel(inputs, n.Attrs)
		if err != nil {
			return report, fmt.Errorf("passes: folding %s: %w", n.Name, err)
		}
		if len(outs) < len(n.Outputs) {
			return report, fmt.Errorf("passes: folding %s: kernel returned %d outputs, node declares %d",
				n.Name, len(outs), len(n.Outputs))
		}
		for i, name := range n.Outputs {
			g.AddInitializer(name, outs[i])
			report.NewInitializers = append(report.NewInitializers, name)
		}
		folded[n] = true
		report.Folded++
	}
	if report.Folded > 0 {
		g.RemoveNodes(func(n *graph.Node) bool { return folded[n] })
	}
	return report, nil
}

// DCEReport summarizes one dead-code-elimination run.
type DCEReport struct {
	// RemovedNodes counts operator nodes eliminated.
	RemovedNodes int
	// RemovedInitializers counts constant tensors dropped.
	RemovedInitializers int
}

// EliminateDeadCode removes every node from which no graph output is
// reachable, then drops initializers no remaining node references. The
// graph is mutated in place.
func EliminateDeadCode(g *graph.Graph) DCEReport {
	// Live nodes: backward closure from the producers of graph outputs.
	var roots []*graph.Node
	for _, out := range g.Outputs {
		if p := g.Producer(out.Name); p != nil {
			roots = append(roots, p)
		}
	}
	live := g.AncestorsOf(roots)
	report := DCEReport{}
	report.RemovedNodes = g.RemoveNodes(func(n *graph.Node) bool { return !live[n] })

	used := map[string]bool{}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			used[in] = true
		}
	}
	for _, out := range g.Outputs {
		used[out.Name] = true
	}
	for name := range g.Initializers {
		if !used[name] {
			delete(g.Initializers, name)
			report.RemovedInitializers++
		}
	}
	if report.RemovedInitializers > 0 {
		g.Invalidate()
	}
	return report
}

// PruneReport combines folding and DCE results.
type PruneReport struct {
	Fold FoldReport
	DCE  DCEReport
}

// Prune is the paper's "constant propagation + dead-code elimination"
// plugin: fold constants, then eliminate dead code, repeating until neither
// pass changes the graph.
func Prune(g *graph.Graph) (PruneReport, error) {
	total := PruneReport{}
	for {
		fr, err := FoldConstants(g)
		if err != nil {
			return total, err
		}
		dr := EliminateDeadCode(g)
		total.Fold.Folded += fr.Folded
		total.Fold.NewInitializers = append(total.Fold.NewInitializers, fr.NewInitializers...)
		total.DCE.RemovedNodes += dr.RemovedNodes
		total.DCE.RemovedInitializers += dr.RemovedInitializers
		if fr.Folded == 0 && dr.RemovedNodes == 0 {
			return total, nil
		}
	}
}
