package passes

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// convBNReluGraph builds the canonical Conv→BN→Relu triple with non-trivial
// BN statistics (the zoo builder's BN uses mean 0 / var 1, which would hide
// scaling mistakes).
func convBNReluGraph() *graph.Graph {
	g := graph.New("cbr")
	r := tensor.NewRNG(4)
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{1, 4, 8, 8}}}
	g.AddInitializer("w", r.RandTensor(8, 4, 3, 3))
	g.AddInitializer("cb", r.RandTensor(8))
	g.AddInitializer("s", r.RandTensor(8))
	g.AddInitializer("b", r.RandTensor(8))
	g.AddInitializer("m", r.RandTensor(8))
	variance := r.RandTensor(8)
	for i, v := range variance.Data() {
		variance.Data()[i] = 0.5 + v*v // strictly positive, non-unit
	}
	g.AddInitializer("v", variance)
	g.AddNode("conv", "Conv", []string{"x", "w", "cb"}, []string{"t1"},
		ops.Attrs{"pads": []int{1, 1, 1, 1}})
	g.AddNode("bn", "BatchNormalization", []string{"t1", "s", "b", "m", "v"}, []string{"t2"}, nil)
	g.AddNode("relu", "Relu", []string{"t2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()
	return g
}

func feedsFor(g *graph.Graph, seed uint64) exec.Env {
	return models.RandomInputs(g, seed)
}

func TestFuseConvBNReluToOneNode(t *testing.T) {
	g := convBNReluGraph()
	feeds := feedsFor(g, 1)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	wTensor := g.Initializers["w"] // may be dropped from the map by DCE
	wOrig := wTensor.Clone()

	rep, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BNFolded != 1 || rep.Epilogues != 1 {
		t.Fatalf("report %+v, want 1 BN fold + 1 epilogue", rep)
	}
	if len(g.Nodes) != 1 {
		t.Fatalf("Conv→BN→Relu fused to %d nodes, want 1", len(g.Nodes))
	}
	n := g.Nodes[0]
	if n.OpType != "Conv" || n.Attrs.Str(ops.AttrEpilogueOp, "") != "Relu" {
		t.Fatalf("surviving node %s(%s) attrs %v", n.Name, n.OpType, n.Attrs)
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].AllClose(want["out"], 1e-5, 1e-6) {
		t.Fatalf("fused output diverges: max diff %v", got["out"].MaxAbsDiff(want["out"]))
	}
	// Folding must not mutate the original (possibly shared) weight tensor.
	if !wTensor.Equal(wOrig) {
		t.Fatal("BN folding mutated the shared weight initializer in place")
	}
}

func TestFoldBatchNormIntoGemm(t *testing.T) {
	r := tensor.NewRNG(7)
	for _, tc := range []struct {
		name   string
		transB int
		bias   *tensor.Tensor
		beta   float64
	}{
		{"plain-rowbias", 0, r.RandTensor(6), 1},
		{"transB", 1, r.RandTensor(6), 1},
		{"no-bias", 0, nil, 1},
		{"scalar-bias-beta2", 0, tensor.Scalar(0.7), 2},
		{"full-bias", 0, r.RandTensor(3, 6), 1},
	} {
		g := graph.New("gemmbn")
		g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{3, 5}}}
		if tc.transB != 0 {
			g.AddInitializer("w", r.RandTensor(6, 5))
		} else {
			g.AddInitializer("w", r.RandTensor(5, 6))
		}
		attrs := ops.Attrs{"transB": tc.transB, "beta": tc.beta}
		inputs := []string{"x", "w"}
		if tc.bias != nil {
			g.AddInitializer("c", tc.bias)
			inputs = append(inputs, "c")
		}
		g.AddNode("fc", "Gemm", inputs, []string{"t1"}, attrs)
		g.AddInitializer("s", r.RandTensor(6))
		g.AddInitializer("b", r.RandTensor(6))
		g.AddInitializer("m", r.RandTensor(6))
		v := r.RandTensor(6)
		for i, e := range v.Data() {
			v.Data()[i] = 0.5 + e*e
		}
		g.AddInitializer("v", v)
		g.AddNode("bn", "BatchNormalization", []string{"t1", "s", "b", "m", "v"}, []string{"out"}, nil)
		g.Outputs = []graph.ValueInfo{{Name: "out"}}
		g.Reindex()

		feeds := feedsFor(g, 2)
		want, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		n, err := FoldBatchNorms(g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n != 1 {
			t.Fatalf("%s: folded %d, want 1", tc.name, n)
		}
		got, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatalf("%s after fold: %v", tc.name, err)
		}
		if !got["out"].AllClose(want["out"], 1e-5, 1e-6) {
			t.Errorf("%s: folded Gemm diverges: max diff %v", tc.name, got["out"].MaxAbsDiff(want["out"]))
		}
	}
}

// TestFuseRefusesMultiConsumer: a BN (or activation) whose input value has
// a second consumer must survive — the value is needed elsewhere.
func TestFuseRefusesMultiConsumer(t *testing.T) {
	g := convBNReluGraph()
	// Tap the conv output with a second consumer.
	g.AddNode("tap", "Sigmoid", []string{"t1"}, []string{"tapped"}, nil)
	g.Outputs = append(g.Outputs, graph.ValueInfo{Name: "tapped"})
	g.Reindex()
	feeds := feedsFor(g, 3)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BNFolded != 0 {
		t.Errorf("BN folded across a multi-consumer conv output: %+v", rep)
	}
	if g.NodeByName("bn") == nil {
		t.Error("BN node removed despite multi-consumer input")
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].AllClose(w, 1e-5, 1e-6) {
			t.Errorf("output %s changed", k)
		}
	}
}

// TestFuseRefusesFeedableParams: initializers that are also declared graph
// inputs can be overridden per request; folding them would bake one
// request's value into the weights.
func TestFuseRefusesFeedableParams(t *testing.T) {
	g := convBNReluGraph()
	// BN scale is feedable.
	g.Inputs = append(g.Inputs, graph.ValueInfo{Name: "s", Shape: tensor.Shape{8}})
	g.Reindex()
	if n, err := FoldBatchNorms(g); err != nil || n != 0 {
		t.Errorf("folded %d BNs with a feedable scale (err %v), want 0", n, err)
	}

	// Conv weight is feedable.
	g2 := convBNReluGraph()
	g2.Inputs = append(g2.Inputs, graph.ValueInfo{Name: "w", Shape: tensor.Shape{8, 4, 3, 3}})
	g2.Reindex()
	if n, err := FoldBatchNorms(g2); err != nil || n != 0 {
		t.Errorf("folded %d BNs with a feedable weight (err %v), want 0", n, err)
	}
}

// TestFuseRefusesGraphOutputIntermediate: a Conv output that is itself a
// graph output cannot be renamed away by epilogue absorption or BN folding.
func TestFuseRefusesGraphOutputIntermediate(t *testing.T) {
	g := convBNReluGraph()
	g.Outputs = append(g.Outputs, graph.ValueInfo{Name: "t1"})
	g.Reindex()
	rep, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BNFolded != 0 {
		t.Errorf("folded through a graph-output intermediate: %+v", rep)
	}
}

// TestChainRefusesShapeChangingOp: a Reshape between elementwise nodes must
// break the chain.
func TestChainRefusesShapeChangingOp(t *testing.T) {
	g := graph.New("resh")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{2, 6}}}
	g.AddInitializer("shape", tensor.FromSlice([]float32{3, 4}))
	g.AddNode("r1", "Relu", []string{"x"}, []string{"v1"}, nil)
	g.AddNode("rs", "Reshape", []string{"v1", "shape"}, []string{"v2"}, nil)
	g.AddNode("r2", "Sigmoid", []string{"v2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()
	chains, nodes, err := FuseElementwise(g)
	if err != nil {
		t.Fatal(err)
	}
	if chains != 0 || nodes != 0 {
		t.Errorf("fused across a Reshape: %d chains / %d nodes", chains, nodes)
	}
	if len(g.Nodes) != 3 {
		t.Errorf("node count changed: %d", len(g.Nodes))
	}
}

// TestChainStopsAtMultiConsumerIntermediate: the chain may end at a value
// with several consumers but must not swallow it.
func TestChainStopsAtMultiConsumerIntermediate(t *testing.T) {
	g := graph.New("fan")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("a", "Relu", []string{"x"}, []string{"v1"}, nil)
	g.AddNode("b", "Sigmoid", []string{"v1"}, []string{"v2"}, nil)
	g.AddNode("c1", "Tanh", []string{"v2"}, []string{"o1"}, nil)
	g.AddNode("c2", "Relu", []string{"v2"}, []string{"o2"}, nil)
	g.AddNode("j", "Add", []string{"o1", "o2"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()
	feeds := exec.Env{"x": tensor.FromSlice([]float32{-2, -1, 1, 2})}
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	chains, nodes, err := FuseElementwise(g)
	if err != nil {
		t.Fatal(err)
	}
	// Relu→Sigmoid fuses (and Tanh→Add makes a second chain); v2, with two
	// consumers, must stay a produced value rather than be swallowed.
	if chains != 2 || nodes != 4 {
		t.Fatalf("chains=%d nodes=%d, want 2 chains of 2", chains, nodes)
	}
	if g.Producer("v2") == nil {
		t.Fatal("multi-consumer intermediate v2 was swallowed")
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].AllClose(want["out"], 1e-6, 1e-7) {
		t.Error("fan-out fusion changed the output")
	}
}

// TestChainGelu: the erf-GELU decomposition's tail (Add, Mul, Mul with a
// shared non-constant operand) fuses and matches, exercising extras that
// reference values outside the chain, including the chain head's own input.
func TestChainGelu(t *testing.T) {
	g := graph.New("gelu")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{3, 5}}}
	g.AddInitializer("sqrt2", tensor.Scalar(1.4142135))
	g.AddInitializer("one", tensor.Scalar(1))
	g.AddInitializer("half", tensor.Scalar(0.5))
	g.AddNode("d", "Div", []string{"x", "sqrt2"}, []string{"v1"}, nil)
	g.AddNode("e", "Erf", []string{"v1"}, []string{"v2"}, nil)
	g.AddNode("a", "Add", []string{"v2", "one"}, []string{"v3"}, nil)
	g.AddNode("m1", "Mul", []string{"x", "v3"}, []string{"v4"}, nil)
	g.AddNode("m2", "Mul", []string{"v4", "half"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()
	feeds := feedsFor(g, 5)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	chains, nodes, err := FuseElementwise(g)
	if err != nil {
		t.Fatal(err)
	}
	if chains == 0 || nodes < 3 {
		t.Fatalf("GELU tail did not fuse: chains=%d nodes=%d", chains, nodes)
	}
	got, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].AllClose(want["out"], 1e-6, 1e-7) {
		t.Errorf("fused GELU diverges: max diff %v", got["out"].MaxAbsDiff(want["out"]))
	}
}

// TestFusedEquivalenceAllModels is the acceptance gate: fused vs unfused
// outputs agree within 1e-5 on every bundled model.
func TestFusedEquivalenceAllModels(t *testing.T) {
	for _, name := range models.Names() {
		g := models.MustBuild(name, models.Config{ImageSize: 32})
		feeds := models.RandomInputs(g, 11)
		want, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := len(g.Nodes)
		rep, err := Fuse(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Any() {
			t.Errorf("%s: fusion found nothing to do", name)
		}
		if len(g.Nodes) != before-rep.NodesRemoved() {
			t.Errorf("%s: node count %d, want %d", name, len(g.Nodes), before-rep.NodesRemoved())
		}
		got, err := exec.RunSequential(g, feeds)
		if err != nil {
			t.Fatalf("%s after fuse: %v", name, err)
		}
		for k, w := range want {
			if !got[k].AllClose(w, 1e-5, 1e-5) {
				t.Errorf("%s: fused output %s diverges (max diff %v)", name, k, got[k].MaxAbsDiff(w))
			}
		}
	}
}
