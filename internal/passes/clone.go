package passes

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
)

// CloneOptions bounds the task-cloning pass (Section III-D warns cloning
// can blow up graph size exponentially, so it must be applied "with care
// and in limited setting").
type CloneOptions struct {
	// MaxConeCost caps the total model cost of the ancestor cone that may
	// be duplicated per consumer (the redundant computation budget).
	MaxConeCost float64
	// MaxConeNodes caps the node count of a duplicated cone.
	MaxConeNodes int
	// MaxFanout: only values with at most this many consumers are cloned.
	MaxFanout int
	// TopFraction restricts cloning to nodes in the top part of the graph
	// (distance-to-end above this fraction of the maximum), matching the
	// paper's "mostly at the top half" policy. 0.5 means top half.
	TopFraction float64
	// MaxClones caps total nodes added to the graph.
	MaxClones int
}

// DefaultCloneOptions mirrors the paper's restricted setting.
func DefaultCloneOptions() CloneOptions {
	return CloneOptions{MaxConeCost: 40, MaxConeNodes: 16, MaxFanout: 4, TopFraction: 0.5, MaxClones: 128}
}

// CloneReport summarizes a cloning run.
type CloneReport struct {
	// ClonedNodes counts fan-out nodes whose cones were replicated.
	ClonedNodes int
	// AddedNodes counts replica nodes added to the graph.
	AddedNodes int
}

// CloneTasks performs task duplication in the style of Kruatrachue &
// Lewis's grain packing, the technique the paper applies "mostly at the top
// half of the dataflow graphs": for a cheap fan-out node near the graph
// top whose ancestor cone reaches only graph inputs and initializers, every
// consumer beyond the first receives a private replica of the node TOGETHER
// WITH its whole ancestor cone. Because the duplicated cone consumes only
// values that are available in every cluster (inputs and weights), the
// tensor dependence that previously crossed clusters disappears entirely —
// redundant computation traded for communication, which is the only trade
// under which duplication wins.
func CloneTasks(g *graph.Graph, m cost.Model, opts CloneOptions) (CloneReport, error) {
	dist, err := cost.DistanceToEnd(g, m)
	if err != nil {
		return CloneReport{}, err
	}
	var maxDist float64
	for _, d := range dist {
		if d > maxDist {
			maxDist = d
		}
	}
	threshold := maxDist * opts.TopFraction

	// cone returns n's ancestor closure including n (nil when it exceeds
	// the budget), in topological order.
	cone := func(n *graph.Node) []*graph.Node {
		var out []*graph.Node
		seen := map[*graph.Node]bool{}
		var total float64
		stack := []*graph.Node{n}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			out = append(out, cur)
			total += m.NodeCost(cur)
			if len(out) > opts.MaxConeNodes || total > opts.MaxConeCost {
				return nil
			}
			stack = append(stack, g.Predecessors(cur)...)
		}
		// Topological order within the cone: sort by graph ID (IDs are
		// assigned in insertion order which Reindex keeps topological for
		// builder-produced graphs; to be safe, order by distance
		// descending, which is a valid topological order for a cone).
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && dist[out[j]] > dist[out[j-1]]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	report := CloneReport{}
	// Candidate snapshot: mutation below invalidates adjacency.
	type candidate struct {
		node      *graph.Node
		cone      []*graph.Node
		consumers []*graph.Node
	}
	var cands []candidate
	for _, n := range g.Nodes {
		if dist[n] < threshold {
			continue
		}
		if len(n.Outputs) != 1 || g.IsGraphOutput(n.Outputs[0]) {
			continue
		}
		consumers := g.Consumers(n.Outputs[0])
		if len(consumers) < 2 || len(consumers) > opts.MaxFanout {
			continue
		}
		cn := cone(n)
		if cn == nil {
			continue
		}
		// Every cone member other than n itself must feed only inside the
		// cone (otherwise duplication would not remove its out-edges and
		// the replica would add messages instead of removing them).
		inCone := map[*graph.Node]bool{}
		for _, c := range cn {
			inCone[c] = true
		}
		ok := true
		for _, c := range cn {
			if c == n {
				continue
			}
			for _, s := range g.Successors(c) {
				if !inCone[s] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		cands = append(cands, candidate{n, cn, append([]*graph.Node(nil), consumers...)})
	}

	cloned := map[*graph.Node]bool{}
	for _, cand := range cands {
		if report.AddedNodes >= opts.MaxClones {
			break
		}
		// Skip overlapping candidates: a node already duplicated as part
		// of another cone would double-replicate.
		overlap := false
		for _, c := range cand.cone {
			if cloned[c] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		if report.AddedNodes+len(cand.cone)*(len(cand.consumers)-1) > opts.MaxClones {
			continue
		}
		outName := cand.node.Outputs[0]
		for ci, consumer := range cand.consumers[1:] {
			// Replicate the cone privately for this consumer.
			rename := map[string]string{}
			for _, c := range cand.cone {
				cloneName := fmt.Sprintf("%s_clone%d_%d", c.Name, ci+1, c.ID)
				ins := make([]string, len(c.Inputs))
				for i, in := range c.Inputs {
					if r, ok := rename[in]; ok {
						ins[i] = r
					} else {
						ins[i] = in // graph input or initializer: shared
					}
				}
				outs := make([]string, len(c.Outputs))
				for i, o := range c.Outputs {
					r := fmt.Sprintf("%s_clone%d_%d", o, ci+1, c.ID)
					rename[o] = r
					outs[i] = r
				}
				g.AddNode(cloneName, c.OpType, ins, outs, c.Attrs.Clone())
				report.AddedNodes++
			}
			for j, in := range consumer.Inputs {
				if in == outName {
					consumer.Inputs[j] = rename[outName]
				}
			}
		}
		for _, c := range cand.cone {
			cloned[c] = true
		}
		report.ClonedNodes++
	}
	if report.AddedNodes > 0 {
		g.Invalidate()
		g.Reindex()
		if err := g.Validate(); err != nil {
			return report, fmt.Errorf("passes: cloning corrupted graph: %w", err)
		}
	}
	return report, nil
}
