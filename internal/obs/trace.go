package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one request's lifecycle record: who it was, how it was served,
// and where its time went. All duration fields are nanoseconds. A span with
// an empty Cause succeeded.
type Span struct {
	// ID is the server-assigned request ID (monotonic per process).
	ID uint64 `json:"id"`
	// Model and Batch identify the program variant that served the request
	// (Batch is the coalesced micro-batch size it rode in, 1 = solo).
	Model string `json:"model"`
	Batch int    `json:"batch_size"`
	// Start is when the server accepted the request.
	Start time.Time `json:"start"`
	// AssemblyNs is the micro-batcher window wait, QueueNs the worker-pool
	// wait, ExecNs the session run, TotalNs the end-to-end latency.
	AssemblyNs int64 `json:"assembly_ns"`
	QueueNs    int64 `json:"queue_ns"`
	ExecNs     int64 `json:"exec_ns"`
	TotalNs    int64 `json:"total_ns"`
	// Cause labels a failure ("validation", "deadline", ...); empty means
	// the request succeeded. Error carries the error text.
	Cause string `json:"cause,omitempty"`
	Error string `json:"error,omitempty"`
}

// traceSlot is one ring entry with its own lock — the striping that keeps
// concurrent writers off each other: two recorders contend only when they
// land on the same slot (ring wrapped a full lap between them).
type traceSlot struct {
	mu   sync.Mutex
	span Span
	set  bool
}

// TraceRing is a fixed-capacity, lock-striped ring buffer of Spans. Record
// claims a slot with one atomic increment and takes only that slot's lock,
// so writers scale with the ring size; Snapshot locks slots one at a time.
// Recording never allocates. A nil *TraceRing ignores records.
type TraceRing struct {
	slots []traceSlot
	mask  uint64
	next  atomic.Uint64
}

// NewTraceRing creates a ring holding the most recent `size` spans (rounded
// up to a power of two, minimum 1).
func NewTraceRing(size int) *TraceRing {
	n := 1
	for n < size {
		n <<= 1
	}
	return &TraceRing{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Record stores a span, overwriting the oldest entry once the ring is full.
// Nil-safe and allocation-free.
func (r *TraceRing) Record(sp Span) {
	if r == nil {
		return
	}
	s := &r.slots[(r.next.Add(1)-1)&r.mask]
	s.mu.Lock()
	s.span = sp
	s.set = true
	s.mu.Unlock()
}

// Len reports how many spans are currently held (capacity once wrapped).
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns up to n spans, newest first (by request ID — concurrent
// completions may land in the ring slightly out of order). n <= 0 means
// all. Nil-safe.
func (r *TraceRing) Snapshot(n int) []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.span)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
