// Package obs is the observability core of the serving stack: lock-free
// log-bucketed latency histograms (per model × stage), a lock-striped trace
// ring of recent request spans, and the per-op execution-time totals the
// executor accumulates per plan. Everything here is designed for an
// always-on hot path: recording a sample is a handful of atomic adds with
// zero allocation, and all aggregation cost (quantiles, sorting, JSON
// shapes) is paid by the reader at snapshot time.
//
// The package depends only on the standard library so any layer — exec,
// serve, the daemons, tools — can record into or render from it.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed size of a Histogram's bucket array. Values 0-7 ns
// get exact buckets; above that every power of two is split into 4
// sub-buckets (quarter-octave resolution), so any bucket's relative width
// is at most 25% and the array covers the full int64 nanosecond range
// (buckets 8..251 span 8ns to ~292 years).
const NumBuckets = 252

// bucketOf maps a non-negative nanosecond value to its bucket index. The
// mapping is monotone: larger values never land in lower buckets.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	b := bits.Len64(u)               // 4..64: position of the leading one
	sub := int((u >> uint(b-3)) & 3) // the two bits after the leading one
	return 8 + (b-4)*4 + sub
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket. The
// topmost buckets' bounds exceed int64 (bucket 247, the last one reachable
// by a non-negative int64, spans up to 2^63); those clamp to MaxInt64.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 8 {
		return int64(idx), int64(idx) + 1
	}
	b := 4 + (idx-8)/4
	sub := (idx - 8) % 4
	const maxI64 = int64(^uint64(0) >> 1)
	shiftClamp := func(base uint64, shift uint) int64 {
		if shift > 63 || base<<shift > uint64(maxI64) || base<<shift>>shift != base {
			return maxI64
		}
		return int64(base << shift)
	}
	lo = shiftClamp(uint64(4+sub), uint(b-3))
	hi = shiftClamp(uint64(5+sub), uint(b-3))
	return lo, hi
}

// Histogram is a streaming log-bucketed histogram of nanosecond durations.
// Record is lock-free and allocation-free (fixed bucket array of atomics);
// Snapshot derives count/sum/max and interpolated p50/p90/p99. The zero
// value is ready to use, and a nil *Histogram ignores records — callers can
// keep telemetry optional without branching.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Bucket is one non-empty histogram bucket in a snapshot: the bucket's
// exclusive upper bound in nanoseconds and its (non-cumulative) count.
type Bucket struct {
	UpperNs int64
	Count   int64
}

// HistogramSnapshot is a consistent-enough point-in-time view: counters are
// read individually, so a snapshot racing active writers may be off by the
// in-flight samples, which is fine for monitoring. Quantiles are linearly
// interpolated inside their bucket (≤25% relative bucket width), clamped to
// the observed max.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	// Buckets lists the non-empty buckets for renderers that need the full
	// distribution (the Prometheus text exposition); omitted from JSON,
	// where the interpolated quantiles are the consumable view.
	Buckets []Bucket `json:"-"`
}

// Mean returns the mean sample in nanoseconds, 0 when empty.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// Snapshot reads the histogram. Nil-safe (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [NumBuckets]int64
	total := int64(0)
	nonEmpty := 0
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
		if c > 0 {
			nonEmpty++
		}
	}
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		MaxNs: h.max.Load(),
	}
	if total == 0 {
		return snap
	}
	snap.P50Ns = quantile(counts[:], total, 0.50, snap.MaxNs)
	snap.P90Ns = quantile(counts[:], total, 0.90, snap.MaxNs)
	snap.P99Ns = quantile(counts[:], total, 0.99, snap.MaxNs)
	snap.Buckets = make([]Bucket, 0, nonEmpty)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		_, hi := bucketBounds(i)
		snap.Buckets = append(snap.Buckets, Bucket{UpperNs: hi, Count: c})
	}
	return snap
}

// Quantile returns the interpolated q-quantile (0 < q < 1) in nanoseconds
// from the live buckets, without allocating — the hook the fleet admission
// controller and the adaptive batcher poll on their decision paths. The
// buckets are read racily against concurrent writers (each Load is atomic,
// the scan is not), which can be off by the in-flight samples; for control
// decisions over thousands of samples that error is noise. Returns 0 when
// the histogram is nil or empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	maxNs := h.max.Load()
	rank := int64(q*float64(total-1)) + 1
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if maxNs > 0 && v > maxNs {
				v = maxNs
			}
			return v
		}
		cum += c
	}
	// Writers raced the scan (bucket adds not yet visible): the q-quantile
	// is at or beyond everything we saw.
	return maxNs
}

// quantile locates the bucket holding the q-th sample of the copied counts
// and interpolates linearly within it, clamping to the observed max so a
// lone huge sample doesn't report its bucket's (larger) upper bound.
func quantile(counts []int64, total int64, q float64, maxNs int64) int64 {
	rank := int64(q*float64(total-1)) + 1 // 1-based target sample
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if maxNs > 0 && v > maxNs {
				v = maxNs
			}
			return v
		}
		cum += c
	}
	return maxNs
}

// Stage names one segment of a request's lifecycle. The stage boundaries
// are the serving layer's: assembly is the micro-batcher window wait (from
// submit to flush), queue is the worker-pool wait (from enqueue to a worker
// picking the run up), exec is the session run itself, and e2e is the whole
// request as the client experiences it.
type Stage int

const (
	// StageAssembly is time spent waiting in the micro-batcher window for
	// companion requests (batched path only).
	StageAssembly Stage = iota
	// StageQueue is time spent queued for a worker-pool slot.
	StageQueue
	// StageExec is the plan execution itself (session run on a worker).
	StageExec
	// StageE2E is the full request latency, Infer entry to exit.
	StageE2E
	// NumStages bounds the Stage enum; StageSet sizes its array with it.
	NumStages
)

// String returns the stable label used in JSON keys and metric labels.
func (s Stage) String() string {
	switch s {
	case StageAssembly:
		return "batch_assembly"
	case StageQueue:
		return "queue_wait"
	case StageExec:
		return "execute"
	case StageE2E:
		return "e2e"
	}
	return "unknown"
}

// Stages lists every stage in lifecycle order, for renderers.
func Stages() []Stage {
	return []Stage{StageAssembly, StageQueue, StageExec, StageE2E}
}

// StageSet is one histogram per lifecycle stage — the per-model unit the
// serving layer keeps. A nil *StageSet ignores records, so disabling
// telemetry is just not allocating one.
type StageSet struct {
	h [NumStages]Histogram
}

// Record adds a sample to one stage's histogram. Nil-safe.
func (s *StageSet) Record(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	s.h[st].Record(d)
}

// Stage returns one stage's histogram (nil when the set is nil).
func (s *StageSet) Stage(st Stage) *Histogram {
	if s == nil {
		return nil
	}
	return &s.h[st]
}

// Snapshot reads every stage that has samples, keyed by stage label.
// Nil and empty sets return nil, so JSON omits the block cleanly.
func (s *StageSet) Snapshot() map[string]HistogramSnapshot {
	if s == nil {
		return nil
	}
	var out map[string]HistogramSnapshot
	for _, st := range Stages() {
		snap := s.h[st].Snapshot()
		if snap.Count == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]HistogramSnapshot, NumStages)
		}
		out[st.String()] = snap
	}
	return out
}
