package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file holds the dependency-free Prometheus text-exposition helpers
// shared by every /metrics renderer (the serving layer's and the fleet
// front's). They only format — all snapshotting is the caller's.

// PromHeader writes one family's # HELP / # TYPE preamble.
func PromHeader(w io.Writer, family, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, kind)
}

// PromHistogram renders one histogram series in the Prometheus histogram
// convention: cumulative bucket counts keyed by inclusive upper bound `le`
// in seconds, closed by +Inf, plus _sum and _count. The snapshot's buckets
// are non-cumulative, non-empty and sorted ascending, so one pass
// accumulates. labels is the pre-rendered label list without braces, e.g.
// `model="x",stage="e2e"`.
func PromHistogram(w io.Writer, family, labels string, snap HistogramSnapshot) {
	cum := int64(0)
	for _, b := range snap.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", family, labels, PromFloat(float64(b.UpperNs)/1e9), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", family, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", family, labels, PromFloat(float64(snap.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, snap.Count)
}

// PromLabel escapes a label value per the exposition format (backslash,
// double quote, newline) and wraps it in quotes.
func PromLabel(v string) string {
	v = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
	return `"` + v + `"`
}

// PromFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for typical magnitudes.
func PromFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
