package obs

import (
	"sync"
	"testing"
)

func TestTraceRingSizing(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {256, 256}, {300, 512},
	} {
		r := NewTraceRing(tc.ask)
		if len(r.slots) != tc.want {
			t.Errorf("NewTraceRing(%d) has %d slots, want %d", tc.ask, len(r.slots), tc.want)
		}
	}
}

func TestTraceRingRecordAndSnapshot(t *testing.T) {
	r := NewTraceRing(4)
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := uint64(1); i <= 6; i++ {
		r.Record(Span{ID: i, Model: "m"})
	}
	// Capacity 4, 6 recorded: the ring holds 3..6, newest first.
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].ID != want {
			t.Errorf("span[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	// n caps the result.
	if got := r.Snapshot(2); len(got) != 2 || got[0].ID != 6 || got[1].ID != 5 {
		t.Errorf("Snapshot(2) = %v", got)
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Record(Span{ID: 1}) // must not panic
	if r.Snapshot(0) != nil {
		t.Error("nil ring snapshot should be nil")
	}
	if r.Len() != 0 {
		t.Error("nil ring Len should be 0")
	}
}

// TestTraceRingConcurrent hammers Record and Snapshot from many goroutines;
// under -race this proves the striped locking, and every snapshotted span
// must be internally consistent (ID pins the expected model string).
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	const goroutines = 8
	const perG = 2000
	models := []string{"alpha", "beta", "gamma", "delta"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				for _, sp := range r.Snapshot(0) {
					if sp.Model != models[sp.ID%uint64(len(models))] {
						snapMu.Lock()
						snapErr = &tornSpanError{sp.ID, sp.Model}
						snapMu.Unlock()
						return
					}
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := uint64(g*perG + i)
				r.Record(Span{ID: id, Model: models[id%uint64(len(models))]})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

type tornSpanError struct {
	id    uint64
	model string
}

func (e *tornSpanError) Error() string {
	return "torn span: id/model mismatch"
}

// TestTraceRecordAllocates pins Record to zero allocations (the span is
// copied by value into a preallocated slot).
func TestTraceRecordAllocates(t *testing.T) {
	r := NewTraceRing(16)
	sp := Span{ID: 1, Model: "m", Batch: 1, TotalNs: 1000}
	if n := testing.AllocsPerRun(1000, func() { r.Record(sp) }); n != 0 {
		t.Errorf("TraceRing.Record allocates %.1f per op, want 0", n)
	}
}

func TestMergeOpTotals(t *testing.T) {
	a := []OpTotal{{Op: "Conv", Count: 10, TotalNs: 1000}, {Op: "Add", Count: 5, TotalNs: 50}}
	b := []OpTotal{{Op: "Conv", Count: 2, TotalNs: 500}, {Op: "MatMul", Count: 1, TotalNs: 200}}
	got := MergeOpTotals(a, b)
	want := []OpTotal{
		{Op: "Conv", Count: 12, TotalNs: 1500},
		{Op: "MatMul", Count: 1, TotalNs: 200},
		{Op: "Add", Count: 5, TotalNs: 50},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if MergeOpTotals() != nil {
		t.Error("empty merge should be nil")
	}
	if MergeOpTotals([]OpTotal{{Op: "X", Count: 0, TotalNs: 9}}) != nil {
		t.Error("zero-count entries should be dropped")
	}
	if (OpTotal{Op: "Conv", Count: 4, TotalNs: 100}).MeanNs() != 25 {
		t.Error("MeanNs wrong")
	}
	if (OpTotal{}).MeanNs() != 0 {
		t.Error("MeanNs of empty should be 0")
	}
}
