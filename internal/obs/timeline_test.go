package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// record captures one synthetic two-lane run: an op on each lane, a
// cross-lane send and the matching recv-wait.
func record(c *RunCapture, base time.Time) {
	c.Op(0, "a", "Relu", base, 10*time.Microsecond)
	c.Send(0, 1, "va", base.Add(10*time.Microsecond))
	c.Wait(1, 0, "va", base.Add(2*time.Microsecond), 8*time.Microsecond)
	c.Op(1, "b", "Neg", base.Add(10*time.Microsecond), 5*time.Microsecond)
	c.Commit(15*time.Microsecond, true)
}

func TestTimelineSampling(t *testing.T) {
	tl := NewTimeline(3, 2)
	if tl.Every() != 3 {
		t.Fatalf("Every() = %d, want 3", tl.Every())
	}
	var sampled []int64
	for i := 0; i < 7; i++ {
		c := tl.StartRun(2)
		if c != nil {
			sampled = append(sampled, c.seq)
			record(c, c.start)
		}
	}
	// Run 1 is always the first sample, then every 3rd run.
	want := []int64{1, 4, 7}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	if tl.Runs() != 7 {
		t.Errorf("Runs() = %d, want 7", tl.Runs())
	}
	if last := tl.Last(); last == nil || last.Seq != 7 {
		t.Errorf("Last().Seq = %+v, want seq 7", last)
	}
	// Ring of 2 retains the newest two samples, newest first.
	snap := tl.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 7 || snap[1].Seq != 4 {
		t.Errorf("Snapshot seqs = %v, want [7 4]", []any{snap})
	}
}

func TestTimelineCommittedRun(t *testing.T) {
	tl := NewTimeline(1, 4)
	c := tl.StartRun(2)
	if c == nil {
		t.Fatal("first run not sampled at every=1")
	}
	record(c, c.start)
	r := tl.Last()
	if r == nil {
		t.Fatal("no committed run")
	}
	if !r.Complete || r.Lanes != 2 || len(r.Spans) != 4 {
		t.Fatalf("run = %+v", r)
	}
	if got := r.OpTimeNs(); got != 15_000 {
		t.Errorf("OpTimeNs = %d, want 15000", got)
	}
	if got := r.WaitTimeNs(); got != 8_000 {
		t.Errorf("WaitTimeNs = %d, want 8000", got)
	}
	// Spans are grouped by lane: lane 0's two events precede lane 1's.
	for i, wantLane := range []int32{0, 0, 1, 1} {
		if r.Spans[i].Lane != wantLane {
			t.Errorf("span %d on lane %d, want %d", i, r.Spans[i].Lane, wantLane)
		}
	}
}

// TestTimelineNilSafety pins the contract the executor's hot loop relies
// on: a nil recorder and a nil capture ignore every call.
func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	if tl.StartRun(2) != nil || tl.Last() != nil || tl.Snapshot() != nil ||
		tl.Runs() != 0 || tl.Every() != 0 {
		t.Fatal("nil *Timeline not inert")
	}
	var c *RunCapture
	c.Op(0, "a", "Relu", time.Now(), time.Microsecond)
	c.Wait(0, 1, "v", time.Now(), time.Microsecond)
	c.Send(0, 1, "v", time.Now())
	if c.Commit(time.Microsecond, true) != nil {
		t.Fatal("nil capture committed a run")
	}
	var r *RunTimeline
	if _, err := r.ChromeTrace("x"); err == nil {
		t.Fatal("nil RunTimeline exported without error")
	}
}

// TestTimelineConcurrent hammers recording against readers under -race:
// writer goroutines play the executor (each lane appends only its own
// slice), while readers snapshot and export concurrently.
func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(1, 4)
	const writers, runs = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				c := tl.StartRun(2)
				if c == nil {
					continue
				}
				var lanes sync.WaitGroup
				for lane := 0; lane < 2; lane++ {
					lanes.Add(1)
					go func(lane int) {
						defer lanes.Done()
						c.Op(lane, "n", "Relu", time.Now(), time.Microsecond)
						c.Wait(lane, 1-lane, "v", time.Now(), time.Microsecond)
						c.Send(lane, 1-lane, "v", time.Now())
					}(lane)
				}
				lanes.Wait()
				c.Commit(2*time.Microsecond, true)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, r := range tl.Snapshot() {
				if _, err := r.ChromeTrace("race"); err != nil {
					t.Error(err)
					return
				}
			}
			tl.Last()
		}
	}()
	wg.Wait()
	<-done
	if got := tl.Runs(); got != writers*runs {
		t.Errorf("Runs() = %d, want %d", got, writers*runs)
	}
}

// TestChromeTraceSchema validates the exported JSON against the trace-event
// format: metadata names the process and each lane-thread, op and wait spans
// are complete events with µs timestamps, and every flow start has a
// matching flow finish with the same id.
func TestChromeTraceSchema(t *testing.T) {
	tl := NewTimeline(1, 1)
	c := tl.StartRun(2)
	record(c, c.start)
	data, err := tl.Last().ChromeTrace("tiny")
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   int            `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var meta, x, flowS, flowF int
	flows := map[int][2]int{}
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == nil {
				t.Errorf("metadata event %q without args.name", e.Name)
			}
		case "X":
			x++
			if e.Dur == nil || *e.Dur <= 0 {
				t.Errorf("X event %q without positive dur", e.Name)
			}
			if e.Cat != "op" && e.Cat != "wait" {
				t.Errorf("X event %q cat %q", e.Name, e.Cat)
			}
		case "s":
			flowS++
			f := flows[e.ID]
			f[0]++
			flows[e.ID] = f
		case "f":
			flowF++
			f := flows[e.ID]
			f[1]++
			flows[e.ID] = f
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// process_name + one thread_name per lane; op+op+wait X events.
	if meta != 3 || x != 3 || flowS != 1 || flowF != 1 {
		t.Errorf("counts meta=%d x=%d s=%d f=%d, want 3/3/1/1", meta, x, flowS, flowF)
	}
	for id, f := range flows {
		if f[0] != f[1] {
			t.Errorf("flow id %d has %d starts and %d finishes", id, f[0], f[1])
		}
	}
}
