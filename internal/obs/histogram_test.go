package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOfMonotoneAndInBounds(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1e6, 1e9, 1e12, math.MaxInt64}
	prev := -1
	for _, v := range values {
		idx := bucketOf(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d, out of [0, %d)", v, idx, NumBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketOf not monotone: bucketOf(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		// The top bucket's bound clamps to MaxInt64 and is inclusive there.
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d landed in bucket %d = [%d, %d)", v, idx, lo, hi)
		}
	}
}

func TestBucketBoundsTileTheRange(t *testing.T) {
	// Buckets must tile [0, ...) with no gaps or overlaps and at most 25%
	// relative width.
	prevHi := int64(0)
	for i := 0; i < NumBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi == math.MaxInt64 {
			// Top of the int64 range reached (bucket 247 for int64 inputs);
			// the remaining buckets are unreachable and clamp.
			if i < 240 {
				t.Fatalf("bucket %d clamped too early", i)
			}
			break
		}
		if hi <= lo {
			t.Fatalf("bucket %d = [%d, %d) is empty or inverted", i, lo, hi)
		}
		if lo >= 8 && float64(hi-lo)/float64(lo) > 0.25+1e-9 {
			t.Fatalf("bucket %d = [%d, %d): relative width %.3f > 25%%",
				i, lo, hi, float64(hi-lo)/float64(lo))
		}
		prevHi = hi
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 µs uniformly: p50 ≈ 500µs, p90 ≈ 900µs, p99 ≈ 990µs; the
	// bucket scheme guarantees ≤25% relative error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", snap.Count)
	}
	if want := int64(1000 * 1001 / 2 * int64(time.Microsecond)); snap.SumNs != want {
		t.Fatalf("SumNs = %d, want %d", snap.SumNs, want)
	}
	if want := int64(1000 * time.Microsecond); snap.MaxNs != want {
		t.Fatalf("MaxNs = %d, want %d", snap.MaxNs, want)
	}
	check := func(name string, got, want int64) {
		t.Helper()
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.25 {
			t.Errorf("%s = %v, want ≈%v (rel err %.2f > 0.25)", name, got, want, rel)
		}
	}
	check("P50", snap.P50Ns, int64(500*time.Microsecond))
	check("P90", snap.P90Ns, int64(900*time.Microsecond))
	check("P99", snap.P99Ns, int64(990*time.Microsecond))
	if snap.P50Ns > snap.P90Ns || snap.P90Ns > snap.P99Ns || snap.P99Ns > snap.MaxNs {
		t.Errorf("quantiles not ordered: p50 %d, p90 %d, p99 %d, max %d",
			snap.P50Ns, snap.P90Ns, snap.P99Ns, snap.MaxNs)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if snap := h.Snapshot(); snap.Count != 0 || snap.P99Ns != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", snap)
	}
	h.Record(-time.Second) // clamps to 0
	h.Record(0)
	snap := h.Snapshot()
	if snap.Count != 2 || snap.SumNs != 0 || snap.MaxNs != 0 {
		t.Errorf("after clamped records: %+v", snap)
	}
	var nilH *Histogram
	nilH.Record(time.Second) // must not panic
	if snap := nilH.Snapshot(); snap.Count != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestHistogramBucketsCumulate(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	snap := h.Snapshot()
	var total int64
	lastUpper := int64(-1)
	for _, b := range snap.Buckets {
		if b.Count <= 0 {
			t.Fatalf("snapshot contains empty bucket %+v", b)
		}
		if b.UpperNs <= lastUpper {
			t.Fatalf("buckets not ascending: %d after %d", b.UpperNs, lastUpper)
		}
		lastUpper = b.UpperNs
		total += b.Count
	}
	if total != snap.Count {
		t.Fatalf("bucket counts sum to %d, Count = %d", total, snap.Count)
	}
}

func TestStageSetNilSafe(t *testing.T) {
	var s *StageSet
	s.Record(StageExec, time.Second) // must not panic
	if s.Snapshot() != nil {
		t.Error("nil StageSet snapshot should be nil")
	}
	if s.Stage(StageE2E) != nil {
		t.Error("nil StageSet Stage should be nil")
	}
	set := &StageSet{}
	if set.Snapshot() != nil {
		t.Error("empty StageSet snapshot should be nil")
	}
	set.Record(StageQueue, time.Millisecond)
	snap := set.Snapshot()
	if len(snap) != 1 || snap[StageQueue.String()].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestHistogramConcurrentRecord hammers Record and Snapshot from many
// goroutines; run under -race this is the data-race proof, and the final
// counts must balance exactly.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent reader exercising snapshot-while-writing.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snap := h.Snapshot()
	if want := int64(goroutines * perG); snap.Count != want {
		t.Fatalf("Count = %d, want %d", snap.Count, want)
	}
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != snap.Count {
		t.Fatalf("buckets sum to %d, Count = %d", bucketTotal, snap.Count)
	}
	if want := int64(goroutines*perG - 1); snap.MaxNs != want {
		t.Fatalf("MaxNs = %d, want %d", snap.MaxNs, want)
	}
}

// TestRecordAllocates pins the record path to zero allocations — the
// contract that lets telemetry stay always-on.
func TestRecordAllocates(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Record allocates %.1f per op, want 0", n)
	}
	set := &StageSet{}
	if n := testing.AllocsPerRun(1000, func() { set.Record(StageE2E, time.Millisecond) }); n != 0 {
		t.Errorf("StageSet.Record allocates %.1f per op, want 0", n)
	}
}
