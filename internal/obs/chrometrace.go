package obs

import (
	"encoding/json"
	"fmt"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the format Perfetto and chrome://tracing load. Timestamps and durations
// are microseconds (float, so sub-µs spans survive).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object form of a trace (the array form is also
// legal, but the object form carries display hints).
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeTrace renders the run as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: the process is the plan
// (named by process, e.g. the model), each lane is a thread, operator
// executions are complete ("X") duration events, blocked receives are "X"
// events in the "wait" category, and each cross-lane transfer is a flow
// arrow ("s"→"f") from the producer's send to the consumer's matching
// receive.
func (r *RunTimeline) ChromeTrace(process string) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: no timeline recorded")
	}
	events := make([]chromeEvent, 0, len(r.Spans)+r.Lanes+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": process},
	})
	for lane := 0; lane < r.Lanes; lane++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
		})
	}
	// Flow IDs: one per (value, consumer-lane) transfer — a value fans out
	// to several lanes as separate arrows.
	flowIDs := map[string]int{}
	flowID := func(value string, consumer int32) int {
		key := fmt.Sprintf("%s\x00%d", value, consumer)
		id, ok := flowIDs[key]
		if !ok {
			id = len(flowIDs) + 1
			flowIDs[key] = id
		}
		return id
	}
	for _, s := range r.Spans {
		switch s.Kind {
		case SpanOp:
			d := usOf(s.DurNs)
			events = append(events, chromeEvent{
				Name: s.Name, Cat: "op", Ph: "X",
				Ts: usOf(s.StartNs), Dur: &d, Pid: 1, Tid: int(s.Lane),
				Args: map[string]any{"op": s.Op, "dur_ns": s.DurNs},
			})
		case SpanRecvWait:
			d := usOf(s.DurNs)
			events = append(events, chromeEvent{
				Name: "wait " + s.Name, Cat: "wait", Ph: "X",
				Ts: usOf(s.StartNs), Dur: &d, Pid: 1, Tid: int(s.Lane),
				Args: map[string]any{"value": s.Name, "from_lane": s.Peer, "dur_ns": s.DurNs},
			})
			// Flow arrival: bind to this lane at the moment the value landed.
			events = append(events, chromeEvent{
				Name: "xfer " + s.Name, Cat: "flow", Ph: "f", BP: "e",
				Ts: usOf(s.EndNs()), Pid: 1, Tid: int(s.Lane),
				ID: flowID(s.Name, s.Lane),
			})
		case SpanSend:
			events = append(events, chromeEvent{
				Name: "xfer " + s.Name, Cat: "flow", Ph: "s",
				Ts: usOf(s.StartNs), Pid: 1, Tid: int(s.Lane),
				ID: flowID(s.Name, s.Peer),
			})
		}
	}
	return json.Marshal(chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
