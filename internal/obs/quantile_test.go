package obs

import (
	"testing"
	"time"
)

func TestQuantileMatchesSnapshot(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, snap.P50Ns}, {0.90, snap.P90Ns}, {0.99, snap.P99Ns}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, Snapshot says %d — the two paths must agree", tc.q, got, tc.want)
		}
	}
	// The quarter-octave buckets bound relative error; p50 of 1..1000µs is
	// ~500µs and must land within one bucket of it.
	p50 := time.Duration(h.Quantile(0.50))
	if p50 < 400*time.Microsecond || p50 > 650*time.Microsecond {
		t.Errorf("p50 = %v, want ≈500µs", p50)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %d, want 0", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}
	var one Histogram
	one.Record(time.Millisecond)
	got := time.Duration(one.Quantile(0.99))
	if got < 900*time.Microsecond || got > 1100*time.Microsecond {
		t.Errorf("single-sample p99 = %v, want ≈1ms", got)
	}
	// Quantile never exceeds the recorded max, even at q=1.
	if m := one.Quantile(1.0); m > one.Snapshot().MaxNs {
		t.Errorf("Quantile(1.0) = %d exceeds recorded max %d", m, one.Snapshot().MaxNs)
	}
}

func TestQuantileAllocFree(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i+1) * 10 * time.Microsecond)
	}
	allocs := testing.AllocsPerRun(100, func() { h.Quantile(0.9) })
	if allocs != 0 {
		t.Errorf("Quantile allocates %v per call — the batching control loop calls it per request", allocs)
	}
}
