package obs

import "sort"

// OpTotal is the aggregated execution record of one operator type within a
// plan (or a merge of plans): how many kernel invocations it saw and their
// cumulative wall time. This is the serving-side view of "where model time
// goes" — the measured-cost input for profile-guided recompilation.
type OpTotal struct {
	Op      string `json:"op"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// MeanNs is the mean time per invocation, 0 when never invoked.
func (t OpTotal) MeanNs() int64 {
	if t.Count == 0 {
		return 0
	}
	return t.TotalNs / t.Count
}

// MergeOpTotals combines per-plan tables (e.g. a model's batch variants)
// into one, summing entries of the same op type, sorted by cumulative time
// descending. Empty input merges to nil.
func MergeOpTotals(tables ...[]OpTotal) []OpTotal {
	var agg map[string]OpTotal
	for _, tbl := range tables {
		for _, t := range tbl {
			if t.Count == 0 {
				continue
			}
			if agg == nil {
				agg = make(map[string]OpTotal, len(tbl))
			}
			a := agg[t.Op]
			a.Op = t.Op
			a.Count += t.Count
			a.TotalNs += t.TotalNs
			agg[t.Op] = a
		}
	}
	if len(agg) == 0 {
		return nil
	}
	out := make([]OpTotal, 0, len(agg))
	for _, t := range agg {
		out = append(out, t)
	}
	SortOpTotals(out)
	return out
}

// SortOpTotals orders a table by cumulative time descending (op name as the
// tiebreaker, so reports are deterministic).
func SortOpTotals(ts []OpTotal) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].TotalNs != ts[j].TotalNs {
			return ts[i].TotalNs > ts[j].TotalNs
		}
		return ts[i].Op < ts[j].Op
	})
}
