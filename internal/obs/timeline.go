package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies one timeline span.
type SpanKind uint8

const (
	// SpanOp is one operator kernel execution on a lane.
	SpanOp SpanKind = iota
	// SpanRecvWait is time a lane spent blocked on a cross-lane channel
	// receive before a value arrived (Peer is the producing lane).
	SpanRecvWait
	// SpanSend is the instant a lane handed a value to a consumer lane's
	// channel (Peer is the consuming lane). Duration is zero.
	SpanSend
)

// String returns the stable label used in exports.
func (k SpanKind) String() string {
	switch k {
	case SpanOp:
		return "op"
	case SpanRecvWait:
		return "recv_wait"
	case SpanSend:
		return "send"
	}
	return "unknown"
}

// OpSpan is one timestamped event of a run's execution timeline: an operator
// kernel execution, a blocked cross-lane receive, or a channel send. Times
// are nanosecond offsets from the run's start, so spans from different lanes
// share one clock.
type OpSpan struct {
	Kind SpanKind `json:"kind"`
	// Lane is the lane (cluster goroutine) the event happened on.
	Lane int32 `json:"lane"`
	// Name is the node name for op spans and the value name for
	// recv-wait/send spans.
	Name string `json:"name"`
	// Op is the operator type (op spans only).
	Op string `json:"op,omitempty"`
	// StartNs/DurNs place the span on the run's clock.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// Peer is the other lane of a transfer: the producer for recv-wait
	// spans, the consumer for send spans. -1 for op spans.
	Peer int32 `json:"peer"`
}

// EndNs is the span's end offset on the run clock.
func (s OpSpan) EndNs() int64 { return s.StartNs + s.DurNs }

// RunTimeline is one sampled run's complete execution timeline.
type RunTimeline struct {
	// Seq is the 1-based run number on the plan the sample came from.
	Seq int64 `json:"seq"`
	// Start is the wall-clock start of the run.
	Start time.Time `json:"start"`
	// WallNs is the run's wall time (0 until committed).
	WallNs int64 `json:"wall_ns"`
	// Lanes is the plan's lane count.
	Lanes int `json:"lanes"`
	// Complete is false when the run failed or was cancelled; the spans
	// then cover only the work done before the unwind.
	Complete bool `json:"complete"`
	// Spans holds every recorded event, grouped by lane and in per-lane
	// time order (lanes are concatenated; use StartNs to interleave).
	Spans []OpSpan `json:"spans"`
}

// OpTimeNs sums the duration of every operator span — the run's total
// kernel busy time across lanes.
func (r *RunTimeline) OpTimeNs() int64 {
	var t int64
	for _, s := range r.Spans {
		if s.Kind == SpanOp {
			t += s.DurNs
		}
	}
	return t
}

// WaitTimeNs sums the duration of every recv-wait span — the run's total
// blocked-on-message time across lanes (the profile's slack).
func (r *RunTimeline) WaitTimeNs() int64 {
	var t int64
	for _, s := range r.Spans {
		if s.Kind == SpanRecvWait {
			t += s.DurNs
		}
	}
	return t
}

// RunCapture is the in-flight recording state of one sampled run. Each lane
// goroutine appends only to its own per-lane slice, so recording needs no
// locks; Commit flattens the lanes into a RunTimeline and publishes it to
// the Timeline's ring. A nil *RunCapture ignores all calls — the executor's
// hot loop records through one nil check per event site.
type RunCapture struct {
	tl    *Timeline
	seq   int64
	start time.Time
	lanes [][]OpSpan
}

// Start returns the capture's run-start instant; the executor passes event
// times as time.Time and the capture converts to run-clock offsets.
func (c *RunCapture) offset(t time.Time) int64 { return int64(t.Sub(c.start)) }

// Op records one kernel execution on a lane. Safe only from that lane's
// goroutine (the per-lane append discipline). Nil-safe.
func (c *RunCapture) Op(lane int, name, op string, start time.Time, dur time.Duration) {
	if c == nil {
		return
	}
	c.lanes[lane] = append(c.lanes[lane], OpSpan{
		Kind: SpanOp, Lane: int32(lane), Name: name, Op: op,
		StartNs: c.offset(start), DurNs: int64(dur), Peer: -1,
	})
}

// Wait records one blocked cross-lane receive on a lane (from is the
// producing lane). Nil-safe.
func (c *RunCapture) Wait(lane, from int, value string, start time.Time, dur time.Duration) {
	if c == nil {
		return
	}
	c.lanes[lane] = append(c.lanes[lane], OpSpan{
		Kind: SpanRecvWait, Lane: int32(lane), Name: value,
		StartNs: c.offset(start), DurNs: int64(dur), Peer: int32(from),
	})
}

// Send records one channel handoff from a lane to a consumer lane (an
// instant event). Nil-safe.
func (c *RunCapture) Send(lane, to int, value string, at time.Time) {
	if c == nil {
		return
	}
	c.lanes[lane] = append(c.lanes[lane], OpSpan{
		Kind: SpanSend, Lane: int32(lane), Name: value,
		StartNs: c.offset(at), Peer: int32(to),
	})
}

// Commit flattens the capture into a RunTimeline and publishes it to the
// recorder's ring. complete is false for failed or cancelled runs. Must be
// called after every lane goroutine has exited (the executor calls it after
// its WaitGroup). Nil-safe.
func (c *RunCapture) Commit(wall time.Duration, complete bool) *RunTimeline {
	if c == nil {
		return nil
	}
	total := 0
	for _, ls := range c.lanes {
		total += len(ls)
	}
	r := &RunTimeline{
		Seq:      c.seq,
		Start:    c.start,
		WallNs:   int64(wall),
		Lanes:    len(c.lanes),
		Complete: complete,
		Spans:    make([]OpSpan, 0, total),
	}
	for _, ls := range c.lanes {
		r.Spans = append(r.Spans, ls...)
	}
	c.tl.publish(r)
	return r
}

// Timeline is the execution-layer flight recorder of one plan: it samples
// every Nth run into a small ring of RunTimelines. The unsampled path is a
// single atomic increment, and a plan with no Timeline attached pays one
// atomic pointer load per run — the hot loop stays zero-allocation (pinned
// by test). Sampled runs do allocate (their span slices); that is the 1-in-N
// cost the sampling rate bounds.
type Timeline struct {
	every int64
	runs  atomic.Int64

	mu   sync.Mutex
	ring []*RunTimeline
	next int
	last *RunTimeline
}

// NewTimeline creates a recorder sampling one run in `every` (minimum 1)
// and retaining the most recent `ring` sampled runs (minimum 1).
func NewTimeline(every, ring int) *Timeline {
	if every < 1 {
		every = 1
	}
	if ring < 1 {
		ring = 1
	}
	return &Timeline{every: int64(every), ring: make([]*RunTimeline, ring)}
}

// Every returns the sampling interval.
func (t *Timeline) Every() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// StartRun begins recording if this run is sampled, returning nil otherwise
// (and on a nil receiver). lanes is the plan's lane count. The caller hands
// the returned capture to its lane goroutines and Commits it when the run
// ends.
func (t *Timeline) StartRun(lanes int) *RunCapture {
	if t == nil {
		return nil
	}
	n := t.runs.Add(1)
	if (n-1)%t.every != 0 {
		return nil
	}
	return &RunCapture{
		tl:    t,
		seq:   n,
		start: time.Now(),
		lanes: make([][]OpSpan, lanes),
	}
}

// Runs reports how many runs the recorder has seen (sampled or not).
func (t *Timeline) Runs() int64 {
	if t == nil {
		return 0
	}
	return t.runs.Load()
}

// publish stores a committed run in the ring.
func (t *Timeline) publish(r *RunTimeline) {
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	t.last = r
	t.mu.Unlock()
}

// Last returns the most recently committed sampled run, nil before the
// first sample (and on a nil receiver). The returned timeline is immutable.
func (t *Timeline) Last() *RunTimeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// Snapshot returns the retained sampled runs, newest first. Nil-safe.
func (t *Timeline) Snapshot() []*RunTimeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*RunTimeline, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		// Walk backwards from the most recent write position.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx] != nil {
			out = append(out, t.ring[idx])
		}
	}
	return out
}
