package models

import (
	"math"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// bertDims bundles BERT's scaled-down hyperparameters.
type bertDims struct {
	seq, hidden, heads, ffn, vocab, layers int
}

func defaultBertDims() bertDims {
	return bertDims{seq: 16, hidden: 32, heads: 4, ffn: 64, vocab: 128, layers: 12}
}

// linear adds x·W + bias over the trailing dimension of a rank-3 activation.
func (b *builder) linear(x val, outF int) val {
	inF := x.shape[len(x.shape)-1]
	w := b.param("lw", inF, outF)
	bias := b.param("lb", outF)
	mm := b.node("MatMul", []string{x.name, w}, nil)
	out := b.node("Add", []string{mm, bias}, nil)
	sh := x.shape.Clone()
	sh[len(sh)-1] = outF
	return val{out, sh}
}

// layerNorm adds LayerNormalization over the trailing dimension.
func (b *builder) layerNorm(x val) val {
	f := x.shape[len(x.shape)-1]
	scale := b.param("ln_s", f)
	bias := b.param("ln_b", f)
	out := b.node("LayerNormalization", []string{x.name, scale, bias}, nil)
	return val{out, x.shape}
}

// mha adds one multi-headed-attention block, the repeated hanging-off-one-
// node structure of the paper's Fig. 3: Q, K and V projections fan out of
// the same input, flow through independent reshape/transpose chains, meet
// at the score MatMul, and rejoin the residual stream at the output
// projection.
func (b *builder) mha(x val, d bertDims, mask string) val {
	batch := x.shape[0]
	dh := d.hidden / d.heads

	project := func() val {
		p := b.linear(x, d.hidden)
		p = b.reshapeConst(p, []int{batch, d.seq, d.heads, dh}, 8)
		return b.transpose(p, 0, 2, 1, 3) // [B, heads, seq, dh]
	}
	q := project()
	k := project()
	v := project()

	kT := b.transpose(k, 0, 1, 3, 2) // [B, heads, dh, seq]
	scores := val{b.node("MatMul", []string{q.name, kT.name}, nil),
		tensor.Shape{batch, d.heads, d.seq, d.seq}}
	scale := b.constScalar("c_scale", float32(math.Sqrt(float64(dh))))
	scores = val{b.node("Div", []string{scores.name, scale}, nil), scores.shape}
	scores = val{b.node("Add", []string{scores.name, mask}, nil), scores.shape}
	probs := val{b.node("Softmax", []string{scores.name}, nil), scores.shape}

	ctx := val{b.node("MatMul", []string{probs.name, v.name}, nil),
		tensor.Shape{batch, d.heads, d.seq, dh}}
	ctx = b.transpose(ctx, 0, 2, 1, 3)
	ctx = b.reshapeConst(ctx, []int{batch, d.seq, d.hidden}, 8)

	out := b.linear(ctx, d.hidden)
	return b.layerNorm(b.add(out, x))
}

// transformerLayer is MHA followed by the GELU feed-forward block, each
// with residual connection and layer norm.
func (b *builder) transformerLayer(x val, d bertDims, mask string) val {
	x = b.mha(x, d, mask)
	// Exporters emit a constant shape chain on the residual stream between
	// the attention and feed-forward blocks.
	x = b.constantChain(x, 6)
	ff := b.linear(x, d.ffn)
	ff = b.gelu(ff)
	ff = b.linear(ff, d.hidden)
	return b.layerNorm(b.add(ff, x))
}

// BERT builds a BERT-base-style encoder: token+position embeddings, twelve
// transformer layers, and a pooler+classifier head. Each layer's ONNX
// export carries the constant shape-computation chains reproduced here.
// The paper reports 963 nodes and 1.27x parallelism, with the MHA subgraph
// as the main pruning and clustering opportunity.
func BERT(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	d := defaultBertDims()
	b := newBuilder("bert", cfg)
	ids := b.input("input_ids", cfg.Batch, d.seq)

	// Embeddings: token gather + position add + layer norm.
	table := b.fresh("emb_table")
	b.g.AddInitializer(table, b.rng.RandTensor(d.vocab, d.hidden))
	tok := val{b.node("Gather", []string{table, ids.name}, nil),
		tensor.Shape{cfg.Batch, d.seq, d.hidden}}
	posName := b.fresh("emb_pos")
	b.g.AddInitializer(posName, b.rng.RandTensor(1, d.seq, d.hidden))
	x := val{b.node("Add", []string{tok.name, posName}, nil), tok.shape}
	x = b.layerNorm(x)
	x = b.constantChain(x, 6)

	// Additive attention mask (zeros: fully visible).
	mask := b.fresh("attn_mask")
	b.g.AddInitializer(mask, tensor.Zeros(cfg.Batch, 1, 1, d.seq))

	for i := 0; i < d.layers; i++ {
		x = b.transformerLayer(x, d, mask)
	}

	// Pooler: first token through a tanh dense layer, then classify.
	first := b.constVec("c_first", 0)
	pooled := val{b.node("Gather", []string{x.name, first}, ops.Attrs{"axis": 1}),
		tensor.Shape{cfg.Batch, 1, d.hidden}}
	pooled = b.reshapeConst(pooled, []int{cfg.Batch, d.hidden}, 2)
	pw := b.param("pool_w", d.hidden, d.hidden)
	pb := b.param("pool_b", d.hidden)
	pg := b.node("Gemm", []string{pooled.name, pw, pb}, nil)
	pt := b.node("Tanh", []string{pg}, nil)
	cw := b.param("cls_w", d.hidden, 2)
	cb := b.param("cls_b", 2)
	logits := val{b.node("Gemm", []string{pt, cw, cb}, nil), tensor.Shape{cfg.Batch, 2}}
	b.output(logits)
	return b.finish()
}
