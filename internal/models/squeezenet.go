package models

import "repro/internal/graph"

// fire adds a SqueezeNet fire module: a 1x1 squeeze convolution followed by
// parallel 1x1 and 3x3 expand convolutions whose outputs are concatenated.
// This is exactly the two-parallel-paths structure of the paper's Fig. 1.
func (b *builder) fire(x val, squeeze, expand int) val {
	s := b.convRelu(x, squeeze, 1, 1, 0)
	e1 := b.convRelu(s, expand, 1, 1, 0)
	e3 := b.convRelu(s, expand, 3, 1, 1)
	return b.concat(e1, e3)
}

// Squeezenet builds SqueezeNet v1.1: conv stem, eight fire modules with
// interleaved max-pools, and a convolutional classifier head. The paper
// reports 66 nodes and a potential parallelism of 0.86x (a long dependency
// chain with only short side paths).
func Squeezenet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("squeezenet", cfg)
	x := b.input("input", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	x = b.convRelu(x, 16, 3, 2, 1)
	x = b.maxPool(x, 3, 2, 1)
	x = b.fire(x, 4, 8)
	x = b.fire(x, 4, 8)
	x = b.maxPool(x, 3, 2, 1)
	x = b.fire(x, 8, 16)
	x = b.fire(x, 8, 16)
	x = b.maxPool(x, 3, 2, 1)
	x = b.fire(x, 12, 24)
	x = b.fire(x, 12, 24)
	x = b.fire(x, 16, 32)
	x = b.fire(x, 16, 32)

	x = b.convRelu(x, 10, 1, 1, 0) // class conv
	x = b.globalAvgPool(x)
	x = b.flatten(x)
	b.output(x)
	return b.finish()
}
