package models

import "repro/internal/graph"

// bottleneck adds a ResNet bottleneck: 1x1 → 3x3 → 1x1 convolutions with
// batch norm, plus the residual add (with projection when shapes change).
func (b *builder) bottleneck(x val, midC, outC, stride int) val {
	y := b.relu(b.bn(b.conv(x, midC, 1, 1, stride, 0)))
	y = b.relu(b.bn(b.conv(y, midC, 3, 3, 1, 1)))
	y = b.bn(b.conv(y, outC, 1, 1, 1, 0))
	short := x
	if stride != 1 || x.shape[1] != outC {
		short = b.bn(b.conv(x, outC, 1, 1, stride, 0))
	}
	return b.relu(b.add(y, short))
}

// subnet is a Retinanet classification/regression head: four 3x3 conv+relu
// layers, an output conv, and the exporter's reshape/transpose epilogue.
func (b *builder) subnet(x val, outPer int, sigmoid bool) val {
	y := x
	for i := 0; i < 4; i++ {
		y = b.convRelu(y, x.shape[1], 3, 1, 1)
	}
	y = b.conv(y, outPer, 3, 3, 1, 1)
	if sigmoid {
		y = b.sigmoid(y)
	}
	cells := y.shape[2] * y.shape[3]
	y = b.reshapeConst(y, []int{y.shape[0], outPer, cells}, 0)
	return b.transpose(y, 0, 2, 1)
}

// Retinanet builds the RetinaNet detector: a ResNet-50-style bottleneck
// backbone, a feature-pyramid network over C3..C5 plus P6/P7, and per-level
// classification and box-regression subnets whose outputs are concatenated.
// The paper reports 450 nodes and 1.2x parallelism; LC beats the static
// estimate here (1.3x) because the per-level subnets are fully independent.
func Retinanet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("retinanet", cfg)
	// Detectors need more spatial headroom for 5 pyramid levels.
	size := cfg.ImageSize
	if size < 64 {
		size = 64
	}
	x := b.input("input", cfg.Batch, 3, size, size)

	// ResNet stem.
	x = b.relu(b.bn(b.conv(x, 8, 7, 7, 2, 3)))
	x = b.maxPool(x, 3, 2, 1)

	// Stages: [3, 4, 6, 3] bottlenecks.
	stage := func(x val, blocks, midC, outC, stride int) val {
		x = b.bottleneck(x, midC, outC, stride)
		for i := 1; i < blocks; i++ {
			x = b.bottleneck(x, midC, outC, 1)
		}
		return x
	}
	c2 := stage(x, 3, 4, 16, 1)
	c3 := stage(c2, 4, 8, 32, 2)
	c4 := stage(c3, 6, 8, 32, 2)
	c5 := stage(c4, 3, 16, 64, 2)

	// FPN: lateral 1x1s, top-down adds, output 3x3s, plus P6/P7.
	fpnC := 16
	l5 := b.conv(c5, fpnC, 1, 1, 1, 0)
	l4 := b.conv(c4, fpnC, 1, 1, 1, 0)
	l3 := b.conv(c3, fpnC, 1, 1, 1, 0)
	t4 := b.add(l4, b.resize2x(l5))
	t3 := b.add(l3, b.resize2x(t4))
	p5 := b.conv(l5, fpnC, 3, 3, 1, 1)
	p4 := b.conv(t4, fpnC, 3, 3, 1, 1)
	p3 := b.conv(t3, fpnC, 3, 3, 1, 1)
	p6 := b.conv(c5, fpnC, 3, 3, 2, 1)
	p7 := b.conv(b.relu(p6), fpnC, 3, 3, 2, 1)

	// Heads on every level; anchors*classes and anchors*4 outputs.
	const anchors, classes = 3, 4
	var clsOuts, boxOuts []val
	for _, p := range []val{p3, p4, p5, p6, p7} {
		clsOuts = append(clsOuts, b.subnet(p, anchors*classes, true))
		boxOuts = append(boxOuts, b.subnet(p, anchors*4, false))
	}
	clsCat := b.concatAxis(1, clsOuts...)
	boxCat := b.concatAxis(1, boxOuts...)
	b.output(clsCat)
	b.output(boxCat)
	return b.finish()
}
