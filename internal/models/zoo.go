package models

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Builder constructs one evaluation model.
type Builder func(Config) *graph.Graph

// zoo maps model names to builders, in the order of the paper's Table I.
var zoo = map[string]Builder{
	"squeezenet":   Squeezenet,
	"googlenet":    Googlenet,
	"inception_v3": InceptionV3,
	"inception_v4": InceptionV4,
	"yolo_v5":      YoloV5,
	"retinanet":    Retinanet,
	"bert":         BERT,
	"nasnet":       NASNet,
}

// TableOrder lists the models in the paper's Table I row order.
var TableOrder = []string{
	"squeezenet", "googlenet", "inception_v3", "inception_v4",
	"yolo_v5", "retinanet", "bert", "nasnet",
}

// PaperRef records the paper's published numbers for one model, used by
// EXPERIMENTS.md and the benchmark harness to print paper-vs-measured rows.
type PaperRef struct {
	Nodes          int     // Table I
	NodeCost       float64 // Table I (weighted)
	CPCost         float64 // Table I (weighted)
	Parallelism    float64 // Table I
	ClustersPreMrg int     // Table II
	ClustersPost   int     // Table II
	ClustersDCE    int     // Table III (0 = model not listed)
	SpeedupLC      float64 // Table IV
	SpeedupDCE     float64 // Table VI (0 = not listed)
	SpeedupOverall float64 // Table VII
}

// PaperRefs holds the published evaluation numbers per model.
var PaperRefs = map[string]PaperRef{
	"squeezenet":   {66, 187, 218, 0.86, 9, 2, 0, 0.83, 0, 0.95},
	"googlenet":    {153, 373, 264, 1.4, 30, 4, 0, 1.2, 0, 1.33},
	"inception_v3": {238, 1136, 829, 1.37, 38, 6, 0, 1.32, 0, 1.42},
	"inception_v4": {339, 1763, 1334, 1.32, 55, 6, 0, 1.44, 0, 1.55},
	"yolo_v5":      {280, 730, 619, 1.18, 29, 12, 9, 0.96, 1.06, 1.06},
	"retinanet":    {450, 1291, 1102, 1.2, 16, 10, 0, 1.3, 0, 1.4},
	"bert":         {963, 21357, 16870, 1.27, 76, 5, 3, 1.07, 1.15, 1.18},
	"nasnet":       {1426, 8147, 2187, 3.7, 244, 67, 9, 1.7, 1.91, 1.91},
}

// Build constructs the named model or returns an error listing valid names.
func Build(name string, cfg Config) (*graph.Graph, error) {
	b, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(cfg), nil
}

// MustBuild is Build for static names; it panics on unknown models.
func MustBuild(name string, cfg Config) *graph.Graph {
	g, err := Build(name, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(zoo))
	for n := range zoo {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RandomInputs generates a deterministic, valid input binding for every
// graph input: standard-normal activations for image tensors, and integer
// token ids in [0, vocab) for BERT-style "input_ids".
func RandomInputs(g *graph.Graph, seed uint64) map[string]*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	feeds := make(map[string]*tensor.Tensor, len(g.Inputs))
	for _, in := range g.Inputs {
		t := tensor.Zeros(in.Shape...)
		if in.Name == "input_ids" {
			d := t.Data()
			vocab := defaultBertDims().vocab
			for i := range d {
				d[i] = float32(rng.Intn(vocab))
			}
		} else {
			rng.FillNormal(t, 0, 1)
		}
		feeds[in.Name] = t
	}
	return feeds
}
