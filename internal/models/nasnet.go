package models

import "repro/internal/graph"

// sepConv is NASNet's separable convolution, applied twice as in the
// reference architecture: (relu → depthwise KxK → pointwise 1x1 → bn) x2.
func (b *builder) sepConv(x val, outC, k, stride int) val {
	pad := k / 2
	y := b.relu(x)
	y = b.depthwise(y, k, k, stride, pad)
	y = b.conv(y, outC, 1, 1, 1, 0)
	y = b.bn(y)
	y = b.relu(y)
	y = b.depthwise(y, k, k, 1, pad)
	y = b.conv(y, outC, 1, 1, 1, 0)
	return b.bn(y)
}

// fit projects a hidden state to the target channel count and spatial
// stride so two cell inputs can be combined.
func (b *builder) fit(x val, outC, stride int) val {
	if x.shape[1] == outC && stride == 1 {
		return x
	}
	return b.relu(b.bn(b.conv(x, outC, 1, 1, stride, 0)))
}

// nasnetNormalCell is a NASNet-A normal cell: five blocks, each combining
// two hidden states through separable convs, average pools or identities,
// all mutually independent — the source of NASNet's huge fan-out and its
// 3.7x potential parallelism.
func (b *builder) nasnetNormalCell(prev, prevPrev val, c int) val {
	h0 := b.fit(prev, c, 1)
	h1 := b.fit(prevPrev, c, 1)
	if h1.shape[2] != h0.shape[2] {
		h1 = b.fit2x(h1, c)
	}

	b1 := b.add(b.sepConv(h0, c, 3, 1), h0)
	b2 := b.add(b.sepConv(h1, c, 3, 1), b.sepConv(h0, c, 5, 1))
	b3 := b.add(b.avgPool(h0, 3, 1, 1), h1)
	b4 := b.add(b.avgPool(h1, 3, 1, 1), b.avgPool(h1, 3, 1, 1))
	b5 := b.add(b.sepConv(h1, c, 5, 1), b.sepConv(h1, c, 3, 1))
	return b.concat(b1, b2, b3, b4, b5)
}

// nasnetReductionCell halves the spatial extent while combining states.
func (b *builder) nasnetReductionCell(prev, prevPrev val, c int) val {
	h0 := b.fit(prev, c, 1)
	h1 := b.fit(prevPrev, c, 1)
	if h1.shape[2] != h0.shape[2] {
		h1 = b.fit2x(h1, c)
	}

	r1 := b.add(b.sepConv(h0, c, 5, 2), b.sepConv(h1, c, 7, 2))
	r2 := b.add(b.maxPool(h0, 3, 2, 1), b.sepConv(h1, c, 7, 2))
	r3 := b.add(b.avgPool(h0, 3, 2, 1), b.sepConv(h1, c, 5, 2))
	r4 := b.add(b.sepConv(r1, c, 3, 1), b.maxPool(h0, 3, 2, 1))
	r5 := b.add(b.avgPool(r1, 3, 1, 1), r2)
	return b.concat(r2, r3, r4, r5)
}

// fit2x halves spatial extent via a stride-2 projection.
func (b *builder) fit2x(x val, outC int) val {
	return b.relu(b.bn(b.conv(x, outC, 1, 1, 2, 0)))
}

// NASNet builds a NASNet-A-style network: a conv stem followed by three
// stacks of normal cells separated by reduction cells, where every cell
// consumes the two previous cell outputs (skip connections). The graph is
// the biggest and most parallel in the evaluation — the paper reports 1426
// nodes, 3.7x potential parallelism, 244 linear clusters before merging and
// heavy DCE opportunity (Tables I-III); constant chains from the exporter
// are attached per cell.
func NASNet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("nasnet", cfg)
	x := b.input("input", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	stem := b.relu(b.bn(b.conv(x, 8, 3, 3, 2, 1)))
	prevPrev, prev := stem, stem

	const cellsPerStack = 6
	c := 8
	for stack := 0; stack < 3; stack++ {
		for i := 0; i < cellsPerStack; i++ {
			out := b.nasnetNormalCell(prev, prevPrev, c)
			// Exporter constant chain per cell: independent linear paths
			// that LC turns into their own clusters until DCE removes them.
			out = b.constantChain(out, 10)
			prevPrev, prev = prev, out
		}
		if stack < 2 {
			out := b.nasnetReductionCell(prev, prevPrev, c*2)
			prevPrev, prev = prev, out
			c *= 2
		}
	}

	y := b.relu(prev)
	y = b.globalAvgPool(y)
	y = b.flattenFC(y, 10)
	b.output(y)
	return b.finish()
}
