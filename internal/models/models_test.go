package models

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/tensor"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range TableOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			g := MustBuild(name, Config{})
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
				t.Error("missing graph inputs/outputs")
			}
		})
	}
}

func TestNodeCountsInPaperRegime(t *testing.T) {
	// Table I: node counts must land in the same regime as the paper's
	// ONNX exports (tolerance: ±30%, deviations documented in
	// EXPERIMENTS.md).
	for _, name := range TableOrder {
		g := MustBuild(name, Config{})
		ref := PaperRefs[name]
		lo := int(float64(ref.Nodes) * 0.65)
		hi := int(float64(ref.Nodes) * 1.35)
		if n := len(g.Nodes); n < lo || n > hi {
			t.Errorf("%s: %d nodes, paper %d (allowed %d..%d)", name, n, ref.Nodes, lo, hi)
		}
	}
}

func TestParallelismFactorsTrackPaper(t *testing.T) {
	// The ordering that drives every conclusion: Squeezenet < 1 <
	// mid-range conv nets < NASNet.
	m := cost.DefaultModel()
	get := func(name string) float64 {
		g := MustBuild(name, Config{})
		met, err := cost.ComputeMetrics(g, m)
		if err != nil {
			t.Fatal(err)
		}
		return met.Parallelism
	}
	sq := get("squeezenet")
	if sq >= 1 {
		t.Errorf("squeezenet parallelism %v, want < 1 (paper 0.86)", sq)
	}
	nas := get("nasnet")
	if nas < 2 {
		t.Errorf("nasnet parallelism %v, want > 2 (paper 3.7)", nas)
	}
	for _, mid := range []string{"googlenet", "inception_v3", "inception_v4", "retinanet", "bert"} {
		p := get(mid)
		if p < 1 || p > 2 {
			t.Errorf("%s parallelism %v, want in (1, 2)", mid, p)
		}
		if p <= sq || p >= nas {
			t.Errorf("%s parallelism %v breaks ordering squeezenet(%v) < mid < nasnet(%v)", mid, p, sq, nas)
		}
	}
}

func TestModelsExecuteAtTinyScale(t *testing.T) {
	// Every model must actually run end to end on the real tensor engine.
	for _, name := range TableOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := Config{ImageSize: 16}
			g := MustBuild(name, cfg)
			feeds := RandomInputs(g, 11)
			out, err := exec.RunSequential(g, feeds)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range g.Outputs {
				tn := out[o.Name]
				if tn == nil || tn.Numel() == 0 {
					t.Fatalf("output %s empty", o.Name)
				}
				for _, v := range tn.Data() {
					if v != v {
						t.Fatalf("output %s contains NaN", o.Name)
					}
				}
			}
		})
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := MustBuild("squeezenet", Config{Seed: 9})
	b := MustBuild("squeezenet", Config{Seed: 9})
	for name, ta := range a.Initializers {
		tb, ok := b.Initializers[name]
		if !ok || !ta.Equal(tb) {
			t.Fatalf("weights for %s differ across identical builds", name)
		}
	}
	c := MustBuild("squeezenet", Config{Seed: 10})
	diff := false
	for name, ta := range a.Initializers {
		if tc, ok := c.Initializers[name]; ok && !ta.Equal(tc) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical weights")
	}
}

func TestBatchConfig(t *testing.T) {
	g := MustBuild("googlenet", Config{Batch: 2, ImageSize: 16})
	if g.Inputs[0].Shape[0] != 2 {
		t.Errorf("batch dim = %d", g.Inputs[0].Shape[0])
	}
	feeds := RandomInputs(g, 3)
	if _, err := exec.RunSequential(g, feeds); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("alexnet", Config{}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestNamesAndOrder(t *testing.T) {
	if len(Names()) != len(TableOrder) {
		t.Errorf("Names() has %d entries, TableOrder %d", len(Names()), len(TableOrder))
	}
	for _, name := range TableOrder {
		if _, ok := PaperRefs[name]; !ok {
			t.Errorf("no PaperRef for %s", name)
		}
		if _, ok := zoo[name]; !ok {
			t.Errorf("no builder for %s", name)
		}
	}
}

func TestRandomInputsBertIDs(t *testing.T) {
	g := MustBuild("bert", Config{})
	feeds := RandomInputs(g, 5)
	ids := feeds["input_ids"]
	if ids == nil {
		t.Fatal("no input_ids feed")
	}
	vocab := float32(defaultBertDims().vocab)
	for _, v := range ids.Data() {
		if v < 0 || v >= vocab || v != float32(int(v)) {
			t.Fatalf("invalid token id %v", v)
		}
	}
}

func TestConstantBearingModels(t *testing.T) {
	// Yolo/BERT/NASNet must contain Constant nodes (the DCE story);
	// Squeezenet/GoogleNet/Inception must not (Section V-C).
	hasConst := func(name string) bool {
		g := MustBuild(name, Config{})
		for _, n := range g.Nodes {
			if n.OpType == "Constant" {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"yolo_v5", "bert", "nasnet"} {
		if !hasConst(name) {
			t.Errorf("%s has no Constant nodes", name)
		}
	}
	for _, name := range []string{"squeezenet", "googlenet", "inception_v3", "inception_v4"} {
		if hasConst(name) {
			t.Errorf("%s unexpectedly has Constant nodes", name)
		}
	}
}

func TestYoloSizeRounding(t *testing.T) {
	g := MustBuild("yolo_v5", Config{ImageSize: 40})
	if s := g.Inputs[0].Shape[2]; s%32 != 0 {
		t.Errorf("yolo input size %d not multiple of 32", s)
	}
	feeds := RandomInputs(g, 2)
	if _, err := exec.RunSequential(g, feeds); err != nil {
		t.Fatal(err)
	}
}

func TestFireModuleShape(t *testing.T) {
	b := newBuilder("t", Config{}.withDefaults())
	x := b.input("input", 1, 8, 8, 8)
	out := b.fire(x, 4, 8)
	if !out.shape.Equal(tensor.Shape{1, 16, 8, 8}) {
		t.Errorf("fire output shape %v", out.shape)
	}
	b.output(out)
	g := b.finish()
	if len(g.Nodes) != 7 { // squeeze conv+relu, 2x expand conv+relu, concat
		t.Errorf("fire module has %d nodes, want 7", len(g.Nodes))
	}
}

func TestGeluDecomposition(t *testing.T) {
	b := newBuilder("t", Config{}.withDefaults())
	x := b.input("input", 2, 4)
	out := b.gelu(x)
	b.output(out)
	g := b.finish()
	feeds := exec.Env{"input": tensor.New(tensor.Shape{2, 4},
		[]float32{-3, -1, -0.5, 0, 0.5, 1, 2, 3})}
	res, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	y := res[g.Outputs[0].Name]
	// GELU(0)=0, GELU(x)≈x for large x, ≈0 for very negative x.
	if y.Data()[3] != 0 {
		t.Errorf("gelu(0) = %v", y.Data()[3])
	}
	if d := y.Data()[7] - 3; d > 0.01 || d < -0.01 {
		t.Errorf("gelu(3) = %v, want ≈3", y.Data()[7])
	}
	if y.Data()[0] > 0.01 || y.Data()[0] < -0.01 {
		t.Errorf("gelu(-3) = %v, want ≈0", y.Data()[0])
	}
}
