package models

import "repro/internal/graph"

// inceptionV1 adds a GoogLeNet inception module: four parallel branches —
// 1x1, 1x1→3x3, 1x1→5x5 and maxpool→1x1 — concatenated along channels.
func (b *builder) inceptionV1(x val, c1, c3r, c3, c5r, c5, cp int) val {
	br1 := b.convRelu(x, c1, 1, 1, 0)
	br2 := b.convRelu(b.convRelu(x, c3r, 1, 1, 0), c3, 3, 1, 1)
	br3 := b.convRelu(b.convRelu(x, c5r, 1, 1, 0), c5, 5, 1, 2)
	pool := b.maxPool(x, 3, 1, 1)
	br4 := b.convRelu(pool, cp, 1, 1, 0)
	return b.concat(br1, br2, br3, br4)
}

// Googlenet builds GoogLeNet (Inception V1): a convolutional stem followed
// by nine inception modules with interleaved max-pools and a global-average
// classifier. The paper reports 153 nodes and 1.4x potential parallelism —
// the four-way module fan-out is the parallelism source.
func Googlenet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("googlenet", cfg)
	x := b.input("input", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	// Stem: 7x7/2 → pool → 1x1 → 3x3 → pool.
	x = b.convRelu(x, 16, 7, 2, 3)
	x = b.maxPool(x, 3, 2, 1)
	x = b.convRelu(x, 16, 1, 1, 0)
	x = b.convRelu(x, 32, 3, 1, 1)
	x = b.maxPool(x, 3, 2, 1)

	// Inception 3a, 3b.
	x = b.inceptionV1(x, 8, 8, 16, 2, 4, 4)
	x = b.inceptionV1(x, 16, 16, 24, 4, 8, 8)
	x = b.maxPool(x, 3, 2, 1)

	// Inception 4a..4e.
	x = b.inceptionV1(x, 16, 8, 16, 2, 8, 8)
	x = b.inceptionV1(x, 16, 8, 16, 2, 8, 8)
	x = b.inceptionV1(x, 16, 8, 16, 2, 8, 8)
	x = b.inceptionV1(x, 16, 8, 16, 2, 8, 8)
	x = b.inceptionV1(x, 24, 16, 32, 4, 16, 16)
	x = b.maxPool(x, 3, 2, 1)

	// Inception 5a, 5b.
	x = b.inceptionV1(x, 24, 16, 32, 4, 16, 16)
	x = b.inceptionV1(x, 32, 16, 32, 4, 16, 16)

	x = b.globalAvgPool(x)
	x = b.flattenFC(x, 10)
	b.output(x)
	return b.finish()
}
