package models

import "repro/internal/graph"

// inceptionA: 1x1, 1x1→5x5, 1x1→3x3→3x3 and avgpool→1x1 branches.
func (b *builder) inceptionA(x val, pool int) val {
	br1 := b.convRelu(x, 16, 1, 1, 0)
	br2 := b.convRelu(b.convRelu(x, 8, 1, 1, 0), 16, 5, 1, 2)
	br3 := b.convRelu(b.convRelu(b.convRelu(x, 8, 1, 1, 0), 16, 3, 1, 1), 16, 3, 1, 1)
	br4 := b.convRelu(b.avgPool(x, 3, 1, 1), pool, 1, 1, 0)
	return b.concat(br1, br2, br3, br4)
}

// reductionA: stride-2 3x3, 1x1→3x3→3x3/2 and maxpool branches.
func (b *builder) reductionA(x val) val {
	br1 := b.convRelu(x, 24, 3, 2, 1)
	br2 := b.convRelu(b.convRelu(b.convRelu(x, 8, 1, 1, 0), 16, 3, 1, 1), 24, 3, 2, 1)
	br3 := b.maxPool(x, 3, 2, 1)
	return b.concat(br1, br2, br3)
}

// inceptionB: the 7x7-factorized module — 1x1, 1x1→1x7→7x1, a double
// 7x7 branch, and avgpool→1x1.
func (b *builder) inceptionB(x val) val {
	br1 := b.convRelu(x, 16, 1, 1, 0)
	br2 := b.convA(b.convA(b.convRelu(x, 8, 1, 1, 0), 8, 1, 7, 0, 3), 16, 7, 1, 3, 0)
	br3 := b.convA(b.convA(b.convA(b.convA(b.convRelu(x, 8, 1, 1, 0),
		8, 7, 1, 3, 0), 8, 1, 7, 0, 3), 8, 7, 1, 3, 0), 16, 1, 7, 0, 3)
	br4 := b.convRelu(b.avgPool(x, 3, 1, 1), 16, 1, 1, 0)
	return b.concat(br1, br2, br3, br4)
}

// reductionB: 1x1→3x3/2, 1x1→1x7→7x1→3x3/2 and maxpool branches.
func (b *builder) reductionB(x val) val {
	br1 := b.convRelu(b.convRelu(x, 8, 1, 1, 0), 16, 3, 2, 1)
	br2 := b.convRelu(b.convA(b.convA(b.convRelu(x, 8, 1, 1, 0),
		8, 1, 7, 0, 3), 8, 7, 1, 3, 0), 16, 3, 2, 1)
	br3 := b.maxPool(x, 3, 2, 1)
	return b.concat(br1, br2, br3)
}

// inceptionC: the widest module — branches that themselves split into
// parallel 1x3 and 3x1 halves before concatenation.
func (b *builder) inceptionC(x val) val {
	br1 := b.convRelu(x, 16, 1, 1, 0)

	s2 := b.convRelu(x, 16, 1, 1, 0)
	br2a := b.convA(s2, 8, 1, 3, 0, 1)
	br2b := b.convA(s2, 8, 3, 1, 1, 0)
	br2 := b.concat(br2a, br2b)

	s3 := b.convRelu(b.convRelu(x, 16, 1, 1, 0), 16, 3, 1, 1)
	br3a := b.convA(s3, 8, 1, 3, 0, 1)
	br3b := b.convA(s3, 8, 3, 1, 1, 0)
	br3 := b.concat(br3a, br3b)

	br4 := b.convRelu(b.avgPool(x, 3, 1, 1), 16, 1, 1, 0)
	return b.concat(br1, br2, br3, br4)
}

// InceptionV3 builds Inception V3: a convolutional stem, three A modules,
// a reduction, four factorized-7x7 B modules, a reduction and two split-
// branch C modules. The paper reports 238 nodes and 1.37x parallelism, and
// uses this model to motivate cloning (Fig. 7): some parallel paths have
// very low computational intensity.
func InceptionV3(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("inception_v3", cfg)
	x := b.input("input", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	// Stem: three 3x3 convs, pool, 1x1, 3x3, pool.
	x = b.convRelu(x, 8, 3, 2, 1)
	x = b.convRelu(x, 8, 3, 1, 1)
	x = b.convRelu(x, 16, 3, 1, 1)
	x = b.maxPool(x, 3, 2, 1)
	x = b.convRelu(x, 16, 1, 1, 0)
	x = b.convRelu(x, 32, 3, 1, 1)
	x = b.maxPool(x, 3, 2, 1)

	x = b.inceptionA(x, 8)
	x = b.inceptionA(x, 16)
	x = b.inceptionA(x, 16)
	x = b.reductionA(x)
	x = b.inceptionB(x)
	x = b.inceptionB(x)
	x = b.inceptionB(x)
	x = b.inceptionB(x)
	x = b.reductionB(x)
	x = b.inceptionC(x)
	x = b.inceptionC(x)

	x = b.globalAvgPool(x)
	x = b.flattenFC(x, 10)
	b.output(x)
	return b.finish()
}

// stemV4 is Inception V4's branching stem: it forks into parallel conv and
// pool paths twice, concatenating each time.
func (b *builder) stemV4(x val) val {
	x = b.convRelu(x, 8, 3, 2, 1)
	x = b.convRelu(x, 8, 3, 1, 1)
	x = b.convRelu(x, 16, 3, 1, 1)
	// Fork 1: maxpool vs stride-2 conv.
	p1 := b.maxPool(x, 3, 2, 1)
	c1 := b.convRelu(x, 16, 3, 2, 1)
	x = b.concat(p1, c1)
	// Fork 2: two conv chains of different depth.
	a := b.convRelu(b.convRelu(x, 16, 1, 1, 0), 16, 3, 1, 1)
	bb := b.convA(b.convA(b.convRelu(x, 16, 1, 1, 0), 16, 1, 7, 0, 3), 16, 7, 1, 3, 0)
	bb = b.convRelu(bb, 16, 3, 1, 1)
	x = b.concat(a, bb)
	// Fork 3: conv vs pool.
	c3 := b.convRelu(x, 32, 3, 2, 1)
	p3 := b.maxPool(x, 3, 2, 1)
	return b.concat(c3, p3)
}

// InceptionV4 builds the deeper Inception V4: branching stem, four A
// modules, reduction, seven B modules, reduction, three C modules.
// The paper reports 339 nodes and 1.32x parallelism.
func InceptionV4(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("inception_v4", cfg)
	x := b.input("input", cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)

	x = b.stemV4(x)
	for i := 0; i < 4; i++ {
		x = b.inceptionA(x, 16)
	}
	x = b.reductionA(x)
	for i := 0; i < 7; i++ {
		x = b.inceptionB(x)
	}
	x = b.reductionB(x)
	for i := 0; i < 3; i++ {
		x = b.inceptionC(x)
	}

	x = b.globalAvgPool(x)
	x = b.flattenFC(x, 10)
	b.output(x)
	return b.finish()
}
