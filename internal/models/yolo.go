package models

import (
	"repro/internal/graph"
	"repro/internal/ops"
)

// convBNLeaky is Yolo's Conv→BatchNorm→LeakyRelu block.
func (b *builder) convBNLeaky(x val, outC, k, stride, pad int) val {
	return b.leakyRelu(b.bn(b.conv(x, outC, k, k, stride, pad)))
}

// c3 is Yolo V5's CSP bottleneck block: two parallel 1x1 projections, a
// stack of residual bottlenecks on one of them, concatenation and a fusing
// 1x1 convolution.
func (b *builder) c3(x val, outC, n int, shortcut bool) val {
	half := outC / 2
	if half < 2 {
		half = 2
	}
	cv1 := b.convBNLeaky(x, half, 1, 1, 0)
	cv2 := b.convBNLeaky(x, half, 1, 1, 0)
	cur := cv1
	for i := 0; i < n; i++ {
		y := b.convBNLeaky(cur, half, 1, 1, 0)
		y = b.convBNLeaky(y, half, 3, 1, 1)
		if shortcut {
			cur = b.add(cur, y)
		} else {
			cur = y
		}
	}
	return b.convBNLeaky(b.concat(cur, cv2), outC, 1, 1, 0)
}

// sppf is the spatial-pyramid-pooling-fast block: three chained max-pools
// whose outputs are concatenated with the input projection.
func (b *builder) sppf(x val, outC int) val {
	half := outC / 2
	cv1 := b.convBNLeaky(x, half, 1, 1, 0)
	p1 := b.maxPool(cv1, 5, 1, 2)
	p2 := b.maxPool(p1, 5, 1, 2)
	p3 := b.maxPool(p2, 5, 1, 2)
	return b.convBNLeaky(b.concat(cv1, p1, p2, p3), outC, 1, 1, 0)
}

// anchorGrid builds the constant anchor/grid subgraph real Yolo exports
// carry per detection head: a Constant grid tensor pushed through a chain
// of constant arithmetic, finally combined with the head activations. It
// is heavy, fully parallel to the conv path, and entirely foldable — the
// main reason constant propagation + DCE lifts Yolo from a slowdown to a
// speedup (paper Table VI).
func (b *builder) anchorGrid(x val, links int) val {
	vals := make([]float32, x.shape.Numel())
	for i := range vals {
		vals[i] = 1
	}
	cur := b.node("Constant", nil, ops.Attrs{"value": vals, "shape": []int(x.shape)})
	two := b.constScalar("c_two", 2)
	half := b.constScalar("c_half", 0.5)
	for i := 0; i < links; i++ {
		if i%2 == 0 {
			cur = b.node("Mul", []string{cur, two}, nil)
		} else {
			cur = b.node("Mul", []string{cur, half}, nil)
		}
	}
	return val{b.node("Mul", []string{x.name, cur}, nil), x.shape}
}

// yoloHead is one detection head: two 3x3 convs, a 1x1 conv to anchor
// outputs, sigmoid, the constant anchor-grid multiply, and the exporter's
// reshape through a constant shape chain.
func (b *builder) yoloHead(x val, anchors, attrsPer int) val {
	y := b.convBNLeaky(x, x.shape[1], 3, 1, 1)
	y = b.convBNLeaky(y, x.shape[1], 3, 1, 1)
	out := b.conv(y, anchors*attrsPer, 1, 1, 1, 0)
	sig := b.sigmoid(out)
	sig = b.anchorGrid(sig, 24)
	n := sig.shape[0]
	cells := sig.shape[2] * sig.shape[3]
	return b.reshapeConst(sig, []int{n, anchors, attrsPer, cells}, 6)
}

// YoloV5 builds the YOLO v5 detector: CSP backbone with C3 blocks and
// SPPF, a PAN feature-pyramid neck with two up- and two down-sampling
// paths, and three detection heads. ONNX exports of Yolo carry substantial
// constant shape-computation subgraphs, reproduced here, which constant
// propagation + DCE prune (paper Fig. 6, Tables III and VI). The paper
// reports 280 nodes and 1.18x parallelism.
func YoloV5(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("yolo_v5", cfg)
	// Five stride-2 levels plus the neck's 2x upsampling round trip need
	// the input extent to be a multiple of 32.
	size := (cfg.ImageSize + 31) / 32 * 32
	x := b.input("input", cfg.Batch, 3, size, size)

	// Backbone.
	x = b.convBNLeaky(x, 8, 6, 2, 2) // stem
	x = b.convBNLeaky(x, 16, 3, 2, 1)
	x = b.c3(x, 16, 1, true)
	x = b.convBNLeaky(x, 32, 3, 2, 1)
	p3 := b.c3(x, 32, 2, true)
	x = b.convBNLeaky(p3, 32, 3, 2, 1)
	p4 := b.c3(x, 32, 3, true)
	x = b.convBNLeaky(p4, 32, 3, 2, 1)
	x = b.c3(x, 32, 1, true)
	p5 := b.sppf(x, 32)

	// Exporter shape chains on the backbone outputs (DCE fodder).
	p5 = b.constantChain(p5, 8)

	// Neck: top-down (FPN) then bottom-up (PAN).
	cv5 := b.convBNLeaky(p5, 16, 1, 1, 0)
	up5 := b.resize2x(cv5)
	f4 := b.c3(b.concat(up5, p4), 32, 1, false)
	cv4 := b.convBNLeaky(f4, 16, 1, 1, 0)
	up4 := b.resize2x(cv4)
	outSmall := b.c3(b.concat(up4, p3), 32, 1, false)

	down3 := b.convBNLeaky(outSmall, 16, 3, 2, 1)
	outMedium := b.c3(b.concat(down3, cv4), 32, 1, false)
	down4 := b.convBNLeaky(outMedium, 16, 3, 2, 1)
	outLarge := b.c3(b.concat(down4, cv5), 32, 1, false)

	// More exporter constant chains on the neck outputs.
	outMedium = b.constantChain(outMedium, 8)
	outLarge = b.constantChain(outLarge, 8)

	// Three detection heads.
	h1 := b.yoloHead(outSmall, 3, 15)
	h2 := b.yoloHead(outMedium, 3, 15)
	h3 := b.yoloHead(outLarge, 3, 15)
	b.output(h1)
	b.output(h2)
	b.output(h3)
	return b.finish()
}
