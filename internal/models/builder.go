// Package models programmatically reconstructs the eight evaluation models
// of the paper — Squeezenet, GoogleNet, Inception V3/V4, Yolo V5, BERT,
// Retinanet and NASNet — as executable dataflow graphs. The paper extracts
// these from PyTorch/HuggingFace/ONNX model zoos; offline, we rebuild each
// architecture from its published block structure so that node counts, op
// mixes, fan-out patterns and constant subgraphs land in the same regime as
// Table I, while weights are synthetic (deterministic RNG) and spatial
// dimensions are scaled down so the real tensor engine can run them.
package models

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Config controls model construction.
type Config struct {
	// Batch is the leading input dimension (the paper's inference batch,
	// default 1).
	Batch int
	// ImageSize is the spatial input extent for vision models (default 32;
	// the paper uses 224+ but clustering depends only on topology).
	ImageSize int
	// Seed drives synthetic weight generation.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.ImageSize < 8 {
		c.ImageSize = 32
	}
	if c.Seed == 0 {
		c.Seed = 0xDA5
	}
	return c
}

// builder threads naming, weight generation and activation bookkeeping
// through a model's construction.
type builder struct {
	g    *graph.Graph
	rng  *tensor.RNG
	next int
}

func newBuilder(name string, cfg Config) *builder {
	return &builder{g: graph.New(name), rng: tensor.NewRNG(cfg.Seed)}
}

// val is a named activation with its tracked shape.
type val struct {
	name  string
	shape tensor.Shape
}

func (b *builder) fresh(prefix string) string {
	b.next++
	return fmt.Sprintf("%s_%d", prefix, b.next)
}

// param creates a weight initializer with the given shape.
func (b *builder) param(prefix string, dims ...int) string {
	name := b.fresh(prefix)
	b.g.AddInitializer(name, b.rng.RandTensor(dims...))
	return name
}

// constScalar creates a scalar constant initializer.
func (b *builder) constScalar(prefix string, v float32) string {
	name := b.fresh(prefix)
	b.g.AddInitializer(name, tensor.Scalar(v))
	return name
}

// constVec creates a rank-1 constant initializer.
func (b *builder) constVec(prefix string, vals ...float32) string {
	name := b.fresh(prefix)
	b.g.AddInitializer(name, tensor.FromSlice(vals))
	return name
}

// node appends an operator and returns its first output value name.
func (b *builder) node(op string, inputs []string, attrs ops.Attrs) string {
	out := b.fresh("t")
	b.g.AddNode(b.fresh(op), op, inputs, []string{out}, attrs)
	return out
}

// conv adds Conv(+bias) and returns the output val with updated shape.
func (b *builder) conv(x val, outC, kh, kw, stride, pad int) val {
	inC := x.shape[1]
	w := b.param("w", outC, inC, kh, kw)
	bias := b.param("b", outC)
	out := b.node("Conv", []string{x.name, w, bias}, ops.Attrs{
		"kernel_shape": []int{kh, kw},
		"strides":      []int{stride, stride},
		"pads":         []int{pad, pad, pad, pad},
	})
	oh := (x.shape[2]+2*pad-kh)/stride + 1
	ow := (x.shape[3]+2*pad-kw)/stride + 1
	return val{out, tensor.Shape{x.shape[0], outC, oh, ow}}
}

// convA adds an asymmetric Conv (kh x kw kernel, per-axis padding) + Relu,
// the factorized 1x7/7x1 pattern of Inception V3/V4.
func (b *builder) convA(x val, outC, kh, kw, padH, padW int) val {
	inC := x.shape[1]
	w := b.param("w", outC, inC, kh, kw)
	bias := b.param("b", outC)
	out := b.node("Conv", []string{x.name, w, bias}, ops.Attrs{
		"kernel_shape": []int{kh, kw},
		"strides":      []int{1, 1},
		"pads":         []int{padH, padW, padH, padW},
	})
	oh := x.shape[2] + 2*padH - kh + 1
	ow := x.shape[3] + 2*padW - kw + 1
	return b.relu(val{out, tensor.Shape{x.shape[0], outC, oh, ow}})
}

// depthwise adds a grouped Conv with groups == channels.
func (b *builder) depthwise(x val, kh, kw, stride, pad int) val {
	c := x.shape[1]
	w := b.param("wdw", c, 1, kh, kw)
	out := b.node("Conv", []string{x.name, w}, ops.Attrs{
		"kernel_shape": []int{kh, kw},
		"strides":      []int{stride, stride},
		"pads":         []int{pad, pad, pad, pad},
		"group":        c,
	})
	oh := (x.shape[2]+2*pad-kh)/stride + 1
	ow := (x.shape[3]+2*pad-kw)/stride + 1
	return val{out, tensor.Shape{x.shape[0], c, oh, ow}}
}

// bn adds inference BatchNormalization.
func (b *builder) bn(x val) val {
	c := x.shape[1]
	scale := b.param("bn_s", c)
	bias := b.param("bn_b", c)
	mean := b.fresh("bn_m")
	b.g.AddInitializer(mean, tensor.Zeros(c))
	variance := b.fresh("bn_v")
	b.g.AddInitializer(variance, tensor.Full(1, c))
	out := b.node("BatchNormalization", []string{x.name, scale, bias, mean, variance}, nil)
	return val{out, x.shape}
}

// relu adds a Relu.
func (b *builder) relu(x val) val {
	return val{b.node("Relu", []string{x.name}, nil), x.shape}
}

// convRelu is the ubiquitous Conv→Relu pair.
func (b *builder) convRelu(x val, outC, k, stride, pad int) val {
	return b.relu(b.conv(x, outC, k, k, stride, pad))
}

// convBNRelu is the Conv→BatchNorm→Relu triple used by modern backbones.
func (b *builder) convBNRelu(x val, outC, k, stride, pad int) val {
	return b.relu(b.bn(b.conv(x, outC, k, k, stride, pad)))
}

// maxPool adds MaxPool.
func (b *builder) maxPool(x val, k, stride, pad int) val {
	out := b.node("MaxPool", []string{x.name}, ops.Attrs{
		"kernel_shape": []int{k, k},
		"strides":      []int{stride, stride},
		"pads":         []int{pad, pad, pad, pad},
	})
	oh := (x.shape[2]+2*pad-k)/stride + 1
	ow := (x.shape[3]+2*pad-k)/stride + 1
	return val{out, tensor.Shape{x.shape[0], x.shape[1], oh, ow}}
}

// avgPool adds AveragePool.
func (b *builder) avgPool(x val, k, stride, pad int) val {
	out := b.node("AveragePool", []string{x.name}, ops.Attrs{
		"kernel_shape": []int{k, k},
		"strides":      []int{stride, stride},
		"pads":         []int{pad, pad, pad, pad},
	})
	oh := (x.shape[2]+2*pad-k)/stride + 1
	ow := (x.shape[3]+2*pad-k)/stride + 1
	return val{out, tensor.Shape{x.shape[0], x.shape[1], oh, ow}}
}

// globalAvgPool reduces spatial dims to 1x1.
func (b *builder) globalAvgPool(x val) val {
	out := b.node("GlobalAveragePool", []string{x.name}, nil)
	return val{out, tensor.Shape{x.shape[0], x.shape[1], 1, 1}}
}

// concat joins along the channel axis.
func (b *builder) concat(xs ...val) val {
	names := make([]string, len(xs))
	shapes := make([]tensor.Shape, len(xs))
	for i, x := range xs {
		names[i] = x.name
		shapes[i] = x.shape
	}
	out := b.node("Concat", names, ops.Attrs{"axis": 1})
	sh, err := tensor.Concat(1, shapes...)
	if err != nil {
		panic(fmt.Sprintf("models: bad concat in %s: %v", b.g.Name, err))
	}
	return val{out, sh}
}

// concatAxis joins along an arbitrary axis.
func (b *builder) concatAxis(axis int, xs ...val) val {
	names := make([]string, len(xs))
	shapes := make([]tensor.Shape, len(xs))
	for i, x := range xs {
		names[i] = x.name
		shapes[i] = x.shape
	}
	out := b.node("Concat", names, ops.Attrs{"axis": axis})
	sh, err := tensor.Concat(axis, shapes...)
	if err != nil {
		panic(fmt.Sprintf("models: bad concat in %s: %v", b.g.Name, err))
	}
	return val{out, sh}
}

// add joins two same-shape activations.
func (b *builder) add(x, y val) val {
	return val{b.node("Add", []string{x.name, y.name}, nil), x.shape}
}

// resize upsamples spatially by 2x (nearest).
func (b *builder) resize2x(x val) val {
	out := b.node("Resize", []string{x.name}, ops.Attrs{"scale_h": 2, "scale_w": 2})
	return val{out, tensor.Shape{x.shape[0], x.shape[1], x.shape[2] * 2, x.shape[3] * 2}}
}

// sigmoid adds a Sigmoid.
func (b *builder) sigmoid(x val) val {
	return val{b.node("Sigmoid", []string{x.name}, nil), x.shape}
}

// leakyRelu adds a LeakyRelu.
func (b *builder) leakyRelu(x val) val {
	return val{b.node("LeakyRelu", []string{x.name}, ops.Attrs{"alpha": 0.1}), x.shape}
}

// flatten collapses everything after the batch dimension.
func (b *builder) flatten(x val) val {
	out := b.node("Flatten", []string{x.name}, nil)
	return val{out, tensor.Shape{x.shape[0], x.shape.Numel() / x.shape[0]}}
}

// flattenFC adds Flatten→Gemm, the standard classifier head.
func (b *builder) flattenFC(x val, classes int) val {
	flat := b.node("Flatten", []string{x.name}, nil)
	features := x.shape.Numel() / x.shape[0]
	w := b.param("fc_w", features, classes)
	bias := b.param("fc_b", classes)
	out := b.node("Gemm", []string{flat, w, bias}, nil)
	return val{out, tensor.Shape{x.shape[0], classes}}
}

// input declares the graph input.
func (b *builder) input(name string, dims ...int) val {
	sh := tensor.NewShape(dims...)
	b.g.Inputs = append(b.g.Inputs, graph.ValueInfo{Name: name, Shape: sh})
	return val{name, sh}
}

// output declares a graph output.
func (b *builder) output(x val) {
	b.g.Outputs = append(b.g.Outputs, graph.ValueInfo{Name: x.name, Shape: x.shape})
}

// finish validates and returns the built graph.
func (b *builder) finish() *graph.Graph {
	b.g.Reindex()
	if err := b.g.Validate(); err != nil {
		panic(fmt.Sprintf("models: built invalid graph %s: %v", b.g.Name, err))
	}
	return b.g
}

// reshapeConst appends a Reshape whose target shape arrives through a chain
// of `links` constant arithmetic nodes rooted at a Constant, reproducing the
// shape-computation subgraphs ONNX exporters leave in Yolo/BERT/NASNet
// graphs (the paper prunes these with constant propagation + DCE via
// onnxruntime). With links == 0 the shape feeds the Reshape directly.
func (b *builder) reshapeConst(x val, dims []int, links int) val {
	vals := make([]float32, len(dims))
	for i, d := range dims {
		vals[i] = float32(d)
	}
	cur := b.node("Constant", nil, ops.Attrs{"value": vals, "shape": []int{len(vals)}})
	one := b.constVec("c_one", 1)
	zero := b.constVec("c_zero", 0)
	for i := 0; i < links; i++ {
		if i%2 == 0 {
			cur = b.node("Mul", []string{cur, one}, nil)
		} else {
			cur = b.node("Add", []string{cur, zero}, nil)
		}
	}
	out := b.node("Reshape", []string{x.name, cur}, nil)
	sh := tensor.NewShape(dims...)
	return val{out, sh}
}

// constantChain is an identity reshape through a constant chain: pure DCE
// fodder that never changes results when folded away.
func (b *builder) constantChain(x val, links int) val {
	return b.reshapeConst(x, x.shape, links)
}

// transpose adds a Transpose with the given permutation.
func (b *builder) transpose(x val, perm ...int) val {
	out := b.node("Transpose", []string{x.name}, ops.Attrs{"perm": append([]int(nil), perm...)})
	sh := make(tensor.Shape, len(perm))
	for i, p := range perm {
		sh[i] = x.shape[p]
	}
	return val{out, sh}
}

// geluChain appends the erf-based GELU decomposition ONNX exporters emit:
// 0.5 * x * (1 + erf(x / sqrt(2))).
func (b *builder) gelu(x val) val {
	sqrt2 := b.constScalar("c_sqrt2", float32(math.Sqrt2))
	one := b.constScalar("c_1", 1)
	half := b.constScalar("c_half", 0.5)
	d := b.node("Div", []string{x.name, sqrt2}, nil)
	e := b.node("Erf", []string{d}, nil)
	a := b.node("Add", []string{e, one}, nil)
	m := b.node("Mul", []string{x.name, a}, nil)
	out := b.node("Mul", []string{m, half}, nil)
	return val{out, x.shape}
}
