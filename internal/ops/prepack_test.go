package ops

import (
	"testing"

	"repro/internal/tensor"
)

// TestPrepackedMatMulMatchesRegistry: the prepacked execution path must be
// bit-identical to the registry kernel (same packed layout, same compute
// order — prepacking only moves the packing to compile time).
func TestPrepackedMatMulMatchesRegistry(t *testing.T) {
	r := tensor.NewRNG(51)
	a := r.RandTensor(9, 33)
	b := r.RandTensor(33, 21)
	pp := PrepackWeights("MatMul", nil, []*tensor.Tensor{nil, b})
	if pp == nil || pp.B == nil {
		t.Fatal("MatMul constant B not prepacked")
	}
	if pp.Bytes() <= 0 {
		t.Fatal("prepacked bytes not reported")
	}
	want, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPrepacked("MatMul", []*tensor.Tensor{a, b}, nil, nil, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want[0]) {
		t.Errorf("prepacked MatMul diverges: max diff %v", got[0].MaxAbsDiff(want[0]))
	}
}

func TestPrepackedGemmMatchesRegistry(t *testing.T) {
	r := tensor.NewRNG(52)
	a := r.RandTensor(7, 19)
	b := r.RandTensor(23, 19) // transB
	c := r.RandTensor(23)
	attrs := Attrs{"transB": 1, "alpha": 0.5, "beta": 1.5}
	pp := PrepackWeights("Gemm", attrs, []*tensor.Tensor{nil, b, nil})
	if pp == nil || pp.B == nil {
		t.Fatal("Gemm constant B not prepacked")
	}
	if pp.B.K != 19 || pp.B.N != 23 {
		t.Fatalf("transB prepack got K=%d N=%d", pp.B.K, pp.B.N)
	}
	want, err := Gemm([]*tensor.Tensor{a, b, c}, attrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPrepacked("Gemm", []*tensor.Tensor{a, b, c}, attrs, nil, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want[0]) {
		t.Errorf("prepacked Gemm diverges: max diff %v", got[0].MaxAbsDiff(want[0]))
	}
}

func TestPrepackedConvMatchesRegistry(t *testing.T) {
	r := tensor.NewRNG(53)
	cases := []struct {
		n, c, h, w, m, kh, kw, sh, sw, pad, groups int
	}{
		{1, 4, 11, 9, 6, 3, 3, 1, 1, 1, 1},
		{2, 6, 8, 8, 4, 3, 3, 2, 2, 1, 2},
		{1, 8, 7, 7, 8, 1, 1, 1, 1, 0, 1},
	}
	for _, tc := range cases {
		x := r.RandTensor(tc.n, tc.c, tc.h, tc.w)
		w := r.RandTensor(tc.m, tc.c/tc.groups, tc.kh, tc.kw)
		bias := r.RandTensor(tc.m)
		attrs := Attrs{
			"strides": []int{tc.sh, tc.sw},
			"pads":    []int{tc.pad, tc.pad, tc.pad, tc.pad},
			"group":   tc.groups,
		}
		pp := PrepackWeights("Conv", attrs, []*tensor.Tensor{nil, w, nil})
		if pp == nil || len(pp.A) != tc.groups {
			t.Fatalf("%+v: conv filters not prepacked per group", tc)
		}
		in := []*tensor.Tensor{x, w, bias}
		want, err := Conv(in, attrs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunPrepacked("Conv", in, attrs, nil, pp)
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Equal(want[0]) {
			t.Errorf("%+v: prepacked Conv diverges: max diff %v", tc, got[0].MaxAbsDiff(want[0]))
		}
	}
}

// TestPrepackSkipsNonGEMMCases: ops without a GEMM-shaped constant operand
// (or where the kernel would take the direct path) must not pack.
func TestPrepackSkipsNonGEMMCases(t *testing.T) {
	r := tensor.NewRNG(54)
	if pp := PrepackWeights("Relu", nil, []*tensor.Tensor{r.RandTensor(4)}); pp != nil {
		t.Error("Relu prepacked")
	}
	if pp := PrepackWeights("MatMul", nil, []*tensor.Tensor{r.RandTensor(3, 3), nil}); pp != nil {
		t.Error("MatMul with non-constant B prepacked")
	}
	// Batched constant B (two distinct matrices) stays call-time.
	if pp := PrepackWeights("MatMul", nil, []*tensor.Tensor{nil, r.RandTensor(2, 3, 4)}); pp != nil {
		t.Error("batched constant B prepacked")
	}
	// Depthwise conv takes the direct path; packing would be wasted.
	dw := r.RandTensor(8, 1, 3, 3)
	if pp := PrepackWeights("Conv", Attrs{"group": 8}, []*tensor.Tensor{nil, dw, nil}); pp != nil {
		t.Error("depthwise conv prepacked")
	}
}

// TestScratchElems sanity-checks the planner's scratch sizing against the
// kernels' actual draw: a conv's estimate must cover the im2col patch
// matrix it allocates.
func TestScratchElems(t *testing.T) {
	r := tensor.NewRNG(55)
	x := r.RandTensor(1, 4, 10, 10)
	w := r.RandTensor(8, 4, 3, 3)
	attrs := Attrs{"pads": []int{1, 1, 1, 1}}
	s := ScratchElems("Conv", attrs, []*tensor.Tensor{x, w})
	colK, colN := 4*3*3, 10*10
	if s < colK*colN {
		t.Errorf("conv scratch estimate %d < im2col size %d", s, colK*colN)
	}
	// The estimate must cover what an arena-backed run actually draws.
	ar := tensor.NewArena()
	if _, err := convK([]*tensor.Tensor{x, w}, attrs, ar); err != nil {
		t.Fatal(err)
	}
	if held := ar.Stats().Snapshot().HeldBytes; held > 4*2*int64(s) {
		// Held buffers are class-rounded, so allow 2x headroom.
		t.Errorf("conv drew %d held bytes, estimate %d elems (%d bytes)", held, s, 4*s)
	}
	if s := ScratchElems("Relu", nil, []*tensor.Tensor{x}); s != 0 {
		t.Errorf("Relu scratch = %d, want 0", s)
	}
	if s := ScratchElems("MatMul", nil, []*tensor.Tensor{r.RandTensor(5, 6), r.RandTensor(6, 7)}); s <= 0 {
		t.Error("MatMul scratch estimate is zero")
	}
}
