package ops

import (
	"testing"

	"repro/internal/tensor"
)

// mergeAttrs overlays the epilogue entries onto a node's attrs, as the
// fusion pass does.
func mergeAttrs(base, epi Attrs) Attrs {
	out := base.Clone()
	if out == nil {
		out = Attrs{}
	}
	for k, v := range epi {
		out[k] = v
	}
	return out
}

// TestConvEpilogueMatchesSeparateActivation checks Conv+epi == Conv→act on
// both the im2col+GEMM lowering and the direct (depthwise) loop.
func TestConvEpilogueMatchesSeparateActivation(t *testing.T) {
	r := tensor.NewRNG(41)
	cases := []struct {
		name  string
		x, w  *tensor.Tensor
		attrs Attrs
	}{
		{"gemm", r.RandTensor(2, 4, 9, 9), r.RandTensor(8, 4, 3, 3),
			Attrs{"pads": []int{1, 1, 1, 1}}},
		{"depthwise", r.RandTensor(1, 6, 8, 8), r.RandTensor(6, 1, 3, 3),
			Attrs{"pads": []int{1, 1, 1, 1}, "group": 6}},
	}
	acts := []struct {
		op    string
		attrs Attrs
	}{
		{"Relu", nil},
		{"LeakyRelu", Attrs{"alpha": 0.15}},
		{"Clip", Attrs{"min": -0.2, "max": 0.2}},
	}
	for _, c := range cases {
		bias := r.RandTensor(c.w.Shape()[0])
		for _, act := range acts {
			plain, err := Conv([]*tensor.Tensor{c.x, c.w, bias}, c.attrs)
			if err != nil {
				t.Fatal(err)
			}
			k, _ := Lookup(act.op)
			want, err := k(plain, act.attrs)
			if err != nil {
				t.Fatal(err)
			}
			fusedAttrs := mergeAttrs(c.attrs, EpilogueAttrs(act.op, act.attrs))
			got, err := Conv([]*tensor.Tensor{c.x, c.w, bias}, fusedAttrs)
			if err != nil {
				t.Fatal(err)
			}
			if !got[0].AllClose(want[0], 1e-5, 1e-6) {
				t.Errorf("%s conv + %s epilogue diverges: max diff %v",
					c.name, act.op, got[0].MaxAbsDiff(want[0]))
			}
		}
	}
}

// TestGemmEpilogueAfterBias pins the ordering contract: the epilogue
// applies after the beta*C term, exactly once.
func TestGemmEpilogueAfterBias(t *testing.T) {
	r := tensor.NewRNG(6)
	a := r.RandTensor(5, 7)
	b := r.RandTensor(7, 9)
	bias := r.RandTensor(9)
	base := Attrs{"beta": 1.0}

	plain, err := Gemm([]*tensor.Tensor{a, b, bias}, base)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := Lookup("Clip")
	clipAttrs := Attrs{"min": -0.3, "max": 0.3}
	want, err := k(plain, clipAttrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Gemm([]*tensor.Tensor{a, b, bias}, mergeAttrs(base, EpilogueAttrs("Clip", clipAttrs)))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want[0], 1e-5, 1e-6) {
		t.Fatal("Gemm epilogue did not apply after the bias term")
	}

	// Without a bias term the epilogue rides the GEMM core writeback.
	plain2, err := Gemm([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := k(plain2, clipAttrs)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Gemm([]*tensor.Tensor{a, b}, mergeAttrs(nil, EpilogueAttrs("Clip", clipAttrs)))
	if err != nil {
		t.Fatal(err)
	}
	if !got2[0].AllClose(want2[0], 1e-5, 1e-6) {
		t.Fatal("bias-less Gemm epilogue diverges")
	}
}

// TestMatMulEpilogueBatched checks the epilogue applies per batch slice in
// the batched MatMul paths.
func TestMatMulEpilogueBatched(t *testing.T) {
	r := tensor.NewRNG(77)
	a := r.RandTensor(3, 4, 5)
	b := r.RandTensor(3, 5, 6)
	plain, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := Lookup("Relu")
	want, err := k(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMul([]*tensor.Tensor{a, b}, mergeAttrs(nil, EpilogueAttrs("Relu", nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want[0], 1e-5, 1e-6) {
		t.Fatal("batched MatMul epilogue diverges")
	}
}

// TestEpilogueDegenerateK: a zero-depth product contributes nothing, but a
// fused activation must still apply to the zero-filled output exactly as
// the unfused graph would (Clip(min=1) maps 0 → 1).
func TestEpilogueDegenerateK(t *testing.T) {
	a := tensor.Zeros(2, 0)
	b := tensor.Zeros(0, 3)
	clipAttrs := Attrs{"min": 1.0, "max": 2.0}
	plain, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := Lookup("Clip")
	want, err := k(plain, clipAttrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMul([]*tensor.Tensor{a, b}, mergeAttrs(nil, EpilogueAttrs("Clip", clipAttrs)))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want[0]) {
		t.Fatalf("degenerate-K epilogue dropped: got %v, want %v", got[0], want[0])
	}
}

// TestEpilogueAttrsUnknownOp: non-writeback activations must not encode.
func TestEpilogueAttrsUnknownOp(t *testing.T) {
	if EpilogueAttrs("Sigmoid", nil) != nil {
		t.Error("Sigmoid must not ride a GEMM writeback (not accumulator-only cheap)")
	}
	if EpilogueAttrs("Softmax", nil) != nil {
		t.Error("Softmax must not ride a GEMM writeback")
	}
}
