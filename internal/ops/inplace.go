package ops

import (
	"math"

	"repro/internal/tensor"
)

// In-place elementwise execution: when the memory planner proves a node's
// first input is dead the moment the node completes (single static use,
// single occurrence — see memplan.Plan.CanWriteInPlace), the executor may
// run these ops writing into the input's buffer instead of allocating an
// output, cutting one full tensor of arena traffic per node. All the loops
// used here are index-aligned (element i is read before element i is
// written), so aliasing dst == src is exact.

// inPlaceOps lists the op types RunInPlace implements. Only single-output
// elementwise ops whose output shape always equals their first input's
// shape qualify; FusedElementwise handles its own shape-changing fallback
// by transferring the buffer back to the allocator.
var inPlaceOps = map[string]bool{
	"Relu":             true,
	"LeakyRelu":        true,
	"Sigmoid":          true,
	"Tanh":             true,
	"Exp":              true,
	"Sqrt":             true,
	"Erf":              true,
	"Neg":              true,
	"Clip":             true,
	"Identity":         true,
	"FusedElementwise": true,
}

// CanRunInPlace reports whether RunInPlace implements the op type. The
// executor combines this with the memory plan's liveness proof; neither
// alone is sufficient.
func CanRunInPlace(opType string) bool { return inPlaceOps[opType] }

// RunInPlace executes an in-place-capable node, consuming in[0]'s storage:
// the returned tensor either shares that storage or (FusedElementwise
// shape-changing fallback) the storage has already been returned to a. The
// caller must hold the only reference to in[0]'s value and must not
// release it afterwards — ownership transfers to the returned output.
func RunInPlace(opType string, in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if opType == "FusedElementwise" {
		if err := need(opType, in, 1, -1); err != nil {
			return nil, err
		}
		stages, err := parseFused(attrs, len(in))
		if err != nil {
			return nil, err
		}
		out, err := runFused(in, stages, a, true)
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{out}, nil
	}
	if err := need(opType, in, 1, 1); err != nil {
		return nil, err
	}
	d := in[0].Data()
	switch opType {
	case "Relu":
		parallelUnary(reluLoop, d, d)
	case "LeakyRelu":
		alpha := float32(attrs.Float("alpha", 0.01))
		tensor.ParallelRange(len(d), 4096, func(lo, hi int) {
			leakyReluLoop(d[lo:hi], d[lo:hi], alpha)
		})
	case "Sigmoid":
		parallelUnary(sigmoidLoop, d, d)
	case "Tanh":
		parallelUnary(tanhLoop, d, d)
	case "Exp":
		parallelUnary(expLoop, d, d)
	case "Sqrt":
		parallelUnary(sqrtLoop, d, d)
	case "Erf":
		parallelUnary(erfLoop, d, d)
	case "Neg":
		parallelUnary(negLoop, d, d)
	case "Clip":
		lo := float32(attrs.Float("min", -math.MaxFloat32))
		hi := float32(attrs.Float("max", math.MaxFloat32))
		tensor.ParallelRange(len(d), 4096, func(l, h int) {
			clipLoop(d[l:h], d[l:h], lo, hi)
		})
	case "Identity":
		// The single-use proof makes the zero-copy pass-through safe.
	default:
		return nil, argErr(opType, "no in-place execution path")
	}
	return []*tensor.Tensor{tensor.New(in[0].Shape(), d)}, nil
}
