package ops

import (
	"math"

	"repro/internal/tensor"
)

// The elementwise kernels in this file are the memory-bound glue between
// the GEMM-shaped heavy ops. They run as specialized slice loops — no
// per-element function pointer — and the same loops back the fused-chain
// kernel (fused.go) and the executor's in-place path (inplace.go), so
// every way an activation can execute computes bit-identical values.

// uninitLike allocates an output tensor with t's shape whose contents the
// caller fully overwrites, skipping the zero fill a recycled arena buffer
// would otherwise pay.
func uninitLike(a tensor.Allocator, t *tensor.Tensor) *tensor.Tensor {
	return tensor.New(t.Shape(), tensor.AllocUninit(a, t.Numel()))
}

// Specialized unary slice loops. dst and src must be index-aligned and may
// alias (dst == src is the in-place path).

func reluLoop(dst, src []float32) {
	// max keeps the loop branchless: random-sign activations mispredict a
	// comparison ~50% of the time, which dominates a memory-bound sweep.
	for i, v := range src {
		dst[i] = max(v, 0)
	}
}

func leakyReluLoop(dst, src []float32, alpha float32) {
	for i, v := range src {
		if v < 0 {
			v = alpha * v
		}
		dst[i] = v
	}
}

func clipLoop(dst, src []float32, lo, hi float32) {
	for i, v := range src {
		dst[i] = min(max(v, lo), hi)
	}
}

func sigmoidLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

func tanhLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(math.Tanh(float64(v)))
	}
}

func expLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(math.Exp(float64(v)))
	}
}

func sqrtLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(math.Sqrt(float64(v)))
	}
}

func erfLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = float32(math.Erf(float64(v)))
	}
}

func negLoop(dst, src []float32) {
	for i, v := range src {
		dst[i] = -v
	}
}

// Specialized binary slice loops; dst may alias a or b.

func addLoop(dst, a, b []float32) {
	for i, v := range a {
		dst[i] = v + b[i]
	}
}

func subLoop(dst, a, b []float32) {
	for i, v := range a {
		dst[i] = v - b[i]
	}
}

func mulLoop(dst, a, b []float32) {
	for i, v := range a {
		dst[i] = v * b[i]
	}
}

func divLoop(dst, a, b []float32) {
	for i, v := range a {
		dst[i] = v / b[i]
	}
}

// Scalar-broadcast loops: one operand is a single value hoisted out of the
// loop, so the sweep touches exactly one tensor.

func addScalarLoop(dst, a []float32, s float32) {
	for i, v := range a {
		dst[i] = v + s
	}
}

func subScalarLoop(dst, a []float32, s float32) {
	for i, v := range a {
		dst[i] = v - s
	}
}

func rsubScalarLoop(dst []float32, s float32, b []float32) {
	for i, v := range b {
		dst[i] = s - v
	}
}

func mulScalarLoop(dst, a []float32, s float32) {
	for i, v := range a {
		dst[i] = v * s
	}
}

func divScalarLoop(dst, a []float32, s float32) {
	for i, v := range a {
		dst[i] = v / s
	}
}

func rdivScalarLoop(dst []float32, s float32, b []float32) {
	for i, v := range b {
		dst[i] = s / v
	}
}

// parallelUnary sweeps loop over index-aligned dst/src chunks across the
// intra-op workers.
func parallelUnary(loop func(dst, src []float32), dst, src []float32) {
	tensor.ParallelRange(len(src), 4096, func(lo, hi int) {
		loop(dst[lo:hi], src[lo:hi])
	})
}

// unaryLoop builds an AllocKernel around a specialized slice loop.
func unaryLoop(op string, loop func(dst, src []float32)) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 1, 1); err != nil {
			return nil, err
		}
		out := uninitLike(a, in[0])
		parallelUnary(loop, out.Data(), in[0].Data())
		return []*tensor.Tensor{out}, nil
	}
}

// unary builds an AllocKernel applying f element-wise through a function
// pointer. It is retained as the reference the devirtualized loops are
// benchmarked against (BenchmarkReluIndirect) and as the builder for ops
// whose per-element cost dwarfs the call (Pow).
func unary(op string, f func(float32) float32) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 1, 1); err != nil {
			return nil, err
		}
		x := in[0]
		out := tensor.ZerosLikeIn(a, x)
		xd, od := x.Data(), out.Data()
		tensor.ParallelRange(len(xd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = f(xd[i])
			}
		})
		return []*tensor.Tensor{out}, nil
	}
}

// Relu is max(x, 0).
var Relu = onHeap(reluK)

var reluK = unaryLoop("Relu", reluLoop)

// Sigmoid is 1/(1+exp(-x)).
var Sigmoid = onHeap(sigmoidK)

var sigmoidK = unaryLoop("Sigmoid", sigmoidLoop)

// Tanh is the hyperbolic tangent.
var Tanh = onHeap(tanhK)

var tanhK = unaryLoop("Tanh", tanhLoop)

// Exp is e^x.
var Exp = onHeap(expK)

var expK = unaryLoop("Exp", expLoop)

// Sqrt is the square root (NaN for negative inputs, as ONNX).
var Sqrt = onHeap(sqrtK)

var sqrtK = unaryLoop("Sqrt", sqrtLoop)

// Erf is the Gauss error function, the primitive BERT's GELU decomposes to.
var Erf = onHeap(erfK)

var erfK = unaryLoop("Erf", erfLoop)

// Neg is -x.
var Neg = onHeap(negK)

var negK = unaryLoop("Neg", negLoop)

// Identity passes its single input through unchanged (copied, so downstream
// mutation hazards cannot arise).
var Identity = onHeap(identityK)

func identityK(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Identity", in, 1, 1); err != nil {
		return nil, err
	}
	return []*tensor.Tensor{in[0].CloneIn(a)}, nil
}

// LeakyRelu is x for x>=0 else alpha*x (attribute alpha, default 0.01).
var LeakyRelu = onHeap(leakyReluK)

func leakyReluK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("LeakyRelu", in, 1, 1); err != nil {
		return nil, err
	}
	alpha := float32(attrs.Float("alpha", 0.01))
	out := uninitLike(a, in[0])
	od, xd := out.Data(), in[0].Data()
	tensor.ParallelRange(len(xd), 4096, func(lo, hi int) {
		leakyReluLoop(od[lo:hi], xd[lo:hi], alpha)
	})
	return []*tensor.Tensor{out}, nil
}

// Clip bounds x to [min, max] given as attributes (ONNX opset-6 style).
var Clip = onHeap(clipK)

func clipK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Clip", in, 1, 1); err != nil {
		return nil, err
	}
	lo := float32(attrs.Float("min", -math.MaxFloat32))
	hi := float32(attrs.Float("max", math.MaxFloat32))
	out := uninitLike(a, in[0])
	od, xd := out.Data(), in[0].Data()
	tensor.ParallelRange(len(xd), 4096, func(l, h int) {
		clipLoop(od[l:h], xd[l:h], lo, hi)
	})
	return []*tensor.Tensor{out}, nil
}

// binaryLoops bundles the specialized sweeps of one binary operator: the
// same-layout vector form, both scalar-broadcast forms, and the generic
// per-element function for the stride-walking broadcast fallback.
type binaryLoops struct {
	vec func(dst, a, b []float32)
	vs  func(dst, a []float32, s float32) // b is a single value
	sv  func(dst []float32, s float32, b []float32)
	f   func(a, b float32) float32
}

var addLoops = binaryLoops{addLoop, addScalarLoop,
	func(dst []float32, s float32, b []float32) { addScalarLoop(dst, b, s) },
	func(a, b float32) float32 { return a + b }}

var subLoops = binaryLoops{subLoop, subScalarLoop, rsubScalarLoop,
	func(a, b float32) float32 { return a - b }}

var mulLoops = binaryLoops{mulLoop, mulScalarLoop,
	func(dst []float32, s float32, b []float32) { mulScalarLoop(dst, b, s) },
	func(a, b float32) float32 { return a * b }}

var divLoops = binaryLoops{divLoop, divScalarLoop, rdivScalarLoop,
	func(a, b float32) float32 { return a / b }}

// binaryFast builds an AllocKernel with NumPy broadcasting that picks the
// cheapest sweep available: identical shapes and broadcasts that do not
// replicate any element (mixed ranks differing only in leading 1-dims) run
// the flat vector loop; scalar operands run a hoisted-scalar loop; only
// genuine element replication pays the per-element stride index math.
func binaryFast(op string, loops binaryLoops) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 2, 2); err != nil {
			return nil, err
		}
		a, b := in[0], in[1]
		as, bs := a.Shape(), b.Shape()
		if as.Equal(bs) { // identical shapes: one flat sweep
			out := uninitLike(alc, a)
			ad, bd, od := a.Data(), b.Data(), out.Data()
			tensor.ParallelRange(len(od), 4096, func(lo, hi int) {
				loops.vec(od[lo:hi], ad[lo:hi], bd[lo:hi])
			})
			return []*tensor.Tensor{out}, nil
		}
		os, err := tensor.Broadcast(as, bs)
		if err != nil {
			return nil, argErr(op, "%v", err)
		}
		n := os.Numel()
		ad, bd := a.Data(), b.Data()
		switch {
		case len(bd) == 1 && len(ad) == n:
			out := tensor.New(os, tensor.AllocUninit(alc, n))
			od, s := out.Data(), bd[0]
			tensor.ParallelRange(n, 4096, func(lo, hi int) {
				loops.vs(od[lo:hi], ad[lo:hi], s)
			})
			return []*tensor.Tensor{out}, nil
		case len(ad) == 1 && len(bd) == n:
			out := tensor.New(os, tensor.AllocUninit(alc, n))
			od, s := out.Data(), ad[0]
			tensor.ParallelRange(n, 4096, func(lo, hi int) {
				loops.sv(od[lo:hi], s, bd[lo:hi])
			})
			return []*tensor.Tensor{out}, nil
		case len(ad) == n && len(bd) == n:
			// Ranks differ only by leading 1-extents: row-major layouts
			// coincide, so the flat vector loop is exact.
			out := tensor.New(os, tensor.AllocUninit(alc, n))
			od := out.Data()
			tensor.ParallelRange(n, 4096, func(lo, hi int) {
				loops.vec(od[lo:hi], ad[lo:hi], bd[lo:hi])
			})
			return []*tensor.Tensor{out}, nil
		}
		return broadcastStrided(op, loops.f, a, b, os, alc)
	}
}

// broadcastStrided is the general broadcasting path: per-element stride
// index math, reached only when the broadcast genuinely replicates data.
func broadcastStrided(op string, f func(a, b float32) float32, a, b *tensor.Tensor, os tensor.Shape, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	out := tensor.ZerosIn(alc, os...)
	od := out.Data()
	oStrides := os.Strides()
	aIdx := broadcastStrides(a.Shape(), os)
	bIdx := broadcastStrides(b.Shape(), os)
	ad, bd := a.Data(), b.Data()
	n := len(od)
	tensor.ParallelRange(n, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai, bi := 0, 0
			rem := i
			for d := 0; d < len(os); d++ {
				pos := rem / oStrides[d]
				rem %= oStrides[d]
				ai += pos * aIdx[d]
				bi += pos * bIdx[d]
			}
			od[i] = f(ad[ai], bd[bi])
		}
	})
	return []*tensor.Tensor{out}, nil
}

// binary builds an AllocKernel applying f element-wise with NumPy
// broadcasting through a function pointer — the reference form retained
// for Pow and the devirtualization micro-benchmarks.
func binary(op string, f func(a, b float32) float32) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 2, 2); err != nil {
			return nil, err
		}
		a, b := in[0], in[1]
		as, bs := a.Shape(), b.Shape()
		if as.Equal(bs) { // fast path
			out := tensor.ZerosLikeIn(alc, a)
			ad, bd, od := a.Data(), b.Data(), out.Data()
			tensor.ParallelRange(len(od), 4096, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					od[i] = f(ad[i], bd[i])
				}
			})
			return []*tensor.Tensor{out}, nil
		}
		os, err := tensor.Broadcast(as, bs)
		if err != nil {
			return nil, argErr(op, "%v", err)
		}
		return broadcastStrided(op, f, a, b, os, alc)
	}
}

// broadcastStrides returns per-output-dimension strides into a tensor of
// shape s being broadcast to shape out: 0 stride where s has extent 1.
func broadcastStrides(s, out tensor.Shape) []int {
	strides := make([]int, len(out))
	sStrides := s.Strides()
	offset := len(out) - len(s)
	for d := range out {
		if d < offset {
			strides[d] = 0
			continue
		}
		sd := d - offset
		if s[sd] == 1 && out[d] != 1 {
			strides[d] = 0
		} else {
			strides[d] = sStrides[sd]
		}
	}
	return strides
}

// Add is element-wise a+b with broadcasting.
var Add = onHeap(addK)

var addK = binaryFast("Add", addLoops)

// Sub is element-wise a-b with broadcasting.
var Sub = onHeap(subK)

var subK = binaryFast("Sub", subLoops)

// Mul is element-wise a*b with broadcasting.
var Mul = onHeap(mulK)

var mulK = binaryFast("Mul", mulLoops)

// Div is element-wise a/b with broadcasting.
var Div = onHeap(divK)

var divK = binaryFast("Div", divLoops)

// Pow is element-wise a^b with broadcasting. The math.Pow call dominates,
// so it keeps the function-pointer builder.
var Pow = onHeap(powK)

var powK = binary("Pow", func(a, b float32) float32 {
	return float32(math.Pow(float64(a), float64(b)))
})

// Softmax normalizes along the given axis (attribute "axis", default -1)
// with the usual max-subtraction for numerical stability.
var Softmax = onHeap(softmaxK)

func softmaxK(in []*tensor.Tensor, attrs Attrs, a2 tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Softmax", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	s := x.Shape()
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += s.Rank()
	}
	if axis < 0 || axis >= s.Rank() {
		return nil, argErr("Softmax", "axis out of range for %v", s)
	}
	inner := 1
	for d := axis + 1; d < s.Rank(); d++ {
		inner *= s[d]
	}
	axisN := s[axis]
	outer := x.Numel() / maxInt(inner*axisN, 1)
	out := tensor.ZerosLikeIn(a2, x)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(outer*inner, 16, func(oi int) {
		o := oi / inner
		i := oi % inner
		base := o*axisN*inner + i
		maxV := float32(negInf)
		for a := 0; a < axisN; a++ {
			if v := xd[base+a*inner]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for a := 0; a < axisN; a++ {
			e := math.Exp(float64(xd[base+a*inner] - maxV))
			od[base+a*inner] = float32(e)
			sum += e
		}
		if sum == 0 {
			sum = 1
		}
		inv := float32(1 / sum)
		for a := 0; a < axisN; a++ {
			od[base+a*inner] *= inv
		}
	})
	return []*tensor.Tensor{out}, nil
}
