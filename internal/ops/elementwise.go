package ops

import (
	"math"

	"repro/internal/tensor"
)

// unary builds an AllocKernel applying f element-wise.
func unary(op string, f func(float32) float32) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 1, 1); err != nil {
			return nil, err
		}
		x := in[0]
		out := tensor.ZerosLikeIn(a, x)
		xd, od := x.Data(), out.Data()
		tensor.ParallelRange(len(xd), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = f(xd[i])
			}
		})
		return []*tensor.Tensor{out}, nil
	}
}

// Relu is max(x, 0).
var Relu = onHeap(reluK)

var reluK = unary("Relu", func(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
})

// Sigmoid is 1/(1+exp(-x)).
var Sigmoid = onHeap(sigmoidK)

var sigmoidK = unary("Sigmoid", func(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
})

// Tanh is the hyperbolic tangent.
var Tanh = onHeap(tanhK)

var tanhK = unary("Tanh", func(v float32) float32 {
	return float32(math.Tanh(float64(v)))
})

// Exp is e^x.
var Exp = onHeap(expK)

var expK = unary("Exp", func(v float32) float32 {
	return float32(math.Exp(float64(v)))
})

// Sqrt is the square root (NaN for negative inputs, as ONNX).
var Sqrt = onHeap(sqrtK)

var sqrtK = unary("Sqrt", func(v float32) float32 {
	return float32(math.Sqrt(float64(v)))
})

// Erf is the Gauss error function, the primitive BERT's GELU decomposes to.
var Erf = onHeap(erfK)

var erfK = unary("Erf", func(v float32) float32 {
	return float32(math.Erf(float64(v)))
})

// Neg is -x.
var Neg = onHeap(negK)

var negK = unary("Neg", func(v float32) float32 { return -v })

// Identity passes its single input through unchanged (copied, so downstream
// mutation hazards cannot arise).
var Identity = onHeap(identityK)

func identityK(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Identity", in, 1, 1); err != nil {
		return nil, err
	}
	return []*tensor.Tensor{in[0].CloneIn(a)}, nil
}

// LeakyRelu is x for x>=0 else alpha*x (attribute alpha, default 0.01).
var LeakyRelu = onHeap(leakyReluK)

func leakyReluK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	alpha := float32(attrs.Float("alpha", 0.01))
	return unary("LeakyRelu", func(v float32) float32 {
		if v < 0 {
			return alpha * v
		}
		return v
	})(in, attrs, a)
}

// Clip bounds x to [min, max] given as attributes (ONNX opset-6 style).
var Clip = onHeap(clipK)

func clipK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	lo := float32(attrs.Float("min", -math.MaxFloat32))
	hi := float32(attrs.Float("max", math.MaxFloat32))
	return unary("Clip", func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})(in, attrs, a)
}

// binary builds an AllocKernel applying f element-wise with NumPy
// broadcasting.
func binary(op string, f func(a, b float32) float32) AllocKernel {
	return func(in []*tensor.Tensor, _ Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
		if err := need(op, in, 2, 2); err != nil {
			return nil, err
		}
		a, b := in[0], in[1]
		as, bs := a.Shape(), b.Shape()
		if as.Equal(bs) { // fast path
			out := tensor.ZerosLikeIn(alc, a)
			ad, bd, od := a.Data(), b.Data(), out.Data()
			tensor.ParallelRange(len(od), 4096, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					od[i] = f(ad[i], bd[i])
				}
			})
			return []*tensor.Tensor{out}, nil
		}
		os, err := tensor.Broadcast(as, bs)
		if err != nil {
			return nil, argErr(op, "%v", err)
		}
		out := tensor.ZerosIn(alc, os...)
		od := out.Data()
		oStrides := os.Strides()
		aIdx := broadcastStrides(as, os)
		bIdx := broadcastStrides(bs, os)
		ad, bd := a.Data(), b.Data()
		n := len(od)
		tensor.ParallelRange(n, 1024, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ai, bi := 0, 0
				rem := i
				for d := 0; d < len(os); d++ {
					pos := rem / oStrides[d]
					rem %= oStrides[d]
					ai += pos * aIdx[d]
					bi += pos * bIdx[d]
				}
				od[i] = f(ad[ai], bd[bi])
			}
		})
		return []*tensor.Tensor{out}, nil
	}
}

// broadcastStrides returns per-output-dimension strides into a tensor of
// shape s being broadcast to shape out: 0 stride where s has extent 1.
func broadcastStrides(s, out tensor.Shape) []int {
	strides := make([]int, len(out))
	sStrides := s.Strides()
	offset := len(out) - len(s)
	for d := range out {
		if d < offset {
			strides[d] = 0
			continue
		}
		sd := d - offset
		if s[sd] == 1 && out[d] != 1 {
			strides[d] = 0
		} else {
			strides[d] = sStrides[sd]
		}
	}
	return strides
}

// Add is element-wise a+b with broadcasting.
var Add = onHeap(addK)

var addK = binary("Add", func(a, b float32) float32 { return a + b })

// Sub is element-wise a-b with broadcasting.
var Sub = onHeap(subK)

var subK = binary("Sub", func(a, b float32) float32 { return a - b })

// Mul is element-wise a*b with broadcasting.
var Mul = onHeap(mulK)

var mulK = binary("Mul", func(a, b float32) float32 { return a * b })

// Div is element-wise a/b with broadcasting.
var Div = onHeap(divK)

var divK = binary("Div", func(a, b float32) float32 { return a / b })

// Pow is element-wise a^b with broadcasting.
var Pow = onHeap(powK)

var powK = binary("Pow", func(a, b float32) float32 {
	return float32(math.Pow(float64(a), float64(b)))
})

// Softmax normalizes along the given axis (attribute "axis", default -1)
// with the usual max-subtraction for numerical stability.
var Softmax = onHeap(softmaxK)

func softmaxK(in []*tensor.Tensor, attrs Attrs, a2 tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Softmax", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	s := x.Shape()
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += s.Rank()
	}
	if axis < 0 || axis >= s.Rank() {
		return nil, argErr("Softmax", "axis out of range for %v", s)
	}
	inner := 1
	for d := axis + 1; d < s.Rank(); d++ {
		inner *= s[d]
	}
	axisN := s[axis]
	outer := x.Numel() / maxInt(inner*axisN, 1)
	out := tensor.ZerosLikeIn(a2, x)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(outer*inner, 16, func(oi int) {
		o := oi / inner
		i := oi % inner
		base := o*axisN*inner + i
		maxV := float32(negInf)
		for a := 0; a < axisN; a++ {
			if v := xd[base+a*inner]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for a := 0; a < axisN; a++ {
			e := math.Exp(float64(xd[base+a*inner] - maxV))
			od[base+a*inner] = float32(e)
			sum += e
		}
		if sum == 0 {
			sum = 1
		}
		inv := float32(1 / sum)
		for a := 0; a < axisN; a++ {
			od[base+a*inner] *= inv
		}
	})
	return []*tensor.Tensor{out}, nil
}
