package ops

import (
	"testing"

	"repro/internal/tensor"
)

// refConv is a trivially-correct convolution used to validate the
// parallelized kernel.
func refConv(x, w, b *tensor.Tensor, sh, sw, pt, pl, pb, pr, groups int) *tensor.Tensor {
	xs, ws := x.Shape(), w.Shape()
	n, h, wd := xs[0], xs[2], xs[3]
	m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
	oh := (h+pt+pb-kh)/sh + 1
	ow := (wd+pl+pr-kw)/sw + 1
	out := tensor.Zeros(n, m, oh, ow)
	mPerG := m / groups
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < m; oc++ {
			g := oc / mPerG
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					if b != nil {
						acc = b.Data()[oc]
					}
					for ci := 0; ci < cg; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*sh - pt + ky
								ix := ox*sw - pl + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(bi, g*cg+ci, iy, ix) * w.At(oc, ci, ky, kx)
							}
						}
					}
					out.Set(acc, bi, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvMatchesReference(t *testing.T) {
	r := tensor.NewRNG(11)
	cases := []struct {
		n, c, h, w, m, kh, kw, sh, sw, pad, groups int
	}{
		{1, 3, 8, 8, 4, 3, 3, 1, 1, 1, 1},
		{2, 4, 7, 9, 6, 3, 3, 2, 2, 1, 1},
		{1, 2, 6, 6, 2, 1, 1, 1, 1, 0, 1},
		{1, 6, 5, 5, 6, 3, 3, 1, 1, 1, 3},
		{1, 3, 12, 12, 8, 5, 5, 2, 2, 2, 1},
		{1, 3, 14, 14, 4, 7, 7, 2, 2, 3, 1},
		// im2col lowering edge shapes: odd spatial tails, stride 3, wide
		// output (tile tails in GEMM n), depthwise (direct-path fallback),
		// grouped with odd channel counts, and 1x1 with stride.
		{1, 5, 9, 7, 7, 3, 3, 3, 3, 1, 1},
		{2, 3, 19, 23, 17, 3, 3, 1, 1, 1, 1},
		{1, 8, 6, 6, 8, 3, 3, 1, 1, 1, 8}, // depthwise
		{1, 6, 10, 10, 9, 3, 3, 2, 2, 0, 3},
		{1, 4, 8, 8, 6, 1, 1, 2, 2, 0, 1}, // 1x1 strided: im2col, not alias path
		{1, 4, 8, 8, 6, 1, 1, 1, 1, 0, 1}, // 1x1 stride-1: plane-alias fast path
		{3, 2, 5, 5, 4, 4, 4, 1, 1, 2, 2}, // even kernel, batch > 1
	}
	for _, c := range cases {
		x := r.RandTensor(c.n, c.c, c.h, c.w)
		w := r.RandTensor(c.m, c.c/c.groups, c.kh, c.kw)
		b := r.RandTensor(c.m)
		attrs := Attrs{
			"strides": []int{c.sh, c.sw},
			"pads":    []int{c.pad, c.pad, c.pad, c.pad},
			"group":   c.groups,
		}
		got, err := Conv([]*tensor.Tensor{x, w, b}, attrs)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		want := refConv(x, w, b, c.sh, c.sw, c.pad, c.pad, c.pad, c.pad, c.groups)
		if !got[0].AllClose(want, 1e-4, 1e-5) {
			t.Errorf("%+v: conv mismatch, max diff %v", c, got[0].MaxAbsDiff(want))
		}
	}
}

// TestConvAsymmetricPads covers ONNX-style unequal begin/end padding
// through the im2col path.
func TestConvAsymmetricPads(t *testing.T) {
	r := tensor.NewRNG(13)
	x := r.RandTensor(1, 3, 9, 9)
	w := r.RandTensor(5, 3, 3, 3)
	attrs := Attrs{"pads": []int{2, 0, 1, 3}, "strides": []int{2, 1}}
	got, err := Conv([]*tensor.Tensor{x, w}, attrs)
	if err != nil {
		t.Fatal(err)
	}
	want := refConv(x, w, nil, 2, 1, 2, 0, 1, 3, 1)
	if !got[0].AllClose(want, 1e-4, 1e-5) {
		t.Errorf("asymmetric pads: max diff %v", got[0].MaxAbsDiff(want))
	}
}

func TestConvParallelEqualsSerial(t *testing.T) {
	r := tensor.NewRNG(5)
	x := r.RandTensor(1, 8, 16, 16)
	w := r.RandTensor(16, 8, 3, 3)
	attrs := Attrs{"pads": []int{1, 1, 1, 1}}
	var serial, parallel *tensor.Tensor
	tensor.WithIntraOpThreads(1, func() {
		out, err := Conv([]*tensor.Tensor{x, w}, attrs)
		if err != nil {
			t.Fatal(err)
		}
		serial = out[0]
	})
	tensor.WithIntraOpThreads(8, func() {
		out, err := Conv([]*tensor.Tensor{x, w}, attrs)
		if err != nil {
			t.Fatal(err)
		}
		parallel = out[0]
	})
	if !serial.Equal(parallel) {
		t.Error("intra-op parallel conv differs from serial result")
	}
}

func TestConvErrors(t *testing.T) {
	x := tensor.Zeros(1, 3, 8, 8)
	w := tensor.Zeros(4, 3, 3, 3)
	if _, err := Conv([]*tensor.Tensor{x}, nil); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := Conv([]*tensor.Tensor{tensor.Zeros(3, 8, 8), w}, nil); err == nil {
		t.Error("3-D input accepted")
	}
	bad := tensor.Zeros(4, 2, 3, 3)
	if _, err := Conv([]*tensor.Tensor{x, bad}, nil); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := Conv([]*tensor.Tensor{x, w, tensor.Zeros(5)}, nil); err == nil {
		t.Error("bad bias accepted")
	}
	if _, err := Conv([]*tensor.Tensor{x, tensor.Zeros(4, 3, 9, 9)}, nil); err == nil {
		t.Error("kernel larger than input accepted without padding")
	}
	if _, err := Conv([]*tensor.Tensor{x, tensor.Zeros(5, 3, 3, 3)}, Attrs{"group": 2}); err == nil {
		t.Error("non-divisible groups accepted")
	}
}

func TestMaxPoolBasic(t *testing.T) {
	x := tensor.New(tensor.Shape{1, 1, 4, 4}, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out, err := MaxPool([]*tensor.Tensor{x}, Attrs{"kernel_shape": []int{2, 2}, "strides": []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out[0].Data()[i] != v {
			t.Fatalf("MaxPool = %v, want %v", out[0].Data(), want)
		}
	}
}

func TestMaxPoolPadding(t *testing.T) {
	x := tensor.New(tensor.Shape{1, 1, 2, 2}, []float32{-1, -2, -3, -4})
	out, err := MaxPool([]*tensor.Tensor{x},
		Attrs{"kernel_shape": []int{3, 3}, "strides": []int{1, 1}, "pads": []int{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Padded cells must not contribute 0 to a max over negatives.
	if out[0].At(0, 0, 0, 0) != -1 {
		t.Errorf("padded MaxPool corner = %v, want -1", out[0].At(0, 0, 0, 0))
	}
}

func TestAveragePool(t *testing.T) {
	x := tensor.New(tensor.Shape{1, 1, 2, 2}, []float32{1, 2, 3, 4})
	out, err := AveragePool([]*tensor.Tensor{x}, Attrs{"kernel_shape": []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data()[0] != 2.5 {
		t.Fatalf("AveragePool = %v, want 2.5", out[0].Data()[0])
	}
	// count_include_pad distinguishes the divisor.
	out2, err := AveragePool([]*tensor.Tensor{x},
		Attrs{"kernel_shape": []int{2, 2}, "pads": []int{1, 1, 0, 0}, "strides": []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].Data()[0] != 1 { // only x[0,0]=1 inside window, divisor 1
		t.Fatalf("padded AveragePool = %v, want 1", out2[0].Data()[0])
	}
}

func TestGlobalAveragePool(t *testing.T) {
	x := tensor.New(tensor.Shape{1, 2, 2, 2}, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	out, err := GlobalAveragePool([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{1, 2, 1, 1}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].Data()[0] != 2.5 || out[0].Data()[1] != 25 {
		t.Fatalf("values = %v", out[0].Data())
	}
}

func TestPoolErrors(t *testing.T) {
	x := tensor.Zeros(1, 1, 4, 4)
	if _, err := MaxPool([]*tensor.Tensor{x}, Attrs{}); err == nil {
		t.Error("missing kernel_shape accepted")
	}
	if _, err := MaxPool([]*tensor.Tensor{tensor.Zeros(4, 4)}, Attrs{"kernel_shape": []int{2, 2}}); err == nil {
		t.Error("2-D input accepted")
	}
	if _, err := GlobalAveragePool([]*tensor.Tensor{tensor.Zeros(4, 4)}, nil); err == nil {
		t.Error("GlobalAveragePool accepted 2-D input")
	}
}
