package ops

import (
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Prepacked holds the compile-time-prepared constant state of one node:
// the packed right-hand weight matrix of MatMul/Gemm, the per-group filter
// matrices of Conv, or the decoded stage program of a FusedElementwise
// chain (so the serving hot path never re-parses the attribute encoding).
// It is immutable after creation and shared by every run of the owning
// plan.
type Prepacked struct {
	// B is the packed right operand (MatMul/Gemm).
	B *kernels.PackedB
	// A holds one packed filter matrix per convolution group (Conv).
	A []*kernels.PackedA
	// fe is the decoded FusedElementwise stage list.
	fe []feStage
}

// HasWeights reports whether the entry carries packed weight panels (as
// opposed to only a decoded stage program); the prepack statistics count
// weight-bearing nodes.
func (p *Prepacked) HasWeights() bool { return p.B != nil || len(p.A) > 0 }

// Bytes reports the packed footprint.
func (p *Prepacked) Bytes() int64 {
	var b int64
	if p.B != nil {
		b += p.B.Bytes()
	}
	for _, a := range p.A {
		b += a.Bytes()
	}
	return b
}

// PrepackWeights packs the constant operands of one node at compile time.
// constIn mirrors the node's inputs positionally, nil for anything that is
// not a graph constant. It returns nil when the op has no GEMM-shaped
// constant operand (or the kernel would not take the GEMM path), in which
// case the node runs the ordinary registry kernel.
func PrepackWeights(opType string, attrs Attrs, constIn []*tensor.Tensor) *Prepacked {
	switch opType {
	case "FusedElementwise":
		// Nothing to pack, but decoding the stage encoding once per plan
		// keeps per-run invocations allocation-free of attribute parsing.
		stages, err := parseFused(attrs, len(constIn))
		if err != nil {
			return nil // the registry kernel will surface the error
		}
		return &Prepacked{fe: stages}
	case "MatMul":
		if len(constIn) < 2 || constIn[1] == nil {
			return nil
		}
		b := constIn[1]
		bs := b.Shape()
		if bs.Rank() < 2 {
			return nil
		}
		k, n := bs[bs.Rank()-2], bs[bs.Rank()-1]
		if k <= 0 || n <= 0 || k*n != b.Numel() {
			// A truly batched constant B (several distinct matrices) is not
			// worth a per-batch packed copy; leave it to the call-time path.
			return nil
		}
		return &Prepacked{B: kernels.PrepackB(b.Data(), k, n, n, false)}
	case "Gemm":
		if len(constIn) < 2 || constIn[1] == nil {
			return nil
		}
		b := constIn[1]
		bs := b.Shape()
		if bs.Rank() != 2 {
			return nil
		}
		transB := attrs.Int("transB", 0) != 0
		k, n := bs[0], bs[1]
		if transB {
			k, n = n, k
		}
		if k <= 0 || n <= 0 {
			return nil
		}
		return &Prepacked{B: kernels.PrepackB(b.Data(), k, n, bs[1], transB)}
	case "Conv":
		if len(constIn) < 2 || constIn[1] == nil {
			return nil
		}
		w := constIn[1]
		ws := w.Shape()
		if ws.Rank() != 4 {
			return nil
		}
		m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
		groups := attrs.Int("group", 1)
		if groups < 1 {
			groups = 1
		}
		if m <= 0 || m%groups != 0 {
			return nil
		}
		mPerG := m / groups
		if !convGEMMWorthy(mPerG, cg, kh, kw) {
			return nil
		}
		colK := cg * kh * kw
		pa := make([]*kernels.PackedA, groups)
		for g := 0; g < groups; g++ {
			pa[g] = kernels.PrepackA(w.Data()[g*mPerG*colK:], mPerG, colK, colK, false)
		}
		return &Prepacked{A: pa}
	}
	return nil
}

// RunPrepacked executes a node whose constant operands were packed at
// compile time. opType must be one PrepackWeights returned non-nil for.
func RunPrepacked(opType string, in []*tensor.Tensor, attrs Attrs, a tensor.Allocator, pp *Prepacked) ([]*tensor.Tensor, error) {
	switch opType {
	case "MatMul":
		return matMulPacked(in, attrs, a, pp.B)
	case "Gemm":
		return gemmPacked(in, attrs, a, pp.B)
	case "Conv":
		return convPacked(in, attrs, a, pp.A)
	case "FusedElementwise":
		if err := need(opType, in, 1, -1); err != nil {
			return nil, err
		}
		out, err := runFused(in, pp.fe, a, false)
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{out}, nil
	}
	return nil, argErr(opType, "no prepacked execution path")
}

// RunPrepackedInPlace combines both compile-time preparations: the node's
// decoded Prepacked state and the executor's in-place liveness proof (see
// RunInPlace for the ownership-transfer contract). Only FusedElementwise
// has both today; other in-place-capable ops carry no Prepacked state.
func RunPrepackedInPlace(opType string, in []*tensor.Tensor, attrs Attrs, a tensor.Allocator, pp *Prepacked) ([]*tensor.Tensor, error) {
	if opType != "FusedElementwise" {
		return RunInPlace(opType, in, attrs, a)
	}
	if err := need(opType, in, 1, -1); err != nil {
		return nil, err
	}
	out, err := runFused(in, pp.fe, a, true)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{out}, nil
}

// ScratchElems estimates the transient float32 elements the node's kernel
// will draw from the run's allocator for these inputs — the im2col patch
// matrix plus call-time GEMM packing — so the memory planner can size
// arenas beyond value storage alone. Prepacked weights remove the A-side
// term at run time; the estimate reports the un-prepacked worst case.
func ScratchElems(opType string, attrs Attrs, in []*tensor.Tensor) int {
	switch opType {
	case "MatMul":
		if len(in) < 2 || in[0].Shape().Rank() < 2 || in[1].Shape().Rank() < 2 {
			return 0
		}
		as, bs := in[0].Shape(), in[1].Shape()
		m, k := as[as.Rank()-2], as[as.Rank()-1]
		n := bs[bs.Rank()-1]
		return kernels.PackedASize(m, k) + kernels.PackedBSize(k, n)
	case "Gemm":
		if len(in) < 2 || in[0].Shape().Rank() != 2 || in[1].Shape().Rank() != 2 {
			return 0
		}
		as := in[0].Shape()
		m, k := as[0], as[1]
		if attrs.Int("transA", 0) != 0 {
			m, k = k, m
		}
		n := in[1].Numel() / maxInt(k, 1)
		return kernels.PackedASize(m, k) + kernels.PackedBSize(k, n)
	case "Conv":
		if len(in) < 2 || in[0].Shape().Rank() != 4 || in[1].Shape().Rank() != 4 {
			return 0
		}
		xs, ws := in[0].Shape(), in[1].Shape()
		h, wd := xs[2], xs[3]
		m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
		groups := attrs.Int("group", 1)
		if groups < 1 {
			groups = 1
		}
		if m%groups != 0 || !convGEMMWorthy(m/groups, cg, kh, kw) {
			return 0
		}
		sh, sw := strides2(attrs.Ints("strides", nil))
		pt, pl, pb, pr := pads4(attrs.Ints("pads", nil))
		oh := convOutDim(h, kh, sh, pt, pb)
		ow := convOutDim(wd, kw, sw, pl, pr)
		if oh <= 0 || ow <= 0 {
			return 0
		}
		colK, colN := cg*kh*kw, oh*ow
		return colK*colN + // im2col patch matrix
			kernels.PackedBSize(colK, colN) + // patch packing inside GEMM
			kernels.PackedASize(m/groups, colK) // filter packing when not prepacked
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
