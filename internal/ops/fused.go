package ops

import (
	"math"
	"strings"

	"repro/internal/tensor"
)

// FusedElementwise executes a compile-time-collapsed chain of elementwise
// ops (internal/passes.FuseElementwise) as one kernel invocation: the
// chain's value flows through a single output buffer, each stage a
// specialized slice loop — no per-element function pointers, no
// per-stage intermediate tensors.
//
// Node encoding (all attribute kinds survive JSON and codegen round trips):
//
//	fe_ops  string    stage op names joined by "|" ("Relu|Add|Clip")
//	fe_args []int     per stage: node-input index of the extra operand of a
//	                  binary stage, or -1 for a unary stage
//	fe_swap []int     per stage: 1 when the flowing value is the RIGHT
//	                  operand of the binary op (v = extra OP flowing)
//	fe_p0   []float32 per stage: LeakyRelu alpha, Clip min
//	fe_p1   []float32 per stage: Clip max
//
// Input 0 is the chain head's flowing input; the remaining inputs are the
// extra operands of binary stages in fe_args order. Extras that are
// scalars or match the flowing shape run inside the single fused sweep;
// a genuinely broadcasting extra falls back to a stage-at-a-time
// materialization through the ordinary binary kernels, so the pass never
// has to prove shapes it cannot see.
var FusedElementwise = onHeap(fusedElementwiseK)

// Attribute keys of the FusedElementwise encoding.
const (
	AttrFusedOps  = "fe_ops"
	AttrFusedArgs = "fe_args"
	AttrFusedSwap = "fe_swap"
	AttrFusedP0   = "fe_p0"
	AttrFusedP1   = "fe_p1"
)

// feStage is one decoded chain stage.
type feStage struct {
	op     string
	arg    int // extra-operand input index; -1 = unary
	swap   bool
	p0, p1 float32
}

// FusedStageOK reports whether opType can be a FusedElementwise stage.
func FusedStageOK(opType string) bool {
	switch opType {
	case "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Clip", "Add", "Mul", "Sub", "Div":
		return true
	}
	return false
}

// fusedStageIsBinary reports whether the stage op consumes an extra operand.
func fusedStageIsBinary(opType string) bool {
	switch opType {
	case "Add", "Mul", "Sub", "Div":
		return true
	}
	return false
}

// FusedStageAttrs encodes one activation/arithmetic node as stage attrs
// slices, appending to the accumulator attrs of a FusedElementwise node
// under construction. arg is the extra operand's input index (-1 unary)
// and swap marks the flowing value as right operand.
func FusedStageAttrs(acc Attrs, opType string, attrs Attrs, arg int, swap bool) Attrs {
	if acc == nil {
		acc = Attrs{}
	}
	ops := acc.Str(AttrFusedOps, "")
	if ops == "" {
		ops = opType
	} else {
		ops += "|" + opType
	}
	acc[AttrFusedOps] = ops
	acc[AttrFusedArgs] = append(acc.Ints(AttrFusedArgs, nil), arg)
	sw := 0
	if swap {
		sw = 1
	}
	acc[AttrFusedSwap] = append(acc.Ints(AttrFusedSwap, nil), sw)
	var p0, p1 float32
	switch opType {
	case "LeakyRelu":
		p0 = float32(attrs.Float("alpha", 0.01))
	case "Clip":
		p0 = float32(attrs.Float("min", -math.MaxFloat32))
		p1 = float32(attrs.Float("max", math.MaxFloat32))
	}
	acc[AttrFusedP0] = append(acc.Floats(AttrFusedP0, nil), p0)
	acc[AttrFusedP1] = append(acc.Floats(AttrFusedP1, nil), p1)
	return acc
}

// parseFused decodes the stage attrs of a FusedElementwise node.
func parseFused(attrs Attrs, nin int) ([]feStage, error) {
	opsStr := attrs.Str(AttrFusedOps, "")
	if opsStr == "" {
		return nil, argErr("FusedElementwise", "missing %s attribute", AttrFusedOps)
	}
	names := strings.Split(opsStr, "|")
	args := attrs.Ints(AttrFusedArgs, nil)
	swaps := attrs.Ints(AttrFusedSwap, nil)
	p0 := attrs.Floats(AttrFusedP0, nil)
	p1 := attrs.Floats(AttrFusedP1, nil)
	if len(args) != len(names) || len(swaps) != len(names) || len(p0) != len(names) || len(p1) != len(names) {
		return nil, argErr("FusedElementwise", "stage attribute lengths disagree for %q", opsStr)
	}
	stages := make([]feStage, len(names))
	for i, op := range names {
		if !FusedStageOK(op) {
			return nil, argErr("FusedElementwise", "unsupported stage op %q", op)
		}
		arg := args[i]
		if fusedStageIsBinary(op) {
			if arg < 1 || arg >= nin {
				return nil, argErr("FusedElementwise", "stage %d (%s) references input %d of %d", i, op, arg, nin)
			}
		} else {
			arg = -1
		}
		stages[i] = feStage{op: op, arg: arg, swap: swaps[i] != 0, p0: p0[i], p1: p1[i]}
	}
	return stages, nil
}

func fusedElementwiseK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("FusedElementwise", in, 1, -1); err != nil {
		return nil, err
	}
	stages, err := parseFused(attrs, len(in))
	if err != nil {
		return nil, err
	}
	out, err := runFused(in, stages, a, false)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{out}, nil
}

// runFused executes the chain. When inPlace is set the caller (the
// executor's liveness-proved transfer, ops.RunInPlace) has given the kernel
// ownership of in[0]'s storage: the returned tensor either shares it or the
// kernel has already returned it to a.
func runFused(in []*tensor.Tensor, stages []feStage, a tensor.Allocator, inPlace bool) (*tensor.Tensor, error) {
	x := in[0]
	// Fast path: every extra operand is a scalar or matches the flowing
	// shape exactly, so the whole chain is one tile-wise sweep — each tile
	// stays cache-hot while every stage passes over it.
	fast := true
	for _, st := range stages {
		if st.arg < 0 {
			continue
		}
		t := in[st.arg]
		// A scalar of rank <= the flowing rank broadcasts to exactly the
		// flowing shape; a higher-rank scalar would grow the result's rank
		// and must take the general path for correct shape metadata.
		if (t.Numel() == 1 && t.Rank() <= x.Rank()) || t.Shape().Equal(x.Shape()) {
			continue
		}
		fast = false
		break
	}
	if fast {
		var out *tensor.Tensor
		if inPlace {
			out = tensor.New(x.Shape(), x.Data())
		} else {
			out = uninitLike(a, x)
		}
		od, xd := out.Data(), x.Data()
		tensor.ParallelRange(len(xd), 4096, func(lo, hi int) {
			applyStage(stages[0], od[lo:hi], xd[lo:hi], in, lo)
			for _, st := range stages[1:] {
				applyStage(st, od[lo:hi], od[lo:hi], in, lo)
			}
		})
		return out, nil
	}
	return runFusedSlow(in, stages, a, inPlace)
}

// runFusedSlow is the stage-at-a-time fallback for chains containing a
// genuinely broadcasting binary stage: correct for every shape the original
// unfused graph accepted, at the cost of per-stage materialization.
func runFusedSlow(in []*tensor.Tensor, stages []feStage, a tensor.Allocator, owned bool) (*tensor.Tensor, error) {
	cur := in[0]
	for _, st := range stages {
		simple := st.arg < 0
		if !simple {
			t := in[st.arg]
			simple = (t.Numel() == 1 && t.Rank() <= cur.Rank()) || t.Shape().Equal(cur.Shape())
		}
		if simple {
			if !owned {
				nt := uninitLike(a, cur)
				applyStage(st, nt.Data(), cur.Data(), in, 0)
				cur, owned = nt, true
			} else {
				applyStage(st, cur.Data(), cur.Data(), in, 0)
			}
			continue
		}
		// Broadcasting stage: run the ordinary binary kernel; the result
		// may change shape, so the flowing buffer is replaced.
		l, r := cur, in[st.arg]
		if st.swap {
			l, r = r, cur
		}
		k, err := LookupAlloc(st.op)
		if err != nil {
			return nil, err
		}
		outs, err := k([]*tensor.Tensor{l, r}, nil, a)
		if err != nil {
			if owned {
				tensor.ReleaseData(a, cur)
			}
			return nil, err
		}
		if owned {
			tensor.ReleaseData(a, cur)
		}
		cur, owned = outs[0], true
	}
	if !owned { // zero-stage chains cannot be built, but keep the no-alias contract
		cur = cur.CloneIn(a)
	}
	return cur, nil
}

// applyStage runs one stage over the index-aligned tile dst = stage(src).
// lo is the tile's offset into the flowing tensor, used to slice
// shape-matching extras; scalar extras are hoisted. dst and src may alias.
func applyStage(st feStage, dst, src []float32, in []*tensor.Tensor, lo int) {
	switch st.op {
	case "Relu":
		reluLoop(dst, src)
	case "LeakyRelu":
		leakyReluLoop(dst, src, st.p0)
	case "Sigmoid":
		sigmoidLoop(dst, src)
	case "Tanh":
		tanhLoop(dst, src)
	case "Clip":
		clipLoop(dst, src, st.p0, st.p1)
	case "Add":
		if e := in[st.arg]; e.Numel() == 1 {
			addScalarLoop(dst, src, e.Data()[0])
		} else {
			addLoop(dst, src, e.Data()[lo:lo+len(src)])
		}
	case "Mul":
		if e := in[st.arg]; e.Numel() == 1 {
			mulScalarLoop(dst, src, e.Data()[0])
		} else {
			mulLoop(dst, src, e.Data()[lo:lo+len(src)])
		}
	case "Sub":
		e := in[st.arg]
		switch {
		case st.swap && e.Numel() == 1:
			rsubScalarLoop(dst, e.Data()[0], src)
		case st.swap:
			subLoop(dst, e.Data()[lo:lo+len(src)], src)
		case e.Numel() == 1:
			subScalarLoop(dst, src, e.Data()[0])
		default:
			subLoop(dst, src, e.Data()[lo:lo+len(src)])
		}
	case "Div":
		e := in[st.arg]
		switch {
		case st.swap && e.Numel() == 1:
			rdivScalarLoop(dst, e.Data()[0], src)
		case st.swap:
			divLoop(dst, e.Data()[lo:lo+len(src)], src)
		case e.Numel() == 1:
			divScalarLoop(dst, src, e.Data()[0])
		default:
			divLoop(dst, src, e.Data()[lo:lo+len(src)])
		}
	}
}
