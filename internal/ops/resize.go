package ops

import (
	"repro/internal/tensor"
)

// Resize implements nearest-neighbor spatial up/down-sampling of NCHW
// input by integer attribute factors "scale_h"/"scale_w" (default 2), the
// subset of ONNX Resize that feature-pyramid necks (Yolo, Retinanet) use.
var Resize = onHeap(resizeK)

func resizeK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Resize", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	if xs.Rank() != 4 {
		return nil, argErr("Resize", "want 4-D input, got %v", xs)
	}
	scaleH := attrs.Int("scale_h", 2)
	scaleW := attrs.Int("scale_w", 2)
	if scaleH < 1 || scaleW < 1 {
		return nil, argErr("Resize", "scales must be >= 1, got %d x %d", scaleH, scaleW)
	}
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh, ow := h*scaleH, w*scaleW
	out := tensor.ZerosIn(alc, n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n*c, 4, func(idx int) {
		src := idx * h * w
		dst := idx * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy := oy / scaleH
			rowS := src + iy*w
			rowD := dst + oy*ow
			for ox := 0; ox < ow; ox++ {
				od[rowD+ox] = xd[rowS+ox/scaleW]
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

func init() {
	register("Resize", resizeK)
}
