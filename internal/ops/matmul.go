package ops

import (
	"repro/internal/tensor"
)

// MatMul implements ONNX MatMul: 2-D matrix product plus batched variants
// where both inputs have rank >= 2 and leading dimensions broadcast.
// Rows of the left operand are distributed across intra-op workers.
var MatMul = onHeap(matMulK)

func matMulK(in []*tensor.Tensor, _ Attrs, a2 tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("MatMul", in, 2, 2); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	as, bs := a.Shape(), b.Shape()
	if as.Rank() < 2 || bs.Rank() < 2 {
		return nil, argErr("MatMul", "want rank >= 2 operands, got %v and %v", as, bs)
	}
	m, k := as[as.Rank()-2], as[as.Rank()-1]
	k2, n := bs[bs.Rank()-2], bs[bs.Rank()-1]
	if k != k2 {
		return nil, argErr("MatMul", "inner dimensions differ: %v x %v", as, bs)
	}
	batchA, err := tensor.Broadcast(as[:as.Rank()-2], bs[:bs.Rank()-2])
	if err != nil {
		return nil, argErr("MatMul", "batch dims incompatible: %v", err)
	}
	outShape := append(batchA.Clone(), m, n)
	out := tensor.ZerosIn(a2, outShape...)

	batches := batchA.Numel()
	aBatch := as[:as.Rank()-2].Numel()
	bBatch := bs[:bs.Rank()-2].Numel()
	ad, bd, od := a.Data(), b.Data(), out.Data()

	for batch := 0; batch < batches; batch++ {
		// Broadcast batch index back onto each operand. Operands either
		// carry the full batch or a size-1 (or absent) batch.
		ai := batch % maxInt(aBatch, 1)
		bi := batch % maxInt(bBatch, 1)
		if aBatch == batches {
			ai = batch
		} else if aBatch <= 1 {
			ai = 0
		}
		if bBatch == batches {
			bi = batch
		} else if bBatch <= 1 {
			bi = 0
		}
		aOff := ai * m * k
		bOff := bi * k * n
		oOff := batch * m * n
		matmul2D(ad[aOff:aOff+m*k], bd[bOff:bOff+k*n], od[oOff:oOff+m*n], m, k, n)
	}
	return []*tensor.Tensor{out}, nil
}

// matmul2D computes C = A(mxk) * B(kxn) into c, parallelizing over rows.
// The k-loop is the middle loop (ikj order) so B is streamed row-wise,
// which keeps the inner loop vectorizable and cache-friendly.
func matmul2D(a, b, c []float32, m, k, n int) {
	tensor.ParallelRange(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for p := 0; p < k; p++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// Gemm implements ONNX Gemm: Y = alpha*op(A)*op(B) + beta*C with optional
// transposes; C broadcasts over rows when it is a vector.
var Gemm = onHeap(gemmK)

func gemmK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Gemm", in, 2, 3); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	alpha := float32(attrs.Float("alpha", 1))
	beta := float32(attrs.Float("beta", 1))
	transA := attrs.Int("transA", 0) != 0
	transB := attrs.Int("transB", 0) != 0
	as, bs := a.Shape(), b.Shape()
	if as.Rank() != 2 || bs.Rank() != 2 {
		return nil, argErr("Gemm", "want 2-D operands, got %v and %v", as, bs)
	}
	m, k := as[0], as[1]
	if transA {
		m, k = k, m
	}
	kb, n := bs[0], bs[1]
	if transB {
		kb, n = n, kb
	}
	if k != kb {
		return nil, argErr("Gemm", "inner dimensions differ: %d vs %d", k, kb)
	}
	out := tensor.ZerosIn(alc, m, n)
	ad, bd, od := a.Data(), b.Data(), out.Data()

	tensor.ParallelRange(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := od[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				var av float32
				if transA {
					av = ad[p*as[1]+i]
				} else {
					av = ad[i*as[1]+p]
				}
				if av == 0 {
					continue
				}
				av *= alpha
				if transB {
					for j := 0; j < n; j++ {
						row[j] += av * bd[j*bs[1]+p]
					}
				} else {
					bp := bd[p*bs[1] : p*bs[1]+n]
					for j, bv := range bp {
						row[j] += av * bv
					}
				}
			}
		}
	})

	if len(in) == 3 && beta != 0 {
		c := in[2]
		cs := c.Shape()
		cd := c.Data()
		switch {
		case cs.Equal(tensor.Shape{m, n}):
			for i := range od {
				od[i] += beta * cd[i]
			}
		case cs.Numel() == n: // bias row vector, broadcast over rows
			for i := 0; i < m; i++ {
				row := od[i*n : (i+1)*n]
				for j := range row {
					row[j] += beta * cd[j]
				}
			}
		case cs.Numel() == 1:
			for i := range od {
				od[i] += beta * cd[0]
			}
		default:
			return nil, argErr("Gemm", "C shape %v not broadcastable to [%d %d]", cs, m, n)
		}
	}
	return []*tensor.Tensor{out}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
