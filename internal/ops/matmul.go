package ops

import (
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// MatMul implements ONNX MatMul: 2-D matrix product plus batched variants
// where both inputs have rank >= 2 and leading dimensions broadcast. The
// product itself runs on the blocked GEMM core (internal/kernels); this
// file only validates shapes and maps batch indexes.
var MatMul = onHeap(matMulK)

func matMulK(in []*tensor.Tensor, attrs Attrs, a2 tensor.Allocator) ([]*tensor.Tensor, error) {
	return matMulPacked(in, attrs, a2, nil)
}

// matMulPacked is the shared kernel body; pb is non-nil when the graph's
// right operand is a constant the compile-time prepack pass already packed.
func matMulPacked(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator, pb *kernels.PackedB) ([]*tensor.Tensor, error) {
	if err := need("MatMul", in, 2, 2); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	as, bs := a.Shape(), b.Shape()
	if as.Rank() < 2 || bs.Rank() < 2 {
		return nil, argErr("MatMul", "want rank >= 2 operands, got %v and %v", as, bs)
	}
	m, k := as[as.Rank()-2], as[as.Rank()-1]
	k2, n := bs[bs.Rank()-2], bs[bs.Rank()-1]
	if k != k2 {
		return nil, argErr("MatMul", "inner dimensions differ: %v x %v", as, bs)
	}
	batchShape, err := tensor.Broadcast(as[:as.Rank()-2], bs[:bs.Rank()-2])
	if err != nil {
		return nil, argErr("MatMul", "batch dims incompatible: %v", err)
	}
	outShape := append(batchShape.Clone(), m, n)
	out := tensor.ZerosIn(alc, outShape...)

	batches := batchShape.Numel()
	ad, bd, od := a.Data(), b.Data(), out.Data()
	bBatch := bs[:bs.Rank()-2].Numel()
	epi := epilogueOf(attrs)

	// Broadcast each flat batch index back onto the operands per dimension
	// (a size-1 operand dimension contributes stride 0), so mixed batch
	// shapes like [2,1]x[1,3] address the right panels.
	var aIdx, bIdx []int
	if batches > 1 {
		aIdx = broadcastIndices(batchShape, as[:as.Rank()-2])
		bIdx = broadcastIndices(batchShape, bs[:bs.Rank()-2])
	}
	batchOf := func(idx []int, batch int) int {
		if idx == nil {
			return 0
		}
		return idx[batch]
	}

	switch {
	case pb != nil:
		for batch := 0; batch < batches; batch++ {
			aOff := batchOf(aIdx, batch) * m * k
			kernels.GemmPackedBEpi(1, m, ad[aOff:], k, false, pb, od[batch*m*n:], alc, epi)
		}
	case bBatch <= 1:
		// One shared B: pack it once into run scratch, reuse per batch.
		bbuf := tensor.AllocUninit(alc, kernels.PackedBSize(k, n))
		kernels.PackBInto(bbuf, bd, k, n, n, false)
		for batch := 0; batch < batches; batch++ {
			aOff := batchOf(aIdx, batch) * m * k
			kernels.GemmBPackedEpi(1, m, n, k, ad[aOff:], k, false, bbuf, od[batch*m*n:], alc, epi)
		}
		tensor.Free(alc, bbuf)
	default:
		for batch := 0; batch < batches; batch++ {
			aOff := batchOf(aIdx, batch) * m * k
			bOff := batchOf(bIdx, batch) * k * n
			kernels.GemmEpi(1, m, n, k, ad[aOff:], k, false, bd[bOff:], n, false, od[batch*m*n:], alc, epi)
		}
	}
	return []*tensor.Tensor{out}, nil
}

// broadcastIndices maps every flat index of the broadcast batch shape to
// the flat batch index of an operand whose (right-aligned) batch dims are
// dims: operand dimensions of extent 1 contribute stride 0, everything
// else its row-major stride.
func broadcastIndices(batch tensor.Shape, dims tensor.Shape) []int {
	idx := make([]int, batch.Numel())
	r := len(batch)
	strides := make([]int, r)
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		bi := i + r - len(dims)
		if dims[i] != 1 || batch[bi] == 1 {
			strides[bi] = acc
		}
		acc *= dims[i]
	}
	for flat := range idx {
		rem := flat
		off := 0
		for i := r - 1; i >= 0; i-- {
			pos := rem % batch[i]
			rem /= batch[i]
			off += pos * strides[i]
		}
		idx[flat] = off
	}
	return idx
}

// Gemm implements ONNX Gemm: Y = alpha*op(A)*op(B) + beta*C with optional
// transposes; C broadcasts over rows when it is a vector. The product runs
// on the blocked GEMM core; the beta/bias epilogue is row-parallel.
var Gemm = onHeap(gemmK)

func gemmK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	return gemmPacked(in, attrs, alc, nil)
}

func gemmPacked(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator, pb *kernels.PackedB) ([]*tensor.Tensor, error) {
	if err := need("Gemm", in, 2, 3); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	alpha := float32(attrs.Float("alpha", 1))
	beta := float32(attrs.Float("beta", 1))
	transA := attrs.Int("transA", 0) != 0
	transB := attrs.Int("transB", 0) != 0
	as, bs := a.Shape(), b.Shape()
	if as.Rank() != 2 || bs.Rank() != 2 {
		return nil, argErr("Gemm", "want 2-D operands, got %v and %v", as, bs)
	}
	m, k := as[0], as[1]
	if transA {
		m, k = k, m
	}
	kb, n := bs[0], bs[1]
	if transB {
		kb, n = n, kb
	}
	if k != kb {
		return nil, argErr("Gemm", "inner dimensions differ: %d vs %d", k, kb)
	}
	out := tensor.ZerosIn(alc, m, n)
	od := out.Data()

	// A fused writeback activation applies after the bias term; with a live
	// beta/C sweep it folds into that sweep (still one pass over C),
	// otherwise it rides the GEMM core's packed writeback.
	epi := epilogueOf(attrs)
	hasBias := len(in) == 3 && beta != 0
	coreEpi := epi
	if hasBias {
		coreEpi = kernels.Epilogue{}
	}

	if pb != nil {
		kernels.GemmPackedBEpi(alpha, m, a.Data(), as[1], transA, pb, od, alc, coreEpi)
	} else {
		kernels.GemmEpi(alpha, m, n, k, a.Data(), as[1], transA, b.Data(), bs[1], transB, od, alc, coreEpi)
	}

	if hasBias {
		c := in[2]
		cs := c.Shape()
		cd := c.Data()
		// The epilogue applies after the bias while the chunk is still
		// cache-hot; epi.Apply is a no-op switch when none is fused, so the
		// plain `+=` sweeps stay branch-free per element.
		switch {
		case cs.Equal(tensor.Shape{m, n}):
			tensor.ParallelRange(m, 16, func(lo, hi int) {
				for i := lo * n; i < hi*n; i++ {
					od[i] += beta * cd[i]
				}
				epi.Apply(od[lo*n : hi*n])
			})
		case cs.Numel() == n: // bias row vector, broadcast over rows
			tensor.ParallelRange(m, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					row := od[i*n : i*n+n]
					for j, cv := range cd[:n] {
						row[j] += beta * cv
					}
				}
				epi.Apply(od[lo*n : hi*n])
			})
		case cs.Numel() == 1:
			add := beta * cd[0]
			tensor.ParallelRange(m, 16, func(lo, hi int) {
				for i := lo * n; i < hi*n; i++ {
					od[i] += add
				}
				epi.Apply(od[lo*n : hi*n])
			})
		default:
			return nil, argErr("Gemm", "C shape %v not broadcastable to [%d %d]", cs, m, n)
		}
	}
	return []*tensor.Tensor{out}, nil
}
