package ops

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestConcatOpAxis1(t *testing.T) {
	a := tensor.Full(1, 1, 2, 2, 2)
	b := tensor.Full(2, 1, 3, 2, 2)
	out, err := ConcatOp([]*tensor.Tensor{a, b}, Attrs{"axis": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{1, 5, 2, 2}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].At(0, 1, 1, 1) != 1 || out[0].At(0, 2, 0, 0) != 2 {
		t.Error("concat values misplaced")
	}
}

func TestConcatOpAxis0AndErrors(t *testing.T) {
	a := tensor.Full(1, 2, 3)
	b := tensor.Full(2, 1, 3)
	out, err := ConcatOp([]*tensor.Tensor{a, b}, Attrs{"axis": 0})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 3}) {
		t.Fatalf("concat axis0 = %v, %v", out, err)
	}
	if _, err := ConcatOp([]*tensor.Tensor{a, tensor.Zeros(1, 4)}, Attrs{"axis": 0}); err == nil {
		t.Error("mismatched concat accepted")
	}
	if _, err := ConcatOp(nil, Attrs{"axis": 0}); err == nil {
		t.Error("empty concat accepted")
	}
}

func TestReshapeOpBothForms(t *testing.T) {
	x := tensor.Zeros(2, 6)
	shape := tensor.FromSlice([]float32{3, 4})
	out, err := Reshape([]*tensor.Tensor{x, shape}, nil)
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 4}) {
		t.Fatalf("reshape tensor form = %v, %v", out, err)
	}
	out, err = Reshape([]*tensor.Tensor{x}, Attrs{"shape": []int{4, -1}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{4, 3}) {
		t.Fatalf("reshape attr form = %v, %v", out, err)
	}
	// Zero means copy input dim.
	out, err = Reshape([]*tensor.Tensor{x}, Attrs{"shape": []int{0, -1}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{2, 6}) {
		t.Fatalf("reshape 0-dim = %v, %v", out, err)
	}
	if _, err := Reshape([]*tensor.Tensor{x}, nil); err == nil {
		t.Error("reshape with no shape accepted")
	}
}

func TestFlatten(t *testing.T) {
	x := tensor.Zeros(2, 3, 4, 5)
	out, err := Flatten([]*tensor.Tensor{x}, nil)
	if err != nil || !out[0].Shape().Equal(tensor.Shape{2, 60}) {
		t.Fatalf("Flatten = %v, %v", out, err)
	}
	out, err = Flatten([]*tensor.Tensor{x}, Attrs{"axis": 2})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{6, 20}) {
		t.Fatalf("Flatten axis2 = %v, %v", out, err)
	}
}

func TestTranspose(t *testing.T) {
	x := tensor.New(tensor.Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	out, err := Transpose([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{3, 2}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].At(0, 1) != 4 || out[0].At(2, 0) != 3 {
		t.Errorf("transpose values: %v", out[0].Data())
	}
	// Explicit permutation on rank 3.
	y := tensor.Zeros(2, 3, 4)
	for i := range y.Data() {
		y.Data()[i] = float32(i)
	}
	out, err = Transpose([]*tensor.Tensor{y}, Attrs{"perm": []int{1, 0, 2}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 2, 4}) {
		t.Fatalf("perm transpose = %v, %v", out, err)
	}
	if out[0].At(1, 1, 2) != y.At(1, 1, 2) {
		t.Error("perm transpose moved wrong element")
	}
	if _, err := Transpose([]*tensor.Tensor{y}, Attrs{"perm": []int{0, 0, 1}}); err == nil {
		t.Error("duplicate perm accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := tensor.NewRNG(12)
	x := r.RandTensor(3, 4, 5)
	once, err := Transpose([]*tensor.Tensor{x}, Attrs{"perm": []int{2, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Transpose(once, Attrs{"perm": []int{1, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].Equal(x) {
		t.Error("transpose round trip changed data")
	}
}

func TestSlice(t *testing.T) {
	x := tensor.Zeros(4, 5)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	out, err := Slice([]*tensor.Tensor{x}, Attrs{"starts": []int{1, 2}, "ends": []int{3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{2, 3}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].At(0, 0) != x.At(1, 2) || out[0].At(1, 2) != x.At(2, 4) {
		t.Error("slice values wrong")
	}
	// Negative indices and axes subset.
	out, err = Slice([]*tensor.Tensor{x}, Attrs{"starts": []int{-2}, "ends": []int{4}, "axes": []int{0}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{2, 5}) {
		t.Fatalf("negative slice = %v, %v", out, err)
	}
	// Clamped out-of-range end.
	out, err = Slice([]*tensor.Tensor{x}, Attrs{"starts": []int{0}, "ends": []int{99}, "axes": []int{1}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{4, 5}) {
		t.Fatalf("clamped slice = %v, %v", out, err)
	}
	if _, err := Slice([]*tensor.Tensor{x}, Attrs{"starts": []int{0}}); err == nil {
		t.Error("missing ends accepted")
	}
}

func TestGather(t *testing.T) {
	x := tensor.New(tensor.Shape{3, 2}, []float32{10, 11, 20, 21, 30, 31})
	idx := tensor.FromSlice([]float32{2, 0})
	out, err := Gather([]*tensor.Tensor{x, idx}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{2, 2}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].At(0, 0) != 30 || out[0].At(1, 1) != 11 {
		t.Errorf("gather values: %v", out[0].Data())
	}
	// Axis 1 gather.
	out, err = Gather([]*tensor.Tensor{x, tensor.FromSlice([]float32{1})}, Attrs{"axis": 1})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 1}) {
		t.Fatalf("gather axis1 = %v, %v", out, err)
	}
	if out[0].At(0, 0) != 11 {
		t.Error("gather axis1 value wrong")
	}
	// Out of range index.
	if _, err := Gather([]*tensor.Tensor{x, tensor.FromSlice([]float32{7})}, nil); err == nil {
		t.Error("out-of-range gather accepted")
	}
}

func TestSplit(t *testing.T) {
	x := tensor.Zeros(2, 6)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	outs, err := Split([]*tensor.Tensor{x}, Attrs{"axis": 1, "num": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for _, o := range outs {
		if !o.Shape().Equal(tensor.Shape{2, 2}) {
			t.Fatalf("split shape = %v", o.Shape())
		}
	}
	if outs[1].At(0, 0) != 2 || outs[2].At(1, 1) != 11 {
		t.Error("split values wrong")
	}
	// Uneven explicit sizes.
	outs, err = Split([]*tensor.Tensor{x}, Attrs{"axis": 1, "split": []int{1, 5}})
	if err != nil || len(outs) != 2 || !outs[1].Shape().Equal(tensor.Shape{2, 5}) {
		t.Fatalf("explicit split = %v, %v", outs, err)
	}
	if _, err := Split([]*tensor.Tensor{x}, Attrs{"axis": 1, "num": 4}); err == nil {
		t.Error("indivisible split accepted")
	}
	if _, err := Split([]*tensor.Tensor{x}, Attrs{"axis": 1, "split": []int{2, 2}}); err == nil {
		t.Error("wrong-sum split accepted")
	}
}

func TestSqueezeUnsqueeze(t *testing.T) {
	x := tensor.Zeros(1, 3, 1, 2)
	out, err := Squeeze([]*tensor.Tensor{x}, nil)
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 2}) {
		t.Fatalf("Squeeze all = %v, %v", out, err)
	}
	out, err = Squeeze([]*tensor.Tensor{x}, Attrs{"axes": []int{0}})
	if err != nil || !out[0].Shape().Equal(tensor.Shape{3, 1, 2}) {
		t.Fatalf("Squeeze axis0 = %v, %v", out, err)
	}
	if _, err := Squeeze([]*tensor.Tensor{x}, Attrs{"axes": []int{1}}); err == nil {
		t.Error("squeeze of non-unit dim accepted")
	}
	back, err := Unsqueeze([]*tensor.Tensor{tensor.Zeros(3, 2)}, Attrs{"axes": []int{0, 2}})
	if err != nil || !back[0].Shape().Equal(tensor.Shape{1, 3, 1, 2}) {
		t.Fatalf("Unsqueeze = %v, %v", back, err)
	}
}

func TestShapeOpAndConstant(t *testing.T) {
	x := tensor.Zeros(2, 3, 4)
	out, err := ShapeOp([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 3, 4}
	for i, v := range want {
		if out[0].Data()[i] != v {
			t.Fatalf("Shape = %v", out[0].Data())
		}
	}
	c, err := Constant(nil, Attrs{"value": []float32{1, 2, 3, 4}, "shape": []int{2, 2}})
	if err != nil || !c[0].Shape().Equal(tensor.Shape{2, 2}) {
		t.Fatalf("Constant = %v, %v", c, err)
	}
	if _, err := Constant(nil, Attrs{}); err == nil {
		t.Error("Constant without value accepted")
	}
	if _, err := Constant([]*tensor.Tensor{x}, Attrs{"value": []float32{1}}); err == nil {
		t.Error("Constant with inputs accepted")
	}
}

func TestBatchNormInference(t *testing.T) {
	x := tensor.New(tensor.Shape{1, 2, 1, 2}, []float32{1, 2, 3, 4})
	scale := tensor.FromSlice([]float32{1, 2})
	bias := tensor.FromSlice([]float32{0, 1})
	mean := tensor.FromSlice([]float32{1.5, 3.5})
	variance := tensor.FromSlice([]float32{0.25, 0.25})
	out, err := BatchNormalization([]*tensor.Tensor{x, scale, bias, mean, variance}, Attrs{"epsilon": 0.0})
	if err != nil {
		t.Fatal(err)
	}
	// channel 0: (1-1.5)/0.5=-1, (2-1.5)/0.5=1
	// channel 1: 2*(3-3.5)/0.5+1=-1, 2*(4-3.5)/0.5+1=3
	want := []float32{-1, 1, -1, 3}
	for i, v := range want {
		if math.Abs(float64(out[0].Data()[i]-v)) > 1e-4 {
			t.Fatalf("BatchNorm = %v, want %v", out[0].Data(), want)
		}
	}
	if _, err := BatchNormalization([]*tensor.Tensor{x, scale, bias, mean, tensor.FromSlice([]float32{1})}, nil); err == nil {
		t.Error("bad variance length accepted")
	}
}

func TestLayerNorm(t *testing.T) {
	x := tensor.New(tensor.Shape{2, 4}, []float32{1, 2, 3, 4, 4, 3, 2, 1})
	scale := tensor.FromSlice([]float32{1, 1, 1, 1})
	out, err := LayerNormalization([]*tensor.Tensor{x, scale}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each row normalized: mean 2.5, values symmetric.
	for row := 0; row < 2; row++ {
		var sum float64
		for j := 0; j < 4; j++ {
			sum += float64(out[0].At(row, j))
		}
		if math.Abs(sum) > 1e-4 {
			t.Errorf("row %d mean not 0: %v", row, sum)
		}
	}
	// With bias.
	bias := tensor.FromSlice([]float32{10, 10, 10, 10})
	out, err = LayerNormalization([]*tensor.Tensor{x, scale, bias}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for j := 0; j < 4; j++ {
		sum += float64(out[0].At(0, j))
	}
	if math.Abs(sum-40) > 1e-3 {
		t.Errorf("bias not applied: row sum %v", sum)
	}
}

func TestReduceMean(t *testing.T) {
	x := tensor.New(tensor.Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	out, err := ReduceMean([]*tensor.Tensor{x}, Attrs{"axes": []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{2, 1}) {
		t.Fatalf("shape = %v", out[0].Shape())
	}
	if out[0].Data()[0] != 2 || out[0].Data()[1] != 5 {
		t.Errorf("ReduceMean = %v", out[0].Data())
	}
	// All axes, no keepdims.
	out, err = ReduceMean([]*tensor.Tensor{x}, Attrs{"keepdims": 0})
	if err != nil || out[0].Rank() != 0 {
		t.Fatalf("full reduce = %v, %v", out, err)
	}
	if out[0].Data()[0] != 3.5 {
		t.Errorf("full mean = %v", out[0].Data()[0])
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"Conv", "Relu", "Concat", "MatMul", "Softmax"} {
		if !Supported(name) {
			t.Errorf("%s not registered", name)
		}
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%s): %v", name, err)
		}
	}
	if Supported("NotAnOp") {
		t.Error("bogus op reported supported")
	}
	if _, err := Lookup("NotAnOp"); err == nil {
		t.Error("Lookup of bogus op succeeded")
	}
	names := Names()
	if len(names) < 30 {
		t.Errorf("only %d ops registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names not sorted")
			break
		}
	}
}

func TestAttrsAccessors(t *testing.T) {
	a := Attrs{
		"i":  3,
		"i6": int64(4),
		"f":  2.5,
		"fj": float64(7), // JSON-decoded int
		"s":  "hello",
		"is": []int{1, 2},
		"ij": []any{float64(3), float64(4)},
		"fs": []float32{1.5},
		"fd": []float64{2.5},
		"fa": []any{float64(0.5)},
	}
	if a.Int("i", 0) != 3 || a.Int("i6", 0) != 4 || a.Int("fj", 0) != 7 || a.Int("missing", 9) != 9 {
		t.Error("Int accessor wrong")
	}
	if a.Float("f", 0) != 2.5 || a.Float("i", 0) != 3 || a.Float("missing", 1.5) != 1.5 {
		t.Error("Float accessor wrong")
	}
	if a.Str("s", "") != "hello" || a.Str("missing", "d") != "d" {
		t.Error("Str accessor wrong")
	}
	if got := a.Ints("is", nil); len(got) != 2 || got[1] != 2 {
		t.Error("Ints accessor wrong")
	}
	if got := a.Ints("ij", nil); len(got) != 2 || got[0] != 3 {
		t.Error("Ints []any accessor wrong")
	}
	if got := a.Floats("fs", nil); len(got) != 1 || got[0] != 1.5 {
		t.Error("Floats accessor wrong")
	}
	if got := a.Floats("fd", nil); len(got) != 1 || got[0] != 2.5 {
		t.Error("Floats []float64 accessor wrong")
	}
	if got := a.Floats("fa", nil); len(got) != 1 || got[0] != 0.5 {
		t.Error("Floats []any accessor wrong")
	}
	c := a.Clone()
	c["i"] = 99
	if a.Int("i", 0) != 3 {
		t.Error("Clone did not copy")
	}
	var nilAttrs Attrs
	if nilAttrs.Int("x", 5) != 5 || nilAttrs.Clone() != nil {
		t.Error("nil Attrs misbehaves")
	}
}
