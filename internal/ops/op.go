// Package ops implements the operator kernels executed by the Ramiel
// runtime: convolution, matrix multiplication, activations, normalization,
// pooling and tensor-shape manipulation, in the subset of ONNX semantics the
// evaluation models require. It substitutes for the paper's PyTorch
// backend: every kernel computes real values on internal/tensor data, and
// the heavy kernels honor tensor.IntraOpThreads() — the analogue of
// PyTorch's OpenMP intra-operator parallelism.
package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Attrs carries the attributes of one dataflow-graph node (strides, pads,
// axes, …). Values are ints, floats, strings, []int or []float32, mirroring
// the ONNX attribute kinds we need. A nil Attrs behaves as empty.
type Attrs map[string]any

// Int returns the integer attribute name, or def when absent. It accepts
// int, int64 and float64 storage (the latter appears after JSON round trips).
func (a Attrs) Int(name string, def int) int {
	v, ok := a[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	}
	return def
}

// Float returns the float attribute name, or def when absent.
func (a Attrs) Float(name string, def float64) float64 {
	v, ok := a[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	}
	return def
}

// Str returns the string attribute name, or def when absent.
func (a Attrs) Str(name, def string) string {
	if v, ok := a[name].(string); ok {
		return v
	}
	return def
}

// Ints returns the []int attribute name, or def when absent. JSON decoding
// yields []any of float64, which is converted.
func (a Attrs) Ints(name string, def []int) []int {
	v, ok := a[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case []int:
		return x
	case []int64:
		out := make([]int, len(x))
		for i, e := range x {
			out[i] = int(e)
		}
		return out
	case []any:
		out := make([]int, len(x))
		for i, e := range x {
			switch n := e.(type) {
			case float64:
				out[i] = int(n)
			case int:
				out[i] = n
			default:
				return def
			}
		}
		return out
	}
	return def
}

// Floats returns the []float32 attribute name, or def when absent.
func (a Attrs) Floats(name string, def []float32) []float32 {
	v, ok := a[name]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case []float32:
		return x
	case []float64:
		out := make([]float32, len(x))
		for i, e := range x {
			out[i] = float32(e)
		}
		return out
	case []any:
		out := make([]float32, len(x))
		for i, e := range x {
			n, ok := e.(float64)
			if !ok {
				return def
			}
			out[i] = float32(n)
		}
		return out
	}
	return def
}

// Clone returns a shallow copy of the attribute map (attribute values are
// treated as immutable by convention).
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Kernel evaluates one operator: it consumes the node's input tensors in
// declaration order and returns its outputs. Kernels must not mutate their
// inputs (several clusters may read the same tensor concurrently).
type Kernel func(in []*tensor.Tensor, attrs Attrs) ([]*tensor.Tensor, error)

// AllocKernel is a Kernel that takes the run's tensor allocator and
// allocates every output (and any sizable scratch buffer) through it. A nil
// allocator means plain heap allocation, making AllocKernel a strict
// generalization of Kernel. This is what the registry stores; the executor
// passes its run arena here so steady-state inference recycles intermediate
// buffers instead of growing the GC heap.
//
// Two contracts make arena reuse sound and must hold for every kernel:
// inputs are never mutated, and outputs never alias inputs — each output is
// freshly allocated storage (shape-only ops like Reshape copy). The memory
// planner (internal/memplan) relies on both.
type AllocKernel func(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error)

// onHeap adapts an AllocKernel to the plain Kernel signature, allocating
// from the heap. The exported per-op functions are all onHeap wrappers, so
// existing callers (tests, constant folding, ramiel.Call) are unaffected by
// the allocator plumbing.
func onHeap(k AllocKernel) Kernel {
	return func(in []*tensor.Tensor, attrs Attrs) ([]*tensor.Tensor, error) {
		return k(in, attrs, nil)
	}
}

// argErr builds a uniform operator-argument error.
func argErr(op, format string, args ...any) error {
	return fmt.Errorf("ops: %s: %s", op, fmt.Sprintf(format, args...))
}

// need checks the input arity window [min, max]; max < 0 means unbounded.
func need(op string, in []*tensor.Tensor, min, max int) error {
	if len(in) < min || (max >= 0 && len(in) > max) {
		return argErr(op, "got %d inputs, want between %d and %d", len(in), min, max)
	}
	for i, t := range in {
		if t == nil {
			return argErr(op, "input %d is nil", i)
		}
	}
	return nil
}

// convOutDim computes a single spatial output extent for convolution or
// pooling: floor((in + padBegin + padEnd - kernel)/stride) + 1.
func convOutDim(in, kernel, stride, padBegin, padEnd int) int {
	if stride < 1 {
		stride = 1
	}
	return (in+padBegin+padEnd-kernel)/stride + 1
}

// pads4 normalizes a pads attribute to [top, left, bottom, right]. ONNX
// stores [hBegin, wBegin, hEnd, wEnd]; a nil or short slice means zero.
func pads4(p []int) (top, left, bottom, right int) {
	switch len(p) {
	case 4:
		return p[0], p[1], p[2], p[3]
	case 2:
		return p[0], p[1], p[0], p[1]
	case 1:
		return p[0], p[0], p[0], p[0]
	}
	return 0, 0, 0, 0
}

// strides2 normalizes a strides attribute to (sh, sw), defaulting to 1.
func strides2(s []int) (sh, sw int) {
	switch len(s) {
	case 2:
		return s[0], s[1]
	case 1:
		return s[0], s[0]
	}
	return 1, 1
}
