package ops

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestReluSigmoidTanh(t *testing.T) {
	x := tensor.FromSlice([]float32{-2, -0.5, 0, 0.5, 2})
	out, err := Relu([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0, 0.5, 2}
	for i, v := range want {
		if out[0].Data()[i] != v {
			t.Fatalf("Relu = %v", out[0].Data())
		}
	}
	sig, _ := Sigmoid([]*tensor.Tensor{tensor.Scalar(0)}, nil)
	if math.Abs(float64(sig[0].Data()[0])-0.5) > 1e-6 {
		t.Errorf("Sigmoid(0) = %v", sig[0].Data()[0])
	}
	th, _ := Tanh([]*tensor.Tensor{tensor.Scalar(0)}, nil)
	if th[0].Data()[0] != 0 {
		t.Errorf("Tanh(0) = %v", th[0].Data()[0])
	}
}

func TestLeakyReluClip(t *testing.T) {
	x := tensor.FromSlice([]float32{-10, 10})
	lr, err := LeakyRelu([]*tensor.Tensor{x}, Attrs{"alpha": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(lr[0].Data()[0]+1)) > 1e-6 || lr[0].Data()[1] != 10 {
		t.Errorf("LeakyRelu = %v", lr[0].Data())
	}
	cl, err := Clip([]*tensor.Tensor{x}, Attrs{"min": -1.0, "max": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if cl[0].Data()[0] != -1 || cl[0].Data()[1] != 1 {
		t.Errorf("Clip = %v", cl[0].Data())
	}
}

func TestAddBroadcastChannelBias(t *testing.T) {
	x := tensor.Zeros(2, 3, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	bias := tensor.New(tensor.Shape{1, 3, 1, 1}, []float32{100, 200, 300})
	out, err := Add([]*tensor.Tensor{x, bias}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At(0, 0, 0, 0) != 100 || out[0].At(0, 1, 0, 0) != 204 || out[0].At(1, 2, 1, 1) != 323 {
		t.Errorf("broadcast Add wrong: %v", out[0].Data())
	}
}

func TestBinarySameShapeFastPath(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3})
	b := tensor.FromSlice([]float32{4, 5, 6})
	got, err := Mul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 10, 18}
	for i, v := range want {
		if got[0].Data()[i] != v {
			t.Fatalf("Mul = %v", got[0].Data())
		}
	}
	d, _ := Div([]*tensor.Tensor{a, b}, nil)
	if math.Abs(float64(d[0].Data()[0])-0.25) > 1e-6 {
		t.Errorf("Div = %v", d[0].Data())
	}
	s, _ := Sub([]*tensor.Tensor{a, b}, nil)
	if s[0].Data()[2] != -3 {
		t.Errorf("Sub = %v", s[0].Data())
	}
}

func TestBinaryShapeError(t *testing.T) {
	if _, err := Add([]*tensor.Tensor{tensor.Zeros(3), tensor.Zeros(4)}, nil); err == nil {
		t.Error("incompatible broadcast accepted")
	}
}

func TestPow(t *testing.T) {
	a := tensor.FromSlice([]float32{2, 3})
	b := tensor.Scalar(2)
	out, err := Pow([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data()[0] != 4 || out[0].Data()[1] != 9 {
		t.Errorf("Pow = %v", out[0].Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := tensor.NewRNG(17)
	x := r.RandTensor(4, 7)
	out, err := Softmax([]*tensor.Tensor{x}, Attrs{"axis": -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := out[0].At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxAxis0(t *testing.T) {
	x := tensor.New(tensor.Shape{2, 2}, []float32{0, 0, 0, 0})
	out, err := Softmax([]*tensor.Tensor{x}, Attrs{"axis": 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[0].Data() {
		if v != 0.5 {
			t.Fatalf("uniform softmax axis 0 = %v", out[0].Data())
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large logits must not overflow to NaN.
	x := tensor.FromSlice([]float32{1000, 1001, 1002})
	out, err := Softmax([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out[0].Data() {
		if v != v { // NaN
			t.Fatal("softmax produced NaN on large logits")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("sum = %v", sum)
	}
}

func TestErfNegSqrtExp(t *testing.T) {
	e, _ := Erf([]*tensor.Tensor{tensor.Scalar(0)}, nil)
	if e[0].Data()[0] != 0 {
		t.Errorf("Erf(0) = %v", e[0].Data()[0])
	}
	n, _ := Neg([]*tensor.Tensor{tensor.Scalar(3)}, nil)
	if n[0].Data()[0] != -3 {
		t.Errorf("Neg(3) = %v", n[0].Data()[0])
	}
	s, _ := Sqrt([]*tensor.Tensor{tensor.Scalar(9)}, nil)
	if s[0].Data()[0] != 3 {
		t.Errorf("Sqrt(9) = %v", s[0].Data()[0])
	}
	x, _ := Exp([]*tensor.Tensor{tensor.Scalar(0)}, nil)
	if x[0].Data()[0] != 1 {
		t.Errorf("Exp(0) = %v", x[0].Data()[0])
	}
}

func TestIdentityCopies(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2})
	out, err := Identity([]*tensor.Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out[0].Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Error("Identity aliases its input")
	}
}

// Property: Relu is idempotent.
func TestReluIdempotent(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := tensor.FromSlice(vals)
		once, err := Relu([]*tensor.Tensor{x}, nil)
		if err != nil {
			return false
		}
		twice, err := Relu(once, nil)
		if err != nil {
			return false
		}
		return once[0].Equal(twice[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative for same-shape inputs.
func TestAddCommutative(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		ta := tensor.FromSlice(a[:n])
		tb := tensor.FromSlice(b[:n])
		ab, err1 := Add([]*tensor.Tensor{ta, tb}, nil)
		ba, err2 := Add([]*tensor.Tensor{tb, ta}, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab[0].Equal(ba[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
