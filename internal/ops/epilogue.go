package ops

import (
	"math"

	"repro/internal/kernels"
)

// Writeback-epilogue attributes: the fusion pass (internal/passes) records
// a GEMM-shaped node's absorbed activation under these keys, and the
// Conv/Gemm/MatMul kernels apply it during the packed-C writeback
// (kernels.Epilogue) — the activation costs no extra memory pass.
const (
	AttrEpilogueOp    = "epi_op"
	AttrEpilogueAlpha = "epi_alpha"
	AttrEpilogueMin   = "epi_min"
	AttrEpilogueMax   = "epi_max"
)

// EpilogueAttrs encodes the activation node (opType, attrs) as epilogue
// attributes to merge into a Conv/Gemm/MatMul node, or nil when the
// activation cannot ride a GEMM writeback. Only activations that depend on
// nothing but the finished accumulator qualify.
func EpilogueAttrs(opType string, attrs Attrs) Attrs {
	switch opType {
	case "Relu":
		return Attrs{AttrEpilogueOp: "Relu"}
	case "LeakyRelu":
		return Attrs{AttrEpilogueOp: "LeakyRelu", AttrEpilogueAlpha: attrs.Float("alpha", 0.01)}
	case "Clip":
		return Attrs{
			AttrEpilogueOp:  "Clip",
			AttrEpilogueMin: attrs.Float("min", -math.MaxFloat32),
			AttrEpilogueMax: attrs.Float("max", math.MaxFloat32),
		}
	}
	return nil
}

// epilogueOf decodes a node's fused writeback activation; the zero
// Epilogue (a plain writeback) when none is recorded.
func epilogueOf(attrs Attrs) kernels.Epilogue {
	switch attrs.Str(AttrEpilogueOp, "") {
	case "Relu":
		return kernels.Epilogue{Kind: kernels.EpiRelu}
	case "LeakyRelu":
		return kernels.Epilogue{Kind: kernels.EpiLeakyRelu, Alpha: float32(attrs.Float(AttrEpilogueAlpha, 0.01))}
	case "Clip":
		return kernels.Epilogue{
			Kind: kernels.EpiClip,
			Lo:   float32(attrs.Float(AttrEpilogueMin, -math.MaxFloat32)),
			Hi:   float32(attrs.Float(AttrEpilogueMax, math.MaxFloat32)),
		}
	}
	return kernels.Epilogue{}
}
