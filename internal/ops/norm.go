package ops

import (
	"math"

	"repro/internal/tensor"
)

// BatchNormalization implements inference-mode batch norm over NCHW input:
// y = scale*(x-mean)/sqrt(var+eps) + bias with per-channel statistics.
// Inputs: X, scale, bias, mean, variance.
var BatchNormalization = onHeap(batchNormK)

func batchNormK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("BatchNormalization", in, 5, 5); err != nil {
		return nil, err
	}
	x, scale, bias, mean, variance := in[0], in[1], in[2], in[3], in[4]
	xs := x.Shape()
	if xs.Rank() < 2 {
		return nil, argErr("BatchNormalization", "want rank >= 2 input, got %v", xs)
	}
	c := xs[1]
	for i, p := range []*tensor.Tensor{scale, bias, mean, variance} {
		if p.Numel() != c {
			return nil, argErr("BatchNormalization", "param %d has %d elements, want %d", i+1, p.Numel(), c)
		}
	}
	eps := attrs.Float("epsilon", 1e-5)
	n := xs[0]
	plane := x.Numel() / maxInt(n*c, 1)
	out := tensor.ZerosLikeIn(alc, x)
	xd, od := x.Data(), out.Data()
	sd, bd, md, vd := scale.Data(), bias.Data(), mean.Data(), variance.Data()

	// Precompute per-channel affine parameters: y = a*x + b. The scratch
	// rides the run allocator too and is returned before the kernel exits.
	as := tensor.Alloc(alc, c)
	bs := tensor.Alloc(alc, c)
	defer tensor.Free(alc, as)
	defer tensor.Free(alc, bs)
	for ch := 0; ch < c; ch++ {
		inv := float32(1 / math.Sqrt(float64(vd[ch])+eps))
		as[ch] = sd[ch] * inv
		bs[ch] = bd[ch] - md[ch]*sd[ch]*inv
	}
	tensor.ParallelFor(n*c, 4, func(idx int) {
		ch := idx % c
		a, b := as[ch], bs[ch]
		base := idx * plane
		for i := 0; i < plane; i++ {
			od[base+i] = a*xd[base+i] + b
		}
	})
	return []*tensor.Tensor{out}, nil
}

// LayerNormalization normalizes over the trailing axes starting at
// attribute "axis" (default -1): y = scale*(x-mu)/sqrt(var+eps) + bias.
// Inputs: X, scale, optional bias.
var LayerNormalization = onHeap(layerNormK)

func layerNormK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("LayerNormalization", in, 2, 3); err != nil {
		return nil, err
	}
	x, scale := in[0], in[1]
	var bias *tensor.Tensor
	if len(in) == 3 {
		bias = in[2]
	}
	xs := x.Shape()
	axis := attrs.Int("axis", -1)
	if axis < 0 {
		axis += xs.Rank()
	}
	if axis < 0 || axis >= xs.Rank() {
		return nil, argErr("LayerNormalization", "axis out of range for %v", xs)
	}
	inner := 1
	for d := axis; d < xs.Rank(); d++ {
		inner *= xs[d]
	}
	if scale.Numel() != inner {
		return nil, argErr("LayerNormalization", "scale has %d elements, want %d", scale.Numel(), inner)
	}
	if bias != nil && bias.Numel() != inner {
		return nil, argErr("LayerNormalization", "bias has %d elements, want %d", bias.Numel(), inner)
	}
	eps := attrs.Float("epsilon", 1e-5)
	outer := x.Numel() / maxInt(inner, 1)
	out := tensor.ZerosLikeIn(alc, x)
	xd, od, sd := x.Data(), out.Data(), scale.Data()
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}
	tensor.ParallelFor(outer, 2, func(o int) {
		base := o * inner
		var sum float64
		for i := 0; i < inner; i++ {
			sum += float64(xd[base+i])
		}
		mu := sum / float64(inner)
		var sq float64
		for i := 0; i < inner; i++ {
			d := float64(xd[base+i]) - mu
			sq += d * d
		}
		inv := 1 / math.Sqrt(sq/float64(inner)+eps)
		for i := 0; i < inner; i++ {
			v := float32((float64(xd[base+i]) - mu) * inv)
			v *= sd[i]
			if bd != nil {
				v += bd[i]
			}
			od[base+i] = v
		}
	})
	return []*tensor.Tensor{out}, nil
}

// ReduceMean averages over the axes given by attribute "axes" (default:
// all), keeping reduced dimensions when "keepdims" != 0 (the default).
var ReduceMean = onHeap(reduceMeanK)

func reduceMeanK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("ReduceMean", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	axes := attrs.Ints("axes", nil)
	keep := attrs.Int("keepdims", 1) != 0
	reduce := make([]bool, xs.Rank())
	if len(axes) == 0 {
		for i := range reduce {
			reduce[i] = true
		}
	} else {
		for _, a := range axes {
			if a < 0 {
				a += xs.Rank()
			}
			if a < 0 || a >= xs.Rank() {
				return nil, argErr("ReduceMean", "axis %v out of range for %v", axes, xs)
			}
			reduce[a] = true
		}
	}
	outShape := tensor.Shape{}
	count := 1
	for d, r := range reduce {
		if r {
			count *= xs[d]
			if keep {
				outShape = append(outShape, 1)
			}
		} else {
			outShape = append(outShape, xs[d])
		}
	}
	out := tensor.ZerosIn(alc, outShape...)
	od, xd := out.Data(), x.Data()
	xStrides := xs.Strides()

	// Walk every input element, accumulate into the output cell it maps to.
	outStride := make([]int, xs.Rank())
	acc := 1
	for d := xs.Rank() - 1; d >= 0; d-- {
		if reduce[d] {
			outStride[d] = 0
		} else {
			outStride[d] = acc
			acc *= xs[d]
		}
	}
	sums := make([]float64, out.Numel())
	for i := range xd {
		oi := 0
		rem := i
		for d := 0; d < xs.Rank(); d++ {
			pos := rem / xStrides[d]
			rem %= xStrides[d]
			oi += pos * outStride[d]
		}
		sums[oi] += float64(xd[i])
	}
	if count == 0 {
		count = 1
	}
	for i := range od {
		od[i] = float32(sums[i] / float64(count))
	}
	return []*tensor.Tensor{out}, nil
}
