package ops

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Inception-style mid-network convolution: 192 -> 192 channels, 3x3,
// padded, on a 17x17 map — the Conv shape class serving spends most of its
// time in.
func inceptionConvCase(r *tensor.RNG) (x, w, bias *tensor.Tensor, attrs Attrs) {
	x = r.RandTensor(1, 192, 17, 17)
	w = r.RandTensor(192, 192, 3, 3)
	bias = r.RandTensor(192)
	return x, w, bias, Attrs{"pads": []int{1, 1, 1, 1}}
}

// BenchmarkConvIm2col is the PR's headline Conv benchmark: the im2col +
// packed-GEMM lowering with compile-time prepacked filters and arena
// scratch, exactly the serving-path configuration.
func BenchmarkConvIm2col(b *testing.B) {
	r := tensor.NewRNG(7)
	x, w, bias, attrs := inceptionConvCase(r)
	pp := PrepackWeights("Conv", attrs, []*tensor.Tensor{nil, w, nil})
	if pp == nil {
		b.Fatal("inception conv not prepacked")
	}
	in := []*tensor.Tensor{x, w, bias}
	ar := tensor.NewArena()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := RunPrepacked("Conv", in, attrs, ar, pp)
		if err != nil {
			b.Fatal(err)
		}
		tensor.ReleaseData(ar, out[0])
	}
}

// BenchmarkConvDirect is the pre-PR kernel: the direct 7-loop nest with
// per-element bounds branches, on the same shape.
func BenchmarkConvDirect(b *testing.B) {
	r := tensor.NewRNG(7)
	x, w, bias, attrs := inceptionConvCase(r)
	sh, sw := strides2(attrs.Ints("strides", nil))
	pt, pl, pb2, pr := pads4(attrs.Ints("pads", nil))
	oh := convOutDim(x.Shape()[2], w.Shape()[2], sh, pt, pb2)
	ow := convOutDim(x.Shape()[3], w.Shape()[3], sw, pl, pr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := convDirect(x, w, bias, nil, 1, sh, sw, pt, pl, oh, ow, kernels.Epilogue{}); err != nil {
			b.Fatal(err)
		}
	}
}
