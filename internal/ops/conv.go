package ops

import (
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Conv implements 2-D convolution over NCHW activations with OIHW weights,
// optional bias, symmetric or ONNX-style padding and grouped channels.
//
// GEMM-worthy shapes are lowered to im2col + the blocked GEMM core
// (internal/kernels): per (batch, group) the input plane group is expanded
// into a K×N patch matrix in scratch drawn from the run's allocator (the
// arena during serving, so steady state allocates nothing) and multiplied
// by the filter matrix — prepacked at compile time when the weights are
// graph constants. Degenerate shapes (depthwise and other tiny per-group
// matrices) keep the direct loop, which also serves as the reference
// implementation in tests.
var Conv = onHeap(convK)

func convK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	return convPacked(in, attrs, a, nil)
}

// convGEMMWorthy decides the im2col+GEMM lowering. It must depend only on
// weight-derived dims so the compile-time prepack pass (which cannot see
// activation sizes) makes the same call as the kernel.
func convGEMMWorthy(mPerG, cg, kh, kw int) bool {
	return mPerG >= 2 && cg*kh*kw >= 4
}

// convPacked is the shared kernel body; pw is non-nil (one PackedA per
// group) when the compile-time prepack pass packed constant filters.
func convPacked(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator, pw []*kernels.PackedA) ([]*tensor.Tensor, error) {
	if err := need("Conv", in, 2, 3); err != nil {
		return nil, err
	}
	x, w := in[0], in[1]
	var bias *tensor.Tensor
	if len(in) == 3 {
		bias = in[2]
	}
	xs, ws := x.Shape(), w.Shape()
	if xs.Rank() != 4 || ws.Rank() != 4 {
		return nil, argErr("Conv", "want 4-D input and weight, got %v and %v", xs, ws)
	}
	n, c, h, wd := xs[0], xs[1], xs[2], xs[3]
	m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
	groups := attrs.Int("group", 1)
	if groups < 1 {
		groups = 1
	}
	if c != cg*groups {
		return nil, argErr("Conv", "channel mismatch: input C=%d, weight C/g=%d, groups=%d", c, cg, groups)
	}
	if m%groups != 0 {
		return nil, argErr("Conv", "output channels %d not divisible by groups %d", m, groups)
	}
	if bias != nil && bias.Numel() != m {
		return nil, argErr("Conv", "bias has %d elements, want %d", bias.Numel(), m)
	}
	sh, sw := strides2(attrs.Ints("strides", nil))
	pt, pl, pb, pr := pads4(attrs.Ints("pads", nil))
	oh := convOutDim(h, kh, sh, pt, pb)
	ow := convOutDim(wd, kw, sw, pl, pr)
	if oh <= 0 || ow <= 0 {
		return nil, argErr("Conv", "non-positive output size %dx%d from input %v kernel %dx%d", oh, ow, xs, kh, kw)
	}
	// Fused writeback activation (passes.AttachEpilogues): applied inside
	// the GEMM writeback while each C tile is cache-hot, so Conv→BN→Relu
	// is exactly one kernel invocation after BN folding.
	epi := epilogueOf(attrs)
	mPerG := m / groups
	if !convGEMMWorthy(mPerG, cg, kh, kw) {
		return convDirect(x, w, bias, a, groups, sh, sw, pt, pl, oh, ow, epi)
	}

	// The blocked kernel accumulates (C +=), so the output must be seeded:
	// with the bias when there is one — riding along with no extra pass —
	// which also means every element is written here and the zero fill of
	// a fresh/recycled buffer can be skipped entirely.
	var out *tensor.Tensor
	if bias != nil {
		out = tensor.New(tensor.Shape{n, m, oh, ow}, tensor.AllocUninit(a, n*m*oh*ow))
	} else {
		out = tensor.ZerosIn(a, n, m, oh, ow)
	}
	xd, wdata, od := x.Data(), w.Data(), out.Data()
	colK := cg * kh * kw
	colN := oh * ow

	if bias != nil {
		bd := bias.Data()
		for idx := 0; idx < n*m; idx++ {
			bv := bd[idx%m]
			row := od[idx*colN : idx*colN+colN]
			for j := range row {
				row[j] = bv
			}
		}
	}

	// A 1x1 stride-1 unpadded kernel needs no patch expansion: the plane
	// group itself is already the cg x (h*w) matrix.
	needCol := !(kh == 1 && kw == 1 && sh == 1 && sw == 1 && pt == 0 && pl == 0 && pb == 0 && pr == 0)
	var col []float32
	if needCol {
		col = tensor.AllocUninit(a, colK*colN)
	}
	for b := 0; b < n; b++ {
		for g := 0; g < groups; g++ {
			colMat := xd[(b*c+g*cg)*h*wd : (b*c+(g+1)*cg)*h*wd]
			if needCol {
				kernels.Im2col(col, colMat, cg, h, wd, kh, kw, sh, sw, pt, pl, oh, ow)
				colMat = col
			}
			cSlice := od[(b*m+g*mPerG)*colN : (b*m+(g+1)*mPerG)*colN]
			if pw != nil {
				kernels.GemmPackedAEpi(pw[g], colN, colMat, colN, false, cSlice, a, epi)
			} else {
				wg := wdata[g*mPerG*colK : (g+1)*mPerG*colK]
				kernels.GemmEpi(1, mPerG, colN, colK, wg, colK, false, colMat, colN, false, cSlice, a, epi)
			}
		}
	}
	tensor.Free(a, col)
	return []*tensor.Tensor{out}, nil
}

// convDirect is the retained direct 7-loop convolution: the reference the
// equivalence tests check the GEMM lowering against, and the execution
// path for shapes where a per-group GEMM would degenerate (depthwise).
// Work is parallelized across (batch, outChannel) pairs, the same axis
// PyTorch's OpenMP loops use.
func convDirect(x, w, bias *tensor.Tensor, a tensor.Allocator, groups, sh, sw, pt, pl, oh, ow int, epi kernels.Epilogue) ([]*tensor.Tensor, error) {
	xs, ws := x.Shape(), w.Shape()
	n, c, h, wd := xs[0], xs[1], xs[2], xs[3]
	m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
	out := tensor.ZerosIn(a, n, m, oh, ow)
	xd, wdata, od := x.Data(), w.Data(), out.Data()
	mPerG := m / groups

	tensor.ParallelFor(n*m, 1, func(idx int) {
		b := idx / m
		oc := idx % m
		g := oc / mPerG
		cLo := g * cg
		var biasV float32
		if bias != nil {
			biasV = bias.Data()[oc]
		}
		wBase := oc * cg * kh * kw
		oBase := (b*m + oc) * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*sh - pt
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*sw - pl
				acc := biasV
				for ci := 0; ci < cg; ci++ {
					xBase := (b*c + cLo + ci) * h * wd
					wc := wBase + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowX := xBase + iy*wd
						rowW := wc + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += xd[rowX+ix] * wdata[rowW+kx]
						}
					}
				}
				od[oBase+oy*ow+ox] = acc
			}
		}
		// One cache-hot sweep per output plane; a no-op when unfused, so
		// the accumulator store above stays free of per-element dispatch.
		epi.Apply(od[oBase : oBase+oh*ow])
	})
	return []*tensor.Tensor{out}, nil
}

// poolKind selects max or average pooling in pool2d.
type poolKind int

const (
	poolMax poolKind = iota
	poolAvg
)

func pool2d(op string, kind poolKind, in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need(op, in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	if xs.Rank() != 4 {
		return nil, argErr(op, "want 4-D input, got %v", xs)
	}
	ks := attrs.Ints("kernel_shape", nil)
	if len(ks) != 2 {
		return nil, argErr(op, "kernel_shape must have 2 entries, got %v", ks)
	}
	kh, kw := ks[0], ks[1]
	sh, sw := strides2(attrs.Ints("strides", []int{kh, kw}))
	pt, pl, pb, pr := pads4(attrs.Ints("pads", nil))
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh := convOutDim(h, kh, sh, pt, pb)
	ow := convOutDim(w, kw, sw, pl, pr)
	if oh <= 0 || ow <= 0 {
		return nil, argErr(op, "non-positive output size %dx%d", oh, ow)
	}
	countIncludePad := attrs.Int("count_include_pad", 0) != 0

	out := tensor.ZerosIn(a, n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n*c, 1, func(idx int) {
		plane := idx * h * w
		oBase := idx * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*sh - pt
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*sw - pl
				switch kind {
				case poolMax:
					best := float32(negInf)
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							if v := xd[plane+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					od[oBase+oy*ow+ox] = best
				case poolAvg:
					var sum float32
					cnt := 0
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[plane+iy*w+ix]
							cnt++
						}
					}
					div := cnt
					if countIncludePad {
						div = kh * kw
					}
					if div == 0 {
						div = 1
					}
					od[oBase+oy*ow+ox] = sum / float32(div)
				}
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

const negInf = float32(-3.4028234663852886e38)

// MaxPool implements 2-D max pooling.
var MaxPool = onHeap(maxPoolK)

func maxPoolK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	return pool2d("MaxPool", poolMax, in, attrs, a)
}

// AveragePool implements 2-D average pooling.
var AveragePool = onHeap(avgPoolK)

func avgPoolK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	return pool2d("AveragePool", poolAvg, in, attrs, a)
}

// GlobalAveragePool averages each channel plane to 1x1.
var GlobalAveragePool = onHeap(globalAvgPoolK)

func globalAvgPoolK(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("GlobalAveragePool", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	if xs.Rank() != 4 {
		return nil, argErr("GlobalAveragePool", "want 4-D input, got %v", xs)
	}
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	out := tensor.ZerosIn(a, n, c, 1, 1)
	xd, od := x.Data(), out.Data()
	plane := h * w
	if plane == 0 {
		return nil, argErr("GlobalAveragePool", "empty spatial plane in %v", xs)
	}
	tensor.ParallelFor(n*c, 8, func(idx int) {
		var sum float32
		base := idx * plane
		for i := 0; i < plane; i++ {
			sum += xd[base+i]
		}
		od[idx] = sum / float32(plane)
	})
	return []*tensor.Tensor{out}, nil
}
