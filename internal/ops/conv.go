package ops

import (
	"repro/internal/tensor"
)

// Conv implements 2-D convolution over NCHW activations with OIHW weights,
// optional bias, symmetric or ONNX-style padding and grouped channels.
// Output rows are distributed across intra-op worker goroutines.
var Conv = onHeap(convK)

func convK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Conv", in, 2, 3); err != nil {
		return nil, err
	}
	x, w := in[0], in[1]
	var bias *tensor.Tensor
	if len(in) == 3 {
		bias = in[2]
	}
	xs, ws := x.Shape(), w.Shape()
	if xs.Rank() != 4 || ws.Rank() != 4 {
		return nil, argErr("Conv", "want 4-D input and weight, got %v and %v", xs, ws)
	}
	n, c, h, wd := xs[0], xs[1], xs[2], xs[3]
	m, cg, kh, kw := ws[0], ws[1], ws[2], ws[3]
	groups := attrs.Int("group", 1)
	if groups < 1 {
		groups = 1
	}
	if c != cg*groups {
		return nil, argErr("Conv", "channel mismatch: input C=%d, weight C/g=%d, groups=%d", c, cg, groups)
	}
	if m%groups != 0 {
		return nil, argErr("Conv", "output channels %d not divisible by groups %d", m, groups)
	}
	if bias != nil && bias.Numel() != m {
		return nil, argErr("Conv", "bias has %d elements, want %d", bias.Numel(), m)
	}
	sh, sw := strides2(attrs.Ints("strides", nil))
	pt, pl, pb, pr := pads4(attrs.Ints("pads", nil))
	oh := convOutDim(h, kh, sh, pt, pb)
	ow := convOutDim(wd, kw, sw, pl, pr)
	if oh <= 0 || ow <= 0 {
		return nil, argErr("Conv", "non-positive output size %dx%d from input %v kernel %dx%d", oh, ow, xs, kh, kw)
	}

	out := tensor.ZerosIn(a, n, m, oh, ow)
	xd, wdata, od := x.Data(), w.Data(), out.Data()
	mPerG := m / groups

	// Parallelize across (batch, outChannel) pairs: the natural task grain
	// for CNN inference and the same axis PyTorch's OpenMP loops use.
	tensor.ParallelFor(n*m, 1, func(idx int) {
		b := idx / m
		oc := idx % m
		g := oc / mPerG
		cLo := g * cg
		var biasV float32
		if bias != nil {
			biasV = bias.Data()[oc]
		}
		wBase := oc * cg * kh * kw
		oBase := (b*m + oc) * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*sh - pt
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*sw - pl
				acc := biasV
				for ci := 0; ci < cg; ci++ {
					xBase := (b*c + cLo + ci) * h * wd
					wc := wBase + ci*kh*kw
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowX := xBase + iy*wd
						rowW := wc + ky*kw
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += xd[rowX+ix] * wdata[rowW+kx]
						}
					}
				}
				od[oBase+oy*ow+ox] = acc
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

// poolKind selects max or average pooling in pool2d.
type poolKind int

const (
	poolMax poolKind = iota
	poolAvg
)

func pool2d(op string, kind poolKind, in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need(op, in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	if xs.Rank() != 4 {
		return nil, argErr(op, "want 4-D input, got %v", xs)
	}
	ks := attrs.Ints("kernel_shape", nil)
	if len(ks) != 2 {
		return nil, argErr(op, "kernel_shape must have 2 entries, got %v", ks)
	}
	kh, kw := ks[0], ks[1]
	sh, sw := strides2(attrs.Ints("strides", []int{kh, kw}))
	pt, pl, pb, pr := pads4(attrs.Ints("pads", nil))
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	oh := convOutDim(h, kh, sh, pt, pb)
	ow := convOutDim(w, kw, sw, pl, pr)
	if oh <= 0 || ow <= 0 {
		return nil, argErr(op, "non-positive output size %dx%d", oh, ow)
	}
	countIncludePad := attrs.Int("count_include_pad", 0) != 0

	out := tensor.ZerosIn(a, n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(n*c, 1, func(idx int) {
		plane := idx * h * w
		oBase := idx * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*sh - pt
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*sw - pl
				switch kind {
				case poolMax:
					best := float32(negInf)
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							if v := xd[plane+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					od[oBase+oy*ow+ox] = best
				case poolAvg:
					var sum float32
					cnt := 0
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += xd[plane+iy*w+ix]
							cnt++
						}
					}
					div := cnt
					if countIncludePad {
						div = kh * kw
					}
					if div == 0 {
						div = 1
					}
					od[oBase+oy*ow+ox] = sum / float32(div)
				}
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

const negInf = float32(-3.4028234663852886e38)

// MaxPool implements 2-D max pooling.
var MaxPool = onHeap(maxPoolK)

func maxPoolK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	return pool2d("MaxPool", poolMax, in, attrs, a)
}

// AveragePool implements 2-D average pooling.
var AveragePool = onHeap(avgPoolK)

func avgPoolK(in []*tensor.Tensor, attrs Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	return pool2d("AveragePool", poolAvg, in, attrs, a)
}

// GlobalAveragePool averages each channel plane to 1x1.
var GlobalAveragePool = onHeap(globalAvgPoolK)

func globalAvgPoolK(in []*tensor.Tensor, _ Attrs, a tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("GlobalAveragePool", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	xs := x.Shape()
	if xs.Rank() != 4 {
		return nil, argErr("GlobalAveragePool", "want 4-D input, got %v", xs)
	}
	n, c, h, w := xs[0], xs[1], xs[2], xs[3]
	out := tensor.ZerosIn(a, n, c, 1, 1)
	xd, od := x.Data(), out.Data()
	plane := h * w
	if plane == 0 {
		return nil, argErr("GlobalAveragePool", "empty spatial plane in %v", xs)
	}
	tensor.ParallelFor(n*c, 8, func(idx int) {
		var sum float32
		base := idx * plane
		for i := 0; i < plane; i++ {
			sum += xd[base+i]
		}
		od[idx] = sum / float32(plane)
	})
	return []*tensor.Tensor{out}, nil
}
