package ops

import (
	"testing"

	"repro/internal/tensor"
)

// Devirtualization micro-benchmarks: the specialized slice loops
// (BenchmarkReluDirect, BenchmarkAddDirect, …) against the retained
// function-pointer builders (…Indirect) they replaced, on a serving-sized
// activation map. The Indirect forms are the "before" in the PR that
// removed per-element func(float32) float32 dispatch from the hot path.

const benchElems = 1 << 16 // 256 KiB tensor: memory-bound, like real glue ops

var (
	reluIndirectK = unary("Relu", func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	addIndirectK = binary("Add", func(a, b float32) float32 { return a + b })
	mulIndirectK = binary("Mul", func(a, b float32) float32 { return a * b })
	subIndirectK = binary("Sub", func(a, b float32) float32 { return a - b })
)

func benchUnary(b *testing.B, k AllocKernel) {
	b.Helper()
	r := tensor.NewRNG(1)
	x := r.RandTensor(benchElems)
	in := []*tensor.Tensor{x}
	b.SetBytes(4 * benchElems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k(in, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBinary(b *testing.B, k AllocKernel) {
	b.Helper()
	r := tensor.NewRNG(2)
	x := r.RandTensor(benchElems)
	y := r.RandTensor(benchElems)
	in := []*tensor.Tensor{x, y}
	b.SetBytes(4 * benchElems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k(in, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReluDirect(b *testing.B)   { benchUnary(b, reluK) }
func BenchmarkReluIndirect(b *testing.B) { benchUnary(b, reluIndirectK) }
func BenchmarkAddDirect(b *testing.B)    { benchBinary(b, addK) }
func BenchmarkAddIndirect(b *testing.B)  { benchBinary(b, addIndirectK) }
func BenchmarkMulDirect(b *testing.B)    { benchBinary(b, mulK) }
func BenchmarkMulIndirect(b *testing.B)  { benchBinary(b, mulIndirectK) }
func BenchmarkSubDirect(b *testing.B)    { benchBinary(b, subK) }
func BenchmarkSubIndirect(b *testing.B)  { benchBinary(b, subIndirectK) }

// BenchmarkFusedElementwiseChain measures a four-stage activation chain
// (Add→Relu→Mul(scalar)→Clip) as one FusedElementwise invocation against
// the same chain as four registry kernel calls — the per-chain win the
// graph fusion pass banks every time it collapses a chain.
func BenchmarkFusedElementwiseChain(b *testing.B) {
	r := tensor.NewRNG(3)
	x := r.RandTensor(benchElems)
	same := r.RandTensor(benchElems)
	in := []*tensor.Tensor{x, same}
	attrs := FusedStageAttrs(nil, "Add", nil, 1, false)
	attrs = FusedStageAttrs(attrs, "Relu", nil, -1, false)
	attrs = FusedStageAttrs(attrs, "Mul", Attrs{}, 2, false)
	in = append(in, tensor.Scalar(0.5))
	attrs = FusedStageAttrs(attrs, "Clip", Attrs{"min": -1.0, "max": 1.0}, -1, false)
	b.SetBytes(4 * benchElems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusedElementwiseK(in, attrs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnfusedElementwiseChain(b *testing.B) {
	r := tensor.NewRNG(3)
	x := r.RandTensor(benchElems)
	same := r.RandTensor(benchElems)
	half := tensor.Scalar(0.5)
	clipAttrs := Attrs{"min": -1.0, "max": 1.0}
	b.SetBytes(4 * benchElems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := addK([]*tensor.Tensor{x, same}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if v, err = reluK(v, nil, nil); err != nil {
			b.Fatal(err)
		}
		if v, err = mulK([]*tensor.Tensor{v[0], half}, nil, nil); err != nil {
			b.Fatal(err)
		}
		if _, err = clipK(v, clipAttrs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
