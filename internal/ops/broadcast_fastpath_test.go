package ops

import (
	"testing"

	"repro/internal/tensor"
)

// TestBinaryFastPathsMatchStridedReference cross-checks every specialized
// broadcast sweep in binaryFast against the retained function-pointer
// builder (binary), which always walks the generic stride path for
// non-identical shapes — the regression net for the scalar-broadcast and
// mixed-rank fast paths.
func TestBinaryFastPathsMatchStridedReference(t *testing.T) {
	r := tensor.NewRNG(19)
	shapes := []struct {
		name string
		a, b tensor.Shape
	}{
		{"same", tensor.Shape{2, 3, 4}, tensor.Shape{2, 3, 4}},
		{"scalar-rank0", tensor.Shape{2, 3, 4}, tensor.Shape{}},
		{"scalar-rank1", tensor.Shape{2, 3, 4}, tensor.Shape{1}},
		{"scalar-left", tensor.Shape{1}, tensor.Shape{5, 7}},
		{"scalar-both", tensor.Shape{1}, tensor.Shape{}},
		{"mixed-rank-noexpand", tensor.Shape{1, 2, 3}, tensor.Shape{2, 3}},
		{"mixed-rank-noexpand-left", tensor.Shape{2, 3}, tensor.Shape{1, 1, 2, 3}},
		{"channel-bias", tensor.Shape{2, 3, 4, 4}, tensor.Shape{1, 3, 1, 1}},
		{"row-bias", tensor.Shape{5, 6}, tensor.Shape{6}},
		{"outer-product", tensor.Shape{4, 1}, tensor.Shape{1, 5}},
		{"scalar-highrank", tensor.Shape{2, 3}, tensor.Shape{1, 1, 1}},
	}
	specialized := map[string]AllocKernel{"Add": addK, "Sub": subK, "Mul": mulK, "Div": divK}
	reference := map[string]AllocKernel{
		"Add": binary("Add", func(a, b float32) float32 { return a + b }),
		"Sub": binary("Sub", func(a, b float32) float32 { return a - b }),
		"Mul": binary("Mul", func(a, b float32) float32 { return a * b }),
		"Div": binary("Div", func(a, b float32) float32 { return a / b }),
	}
	for _, sh := range shapes {
		a := r.RandTensor(sh.a...)
		b := r.RandTensor(sh.b...)
		for op, fast := range specialized {
			want, err := reference[op]([]*tensor.Tensor{a, b}, nil, nil)
			if err != nil {
				t.Fatalf("%s %s reference: %v", sh.name, op, err)
			}
			got, err := fast([]*tensor.Tensor{a, b}, nil, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", sh.name, op, err)
			}
			if !got[0].Shape().Equal(want[0].Shape()) {
				t.Errorf("%s %s: shape %v, want %v", sh.name, op, got[0].Shape(), want[0].Shape())
				continue
			}
			if !got[0].AllClose(want[0], 1e-6, 1e-7) {
				t.Errorf("%s %s: fast path diverges from strided reference (max diff %v)",
					sh.name, op, got[0].MaxAbsDiff(want[0]))
			}
		}
	}
}

// TestBinaryFastPathShapeMetadata pins the broadcast result shapes of the
// fast paths — numel-equality alone must not flatten rank.
func TestBinaryFastPathShapeMetadata(t *testing.T) {
	a := tensor.Zeros(2, 3)
	b := tensor.Zeros(1, 2, 3)
	out, err := Add([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{1, 2, 3}) {
		t.Errorf("mixed-rank Add shape = %v, want [1 2 3]", out[0].Shape())
	}
	s := tensor.New(tensor.Shape{1, 1, 1}, []float32{2})
	out2, err := Mul([]*tensor.Tensor{a, s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out2[0].Shape().Equal(tensor.Shape{1, 2, 3}) {
		t.Errorf("high-rank scalar Mul shape = %v, want [1 2 3]", out2[0].Shape())
	}
}

// TestSubDivScalarOrientation guards the non-commutative scalar sweeps.
func TestSubDivScalarOrientation(t *testing.T) {
	v := tensor.FromSlice([]float32{4, 8})
	s := tensor.Scalar(2)
	sub, _ := Sub([]*tensor.Tensor{v, s}, nil)
	if sub[0].Data()[0] != 2 || sub[0].Data()[1] != 6 {
		t.Errorf("v-s = %v", sub[0].Data())
	}
	rsub, _ := Sub([]*tensor.Tensor{s, v}, nil)
	if rsub[0].Data()[0] != -2 || rsub[0].Data()[1] != -6 {
		t.Errorf("s-v = %v", rsub[0].Data())
	}
	div, _ := Div([]*tensor.Tensor{v, s}, nil)
	if div[0].Data()[0] != 2 || div[0].Data()[1] != 4 {
		t.Errorf("v/s = %v", div[0].Data())
	}
	rdiv, _ := Div([]*tensor.Tensor{s, v}, nil)
	if rdiv[0].Data()[0] != 0.5 || rdiv[0].Data()[1] != 0.25 {
		t.Errorf("s/v = %v", rdiv[0].Data())
	}
}
