package ops

import (
	"repro/internal/tensor"
)

// ConcatOp joins its inputs along attribute "axis".
var ConcatOp = onHeap(concatK)

func concatK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Concat", in, 1, -1); err != nil {
		return nil, err
	}
	axis := attrs.Int("axis", 1)
	shapes := make([]tensor.Shape, len(in))
	for i, t := range in {
		shapes[i] = t.Shape()
	}
	outShape, err := tensor.Concat(axis, shapes...)
	if err != nil {
		return nil, argErr("Concat", "%v", err)
	}
	if axis < 0 {
		axis += outShape.Rank()
	}
	out := tensor.ZerosIn(alc, outShape...)
	od := out.Data()

	outer := 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	inner := 1
	for d := axis + 1; d < outShape.Rank(); d++ {
		inner *= outShape[d]
	}
	// For each outer slab, copy each input's contiguous (axisLen*inner) block.
	dst := 0
	for o := 0; o < outer; o++ {
		for _, t := range in {
			blk := t.Shape()[axis] * inner
			src := o * blk
			copy(od[dst:dst+blk], t.Data()[src:src+blk])
			dst += blk
		}
	}
	return []*tensor.Tensor{out}, nil
}

// Reshape implements ONNX Reshape: input 0 is the data, input 1 a rank-1
// tensor holding the target dims (with -1 inference and 0 meaning "copy
// input dim"). The attribute form "shape" is also accepted for convenience.
var Reshape = onHeap(reshapeK)

func reshapeK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Reshape", in, 1, 2); err != nil {
		return nil, err
	}
	x := in[0]
	var dims []int
	if len(in) == 2 {
		sd := in[1].Data()
		dims = make([]int, len(sd))
		for i, v := range sd {
			dims[i] = int(v)
		}
	} else if s := attrs.Ints("shape", nil); s != nil {
		dims = append([]int(nil), s...)
	} else {
		return nil, argErr("Reshape", "no shape input or attribute")
	}
	for i, d := range dims {
		if d == 0 { // ONNX: copy the corresponding input dimension
			if i >= x.Rank() {
				return nil, argErr("Reshape", "dim 0 at position %d exceeds input rank %d", i, x.Rank())
			}
			dims[i] = x.Shape()[i]
		}
	}
	r, err := x.CloneIn(alc).Reshape(dims...)
	if err != nil {
		return nil, argErr("Reshape", "%v", err)
	}
	return []*tensor.Tensor{r}, nil
}

// Flatten collapses dimensions into a 2-D matrix at attribute "axis"
// (default 1): [d0*…*d(axis-1), d(axis)*…*dn].
var Flatten = onHeap(flattenK)

func flattenK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Flatten", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	axis := attrs.Int("axis", 1)
	if axis < 0 {
		axis += x.Rank()
	}
	if axis < 0 || axis > x.Rank() {
		return nil, argErr("Flatten", "axis %d out of range for %v", axis, x.Shape())
	}
	rows := 1
	for d := 0; d < axis; d++ {
		rows *= x.Shape()[d]
	}
	cols := x.Numel() / maxInt(rows, 1)
	r, err := x.CloneIn(alc).Reshape(rows, cols)
	if err != nil {
		return nil, argErr("Flatten", "%v", err)
	}
	return []*tensor.Tensor{r}, nil
}

// Transpose permutes dimensions per attribute "perm" (default: reverse).
var Transpose = onHeap(transposeK)

func transposeK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Transpose", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	rank := x.Rank()
	perm := attrs.Ints("perm", nil)
	if perm == nil {
		perm = make([]int, rank)
		for i := range perm {
			perm[i] = rank - 1 - i
		}
	}
	if len(perm) != rank {
		return nil, argErr("Transpose", "perm %v does not match rank %d", perm, rank)
	}
	seen := make([]bool, rank)
	outShape := make(tensor.Shape, rank)
	for i, p := range perm {
		if p < 0 || p >= rank || seen[p] {
			return nil, argErr("Transpose", "invalid perm %v", perm)
		}
		seen[p] = true
		outShape[i] = x.Shape()[p]
	}
	out := tensor.ZerosIn(alc, outShape...)
	xd, od := x.Data(), out.Data()
	inStrides := x.Shape().Strides()
	outStrides := outShape.Strides()
	n := len(od)
	tensor.ParallelRange(n, 2048, func(lo, hi int) {
		idx := make([]int, rank)
		for i := lo; i < hi; i++ {
			rem := i
			for d := 0; d < rank; d++ {
				idx[d] = rem / outStrides[d]
				rem %= outStrides[d]
			}
			src := 0
			for d := 0; d < rank; d++ {
				src += idx[d] * inStrides[perm[d]]
			}
			od[i] = xd[src]
		}
	})
	return []*tensor.Tensor{out}, nil
}

// Slice extracts a sub-tensor using attributes "starts", "ends" and
// optional "axes" (ONNX opset-1 attribute form). Negative indices count
// from the end; ends are clamped.
var Slice = onHeap(sliceK)

func sliceK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Slice", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	starts := attrs.Ints("starts", nil)
	ends := attrs.Ints("ends", nil)
	if starts == nil || ends == nil || len(starts) != len(ends) {
		return nil, argErr("Slice", "starts/ends missing or mismatched")
	}
	axes := attrs.Ints("axes", nil)
	if axes == nil {
		axes = make([]int, len(starts))
		for i := range axes {
			axes[i] = i
		}
	}
	if len(axes) != len(starts) {
		return nil, argErr("Slice", "axes length mismatch")
	}
	rank := x.Rank()
	lo := make([]int, rank)
	hi := make([]int, rank)
	for d := 0; d < rank; d++ {
		hi[d] = x.Shape()[d]
	}
	for i, a := range axes {
		if a < 0 {
			a += rank
		}
		if a < 0 || a >= rank {
			return nil, argErr("Slice", "axis %d out of range", axes[i])
		}
		dim := x.Shape()[a]
		s, e := starts[i], ends[i]
		if s < 0 {
			s += dim
		}
		if e < 0 {
			e += dim
		}
		s = clamp(s, 0, dim)
		e = clamp(e, 0, dim)
		if e < s {
			e = s
		}
		lo[a], hi[a] = s, e
	}
	outShape := make(tensor.Shape, rank)
	for d := range outShape {
		outShape[d] = hi[d] - lo[d]
	}
	out := tensor.ZerosIn(alc, outShape...)
	od, xd := out.Data(), x.Data()
	inStrides := x.Shape().Strides()
	outStrides := outShape.Strides()
	n := out.Numel()
	for i := 0; i < n; i++ {
		rem := i
		src := 0
		for d := 0; d < rank; d++ {
			pos := rem / outStrides[d]
			rem %= outStrides[d]
			src += (pos + lo[d]) * inStrides[d]
		}
		od[i] = xd[src]
	}
	return []*tensor.Tensor{out}, nil
}

// Gather selects entries along attribute "axis" (default 0) using input 1
// as the (float-encoded) index tensor.
var Gather = onHeap(gatherK)

func gatherK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Gather", in, 2, 2); err != nil {
		return nil, err
	}
	x, indices := in[0], in[1]
	axis := attrs.Int("axis", 0)
	rank := x.Rank()
	if axis < 0 {
		axis += rank
	}
	if axis < 0 || axis >= rank {
		return nil, argErr("Gather", "axis %d out of range for %v", axis, x.Shape())
	}
	axisLen := x.Shape()[axis]
	outShape := tensor.Shape{}
	outShape = append(outShape, x.Shape()[:axis]...)
	outShape = append(outShape, indices.Shape()...)
	outShape = append(outShape, x.Shape()[axis+1:]...)
	out := tensor.ZerosIn(alc, outShape...)

	outer := 1
	for d := 0; d < axis; d++ {
		outer *= x.Shape()[d]
	}
	inner := 1
	for d := axis + 1; d < rank; d++ {
		inner *= x.Shape()[d]
	}
	xd, od, idxD := x.Data(), out.Data(), indices.Data()
	nIdx := indices.Numel()
	for o := 0; o < outer; o++ {
		for ii := 0; ii < nIdx; ii++ {
			idx := int(idxD[ii])
			if idx < 0 {
				idx += axisLen
			}
			if idx < 0 || idx >= axisLen {
				return nil, argErr("Gather", "index %d out of range [0,%d)", idx, axisLen)
			}
			src := (o*axisLen + idx) * inner
			dst := (o*nIdx + ii) * inner
			copy(od[dst:dst+inner], xd[src:src+inner])
		}
	}
	return []*tensor.Tensor{out}, nil
}

// Split divides input 0 along attribute "axis" into equal parts (attribute
// "num" or per-part "split" sizes) and returns one output per part.
var Split = onHeap(splitK)

func splitK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Split", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	axis := attrs.Int("axis", 0)
	if axis < 0 {
		axis += x.Rank()
	}
	if axis < 0 || axis >= x.Rank() {
		return nil, argErr("Split", "axis out of range for %v", x.Shape())
	}
	axisLen := x.Shape()[axis]
	sizes := attrs.Ints("split", nil)
	if sizes == nil {
		num := attrs.Int("num", 2)
		if num <= 0 || axisLen%num != 0 {
			return nil, argErr("Split", "cannot split %d into %d equal parts", axisLen, num)
		}
		sizes = make([]int, num)
		for i := range sizes {
			sizes[i] = axisLen / num
		}
	}
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, argErr("Split", "non-positive part size %v", sizes)
		}
		total += s
	}
	if total != axisLen {
		return nil, argErr("Split", "sizes %v sum to %d, want %d", sizes, total, axisLen)
	}

	outer := 1
	for d := 0; d < axis; d++ {
		outer *= x.Shape()[d]
	}
	inner := 1
	for d := axis + 1; d < x.Rank(); d++ {
		inner *= x.Shape()[d]
	}
	xd := x.Data()
	outs := make([]*tensor.Tensor, len(sizes))
	offset := 0
	for p, sz := range sizes {
		shape := x.Shape().Clone()
		shape[axis] = sz
		t := tensor.ZerosIn(alc, shape...)
		td := t.Data()
		for o := 0; o < outer; o++ {
			src := (o*axisLen + offset) * inner
			dst := o * sz * inner
			copy(td[dst:dst+sz*inner], xd[src:src+sz*inner])
		}
		outs[p] = t
		offset += sz
	}
	return outs, nil
}

// Unsqueeze inserts size-1 dimensions at the attribute "axes" positions.
var Unsqueeze = onHeap(unsqueezeK)

func unsqueezeK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Unsqueeze", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	axes := attrs.Ints("axes", nil)
	outRank := x.Rank() + len(axes)
	insert := make([]bool, outRank)
	for _, a := range axes {
		if a < 0 {
			a += outRank
		}
		if a < 0 || a >= outRank || insert[a] {
			return nil, argErr("Unsqueeze", "invalid axes %v", axes)
		}
		insert[a] = true
	}
	shape := make([]int, 0, outRank)
	src := 0
	for d := 0; d < outRank; d++ {
		if insert[d] {
			shape = append(shape, 1)
		} else {
			shape = append(shape, x.Shape()[src])
			src++
		}
	}
	r, err := x.CloneIn(alc).Reshape(shape...)
	if err != nil {
		return nil, argErr("Unsqueeze", "%v", err)
	}
	return []*tensor.Tensor{r}, nil
}

// Squeeze removes size-1 dimensions, either those in attribute "axes" or
// all of them when absent.
var Squeeze = onHeap(squeezeK)

func squeezeK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Squeeze", in, 1, 1); err != nil {
		return nil, err
	}
	x := in[0]
	axes := attrs.Ints("axes", nil)
	remove := make([]bool, x.Rank())
	if axes == nil {
		for d, e := range x.Shape() {
			remove[d] = e == 1
		}
	} else {
		for _, a := range axes {
			if a < 0 {
				a += x.Rank()
			}
			if a < 0 || a >= x.Rank() || x.Shape()[a] != 1 {
				return nil, argErr("Squeeze", "axis %v is not a unit dimension of %v", axes, x.Shape())
			}
			remove[a] = true
		}
	}
	shape := []int{}
	for d, e := range x.Shape() {
		if !remove[d] {
			shape = append(shape, e)
		}
	}
	r, err := x.CloneIn(alc).Reshape(shape...)
	if err != nil {
		return nil, argErr("Squeeze", "%v", err)
	}
	return []*tensor.Tensor{r}, nil
}

// ShapeOp returns the input's shape as a rank-1 float tensor (floats stand
// in for int64 in this engine).
var ShapeOp = onHeap(shapeOpK)

func shapeOpK(in []*tensor.Tensor, _ Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if err := need("Shape", in, 1, 1); err != nil {
		return nil, err
	}
	s := in[0].Shape()
	out := tensor.ZerosIn(alc, len(s))
	for i, d := range s {
		out.Data()[i] = float32(d)
	}
	return []*tensor.Tensor{out}, nil
}

// Constant materializes its attribute "value" ([]float32) with optional
// attribute "shape"; it has no tensor inputs.
var Constant = onHeap(constantK)

func constantK(in []*tensor.Tensor, attrs Attrs, alc tensor.Allocator) ([]*tensor.Tensor, error) {
	if len(in) != 0 {
		return nil, argErr("Constant", "takes no inputs, got %d", len(in))
	}
	vals := attrs.Floats("value", nil)
	if vals == nil {
		return nil, argErr("Constant", "missing value attribute")
	}
	shape := attrs.Ints("shape", []int{len(vals)})
	s := tensor.NewShape(shape...)
	if s.Numel() != len(vals) {
		return nil, argErr("Constant", "shape %v incompatible with %d values", s, len(vals))
	}
	d := tensor.Alloc(alc, len(vals))
	copy(d, vals)
	return []*tensor.Tensor{tensor.New(s, d)}, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
