package ops

import (
	"testing"

	"repro/internal/tensor"
)

// chainRef runs the stage ops through the ordinary registry kernels, one
// node at a time — the semantics FusedElementwise must reproduce.
func chainRef(t *testing.T, x *tensor.Tensor, steps []struct {
	op    string
	attrs Attrs
	extra *tensor.Tensor
	swap  bool
}) *tensor.Tensor {
	t.Helper()
	cur := x
	for _, s := range steps {
		k, err := Lookup(s.op)
		if err != nil {
			t.Fatal(err)
		}
		in := []*tensor.Tensor{cur}
		if s.extra != nil {
			if s.swap {
				in = []*tensor.Tensor{s.extra, cur}
			} else {
				in = []*tensor.Tensor{cur, s.extra}
			}
		}
		outs, err := k(in, s.attrs)
		if err != nil {
			t.Fatal(err)
		}
		cur = outs[0]
	}
	return cur
}

// buildFused assembles the FusedElementwise inputs and attrs for the steps.
func buildFused(steps []struct {
	op    string
	attrs Attrs
	extra *tensor.Tensor
	swap  bool
}, x *tensor.Tensor) ([]*tensor.Tensor, Attrs) {
	in := []*tensor.Tensor{x}
	var acc Attrs
	for _, s := range steps {
		arg := -1
		if s.extra != nil {
			in = append(in, s.extra)
			arg = len(in) - 1
		}
		acc = FusedStageAttrs(acc, s.op, s.attrs, arg, s.swap)
	}
	return in, acc
}

type chainStep = struct {
	op    string
	attrs Attrs
	extra *tensor.Tensor
	swap  bool
}

func TestFusedChainMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(21)
	x := r.RandTensor(2, 3, 5, 7)
	same := r.RandTensor(2, 3, 5, 7)
	steps := []chainStep{
		{op: "Add", extra: same},
		{op: "Relu"},
		{op: "Mul", extra: tensor.Scalar(0.5)},
		{op: "LeakyRelu", attrs: Attrs{"alpha": 0.2}},
		{op: "Tanh"},
		{op: "Clip", attrs: Attrs{"min": -0.4, "max": 0.4}},
		{op: "Sigmoid"},
	}
	want := chainRef(t, x, steps)
	in, attrs := buildFused(steps, x)
	got, err := FusedElementwise(in, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Shape().Equal(want.Shape()) {
		t.Fatalf("shape %v, want %v", got[0].Shape(), want.Shape())
	}
	if !got[0].AllClose(want, 1e-6, 1e-7) {
		t.Fatalf("fused chain diverges: max diff %v", got[0].MaxAbsDiff(want))
	}
}

func TestFusedSwappedSubDiv(t *testing.T) {
	r := tensor.NewRNG(3)
	x := r.RandTensor(4, 9)
	e := r.RandTensor(4, 9)
	steps := []chainStep{
		{op: "Sub", extra: e, swap: true},                // e - x
		{op: "Div", extra: tensor.Scalar(2), swap: true}, // 2 / v
	}
	want := chainRef(t, x, steps)
	in, attrs := buildFused(steps, x)
	got, err := FusedElementwise(in, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want, 1e-6, 1e-7) {
		t.Fatal("swapped Sub/Div chain diverges")
	}
}

// TestFusedBroadcastFallback drives a chain containing a genuinely
// broadcasting stage (channel bias against an NCHW map): the kernel must
// fall back stage-wise and still match the unfused result, including the
// broadcast output shape.
func TestFusedBroadcastFallback(t *testing.T) {
	r := tensor.NewRNG(9)
	x := r.RandTensor(2, 3, 4, 4)
	bias := tensor.New(tensor.Shape{1, 3, 1, 1}, []float32{1, -2, 3})
	steps := []chainStep{
		{op: "Relu"},
		{op: "Add", extra: bias},
		{op: "Mul", extra: tensor.Scalar(2)},
	}
	want := chainRef(t, x, steps)
	in, attrs := buildFused(steps, x)
	got, err := FusedElementwise(in, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Shape().Equal(want.Shape()) {
		t.Fatalf("shape %v, want %v", got[0].Shape(), want.Shape())
	}
	if !got[0].AllClose(want, 1e-6, 1e-7) {
		t.Fatal("broadcast-fallback chain diverges")
	}
}

// TestFusedOutputNeverAliasesInput pins the kernel contract the memory
// planner relies on: the registry path allocates a fresh output.
func TestFusedOutputNeverAliasesInput(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, 2})
	in, attrs := buildFused([]chainStep{{op: "Relu"}, {op: "Tanh"}}, x)
	got, err := FusedElementwise(in, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0].Data()[0] == &x.Data()[0] {
		t.Fatal("registry FusedElementwise aliased its input")
	}
	if x.Data()[0] != -1 || x.Data()[1] != 2 {
		t.Fatal("registry FusedElementwise mutated its input")
	}
}

func TestFusedRejectsBadEncoding(t *testing.T) {
	x := tensor.FromSlice([]float32{1})
	if _, err := FusedElementwise([]*tensor.Tensor{x}, Attrs{}); err == nil {
		t.Error("missing fe_ops accepted")
	}
	// Binary stage referencing an input index that does not exist.
	attrs := FusedStageAttrs(nil, "Add", nil, 3, false)
	attrs = FusedStageAttrs(attrs, "Relu", nil, -1, false)
	if _, err := FusedElementwise([]*tensor.Tensor{x}, attrs); err == nil {
		t.Error("out-of-range fe_args accepted")
	}
}

// TestPrepackedFusedMatchesRegistry covers the plan-cached stage program:
// PrepackWeights decodes once, RunPrepacked/RunPrepackedInPlace execute
// from the decoded form and must match the attr-parsing registry kernel.
func TestPrepackedFusedMatchesRegistry(t *testing.T) {
	r := tensor.NewRNG(23)
	x := r.RandTensor(3, 11)
	same := r.RandTensor(3, 11)
	steps := []chainStep{{op: "Add", extra: same}, {op: "Relu"}, {op: "Tanh"}}
	in, attrs := buildFused(steps, x)

	pp := PrepackWeights("FusedElementwise", attrs, make([]*tensor.Tensor, len(in)))
	if pp == nil {
		t.Fatal("PrepackWeights returned nil for a valid FusedElementwise node")
	}
	if pp.HasWeights() {
		t.Error("stage program reported as weight-bearing")
	}
	want, err := FusedElementwise(in, attrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPrepacked("FusedElementwise", in, attrs, nil, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want[0], 1e-7, 1e-8) {
		t.Fatal("prepacked fused execution diverges")
	}
	gotIP, err := RunPrepackedInPlace("FusedElementwise", in, attrs, nil, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !gotIP[0].AllClose(want[0], 1e-7, 1e-8) {
		t.Fatal("prepacked in-place fused execution diverges")
	}
	if &gotIP[0].Data()[0] != &x.Data()[0] {
		t.Fatal("prepacked in-place execution did not reuse the input buffer")
	}
}

func TestRunInPlaceUnaryMatchesAndAliases(t *testing.T) {
	r := tensor.NewRNG(31)
	for _, tc := range []struct {
		op    string
		attrs Attrs
	}{
		{"Relu", nil},
		{"LeakyRelu", Attrs{"alpha": 0.3}},
		{"Sigmoid", nil},
		{"Tanh", nil},
		{"Exp", nil},
		{"Erf", nil},
		{"Neg", nil},
		{"Clip", Attrs{"min": -0.5, "max": 0.5}},
		{"Identity", nil},
	} {
		if !CanRunInPlace(tc.op) {
			t.Fatalf("%s not in-place capable", tc.op)
		}
		x := r.RandTensor(3, 17)
		k, err := Lookup(tc.op)
		if err != nil {
			t.Fatal(err)
		}
		want, err := k([]*tensor.Tensor{x.Clone()}, tc.attrs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunInPlace(tc.op, []*tensor.Tensor{x}, tc.attrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].AllClose(want[0], 1e-7, 1e-8) {
			t.Errorf("%s: in-place result diverges", tc.op)
		}
		if &got[0].Data()[0] != &x.Data()[0] {
			t.Errorf("%s: in-place output does not share the input buffer", tc.op)
		}
	}
}

func TestRunInPlaceFusedSharesBuffer(t *testing.T) {
	r := tensor.NewRNG(8)
	x := r.RandTensor(2, 3, 4, 4)
	same := r.RandTensor(2, 3, 4, 4)
	steps := []chainStep{{op: "Add", extra: same}, {op: "Relu"}}
	want := chainRef(t, x.Clone(), steps)
	in, attrs := buildFused(steps, x)
	got, err := RunInPlace("FusedElementwise", in, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want, 1e-6, 1e-7) {
		t.Fatal("in-place fused chain diverges")
	}
	if &got[0].Data()[0] != &x.Data()[0] {
		t.Fatal("in-place fused chain did not reuse the input buffer")
	}
}

// TestRunInPlaceFusedBroadcastReturnsBuffer checks the ownership-transfer
// contract on the shape-changing fallback: the abandoned input buffer goes
// back to the allocator instead of leaking out of the arena accounting.
func TestRunInPlaceFusedBroadcastReturnsBuffer(t *testing.T) {
	ar := tensor.NewArena()
	r := tensor.NewRNG(13)
	xHeap := r.RandTensor(2, 3, 4, 4)
	bias := tensor.New(tensor.Shape{1, 3, 1, 1}, []float32{1, -2, 3})
	steps := []chainStep{{op: "Relu"}, {op: "Add", extra: bias}}
	want := chainRef(t, xHeap.Clone(), steps)

	x := xHeap.CloneIn(ar) // arena-owned input, as in a real run
	in, attrs := buildFused(steps, x)
	putsBefore := ar.Stats().Snapshot().Puts
	got, err := RunInPlace("FusedElementwise", in, attrs, ar)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].AllClose(want, 1e-6, 1e-7) {
		t.Fatal("broadcast in-place chain diverges")
	}
	if puts := ar.Stats().Snapshot().Puts; puts <= putsBefore {
		t.Error("abandoned input buffer was not returned to the arena")
	}
}
