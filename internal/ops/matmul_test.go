package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func refMatMul(a, b *tensor.Tensor) *tensor.Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	out := tensor.Zeros(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.At(i, p) * b.At(p, j)
			}
			out.Set(acc, i, j)
		}
	}
	return out
}

func TestMatMul2D(t *testing.T) {
	r := tensor.NewRNG(3)
	for _, dims := range [][3]int{{2, 3, 4}, {1, 1, 1}, {5, 7, 2}, {16, 16, 16}} {
		a := r.RandTensor(dims[0], dims[1])
		b := r.RandTensor(dims[1], dims[2])
		got, err := MatMul([]*tensor.Tensor{a, b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refMatMul(a, b)
		if !got[0].AllClose(want, 1e-4, 1e-5) {
			t.Errorf("dims %v: mismatch %v", dims, got[0].MaxAbsDiff(want))
		}
	}
}

func TestMatMulBatched(t *testing.T) {
	r := tensor.NewRNG(9)
	a := r.RandTensor(3, 2, 4, 5)
	b := r.RandTensor(3, 2, 5, 6)
	got, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Shape().Equal(tensor.Shape{3, 2, 4, 6}) {
		t.Fatalf("shape = %v", got[0].Shape())
	}
	// Check one batch element against 2-D reference.
	a0 := tensor.New(tensor.Shape{4, 5}, a.Data()[0:20])
	b0 := tensor.New(tensor.Shape{5, 6}, b.Data()[0:30])
	want := refMatMul(a0, b0)
	g0 := tensor.New(tensor.Shape{4, 6}, got[0].Data()[0:24])
	if !g0.AllClose(want, 1e-4, 1e-5) {
		t.Error("batched MatMul batch 0 mismatch")
	}
}

func TestMatMulBroadcastBatch(t *testing.T) {
	r := tensor.NewRNG(21)
	a := r.RandTensor(4, 3, 5) // batch 4
	b := r.RandTensor(5, 6)    // no batch: broadcast
	got, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Shape().Equal(tensor.Shape{4, 3, 6}) {
		t.Fatalf("shape = %v", got[0].Shape())
	}
	// Last batch must use the same b.
	a3 := tensor.New(tensor.Shape{3, 5}, a.Data()[3*15:4*15])
	want := refMatMul(a3, b)
	g3 := tensor.New(tensor.Shape{3, 6}, got[0].Data()[3*18:4*18])
	if !g3.AllClose(want, 1e-4, 1e-5) {
		t.Error("broadcast batch mismatch")
	}
}

// Regression: mixed batch shapes like [2,1]x[1,3] must map each output
// batch (i,j) to operand panels (i) and (j) with per-dimension broadcast
// strides. The old linear batch%aBatch fallback mis-addressed these.
func TestMatMulMixedBroadcastBatch(t *testing.T) {
	r := tensor.NewRNG(33)
	const m, k, n = 4, 5, 6
	a := r.RandTensor(2, 1, m, k)
	b := r.RandTensor(1, 3, k, n)
	got, err := MatMul([]*tensor.Tensor{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Shape().Equal(tensor.Shape{2, 3, m, n}) {
		t.Fatalf("shape = %v", got[0].Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			ai := tensor.New(tensor.Shape{m, k}, a.Data()[i*m*k:(i+1)*m*k])
			bj := tensor.New(tensor.Shape{k, n}, b.Data()[j*k*n:(j+1)*k*n])
			want := refMatMul(ai, bj)
			off := (i*3 + j) * m * n
			gij := tensor.New(tensor.Shape{m, n}, got[0].Data()[off:off+m*n])
			if !gij.AllClose(want, 1e-4, 1e-5) {
				t.Errorf("batch (%d,%d): max diff %v", i, j, gij.MaxAbsDiff(want))
			}
		}
	}
}

// TestMatMulOddShapesVsReference drives the packed kernel through tile and
// panel tails at the operator level.
func TestMatMulOddShapesVsReference(t *testing.T) {
	r := tensor.NewRNG(12)
	for _, d := range [][3]int{{1, 7, 1}, {3, 5, 33}, {17, 19, 23}, {31, 300, 9}, {65, 5, 130}} {
		a := r.RandTensor(d[0], d[1])
		b := r.RandTensor(d[1], d[2])
		got, err := MatMul([]*tensor.Tensor{a, b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := refMatMul(a, b)
		if !got[0].AllClose(want, 1e-4, 1e-5) {
			t.Errorf("dims %v: max diff %v", d, got[0].MaxAbsDiff(want))
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul([]*tensor.Tensor{tensor.Zeros(2, 3), tensor.Zeros(4, 5)}, nil); err == nil {
		t.Error("inner-dim mismatch accepted")
	}
	if _, err := MatMul([]*tensor.Tensor{tensor.Zeros(3), tensor.Zeros(3, 2)}, nil); err == nil {
		t.Error("rank-1 operand accepted")
	}
	if _, err := MatMul([]*tensor.Tensor{tensor.Zeros(2, 2)}, nil); err == nil {
		t.Error("single operand accepted")
	}
}

func TestGemm(t *testing.T) {
	r := tensor.NewRNG(4)
	a := r.RandTensor(3, 4)
	b := r.RandTensor(4, 5)
	c := r.RandTensor(5)
	got, err := Gemm([]*tensor.Tensor{a, b, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := refMatMul(a, b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			want.Set(want.At(i, j)+c.At(j), i, j)
		}
	}
	if !got[0].AllClose(want, 1e-4, 1e-5) {
		t.Errorf("Gemm mismatch %v", got[0].MaxAbsDiff(want))
	}
}

func TestGemmTransposes(t *testing.T) {
	r := tensor.NewRNG(8)
	a := r.RandTensor(4, 3) // transA -> 3x4
	b := r.RandTensor(5, 4) // transB -> 4x5
	got, err := Gemm([]*tensor.Tensor{a, b}, Attrs{"transA": 1, "transB": 1})
	if err != nil {
		t.Fatal(err)
	}
	at := tensor.Zeros(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	bt := tensor.Zeros(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := refMatMul(at, bt)
	if !got[0].AllClose(want, 1e-4, 1e-5) {
		t.Errorf("Gemm transpose mismatch %v", got[0].MaxAbsDiff(want))
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	a := tensor.Full(1, 2, 2)
	b := tensor.Full(1, 2, 2)
	c := tensor.Full(10, 2, 2)
	got, err := Gemm([]*tensor.Tensor{a, b, c}, Attrs{"alpha": 0.5, "beta": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	// 0.5*(1*1+1*1) + 2*10 = 21
	if got[0].Data()[0] != 21 {
		t.Fatalf("Gemm alpha/beta = %v, want 21", got[0].Data()[0])
	}
}

func TestGemmErrors(t *testing.T) {
	if _, err := Gemm([]*tensor.Tensor{tensor.Zeros(2, 3), tensor.Zeros(2, 3)}, nil); err == nil {
		t.Error("inner mismatch accepted")
	}
	if _, err := Gemm([]*tensor.Tensor{tensor.Zeros(2, 3), tensor.Zeros(3, 4), tensor.Zeros(3)}, nil); err == nil {
		t.Error("bad C shape accepted")
	}
}

// Property: matmul with identity returns the original matrix.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed uint32, n0 uint8) bool {
		n := int(n0%6) + 1
		r := tensor.NewRNG(uint64(seed) + 1)
		a := r.RandTensor(n, n)
		eye := tensor.Zeros(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		out, err := MatMul([]*tensor.Tensor{a, eye}, nil)
		if err != nil {
			return false
		}
		return out[0].AllClose(a, 1e-5, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ via Gemm transposes.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := tensor.NewRNG(uint64(seed)*7 + 3)
		a := r.RandTensor(3, 4)
		b := r.RandTensor(4, 2)
		ab, err := MatMul([]*tensor.Tensor{a, b}, nil)
		if err != nil {
			return false
		}
		btat, err := Gemm([]*tensor.Tensor{b, a}, Attrs{"transA": 1, "transB": 1})
		if err != nil {
			return false
		}
		// btat should equal transpose of ab.
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				d := float64(ab[0].At(i, j) - btat[0].At(j, i))
				if d > 1e-4 || d < -1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
