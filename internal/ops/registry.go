package ops

import (
	"fmt"
	"sort"
	"sync"
)

// registry maps ONNX-style op-type names to their kernels, in the
// allocator-aware form. The built-in set is installed at init time;
// regMu makes a late Register (embedders, fault-injection harnesses)
// safe against concurrent lookups. Lookups run at graph-compile time,
// not per-op execution, so the read lock costs nothing measurable.
var (
	regMu    sync.RWMutex
	registry = map[string]AllocKernel{}
)

// register installs a kernel; duplicate registration is a programmer error.
func register(name string, k AllocKernel) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("ops: duplicate kernel registration: " + name)
	}
	registry[name] = k
}

// Register installs a kernel for a custom op type — the extension point
// embedders and fault-injection harnesses use to add operators without
// forking the built-in set. Safe for concurrent use, though programs a
// replica has already compiled keep the kernels they resolved.
func Register(name string, k AllocKernel) error {
	if name == "" || k == nil {
		return fmt.Errorf("ops: Register requires a name and a kernel")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("ops: kernel already registered for %q", name)
	}
	registry[name] = k
	return nil
}

func init() {
	register("Conv", convK)
	register("MaxPool", maxPoolK)
	register("AveragePool", avgPoolK)
	register("GlobalAveragePool", globalAvgPoolK)
	register("MatMul", matMulK)
	register("Gemm", gemmK)
	register("Relu", reluK)
	register("LeakyRelu", leakyReluK)
	register("Sigmoid", sigmoidK)
	register("Tanh", tanhK)
	register("Exp", expK)
	register("Sqrt", sqrtK)
	register("Erf", erfK)
	register("Neg", negK)
	register("Clip", clipK)
	register("Identity", identityK)
	register("FusedElementwise", fusedElementwiseK)
	register("Add", addK)
	register("Sub", subK)
	register("Mul", mulK)
	register("Div", divK)
	register("Pow", powK)
	register("Softmax", softmaxK)
	register("BatchNormalization", batchNormK)
	register("LayerNormalization", layerNormK)
	register("ReduceMean", reduceMeanK)
	register("Concat", concatK)
	register("Reshape", reshapeK)
	register("Flatten", flattenK)
	register("Transpose", transposeK)
	register("Slice", sliceK)
	register("Gather", gatherK)
	register("Split", splitK)
	register("Squeeze", squeezeK)
	register("Unsqueeze", unsqueezeK)
	register("Shape", shapeOpK)
	register("Constant", constantK)
}

// Lookup returns the heap-allocating kernel registered for the op type, or
// an error naming the missing operator.
func Lookup(opType string) (Kernel, error) {
	k, err := LookupAlloc(opType)
	if err != nil {
		return nil, err
	}
	return onHeap(k), nil
}

// LookupAlloc returns the allocator-aware kernel for the op type — the
// form the executors use so a run's arena reaches every output allocation.
func LookupAlloc(opType string) (AllocKernel, error) {
	regMu.RLock()
	k, ok := registry[opType]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ops: no kernel registered for op type %q", opType)
	}
	return k, nil
}

// Supported reports whether a kernel exists for the op type.
func Supported(opType string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[opType]
	return ok
}

// Names returns all registered op-type names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}
