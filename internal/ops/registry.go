package ops

import (
	"fmt"
	"sort"
)

// registry maps ONNX-style op-type names to their kernels. It is populated
// at init time and read-only afterwards, so lookups need no locking.
var registry = map[string]Kernel{}

// register installs a kernel; duplicate registration is a programmer error.
func register(name string, k Kernel) {
	if _, dup := registry[name]; dup {
		panic("ops: duplicate kernel registration: " + name)
	}
	registry[name] = k
}

func init() {
	register("Conv", Conv)
	register("MaxPool", MaxPool)
	register("AveragePool", AveragePool)
	register("GlobalAveragePool", GlobalAveragePool)
	register("MatMul", MatMul)
	register("Gemm", Gemm)
	register("Relu", Relu)
	register("LeakyRelu", LeakyRelu)
	register("Sigmoid", Sigmoid)
	register("Tanh", Tanh)
	register("Exp", Exp)
	register("Sqrt", Sqrt)
	register("Erf", Erf)
	register("Neg", Neg)
	register("Clip", Clip)
	register("Identity", Identity)
	register("Add", Add)
	register("Sub", Sub)
	register("Mul", Mul)
	register("Div", Div)
	register("Pow", Pow)
	register("Softmax", Softmax)
	register("BatchNormalization", BatchNormalization)
	register("LayerNormalization", LayerNormalization)
	register("ReduceMean", ReduceMean)
	register("Concat", ConcatOp)
	register("Reshape", Reshape)
	register("Flatten", Flatten)
	register("Transpose", Transpose)
	register("Slice", Slice)
	register("Gather", Gather)
	register("Split", Split)
	register("Squeeze", Squeeze)
	register("Unsqueeze", Unsqueeze)
	register("Shape", ShapeOp)
	register("Constant", Constant)
}

// Lookup returns the kernel registered for the op type, or an error naming
// the missing operator.
func Lookup(opType string) (Kernel, error) {
	k, ok := registry[opType]
	if !ok {
		return nil, fmt.Errorf("ops: no kernel registered for op type %q", opType)
	}
	return k, nil
}

// Supported reports whether a kernel exists for the op type.
func Supported(opType string) bool {
	_, ok := registry[opType]
	return ok
}

// Names returns all registered op-type names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
