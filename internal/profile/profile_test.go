package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ramiel "repro"
)

func squeezeTrace(t *testing.T) *Trace {
	t.Helper()
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := prog.RunProfiled(ramiel.RandomInputs(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	return FromProfile("squeezenet", prof)
}

func TestFromProfileStructure(t *testing.T) {
	tr := squeezeTrace(t)
	if tr.Model != "squeezenet" || len(tr.Lanes) < 2 || tr.Wall <= 0 {
		t.Fatalf("bad trace: %+v", tr)
	}
	for i, l := range tr.Lanes {
		if l.Lane != i {
			t.Errorf("lane %d numbered %d", i, l.Lane)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := squeezeTrace(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != tr.Model || len(got.Lanes) != len(tr.Lanes) || got.Wall != tr.Wall {
		t.Errorf("round trip changed trace: %+v vs %+v", got, tr)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{broken"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{
		Model: "toy",
		Lanes: []LaneRecord{
			{Lane: 0, Busy: 80 * time.Millisecond, Slack: 20 * time.Millisecond, Sends: 3, Recvs: 1},
			{Lane: 1, Busy: 10 * time.Millisecond, Slack: 90 * time.Millisecond, Sends: 1, Recvs: 3},
		},
	}
	a := tr.Analyze()
	if a.IdlestLane != 1 {
		t.Errorf("idlest lane = %d", a.IdlestLane)
	}
	if a.Messages != 4 {
		t.Errorf("messages = %d", a.Messages)
	}
	if a.SlackFraction < 0.5 || a.SlackFraction > 0.6 {
		t.Errorf("slack fraction = %v", a.SlackFraction)
	}
	s := a.String()
	for _, frag := range []string{"slack", "messages", "lane 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q: %s", frag, s)
		}
	}
	// Empty trace does not divide by zero.
	empty := (&Trace{}).Analyze()
	if empty.SlackFraction != 0 || empty.IdlestLane != -1 {
		t.Errorf("empty analysis: %+v", empty)
	}
}

func TestRealTraceAnalyzes(t *testing.T) {
	tr := squeezeTrace(t)
	a := tr.Analyze()
	if a.Messages == 0 {
		t.Error("no messages recorded for a 2-cluster run")
	}
	if a.SlackFraction < 0 || a.SlackFraction > 1 {
		t.Errorf("slack fraction out of range: %v", a.SlackFraction)
	}
}
