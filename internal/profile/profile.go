// Package profile is the offline side of the paper's "profile database":
// it serializes parallel-execution traces (per-lane busy/slack/message
// counts from internal/exec) to JSON and computes the slack analysis that
// motivates hyperclustering — which lanes idle, for how long, and how much
// of the makespan messaging wait explains.
package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// LaneRecord is one lane's trace entry.
type LaneRecord struct {
	Lane  int           `json:"lane"`
	Busy  time.Duration `json:"busy_ns"`
	Slack time.Duration `json:"slack_ns"`
	Sends int           `json:"sends"`
	Recvs int           `json:"recvs"`
}

// OpRecord is one operator execution from a sampled run timeline — the
// per-op refinement of the per-lane aggregates, present when the trace was
// saved with a timeline attached.
type OpRecord struct {
	Lane    int    `json:"lane"`
	Node    string `json:"node"`
	Op      string `json:"op"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Trace is a serializable execution profile.
type Trace struct {
	Model string        `json:"model"`
	Wall  time.Duration `json:"wall_ns"`
	Lanes []LaneRecord  `json:"lanes"`
	// Ops carries the per-op spans of one sampled run (see AttachTimeline);
	// empty for traces recorded without the timeline flight recorder.
	Ops []OpRecord `json:"ops,omitempty"`
}

// AttachTimeline copies one sampled run's operator spans into the trace, so
// the saved profile carries per-op timings next to the lane aggregates.
// Wait and send spans are not copied — the lane Slack totals already
// aggregate them; use the Chrome-trace export for the full event view.
func (t *Trace) AttachTimeline(r *obs.RunTimeline) {
	if r == nil {
		return
	}
	for _, s := range r.Spans {
		if s.Kind != obs.SpanOp {
			continue
		}
		t.Ops = append(t.Ops, OpRecord{
			Lane: int(s.Lane), Node: s.Name, Op: s.Op,
			StartNs: s.StartNs, DurNs: s.DurNs,
		})
	}
}

// FromProfile converts an executor profile into a trace.
func FromProfile(model string, p *exec.Profile) *Trace {
	t := &Trace{Model: model, Wall: p.Wall}
	for i, l := range p.Lanes {
		t.Lanes = append(t.Lanes, LaneRecord{
			Lane: i, Busy: l.Busy, Slack: l.Slack, Sends: l.Sends, Recvs: l.Recvs,
		})
	}
	return t
}

// Save writes the trace as JSON.
func (t *Trace) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a trace written by Save.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return &t, nil
}

// Analysis summarizes a trace.
type Analysis struct {
	// TotalBusy and TotalSlack aggregate across lanes.
	TotalBusy, TotalSlack time.Duration
	// SlackFraction is slack / (busy + slack): the share of lane time
	// spent blocked on messages — the quantity hyperclustering attacks.
	SlackFraction float64
	// IdlestLane is the lane with the highest slack share (-1 if none).
	IdlestLane int
	// Messages is the total cross-cluster transfer count.
	Messages int
}

// Analyze computes the slack summary.
func (t *Trace) Analyze() Analysis {
	a := Analysis{IdlestLane: -1}
	worst := -1.0
	for _, l := range t.Lanes {
		a.TotalBusy += l.Busy
		a.TotalSlack += l.Slack
		a.Messages += l.Sends
		total := l.Busy + l.Slack
		if total > 0 {
			frac := float64(l.Slack) / float64(total)
			if frac > worst {
				worst = frac
				a.IdlestLane = l.Lane
			}
		}
	}
	if sum := a.TotalBusy + a.TotalSlack; sum > 0 {
		a.SlackFraction = float64(a.TotalSlack) / float64(sum)
	}
	return a
}

// String renders a one-paragraph report.
func (a Analysis) String() string {
	return fmt.Sprintf("busy %v, slack %v (%.0f%% of lane time), %d messages, idlest lane %d",
		a.TotalBusy.Round(time.Microsecond), a.TotalSlack.Round(time.Microsecond),
		a.SlackFraction*100, a.Messages, a.IdlestLane)
}
