package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// RandomDAG builds a random layered acyclic dataflow graph with n operator
// nodes for property-based testing of the clustering and scheduling
// algorithms (which read only topology and op types, never tensor data).
// Every node consumes the graph input or outputs of earlier nodes, so the
// result always passes Validate.
func RandomDAG(rng *tensor.RNG, n int) *Graph {
	if n < 1 {
		n = 1
	}
	g := New(fmt.Sprintf("random%d", n))
	g.Inputs = []ValueInfo{{Name: "input", Shape: tensor.Shape{1}}}
	opTypes := []string{"Conv", "Relu", "Add", "Concat", "MatMul", "MaxPool", "Sigmoid", "Mul"}
	values := []string{"input"}
	for i := 0; i < n; i++ {
		op := opTypes[rng.Intn(len(opTypes))]
		nIn := 1
		if op == "Add" || op == "Concat" || op == "MatMul" || op == "Mul" {
			nIn = 1 + rng.Intn(2)
		}
		if nIn > len(values) {
			nIn = len(values) // cannot draw more distinct values than exist
		}
		ins := make([]string, 0, nIn)
		seen := map[string]bool{}
		for len(ins) < nIn {
			// Bias toward recent values so the graph has long chains as
			// well as wide fan-out, like real model graphs.
			var v string
			if rng.Intn(2) == 0 && len(values) > 4 {
				v = values[len(values)-1-rng.Intn(4)]
			} else {
				v = values[rng.Intn(len(values))]
			}
			if !seen[v] {
				seen[v] = true
				ins = append(ins, v)
			}
		}
		out := fmt.Sprintf("v%d", i)
		g.AddNode(fmt.Sprintf("n%d", i), op, ins, []string{out}, nil)
		values = append(values, out)
	}
	// Make every sink a graph output so DCE-style passes keep everything.
	g.Reindex()
	for _, s := range g.Sinks() {
		g.Outputs = append(g.Outputs, ValueInfo{Name: s.Outputs[0]})
	}
	if len(g.Outputs) == 0 {
		g.Outputs = []ValueInfo{{Name: values[len(values)-1]}}
	}
	return g
}
