// Package graph defines the in-memory dataflow-graph representation that
// every Ramiel compiler pass operates on: operator nodes connected by named
// tensor values, in the style of an ONNX GraphProto. Edges are implicit —
// node A feeds node B when one of A's output value names appears among B's
// inputs — which makes the graph cheap to mutate during passes; an index of
// producers and consumers is rebuilt on demand.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// ValueInfo names a graph-level input or output and its (optional) shape.
type ValueInfo struct {
	Name  string
	Shape tensor.Shape
}

// Node is one operator instance in the dataflow graph.
type Node struct {
	// ID is a dense index assigned by the owning Graph; it is stable until
	// the next structural mutation that calls Reindex.
	ID int
	// Name uniquely identifies the node within its graph.
	Name string
	// OpType is the ONNX-style operator name ("Conv", "Relu", …).
	OpType string
	// Attrs holds the operator attributes.
	Attrs ops.Attrs
	// Inputs and Outputs are tensor value names in positional order.
	Inputs  []string
	Outputs []string
}

// Clone returns a deep copy of the node (attribute values are shared, as
// they are treated as immutable).
func (n *Node) Clone() *Node {
	return &Node{
		ID:      n.ID,
		Name:    n.Name,
		OpType:  n.OpType,
		Attrs:   n.Attrs.Clone(),
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
	}
}

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s)", n.Name, n.OpType)
}

// Graph is a dataflow graph: a set of operator nodes plus graph-level
// inputs, outputs and constant initializers (weights).
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []ValueInfo
	Outputs []ValueInfo
	// Initializers maps value names to constant tensors (model weights and
	// any other baked-in constants).
	Initializers map[string]*tensor.Tensor

	// Derived indexes; nil until built, invalidated by mutation.
	producerIdx  map[string]*Node
	consumersIdx map[string][]*Node
}

// New creates an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, Initializers: map[string]*tensor.Tensor{}}
}

// AddNode appends a node built from the arguments and returns it.
func (g *Graph) AddNode(name, opType string, inputs, outputs []string, attrs ops.Attrs) *Node {
	n := &Node{
		ID:      len(g.Nodes),
		Name:    name,
		OpType:  opType,
		Attrs:   attrs,
		Inputs:  append([]string(nil), inputs...),
		Outputs: append([]string(nil), outputs...),
	}
	g.Nodes = append(g.Nodes, n)
	g.Invalidate()
	return n
}

// AddInitializer registers a constant tensor under the given value name.
func (g *Graph) AddInitializer(name string, t *tensor.Tensor) {
	if g.Initializers == nil {
		g.Initializers = map[string]*tensor.Tensor{}
	}
	g.Initializers[name] = t
}

// Invalidate drops the derived producer/consumer indexes; any pass that
// mutates Nodes, Inputs/Outputs slices of nodes, or Initializers must call
// it (AddNode and RemoveNodes do so automatically).
func (g *Graph) Invalidate() {
	g.producerIdx = nil
	g.consumersIdx = nil
}

// Reindex assigns dense IDs in current slice order and rebuilds the
// producer/consumer indexes.
func (g *Graph) Reindex() {
	for i, n := range g.Nodes {
		n.ID = i
	}
	g.buildIndex()
}

func (g *Graph) buildIndex() {
	g.producerIdx = make(map[string]*Node, len(g.Nodes))
	g.consumersIdx = make(map[string][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, out := range n.Outputs {
			g.producerIdx[out] = n
		}
		for _, in := range n.Inputs {
			g.consumersIdx[in] = append(g.consumersIdx[in], n)
		}
	}
}

func (g *Graph) ensureIndex() {
	if g.producerIdx == nil {
		g.buildIndex()
	}
}

// Producer returns the node producing the value name, or nil when the value
// is a graph input or initializer.
func (g *Graph) Producer(value string) *Node {
	g.ensureIndex()
	return g.producerIdx[value]
}

// Consumers returns the nodes consuming the value name.
func (g *Graph) Consumers(value string) []*Node {
	g.ensureIndex()
	return g.consumersIdx[value]
}

// Predecessors returns the distinct nodes whose outputs n consumes, in
// first-use order.
func (g *Graph) Predecessors(n *Node) []*Node {
	g.ensureIndex()
	var out []*Node
	seen := map[*Node]bool{}
	for _, in := range n.Inputs {
		if p := g.producerIdx[in]; p != nil && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Successors returns the distinct nodes consuming any of n's outputs, in
// first-use order.
func (g *Graph) Successors(n *Node) []*Node {
	g.ensureIndex()
	var out []*Node
	seen := map[*Node]bool{}
	for _, o := range n.Outputs {
		for _, c := range g.consumersIdx[o] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// InDegree returns the number of distinct predecessor nodes.
func (g *Graph) InDegree(n *Node) int { return len(g.Predecessors(n)) }

// OutDegree returns the number of distinct successor nodes.
func (g *Graph) OutDegree(n *Node) int { return len(g.Successors(n)) }

// NodeByName returns the node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// RemoveNodes deletes every node for which remove returns true and
// reindexes the graph. Initializers and graph inputs/outputs are untouched.
func (g *Graph) RemoveNodes(remove func(*Node) bool) int {
	kept := g.Nodes[:0]
	removed := 0
	for _, n := range g.Nodes {
		if remove(n) {
			removed++
		} else {
			kept = append(kept, n)
		}
	}
	g.Nodes = kept
	g.Invalidate()
	g.Reindex()
	return removed
}

// Clone returns a deep copy of the graph (initializer tensors are shared,
// as they are read-only at execution time).
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	c.Inputs = append([]ValueInfo(nil), g.Inputs...)
	c.Outputs = append([]ValueInfo(nil), g.Outputs...)
	for name, t := range g.Initializers {
		c.Initializers[name] = t
	}
	c.Nodes = make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		c.Nodes[i] = n.Clone()
	}
	c.Reindex()
	return c
}

// IsGraphInput reports whether the value name is a declared graph input.
func (g *Graph) IsGraphInput(value string) bool {
	for _, in := range g.Inputs {
		if in.Name == value {
			return true
		}
	}
	return false
}

// IsGraphOutput reports whether the value name is a declared graph output.
func (g *Graph) IsGraphOutput(value string) bool {
	for _, out := range g.Outputs {
		if out.Name == value {
			return true
		}
	}
	return false
}

// IsInitializer reports whether the value name is bound to a constant.
func (g *Graph) IsInitializer(value string) bool {
	_, ok := g.Initializers[value]
	return ok
}

// Validate checks structural well-formedness: unique node and value names,
// every consumed value has a source (producer, graph input or initializer),
// every graph output is produced, and the graph is acyclic.
func (g *Graph) Validate() error {
	names := map[string]bool{}
	produced := map[string]string{}
	for _, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("graph %s: node with empty name (op %s)", g.Name, n.OpType)
		}
		if names[n.Name] {
			return fmt.Errorf("graph %s: duplicate node name %q", g.Name, n.Name)
		}
		names[n.Name] = true
		if n.OpType == "" {
			return fmt.Errorf("graph %s: node %s has empty op type", g.Name, n.Name)
		}
		for _, out := range n.Outputs {
			if prev, dup := produced[out]; dup {
				return fmt.Errorf("graph %s: value %q produced by both %s and %s", g.Name, out, prev, n.Name)
			}
			produced[out] = n.Name
			if g.IsInitializer(out) {
				return fmt.Errorf("graph %s: node %s writes initializer %q", g.Name, n.Name, out)
			}
			if g.IsGraphInput(out) {
				return fmt.Errorf("graph %s: node %s writes graph input %q", g.Name, n.Name, out)
			}
		}
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if _, ok := produced[in]; ok {
				continue
			}
			if g.IsGraphInput(in) || g.IsInitializer(in) {
				continue
			}
			return fmt.Errorf("graph %s: node %s consumes undefined value %q", g.Name, n.Name, in)
		}
	}
	for _, out := range g.Outputs {
		if _, ok := produced[out.Name]; !ok && !g.IsGraphInput(out.Name) && !g.IsInitializer(out.Name) {
			return fmt.Errorf("graph %s: output %q is never produced", g.Name, out.Name)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// ValueNames returns every value name appearing in the graph, sorted.
func (g *Graph) ValueNames() []string {
	set := map[string]bool{}
	for _, n := range g.Nodes {
		for _, v := range n.Inputs {
			set[v] = true
		}
		for _, v := range n.Outputs {
			set[v] = true
		}
	}
	for _, in := range g.Inputs {
		set[in.Name] = true
	}
	for _, out := range g.Outputs {
		set[out.Name] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes the graph for reports.
type Stats struct {
	Nodes    int
	Edges    int
	OpCounts map[string]int
}

// Stats computes node/edge counts and the per-op-type histogram. Edges are
// counted at node granularity (distinct producer→consumer pairs).
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), OpCounts: map[string]int{}}
	for _, n := range g.Nodes {
		s.OpCounts[n.OpType]++
		s.Edges += len(g.Predecessors(n))
	}
	return s
}
