package graph

import (
	"fmt"
	"sort"
	"strings"
)

// TopoSort returns the nodes in a topological order (Kahn's algorithm,
// breaking ties by node ID for determinism) or an error naming a cycle
// participant when the graph is cyclic.
func (g *Graph) TopoSort() ([]*Node, error) {
	g.ensureIndex()
	indeg := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] = len(g.Predecessors(n))
	}
	// Min-heap by ID implemented as a sorted insertion queue; graphs here
	// are small enough (≤ a few thousand nodes) that O(n log n) suffices.
	ready := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sortByID(ready)
	order := make([]*Node, 0, len(g.Nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		newly := []*Node{}
		for _, s := range g.Successors(n) {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		if len(newly) > 0 {
			sortByID(newly)
			ready = mergeByID(ready, newly)
		}
	}
	if len(order) != len(g.Nodes) {
		var stuck []string
		for _, n := range g.Nodes {
			if indeg[n] > 0 {
				stuck = append(stuck, n.Name)
				if len(stuck) >= 5 {
					break
				}
			}
		}
		return nil, fmt.Errorf("graph %s: cycle detected involving %s", g.Name, strings.Join(stuck, ", "))
	}
	return order, nil
}

func sortByID(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// mergeByID merges two ID-sorted slices.
func mergeByID(a, b []*Node) []*Node {
	out := make([]*Node, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].ID <= b[j].ID {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Sources returns nodes with no predecessors, sorted by ID.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if len(g.Predecessors(n)) == 0 {
			out = append(out, n)
		}
	}
	sortByID(out)
	return out
}

// Sinks returns nodes with no successors, sorted by ID.
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if len(g.Successors(n)) == 0 {
			out = append(out, n)
		}
	}
	sortByID(out)
	return out
}

// ReachableFrom returns the set of nodes reachable (forward) from the given
// roots, including the roots themselves.
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]bool {
	seen := map[*Node]bool{}
	stack := append([]*Node(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Successors(n)...)
	}
	return seen
}

// AncestorsOf returns the set of nodes from which the given roots are
// reachable (backward closure), including the roots themselves.
func (g *Graph) AncestorsOf(roots []*Node) map[*Node]bool {
	seen := map[*Node]bool{}
	stack := append([]*Node(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Predecessors(n)...)
	}
	return seen
}
