package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// diamond builds input -> a -> {b, c} -> d.
func diamond() *Graph {
	g := New("diamond")
	g.Inputs = []ValueInfo{{Name: "x"}}
	g.AddNode("a", "Conv", []string{"x", "w_a"}, []string{"va"}, nil)
	g.AddNode("b", "Relu", []string{"va"}, []string{"vb"}, nil)
	g.AddNode("c", "Sigmoid", []string{"va"}, []string{"vc"}, nil)
	g.AddNode("d", "Add", []string{"vb", "vc"}, []string{"vd"}, nil)
	g.Outputs = []ValueInfo{{Name: "vd"}}
	g.AddInitializer("w_a", tensor.Zeros(1))
	return g
}

func TestAddNodeAssignsIDs(t *testing.T) {
	g := diamond()
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestPredecessorsSuccessors(t *testing.T) {
	g := diamond()
	a := g.NodeByName("a")
	d := g.NodeByName("d")
	if len(g.Predecessors(a)) != 0 {
		t.Errorf("a has predecessors %v", g.Predecessors(a))
	}
	succ := g.Successors(a)
	if len(succ) != 2 {
		t.Fatalf("a successors = %v", succ)
	}
	if len(g.Predecessors(d)) != 2 || len(g.Successors(d)) != 0 {
		t.Error("d adjacency wrong")
	}
	if g.InDegree(d) != 2 || g.OutDegree(a) != 2 {
		t.Error("degree helpers wrong")
	}
}

func TestProducerConsumers(t *testing.T) {
	g := diamond()
	if g.Producer("va") == nil || g.Producer("va").Name != "a" {
		t.Error("Producer(va) wrong")
	}
	if g.Producer("x") != nil {
		t.Error("graph input has a producer")
	}
	if len(g.Consumers("va")) != 2 {
		t.Errorf("Consumers(va) = %v", g.Consumers("va"))
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("bad topo order: %v", order)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New("cyclic")
	g.Inputs = []ValueInfo{{Name: "x"}}
	g.AddNode("a", "Relu", []string{"x", "vb"}, []string{"va"}, nil)
	g.AddNode("b", "Relu", []string{"va"}, []string{"vb"}, nil)
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	g := diamond()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g2 := diamond()
	g2.AddNode("a", "Relu", []string{"vd"}, []string{"vz"}, nil)
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate name not caught: %v", err)
	}
	g3 := diamond()
	g3.AddNode("e", "Relu", []string{"nowhere"}, []string{"ve"}, nil)
	if err := g3.Validate(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined input not caught: %v", err)
	}
	g4 := diamond()
	g4.AddNode("e", "Relu", []string{"vd"}, []string{"va"}, nil)
	if err := g4.Validate(); err == nil {
		t.Error("double-produced value not caught")
	}
	g5 := diamond()
	g5.Outputs = append(g5.Outputs, ValueInfo{Name: "ghost"})
	if err := g5.Validate(); err == nil {
		t.Error("unproduced output not caught")
	}
	g6 := diamond()
	g6.AddNode("e", "Relu", []string{"vd"}, []string{"w_a"}, nil)
	if err := g6.Validate(); err == nil {
		t.Error("node writing initializer not caught")
	}
	g7 := diamond()
	g7.AddNode("", "Relu", []string{"vd"}, []string{"vz"}, nil)
	if err := g7.Validate(); err == nil {
		t.Error("empty node name not caught")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	src := g.Sources()
	if len(src) != 1 || src[0].Name != "a" {
		t.Errorf("Sources = %v", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0].Name != "d" {
		t.Errorf("Sinks = %v", snk)
	}
}

func TestReachabilityClosures(t *testing.T) {
	g := diamond()
	b := g.NodeByName("b")
	fw := g.ReachableFrom([]*Node{b})
	if !fw[b] || !fw[g.NodeByName("d")] || fw[g.NodeByName("c")] {
		t.Errorf("ReachableFrom(b) wrong: %v", fw)
	}
	bw := g.AncestorsOf([]*Node{b})
	if !bw[b] || !bw[g.NodeByName("a")] || bw[g.NodeByName("d")] {
		t.Errorf("AncestorsOf(b) wrong: %v", bw)
	}
}

func TestRemoveNodes(t *testing.T) {
	g := diamond()
	removed := g.RemoveNodes(func(n *Node) bool { return n.Name == "c" })
	if removed != 1 || len(g.Nodes) != 3 {
		t.Fatalf("removed=%d nodes=%d", removed, len(g.Nodes))
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Error("IDs not reindexed after removal")
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.Nodes[0].Name = "mutated"
	c.AddNode("extra", "Relu", []string{"vd"}, []string{"vx"}, nil)
	if g.Nodes[0].Name != "a" || len(g.Nodes) != 4 {
		t.Error("Clone shares node storage")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestValueNamesAndFlags(t *testing.T) {
	g := diamond()
	vals := g.ValueNames()
	want := map[string]bool{"x": true, "va": true, "vb": true, "vc": true, "vd": true, "w_a": true}
	for _, v := range vals {
		if !want[v] {
			t.Errorf("unexpected value %q", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Errorf("missing values: %v", want)
	}
	if !g.IsGraphInput("x") || g.IsGraphInput("va") {
		t.Error("IsGraphInput wrong")
	}
	if !g.IsGraphOutput("vd") || g.IsGraphOutput("va") {
		t.Error("IsGraphOutput wrong")
	}
	if !g.IsInitializer("w_a") || g.IsInitializer("x") {
		t.Error("IsInitializer wrong")
	}
}

func TestStats(t *testing.T) {
	g := diamond()
	s := g.Stats()
	if s.Nodes != 4 {
		t.Errorf("Nodes = %d", s.Nodes)
	}
	if s.Edges != 4 { // a->b, a->c, b->d, c->d
		t.Errorf("Edges = %d", s.Edges)
	}
	if s.OpCounts["Conv"] != 1 || s.OpCounts["Relu"] != 1 {
		t.Errorf("OpCounts = %v", s.OpCounts)
	}
}

func TestDOTOutput(t *testing.T) {
	g := diamond()
	dot := g.DOT(map[string]int{"a": 0, "b": 1})
	for _, frag := range []string{"digraph", `"a" -> "b"`, "fillcolor"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	plain := g.DOT(nil)
	if strings.Contains(plain, "fillcolor") {
		t.Error("uncolored DOT contains fills")
	}
}

func TestNodeCloneDeep(t *testing.T) {
	n := &Node{Name: "n", OpType: "Conv", Inputs: []string{"a"}, Outputs: []string{"b"}}
	c := n.Clone()
	c.Inputs[0] = "z"
	if n.Inputs[0] != "a" {
		t.Error("Node.Clone shares input slice")
	}
}

// Property: RandomDAG always validates and topo-sorts completely.
func TestRandomDAGAlwaysValid(t *testing.T) {
	f := func(seed uint32, n0 uint8) bool {
		n := int(n0%60) + 1
		g := RandomDAG(tensor.NewRNG(uint64(seed)+1), n)
		if err := g.Validate(); err != nil {
			t.Logf("invalid: %v", err)
			return false
		}
		order, err := g.TopoSort()
		return err == nil && len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: topological order respects every edge.
func TestTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed uint32) bool {
		g := RandomDAG(tensor.NewRNG(uint64(seed)*3+1), 40)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[*Node]int{}
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range g.Nodes {
			for _, s := range g.Successors(n) {
				if pos[n] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
