package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, one box per node, labeled
// "name\nopType". Useful for eyeballing clusterings (pass clusterOf to
// color nodes by cluster index; nil for monochrome).
func (g *Graph) DOT(clusterOf map[string]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", sanitizeDotID(g.Name))
	palette := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
		"#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
	}
	for _, n := range g.Nodes {
		attrs := fmt.Sprintf("label=\"%s\\n%s\"", escapeDot(n.Name), escapeDot(n.OpType))
		if clusterOf != nil {
			if c, ok := clusterOf[n.Name]; ok {
				attrs += fmt.Sprintf(", style=filled, fillcolor=%q", palette[c%len(palette)])
			}
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, attrs)
	}
	for _, n := range g.Nodes {
		for _, s := range g.Successors(n) {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, s.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDotID(s string) string {
	if s == "" {
		return "G"
	}
	return s
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}
