package onnx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/passes"
)

func TestRoundTripSqueezenet(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	m := FromGraph(g)
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m2.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Nodes) != len(g.Nodes) {
		t.Fatalf("round trip changed node count %d → %d", len(g.Nodes), len(g2.Nodes))
	}
	if len(g2.Initializers) != len(g.Initializers) {
		t.Fatalf("round trip changed initializer count")
	}
	// Semantics preserved: same outputs on same inputs.
	feeds := models.RandomInputs(g, 4)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.RunSequential(g2, feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].Equal(w) {
			t.Errorf("output %s differs after round trip", k)
		}
	}
}

func TestRoundTripAttrsSurviveJSON(t *testing.T) {
	// JSON turns ints into float64; the Attrs accessors must still work.
	g := models.MustBuild("googlenet", models.Config{ImageSize: 16})
	data, err := Marshal(FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g2.Nodes {
		if n.OpType == "Conv" {
			ks := n.Attrs.Ints("kernel_shape", nil)
			if len(ks) != 2 {
				t.Fatalf("kernel_shape lost in round trip: %v", n.Attrs)
			}
			return
		}
	}
	t.Fatal("no Conv found")
}

func TestSaveLoadFilePlainAndGzip(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	dir := t.TempDir()
	for _, name := range []string{"model.json", "model.json.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(g, path); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadGraph(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(g2.Nodes) != len(g.Nodes) {
			t.Errorf("%s: node count changed", name)
		}
	}
	// Gzip should be smaller.
	plain, _ := os.Stat(filepath.Join(dir, "model.json"))
	gz, _ := os.Stat(filepath.Join(dir, "model.json.gz"))
	if gz.Size() >= plain.Size() {
		t.Errorf("gzip (%d) not smaller than plain (%d)", gz.Size(), plain.Size())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/model.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestToGraphRejectsBadInitializer(t *testing.T) {
	m := &Model{Graph: GraphProto{
		Name:        "bad",
		Initializer: []TensorData{{Name: "w", Dims: []int{2, 2}, Data: []float32{1}}},
	}}
	if _, err := m.ToGraph(); err == nil || !strings.Contains(err.Error(), "initializer") {
		t.Errorf("bad initializer not rejected: %v", err)
	}
}

func TestToGraphValidates(t *testing.T) {
	m := &Model{Graph: GraphProto{
		Name: "invalid",
		Nodes: []NodeProto{
			{Name: "a", OpType: "Relu", Input: []string{"ghost"}, Output: []string{"va"}},
		},
		Output: []ValueProto{{Name: "va"}},
	}}
	if _, err := m.ToGraph(); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestFromGraphDeterministicOrder(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	a, err := Marshal(FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("serialization not deterministic")
	}
}

func TestModelMetadata(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	m := FromGraph(g)
	if m.IRVersion != CurrentIRVersion || m.ProducerName != "ramiel-go" {
		t.Errorf("metadata: %+v", m)
	}
	if m.Graph.Name != "squeezenet" {
		t.Errorf("graph name %q", m.Graph.Name)
	}
}

// TestRoundTripFusedGraph pins that the fusion pass's node encodings —
// FusedElementwise stage attrs ([]int / []float32 / "|"-joined string) and
// writeback-epilogue attrs — survive the JSON round trip: the reloaded
// graph must execute to the same outputs.
func TestRoundTripFusedGraph(t *testing.T) {
	g := models.MustBuild("yolo_v5", models.Config{ImageSize: 16})
	if _, err := passes.Fuse(g); err != nil {
		t.Fatal(err)
	}
	feeds := models.RandomInputs(g, 5)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, n := range g.Nodes {
		if n.OpType == "FusedElementwise" {
			fused++
		}
	}
	if fused == 0 {
		t.Fatal("fusion produced no FusedElementwise nodes in yolo_v5")
	}

	data, err := Marshal(FromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m2.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.RunSequential(g2, feeds)
	if err != nil {
		t.Fatalf("reloaded fused graph failed to run: %v", err)
	}
	for k, w := range want {
		if !got[k].AllClose(w, 1e-6, 1e-7) {
			t.Errorf("output %s diverges after round trip", k)
		}
	}
}
