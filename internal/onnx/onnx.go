// Package onnx implements a self-contained ONNX-subset model format. The
// paper ingests ONNX protobuf models from public zoos; this offline
// reproduction serializes the same information — graph topology, operator
// attributes, initializer tensors, graph inputs/outputs — as JSON, and
// converts it to and from the internal graph representation. The format is
// deliberately close to ONNX's GraphProto so real models map onto it
// field-for-field.
package onnx

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Model is the top-level container, mirroring ONNX ModelProto.
type Model struct {
	IRVersion    int        `json:"ir_version"`
	ProducerName string     `json:"producer_name"`
	Graph        GraphProto `json:"graph"`
}

// GraphProto mirrors ONNX GraphProto.
type GraphProto struct {
	Name        string       `json:"name"`
	Nodes       []NodeProto  `json:"node"`
	Initializer []TensorData `json:"initializer,omitempty"`
	Input       []ValueProto `json:"input"`
	Output      []ValueProto `json:"output"`
}

// NodeProto mirrors ONNX NodeProto.
type NodeProto struct {
	Name      string         `json:"name"`
	OpType    string         `json:"op_type"`
	Input     []string       `json:"input"`
	Output    []string       `json:"output"`
	Attribute map[string]any `json:"attribute,omitempty"`
}

// ValueProto names a graph input/output with an optional shape.
type ValueProto struct {
	Name string `json:"name"`
	Dims []int  `json:"dims,omitempty"`
}

// TensorData is a named constant tensor.
type TensorData struct {
	Name string    `json:"name"`
	Dims []int     `json:"dims"`
	Data []float32 `json:"float_data"`
}

// CurrentIRVersion is stamped into models this package writes.
const CurrentIRVersion = 8

// FromGraph converts an internal graph into a serializable Model.
func FromGraph(g *graph.Graph) *Model {
	m := &Model{
		IRVersion:    CurrentIRVersion,
		ProducerName: "ramiel-go",
		Graph: GraphProto{
			Name: g.Name,
		},
	}
	for _, n := range g.Nodes {
		m.Graph.Nodes = append(m.Graph.Nodes, NodeProto{
			Name:      n.Name,
			OpType:    n.OpType,
			Input:     append([]string(nil), n.Inputs...),
			Output:    append([]string(nil), n.Outputs...),
			Attribute: n.Attrs,
		})
	}
	for _, in := range g.Inputs {
		m.Graph.Input = append(m.Graph.Input, ValueProto{Name: in.Name, Dims: in.Shape})
	}
	for _, out := range g.Outputs {
		m.Graph.Output = append(m.Graph.Output, ValueProto{Name: out.Name, Dims: out.Shape})
	}
	// Deterministic initializer order: follow first-use order over nodes.
	emitted := map[string]bool{}
	emit := func(name string) {
		t, ok := g.Initializers[name]
		if !ok || emitted[name] {
			return
		}
		emitted[name] = true
		m.Graph.Initializer = append(m.Graph.Initializer, TensorData{
			Name: name,
			Dims: t.Shape(),
			Data: t.Data(),
		})
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			emit(in)
		}
	}
	for name := range g.Initializers {
		emit(name)
	}
	return m
}

// ToGraph converts a deserialized Model back into the internal graph
// representation and validates it.
func (m *Model) ToGraph() (*graph.Graph, error) {
	g := graph.New(m.Graph.Name)
	for _, in := range m.Graph.Input {
		g.Inputs = append(g.Inputs, graph.ValueInfo{Name: in.Name, Shape: tensor.NewShape(in.Dims...)})
	}
	for _, out := range m.Graph.Output {
		g.Outputs = append(g.Outputs, graph.ValueInfo{Name: out.Name, Shape: tensor.NewShape(out.Dims...)})
	}
	for _, init := range m.Graph.Initializer {
		sh := tensor.NewShape(init.Dims...)
		if sh.Numel() != len(init.Data) {
			return nil, fmt.Errorf("onnx: initializer %q has %d values for shape %v", init.Name, len(init.Data), sh)
		}
		data := make([]float32, len(init.Data))
		copy(data, init.Data)
		g.AddInitializer(init.Name, tensor.New(sh, data))
	}
	for _, np := range m.Graph.Nodes {
		g.AddNode(np.Name, np.OpType, np.Input, np.Output, ops.Attrs(np.Attribute))
	}
	g.Reindex()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: model %q invalid: %w", m.Graph.Name, err)
	}
	return g, nil
}

// Marshal serializes the model as JSON.
func Marshal(m *Model) ([]byte, error) {
	return json.Marshal(m)
}

// Unmarshal parses a JSON model.
func Unmarshal(data []byte) (*Model, error) {
	var m Model
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("onnx: decode: %w", err)
	}
	return &m, nil
}

// Save writes the model to path. A ".gz" suffix enables gzip compression,
// which matters for weight-bearing models.
func Save(m *Model, path string) error {
	data, err := Marshal(m)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		data = buf.Bytes()
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model from path, transparently decompressing ".gz" files.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("onnx: gunzip %s: %w", path, err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("onnx: gunzip %s: %w", path, err)
		}
	}
	return Unmarshal(data)
}

// LoadGraph is the common Load+ToGraph composition.
func LoadGraph(path string) (*graph.Graph, error) {
	m, err := Load(path)
	if err != nil {
		return nil, err
	}
	return m.ToGraph()
}

// SaveGraph is the common FromGraph+Save composition.
func SaveGraph(g *graph.Graph, path string) error {
	return Save(FromGraph(g), path)
}
