package codegen

import (
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/models"
)

func squeezeLanes(t *testing.T) (*graph.Graph, [][]*graph.Node) {
	t.Helper()
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	cl, err := core.LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.MergeClusters()
	lanes := make([][]*graph.Node, len(cl.Clusters))
	for i, c := range cl.Clusters {
		lanes[i] = c.Nodes
	}
	return g, lanes
}

func TestGenerateParses(t *testing.T) {
	g, lanes := squeezeLanes(t)
	src, err := Generate(g, lanes, Options{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, firstLines(src, 60))
	}
	if _, err := format.Source([]byte(src)); err != nil {
		t.Errorf("generated code does not gofmt: %v", err)
	}
}

func TestGenerateStructure(t *testing.T) {
	g, lanes := squeezeLanes(t)
	src, err := Generate(g, lanes, Options{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	// One function per cluster plus the sequential version and main.
	for i := range lanes {
		if !strings.Contains(src, "func cluster"+itoa(i)+"(") {
			t.Errorf("missing cluster%d function", i)
		}
	}
	for _, want := range []string{
		"func runSequential(", "func main()",
		"q.Send(", "q.Recv(", "q.Publish(",
		"ramiel.Call(", "DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// Paper property: readable — every node name appears as a comment.
	if !strings.Contains(src, "// "+g.Nodes[0].Name) &&
		!strings.Contains(src, g.Nodes[0].Name) {
		t.Error("node names absent from generated code")
	}
}

func TestGenerateSendRecvPairing(t *testing.T) {
	g, lanes := squeezeLanes(t)
	src, err := Generate(g, lanes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sends := strings.Count(src, "q.Send(")
	recvs := strings.Count(src, "q.Recv(")
	if sends == 0 || recvs == 0 {
		t.Fatal("no messaging generated for a multi-cluster plan")
	}
	if sends != recvs {
		t.Errorf("sends (%d) != recvs (%d): every put needs exactly one get", sends, recvs)
	}
}

func TestGenerateSingleLaneHasNoMessaging(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(g, [][]*graph.Node{order}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "q.Send(") || strings.Contains(src, "q.Recv(") {
		t.Error("single-lane program still exchanges messages")
	}
}

func TestGenerateRejectsBadLanes(t *testing.T) {
	g, lanes := squeezeLanes(t)
	if _, err := Generate(g, lanes[:1], Options{}); err == nil {
		t.Error("partial lane cover accepted")
	}
}

func TestGeneratePackageOption(t *testing.T) {
	g, lanes := squeezeLanes(t)
	src, err := Generate(g, lanes, Options{Package: "genpkg"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(srcAfterComments(src), "package genpkg") {
		t.Error("package option ignored")
	}
	if strings.Contains(src, "func main()") {
		t.Error("main emitted without EmitMain")
	}
}

func TestIdentSanitization(t *testing.T) {
	cases := map[string]string{
		"t_5":      "v_t_5",
		"a.b/c":    "v_a_b_c",
		"conv#2":   "v_conv_2",
		"αβ":       "v___",
		"Plain123": "v_Plain123",
	}
	for in, want := range cases {
		if got := ident(in); got != want {
			t.Errorf("ident(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValueLiteral(t *testing.T) {
	cases := map[string]any{
		"3":              3,
		"4":              int64(4),
		"2.5":            2.5,
		`"s"`:            "s",
		"[]int{1, 2}":    []int{1, 2},
		"[]float32{1.5}": []float32{1.5},
		"[]float64{0.5}": []float64{0.5},
		"[]any{1, 2.5}":  []any{1, 2.5},
		"float32(1.25)":  float32(1.25),
	}
	for want, in := range cases {
		if got := valueLiteral(in); got != want {
			t.Errorf("valueLiteral(%#v) = %q, want %q", in, got, want)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func srcAfterComments(s string) string {
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		return trimmed
	}
	return ""
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
