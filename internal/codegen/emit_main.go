package codegen

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// emitSequential writes the single-core non-parallel version the paper also
// generates "to ensure completeness and to evaluate the parallel code
// generation": every operator inline, in topological order, no queues.
func emitSequential(b *strings.Builder, g *graph.Graph) {
	order, err := g.TopoSort()
	if err != nil {
		// Generate callers validate the graph first; emit a comment rather
		// than corrupt output if they did not.
		fmt.Fprintf(b, "// sequential version omitted: %v\n\n", err)
		return
	}
	b.WriteString("// runSequential executes the whole graph on the calling goroutine; it is\n")
	b.WriteString("// the reference the parallel clusters are validated against.\n")
	b.WriteString("func runSequential(env ramiel.Env) (ramiel.Env, error) {\n")
	b.WriteString("\tout := ramiel.Env{}\n")
	defined := map[string]bool{}
	for _, n := range order {
		args := make([]string, len(n.Inputs))
		for i, in := range n.Inputs {
			if defined[in] {
				args[i] = ident(in)
			} else {
				args[i] = fmt.Sprintf("env[%q]", in)
			}
		}
		outsVar := "outs_" + sanitize(n.Name)
		fmt.Fprintf(b, "\t%s, err := ramiel.Call(%q, []*ramiel.Tensor{%s}, %s) // %s\n",
			outsVar, n.OpType, strings.Join(args, ", "), attrLiteral(n), n.Name)
		b.WriteString("\tif err != nil {\n\t\treturn nil, err\n\t}\n")
		outsUsed := false
		for i, outName := range n.Outputs {
			consumed := len(g.Consumers(outName)) > 0
			isOut := g.IsGraphOutput(outName)
			if !consumed && !isOut {
				continue
			}
			fmt.Fprintf(b, "\t%s := %s[%d]\n", ident(outName), outsVar, i)
			defined[outName] = true
			outsUsed = true
			if isOut {
				fmt.Fprintf(b, "\tout[%q] = %s\n", outName, ident(outName))
			}
			if !consumed && isOut {
				continue
			}
			if !consumed {
				fmt.Fprintf(b, "\t_ = %s\n", ident(outName))
			}
		}
		if !outsUsed {
			fmt.Fprintf(b, "\t_ = %s\n", outsVar)
		}
	}
	b.WriteString("\treturn out, nil\n}\n\n")
}

// emitMain writes a runnable driver: build the environment (from a model
// file or synthetic weights), launch one goroutine per cluster connected by
// queues, time the run, and cross-check against the sequential version.
func emitMain(b *strings.Builder, g *graph.Graph, lanes int, opts Options) {
	b.WriteString("func main() {\n")
	switch {
	case opts.ModelPath != "":
		fmt.Fprintf(b, "\tenv, err := ramiel.LoadEnv(%q)\n", opts.ModelPath)
		b.WriteString("\tif err != nil {\n\t\tlog.Fatal(err)\n\t}\n")
	case opts.CompileOptsExpr != "":
		// Optimization passes materialize initializers the base model does
		// not have (folded constants, fused BN weights); replaying the same
		// build + compile reproduces exactly the names this code references.
		cfg := opts.ModelConfigExpr
		if cfg == "" {
			cfg = "ramiel.ModelConfig{}"
		}
		fmt.Fprintf(b, "\tenv := ramiel.CompiledEnv(%q, %s, %s)\n", g.Name, cfg, opts.CompileOptsExpr)
		b.WriteString("\tvar err error\n")
	default:
		fmt.Fprintf(b, "\tenv := ramiel.SyntheticEnv(%q)\n", g.Name)
		b.WriteString("\tvar err error\n")
	}
	fmt.Fprintf(b, "\tq := ramiel.NewQueues(%d)\n", lanes)
	b.WriteString("\tstart := time.Now()\n")
	b.WriteString("\terrs := make(chan error, " + fmt.Sprint(lanes) + ")\n")
	for i := 0; i < lanes; i++ {
		fmt.Fprintf(b, "\tgo func() { errs <- cluster%d(env, q) }()\n", i)
	}
	fmt.Fprintf(b, "\tfor i := 0; i < %d; i++ {\n", lanes)
	b.WriteString("\t\tif err = <-errs; err != nil {\n\t\t\tlog.Fatal(err)\n\t\t}\n\t}\n")
	b.WriteString("\tparallel := time.Since(start)\n")
	b.WriteString("\tgot := q.Published()\n\n")
	b.WriteString("\tstart = time.Now()\n")
	b.WriteString("\twant, err := runSequential(env)\n")
	b.WriteString("\tif err != nil {\n\t\tlog.Fatal(err)\n\t}\n")
	b.WriteString("\tsequential := time.Since(start)\n\n")
	b.WriteString("\tfor name, w := range want {\n")
	b.WriteString("\t\tif gTen, ok := got[name]; !ok || !gTen.AllClose(w, 1e-4, 1e-5) {\n")
	b.WriteString("\t\t\tlog.Fatalf(\"output %q differs between parallel and sequential run\", name)\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "\tfmt.Printf(\"%s: parallel %%v, sequential %%v, speedup %%.2fx, outputs verified\\n\",\n", g.Name)
	b.WriteString("\t\tparallel, sequential, float64(sequential)/float64(parallel))\n")
	b.WriteString("}\n")
}
