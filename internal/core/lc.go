package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
)

// LinearCluster runs the recursive critical-path-based Linear Clustering of
// Algorithm 1 (Kim & Browne style): repeatedly pick the unclustered ready
// node with the greatest weighted distance-to-end, then walk the heaviest
// remaining successor chain, claiming each node for the new cluster and
// zeroing its other edges out of contention. Iterating until no nodes
// remain yields a partition into linear paths, each the critical path of
// the graph that remained when it was peeled.
func LinearCluster(g *graph.Graph, m cost.Model) (*Clustering, error) {
	// Distance pass.
	dist, err := cost.DistanceToEnd(g, m)
	if err != nil {
		return nil, fmt.Errorf("core: distance pass: %w", err)
	}

	// Mutable edge structure, node-granular: out[n] and in[n] are the
	// remaining edge sets, pruned as the algorithm zeroes nodes out.
	remaining := make(map[*graph.Node]bool, len(g.Nodes))
	out := make(map[*graph.Node]map[*graph.Node]bool, len(g.Nodes))
	in := make(map[*graph.Node]map[*graph.Node]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		remaining[n] = true
		out[n] = map[*graph.Node]bool{}
		in[n] = map[*graph.Node]bool{}
	}
	for _, n := range g.Nodes {
		for _, s := range g.Successors(n) {
			out[n][s] = true
			in[s][n] = true
		}
	}

	cl := &Clustering{Graph: g, Dist: dist, Model: m}
	for len(remaining) > 0 {
		// readyL: remaining nodes with no remaining incoming edges.
		var cNode *graph.Node
		for n := range remaining {
			if len(in[n]) != 0 {
				continue
			}
			if cNode == nil || better(dist, n, cNode) {
				cNode = n
			}
		}
		if cNode == nil {
			// Cannot happen on a DAG: some node always has indegree 0.
			return nil, fmt.Errorf("core: no ready node among %d remaining (cycle?)", len(remaining))
		}

		cluster := &Cluster{ID: len(cl.Clusters), Nodes: []*graph.Node{cNode}}
		delete(remaining, cNode)
		for len(out[cNode]) > 0 {
			// Heaviest remaining successor continues the path.
			var sNode *graph.Node
			for s := range out[cNode] {
				if sNode == nil || better(dist, s, sNode) {
					sNode = s
				}
			}
			// Zero out cNode's other outgoing edges and all of sNode's
			// incoming edges (Algorithm 1's two removal steps).
			for s := range out[cNode] {
				if s != sNode {
					delete(in[s], cNode)
				}
			}
			out[cNode] = map[*graph.Node]bool{}
			for p := range in[sNode] {
				delete(out[p], sNode)
			}
			in[sNode] = map[*graph.Node]bool{}

			cluster.Nodes = append(cluster.Nodes, sNode)
			delete(remaining, sNode)
			cNode = sNode
		}
		cl.Clusters = append(cl.Clusters, cluster)
	}
	cl.sortClustersByStart()
	return cl, nil
}

// better orders nodes by distance-to-end, breaking ties by ID so the
// algorithm is deterministic.
func better(dist map[*graph.Node]float64, a, b *graph.Node) bool {
	if dist[a] != dist[b] {
		return dist[a] > dist[b]
	}
	return a.ID < b.ID
}
