package core

import (
	"sort"

	"repro/internal/graph"
)

// sSpan is the start of a cluster's execution window: the distance-to-end
// of its entry node (the larger value — further from the end means
// earlier in time).
func (cl *Clustering) sSpan(c *Cluster) float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	return cl.Dist[c.Nodes[0]]
}

// eSpan is the end of the window: the distance-to-end of the exit node.
func (cl *Clustering) eSpan(c *Cluster) float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	return cl.Dist[c.Nodes[len(c.Nodes)-1]]
}

// mergeOnce is Algorithm 2 (MergeClusters): one sweep over all cluster
// pairs, combining the first pair found whose [eSpan, sSpan] windows do not
// overlap, marking both so they are not reused this sweep. Returns the new
// cluster list and whether any merge happened.
func (cl *Clustering) mergeOnce(clusters []*Cluster) ([]*Cluster, bool) {
	merged := []*Cluster{}
	skip := map[*Cluster]bool{}
	taken := map[*Cluster]bool{}
	mergeDone := false

	for _, cl1 := range clusters {
		if taken[cl1] {
			continue
		}
		for _, cl2 := range clusters {
			if cl1 == cl2 || skip[cl1] || skip[cl2] || taken[cl2] {
				continue
			}
			// Windows do not overlap when one cluster starts after the
			// other has finished (in distance-to-end coordinates, "after"
			// means a smaller value).
			if cl.sSpan(cl1) < cl.eSpan(cl2) || cl.sSpan(cl2) < cl.eSpan(cl1) {
				mc := &Cluster{Nodes: append(append([]*graph.Node{}, cl1.Nodes...), cl2.Nodes...)}
				// Keep execution order: decreasing distance-to-end.
				sort.SliceStable(mc.Nodes, func(i, j int) bool {
					di, dj := cl.Dist[mc.Nodes[i]], cl.Dist[mc.Nodes[j]]
					if di != dj {
						return di > dj
					}
					return mc.Nodes[i].ID < mc.Nodes[j].ID
				})
				merged = append(merged, mc)
				skip[cl1], skip[cl2] = true, true
				taken[cl1], taken[cl2] = true, true
				mergeDone = true
				break
			}
		}
		if !taken[cl1] {
			merged = append(merged, cl1)
			taken[cl1] = true
		}
	}
	return merged, mergeDone
}

// MergeClusters is Algorithm 3 (Iterative Cluster Merging): run Algorithm 2
// until a fixed point where no two clusters have disjoint execution
// windows. It mutates the receiver's cluster list in place and returns the
// receiver for chaining.
func (cl *Clustering) MergeClusters() *Clustering {
	clusters := cl.Clusters
	for {
		next, mergeDone := cl.mergeOnce(clusters)
		clusters = next
		if !mergeDone {
			break
		}
	}
	cl.Clusters = clusters
	cl.sortClustersByStart()
	return cl
}
