package core
