// Package core implements the paper's primary contribution: the recursive
// critical-path-based Linear Clustering algorithm (Algorithm 1) with the
// iterative cluster-merging pass (Algorithms 2 and 3). A clustering is a
// partition of the dataflow graph's nodes; each cluster is intended to run
// on its own core, with cross-cluster tensor dependences carried by
// messages.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/graph"
)

// Cluster is one group of nodes mapped to a single execution lane.
type Cluster struct {
	// ID is the cluster index within its Clustering.
	ID int
	// Nodes are in intended execution order (for a fresh linear cluster,
	// the critical-path order; for merged clusters, decreasing
	// distance-to-end).
	Nodes []*graph.Node
}

// Cost sums the model cost of the cluster's nodes.
func (c *Cluster) Cost(m cost.Model) float64 {
	var t float64
	for _, n := range c.Nodes {
		t += m.NodeCost(n)
	}
	return t
}

// Names returns the node names, in cluster order.
func (c *Cluster) Names() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Name
	}
	return out
}

func (c *Cluster) String() string {
	return fmt.Sprintf("C%d[%d nodes]", c.ID, len(c.Nodes))
}

// Clustering is a partition of a graph's nodes into clusters plus the
// distance-to-end table the clustering was computed against.
type Clustering struct {
	Graph    *graph.Graph
	Clusters []*Cluster
	// Dist is the weighted distance-to-end of every node (the LC
	// "distance pass" output), reused by merging and hyperclustering.
	Dist map[*graph.Node]float64
	// Model is the cost model the distances were computed with.
	Model cost.Model
}

// ClusterOf returns a node-name → cluster-ID map (for DOT coloring and the
// executor's ownership test).
func (cl *Clustering) ClusterOf() map[string]int {
	out := make(map[string]int, len(cl.Graph.Nodes))
	for _, c := range cl.Clusters {
		for _, n := range c.Nodes {
			out[n.Name] = c.ID
		}
	}
	return out
}

// Validate checks the partition property: every graph node appears in
// exactly one cluster.
func (cl *Clustering) Validate() error {
	seen := map[*graph.Node]int{}
	for _, c := range cl.Clusters {
		for _, n := range c.Nodes {
			if prev, dup := seen[n]; dup {
				return fmt.Errorf("core: node %s in clusters %d and %d", n.Name, prev, c.ID)
			}
			seen[n] = c.ID
		}
	}
	for _, n := range cl.Graph.Nodes {
		if _, ok := seen[n]; !ok {
			return fmt.Errorf("core: node %s not assigned to any cluster", n.Name)
		}
	}
	if len(seen) != len(cl.Graph.Nodes) {
		return fmt.Errorf("core: clustering covers %d nodes, graph has %d", len(seen), len(cl.Graph.Nodes))
	}
	return nil
}

// CrossEdges counts tensor dependences that cross cluster boundaries — the
// messages the generated parallel code will exchange.
func (cl *Clustering) CrossEdges() int {
	owner := cl.ClusterOf()
	count := 0
	for _, n := range cl.Graph.Nodes {
		for _, s := range cl.Graph.Successors(n) {
			if owner[n.Name] != owner[s.Name] {
				count++
			}
		}
	}
	return count
}

// String renders a compact summary.
func (cl *Clustering) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Clustering(%s): %d clusters", cl.Graph.Name, len(cl.Clusters))
	for _, c := range cl.Clusters {
		fmt.Fprintf(&b, " %s", c)
	}
	return b.String()
}

// sortClustersByStart orders clusters by decreasing entry distance-to-end
// (i.e. earliest-starting cluster first) for stable, readable output.
func (cl *Clustering) sortClustersByStart() {
	sort.SliceStable(cl.Clusters, func(i, j int) bool {
		ci, cj := cl.Clusters[i], cl.Clusters[j]
		if len(ci.Nodes) == 0 || len(cj.Nodes) == 0 {
			return len(ci.Nodes) > len(cj.Nodes)
		}
		di := cl.Dist[ci.Nodes[0]]
		dj := cl.Dist[cj.Nodes[0]]
		if di != dj {
			return di > dj
		}
		return ci.Nodes[0].ID < cj.Nodes[0].ID
	})
	for i, c := range cl.Clusters {
		c.ID = i
	}
}
