package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// forkJoin builds the paper's Fig. 1 shape: a trunk that forks into two
// conv paths which reconverge at a concat, repeated `reps` times.
func forkJoin(reps int) *graph.Graph {
	g := graph.New("forkjoin")
	g.Inputs = []graph.ValueInfo{{Name: "x0"}}
	cur := "x0"
	for r := 0; r < reps; r++ {
		s := "sq" + itoa(r)
		g.AddNode("squeeze"+itoa(r), "Conv", []string{cur}, []string{s},
			ops.Attrs{"kernel_shape": []int{1, 1}})
		a := "a" + itoa(r)
		bOut := "b" + itoa(r)
		g.AddNode("expA"+itoa(r), "Conv", []string{s}, []string{a},
			ops.Attrs{"kernel_shape": []int{1, 1}})
		g.AddNode("expB"+itoa(r), "Conv", []string{s}, []string{bOut},
			ops.Attrs{"kernel_shape": []int{3, 3}})
		out := "cat" + itoa(r)
		g.AddNode("concat"+itoa(r), "Concat", []string{a, bOut}, []string{out}, nil)
		cur = out
	}
	g.Outputs = []graph.ValueInfo{{Name: cur}}
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestLinearClusterPartition(t *testing.T) {
	g := forkJoin(4)
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinearClusterPathsAreLinear(t *testing.T) {
	// Each fresh LC cluster must be a path: consecutive nodes connected by
	// an edge in the original graph.
	g := forkJoin(5)
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clusters {
		for i := 1; i < len(c.Nodes); i++ {
			prev, cur := c.Nodes[i-1], c.Nodes[i]
			found := false
			for _, s := range g.Successors(prev) {
				if s == cur {
					found = true
				}
			}
			if !found {
				t.Fatalf("cluster %d: %s does not feed %s", c.ID, prev.Name, cur.Name)
			}
		}
	}
}

func TestLinearClusterFirstClusterIsCriticalPath(t *testing.T) {
	g := forkJoin(3)
	m := cost.DefaultModel()
	cl, err := LinearCluster(g, m)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := cost.CriticalPath(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 (earliest-starting, which for LC is the first peeled path)
	// must contain exactly the critical-path nodes.
	c0 := map[string]bool{}
	for _, n := range cl.Clusters[0].Nodes {
		c0[n.Name] = true
	}
	for _, n := range cp {
		if !c0[n.Name] {
			t.Fatalf("critical-path node %s not in first cluster %v", n.Name, cl.Clusters[0].Names())
		}
	}
	if len(cl.Clusters[0].Nodes) != len(cp) {
		t.Errorf("first cluster has %d nodes, critical path has %d", len(cl.Clusters[0].Nodes), len(cp))
	}
}

func TestLinearClusterSqueezenetShape(t *testing.T) {
	// Paper Fig. 5: Squeezenet's LC yields one long main cluster (the
	// heavy conv chain) plus small side clusters of expand convs; the
	// fork-join toy shows the same shape: cluster 0 long, others length 1.
	g := forkJoin(8)
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) != 9 { // main path + 8 side expands
		t.Fatalf("got %d clusters, want 9: %v", len(cl.Clusters), cl)
	}
	if len(cl.Clusters[0].Nodes) != 8*3 { // squeeze+expB+concat per rep
		t.Errorf("main cluster has %d nodes", len(cl.Clusters[0].Nodes))
	}
}

func TestMergeClustersCollapsesDisjointWindows(t *testing.T) {
	// The 8 side clusters of forkJoin(8) occupy pairwise-disjoint time
	// windows (one per rep), so merging must collapse them into one merged
	// side cluster: 9 → 2, the paper's exact Squeezenet row in Table II.
	g := forkJoin(8)
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	pre := len(cl.Clusters)
	cl.MergeClusters()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pre != 9 || len(cl.Clusters) != 2 {
		t.Errorf("merge: %d → %d clusters, want 9 → 2", pre, len(cl.Clusters))
	}
}

func TestMergePreservesNodeSet(t *testing.T) {
	g := forkJoin(6)
	cl, _ := LinearCluster(g, cost.DefaultModel())
	before := 0
	for _, c := range cl.Clusters {
		before += len(c.Nodes)
	}
	cl.MergeClusters()
	after := 0
	for _, c := range cl.Clusters {
		after += len(c.Nodes)
	}
	if before != after || after != len(g.Nodes) {
		t.Errorf("merge changed node count: %d → %d (graph %d)", before, after, len(g.Nodes))
	}
}

func TestMergedClusterOrderRespectsDistance(t *testing.T) {
	g := forkJoin(6)
	cl, _ := LinearCluster(g, cost.DefaultModel())
	cl.MergeClusters()
	for _, c := range cl.Clusters {
		for i := 1; i < len(c.Nodes); i++ {
			if cl.Dist[c.Nodes[i-1]] < cl.Dist[c.Nodes[i]] {
				t.Fatalf("cluster %d nodes out of distance order at %d", c.ID, i)
			}
		}
	}
}

func TestClusterOfAndCrossEdges(t *testing.T) {
	g := forkJoin(2)
	cl, _ := LinearCluster(g, cost.DefaultModel())
	owner := cl.ClusterOf()
	if len(owner) != len(g.Nodes) {
		t.Fatalf("ClusterOf covers %d of %d nodes", len(owner), len(g.Nodes))
	}
	x := cl.CrossEdges()
	if x <= 0 {
		t.Errorf("fork-join should have cross edges, got %d", x)
	}
	cl.MergeClusters()
	x2 := cl.CrossEdges()
	if x2 > x {
		t.Errorf("merging increased cross edges: %d → %d", x, x2)
	}
}

func TestLinearClusterSingleNode(t *testing.T) {
	g := graph.New("one")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("only", "Relu", []string{"x"}, []string{"y"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "y"}}
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) != 1 || len(cl.Clusters[0].Nodes) != 1 {
		t.Errorf("clustering = %v", cl)
	}
	cl.MergeClusters()
	if len(cl.Clusters) != 1 {
		t.Errorf("merge broke single cluster: %v", cl)
	}
}

func TestLinearClusterEmptyGraph(t *testing.T) {
	g := graph.New("empty")
	cl, err := LinearCluster(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) != 0 {
		t.Errorf("empty graph produced clusters: %v", cl)
	}
}

func TestLinearClusterCyclicGraphRejected(t *testing.T) {
	g := graph.New("cyc")
	g.AddNode("a", "Relu", []string{"vb"}, []string{"va"}, nil)
	g.AddNode("b", "Relu", []string{"va"}, []string{"vb"}, nil)
	if _, err := LinearCluster(g, cost.DefaultModel()); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestClusterCost(t *testing.T) {
	g := forkJoin(1)
	m := cost.DefaultModel()
	cl, _ := LinearCluster(g, m)
	var total float64
	for _, c := range cl.Clusters {
		total += c.Cost(m)
	}
	if total != cost.GraphCost(g, m) {
		t.Errorf("cluster costs sum %v, graph cost %v", total, cost.GraphCost(g, m))
	}
}

// Property: LC on random DAGs always yields a valid partition, and merging
// preserves it while never increasing the cluster count.
func TestLCAndMergePartitionProperty(t *testing.T) {
	m := cost.DefaultModel()
	f := func(seed uint32, n0 uint8) bool {
		n := int(n0%50) + 1
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)+3), n)
		cl, err := LinearCluster(g, m)
		if err != nil {
			return false
		}
		if cl.Validate() != nil {
			return false
		}
		pre := len(cl.Clusters)
		cl.MergeClusters()
		return cl.Validate() == nil && len(cl.Clusters) <= pre
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: merging reaches a fixed point — a second MergeClusters call
// changes nothing.
func TestMergeFixedPoint(t *testing.T) {
	m := cost.DefaultModel()
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)*11+5), 40)
		cl, err := LinearCluster(g, m)
		if err != nil {
			return false
		}
		cl.MergeClusters()
		k := len(cl.Clusters)
		cl.MergeClusters()
		return len(cl.Clusters) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: no two merged clusters still have disjoint windows (otherwise
// the fixed point claim of Algorithm 3 would be violated).
func TestMergeNoRemainingDisjointWindows(t *testing.T) {
	m := cost.DefaultModel()
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)*7+9), 30)
		cl, err := LinearCluster(g, m)
		if err != nil {
			return false
		}
		cl.MergeClusters()
		for i, a := range cl.Clusters {
			for j, b := range cl.Clusters {
				if i == j {
					continue
				}
				if cl.sSpan(a) < cl.eSpan(b) || cl.sSpan(b) < cl.eSpan(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
