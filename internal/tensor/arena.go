package tensor

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// numClasses covers capacities up to 2^32 elements (16 GiB of float32),
// far beyond any plan this runtime executes.
const numClasses = 33

// ArenaStats counts arena traffic. All fields are atomics so several
// arenas (one per serving worker) can share a single stats block and the
// hot path never takes a lock beyond the arena's own.
type ArenaStats struct {
	// Gets counts allocations served; Hits the subset satisfied from a
	// free list, Misses the subset that had to grow the heap.
	Gets   atomic.Int64
	Hits   atomic.Int64
	Misses atomic.Int64
	// Puts counts buffers returned for reuse.
	Puts atomic.Int64
	// AllocBytes is the total bytes of fresh backing arrays created on
	// misses — the arena's entire footprint came from here.
	AllocBytes atomic.Int64
	// InUseBytes tracks bytes currently handed out (Get minus Put);
	// PeakBytes is its high-water mark, the observed peak working set.
	InUseBytes atomic.Int64
	PeakBytes  atomic.Int64
	// HeldBytes tracks bytes parked in free lists awaiting reuse.
	HeldBytes atomic.Int64
	// BudgetBytes, when positive, is a hard cap on InUseBytes enforced by
	// every arena sharing this block: a Get that would push the gauge past
	// it panics with *BudgetError instead of growing the heap. Zero (the
	// default) means unlimited. It lives on the shared stats block — not
	// the arena — so one budget governs all of a server's worker arenas.
	BudgetBytes atomic.Int64
	// BudgetDenials counts Gets refused by the budget.
	BudgetDenials atomic.Int64
}

// SetBudget installs (or, with 0, removes) the shared in-use byte cap.
func (s *ArenaStats) SetBudget(n int64) { s.BudgetBytes.Store(n) }

// ErrArenaBudget is the sentinel wrapped by *BudgetError: a run tried to
// allocate past the arena byte budget. Callers match it with errors.Is.
var ErrArenaBudget = errors.New("arena budget exceeded")

// BudgetError reports a Get denied by ArenaStats.BudgetBytes. Because the
// Allocator interface has no error return, the arena raises it as a panic
// value; the plan executor recovers it and unwinds the run like a
// cancellation, so it surfaces to callers as an ordinary error.
type BudgetError struct {
	// Requested is the rounded-up byte size of the denied allocation.
	Requested int64
	// InUse and Budget are the shared gauge and cap at denial time.
	InUse  int64
	Budget int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: need %d bytes with %d of %d in use",
		ErrArenaBudget, e.Requested, e.InUse, e.Budget)
}

func (e *BudgetError) Unwrap() error { return ErrArenaBudget }

// notePeak advances the PeakBytes high-water mark to at least v.
func (s *ArenaStats) notePeak(v int64) {
	for {
		old := s.PeakBytes.Load()
		if v <= old || s.PeakBytes.CompareAndSwap(old, v) {
			return
		}
	}
}

// ArenaStatsSnapshot is the JSON-friendly view of ArenaStats.
type ArenaStatsSnapshot struct {
	Gets          int64 `json:"gets"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	AllocBytes    int64 `json:"alloc_bytes"`
	InUseBytes    int64 `json:"in_use_bytes"`
	PeakBytes     int64 `json:"peak_bytes"`
	HeldBytes     int64 `json:"held_bytes"`
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
	BudgetDenials int64 `json:"budget_denials,omitempty"`
}

// Snapshot reads the counters.
func (s *ArenaStats) Snapshot() ArenaStatsSnapshot {
	return ArenaStatsSnapshot{
		Gets:          s.Gets.Load(),
		Hits:          s.Hits.Load(),
		Misses:        s.Misses.Load(),
		Puts:          s.Puts.Load(),
		AllocBytes:    s.AllocBytes.Load(),
		InUseBytes:    s.InUseBytes.Load(),
		PeakBytes:     s.PeakBytes.Load(),
		HeldBytes:     s.HeldBytes.Load(),
		BudgetBytes:   s.BudgetBytes.Load(),
		BudgetDenials: s.BudgetDenials.Load(),
	}
}

// Arena is a size-classed recycler of float32 buffers: Get rounds the
// request up to a power-of-two class and reuses a previously Put buffer of
// at least that capacity when one is parked, so a steady stream of
// identical inference runs converges to zero fresh heap allocation for
// intermediate tensors.
//
// An Arena is safe for concurrent use — the lane goroutines of one plan
// execution allocate and release through the same arena — but it is
// designed to be owned by one run at a time and kept alive across runs
// (e.g. per serving worker, via sync.Pool). It never shrinks on its own;
// dropping the whole Arena releases everything to the GC.
type Arena struct {
	mu sync.Mutex
	// free[c] parks buffers with cap in [2^c, 2^(c+1)) — floor bucketing on
	// Put, ceiling lookup on Get, so every reused buffer fits.
	free [numClasses][][]float32
	// held mirrors this arena's contribution to stats.HeldBytes (guarded
	// by mu), so a collected arena can withdraw it — see the finalizer in
	// NewArenaWithStats.
	held int64
	// out mirrors this arena's contribution to stats.InUseBytes (bytes
	// handed out, not yet Put or NoteEscape'd; atomic because one run's
	// lanes Get/Put concurrently), so an aborted run can withdraw what it
	// abandoned — see AbandonOutstanding.
	out atomic.Int64

	stats *ArenaStats
}

// NewArena creates an arena with its own stats block.
func NewArena() *Arena { return NewArenaWithStats(nil) }

// NewArenaWithStats creates an arena reporting into a shared stats block
// (nil allocates a private one). Serving runtimes pass one block to every
// worker arena so /v1/stats aggregates them.
func NewArenaWithStats(st *ArenaStats) *Arena {
	if st == nil {
		st = &ArenaStats{}
	}
	a := &Arena{stats: st}
	// Pooled arenas are dropped whole under GC pressure (sync.Pool
	// semantics). Their parked buffers must leave the shared HeldBytes
	// gauge with them, or a long-running server's metric ratchets upward
	// past what is actually parked. By finalization time nothing else
	// references the arena, so reading held without mu is safe.
	runtime.SetFinalizer(a, func(a *Arena) { a.stats.HeldBytes.Add(-a.held) })
	return a
}

// Stats returns the arena's stats block (possibly shared).
func (a *Arena) Stats() *ArenaStats { return a.stats }

// classFor returns the ceiling class c such that 2^c >= n.
func classFor(n int) int { return bits.Len(uint(n - 1)) }

// Get implements Allocator: a zeroed slice of len n, recycled when a
// parked buffer of sufficient capacity exists.
func (a *Arena) Get(n int) []float32 { return a.get(n, true) }

// GetUninit is Get without the zero fill, for callers that overwrite the
// whole buffer immediately (the copy constructors: CloneIn, FromSliceIn,
// FullIn). Contents of a recycled buffer are arbitrary.
func (a *Arena) GetUninit(n int) []float32 { return a.get(n, false) }

func (a *Arena) get(n int, zero bool) []float32 {
	if n <= 0 {
		return nil
	}
	a.stats.Gets.Add(1)
	c := classFor(n)
	// Budget gate: deny before touching the heap or the free lists, so a
	// denied Get leaves no accounting to unwind. The check is two atomic
	// loads when a budget is set and one when not — nothing on the hot
	// path's allocation fast case changes.
	if budget := a.stats.BudgetBytes.Load(); budget > 0 {
		need := 4 * int64(n)
		if c < numClasses {
			need = 4 * (int64(1) << c)
		}
		if in := a.stats.InUseBytes.Load(); in+need > budget {
			a.stats.BudgetDenials.Add(1)
			panic(&BudgetError{Requested: need, InUse: in, Budget: budget})
		}
	}
	if c >= numClasses {
		// Beyond the class table (> 2^32 elements): no class rounding, an
		// exact-size heap buffer with normal in-use accounting (Put floor-
		// buckets it into the top class, so the books stay balanced).
		a.stats.Misses.Add(1)
		buf := make([]float32, n)
		a.stats.AllocBytes.Add(4 * int64(cap(buf)))
		a.out.Add(4 * int64(cap(buf)))
		in := a.stats.InUseBytes.Add(4 * int64(cap(buf)))
		a.stats.notePeak(in)
		return buf
	}
	var buf []float32
	a.mu.Lock()
	// Exact class first; one class up as a fallback keeps mixed Put
	// capacities (floor-bucketed foreign buffers) usable without scanning
	// the whole table.
	for cc := c; cc < numClasses && cc <= c+1; cc++ {
		if l := len(a.free[cc]); l > 0 {
			buf = a.free[cc][l-1]
			a.free[cc][l-1] = nil
			a.free[cc] = a.free[cc][:l-1]
			a.held -= 4 * int64(cap(buf))
			break
		}
	}
	a.mu.Unlock()
	if buf != nil {
		a.stats.Hits.Add(1)
		a.stats.HeldBytes.Add(-4 * int64(cap(buf)))
		buf = buf[:n]
		if zero {
			clear(buf)
		}
	} else {
		a.stats.Misses.Add(1)
		buf = make([]float32, n, 1<<c) // make zeroes; no clear needed
		a.stats.AllocBytes.Add(4 * int64(cap(buf)))
	}
	a.out.Add(4 * int64(cap(buf)))
	in := a.stats.InUseBytes.Add(4 * int64(cap(buf)))
	a.stats.notePeak(in)
	return buf
}

// Put implements Allocator: parks buf for reuse. The buffer must not be
// read or written by the caller afterwards.
func (a *Arena) Put(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	// Floor bucketing: a buffer in free[c] always has cap >= 2^c. Oversize
	// buffers (beyond the class table) are not poolable — let the GC have
	// them rather than index out of range.
	c := bits.Len(uint(cap(buf))) - 1
	if c >= numClasses {
		return
	}
	a.stats.Puts.Add(1)
	a.out.Add(-4 * int64(cap(buf)))
	a.stats.InUseBytes.Add(-4 * int64(cap(buf)))
	a.stats.HeldBytes.Add(4 * int64(cap(buf)))
	a.mu.Lock()
	a.free[c] = append(a.free[c], buf[:0])
	a.held += 4 * int64(cap(buf))
	a.mu.Unlock()
}

// NoteEscape removes a Get-obtained buffer from the in-use accounting
// without parking it: the caller is handing it to an external owner (a
// graph output escaping to the client), so it stops being part of the
// arena's working set and ages out as ordinary heap memory. The buffer
// must not be Put afterwards. Without this, a long-running server's
// in-use/peak gauges would ratchet up by every escaped output forever.
func (a *Arena) NoteEscape(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	a.out.Add(-4 * int64(cap(buf)))
	a.stats.InUseBytes.Add(-4 * int64(cap(buf)))
}

// AbandonOutstanding reconciles the books after a failed or cancelled run:
// every buffer this arena handed out that was neither Put back nor
// NoteEscape'd is being dropped to the garbage collector by the unwound
// run, so its bytes leave the shared InUseBytes gauge with it. Without
// this, a serving runtime's in-use metric would ratchet upward with every
// aborted request while real memory did not. Call it only between runs
// (the arena's single-owner windows), after the aborted run's lanes have
// all exited.
func (a *Arena) AbandonOutstanding() {
	a.stats.InUseBytes.Add(-a.out.Swap(0))
}

// Held reports the number of buffers currently parked across all classes.
func (a *Arena) Held() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, l := range a.free {
		n += len(l)
	}
	return n
}
