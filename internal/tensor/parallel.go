package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// intraOpThreads is the process-wide degree of intra-operator parallelism,
// the analogue of OMP_NUM_THREADS in the paper's PyTorch substrate. The
// value 1 (the default) means kernels run serially inside the calling
// goroutine, which is what batch-size-1 task parallelism wants: clusters
// occupy one core each.
var intraOpThreads atomic.Int64

func init() { intraOpThreads.Store(1) }

// SetIntraOpThreads sets the number of worker goroutines kernels may use.
// Values below 1 are clamped to 1; values above runtime.NumCPU()*4 are
// clamped to that bound to avoid pathological oversubscription in tests.
func SetIntraOpThreads(n int) {
	if n < 1 {
		n = 1
	}
	if max := runtime.NumCPU() * 4; n > max {
		n = max
	}
	intraOpThreads.Store(int64(n))
}

// IntraOpThreads returns the current intra-op parallelism degree.
func IntraOpThreads() int { return int(intraOpThreads.Load()) }

// ParallelFor runs body(i) for every i in [0, n) using up to
// IntraOpThreads() goroutines, chunking the index space with the given
// minimum grain so tiny loops stay serial. It is the single primitive on
// which all intra-op parallel kernels are built.
func ParallelFor(n, grain int, body func(i int)) {
	ParallelRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelRange splits [0, n) into contiguous chunks of at least grain
// iterations and invokes body(lo, hi) for each, possibly concurrently.
// With IntraOpThreads() == 1 or n <= grain the body runs inline.
func ParallelRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	threads := IntraOpThreads()
	if threads == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > threads {
		chunks = threads
	}
	if chunks < 2 {
		body(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// WithIntraOpThreads runs f with the intra-op thread count temporarily set
// to n, restoring the previous value afterwards. Only safe when no kernels
// run concurrently with the change; benchmarks and examples use it.
func WithIntraOpThreads(n int, f func()) {
	prev := IntraOpThreads()
	SetIntraOpThreads(n)
	defer SetIntraOpThreads(prev)
	f()
}
