package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 array with row-major layout. The zero value is
// an empty scalar-free tensor; use New or Zeros to construct usable values.
type Tensor struct {
	shape Shape
	data  []float32
}

// New wraps data with the given shape. The data slice is used directly (not
// copied); its length must equal shape.Numel().
func New(shape Shape, data []float32) *Tensor {
	if len(data) != shape.Numel() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)",
			len(data), shape, shape.Numel()))
	}
	return &Tensor{shape: shape.Clone(), data: data}
}

// Zeros allocates a zero-filled tensor of the given shape.
func Zeros(dims ...int) *Tensor { return ZerosIn(nil, dims...) }

// ZerosLike allocates a zero-filled tensor with t's shape.
func ZerosLike(t *Tensor) *Tensor { return ZerosLikeIn(nil, t) }

// Full allocates a tensor of the given shape with every element set to v.
func Full(v float32, dims ...int) *Tensor { return FullIn(nil, v, dims...) }

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: Shape{}, data: []float32{v}}
}

// FromSlice builds a rank-1 tensor copying vals.
func FromSlice(vals []float32) *Tensor { return FromSliceIn(nil, vals) }

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice. Callers may read or write elements but
// must not re-slice beyond its length.
func (t *Tensor) Data() []float32 { return t.data }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	stride := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		d := idx[i]
		if d < 0 || d >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += d * stride
		stride *= t.shape[i]
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor { return t.CloneIn(nil) }

// Reshape returns a view-like tensor sharing t's data with a new shape.
// One dimension may be -1, in which case it is inferred. Returns an error
// when element counts cannot match.
func (t *Tensor) Reshape(dims ...int) (*Tensor, error) {
	s := NewShape(dims...)
	infer := -1
	known := 1
	for i, d := range s {
		if d == -1 {
			if infer >= 0 {
				return nil, fmt.Errorf("tensor: reshape with multiple -1 dims %v", s)
			}
			infer = i
			continue
		}
		if d < 0 {
			return nil, fmt.Errorf("tensor: reshape with negative dim %v", s)
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			return nil, fmt.Errorf("tensor: cannot infer reshape %v from %d elements", s, len(t.data))
		}
		s[infer] = len(t.data) / known
	} else if known != len(t.data) {
		return nil, fmt.Errorf("tensor: reshape %v incompatible with %d elements", s, len(t.data))
	}
	return &Tensor{shape: s, data: t.data}, nil
}

// Equal reports whether two tensors have identical shape and bit-identical
// contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.shape.Equal(o.shape) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] && !(isNaN32(t.data[i]) && isNaN32(o.data[i])) {
			return false
		}
	}
	return true
}

// AllClose reports whether two tensors agree element-wise within atol+rtol*|b|.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float64) bool {
	if !t.shape.Equal(o.shape) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(o.data[i])
		if math.IsNaN(a) && math.IsNaN(b) {
			continue
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// t and o, useful in test diagnostics. Panics if shapes differ.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.shape.Equal(o.shape) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", t.shape, o.shape))
	}
	var m float64
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// String renders a compact description: shape plus up to 8 leading values.
func (t *Tensor) String() string {
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	s := fmt.Sprintf("Tensor%v{", t.shape)
	for i := 0; i < show; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", t.data[i])
	}
	if show < n {
		s += " …"
	}
	return s + "}"
}

func isNaN32(f float32) bool { return f != f }
