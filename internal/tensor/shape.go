// Package tensor provides the dense numeric substrate used by the Ramiel
// operator kernels: shapes, float32 tensors, a deterministic RNG and a
// parallel-for helper that implements intra-operator parallelism.
//
// The package plays the role PyTorch's ATen plays for the paper's
// implementation: the clustering and code-generation layers never touch raw
// data, but the executors run real kernels from internal/ops on the values
// defined here.
package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the extents of a tensor, outermost dimension first.
// Conventions follow ONNX: activations are NCHW, matrices are (rows, cols).
type Shape []int

// NewShape copies dims into a fresh Shape.
func NewShape(dims ...int) Shape {
	s := make(Shape, len(dims))
	copy(s, dims)
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Numel returns the total number of elements, 1 for a scalar (rank 0).
// A shape containing a negative extent yields 0.
func (s Shape) Numel() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every extent is non-negative.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 0 {
			return false
		}
	}
	return true
}

// Strides returns row-major strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// String renders the shape as "[a b c]".
func (s Shape) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, d := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// Dim returns the extent of dimension i, supporting negative indices
// counted from the end (-1 is the innermost dimension).
func (s Shape) Dim(i int) int {
	if i < 0 {
		i += len(s)
	}
	if i < 0 || i >= len(s) {
		panic(fmt.Sprintf("tensor: dimension %d out of range for shape %v", i, s))
	}
	return s[i]
}

// Concat returns the shape that results from concatenating shapes along
// axis. All shapes must agree on every other dimension.
func Concat(axis int, shapes ...Shape) (Shape, error) {
	if len(shapes) == 0 {
		return nil, fmt.Errorf("tensor: concat of zero shapes")
	}
	base := shapes[0].Clone()
	if axis < 0 {
		axis += len(base)
	}
	if axis < 0 || axis >= len(base) {
		return nil, fmt.Errorf("tensor: concat axis %d out of range for %v", axis, shapes[0])
	}
	for _, sh := range shapes[1:] {
		if len(sh) != len(base) {
			return nil, fmt.Errorf("tensor: concat rank mismatch %v vs %v", base, sh)
		}
		for d := range sh {
			if d == axis {
				continue
			}
			if sh[d] != base[d] {
				return nil, fmt.Errorf("tensor: concat dim %d mismatch %v vs %v", d, base, sh)
			}
		}
		base[axis] += sh[axis]
	}
	return base, nil
}

// Broadcast returns the NumPy-style broadcast shape of a and b, or an error
// if they are incompatible.
func Broadcast(a, b Shape) (Shape, error) {
	ra, rb := len(a), len(b)
	r := ra
	if rb > r {
		r = rb
	}
	out := make(Shape, r)
	for i := 0; i < r; i++ {
		da, db := 1, 1
		if i >= r-ra {
			da = a[i-(r-ra)]
		}
		if i >= r-rb {
			db = b[i-(r-rb)]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}
