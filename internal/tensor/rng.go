package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used to
// fill weights and inputs reproducibly without importing math/rand, so the
// exact same model parameters are regenerated on every run and on every
// platform.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped so the
// zero value is still usable).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 advances the generator and returns 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	if r.state == 0 {
		r.state = 0x9E3779B97F4A7C15
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns an approximately standard-normal value using the
// Box-Muller transform.
func (r *RNG) Normal() float32 {
	u1 := float64(r.Float32())
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := float64(r.Float32())
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// FillUniform fills t with uniform values in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float32) {
	d := t.Data()
	for i := range d {
		d[i] = r.Uniform(lo, hi)
	}
}

// FillNormal fills t with mean+std*N(0,1) values.
func (r *RNG) FillNormal(t *Tensor, mean, std float32) {
	d := t.Data()
	for i := range d {
		d[i] = mean + std*r.Normal()
	}
}

// RandTensor allocates a tensor of the given shape filled with Kaiming-style
// uniform values scaled by 1/sqrt(fanIn of the innermost dimension); handy
// for generating synthetic weights whose activations stay well-conditioned.
func (r *RNG) RandTensor(dims ...int) *Tensor {
	t := Zeros(dims...)
	fan := 1
	if len(dims) > 0 {
		fan = dims[len(dims)-1]
		if len(dims) == 4 { // OIHW conv weight: fan-in = I*H*W
			fan = dims[1] * dims[2] * dims[3]
		}
	}
	if fan <= 0 {
		fan = 1
	}
	bound := float32(1.0 / math.Sqrt(float64(fan)))
	r.FillUniform(t, -bound, bound)
	return t
}
