package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumel(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{0}, 0},
		{Shape{3}, 3},
		{Shape{2, 3}, 6},
		{Shape{1, 3, 224, 224}, 150528},
		{Shape{-1, 2}, 0},
	}
	for _, c := range cases {
		if got := c.s.Numel(); got != c.want {
			t.Errorf("Numel(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := NewShape(2, 3, 4)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone %v not equal to original %v", c, s)
	}
	c[0] = 9
	if s[0] == 9 {
		t.Fatal("Clone did not copy the backing array")
	}
	if s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Equal accepted mismatched shapes")
	}
}

func TestShapeStrides(t *testing.T) {
	s := Shape{2, 3, 4}
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("Strides(%v) = %v, want %v", s, st, want)
		}
	}
}

func TestShapeDimNegative(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.Dim(-1) != 4 || s.Dim(0) != 2 {
		t.Fatalf("Dim indexing wrong: %d %d", s.Dim(-1), s.Dim(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("Dim out of range did not panic")
		}
	}()
	_ = s.Dim(3)
}

func TestConcatShapes(t *testing.T) {
	got, err := Concat(1, Shape{1, 16, 8, 8}, Shape{1, 32, 8, 8}, Shape{1, 16, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Shape{1, 64, 8, 8}) {
		t.Fatalf("Concat = %v", got)
	}
	if _, err := Concat(1, Shape{1, 16, 8, 8}, Shape{1, 16, 9, 8}); err == nil {
		t.Error("Concat accepted mismatched non-axis dims")
	}
	if _, err := Concat(7, Shape{1, 2}); err == nil {
		t.Error("Concat accepted out-of-range axis")
	}
	// Negative axis counts from the end.
	got, err = Concat(-1, Shape{2, 3}, Shape{2, 5})
	if err != nil || !got.Equal(Shape{2, 8}) {
		t.Fatalf("Concat(-1) = %v, %v", got, err)
	}
}

func TestBroadcast(t *testing.T) {
	got, err := Broadcast(Shape{1, 16, 1, 1}, Shape{4, 16, 8, 8})
	if err != nil || !got.Equal(Shape{4, 16, 8, 8}) {
		t.Fatalf("Broadcast = %v, %v", got, err)
	}
	got, err = Broadcast(Shape{5}, Shape{3, 1})
	if err != nil || !got.Equal(Shape{3, 5}) {
		t.Fatalf("Broadcast = %v, %v", got, err)
	}
	if _, err := Broadcast(Shape{3}, Shape{4}); err == nil {
		t.Error("Broadcast accepted incompatible shapes")
	}
}

func TestNewAndAt(t *testing.T) {
	tt := New(Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	if tt.At(1, 2) != 6 || tt.At(0, 0) != 1 {
		t.Fatalf("At wrong: %v %v", tt.At(1, 2), tt.At(0, 0))
	}
	tt.Set(42, 1, 0)
	if tt.At(1, 0) != 42 {
		t.Fatal("Set did not store")
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with wrong data length did not panic")
		}
	}()
	New(Shape{2, 2}, []float32{1, 2, 3})
}

func TestReshape(t *testing.T) {
	tt := New(Shape{2, 6}, make([]float32, 12))
	r, err := tt.Reshape(3, 4)
	if err != nil || !r.Shape().Equal(Shape{3, 4}) {
		t.Fatalf("Reshape = %v, %v", r.Shape(), err)
	}
	r, err = tt.Reshape(-1, 3)
	if err != nil || !r.Shape().Equal(Shape{4, 3}) {
		t.Fatalf("Reshape infer = %v, %v", r.Shape(), err)
	}
	if _, err := tt.Reshape(5, 5); err == nil {
		t.Error("Reshape accepted wrong element count")
	}
	if _, err := tt.Reshape(-1, -1); err == nil {
		t.Error("Reshape accepted two inferred dims")
	}
	// Reshape shares data.
	r, _ = tt.Reshape(12)
	r.Data()[0] = 7
	if tt.Data()[0] != 7 {
		t.Error("Reshape copied data instead of sharing")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Full(3, 2, 2)
	b := a.Clone()
	b.Data()[0] = 9
	if a.Data()[0] != 3 {
		t.Fatal("Clone shares storage")
	}
	if !a.Equal(Full(3, 2, 2)) {
		t.Fatal("original mutated")
	}
}

func TestEqualNaN(t *testing.T) {
	a := FromSlice([]float32{float32(math.NaN()), 1})
	b := FromSlice([]float32{float32(math.NaN()), 1})
	if !a.Equal(b) {
		t.Error("Equal should treat NaN==NaN for test purposes")
	}
	b.Data()[1] = 2
	if a.Equal(b) {
		t.Error("Equal missed a difference")
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := FromSlice([]float32{1.0000001, 2.0000002, 3})
	if !a.AllClose(b, 1e-5, 1e-6) {
		t.Error("AllClose rejected nearly-equal tensors")
	}
	c := FromSlice([]float32{1, 2, 4})
	if a.AllClose(c, 1e-5, 1e-6) {
		t.Error("AllClose accepted differing tensors")
	}
	if a.AllClose(FromSlice([]float32{1, 2}), 1, 1) {
		t.Error("AllClose accepted shape mismatch")
	}
}

func TestSumAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3})
	if a.Sum() != 2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	b := FromSlice([]float32{1, -2, 5})
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestScalarAndFromSlice(t *testing.T) {
	s := Scalar(4)
	if s.Rank() != 0 || s.Numel() != 1 || s.Data()[0] != 4 {
		t.Fatalf("Scalar wrong: %v", s)
	}
	v := FromSlice([]float32{1, 2})
	if v.Rank() != 1 || v.At(1) != 2 {
		t.Fatalf("FromSlice wrong: %v", v)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		u := r.Uniform(-2, 3)
		if u < -2 || u >= 3 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(42)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Normal())
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("Normal variance = %v, want ~1", variance)
	}
}

func TestRandTensorBounded(t *testing.T) {
	r := NewRNG(3)
	w := r.RandTensor(8, 4, 3, 3) // conv weight OIHW, fan-in 36
	bound := 1.0 / math.Sqrt(36)
	for _, v := range w.Data() {
		if float64(v) < -bound || float64(v) >= bound {
			t.Fatalf("RandTensor value %v outside ±%v", v, bound)
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	defer SetIntraOpThreads(1)
	for _, threads := range []int{1, 2, 4, 8} {
		SetIntraOpThreads(threads)
		const n = 1000
		hits := make([]int32, n)
		ParallelFor(n, 16, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d index %d hit %d times", threads, i, h)
			}
		}
	}
}

func TestParallelRangeChunksAreDisjoint(t *testing.T) {
	defer SetIntraOpThreads(1)
	SetIntraOpThreads(4)
	const n = 103
	sum := make([]int32, n)
	ParallelRange(n, 1, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			sum[i]++
		}
	})
	for i, s := range sum {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	ParallelFor(0, 1, func(int) { t.Fatal("body called for n=0") })
	called := 0
	ParallelFor(1, 100, func(i int) { called++ })
	if called != 1 {
		t.Fatalf("tiny loop ran %d times", called)
	}
}

func TestSetIntraOpThreadsClamps(t *testing.T) {
	defer SetIntraOpThreads(1)
	SetIntraOpThreads(-3)
	if IntraOpThreads() != 1 {
		t.Fatalf("negative clamp: %d", IntraOpThreads())
	}
	SetIntraOpThreads(1 << 20)
	if IntraOpThreads() > 1<<16 {
		t.Fatalf("upper clamp failed: %d", IntraOpThreads())
	}
}

func TestWithIntraOpThreadsRestores(t *testing.T) {
	SetIntraOpThreads(1)
	WithIntraOpThreads(4, func() {
		if IntraOpThreads() != 4 {
			t.Fatal("WithIntraOpThreads did not apply")
		}
	})
	if IntraOpThreads() != 1 {
		t.Fatal("WithIntraOpThreads did not restore")
	}
}

// Property: Broadcast is symmetric.
func TestBroadcastSymmetric(t *testing.T) {
	f := func(a0, b0 uint8) bool {
		a := Shape{int(a0%4) + 1, 1}
		b := Shape{1, int(b0%4) + 1}
		ab, err1 := Broadcast(a, b)
		ba, err2 := Broadcast(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Reshape preserves element count and data identity.
func TestReshapeRoundTrip(t *testing.T) {
	f := func(n0 uint8) bool {
		n := int(n0%16) + 1
		tt := Zeros(n, 3)
		r, err := tt.Reshape(3, n)
		if err != nil {
			return false
		}
		back, err := r.Reshape(n, 3)
		if err != nil {
			return false
		}
		return back.Numel() == tt.Numel() && back.Shape().Equal(tt.Shape())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
