package tensor

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestArenaGetZeroedAndSized(t *testing.T) {
	a := NewArena()
	b := a.Get(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want 128 (next power of two)", cap(b))
	}
	for i := range b {
		b[i] = float32(i)
	}
	a.Put(b)
	c := a.Get(90)
	if len(c) != 90 {
		t.Fatalf("len = %d, want 90", len(c))
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	st := a.Stats().Snapshot()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want gets 2, hits 1, misses 1, puts 1", st)
	}
}

func TestArenaClassSeparation(t *testing.T) {
	a := NewArena()
	small := a.Get(8)
	a.Put(small)
	// A much larger request must not receive the small buffer.
	big := a.Get(4096)
	if cap(big) < 4096 {
		t.Fatalf("cap = %d, want >= 4096", cap(big))
	}
	if a.Held() != 1 {
		t.Fatalf("held = %d, want the small buffer still parked", a.Held())
	}
}

func TestArenaForeignBufferJoinsPool(t *testing.T) {
	a := NewArena()
	// cap 100 floors into class 6 (64); a Get of 64 may reuse it.
	a.Put(make([]float32, 100))
	b := a.Get(64)
	if cap(b) < 64 {
		t.Fatalf("cap = %d, want >= 64", cap(b))
	}
	if got := a.Stats().Hits.Load(); got != 1 {
		t.Fatalf("hits = %d, want reuse of the foreign buffer", got)
	}
}

func TestArenaZeroAndNegativeSizes(t *testing.T) {
	a := NewArena()
	if b := a.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := a.Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v, want nil", b)
	}
	a.Put(nil) // must not panic or count
	if st := a.Stats().Snapshot(); st.Gets != 0 || st.Puts != 0 {
		t.Fatalf("zero-size traffic counted: %+v", st)
	}
}

func TestArenaSteadyStateStopsAllocating(t *testing.T) {
	a := NewArena()
	sizes := []int{100, 256, 31, 4096, 100}
	round := func() {
		bufs := make([][]float32, len(sizes))
		for i, n := range sizes {
			bufs[i] = a.Get(n)
		}
		for _, b := range bufs {
			a.Put(b)
		}
	}
	round()
	missesAfterWarm := a.Stats().Misses.Load()
	for i := 0; i < 50; i++ {
		round()
	}
	if got := a.Stats().Misses.Load(); got != missesAfterWarm {
		t.Fatalf("misses grew %d -> %d in steady state", missesAfterWarm, got)
	}
	st := a.Stats().Snapshot()
	if st.InUseBytes != 0 {
		t.Fatalf("in-use bytes = %d after all Puts, want 0", st.InUseBytes)
	}
	if st.PeakBytes <= 0 {
		t.Fatalf("peak bytes = %d, want > 0", st.PeakBytes)
	}
}

func TestArenaCollectionWithdrawsHeldBytes(t *testing.T) {
	shared := &ArenaStats{}
	func() {
		a := NewArenaWithStats(shared)
		a.Put(a.Get(1000)) // park one buffer: held bytes counted
	}()
	if got := shared.HeldBytes.Load(); got <= 0 {
		t.Fatalf("held = %d before collection, want > 0", got)
	}
	// The arena is unreachable; its finalizer must withdraw the parked
	// bytes from the shared gauge. Two GC cycles: one to queue the
	// finalizer, one to observe its effect.
	for i := 0; i < 10 && shared.HeldBytes.Load() != 0; i++ {
		runtime.GC()
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := shared.HeldBytes.Load(); got != 0 {
		t.Fatalf("held = %d after arena collection, want 0 (gauge ratchets)", got)
	}
}

func TestArenaNoteEscape(t *testing.T) {
	a := NewArena()
	b := a.Get(100)
	if got := a.Stats().InUseBytes.Load(); got != 4*128 {
		t.Fatalf("in-use = %d after Get, want %d", got, 4*128)
	}
	a.NoteEscape(b)
	if got := a.Stats().InUseBytes.Load(); got != 0 {
		t.Fatalf("in-use = %d after escape, want 0", got)
	}
	if got := a.Stats().PeakBytes.Load(); got != 4*128 {
		t.Fatalf("peak = %d, want the pre-escape high-water %d", got, 4*128)
	}
	if a.Held() != 0 {
		t.Fatal("escaped buffer must not join the free lists")
	}
	a.NoteEscape(nil) // no-op
}

func TestArenaSharedStats(t *testing.T) {
	shared := &ArenaStats{}
	a1 := NewArenaWithStats(shared)
	a2 := NewArenaWithStats(shared)
	a1.Put(a1.Get(10))
	a2.Put(a2.Get(10))
	if got := shared.Gets.Load(); got != 2 {
		t.Fatalf("shared gets = %d, want 2", got)
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (seed*31+i*7)%500
				b := a.Get(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					return
				}
				b[0] = 1
				a.Put(b)
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats().Snapshot()
	if st.Gets != 1600 || st.Puts != 1600 {
		t.Fatalf("stats = %+v, want 1600 gets/puts", st)
	}
}

func TestAllocatorConstructors(t *testing.T) {
	a := NewArena()
	z := ZerosIn(a, 2, 3)
	if z.Numel() != 6 || z.Sum() != 0 {
		t.Fatalf("ZerosIn = %v", z)
	}
	f := FullIn(a, 2.5, 4)
	if f.Sum() != 10 {
		t.Fatalf("FullIn sum = %v, want 10", f.Sum())
	}
	s := FromSliceIn(a, []float32{1, 2, 3})
	if s.Sum() != 6 {
		t.Fatalf("FromSliceIn sum = %v", s.Sum())
	}
	c := s.CloneIn(a)
	c.Data()[0] = 9
	if s.Data()[0] != 1 {
		t.Fatal("CloneIn shares storage with source")
	}
	zl := ZerosLikeIn(a, f)
	if !zl.Shape().Equal(f.Shape()) || zl.Sum() != 0 {
		t.Fatalf("ZerosLikeIn = %v", zl)
	}
	// Nil-allocator variants must behave identically.
	if ZerosIn(nil, 2).Numel() != 2 || FromSliceIn(nil, []float32{1}).Numel() != 1 {
		t.Fatal("nil-allocator constructors broken")
	}
	ReleaseData(a, z)
	ReleaseData(nil, f) // no-op
	ReleaseData(a, nil) // no-op
	if a.Stats().Puts.Load() != 1 {
		t.Fatalf("puts = %d, want exactly the one ReleaseData", a.Stats().Puts.Load())
	}
}
