package tensor

// Allocator provides float32 backing storage for tensors. Implementations
// must be safe for concurrent use: the parallel executor's lane goroutines
// share one allocator per run. A nil Allocator everywhere means plain heap
// allocation (make), which is also the behavior of the package-level
// constructors — the arena path is strictly opt-in.
//
// The contract mirrors an arena, not a garbage collector: Get hands out a
// zeroed slice of exactly the requested length, and Put may only be called
// once per buffer, after its last reader is done. Buffers handed to callers
// outside the runtime (graph outputs) are simply never Put and age out as
// ordinary heap memory.
type Allocator interface {
	// Get returns a zero-filled slice with len == n.
	Get(n int) []float32
	// Put returns a buffer obtained from Get for reuse. Putting a foreign
	// (heap-made) buffer is allowed; it joins the pool by capacity.
	Put(buf []float32)
}

// allocData is the single allocation path every tensor constructor in this
// package funnels through: one place to route storage to an arena, count
// it, or swap the strategy.
func allocData(a Allocator, n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	return a.Get(n)
}

// uninitAllocator is an optional Allocator refinement: storage whose
// contents the caller fully overwrites, skipping the zero fill on recycled
// buffers. Arena implements it.
type uninitAllocator interface {
	GetUninit(n int) []float32
}

// allocDataUninit is allocData for copy constructors (CloneIn, FromSliceIn,
// FullIn): every element is written immediately after, so a zeroed recycled
// buffer would be memset twice.
func allocDataUninit(a Allocator, n int) []float32 {
	if ua, ok := a.(uninitAllocator); ok {
		return ua.GetUninit(n)
	}
	return allocData(a, n)
}

// Alloc returns a zero-filled []float32 of length n from a (nil = heap) —
// for kernel scratch buffers that are not tensors.
func Alloc(a Allocator, n int) []float32 { return allocData(a, n) }

// AllocUninit returns a scratch []float32 of length n from a (nil = heap)
// whose contents are arbitrary — for kernel scratch the caller fully
// overwrites (packed GEMM panels, im2col patch matrices), skipping the
// zero fill a recycled arena buffer would otherwise pay. Return it with
// Free when the kernel is done so steady-state runs stay allocation-flat.
func AllocUninit(a Allocator, n int) []float32 { return allocDataUninit(a, n) }

// Free returns a scratch buffer to a; a no-op when a is nil.
func Free(a Allocator, buf []float32) {
	if a != nil && len(buf) > 0 {
		a.Put(buf)
	}
}

// ReleaseData returns a tensor's backing storage to the allocator. It is a
// convenience for runtimes that track value deadness (internal/exec); the
// tensor must not be used afterwards. A nil allocator makes this a no-op
// (the GC owns the buffer).
func ReleaseData(a Allocator, t *Tensor) {
	if a == nil || t == nil || len(t.data) == 0 {
		return
	}
	a.Put(t.data)
}

// ZerosIn allocates a zero-filled tensor of the given shape from a (nil =
// heap).
func ZerosIn(a Allocator, dims ...int) *Tensor {
	s := NewShape(dims...)
	return &Tensor{shape: s, data: allocData(a, s.Numel())}
}

// ZerosLikeIn allocates a zero-filled tensor with t's shape from a.
func ZerosLikeIn(a Allocator, t *Tensor) *Tensor {
	return &Tensor{shape: t.shape.Clone(), data: allocData(a, len(t.data))}
}

// FullIn allocates a tensor of the given shape with every element set to v,
// from a.
func FullIn(a Allocator, v float32, dims ...int) *Tensor {
	s := NewShape(dims...)
	t := &Tensor{shape: s, data: allocDataUninit(a, s.Numel())}
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSliceIn builds a rank-1 tensor copying vals, from a.
func FromSliceIn(a Allocator, vals []float32) *Tensor {
	d := allocDataUninit(a, len(vals))
	copy(d, vals)
	return &Tensor{shape: Shape{len(vals)}, data: d}
}

// CloneIn returns a deep copy of the tensor with storage from a.
func (t *Tensor) CloneIn(a Allocator) *Tensor {
	d := allocDataUninit(a, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: t.shape.Clone(), data: d}
}
