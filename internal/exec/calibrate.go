package exec

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/obs"
)

// OpCalibration is one operator type's row of a calibration report: how the
// static cost model's weight for the op compares to its live measured cost.
type OpCalibration struct {
	Op string `json:"op"`
	// Nodes is how many plan nodes of this type have executed; Count and
	// TotalNs are their cumulative invocations and kernel time.
	Nodes   int   `json:"nodes"`
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	// MeanUs is the measured mean kernel time per invocation.
	MeanUs float64 `json:"mean_us"`
	// StaticWt is the mean static weight the cost model assigns the op's
	// nodes (kernel-size scaling included, so Conv nodes can differ).
	StaticWt float64 `json:"static_weight"`
	// UsPerWeight is measured µs per static weight unit for this op; Ratio
	// normalizes it by the plan-wide baseline, so Ratio > 1 means the
	// static model undercosts the op and Ratio < 1 means it overcosts it.
	UsPerWeight float64 `json:"us_per_weight"`
	Ratio       float64 `json:"ratio"`
	// Log2Ratio is log2(Ratio) — the symmetric divergence the worst-offender
	// ranking sorts by (2x under- and 2x overcosting are equally wrong).
	Log2Ratio float64 `json:"log2_ratio"`
}

// Calibration compares the static cost model against the plan's live
// per-node execution counters: a per-op ratio table, the rank correlation
// between predicted and measured node costs, the worst-diverging ops, and a
// MeasuredModel snapshot directly consumable as the measured-cost input to
// profile-guided recompilation.
type Calibration struct {
	// Nodes is how many plan nodes have measurements (opCount > 0).
	Nodes int `json:"nodes"`
	// BaselineUsPerWt is the plan-wide measured µs per static weight unit —
	// the conversion factor a perfectly-proportional static model would
	// make exact for every op.
	BaselineUsPerWt float64 `json:"baseline_us_per_weight"`
	// RankCorrelation is the Spearman rank correlation between static node
	// cost and measured mean node time across all measured nodes: 1.0 means
	// the static model orders every pair of nodes correctly (which is all
	// a scheduler needs), 0 means no relationship.
	RankCorrelation float64 `json:"rank_correlation"`
	// Ops is the per-op table, sorted by cumulative measured time
	// descending; Worst repeats the most divergent entries (largest
	// |Log2Ratio|, most divergent first, at most five).
	Ops   []OpCalibration `json:"ops"`
	Worst []OpCalibration `json:"worst,omitempty"`
	// Measured is the per-node measured-cost model (mean µs per node), the
	// exec.MeasuredModel shape the recompilation path consumes.
	Measured *MeasuredModel `json:"measured"`
}

// Factors returns the per-op correction factors (measured ratio per op),
// the input shape cost.StaticModel.Rescale takes to produce a calibrated
// static model.
func (c *Calibration) Factors() map[string]float64 {
	f := make(map[string]float64, len(c.Ops))
	for _, o := range c.Ops {
		f[o.Op] = o.Ratio
	}
	return f
}

// Calibrate builds a calibration report from the plan's live per-node
// execution counters (accumulated across every run since the plan was
// built) against the static cost model m (nil = the paper's default
// weights). Returns nil when nothing has executed yet. Safe to call
// concurrently with runs; a report racing active lanes may miss their
// in-flight nodes.
func (p *Plan) Calibrate(m cost.Model) *Calibration {
	if m == nil {
		m = cost.DefaultModel()
	}
	topo := p.topology()
	type nodeMeas struct {
		meanUs float64
		wt     float64
	}
	var (
		nodes  []nodeMeas
		byName = make(map[string]float64)
		perOp  = make(map[string]*OpCalibration)
		sumUs  float64
		sumWt  float64
	)
	for i, n := range topo.opNodes {
		c := p.opCount[i].Load()
		if c == 0 {
			continue
		}
		ns := p.opNs[i].Load()
		meanUs := float64(ns) / float64(c) / 1e3
		if meanUs < 0.05 {
			meanUs = 0.05 // same floor as MeasureCosts: dispatch is never free
		}
		wt := m.NodeCost(n)
		nodes = append(nodes, nodeMeas{meanUs, wt})
		byName[n.Name] = meanUs
		sumUs += meanUs
		sumWt += wt
		oc := perOp[n.OpType]
		if oc == nil {
			oc = &OpCalibration{Op: n.OpType}
			perOp[n.OpType] = oc
		}
		oc.Nodes++
		oc.Count += c
		oc.TotalNs += ns
		oc.MeanUs += meanUs // per-node mean sum, replaced by the true mean below
		oc.StaticWt += wt   // per-node weight sum, likewise
	}
	if len(nodes) == 0 {
		return nil
	}
	baseline := sumUs / sumWt
	xs := make([]float64, len(nodes))
	ys := make([]float64, len(nodes))
	for i, nm := range nodes {
		xs[i] = nm.wt
		ys[i] = nm.meanUs
	}
	cal := &Calibration{
		Nodes:           len(nodes),
		BaselineUsPerWt: baseline,
		RankCorrelation: spearman(xs, ys),
	}
	for _, oc := range perOp {
		sumNodeUs, sumNodeWt := oc.MeanUs, oc.StaticWt
		oc.MeanUs = float64(oc.TotalNs) / float64(oc.Count) / 1e3
		oc.StaticWt = sumNodeWt / float64(oc.Nodes)
		oc.UsPerWeight = sumNodeUs / sumNodeWt
		oc.Ratio = oc.UsPerWeight / baseline
		if oc.Ratio > 0 {
			oc.Log2Ratio = math.Log2(oc.Ratio)
		}
		cal.Ops = append(cal.Ops, *oc)
	}
	sort.Slice(cal.Ops, func(i, j int) bool {
		if cal.Ops[i].TotalNs != cal.Ops[j].TotalNs {
			return cal.Ops[i].TotalNs > cal.Ops[j].TotalNs
		}
		return cal.Ops[i].Op < cal.Ops[j].Op
	})
	worst := append([]OpCalibration(nil), cal.Ops...)
	sort.Slice(worst, func(i, j int) bool {
		di, dj := math.Abs(worst[i].Log2Ratio), math.Abs(worst[j].Log2Ratio)
		if di != dj {
			return di > dj
		}
		return worst[i].Op < worst[j].Op
	})
	if len(worst) > 5 {
		worst = worst[:5]
	}
	cal.Worst = worst
	cal.Measured = &MeasuredModel{
		ByName:  byName,
		Edge:    3, // the MeasureCosts default channel-handoff estimate
		Default: sumUs / float64(len(nodes)),
	}
	return cal
}

// spearman computes the Spearman rank correlation between two paired
// variables (ties get averaged ranks). Returns 0 when fewer than two pairs
// or either variable is constant.
func spearman(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks assigns 1-based ranks with averaged ties.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// TimelineOpTotals aggregates one sampled run's op spans by operator type —
// the single-run analogue of the plan's lifetime OpTotals, for reports that
// want "this run" rather than "since compile".
func TimelineOpTotals(r *obs.RunTimeline, opOf func(node string) string) []obs.OpTotal {
	if r == nil {
		return nil
	}
	agg := map[string]obs.OpTotal{}
	for _, s := range r.Spans {
		if s.Kind != obs.SpanOp {
			continue
		}
		op := s.Op
		if op == "" && opOf != nil {
			op = opOf(s.Name)
		}
		t := agg[op]
		t.Op = op
		t.Count++
		t.TotalNs += s.DurNs
		agg[op] = t
	}
	if len(agg) == 0 {
		return nil
	}
	out := make([]obs.OpTotal, 0, len(agg))
	for _, t := range agg {
		out = append(out, t)
	}
	obs.SortOpTotals(out)
	return out
}
